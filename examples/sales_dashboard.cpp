// A grocery-sales "dashboard": the workload the paper's introduction
// motivates — interactive aggregates over a large fact table, sped up
// transparently. Demonstrates the default sampling policy (Appendix F) and
// several query shapes including count-distinct and a sample-sample join.

#include <cstdio>

#include "core/verdict_context.h"
#include "workload/insta.h"

int main() {
  using namespace vdb;
  engine::Database db;
  workload::InstaConfig cfg;
  cfg.scale = 0.5;
  if (!workload::GenerateInsta(&db, cfg).ok()) return 1;

  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 15000;
  opts.io_budget = 0.10;
  core::VerdictContext verdict(&db, driver::EngineKind::kSparkSql, opts);

  // Let the Appendix F policy decide which samples to build for the fact
  // table (uniform + hashed on high-cardinality + stratified on
  // low-cardinality columns), then add universe samples for the join.
  auto made =
      verdict.sample_builder().CreateDefaultSamples("order_products", 0.02);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  std::printf("default policy built %zu samples for order_products:\n",
              made.value().size());
  for (const auto& s : made.value()) {
    std::printf("  %-45s %-10s ratio %.3f\n", s.sample_table.c_str(),
                sampling::SampleTypeName(s.type), s.ratio);
  }
  (void)verdict.sample_builder().CreateHashedSample("orders_insta",
                                                    "order_id", 0.05);
  (void)verdict.sample_builder().CreateHashedSample("orders_insta",
                                                    "user_id", 0.05);

  const char* dashboard[] = {
      // Revenue by weekday (joins two universe samples on order_id).
      "select o.order_dow, sum(op.price) as revenue from order_products op"
      " inner join orders_insta o on op.order_id = o.order_id"
      " group by o.order_dow order by o.order_dow",
      // How many distinct customers ordered this week?
      "select count(distinct user_id) as active_users from orders_insta",
      // Reorder share (a ratio statistic).
      "select sum(case when reordered = 1 then price else 0.0 end) /"
      " sum(price) as reorder_share from order_products",
  };
  for (const char* sql : dashboard) {
    core::VerdictContext::ExecInfo info;
    auto rs = verdict.Execute(sql, &info);
    std::printf("\n>>> %s\n", sql);
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    std::printf("[%s, max rel. error bound %.2f%%]\n%s",
                info.approximated ? "approximate" : "exact",
                info.max_relative_error * 100.0,
                rs.value().ToString(10).c_str());
  }
  return 0;
}
