// TPC-H-style analytics through VerdictDB: runs a handful of the tq-*
// workload queries exactly and approximately, reporting latency and error —
// a miniature of the paper's §6.2 experiment.

#include <chrono>
#include <cstdio>

#include "core/verdict_context.h"
#include "workload/queries.h"
#include "workload/tpch.h"

int main() {
  using namespace vdb;
  engine::Database db;
  workload::TpchConfig cfg;
  cfg.scale = 0.4;
  if (!workload::GenerateTpch(&db, cfg).ok()) return 1;

  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 15000;
  opts.io_budget = 0.10;
  core::VerdictContext verdict(&db, driver::EngineKind::kImpala, opts);
  (void)verdict.sample_builder().CreateUniformSample("lineitem", 0.02);
  (void)verdict.sample_builder().CreateHashedSample("lineitem", "l_orderkey",
                                                    0.02);
  (void)verdict.sample_builder().CreateHashedSample("orders", "o_orderkey",
                                                    0.02);

  auto ms_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::printf("%-6s %12s %12s  %s\n", "query", "exact(ms)", "verdict(ms)",
              "mode");
  for (const auto& q : workload::TpchQueries()) {
    if (q.id != "tq-1" && q.id != "tq-5" && q.id != "tq-6" &&
        q.id != "tq-14" && q.id != "tq-17" && q.id != "tq-19") {
      continue;
    }
    auto t0 = std::chrono::steady_clock::now();
    auto exact = db.Execute(q.sql);
    double exact_ms = ms_since(t0);
    core::VerdictContext::ExecInfo info;
    t0 = std::chrono::steady_clock::now();
    auto approx = verdict.Execute(q.sql, &info);
    double approx_ms = ms_since(t0);
    if (!exact.ok() || !approx.ok()) {
      std::printf("%-6s failed: %s\n", q.id.c_str(),
                  (!exact.ok() ? exact.status() : approx.status())
                      .ToString()
                      .c_str());
      continue;
    }
    std::printf("%-6s %12.1f %12.1f  %s\n", q.id.c_str(), exact_ms, approx_ms,
                info.approximated ? "approx" : "exact passthrough");
  }

  std::printf("\ntq-17 demonstrates correlated-subquery flattening;"
              " its rewritten SQL begins:\n");
  core::VerdictContext::ExecInfo info;
  for (const auto& q : workload::TpchQueries()) {
    if (q.id == "tq-17") (void)verdict.Execute(q.sql, &info);
  }
  std::printf("  %.200s...\n", info.rewritten_sql.c_str());
  return 0;
}
