// Quickstart: create a table, prepare a sample, and run an approximate
// aggregate query through VerdictDB, inspecting the rewritten SQL and the
// error bounds.

#include <cstdio>

#include "core/verdict_context.h"
#include "workload/synthetic.h"

int main() {
  using namespace vdb;

  // 1. An "underlying database" with a 500K-row table. In a real deployment
  //    this would be Impala / Spark SQL / Redshift reached over JDBC; here
  //    it is the bundled in-process engine.
  engine::Database db;
  if (!workload::GenerateSynthetic(&db, "sales", 500000, 1).ok()) return 1;

  // 2. VerdictDB sits between the application and the database.
  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 10000;
  opts.io_budget = 0.05;
  // All hardware threads: the rewritten variational query (rand()-assigned
  // subsample ids) runs morsel-parallel — its rand draws are row-addressed,
  // so the answer is bit-identical at any thread count.
  opts.num_threads = 0;
  core::VerdictContext verdict(&db, driver::EngineKind::kGeneric, opts);

  // 3. Offline stage: prepare a 1% uniform sample (plain SQL under the hood).
  auto sample = verdict.sample_builder().CreateUniformSample("sales", 0.01);
  if (!sample.ok()) {
    std::fprintf(stderr, "sample: %s\n", sample.status().ToString().c_str());
    return 1;
  }
  std::printf("prepared sample %s: %llu of %llu rows\n",
              sample.value().sample_table.c_str(),
              static_cast<unsigned long long>(sample.value().sample_rows),
              static_cast<unsigned long long>(sample.value().base_rows));

  // 4. Online stage: the query is intercepted, rewritten and approximated.
  const char* sql =
      "select g10, count(*) as cnt, avg(value) as avg_value "
      "from sales group by g10 order by g10";
  core::VerdictContext::ExecInfo info;
  auto rs = verdict.Execute(sql, &info);
  if (!rs.ok()) {
    std::fprintf(stderr, "query: %s\n", rs.status().ToString().c_str());
    return 1;
  }
  std::printf("\napproximated: %s (b = %d subsamples)\n",
              info.approximated ? "yes" : "no", info.subsamples);
  std::printf("rewritten SQL (sent to the database):\n  %.160s...\n\n",
              info.rewritten_sql.c_str());
  std::printf("%s\n", rs.value().ToString().c_str());

  // 5. Compare with the exact answer.
  auto exact = db.Execute(sql);
  if (exact.ok()) {
    std::printf("exact answer for reference:\n%s\n",
                exact.value().ToString(3).c_str());
  }
  return 0;
}
