// High-level Accuracy Contract (HAC, §2.4) and incremental data appends
// (Appendix D): when the post-execution error estimate violates the
// requested accuracy, VerdictDB transparently re-runs the exact query; and
// appended data flows into both the base table and its samples.

#include <cstdio>

#include "core/verdict_context.h"
#include "workload/synthetic.h"

int main() {
  using namespace vdb;
  engine::Database db;
  if (!workload::GenerateSynthetic(&db, "events", 300000, 5).ok()) return 1;

  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 10000;
  opts.io_budget = 0.05;
  core::VerdictContext verdict(&db, driver::EngineKind::kGeneric, opts);
  (void)verdict.sample_builder().CreateUniformSample("events", 0.01);

  const char* sql = "select avg(value) as v from events where u < 0.02";

  // Loose contract: the approximation is good enough.
  verdict.options().min_accuracy = 0.5;
  core::VerdictContext::ExecInfo info;
  auto rs = verdict.Execute(sql, &info);
  if (!rs.ok()) return 1;
  std::printf("min_accuracy=0.50: approximated=%d exact_rerun=%d"
              " (reported max rel err %.2f%%)\n",
              info.approximated, info.exact_rerun,
              info.max_relative_error * 100.0);

  // Strict contract on a highly selective predicate: the error estimate
  // exceeds the budget and VerdictDB falls back to the exact query.
  verdict.options().min_accuracy = 0.999;
  rs = verdict.Execute(sql, &info);
  if (!rs.ok()) return 1;
  std::printf("min_accuracy=0.999: approximated=%d exact_rerun=%d\n",
              info.approximated, info.exact_rerun);
  verdict.options().min_accuracy = 0.0;

  // ---- Appendix D: appends keep samples fresh -----------------------------
  if (!workload::GenerateSynthetic(&db, "new_batch", 60000, 99).ok()) return 1;
  auto before = verdict.sample_catalog().SamplesFor("events");
  if (!before.ok()) return 1;
  std::printf("\nbefore append: sample has %llu rows (base %llu)\n",
              static_cast<unsigned long long>(before.value()[0].sample_rows),
              static_cast<unsigned long long>(before.value()[0].base_rows));
  if (!verdict.sample_builder().AppendData("events", "new_batch").ok()) {
    return 1;
  }
  auto after = verdict.sample_catalog().SamplesFor("events");
  if (!after.ok()) return 1;
  std::printf("after append:  sample has %llu rows (base %llu)\n",
              static_cast<unsigned long long>(after.value()[0].sample_rows),
              static_cast<unsigned long long>(after.value()[0].base_rows));

  auto count = verdict.Execute("select count(*) as n from events", &info);
  if (count.ok()) {
    std::printf("approximate count after append: %s (exact: 360000)\n",
                count.value().Get(0, 0).ToString().c_str());
  }
  return 0;
}
