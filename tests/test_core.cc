// End-to-end VerdictDB middleware tests: classification, flattening,
// planning, rewriting, answer accuracy, HAC, nested queries, joins of
// samples, and count-distinct.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/flattener.h"
#include "core/query_classifier.h"
#include "core/verdict_context.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/synthetic.h"

namespace vdb::core {
namespace {

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

QueryClass Classify(const std::string& sql) {
  auto sel = sql::ParseSelect(sql);
  EXPECT_TRUE(sel.ok()) << sql;
  return ClassifyQuery(*sel.value());
}

TEST(ClassifierTest, SupportsAggregates) {
  auto qc = Classify("select city, count(*), sum(x) from t group by city");
  EXPECT_TRUE(qc.supported);
  EXPECT_TRUE(qc.has_mean_like);
  EXPECT_FALSE(qc.has_extreme);
}

TEST(ClassifierTest, RejectsSelectStar) {
  EXPECT_FALSE(Classify("select * from t").supported);
}

TEST(ClassifierTest, RejectsExists) {
  EXPECT_FALSE(
      Classify("select count(*) from t where exists (select 1 from s)")
          .supported);
}

TEST(ClassifierTest, RejectsPureExtreme) {
  auto qc = Classify("select min(x), max(x) from t");
  EXPECT_FALSE(qc.supported);
  EXPECT_TRUE(qc.has_extreme);
}

TEST(ClassifierTest, DetectsCountDistinct) {
  auto qc = Classify("select count(distinct user_id) from t");
  EXPECT_TRUE(qc.supported);
  EXPECT_TRUE(qc.has_count_distinct);
  EXPECT_EQ(qc.count_distinct_column, "user_id");
}

TEST(ClassifierTest, DetectsNestedAggregate) {
  auto qc = Classify(
      "select avg(s) from (select city, sum(price) as s from orders "
      "group by city) as t");
  EXPECT_TRUE(qc.supported);
  EXPECT_TRUE(qc.nested_aggregate);
}

TEST(ClassifierTest, ExtractsJoinEdges) {
  auto qc = Classify(
      "select count(*) from a inner join b on a.k = b.k "
      "inner join c on b.j = c.j");
  ASSERT_EQ(qc.relations.size(), 3u);
  ASSERT_EQ(qc.join_edges.size(), 2u);
  EXPECT_EQ(qc.join_edges[0].left_alias, "a");
  EXPECT_EQ(qc.join_edges[0].right_column, "k");
}

// ---------------------------------------------------------------------------
// Flattener
// ---------------------------------------------------------------------------

TEST(FlattenerTest, FlattensCorrelatedComparison) {
  auto sel = sql::ParseSelect(
      "select sum(l_extendedprice) as s from lineitem "
      "inner join part on p_partkey = l_partkey "
      "where l_quantity < (select avg(l_quantity) from lineitem "
      "where l_partkey = part.p_partkey)");
  ASSERT_TRUE(sel.ok());
  auto n = FlattenComparisonSubqueries(sel.value().get());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1);
  std::string text = sql::PrintSelect(*sel.value());
  EXPECT_NE(text.find("group by"), std::string::npos);
  EXPECT_NE(text.find("__vdb_f0"), std::string::npos);
  EXPECT_EQ(text.find("(select avg"), std::string::npos);
}

TEST(FlattenerTest, LeavesUncorrelatedAlone) {
  auto sel = sql::ParseSelect(
      "select count(*) as c from t where x > (select avg(x) from t)");
  ASSERT_TRUE(sel.ok());
  auto n = FlattenComparisonSubqueries(sel.value().get());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end approximation
// ---------------------------------------------------------------------------

class VerdictE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        workload::GenerateSynthetic(&db_, "big", 200000, 99).ok());
    VerdictOptions opts;
    opts.min_rows_for_sampling = 10000;
    opts.io_budget = 0.05;
    ctx_ = std::make_unique<VerdictContext>(&db_,
                                            driver::EngineKind::kGeneric,
                                            opts);
    // 4% of 200K = ~8000 rows (~800 per g10 group): per-group estimates
    // carry ~3.5% relative stderr, so the 15% tolerances below sit at >4
    // sigma for any seed rather than relying on a lucky draw.
    auto s = ctx_->sample_builder().CreateUniformSample("big", 0.04);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    sample_rows_ = s.value().sample_rows;
  }

  double Exact(const std::string& sql, int col = 0) {
    auto rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs.value().GetDouble(0, static_cast<size_t>(col));
  }

  engine::Database db_{7777};
  std::unique_ptr<VerdictContext> ctx_;
  uint64_t sample_rows_ = 0;
};

TEST_F(VerdictE2E, SampleSizeNearExpectation) {
  EXPECT_NEAR(static_cast<double>(sample_rows_), 8000.0, 600.0);
}

TEST_F(VerdictE2E, ApproximateCount) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute("select count(*) as c from big", &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  double approx = rs.value().GetDouble(0, 0);
  EXPECT_NEAR(approx, 200000.0, 200000.0 * 0.05);
  // Error column present and sane.
  int err_col = rs.value().ColumnIndex("c_err");
  ASSERT_GE(err_col, 0);
  double err = rs.value().GetDouble(0, static_cast<size_t>(err_col));
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 200000.0 * 0.10);
}

TEST_F(VerdictE2E, ApproximateSumAvgWithFilter) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute(
      "select sum(value) as s, avg(value) as a from big where u < 0.5",
      &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  double exact_sum =
      Exact("select sum(value) as s from big where u < 0.5");
  double exact_avg =
      Exact("select avg(value) as a from big where u < 0.5");
  EXPECT_NEAR(rs.value().GetDouble(0, 0), exact_sum,
              std::abs(exact_sum) * 0.10);
  EXPECT_NEAR(rs.value().GetDouble(0, 1), exact_avg,
              std::abs(exact_avg) * 0.10);
}

TEST_F(VerdictE2E, ApproximateGroupBy) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute(
      "select g10, count(*) as c, sum(value) as s from big group by g10 "
      "order by g10",
      &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  ASSERT_EQ(rs.value().NumRows(), 10u);
  auto exact = db_.Execute(
      "select g10, count(*) as c, sum(value) as s from big group by g10 "
      "order by g10");
  ASSERT_TRUE(exact.ok());
  for (size_t r = 0; r < 10; ++r) {
    double ec = exact.value().GetDouble(r, 1);
    double es = exact.value().GetDouble(r, 2);
    EXPECT_NEAR(rs.value().GetDouble(r, 1), ec, ec * 0.15) << "group " << r;
    EXPECT_NEAR(rs.value().GetDouble(r, 2), es, std::abs(es) * 0.15);
  }
}

TEST_F(VerdictE2E, ErrorEstimateCoversTruth) {
  // The reported 95% CI should cover the exact answer in the vast majority
  // of groups (this is a smoke check, not a calibration study).
  auto ans = ctx_->ExecuteApprox(
      "select g10, avg(value) as a from big group by g10 order by g10");
  ASSERT_TRUE(ans.ok());
  auto exact = db_.Execute(
      "select g10, avg(value) as a from big group by g10 order by g10");
  ASSERT_TRUE(exact.ok());
  int err_col = ans.value().result.ColumnIndex("a_err");
  ASSERT_GE(err_col, 0);
  int covered = 0;
  for (size_t r = 0; r < 10; ++r) {
    double point = ans.value().result.GetDouble(r, 1);
    double half =
        ans.value().result.GetDouble(r, static_cast<size_t>(err_col));
    double truth = exact.value().GetDouble(r, 1);
    if (truth >= point - 2 * half && truth <= point + 2 * half) ++covered;
  }
  EXPECT_GE(covered, 8);
}

TEST_F(VerdictE2E, PassthroughOnUnsupported) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute("select min(value) as m from big", &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(info.approximated);
  EXPECT_FALSE(info.skip_reason.empty());
  EXPECT_DOUBLE_EQ(rs.value().GetDouble(0, 0),
                   Exact("select min(value) as m from big"));
}

TEST_F(VerdictE2E, DecomposesExtremePlusMeanLike) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute(
      "select g10, max(value) as mx, avg(value) as a from big group by g10",
      &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  ASSERT_EQ(rs.value().NumRows(), 10u);
  // max column must be exact.
  auto exact = db_.Execute(
      "select g10, max(value) as mx from big group by g10");
  ASSERT_TRUE(exact.ok());
  std::map<int64_t, double> exact_mx;
  for (size_t r = 0; r < exact.value().NumRows(); ++r) {
    exact_mx[exact.value().Get(r, 0).AsInt()] =
        exact.value().GetDouble(r, 1);
  }
  for (size_t r = 0; r < rs.value().NumRows(); ++r) {
    int64_t g = rs.value().Get(r, 0).AsInt();
    EXPECT_DOUBLE_EQ(rs.value().GetDouble(r, 1), exact_mx[g]);
  }
}

TEST_F(VerdictE2E, HacFallsBackToExact) {
  ctx_->options().min_accuracy = 0.9999;  // impossible at 2% sampling
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute("select avg(value) as a from big", &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(info.exact_rerun);
  EXPECT_DOUBLE_EQ(rs.value().GetDouble(0, 0),
                   Exact("select avg(value) as a from big"));
  ctx_->options().min_accuracy = 0.0;
}

TEST_F(VerdictE2E, HacTreatsUnmeasurableGroupsConservatively) {
  // A group whose sample contains exactly ONE tuple lands in exactly one
  // subsample, so its stderr is NULL (stddev over one estimate) and its
  // relative error cannot be measured. The contract must count such groups
  // and fail conservatively instead of passing vacuously on the measured
  // subset.
  engine::Database db(4321);
  auto t = std::make_shared<engine::Table>();
  t->AddColumn("g", TypeId::kInt64);
  t->AddColumn("v", TypeId::kDouble);
  for (int i = 0; i < 5000; ++i) {
    t->AppendRow({Value::Int(1), Value::Double(10.0 + (i % 7))});
  }
  t->AppendRow({Value::Int(2), Value::Double(42.0)});  // the singleton group
  ASSERT_TRUE(db.RegisterTable("skew", t).ok());
  VerdictOptions opts;
  opts.min_rows_for_sampling = 1000;
  opts.io_budget = 1.0;
  VerdictContext vctx(&db, driver::EngineKind::kGeneric, opts);
  // tau = 1.0: every row (including the singleton) enters the sample, so
  // the vacuous-stderr row is guaranteed, not seed-dependent.
  ASSERT_TRUE(vctx.sample_builder().CreateUniformSample("skew", 1.0).ok());

  const std::string sql =
      "select g, sum(v) as s from skew group by g order by g";
  auto ans = vctx.ExecuteApprox(sql);
  ASSERT_TRUE(ans.ok());
  EXPECT_GT(ans.value().unmeasured_rows, 0);
  int64_t no_spread = 0;
  for (const auto& agg : ans.value().aggregates) {
    no_spread += agg.no_spread_rows;
  }
  EXPECT_GT(no_spread, 0);

  // With a (loose) contract enabled, the unverifiable group must force the
  // exact fallback even though every measured group is well within bounds.
  vctx.options().min_accuracy = 0.5;
  VerdictContext::ExecInfo info;
  auto rs = vctx.Execute(sql, &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(info.exact_rerun);
  auto exact = db.Execute(sql);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(rs.value().NumRows(), exact.value().NumRows());
  for (size_t r = 0; r < rs.value().NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(rs.value().GetDouble(r, 1), exact.value().GetDouble(r, 1));
  }
}

TEST_F(VerdictE2E, HighCardinalityGroupingIsRejected) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute(
      "select id, sum(value) as s from big group by id limit 5", &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(info.approximated);
}

TEST_F(VerdictE2E, RewrittenSqlIsExposed) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute("select count(*) as c from big", &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_NE(info.rewritten_sql.find("__vdb_sid"), std::string::npos);
  EXPECT_NE(info.rewritten_sql.find("big_vdb_uniform"), std::string::npos);
  EXPECT_GT(info.subsamples, 1);
}

// ---------------------------------------------------------------------------
// Joins of two samples (universe join) and count-distinct
// ---------------------------------------------------------------------------

class VerdictJoinE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fact and dimension-ish tables sharing a join key domain.
    auto fact = std::make_shared<engine::Table>();
    fact->AddColumn("k", TypeId::kInt64);
    fact->AddColumn("v", TypeId::kDouble);
    auto dim = std::make_shared<engine::Table>();
    dim->AddColumn("k", TypeId::kInt64);
    dim->AddColumn("w", TypeId::kDouble);
    Rng rng(5);
    const int64_t keys = 30000;
    for (int64_t i = 0; i < keys; ++i) {
      dim->AppendRow({Value::Int(i), Value::Double(rng.NextDouble())});
      int lines = static_cast<int>(1 + rng.NextBounded(4));
      for (int j = 0; j < lines; ++j) {
        fact->AppendRow(
            {Value::Int(i), Value::Double(5.0 + rng.NextDouble() * 10.0)});
      }
    }
    ASSERT_TRUE(db_.RegisterTable("fact", fact).ok());
    ASSERT_TRUE(db_.RegisterTable("dim", dim).ok());

    VerdictOptions opts;
    opts.min_rows_for_sampling = 10000;
    opts.io_budget = 0.20;
    ctx_ = std::make_unique<VerdictContext>(&db_,
                                            driver::EngineKind::kGeneric,
                                            opts);
    ASSERT_TRUE(
        ctx_->sample_builder().CreateHashedSample("fact", "k", 0.1).ok());
    ASSERT_TRUE(
        ctx_->sample_builder().CreateHashedSample("dim", "k", 0.1).ok());
  }

  engine::Database db_{1212};
  std::unique_ptr<VerdictContext> ctx_;
};

TEST_F(VerdictJoinE2E, UniverseJoinOfTwoSamples) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute(
      "select sum(f.v * d.w) as s from fact f inner join dim d on f.k = d.k",
      &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  auto exact = db_.Execute(
      "select sum(f.v * d.w) as s from fact f inner join dim d on f.k = d.k");
  ASSERT_TRUE(exact.ok());
  double truth = exact.value().GetDouble(0, 0);
  EXPECT_NEAR(rs.value().GetDouble(0, 0), truth, std::abs(truth) * 0.15);
  // Both relations must be substituted with samples.
  EXPECT_NE(info.rewritten_sql.find("fact_vdb_hashed_k"), std::string::npos);
  EXPECT_NE(info.rewritten_sql.find("dim_vdb_hashed_k"), std::string::npos);
}

TEST_F(VerdictJoinE2E, CountDistinctOnHashedSample) {
  VerdictContext::ExecInfo info;
  auto rs = ctx_->Execute(
      "select count(distinct k) as d from fact", &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  EXPECT_NEAR(rs.value().GetDouble(0, 0), 30000.0, 30000.0 * 0.10);
}

// ---------------------------------------------------------------------------
// Nested aggregation (§5.2)
// ---------------------------------------------------------------------------

TEST(VerdictNestedTest, NestedAggregateQuery) {
  engine::Database db(31);
  ASSERT_TRUE(workload::GenerateSynthetic(&db, "big", 120000, 3).ok());
  VerdictOptions opts;
  opts.min_rows_for_sampling = 10000;
  opts.io_budget = 0.05;
  VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  ASSERT_TRUE(ctx.sample_builder().CreateUniformSample("big", 0.02).ok());

  VerdictContext::ExecInfo info;
  auto rs = ctx.Execute(
      "select avg(s) as a from (select g100, sum(value) as s from big "
      "group by g100) as t",
      &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  auto exact = db.Execute(
      "select avg(s) as a from (select g100, sum(value) as s from big "
      "group by g100) as t");
  ASSERT_TRUE(exact.ok());
  double truth = exact.value().GetDouble(0, 0);
  EXPECT_NEAR(rs.value().GetDouble(0, 0), truth, std::abs(truth) * 0.15);
}

// ---------------------------------------------------------------------------
// Flattened correlated subquery, end to end
// ---------------------------------------------------------------------------

TEST(VerdictFlattenE2E, CorrelatedComparisonSubquery) {
  engine::Database db(64);
  auto t = std::make_shared<engine::Table>();
  t->AddColumn("grp", TypeId::kInt64);
  t->AddColumn("x", TypeId::kDouble);
  Rng rng(11);
  for (int i = 0; i < 60000; ++i) {
    t->AppendRow({Value::Int(static_cast<int64_t>(rng.NextBounded(50))),
                  Value::Double(rng.NextDouble() * 100.0)});
  }
  ASSERT_TRUE(db.RegisterTable("measurements", t).ok());
  VerdictOptions opts;
  opts.min_rows_for_sampling = 10000;
  opts.io_budget = 0.10;
  VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  ASSERT_TRUE(
      ctx.sample_builder().CreateUniformSample("measurements", 0.05).ok());

  const char* sql =
      "select count(*) as c from measurements m"
      " where m.x > (select avg(x) from measurements where grp = m.grp)";
  VerdictContext::ExecInfo info;
  auto rs = ctx.Execute(sql, &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  // The engine itself cannot evaluate correlated subqueries; the exact
  // reference uses the manually flattened equivalent.
  auto exact = db.Execute(
      "select count(*) as c from measurements m"
      " inner join (select grp, avg(x) as ax from measurements group by grp)"
      " as g on g.grp = m.grp where m.x > g.ax");
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  double truth = exact.value().GetDouble(0, 0);
  EXPECT_NEAR(rs.value().GetDouble(0, 0), truth, truth * 0.15);
}

}  // namespace
}  // namespace vdb::core
