// Morsel-driven parallel execution: determinism across thread counts.
//
// Every query here is executed against identical databases configured with
// 1, 2 and 8 threads, and the full result sets (values AND row order) must
// match BIT-IDENTICALLY — floating-point aggregates included. Mergeable
// aggregation always runs through per-morsel partials merged in fixed morsel
// order (the decomposition depends only on the row count, never the thread
// count), and sum/avg kernels carry Neumaier compensation, so 1-thread and
// N-thread runs execute the identical computation. The fixtures shrink the
// morsel size so small tables still span many morsels, and cover the
// boundary cases: row counts smaller than one morsel, exact multiples of
// the morsel size, off-by-one around it, and empty inputs.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/verdict_context.h"
#include "engine/database.h"
#include "engine/planner.h"
#include "engine/vector_eval.h"

namespace vdb::engine {
namespace {

constexpr uint64_t kSeed = 20260729;
constexpr size_t kTestMorselRows = 1000;

TablePtr BuildOrders(size_t n) {
  Rng rng(kSeed);
  auto t = std::make_shared<Table>();
  t->AddColumn("id", TypeId::kInt64);
  t->AddColumn("city", TypeId::kString);
  t->AddColumn("price", TypeId::kDouble);
  t->AddColumn("qty", TypeId::kInt64);
  t->AddColumn("k", TypeId::kInt64);
  const char* cities[] = {"ann arbor", "detroit", "chicago", "nyc", "sf"};
  for (size_t r = 0; r < n; ++r) {
    // Prices are multiples of 0.25: every partial sum is exactly
    // representable, so parallel merge order cannot change the result.
    double price = static_cast<double>(rng.NextInRange(0, 4000)) * 0.25;
    Value qty = (r % 13 == 0) ? Value::Null()
                              : Value::Int(rng.NextInRange(0, 99));
    t->AppendRow({Value::Int(static_cast<int64_t>(r)),
                  Value::String(cities[rng.NextBounded(5)]),
                  Value::Double(price), qty,
                  Value::Int(rng.NextInRange(0, 60))});
  }
  return t;
}

TablePtr BuildDim() {
  auto t = std::make_shared<Table>();
  t->AddColumn("k", TypeId::kInt64);
  t->AddColumn("label", TypeId::kString);
  for (int64_t k = 0; k < 50; ++k) {  // keys 50..59 have no match
    t->AppendRow({Value::Int(k), Value::String("label_" + std::to_string(k))});
  }
  return t;
}

std::unique_ptr<Database> MakeDb(size_t rows, int num_threads) {
  auto db = std::make_unique<Database>(kSeed);
  db->set_num_threads(num_threads);
  EXPECT_TRUE(db->RegisterTable("orders", BuildOrders(rows)).ok());
  EXPECT_TRUE(db->RegisterTable("dim", BuildDim()).ok());
  return db;
}

void ExpectSameResults(const ResultSet& ref, const ResultSet& got,
                       const std::string& what, double eps = 0.0) {
  ASSERT_EQ(ref.NumCols(), got.NumCols()) << what;
  ASSERT_EQ(ref.NumRows(), got.NumRows()) << what;
  for (size_t c = 0; c < ref.NumCols(); ++c) {
    EXPECT_EQ(ref.names[c], got.names[c]) << what;
  }
  for (size_t r = 0; r < ref.NumRows(); ++r) {
    for (size_t c = 0; c < ref.NumCols(); ++c) {
      const Value a = ref.Get(r, c);
      const Value b = got.Get(r, c);
      ASSERT_EQ(a.is_null(), b.is_null())
          << what << " cell (" << r << "," << c << ")";
      if (a.is_null()) continue;
      if (eps > 0.0 && a.type() == TypeId::kDouble) {
        EXPECT_NEAR(a.AsDouble(), b.AsDouble(),
                    eps * std::max(1.0, std::abs(a.AsDouble())))
            << what << " cell (" << r << "," << c << ")";
      } else {
        ASSERT_EQ(a.type(), b.type())
            << what << " cell (" << r << "," << c << ")";
        EXPECT_TRUE(a.Equals(b))
            << what << " cell (" << r << "," << c << "): " << a.ToString()
            << " vs " << b.ToString();
      }
    }
  }
}

/// Runs `sql` at 1, 2 and 8 threads over identical databases and asserts
/// identical results (including row order).
void CheckQueryAcrossThreads(size_t rows, const std::string& sql,
                             double eps = 0.0) {
  auto ref_db = MakeDb(rows, 1);
  auto ref = ref_db->Execute(sql);
  ASSERT_TRUE(ref.ok()) << sql << " -> " << ref.status().ToString();
  for (int threads : {2, 8}) {
    auto db = MakeDb(rows, threads);
    auto got = db->Execute(sql);
    ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
    ExpectSameResults(ref.value(), got.value(),
                      sql + " @" + std::to_string(threads) + " threads", eps);
  }
}

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMorselRowsForTest(kTestMorselRows); }
  void TearDown() override { SetMorselRowsForTest(0); }
};

TEST_F(ParallelTest, FilterDeterminism) {
  CheckQueryAcrossThreads(
      10007, "select id, price from orders where price > 500 and qty < 50");
}

TEST_F(ParallelTest, FilterSelectsNothing) {
  CheckQueryAcrossThreads(10007,
                          "select id from orders where price < -1");
}

TEST_F(ParallelTest, FilterSelectsEverything) {
  CheckQueryAcrossThreads(10007,
                          "select count(*) as c from orders where price >= 0");
}

TEST_F(ParallelTest, GroupedAggregates) {
  // No ORDER BY on purpose: the group discovery order (first occurrence in
  // row order) must itself be deterministic across thread counts.
  CheckQueryAcrossThreads(
      10007,
      "select city, count(*) as c, sum(qty) as sq, sum(price) as sp, "
      "avg(price) as ap, min(price) as mn, max(id) as mx, "
      "count(distinct qty) as dq, median(price) as md "
      "from orders group by city");
}

TEST_F(ParallelTest, GlobalAggregateNoGroupBy) {
  CheckQueryAcrossThreads(
      10007,
      "select count(*) as c, sum(price) as sp, min(qty) as mn, "
      "ndv(qty) as nd from orders where qty is not null");
}

TEST_F(ParallelTest, GroupByHighCardinalityWithHaving) {
  CheckQueryAcrossThreads(
      10007,
      "select k, qty, count(*) as c, sum(price) as sp from orders "
      "group by k, qty having count(*) > 2");
}

TEST_F(ParallelTest, VarianceAcrossThreads) {
  // Bit-identical, no tolerance: every thread count runs the same morsel
  // decomposition with Welford partials Chan-merged in morsel order.
  CheckQueryAcrossThreads(
      10007,
      "select city, var(price) as vp, stddev(qty) as sq from orders "
      "group by city");
}

TEST_F(ParallelTest, FullMantissaSumsBitIdenticalAcrossThreads) {
  // Doubles with full 53-bit mantissas, where naive partial-sum merges WOULD
  // differ from a serial row-order accumulation in the last ulps. The fixed
  // morsel decomposition plus Neumaier-compensated kernels make serial and
  // N-thread sums/averages/variances bit-identical — no epsilon here.
  auto build = [] {
    Rng rng(kSeed + 1);
    auto t = std::make_shared<Table>();
    t->AddColumn("g", TypeId::kInt64);
    t->AddColumn("x", TypeId::kDouble);
    for (size_t r = 0; r < 10007; ++r) {
      t->AppendRow({Value::Int(static_cast<int64_t>(r % 7)),
                    Value::Double((rng.NextDouble() - 0.5) * 1e6)});
    }
    return t;
  };
  ResultSet ref;
  const char* sql =
      "select g, sum(x) as sx, avg(x) as ax, var(x) as vx, stddev(x) as dx "
      "from t group by g";
  for (int threads : {1, 2, 8}) {
    Database db(kSeed);
    db.set_num_threads(threads);
    ASSERT_TRUE(db.RegisterTable("t", build()).ok());
    auto rs = db.Execute(sql);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    if (threads == 1) {
      ref = rs.value();
    } else {
      ExpectSameResults(ref, rs.value(),
                        std::string("full-mantissa sums @") +
                            std::to_string(threads) + " threads");
    }
  }
}

TEST_F(ParallelTest, HashJoinProbe) {
  CheckQueryAcrossThreads(
      10007,
      "select o.id, o.price, d.label from orders o join dim d on o.k = d.k "
      "where o.price > 250");
}

TEST_F(ParallelTest, LeftJoinNullExtension) {
  CheckQueryAcrossThreads(
      10007,
      "select o.id, d.label from orders o left join dim d on o.k = d.k");
}

TEST_F(ParallelTest, LeftJoinWhereOnNullExtendedColumn) {
  // The WHERE is pushed down onto the join's pair-list view (filtering
  // candidate pairs before the combined gather); IS NULL over the
  // null-extended right column must see exactly the post-materialization
  // semantics, at every thread count.
  CheckQueryAcrossThreads(
      10007,
      "select o.id, o.k from orders o left join dim d on o.k = d.k "
      "where d.label is null");
}

TEST_F(ParallelTest, JoinWhereMixingBothSides) {
  CheckQueryAcrossThreads(
      10007,
      "select o.id, d.label from orders o join dim d on o.k = d.k "
      "where o.price > 100 and d.k % 3 = 1");
}

TEST_F(ParallelTest, JoinWhereWithRandPushedDown) {
  // rand() in the WHERE rides the pair-view pushdown like any other
  // predicate: draws address the global pair ordinal (= materialized row),
  // so seeded runs are reproducible and thread-count independent.
  CheckQueryAcrossThreads(
      2003,
      "select o.id from orders o join dim d on o.k = d.k where rand() < 0.5");
}

TEST_F(ParallelTest, JoinThenGroupedAggregate) {
  CheckQueryAcrossThreads(
      10007,
      "select d.label, count(*) as c, sum(o.price) as sp "
      "from orders o join dim d on o.k = d.k group by d.label");
}

TEST_F(ParallelTest, DistinctAndOrderBy) {
  CheckQueryAcrossThreads(
      10007, "select distinct city, qty from orders order by city, qty");
}

TEST_F(ParallelTest, RandPredicateRowAddressedAcrossThreads) {
  // rand() runs on the morsel-parallel path; row-addressed draws make the
  // selected rows identical for every thread setting.
  CheckQueryAcrossThreads(10007,
                          "select count(*) as c from orders where rand() < 0.5");
}

// ---- morsel-boundary edge cases -------------------------------------------

TEST_F(ParallelTest, RowCountSmallerThanOneMorsel) {
  CheckQueryAcrossThreads(
      17, "select city, count(*) as c, sum(price) as sp from orders "
          "group by city");
}

TEST_F(ParallelTest, RowCountExactMultipleOfMorsel) {
  CheckQueryAcrossThreads(
      3 * kTestMorselRows,
      "select count(*) as c, sum(price) as sp from orders where qty < 30");
}

TEST_F(ParallelTest, RowCountOffByOneAroundMorsel) {
  for (size_t n : {kTestMorselRows - 1, kTestMorselRows, kTestMorselRows + 1,
                   5 * kTestMorselRows - 1, 5 * kTestMorselRows + 1}) {
    CheckQueryAcrossThreads(
        n, "select city, count(*) as c, sum(price) as sp from orders "
           "group by city");
  }
}

TEST_F(ParallelTest, TinyMorsels) {
  // Morsels far smaller than a natural batch: many single-digit work units.
  SetMorselRowsForTest(7);
  CheckQueryAcrossThreads(
      500, "select qty, count(*) as c from orders where price > 100 "
           "group by qty");
}

TEST_F(ParallelTest, EmptyInput) {
  auto empty = std::make_shared<Table>();
  empty->AddColumn("x", TypeId::kInt64);
  for (int threads : {1, 2, 8}) {
    Database db(kSeed);
    db.set_num_threads(threads);
    ASSERT_TRUE(db.RegisterTable("t", empty).ok());
    auto rs = db.Execute("select count(*) as c, sum(x) as s from t where x > 0");
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(rs.value().NumRows(), 1u);
    EXPECT_EQ(rs.value().Get(0, 0).AsInt(), 0);
    EXPECT_TRUE(rs.value().Get(0, 1).is_null());
  }
}

TEST_F(ParallelTest, NanGroupKeysAcrossThreads) {
  // Both NaN signs must land in ONE group on every path: the serial
  // vectorized group ids, the parallel morsel-local group ids, and the
  // cross-morsel ValueGroupKey merge (which canonicalizes NaN).
  const double nan_pos = std::numeric_limits<double>::quiet_NaN();
  auto build = [&]() {
    auto t = std::make_shared<Table>();
    t->AddColumn("g", TypeId::kDouble);
    t->AddColumn("v", TypeId::kInt64);
    for (size_t r = 0; r < 3000; ++r) {
      double g = (r % 3 == 0) ? nan_pos : (r % 3 == 1) ? -nan_pos : 1.5;
      t->AppendRow({Value::Double(g), Value::Int(1)});
    }
    return t;
  };
  ResultSet ref;
  for (int threads : {1, 2, 8}) {
    Database db(kSeed);
    db.set_num_threads(threads);
    ASSERT_TRUE(db.RegisterTable("t", build()).ok());
    auto rs = db.Execute("select count(*) as c, sum(v) as sv from t group by g");
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(rs.value().NumRows(), 2u) << threads << " threads";
    if (threads == 1) {
      ref = rs.value();
    } else {
      ExpectSameResults(ref, rs.value(),
                        "nan groups @" + std::to_string(threads));
    }
  }
}

TEST_F(ParallelTest, ConcurrentCallersShareThePool) {
  // Two application threads each running parallel queries against their own
  // Database: the pool publishes one job at a time, so the callers must
  // queue cleanly (no clobbered jobs) and both get the serial-path answer.
  auto ref_db = MakeDb(10007, 1);
  auto ref = ref_db->Execute("select city, count(*) as c, sum(price) as sp "
                             "from orders group by city");
  ASSERT_TRUE(ref.ok());
  auto worker = [&](int* failures) {
    auto db = MakeDb(10007, 4);
    for (int i = 0; i < 20; ++i) {
      auto got = db->Execute("select city, count(*) as c, sum(price) as sp "
                             "from orders group by city");
      if (!got.ok() || got.value().NumRows() != ref.value().NumRows()) {
        ++*failures;
        continue;
      }
      for (size_t r = 0; r < ref.value().NumRows(); ++r) {
        for (size_t c = 0; c < ref.value().NumCols(); ++c) {
          if (!ref.value().Get(r, c).Equals(got.value().Get(r, c))) {
            ++*failures;
          }
        }
      }
    }
  };
  int fail_a = 0, fail_b = 0;
  std::thread a(worker, &fail_a);
  std::thread b(worker, &fail_b);
  a.join();
  b.join();
  EXPECT_EQ(fail_a, 0);
  EXPECT_EQ(fail_b, 0);
}

TEST_F(ParallelTest, SharedDatabaseConcurrentSelects) {
  // Regression for the shared-Database races: NewQuerySeed() used to mutate
  // the Rng unlocked and AddRowsScanned() was a plain += — two threads
  // running SELECTs against ONE Database could corrupt generator state and
  // lose scan-count updates. NewQuerySeed now serializes on seed_mu_ and
  // rows_scanned_ is atomic, so this must be exact (and TSan-clean; the CI
  // thread-sanitizer job runs this suite).
  auto db = MakeDb(10007, 4);
  const char* kSql =
      "select city, count(*) as c, sum(price) as sp "
      "from orders group by city order by city";
  auto ref = db->Execute(kSql);
  ASSERT_TRUE(ref.ok());
  const uint64_t scanned_per_query = db->rows_scanned();
  ASSERT_GT(scanned_per_query, 0u);

  constexpr int kItersPerThread = 20;
  auto worker = [&](int* failures) {
    for (int i = 0; i < kItersPerThread; ++i) {
      auto got = db->Execute(kSql);
      if (!got.ok() || got.value().NumRows() != ref.value().NumRows()) {
        ++*failures;
        continue;
      }
      for (size_t r = 0; r < ref.value().NumRows(); ++r) {
        for (size_t c = 0; c < ref.value().NumCols(); ++c) {
          if (!ref.value().Get(r, c).Equals(got.value().Get(r, c))) {
            ++*failures;
          }
        }
      }
    }
  };
  // A third thread runs the same statement under a pre-cancelled guard and
  // an immediate deadline: its executions must unwind with kCancelled /
  // kDeadlineExceeded without perturbing the other threads' results or the
  // shared rows_scanned tally. Each doomed run still resolves the base table
  // (the scan is counted at plan time, before the first cooperative poll),
  // so its contribution stays exact.
  constexpr int kDoomedIters = 10;
  int doomed_bad = 0;
  auto doomed = [&]() {
    ExecGuard guard;
    for (int i = 0; i < kDoomedIters; ++i) {
      guard.ResetForStatement();
      guard.set_deadline_after_ms(0);
      if (i % 2 == 0) {
        guard.RequestCancel();
      } else {
        // Sleep past a 1 ms deadline so the very first poll trips it.
        guard.set_deadline_after_ms(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
      auto got = db->Execute(kSql, &guard);
      const StatusCode want =
          i % 2 == 0 ? StatusCode::kCancelled : StatusCode::kDeadlineExceeded;
      if (got.ok() || got.status().code() != want) ++doomed_bad;
    }
  };
  int fail_a = 0, fail_b = 0;
  std::thread a(worker, &fail_a);
  std::thread b(worker, &fail_b);
  std::thread c(doomed);
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(fail_a, 0);
  EXPECT_EQ(fail_b, 0);
  EXPECT_EQ(doomed_bad, 0);
  // Every execution scans the base table exactly once — including the doomed
  // ones, which count the scan before unwinding; a lost update here means
  // AddRowsScanned raced.
  EXPECT_EQ(db->rows_scanned(),
            scanned_per_query * (1 + 2 * kItersPerThread + kDoomedIters));
}

// ---- row-addressed rand: plan-shape and substrate invariance ---------------

/// The AQP hot-path shape: GROUP BY (g, __vdb_sid) over a derived table that
/// assigns `1 + floor(rand() * b)` per row (core/rewriter.cc, Appendix G
/// Query 9's inner query).
constexpr const char* kSidAggregateSql =
    "select city, sid, count(*) as c, sum(price) as sp from "
    "(select *, 1 + floor(rand() * 64) as sid from orders) t "
    "group by city, sid order by city, sid";

class RowAddressedRandTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMorselRowsForTest(kTestMorselRows); }
  void TearDown() override {
    SetMorselRowsForTest(0);
    SetJoinWherePushdownForTest(true);
    SetSerialRandBaselineForTest(false);
  }
};

TEST_F(RowAddressedRandTest, SidGroupByBitIdenticalAcrossThreads) {
  CheckQueryAcrossThreads(10007, kSidAggregateSql);
}

TEST_F(RowAddressedRandTest, BernoulliWhereBitIdenticalAcrossThreads) {
  CheckQueryAcrossThreads(
      10007,
      "select count(*) as c, sum(price) as sp, avg(qty) as aq "
      "from orders where rand() < 0.3");
}

TEST_F(RowAddressedRandTest, SampledJoinAggregateAcrossThreads) {
  CheckQueryAcrossThreads(
      10007,
      "select d.label, count(*) as c, sum(o.price) as sp "
      "from orders o join dim d on o.k = d.k where rand() < 0.5 "
      "group by d.label order by d.label");
}

TEST_F(RowAddressedRandTest, RandPoissonAcrossThreads) {
  CheckQueryAcrossThreads(
      10007,
      "select qty, sum(price * rand_poisson()) as s from orders "
      "where qty is not null group by qty order by qty");
}

TEST_F(RowAddressedRandTest, RandInGroupByRunsPartialAggregation) {
  // rand() directly in the grouping expression: no serial pin remains, and
  // morsel-partial aggregation must still merge to the serial reference.
  CheckQueryAcrossThreads(
      10007,
      "select 1 + floor(rand() * 8) as bucket, count(*) as c from orders "
      "group by bucket order by bucket");
}

/// Runs `sql` on a fresh seeded database and returns the result.
ResultSet RunFresh(const std::string& sql, int threads) {
  auto db = MakeDb(10007, threads);
  auto rs = db->Execute(sql);
  EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status().ToString();
  return rs.ok() ? rs.value() : ResultSet{};
}

TEST_F(RowAddressedRandTest, PairViewPushdownToggleInvariant) {
  // The same rand()-bearing join WHERE, evaluated on candidate pairs
  // (pushdown) vs the materialized join (post-gather): the draws address
  // the pair ordinal = materialized row, so results are bit-identical.
  const std::string sql =
      "select o.id, d.label from orders o join dim d on o.k = d.k "
      "where rand() < 0.5 and o.price > 100";
  SetJoinWherePushdownForTest(true);
  ResultSet on = RunFresh(sql, 8);
  SetJoinWherePushdownForTest(false);
  ResultSet off = RunFresh(sql, 8);
  ExpectSameResults(on, off, "pushdown on vs off");
}

TEST_F(RowAddressedRandTest, RandInProjectionOverJoinPushdownInvariant) {
  // rand() in the SELECT list of a joined-and-filtered query: pushdown would
  // compact the gathered join to the WHERE survivors, changing the physical
  // rows the projection's draws address — so the planner must keep such
  // statements on the post-gather plan, making the toggle a no-op and the
  // results identical.
  const std::string sql =
      "select o.id, 1 + floor(rand() * 16) as sid from orders o "
      "join dim d on o.k = d.k where o.id % 2 = 0";
  SetJoinWherePushdownForTest(true);
  ResultSet on = RunFresh(sql, 8);
  SetJoinWherePushdownForTest(false);
  ResultSet off = RunFresh(sql, 8);
  ExpectSameResults(on, off, "projection rand, pushdown on vs off");
}

TEST_F(RowAddressedRandTest, SerialRandBaselineProducesIdenticalResults) {
  // The pre-row-addressed executor (row-interpreter fallback + serial pin),
  // re-enabled via the baseline hook, must produce the same values the
  // vectorized parallel substrate does: draws are row-addressed in both.
  SetSerialRandBaselineForTest(false);
  ResultSet vectorized = RunFresh(kSidAggregateSql, 8);
  SetSerialRandBaselineForTest(true);
  ResultSet pinned = RunFresh(kSidAggregateSql, 1);
  ExpectSameResults(vectorized, pinned, "vectorized vs pinned-serial baseline");
}

TEST_F(RowAddressedRandTest, ViewPipelineMatchesEagerReference) {
  // View pipeline (WHERE stays a view) vs an eager reference that
  // materializes the Bernoulli survivors first. Both databases execute the
  // same statement sequence from the same seed, so the rand() draws — and
  // therefore the surviving rows — must coincide.
  const std::string pred = "rand() < 0.4";
  auto eager_db = MakeDb(10007, 8);
  ASSERT_TRUE(eager_db
                  ->Execute("create table tf as select * from orders where " +
                            pred)
                  .ok());
  auto ref = eager_db->Execute(
      "select city, count(*) as c, sum(price) as sp from tf group by city");
  ASSERT_TRUE(ref.ok());
  auto view_db = MakeDb(10007, 8);
  auto got = view_db->Execute(
      "select city, count(*) as c, sum(price) as sp from orders where " +
      pred + " group by city");
  ASSERT_TRUE(got.ok());
  ExpectSameResults(ref.value(), got.value(), "eager vs view pipeline");
}

TEST_F(RowAddressedRandTest, EndToEndAqpBitIdenticalAcrossThreads) {
  // Full middleware path: sample preparation + the rewritten variational
  // query (GROUP BY g, __vdb_sid) at 1/2/8 threads. Sample membership, sid
  // assignment, and every aggregate must agree bit for bit.
  std::vector<ResultSet> results;
  for (int threads : {1, 2, 8}) {
    auto db = std::make_unique<Database>(kSeed);
    ASSERT_TRUE(db->RegisterTable("orders", BuildOrders(50000)).ok());
    core::VerdictOptions opts;
    opts.num_threads = threads;
    opts.min_rows_for_sampling = 10000;
    opts.io_budget = 0.2;
    core::VerdictContext ctx(db.get(), driver::EngineKind::kGeneric, opts);
    ASSERT_TRUE(
        ctx.sample_builder().CreateUniformSample("orders", 0.1).ok());
    core::VerdictContext::ExecInfo info;
    auto rs = ctx.Execute(
        "select city, count(*) as c, sum(price) as sp from orders "
        "group by city order by city",
        &info);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_TRUE(info.approximated) << info.skip_reason;
    results.push_back(rs.value());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectSameResults(results[0], results[i],
                      "AQP e2e @" + std::to_string(i == 1 ? 2 : 8));
  }
}

// ---- sample construction ---------------------------------------------------

TEST_F(ParallelTest, SampleBuildsDeterministicAcrossThreads) {
  struct SamplePair {
    ResultSet uniform;
    ResultSet hashed;
  };
  std::vector<SamplePair> results;
  for (int threads : {1, 2, 8}) {
    auto db = std::make_unique<Database>(kSeed);
    ASSERT_TRUE(db->RegisterTable("orders", BuildOrders(10007)).ok());
    core::VerdictOptions opts;
    opts.num_threads = threads;
    core::VerdictContext ctx(db.get(), driver::EngineKind::kGeneric, opts);
    auto uni = ctx.sample_builder().CreateUniformSample("orders", 0.3);
    ASSERT_TRUE(uni.ok()) << uni.status().ToString();
    auto hashed = ctx.sample_builder().CreateHashedSample("orders", "id", 0.3);
    ASSERT_TRUE(hashed.ok()) << hashed.status().ToString();
    auto u = db->Execute("select * from " + uni.value().sample_table);
    auto h = db->Execute("select * from " + hashed.value().sample_table);
    ASSERT_TRUE(u.ok());
    ASSERT_TRUE(h.ok());
    results.push_back({u.value(), h.value()});
  }
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectSameResults(results[0].uniform, results[i].uniform,
                      "uniform sample");
    ExpectSameResults(results[0].hashed, results[i].hashed, "hashed sample");
  }
}

}  // namespace
}  // namespace vdb::engine
