// Differential tests for the vectorized expression evaluator: the batch
// evaluator (engine/vector_eval.h) must agree with the row-at-a-time
// interpreter (engine/expr_eval.h) — values and NULLs, including three-valued
// logic — on randomized expression trees and NULL patterns, plus
// selection-vector edge cases (empty, all-pass, single-row).
//
// The late-materialization section at the bottom fuzzes the full engine
// pipeline: every query runs through the view pipeline (WHERE survivors stay
// a (table, SelVector) RowView all the way to the result boundary) at 1, 2
// and 8 threads, against an eager-gather reference that materializes the
// filtered table between the scan and the rest of the query. All four runs
// must be BIT-identical — doubles compared by bit pattern — across
// randomized predicates, NULL patterns, and full-mantissa values.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "engine/database.h"
#include "engine/expr_eval.h"
#include "engine/kernels/kernels.h"
#include "engine/table.h"
#include "engine/vector_eval.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace vdb::engine {
namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

// ---------------------------------------------------------------------------
// Random table / expression generation
// ---------------------------------------------------------------------------

TablePtr MakeRandomTable(Rng* rng, size_t rows) {
  auto t = std::make_shared<Table>();
  t->AddColumn("i1", TypeId::kInt64);
  t->AddColumn("i2", TypeId::kInt64);     // with NULLs
  t->AddColumn("d1", TypeId::kDouble);
  t->AddColumn("d2", TypeId::kDouble);    // with NULLs
  t->AddColumn("s1", TypeId::kString);    // with NULLs
  t->AddColumn("b1", TypeId::kBool);
  static const char* kStrings[] = {"a", "ab", "abc", "ba", "x", ""};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.push_back(Value::Int(rng->NextInRange(-6, 6)));
    row.push_back(rng->NextBernoulli(0.25)
                      ? Value::Null()
                      : Value::Int(rng->NextInRange(-4, 4)));
    row.push_back(
        Value::Double(static_cast<double>(rng->NextInRange(-40, 40)) / 8.0));
    row.push_back(rng->NextBernoulli(0.25)
                      ? Value::Null()
                      : Value::Double(
                            static_cast<double>(rng->NextInRange(-20, 20)) /
                            4.0));
    row.push_back(rng->NextBernoulli(0.2)
                      ? Value::Null()
                      : Value::String(kStrings[rng->NextBounded(6)]));
    row.push_back(Value::Bool(rng->NextBernoulli(0.5)));
    t->AppendRow(row);
  }
  return t;
}

class ExprGen {
 public:
  explicit ExprGen(Rng* rng) : rng_(rng) {}

  Expr::Ptr Gen(int depth) {
    if (depth <= 0 || rng_->NextBernoulli(0.25)) return GenLeaf();
    switch (rng_->NextBounded(10)) {
      case 0: return GenArith(depth);
      case 1: return GenCompare(depth);
      case 2: return GenLogic(depth);
      case 3: return GenUnary(depth);
      case 4: return GenCase(depth);
      case 5: return GenIsNull(depth);
      case 6: return GenInList(depth);
      case 7: return GenBetween(depth);
      case 8: return GenFunction(depth);
      default: return GenLike(depth);
    }
  }

 private:
  Expr::Ptr GenLeaf() {
    if (rng_->NextBernoulli(0.55)) {
      // Bound column reference.
      static const char* kCols[] = {"i1", "i2", "d1", "d2", "s1", "b1"};
      const int idx = static_cast<int>(rng_->NextBounded(6));
      auto e = sql::MakeColumnRef("", kCols[idx]);
      e->bound_column = idx;
      return e;
    }
    switch (rng_->NextBounded(5)) {
      case 0: return sql::MakeIntLit(rng_->NextInRange(-5, 5));
      case 1:
        return sql::MakeDoubleLit(
            static_cast<double>(rng_->NextInRange(-10, 10)) / 4.0);
      case 2: {
        static const char* kPool[] = {"a", "ab", "b", "%b%", "a_"};
        return sql::MakeStringLit(kPool[rng_->NextBounded(5)]);
      }
      case 3: return sql::MakeLiteral(Value::Bool(rng_->NextBernoulli(0.5)));
      default: return sql::MakeLiteral(Value::Null());
    }
  }

  Expr::Ptr GenArith(int depth) {
    static const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                    BinaryOp::kMul, BinaryOp::kDiv,
                                    BinaryOp::kMod};
    return sql::MakeBinary(kOps[rng_->NextBounded(5)], Gen(depth - 1),
                           Gen(depth - 1));
  }

  Expr::Ptr GenCompare(int depth) {
    static const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                    BinaryOp::kLt, BinaryOp::kLe,
                                    BinaryOp::kGt, BinaryOp::kGe};
    return sql::MakeBinary(kOps[rng_->NextBounded(6)], Gen(depth - 1),
                           Gen(depth - 1));
  }

  Expr::Ptr GenLogic(int depth) {
    return sql::MakeBinary(
        rng_->NextBernoulli(0.5) ? BinaryOp::kAnd : BinaryOp::kOr,
        Gen(depth - 1), Gen(depth - 1));
  }

  Expr::Ptr GenUnary(int depth) {
    return sql::MakeUnary(
        rng_->NextBernoulli(0.5) ? UnaryOp::kNeg : UnaryOp::kNot,
        Gen(depth - 1));
  }

  Expr::Ptr GenCase(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kCase);
    const size_t whens = 1 + rng_->NextBounded(2);
    for (size_t i = 0; i < whens; ++i) {
      e->case_whens.push_back(Gen(depth - 1));
      e->case_thens.push_back(Gen(depth - 1));
    }
    if (rng_->NextBernoulli(0.7)) e->case_else = Gen(depth - 1);
    return e;
  }

  Expr::Ptr GenIsNull(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kIsNull);
    e->args.push_back(Gen(depth - 1));
    e->negated = rng_->NextBernoulli(0.5);
    return e;
  }

  Expr::Ptr GenInList(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kInList);
    e->args.push_back(Gen(depth - 1));
    const size_t items = 1 + rng_->NextBounded(3);
    for (size_t i = 0; i < items; ++i) e->args.push_back(Gen(depth - 1));
    e->negated = rng_->NextBernoulli(0.5);
    return e;
  }

  Expr::Ptr GenBetween(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kBetween);
    e->args.push_back(Gen(depth - 1));
    e->args.push_back(Gen(depth - 1));
    e->args.push_back(Gen(depth - 1));
    e->negated = rng_->NextBernoulli(0.5);
    return e;
  }

  Expr::Ptr GenLike(int depth) {
    static const char* kPatterns[] = {"a%", "%b", "%a%", "a_", "_", "%"};
    return sql::MakeBinary(BinaryOp::kLike, Gen(depth - 1),
                           sql::MakeStringLit(kPatterns[rng_->NextBounded(6)]));
  }

  Expr::Ptr GenFunction(int depth) {
    // rand-family calls are fair game: draws are row-addressed, so the
    // batch kernels and the row interpreter produce identical values (each
    // generated call gets its own site id).
    switch (rng_->NextBounded(11)) {
      case 0: return Call("abs", Gen(depth - 1));
      case 1: return Call("floor", Gen(depth - 1));
      case 2: return Call("coalesce", Gen(depth - 1), Gen(depth - 1));
      case 3:
        return Call("if", Gen(depth - 1), Gen(depth - 1), Gen(depth - 1));
      case 4: return Call("length", Gen(depth - 1));
      case 5: return Call("verdict_hash", Gen(depth - 1));
      case 6: return Sited(Call("rand"));
      case 7: return Sited(Call("rand_poisson"));
      case 8: return Call("ceil", Gen(depth - 1));
      case 9: return Call("sqrt", Gen(depth - 1));
      default: return Call("greatest", Gen(depth - 1), Gen(depth - 1));
    }
  }

  Expr::Ptr Sited(Expr::Ptr e) {
    e->rand_site = next_site_++;
    return e;
  }

  template <typename... Args>
  Expr::Ptr Call(std::string name, Args... args) {
    std::vector<Expr::Ptr> argv;
    (argv.push_back(std::move(args)), ...);
    return sql::MakeFunction(std::move(name), std::move(argv));
  }

  Rng* rng_;
  int next_site_ = 1;
};

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.AsDouble(), y = b.AsDouble();
    if (std::isnan(x) && std::isnan(y)) return true;
    return x == y;
  }
  if (a.type() == TypeId::kString && b.type() == TypeId::kString) {
    return a.AsString() == b.AsString();
  }
  return false;
}

/// Row-side reference: evaluates per row and materializes through
/// Column::Append, exactly as the pre-vectorization executor did.
Result<Column> RowReference(const Expr& e, const Batch& b) {
  Column col;
  for (size_t k = 0; k < b.size(); ++k) {
    RowCtx ctx{b.table, b.RowAt(k), b.rand_seed, b.row_id_offset};
    auto v = EvalExpr(e, ctx);
    if (!v.ok()) return v.status();
    col.Append(v.value());
  }
  return col;
}

void ExpectBatchMatchesRow(const Expr& e, const Batch& b) {
  auto row_col = RowReference(e, b);
  auto batch_col = EvalExprBatch(e, b);
  ASSERT_EQ(row_col.ok(), batch_col.ok()) << sql::PrintExpr(e);
  if (!row_col.ok()) return;
  const Column& rc = row_col.value();
  const Column& bc = batch_col.value();
  ASSERT_EQ(rc.size(), b.size());
  ASSERT_EQ(bc.size(), b.size()) << sql::PrintExpr(e);
  for (size_t k = 0; k < b.size(); ++k) {
    EXPECT_TRUE(SameValue(rc.Get(k), bc.Get(k)))
        << sql::PrintExpr(e) << " row " << k << ": row-eval="
        << rc.Get(k).ToString() << " batch=" << bc.Get(k).ToString();
  }

  // Predicate semantics: selected rows must match EvalPredicate exactly.
  SelVector batch_sel;
  ASSERT_TRUE(EvalPredicateBatch(e, b, &batch_sel).ok());
  SelVector row_sel;
  for (size_t k = 0; k < b.size(); ++k) {
    RowCtx ctx{b.table, b.RowAt(k), b.rand_seed, b.row_id_offset};
    auto pass = EvalPredicate(e, ctx);
    ASSERT_TRUE(pass.ok());
    if (pass.value()) row_sel.push_back(b.RowAt(k));
  }
  EXPECT_EQ(batch_sel, row_sel) << sql::PrintExpr(e);
}

// ---------------------------------------------------------------------------
// Differential fuzz
// ---------------------------------------------------------------------------

TEST(VectorEvalFuzz, BatchMatchesRowOnFullTable) {
  Rng rng(20260729);
  auto t = MakeRandomTable(&rng, 257);
  ExprGen gen(&rng);
  for (int i = 0; i < 400; ++i) {
    auto e = gen.Gen(4);
    Batch b{t.get(), nullptr, /*rand_seed=*/7};
    ExpectBatchMatchesRow(*e, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(VectorEvalFuzz, BatchMatchesRowUnderSelectionVector) {
  Rng rng(42424242);
  auto t = MakeRandomTable(&rng, 301);
  ExprGen gen(&rng);
  for (int i = 0; i < 200; ++i) {
    SelVector sel;
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      if (rng.NextBernoulli(0.4)) sel.push_back(r);
    }
    auto e = gen.Gen(3);
    Batch b{t.get(), &sel, /*rand_seed=*/11};
    ExpectBatchMatchesRow(*e, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(VectorEvalFuzz, RandomNullPatterns) {
  // Tables whose nullable columns are mostly/entirely NULL stress the lazy
  // null-mask paths.
  Rng rng(555);
  auto t = std::make_shared<Table>();
  t->AddColumn("i1", TypeId::kInt64);
  t->AddColumn("i2", TypeId::kInt64);
  t->AddColumn("d1", TypeId::kDouble);
  t->AddColumn("d2", TypeId::kDouble);
  t->AddColumn("s1", TypeId::kString);
  t->AddColumn("b1", TypeId::kBool);
  for (size_t r = 0; r < 64; ++r) {
    t->AppendRow({Value::Null(), Value::Null(),
                  rng.NextBernoulli(0.1) ? Value::Double(1.5) : Value::Null(),
                  Value::Null(), Value::Null(), Value::Null()});
  }
  ExprGen gen(&rng);
  for (int i = 0; i < 150; ++i) {
    auto e = gen.Gen(3);
    Batch b{t.get(), nullptr, /*rand_seed=*/3};
    ExpectBatchMatchesRow(*e, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Dispatch-level differential fuzz: every randomized expression must produce
// BIT-identical results (doubles compared by bit pattern, NULL masks exactly)
// under every available SIMD dispatch level. Tables carry the adversarial
// float classes (NaN, +0.0/-0.0, +/-inf) and extreme int64 values, and row
// counts straddle the 64-row word boundary so the AVX2 kernels' scalar tail
// handoff is exercised on every width.
// ---------------------------------------------------------------------------

TablePtr MakeAdversarialTable(Rng* rng, size_t rows) {
  auto t = std::make_shared<Table>();
  t->AddColumn("i1", TypeId::kInt64);
  t->AddColumn("i2", TypeId::kInt64);
  t->AddColumn("d1", TypeId::kDouble);
  t->AddColumn("d2", TypeId::kDouble);
  t->AddColumn("s1", TypeId::kString);
  t->AddColumn("b1", TypeId::kBool);
  const double kDoublePool[] = {
      std::numeric_limits<double>::quiet_NaN(),
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      1.5,
      -2.25,
      1e300,
  };
  const int64_t kIntPool[] = {std::numeric_limits<int64_t>::min(),
                              std::numeric_limits<int64_t>::max(), -3, 0, 5};
  static const char* kStrings[] = {"a", "ab", "", "ba"};
  auto pick_double = [&] {
    return rng->NextBernoulli(0.5)
               ? kDoublePool[rng->NextBounded(8)]
               : static_cast<double>(rng->NextInRange(-40, 40)) / 8.0;
  };
  auto pick_int = [&] {
    return rng->NextBernoulli(0.3) ? kIntPool[rng->NextBounded(5)]
                                   : rng->NextInRange(-6, 6);
  };
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.push_back(Value::Int(pick_int()));
    row.push_back(rng->NextBernoulli(0.25) ? Value::Null()
                                           : Value::Int(pick_int()));
    row.push_back(Value::Double(pick_double()));
    row.push_back(rng->NextBernoulli(0.25) ? Value::Null()
                                           : Value::Double(pick_double()));
    row.push_back(rng->NextBernoulli(0.2)
                      ? Value::Null()
                      : Value::String(kStrings[rng->NextBounded(4)]));
    row.push_back(Value::Bool(rng->NextBernoulli(0.5)));
    t->AppendRow(row);
  }
  return t;
}

/// Bit-exact column equality: NULL masks must match exactly, doubles are
/// compared as raw bit patterns (distinguishing -0.0 from 0.0 and preserving
/// the NaN class), everything else by exact value.
void ExpectColumnsBitIdentical(const Column& a, const Column& b,
                               const Expr& e, const char* level) {
  ASSERT_EQ(a.size(), b.size()) << sql::PrintExpr(e);
  ASSERT_EQ(a.type(), b.type()) << sql::PrintExpr(e) << " level " << level;
  for (size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a.IsNull(k), b.IsNull(k))
        << sql::PrintExpr(e) << " row " << k << " level " << level;
    if (a.IsNull(k)) continue;
    const Value va = a.Get(k), vb = b.Get(k);
    if (va.type() == TypeId::kDouble && vb.type() == TypeId::kDouble) {
      const double x = va.AsDouble(), y = vb.AsDouble();
      uint64_t xb, yb;
      std::memcpy(&xb, &x, sizeof(xb));
      std::memcpy(&yb, &y, sizeof(yb));
      ASSERT_EQ(xb, yb) << sql::PrintExpr(e) << " row " << k << " level "
                        << level << ": " << x << " vs " << y;
    } else {
      ASSERT_TRUE(SameValue(va, vb))
          << sql::PrintExpr(e) << " row " << k << " level " << level << ": "
          << va.ToString() << " vs " << vb.ToString();
    }
  }
}

TEST(SimdDispatchFuzz, BatchResultsBitIdenticalAcrossDispatchLevels) {
  namespace k = kernels;
  const k::SimdLevel detected = k::DetectedSimdLevel();
  std::vector<k::SimdLevel> levels{k::SimdLevel::kScalar};
  if (detected != k::SimdLevel::kScalar) levels.push_back(detected);
  // With only the scalar level available the loop still validates the
  // scalar-vs-scalar plumbing; the real cross-check needs AVX2 hardware.
  Rng rng(0xD15BA7C4);
  // Row counts straddling whole-word boundaries: sub-word, exact words, and
  // words plus ragged tails.
  const size_t kRowCounts[] = {1, 63, 64, 65, 127, 192, 301};
  for (size_t rows : kRowCounts) {
    auto t = MakeAdversarialTable(&rng, rows);
    ExprGen gen(&rng);
    for (int i = 0; i < 40; ++i) {
      auto e = gen.Gen(4);
      std::vector<Column> cols;
      std::vector<SelVector> sels;
      bool evals_ok = true;
      for (size_t li = 0; li < levels.size(); ++li) {
        k::SetSimdLevelForTest(levels[li]);
        Batch b{t.get(), nullptr, /*rand_seed=*/7};
        auto c = EvalExprBatch(*e, b);
        SelVector sel;
        Status ps = EvalPredicateBatch(*e, b, &sel);
        k::SetSimdLevelForTest(detected);
        // Errors come from the expression tree, never from a kernel, so if
        // any level errors it must be level 0 (and all levels alike).
        if (!c.ok() || !ps.ok()) {
          ASSERT_EQ(li, size_t{0})
              << "level-dependent error: " << sql::PrintExpr(*e);
          evals_ok = false;
          break;
        }
        cols.push_back(std::move(c).ValueOrDie());
        sels.push_back(std::move(sel));
      }
      if (!evals_ok) continue;
      for (size_t li = 1; li < cols.size(); ++li) {
        ExpectColumnsBitIdentical(cols[0], cols[li], *e,
                                  k::SimdLevelName(levels[li]));
        EXPECT_EQ(sels[0], sels[li])
            << sql::PrintExpr(*e) << " predicate survivors diverge at level "
            << k::SimdLevelName(levels[li]);
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Pins the gather kernels (gather_i64 / gather_f64) behind
// Column::AppendSelected: the AVX2 i64gather lanes must produce the same
// bytes as the scalar loops for arbitrary (unsorted, repeating) row lists,
// NULL masks included, at row counts straddling the 4-wide vector tail.
TEST(SimdDispatchFuzz, GatherLanesBitIdenticalAcrossDispatchLevels) {
  namespace k = kernels;
  const k::SimdLevel detected = k::DetectedSimdLevel();
  Rng rng(0x6A7BE2);
  Column ints(TypeId::kInt64);
  Column dbls(TypeId::kDouble);
  const size_t kSrcRows = 1031;
  for (size_t r = 0; r < kSrcRows; ++r) {
    if (rng.NextBernoulli(0.15)) {
      ints.AppendNull();
    } else {
      ints.AppendInt(static_cast<int64_t>(rng.Next()));
    }
    if (rng.NextBernoulli(0.15)) {
      dbls.AppendNull();
    } else {
      dbls.AppendDouble(rng.NextDouble() * 1e12 - 5e11);
    }
  }
  const size_t kCounts[] = {0, 1, 3, 4, 5, 63, 64, 65, 997};
  for (size_t count : kCounts) {
    std::vector<uint32_t> rows(count);
    for (size_t i = 0; i < count; ++i) {
      rows[i] = static_cast<uint32_t>(rng.NextBounded(kSrcRows));
    }
    for (const Column* src : {&ints, &dbls}) {
      k::SetSimdLevelForTest(k::SimdLevel::kScalar);
      Column a(src->type());
      a.AppendSelected(*src, rows.data(), count);
      k::SetSimdLevelForTest(detected);
      Column b(src->type());
      b.AppendSelected(*src, rows.data(), count);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(a.IsNull(i), b.IsNull(i)) << "row " << i;
        if (a.IsNull(i)) continue;
        if (src->type() == TypeId::kInt64) {
          ASSERT_EQ(a.IntData()[i], b.IntData()[i]) << "row " << i;
        } else {
          uint64_t ab, bb;
          std::memcpy(&ab, &a.DoubleData()[i], 8);
          std::memcpy(&bb, &b.DoubleData()[i], 8);
          ASSERT_EQ(ab, bb) << "row " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Selection-vector edge cases
// ---------------------------------------------------------------------------

class VectorEvalEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    table_ = MakeRandomTable(&rng, 50);
    pred_ = sql::MakeBinary(BinaryOp::kGt, BoundRef("i1", 0),
                            sql::MakeIntLit(0));
  }

  static Expr::Ptr BoundRef(const std::string& name, int idx) {
    auto e = sql::MakeColumnRef("", name);
    e->bound_column = idx;
    return e;
  }

  TablePtr table_;
  Expr::Ptr pred_;
};

TEST_F(VectorEvalEdgeTest, EmptySelection) {
  SelVector sel;  // no rows survive upstream
  Batch b{table_.get(), &sel, /*rand_seed=*/1};
  auto col = EvalExprBatch(*pred_, b);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value().size(), 0u);
  SelVector out;
  ASSERT_TRUE(EvalPredicateBatch(*pred_, b, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(VectorEvalEdgeTest, EmptyTable) {
  auto empty = table_->CloneSchema();
  Batch b{empty.get(), nullptr, /*rand_seed=*/1};
  auto col = EvalExprBatch(*pred_, b);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value().size(), 0u);
}

TEST_F(VectorEvalEdgeTest, AllPassSelection) {
  auto always = sql::MakeBinary(BinaryOp::kEq, sql::MakeIntLit(1),
                                sql::MakeIntLit(1));
  Batch b{table_.get(), nullptr, /*rand_seed=*/1};
  SelVector out;
  ASSERT_TRUE(EvalPredicateBatch(*always, b, &out).ok());
  ASSERT_EQ(out.size(), table_->num_rows());
  for (uint32_t r = 0; r < out.size(); ++r) EXPECT_EQ(out[r], r);
}

TEST_F(VectorEvalEdgeTest, SingleRowSelection) {
  SelVector sel{7};
  Batch b{table_.get(), &sel, /*rand_seed=*/1};
  ExpectBatchMatchesRow(*pred_, b);
  auto col = EvalExprBatch(*BoundRef("d1", 2), b);
  ASSERT_TRUE(col.ok());
  ASSERT_EQ(col.value().size(), 1u);
  EXPECT_TRUE(SameValue(col.value().Get(0), table_->Get(7, 2)));
}

// ---------------------------------------------------------------------------
// Three-valued logic pinning (NULL AND/OR/NOT)
// ---------------------------------------------------------------------------

TEST(VectorEvalLogicTest, KleeneTruthTable) {
  // One row; operands are literals covering all 9 AND/OR combinations.
  auto t = std::make_shared<Table>();
  Column c(TypeId::kInt64);
  c.AppendInt(0);
  t->AddColumn("x", std::move(c));

  auto lit = [](int tri) -> Expr::Ptr {  // -1 null, 0 false, 1 true
    if (tri < 0) return sql::MakeLiteral(Value::Null());
    return sql::MakeLiteral(Value::Bool(tri == 1));
  };
  const int tris[] = {-1, 0, 1};
  for (int a : tris) {
    for (int bvals : tris) {
      for (bool is_and : {true, false}) {
        auto e = sql::MakeBinary(is_and ? BinaryOp::kAnd : BinaryOp::kOr,
                                 lit(a), lit(bvals));
        Batch batch{t.get(), nullptr, /*rand_seed=*/5};
        ExpectBatchMatchesRow(*e, batch);
      }
    }
  }
  for (int a : tris) {
    auto e = sql::MakeUnary(UnaryOp::kNot, lit(a));
    Batch batch{t.get(), nullptr, /*rand_seed=*/5};
    ExpectBatchMatchesRow(*e, batch);
  }
}

// ---------------------------------------------------------------------------
// Bulk-copy paths
// ---------------------------------------------------------------------------

TEST(BulkCopyTest, AppendRangeAdoptsTypeAndNulls) {
  Column src(TypeId::kInt64);
  src.AppendInt(1);
  src.AppendNull();
  src.AppendInt(3);
  Column dst;
  dst.AppendRange(src, 0, 3);
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.type(), TypeId::kInt64);
  EXPECT_EQ(dst.Get(0).AsInt(), 1);
  EXPECT_TRUE(dst.IsNull(1));
  EXPECT_EQ(dst.Get(2).AsInt(), 3);
}

TEST(BulkCopyTest, AppendRangeMismatchedTypesFallsBack) {
  Column src(TypeId::kInt64);
  src.AppendInt(7);
  Column dst(TypeId::kDouble);
  dst.AppendDouble(0.5);
  dst.AppendRange(src, 0, 1);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(dst.Get(1).AsDouble(), 7.0);
}

TEST(BulkCopyTest, TableAppendSelectedGathers) {
  Rng rng(17);
  auto t = MakeRandomTable(&rng, 30);
  SelVector sel{29, 0, 15, 15};
  auto out = t->CloneSchema();
  out->AppendSelected(*t, sel);
  ASSERT_EQ(out->num_rows(), 4u);
  for (size_t c = 0; c < t->num_columns(); ++c) {
    for (size_t i = 0; i < sel.size(); ++i) {
      EXPECT_TRUE(SameValue(out->Get(i, c), t->Get(sel[i], c)))
          << "col " << c << " sel " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// RowView: composition, guards, gather fast paths
// ---------------------------------------------------------------------------

TablePtr MakeSequenceTable(size_t rows) {
  auto t = std::make_shared<Table>();
  std::vector<int64_t> v(rows);
  std::vector<double> d(rows);
  for (size_t r = 0; r < rows; ++r) {
    v[r] = static_cast<int64_t>(r);
    d[r] = static_cast<double>(r) * 1.5;
  }
  t->AddColumn("v", Column::FromData(TypeId::kInt64, std::move(v), {}, {}, {}));
  t->AddColumn("d", Column::FromData(TypeId::kDouble, {}, std::move(d), {}, {}));
  return t;
}

TEST(RowViewTest, ComposeFlattensViewOfView) {
  auto t = MakeSequenceTable(10);
  auto view = RowView::Select(t, {2, 4, 6, 8});
  ASSERT_TRUE(view.ok());
  // Positions into the view, not the table: {3, 0, 0} -> physical {8, 2, 2}.
  auto composed = view.value().Compose({3, 0, 0});
  ASSERT_TRUE(composed.ok());
  const RowView& cv = composed.value();
  ASSERT_EQ(cv.num_rows(), 3u);
  EXPECT_EQ(cv.RowAt(0), 8u);
  EXPECT_EQ(cv.RowAt(1), 2u);
  EXPECT_EQ(cv.RowAt(2), 2u);
  auto gathered = cv.Gather();
  ASSERT_EQ(gathered->num_rows(), 3u);
  EXPECT_EQ(gathered->Get(0, 0).AsInt(), 8);
  EXPECT_EQ(gathered->Get(1, 0).AsInt(), 2);
}

TEST(RowViewTest, ComposeOutOfRangeIsAStatusError) {
  auto t = MakeSequenceTable(10);
  auto view = RowView::Select(t, {1, 3});
  ASSERT_TRUE(view.ok());
  auto bad = view.value().Compose({2});  // view has 2 rows: positions 0 and 1
  EXPECT_FALSE(bad.ok());
}

TEST(RowViewTest, SelectOutOfRangeIsAStatusError) {
  auto t = MakeSequenceTable(10);
  auto bad = RowView::Select(t, {9, 10});
  EXPECT_FALSE(bad.ok());
}

TEST(RowViewTest, IdentityGatherIsZeroCopyAndPrefixTrims) {
  auto t = MakeSequenceTable(10);
  auto view = RowView::All(t);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.value().is_identity());
  EXPECT_EQ(view.value().Gather().get(), t.get());  // zero-copy fast path
  RowView prefix = view.value().Prefix(3);
  EXPECT_FALSE(prefix.is_identity());
  auto gathered = prefix.Gather();
  ASSERT_EQ(gathered->num_rows(), 3u);
  EXPECT_NE(gathered.get(), t.get());
  EXPECT_EQ(gathered->Get(2, 0).AsInt(), 2);
  // Prefix beyond the view is the whole view.
  EXPECT_EQ(view.value().Prefix(99).num_rows(), 10u);
}

TEST(RowViewTest, ChunkedGatherColumnMatchesSerial) {
  SetMorselRowsForTest(8);
  auto t = MakeSequenceTable(200);
  SelVector sel;
  for (uint32_t r = 0; r < 200; r += 3) sel.push_back(r);
  auto view = RowView::Select(t, sel);
  ASSERT_TRUE(view.ok());
  Column serial = view.value().GatherColumn(t->column(1), 1);
  Column chunked = view.value().GatherColumn(t->column(1), 4);
  ASSERT_EQ(serial.size(), chunked.size());
  EXPECT_EQ(serial.type(), chunked.type());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(SameValue(serial.Get(i), chunked.Get(i))) << i;
  }
  SetMorselRowsForTest(0);
}

TEST(ConcatChunksTest, UniformAndMixedTypes) {
  // Uniform int chunks with a kNull chunk absorbed as NULLs.
  Column a(TypeId::kInt64);
  a.AppendInt(1);
  a.AppendInt(2);
  Column allnull = Column::FromData(TypeId::kNull, {}, {}, {}, {1, 1});
  Column b(TypeId::kInt64);
  b.AppendInt(3);
  std::vector<Column> chunks;
  chunks.push_back(a);
  chunks.push_back(allnull);
  chunks.push_back(b);
  Column out = Column::ConcatChunks(std::move(chunks));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.type(), TypeId::kInt64);
  EXPECT_EQ(out.Get(0).AsInt(), 1);
  EXPECT_TRUE(out.IsNull(2));
  EXPECT_EQ(out.Get(4).AsInt(), 3);

  // Int chunk + double chunk: promote exactly like per-value Append.
  Column ic(TypeId::kInt64);
  ic.AppendInt(7);
  Column dc(TypeId::kDouble);
  dc.AppendDouble(0.5);
  std::vector<Column> mixed;
  mixed.push_back(std::move(ic));
  mixed.push_back(std::move(dc));
  Column m = Column::ConcatChunks(std::move(mixed));
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(m.Get(0).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(m.Get(1).AsDouble(), 0.5);
}

// ---------------------------------------------------------------------------
// Late materialization: view pipeline vs eager-gather pipeline, 1/2/8 threads
// ---------------------------------------------------------------------------

/// Bit-level value equality: doubles must match in their bit patterns, not
/// just numerically (this is what "at most one gather, and it changes
/// nothing" means for floating point).
bool BitIdentical(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  if (a.type() != b.type()) return false;
  if (a.type() == TypeId::kDouble) {
    const double x = a.AsDouble(), y = b.AsDouble();
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  }
  if (a.type() == TypeId::kString) return a.AsString() == b.AsString();
  return a.AsInt() == b.AsInt();
}

void ExpectBitIdenticalResults(const ResultSet& ref, const ResultSet& got,
                               const std::string& what) {
  ASSERT_EQ(ref.NumCols(), got.NumCols()) << what;
  ASSERT_EQ(ref.NumRows(), got.NumRows()) << what;
  for (size_t c = 0; c < ref.NumCols(); ++c) {
    EXPECT_EQ(ref.names[c], got.names[c]) << what;
  }
  for (size_t r = 0; r < ref.NumRows(); ++r) {
    for (size_t c = 0; c < ref.NumCols(); ++c) {
      ASSERT_TRUE(BitIdentical(ref.Get(r, c), got.Get(r, c)))
          << what << " cell (" << r << "," << c
          << "): " << ref.Get(r, c).ToString() << " vs "
          << got.Get(r, c).ToString();
    }
  }
}

/// Random fact table: a grouping key, full-mantissa doubles (partial-sum
/// merges would be ulp-visible without the fixed morsel structure), a
/// nullable int, and a nullable string.
TablePtr MakeFactTable(Rng* rng, size_t rows) {
  auto t = std::make_shared<Table>();
  t->AddColumn("g", TypeId::kInt64);
  t->AddColumn("x", TypeId::kDouble);
  t->AddColumn("y", TypeId::kInt64);
  t->AddColumn("s", TypeId::kString);
  static const char* kStrings[] = {"a", "bb", "ccc", "d", ""};
  for (size_t r = 0; r < rows; ++r) {
    t->AppendRow({Value::Int(rng->NextInRange(0, 6)),
                  Value::Double((rng->NextDouble() - 0.5) * 1e6),
                  rng->NextBernoulli(0.2) ? Value::Null()
                                          : Value::Int(rng->NextInRange(-50, 50)),
                  rng->NextBernoulli(0.15)
                      ? Value::Null()
                      : Value::String(kStrings[rng->NextBounded(5)])});
  }
  return t;
}

class LateMaterializationTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMorselRowsForTest(512); }
  void TearDown() override { SetMorselRowsForTest(0); }

  static constexpr uint64_t kSeed = 20260729;
  static constexpr size_t kRows = 4099;  // last morsel is a partial one

  /// Runs `select_list ... from t where pred ... tail` over the view
  /// pipeline (WHERE stays a view) at 1, 2 and 8 threads, and over an eager
  /// reference that materializes the filtered table first (create table ..
  /// as select * where ..), asserting all four result sets bit-identical.
  void CheckQuery(const std::string& pred, const std::string& select_list,
                  const std::string& tail = "") {
    const std::string suffix = tail.empty() ? "" : " " + tail;
    const std::string view_sql =
        select_list + " from t where " + pred + suffix;
    // Eager-gather reference: filter -> full-width materialize -> rest.
    Database eager_db(kSeed);
    {
      Rng data_rng(kSeed);
      ASSERT_TRUE(
          eager_db.RegisterTable("t", MakeFactTable(&data_rng, kRows)).ok());
    }
    auto created =
        eager_db.Execute("create table tf as select * from t where " + pred);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto ref = eager_db.Execute(select_list + " from tf" + suffix);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    for (int threads : {1, 2, 8}) {
      Database db(kSeed);
      Rng data_rng(kSeed);
      ASSERT_TRUE(db.RegisterTable("t", MakeFactTable(&data_rng, kRows)).ok());
      db.set_num_threads(threads);
      auto got = db.Execute(view_sql);
      ASSERT_TRUE(got.ok()) << view_sql << " -> " << got.status().ToString();
      ExpectBitIdenticalResults(
          ref.value(), got.value(),
          view_sql + " @" + std::to_string(threads) + " threads");
    }
  }
};

TEST_F(LateMaterializationTest, FilterProject) {
  CheckQuery("x > 0", "select g, x, x * 2.5 as xs");
}

TEST_F(LateMaterializationTest, FilterProjectNullableExpressions) {
  CheckQuery("y is not null and y < 20",
             "select y, x / y as q, coalesce(s, 'z') as cs");
}

TEST_F(LateMaterializationTest, FilterAggregate) {
  CheckQuery("x > -100000",
             "select g, count(*) as c, sum(x) as sx, avg(x) as ax, "
             "var(x) as vx, min(y) as mn, count(distinct s) as ds",
             "group by g");
}

TEST_F(LateMaterializationTest, FilterGlobalAggregate) {
  CheckQuery("y is not null",
             "select count(*) as c, sum(x * y) as sxy, stddev(x) as dx");
}

TEST_F(LateMaterializationTest, FilterHaving) {
  CheckQuery("x < 250000", "select g, sum(x) as sx",
             "group by g having count(*) > 100");
}

TEST_F(LateMaterializationTest, FilterDistinctOrderLimit) {
  CheckQuery("y > 0", "select distinct g, y", "order by g, y limit 11");
}

TEST_F(LateMaterializationTest, FilterOrderByExpressionDesc) {
  CheckQuery("x > 0", "select g, x", "order by x desc limit 37");
}

TEST_F(LateMaterializationTest, RandomizedPredicates) {
  Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    const int64_t c1 = rng.NextInRange(-400000, 400000);
    const int64_t c2 = rng.NextInRange(-40, 40);
    const std::string pred = "x > " + std::to_string(c1) + " and (y < " +
                             std::to_string(c2) + " or y is null)";
    CheckQuery(pred, "select g, count(*) as c, sum(x) as sx, avg(x) as ax",
               "group by g");
    CheckQuery(pred, "select g, x, y", "order by x limit 23");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(LateMaterializationTest, RandPredicateSeedReproducible) {
  // rand() runs morsel-parallel; its draws are row-addressed, so the
  // selected rows are identical whether the survivors are gathered eagerly
  // or carried as a view, at every thread count.
  CheckQuery("rand() < 0.5", "select g, count(*) as c, sum(x) as sx",
             "group by g");
}

// ---- view-pipeline edge cases ---------------------------------------------

TEST_F(LateMaterializationTest, AllFalsePredicateKeepsSchema) {
  Database db(kSeed);
  Rng data_rng(kSeed);
  ASSERT_TRUE(db.RegisterTable("t", MakeFactTable(&data_rng, 100)).ok());
  for (int threads : {1, 8}) {
    db.set_num_threads(threads);
    auto rs = db.Execute("select g, x, x + 1 as xp from t where x > 1e300");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs.value().NumRows(), 0u);
    ASSERT_EQ(rs.value().NumCols(), 3u);  // schema-complete, not schema-less
    EXPECT_EQ(rs.value().names[0], "g");
    EXPECT_EQ(rs.value().names[2], "xp");
    EXPECT_EQ(rs.value().table->num_columns(), 3u);
  }
}

TEST_F(LateMaterializationTest, EmptySourceTableKeepsSchema) {
  Database db(kSeed);
  auto empty = std::make_shared<Table>();
  empty->AddColumn("a", TypeId::kInt64);
  empty->AddColumn("b", TypeId::kDouble);
  ASSERT_TRUE(db.RegisterTable("t", empty).ok());
  auto rs = db.Execute("select a, b, a * b as ab from t where a > 0");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().NumRows(), 0u);
  EXPECT_EQ(rs.value().NumCols(), 3u);
  EXPECT_EQ(rs.value().table->num_columns(), 3u);
}

TEST_F(LateMaterializationTest, SelectionWithSingleRowLastMorsel) {
  // 512-row morsels; exactly 2 * 512 + 1 surviving rows puts one lone row in
  // the final morsel of every downstream view scan.
  Database db(kSeed);
  auto t = MakeSequenceTable(3000);
  ASSERT_TRUE(db.RegisterTable("t", t).ok());
  const std::string sql =
      "select v, d, d * 2.0 as dd from t where v < 1025";  // 1025 survivors
  ResultSet ref;
  for (int threads : {1, 2, 8}) {
    db.set_num_threads(threads);
    auto rs = db.Execute(sql);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs.value().NumRows(), 1025u);
    EXPECT_EQ(rs.value().Get(1024, 0).AsInt(), 1024);
    if (threads == 1) {
      ref = rs.value();
    } else {
      ExpectBitIdenticalResults(ref, rs.value(),
                                sql + " @" + std::to_string(threads));
    }
  }
}

TEST_F(LateMaterializationTest, SingleSurvivorProjection) {
  Database db(kSeed);
  auto t = MakeSequenceTable(3000);
  ASSERT_TRUE(db.RegisterTable("t", t).ok());
  for (int threads : {1, 8}) {
    db.set_num_threads(threads);
    auto rs = db.Execute("select v, d from t where v = 1717");
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(rs.value().NumRows(), 1u);
    ASSERT_EQ(rs.value().NumCols(), 2u);
    EXPECT_EQ(rs.value().Get(0, 0).AsInt(), 1717);
  }
}

}  // namespace
}  // namespace vdb::engine
