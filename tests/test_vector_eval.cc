// Differential tests for the vectorized expression evaluator: the batch
// evaluator (engine/vector_eval.h) must agree with the row-at-a-time
// interpreter (engine/expr_eval.h) — values and NULLs, including three-valued
// logic — on randomized expression trees and NULL patterns, plus
// selection-vector edge cases (empty, all-pass, single-row).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/expr_eval.h"
#include "engine/table.h"
#include "engine/vector_eval.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace vdb::engine {
namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

// ---------------------------------------------------------------------------
// Random table / expression generation
// ---------------------------------------------------------------------------

TablePtr MakeRandomTable(Rng* rng, size_t rows) {
  auto t = std::make_shared<Table>();
  t->AddColumn("i1", TypeId::kInt64);
  t->AddColumn("i2", TypeId::kInt64);     // with NULLs
  t->AddColumn("d1", TypeId::kDouble);
  t->AddColumn("d2", TypeId::kDouble);    // with NULLs
  t->AddColumn("s1", TypeId::kString);    // with NULLs
  t->AddColumn("b1", TypeId::kBool);
  static const char* kStrings[] = {"a", "ab", "abc", "ba", "x", ""};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.push_back(Value::Int(rng->NextInRange(-6, 6)));
    row.push_back(rng->NextBernoulli(0.25)
                      ? Value::Null()
                      : Value::Int(rng->NextInRange(-4, 4)));
    row.push_back(Value::Double(rng->NextInRange(-40, 40) / 8.0));
    row.push_back(rng->NextBernoulli(0.25)
                      ? Value::Null()
                      : Value::Double(rng->NextInRange(-20, 20) / 4.0));
    row.push_back(rng->NextBernoulli(0.2)
                      ? Value::Null()
                      : Value::String(kStrings[rng->NextBounded(6)]));
    row.push_back(Value::Bool(rng->NextBernoulli(0.5)));
    t->AppendRow(row);
  }
  return t;
}

class ExprGen {
 public:
  explicit ExprGen(Rng* rng) : rng_(rng) {}

  Expr::Ptr Gen(int depth) {
    if (depth <= 0 || rng_->NextBernoulli(0.25)) return GenLeaf();
    switch (rng_->NextBounded(10)) {
      case 0: return GenArith(depth);
      case 1: return GenCompare(depth);
      case 2: return GenLogic(depth);
      case 3: return GenUnary(depth);
      case 4: return GenCase(depth);
      case 5: return GenIsNull(depth);
      case 6: return GenInList(depth);
      case 7: return GenBetween(depth);
      case 8: return GenFunction(depth);
      default: return GenLike(depth);
    }
  }

 private:
  Expr::Ptr GenLeaf() {
    if (rng_->NextBernoulli(0.55)) {
      // Bound column reference.
      static const char* kCols[] = {"i1", "i2", "d1", "d2", "s1", "b1"};
      const int idx = static_cast<int>(rng_->NextBounded(6));
      auto e = sql::MakeColumnRef("", kCols[idx]);
      e->bound_column = idx;
      return e;
    }
    switch (rng_->NextBounded(5)) {
      case 0: return sql::MakeIntLit(rng_->NextInRange(-5, 5));
      case 1: return sql::MakeDoubleLit(rng_->NextInRange(-10, 10) / 4.0);
      case 2: {
        static const char* kPool[] = {"a", "ab", "b", "%b%", "a_"};
        return sql::MakeStringLit(kPool[rng_->NextBounded(5)]);
      }
      case 3: return sql::MakeLiteral(Value::Bool(rng_->NextBernoulli(0.5)));
      default: return sql::MakeLiteral(Value::Null());
    }
  }

  Expr::Ptr GenArith(int depth) {
    static const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                    BinaryOp::kMul, BinaryOp::kDiv,
                                    BinaryOp::kMod};
    return sql::MakeBinary(kOps[rng_->NextBounded(5)], Gen(depth - 1),
                           Gen(depth - 1));
  }

  Expr::Ptr GenCompare(int depth) {
    static const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                    BinaryOp::kLt, BinaryOp::kLe,
                                    BinaryOp::kGt, BinaryOp::kGe};
    return sql::MakeBinary(kOps[rng_->NextBounded(6)], Gen(depth - 1),
                           Gen(depth - 1));
  }

  Expr::Ptr GenLogic(int depth) {
    return sql::MakeBinary(
        rng_->NextBernoulli(0.5) ? BinaryOp::kAnd : BinaryOp::kOr,
        Gen(depth - 1), Gen(depth - 1));
  }

  Expr::Ptr GenUnary(int depth) {
    return sql::MakeUnary(
        rng_->NextBernoulli(0.5) ? UnaryOp::kNeg : UnaryOp::kNot,
        Gen(depth - 1));
  }

  Expr::Ptr GenCase(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kCase);
    const size_t whens = 1 + rng_->NextBounded(2);
    for (size_t i = 0; i < whens; ++i) {
      e->case_whens.push_back(Gen(depth - 1));
      e->case_thens.push_back(Gen(depth - 1));
    }
    if (rng_->NextBernoulli(0.7)) e->case_else = Gen(depth - 1);
    return e;
  }

  Expr::Ptr GenIsNull(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kIsNull);
    e->args.push_back(Gen(depth - 1));
    e->negated = rng_->NextBernoulli(0.5);
    return e;
  }

  Expr::Ptr GenInList(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kInList);
    e->args.push_back(Gen(depth - 1));
    const size_t items = 1 + rng_->NextBounded(3);
    for (size_t i = 0; i < items; ++i) e->args.push_back(Gen(depth - 1));
    e->negated = rng_->NextBernoulli(0.5);
    return e;
  }

  Expr::Ptr GenBetween(int depth) {
    auto e = std::make_unique<Expr>(ExprKind::kBetween);
    e->args.push_back(Gen(depth - 1));
    e->args.push_back(Gen(depth - 1));
    e->args.push_back(Gen(depth - 1));
    e->negated = rng_->NextBernoulli(0.5);
    return e;
  }

  Expr::Ptr GenLike(int depth) {
    static const char* kPatterns[] = {"a%", "%b", "%a%", "a_", "_", "%"};
    return sql::MakeBinary(BinaryOp::kLike, Gen(depth - 1),
                           sql::MakeStringLit(kPatterns[rng_->NextBounded(6)]));
  }

  Expr::Ptr GenFunction(int depth) {
    // Deterministic scalar builtins only (rand() would diverge between the
    // two evaluations by construction).
    switch (rng_->NextBounded(7)) {
      case 0: return Call("abs", Gen(depth - 1));
      case 1: return Call("floor", Gen(depth - 1));
      case 2: return Call("coalesce", Gen(depth - 1), Gen(depth - 1));
      case 3:
        return Call("if", Gen(depth - 1), Gen(depth - 1), Gen(depth - 1));
      case 4: return Call("length", Gen(depth - 1));
      case 5: return Call("verdict_hash", Gen(depth - 1));
      default: return Call("greatest", Gen(depth - 1), Gen(depth - 1));
    }
  }

  template <typename... Args>
  Expr::Ptr Call(std::string name, Args... args) {
    std::vector<Expr::Ptr> argv;
    (argv.push_back(std::move(args)), ...);
    return sql::MakeFunction(std::move(name), std::move(argv));
  }

  Rng* rng_;
};

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.AsDouble(), y = b.AsDouble();
    if (std::isnan(x) && std::isnan(y)) return true;
    return x == y;
  }
  if (a.type() == TypeId::kString && b.type() == TypeId::kString) {
    return a.AsString() == b.AsString();
  }
  return false;
}

/// Row-side reference: evaluates per row and materializes through
/// Column::Append, exactly as the pre-vectorization executor did.
Result<Column> RowReference(const Expr& e, const Batch& b) {
  Column col;
  for (size_t k = 0; k < b.size(); ++k) {
    RowCtx ctx{b.table, b.RowAt(k), b.rng};
    auto v = EvalExpr(e, ctx);
    if (!v.ok()) return v.status();
    col.Append(v.value());
  }
  return col;
}

void ExpectBatchMatchesRow(const Expr& e, const Batch& b) {
  auto row_col = RowReference(e, b);
  auto batch_col = EvalExprBatch(e, b);
  ASSERT_EQ(row_col.ok(), batch_col.ok()) << sql::PrintExpr(e);
  if (!row_col.ok()) return;
  const Column& rc = row_col.value();
  const Column& bc = batch_col.value();
  ASSERT_EQ(rc.size(), b.size());
  ASSERT_EQ(bc.size(), b.size()) << sql::PrintExpr(e);
  for (size_t k = 0; k < b.size(); ++k) {
    EXPECT_TRUE(SameValue(rc.Get(k), bc.Get(k)))
        << sql::PrintExpr(e) << " row " << k << ": row-eval="
        << rc.Get(k).ToString() << " batch=" << bc.Get(k).ToString();
  }

  // Predicate semantics: selected rows must match EvalPredicate exactly.
  SelVector batch_sel;
  ASSERT_TRUE(EvalPredicateBatch(e, b, &batch_sel).ok());
  SelVector row_sel;
  for (size_t k = 0; k < b.size(); ++k) {
    RowCtx ctx{b.table, b.RowAt(k), b.rng};
    auto pass = EvalPredicate(e, ctx);
    ASSERT_TRUE(pass.ok());
    if (pass.value()) row_sel.push_back(b.RowAt(k));
  }
  EXPECT_EQ(batch_sel, row_sel) << sql::PrintExpr(e);
}

// ---------------------------------------------------------------------------
// Differential fuzz
// ---------------------------------------------------------------------------

TEST(VectorEvalFuzz, BatchMatchesRowOnFullTable) {
  Rng rng(20260729);
  auto t = MakeRandomTable(&rng, 257);
  ExprGen gen(&rng);
  Rng eval_rng(7);
  for (int i = 0; i < 400; ++i) {
    auto e = gen.Gen(4);
    Batch b{t.get(), nullptr, &eval_rng};
    ExpectBatchMatchesRow(*e, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(VectorEvalFuzz, BatchMatchesRowUnderSelectionVector) {
  Rng rng(42424242);
  auto t = MakeRandomTable(&rng, 301);
  ExprGen gen(&rng);
  Rng eval_rng(11);
  for (int i = 0; i < 200; ++i) {
    SelVector sel;
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      if (rng.NextBernoulli(0.4)) sel.push_back(r);
    }
    auto e = gen.Gen(3);
    Batch b{t.get(), &sel, &eval_rng};
    ExpectBatchMatchesRow(*e, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(VectorEvalFuzz, RandomNullPatterns) {
  // Tables whose nullable columns are mostly/entirely NULL stress the lazy
  // null-mask paths.
  Rng rng(555);
  auto t = std::make_shared<Table>();
  t->AddColumn("i1", TypeId::kInt64);
  t->AddColumn("i2", TypeId::kInt64);
  t->AddColumn("d1", TypeId::kDouble);
  t->AddColumn("d2", TypeId::kDouble);
  t->AddColumn("s1", TypeId::kString);
  t->AddColumn("b1", TypeId::kBool);
  for (size_t r = 0; r < 64; ++r) {
    t->AppendRow({Value::Null(), Value::Null(),
                  rng.NextBernoulli(0.1) ? Value::Double(1.5) : Value::Null(),
                  Value::Null(), Value::Null(), Value::Null()});
  }
  ExprGen gen(&rng);
  Rng eval_rng(3);
  for (int i = 0; i < 150; ++i) {
    auto e = gen.Gen(3);
    Batch b{t.get(), nullptr, &eval_rng};
    ExpectBatchMatchesRow(*e, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Selection-vector edge cases
// ---------------------------------------------------------------------------

class VectorEvalEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    table_ = MakeRandomTable(&rng, 50);
    pred_ = sql::MakeBinary(BinaryOp::kGt, BoundRef("i1", 0),
                            sql::MakeIntLit(0));
  }

  static Expr::Ptr BoundRef(const std::string& name, int idx) {
    auto e = sql::MakeColumnRef("", name);
    e->bound_column = idx;
    return e;
  }

  TablePtr table_;
  Expr::Ptr pred_;
  Rng eval_rng_{1};
};

TEST_F(VectorEvalEdgeTest, EmptySelection) {
  SelVector sel;  // no rows survive upstream
  Batch b{table_.get(), &sel, &eval_rng_};
  auto col = EvalExprBatch(*pred_, b);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value().size(), 0u);
  SelVector out;
  ASSERT_TRUE(EvalPredicateBatch(*pred_, b, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(VectorEvalEdgeTest, EmptyTable) {
  auto empty = table_->CloneSchema();
  Batch b{empty.get(), nullptr, &eval_rng_};
  auto col = EvalExprBatch(*pred_, b);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value().size(), 0u);
}

TEST_F(VectorEvalEdgeTest, AllPassSelection) {
  auto always = sql::MakeBinary(BinaryOp::kEq, sql::MakeIntLit(1),
                                sql::MakeIntLit(1));
  Batch b{table_.get(), nullptr, &eval_rng_};
  SelVector out;
  ASSERT_TRUE(EvalPredicateBatch(*always, b, &out).ok());
  ASSERT_EQ(out.size(), table_->num_rows());
  for (uint32_t r = 0; r < out.size(); ++r) EXPECT_EQ(out[r], r);
}

TEST_F(VectorEvalEdgeTest, SingleRowSelection) {
  SelVector sel{7};
  Batch b{table_.get(), &sel, &eval_rng_};
  ExpectBatchMatchesRow(*pred_, b);
  auto col = EvalExprBatch(*BoundRef("d1", 2), b);
  ASSERT_TRUE(col.ok());
  ASSERT_EQ(col.value().size(), 1u);
  EXPECT_TRUE(SameValue(col.value().Get(0), table_->Get(7, 2)));
}

// ---------------------------------------------------------------------------
// Three-valued logic pinning (NULL AND/OR/NOT)
// ---------------------------------------------------------------------------

TEST(VectorEvalLogicTest, KleeneTruthTable) {
  // One row; operands are literals covering all 9 AND/OR combinations.
  auto t = std::make_shared<Table>();
  Column c(TypeId::kInt64);
  c.AppendInt(0);
  t->AddColumn("x", std::move(c));
  Rng rng(5);

  auto lit = [](int tri) -> Expr::Ptr {  // -1 null, 0 false, 1 true
    if (tri < 0) return sql::MakeLiteral(Value::Null());
    return sql::MakeLiteral(Value::Bool(tri == 1));
  };
  const int tris[] = {-1, 0, 1};
  for (int a : tris) {
    for (int bvals : tris) {
      for (bool is_and : {true, false}) {
        auto e = sql::MakeBinary(is_and ? BinaryOp::kAnd : BinaryOp::kOr,
                                 lit(a), lit(bvals));
        Batch batch{t.get(), nullptr, &rng};
        ExpectBatchMatchesRow(*e, batch);
      }
    }
  }
  for (int a : tris) {
    auto e = sql::MakeUnary(UnaryOp::kNot, lit(a));
    Batch batch{t.get(), nullptr, &rng};
    ExpectBatchMatchesRow(*e, batch);
  }
}

// ---------------------------------------------------------------------------
// Bulk-copy paths
// ---------------------------------------------------------------------------

TEST(BulkCopyTest, AppendRangeAdoptsTypeAndNulls) {
  Column src(TypeId::kInt64);
  src.AppendInt(1);
  src.AppendNull();
  src.AppendInt(3);
  Column dst;
  dst.AppendRange(src, 0, 3);
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.type(), TypeId::kInt64);
  EXPECT_EQ(dst.Get(0).AsInt(), 1);
  EXPECT_TRUE(dst.IsNull(1));
  EXPECT_EQ(dst.Get(2).AsInt(), 3);
}

TEST(BulkCopyTest, AppendRangeMismatchedTypesFallsBack) {
  Column src(TypeId::kInt64);
  src.AppendInt(7);
  Column dst(TypeId::kDouble);
  dst.AppendDouble(0.5);
  dst.AppendRange(src, 0, 1);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(dst.Get(1).AsDouble(), 7.0);
}

TEST(BulkCopyTest, TableAppendSelectedGathers) {
  Rng rng(17);
  auto t = MakeRandomTable(&rng, 30);
  SelVector sel{29, 0, 15, 15};
  auto out = t->CloneSchema();
  out->AppendSelected(*t, sel);
  ASSERT_EQ(out->num_rows(), 4u);
  for (size_t c = 0; c < t->num_columns(); ++c) {
    for (size_t i = 0; i < sel.size(); ++i) {
      EXPECT_TRUE(SameValue(out->Get(i, c), t->Get(sel[i], c)))
          << "col " << c << " sel " << i;
    }
  }
}

}  // namespace
}  // namespace vdb::engine
