// Workload-generator and integrated-baseline tests, plus an integration
// sweep: every one of the 33 evaluation queries must execute exactly, and
// VerdictDB must approximate exactly those the paper says it can.

#include <gtest/gtest.h>

#include "core/verdict_context.h"
#include "integrated/integrated_aqp.h"
#include "workload/insta.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace vdb::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new engine::Database(2024);
    TpchConfig tc;
    tc.scale = 0.08;
    ASSERT_TRUE(GenerateTpch(db_, tc).ok());
    InstaConfig ic;
    ic.scale = 0.08;
    ASSERT_TRUE(GenerateInsta(db_, ic).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static engine::Database* db_;
};

engine::Database* WorkloadTest::db_ = nullptr;

TEST_F(WorkloadTest, TpchRowCountsScale) {
  EXPECT_EQ(db_->catalog().GetTable("region")->num_rows(), 5u);
  EXPECT_EQ(db_->catalog().GetTable("nation")->num_rows(), 25u);
  EXPECT_EQ(db_->catalog().GetTable("orders")->num_rows(), 12000u);
  // ~4 lineitems per order.
  size_t li = db_->catalog().GetTable("lineitem")->num_rows();
  EXPECT_GT(li, 12000u * 3);
  EXPECT_LT(li, 12000u * 6);
}

TEST_F(WorkloadTest, ReferentialIntegrity) {
  // Every lineitem joins to exactly one order.
  auto rs = db_->Execute(
      "select count(*) as c from lineitem inner join orders"
      " on l_orderkey = o_orderkey");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(static_cast<size_t>(rs.value().Get(0, 0).AsInt()),
            db_->catalog().GetTable("lineitem")->num_rows());
  // Every order_products row joins to exactly one product.
  rs = db_->Execute(
      "select count(*) as c from order_products op inner join products p"
      " on op.product_id = p.product_id");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(static_cast<size_t>(rs.value().Get(0, 0).AsInt()),
            db_->catalog().GetTable("order_products")->num_rows());
}

TEST_F(WorkloadTest, GenerationIsDeterministic) {
  engine::Database other(999);
  TpchConfig tc;
  tc.scale = 0.08;
  ASSERT_TRUE(GenerateTpch(&other, tc).ok());
  auto a = db_->Execute("select sum(l_extendedprice) as s from lineitem");
  auto b = other.Execute("select sum(l_extendedprice) as s from lineitem");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().GetDouble(0, 0), b.value().GetDouble(0, 0));
}

// Every workload query must run on the exact engine.
class AllQueriesRun : public ::testing::TestWithParam<WorkloadQuery> {};

TEST_P(AllQueriesRun, ExecutesExactly) {
  static engine::Database* db = [] {
    auto* d = new engine::Database(77);
    TpchConfig tc;
    tc.scale = 0.05;
    InstaConfig ic;
    ic.scale = 0.05;
    EXPECT_TRUE(GenerateTpch(d, tc).ok());
    EXPECT_TRUE(GenerateInsta(d, ic).ok());
    return d;
  }();
  const auto& q = GetParam();
  if (q.id == "tq-17") {
    // Correlated subquery: only executable through VerdictDB's flattener.
    core::VerdictContext ctx(db);
    auto rs = ctx.Execute(q.sql);
    EXPECT_TRUE(rs.ok()) << q.id << ": " << rs.status().ToString();
    return;
  }
  auto rs = db->Execute(q.sql);
  EXPECT_TRUE(rs.ok()) << q.id << ": " << rs.status().ToString();
  EXPECT_GE(rs.value().NumRows(), 1u) << q.id;
}

std::vector<WorkloadQuery> AllQueries() {
  auto qs = TpchQueries();
  auto iq = InstaQueries();
  qs.insert(qs.end(), iq.begin(), iq.end());
  return qs;
}

INSTANTIATE_TEST_SUITE_P(
    Workload, AllQueriesRun, ::testing::ValuesIn(AllQueries()),
    [](const ::testing::TestParamInfo<WorkloadQuery>& param_info) {
      std::string name = param_info.param.id;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Integrated (SnappyData-like) baseline
// ---------------------------------------------------------------------------

TEST(IntegratedTest, UniformSampleApproximation) {
  engine::Database db(111);
  InstaConfig ic;
  ic.scale = 0.2;
  ASSERT_TRUE(GenerateInsta(&db, ic).ok());
  integrated::IntegratedAqp aqp(&db);
  auto s = aqp.CreateUniformSample("order_products", 0.05);
  ASSERT_TRUE(s.ok());

  auto approx = aqp.Execute("select count(*) as c, sum(price) as s"
                            " from order_products");
  ASSERT_TRUE(approx.ok());
  auto exact = db.Execute("select count(*) as c, sum(price) as s"
                          " from order_products");
  ASSERT_TRUE(exact.ok());
  double tc = exact.value().GetDouble(0, 0);
  double ts = exact.value().GetDouble(0, 1);
  EXPECT_NEAR(approx.value().GetDouble(0, 0), tc, tc * 0.10);
  EXPECT_NEAR(approx.value().GetDouble(0, 1), ts, ts * 0.10);
}

TEST(IntegratedTest, StratifiedReservoirGuaranteesMinimum) {
  engine::Database db(112);
  InstaConfig ic;
  ic.scale = 0.2;
  ASSERT_TRUE(GenerateInsta(&db, ic).ok());
  integrated::IntegratedAqp aqp(&db);
  auto s = aqp.CreateStratifiedSample("orders_insta", {"order_dow"}, 200);
  ASSERT_TRUE(s.ok());
  auto rs = db.Execute("select order_dow, count(*) as c from " +
                       s.value().sample_table + " group by order_dow");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().NumRows(), 7u);
  for (size_t r = 0; r < rs.value().NumRows(); ++r) {
    EXPECT_EQ(rs.value().Get(r, 1).AsInt(), 200);  // exact reservoir size
  }
}

TEST(IntegratedTest, NeverJoinsTwoSamples) {
  engine::Database db(113);
  InstaConfig ic;
  ic.scale = 0.1;
  ASSERT_TRUE(GenerateInsta(&db, ic).ok());
  integrated::IntegratedAqp aqp(&db);
  ASSERT_TRUE(aqp.CreateUniformSample("order_products", 0.05).ok());
  ASSERT_TRUE(aqp.CreateUniformSample("orders_insta", 0.05).ok());
  // Joining: only the larger fact table (order_products) may be sampled;
  // the answer must still be a consistent estimate of the join size.
  auto approx = aqp.Execute(
      "select count(*) as c from order_products op inner join orders_insta o"
      " on op.order_id = o.order_id");
  ASSERT_TRUE(approx.ok());
  auto exact = db.Execute(
      "select count(*) as c from order_products op inner join orders_insta o"
      " on op.order_id = o.order_id");
  ASSERT_TRUE(exact.ok());
  double truth = exact.value().GetDouble(0, 0);
  EXPECT_NEAR(approx.value().GetDouble(0, 0), truth, truth * 0.15);
}

TEST(IntegratedTest, PassthroughWithoutSamples) {
  engine::Database db(114);
  InstaConfig ic;
  ic.scale = 0.05;
  ASSERT_TRUE(GenerateInsta(&db, ic).ok());
  integrated::IntegratedAqp aqp(&db);
  auto rs = aqp.Execute("select count(*) as c from products");
  ASSERT_TRUE(rs.ok());
  auto exact = db.Execute("select count(*) as c from products");
  EXPECT_EQ(rs.value().Get(0, 0).AsInt(), exact.value().Get(0, 0).AsInt());
}

}  // namespace
}  // namespace vdb::workload
