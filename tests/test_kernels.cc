// Direct differential units for the SIMD kernel layer (engine/kernels):
// every kernel, every dispatch level the machine supports, bit-identical
// against the scalar reference — including NaN/±0.0 payloads, INT64_MIN/MAX
// edges, and non-multiple-of-64 batch tails.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "engine/kernels/bitmap.h"
#include "engine/kernels/kernels.h"
#include "engine/kernels/kernels_scalar.h"

namespace vdb::engine::kernels {
namespace {

// Batch sizes straddling the 64-row word and 4-lane vector boundaries.
const size_t kSizes[] = {0, 1, 3, 4, 5, 63, 64, 65, 127, 128, 129, 1000, 4096};

std::vector<SimdLevel> LevelsToTest() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectedSimdLevel() == SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(CurrentSimdLevel()) {
    SetSimdLevelForTest(level);
  }
  ~ScopedSimdLevel() { SetSimdLevelForTest(saved_); }

 private:
  SimdLevel saved_;
};

/// memcmp is declared nonnull; empty vectors hand out null data pointers,
/// so the n == 0 cases must short-circuit before touching libc.
int CmpBytes(const void* a, const void* b, size_t bytes) {
  return bytes == 0 ? 0 : std::memcmp(a, b, bytes);
}

std::vector<int64_t> RandomI64(Rng& rng, size_t n) {
  std::vector<int64_t> v(n);
  for (size_t k = 0; k < n; ++k) {
    switch (rng.NextBounded(8)) {
      case 0: v[k] = 0; break;
      case 1: v[k] = std::numeric_limits<int64_t>::min(); break;
      case 2: v[k] = std::numeric_limits<int64_t>::max(); break;
      case 3: v[k] = rng.NextInRange(-4, 4); break;  // force compare ties
      default: v[k] = static_cast<int64_t>(rng.Next());
    }
  }
  return v;
}

std::vector<double> RandomF64(Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (size_t k = 0; k < n; ++k) {
    switch (rng.NextBounded(8)) {
      case 0: v[k] = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v[k] = 0.0; break;
      case 2: v[k] = -0.0; break;
      case 3: v[k] = std::numeric_limits<double>::infinity(); break;
      case 4: v[k] = -std::numeric_limits<double>::infinity(); break;
      case 5: v[k] = static_cast<double>(rng.NextInRange(-4, 4)); break;
      default: v[k] = (rng.NextDouble() - 0.5) * 1e12;
    }
  }
  return v;
}

const CmpOp kCmpOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
const ArithOp kArithOps[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul};

TEST(KernelsTest, DetectReportsConsistentLevel) {
  // CurrentSimdLevel starts at the detected level (no VDB_SIMD in the test
  // environment contract) and SetSimdLevelForTest clamps to it.
  ScopedSimdLevel scoped(SimdLevel::kAvx2);
  EXPECT_EQ(CurrentSimdLevel(), DetectedSimdLevel());
  SetSimdLevelForTest(SimdLevel::kScalar);
  EXPECT_EQ(CurrentSimdLevel(), SimdLevel::kScalar);
}

TEST(KernelsTest, CmpI64MatchesScalarReference) {
  Rng rng(7);
  for (size_t n : kSizes) {
    auto a = RandomI64(rng, n);
    auto b = RandomI64(rng, n);
    const int64_t c = n == 0 ? 0 : a[rng.NextBounded(n)];
    for (CmpOp op : kCmpOps) {
      Bitmap ref_vv, ref_vc;
      ref_vv.ResetForOverwrite(n);
      ref_vc.ResetForOverwrite(n);
      scalar::CmpVV(op, a.data(), b.data(), n, ref_vv.words());
      scalar::CmpVC(op, a.data(), c, n, ref_vc.words());
      for (SimdLevel level : LevelsToTest()) {
        ScopedSimdLevel scoped(level);
        Bitmap got;
        got.ResetForOverwrite(n);
        Ops().cmp_i64_vv(op, a.data(), b.data(), n, got.words());
        for (size_t w = 0; w < got.num_words(); ++w) {
          ASSERT_EQ(got.word(w), ref_vv.word(w))
              << "vv op=" << static_cast<int>(op) << " n=" << n << " w=" << w
              << " level=" << SimdLevelName(level);
        }
        Ops().cmp_i64_vc(op, a.data(), c, n, got.words());
        for (size_t w = 0; w < got.num_words(); ++w) {
          ASSERT_EQ(got.word(w), ref_vc.word(w))
              << "vc op=" << static_cast<int>(op) << " n=" << n << " w=" << w
              << " level=" << SimdLevelName(level);
        }
      }
    }
  }
}

TEST(KernelsTest, CmpF64MatchesScalarReferenceIncludingNaN) {
  Rng rng(11);
  for (size_t n : kSizes) {
    auto a = RandomF64(rng, n);
    auto b = RandomF64(rng, n);
    for (double c : {0.0, std::numeric_limits<double>::quiet_NaN(), 1.5}) {
      for (CmpOp op : kCmpOps) {
        Bitmap ref_vv, ref_vc;
        ref_vv.ResetForOverwrite(n);
        ref_vc.ResetForOverwrite(n);
        scalar::CmpVV(op, a.data(), b.data(), n, ref_vv.words());
        scalar::CmpVC(op, a.data(), c, n, ref_vc.words());
        for (SimdLevel level : LevelsToTest()) {
          ScopedSimdLevel scoped(level);
          Bitmap got;
          got.ResetForOverwrite(n);
          Ops().cmp_f64_vv(op, a.data(), b.data(), n, got.words());
          for (size_t w = 0; w < got.num_words(); ++w) {
            ASSERT_EQ(got.word(w), ref_vv.word(w))
                << "vv op=" << static_cast<int>(op) << " n=" << n
                << " w=" << w << " level=" << SimdLevelName(level);
          }
          Ops().cmp_f64_vc(op, a.data(), c, n, got.words());
          for (size_t w = 0; w < got.num_words(); ++w) {
            ASSERT_EQ(got.word(w), ref_vc.word(w))
                << "vc op=" << static_cast<int>(op) << " n=" << n
                << " w=" << w << " level=" << SimdLevelName(level);
          }
        }
      }
    }
  }
}

TEST(KernelsTest, CmpF64NaNLandsInEqualBucket) {
  // The engine's three-way convention: compares are built from < and > only,
  // so NaN is neither less nor greater — kEq holds, kLt/kGt/kNe do not.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double a[1] = {nan};
  for (SimdLevel level : LevelsToTest()) {
    ScopedSimdLevel scoped(level);
    uint64_t bits = 0;
    Ops().cmp_f64_vc(CmpOp::kEq, a, 3.0, 1, &bits);
    EXPECT_EQ(bits, 1u) << SimdLevelName(level);
    Ops().cmp_f64_vc(CmpOp::kLt, a, 3.0, 1, &bits);
    EXPECT_EQ(bits, 0u) << SimdLevelName(level);
    Ops().cmp_f64_vc(CmpOp::kNe, a, 3.0, 1, &bits);
    EXPECT_EQ(bits, 0u) << SimdLevelName(level);
  }
}

TEST(KernelsTest, ArithI64MatchesScalarReferenceWithWrap) {
  Rng rng(13);
  for (size_t n : kSizes) {
    auto a = RandomI64(rng, n);
    auto b = RandomI64(rng, n);
    const int64_t c = 0x7FFFFFFFFFFFFFF1ll;
    for (ArithOp op : kArithOps) {
      std::vector<int64_t> ref_vv(n), ref_vc(n), ref_cv(n);
      for (size_t k = 0; k < n; ++k) {
        ref_vv[k] = scalar::ArithApply(op, a[k], b[k]);
        ref_vc[k] = scalar::ArithApply(op, a[k], c);
        ref_cv[k] = scalar::ArithApply(op, c, b[k]);
      }
      for (SimdLevel level : LevelsToTest()) {
        ScopedSimdLevel scoped(level);
        std::vector<int64_t> got(n);
        Ops().arith_i64_vv(op, a.data(), b.data(), n, got.data());
        EXPECT_EQ(got, ref_vv) << SimdLevelName(level);
        Ops().arith_i64_vc(op, a.data(), c, n, got.data());
        EXPECT_EQ(got, ref_vc) << SimdLevelName(level);
        Ops().arith_i64_cv(op, c, b.data(), n, got.data());
        EXPECT_EQ(got, ref_cv) << SimdLevelName(level);
      }
    }
  }
}

TEST(KernelsTest, ArithF64BitIdenticalAcrossLevels) {
  Rng rng(17);
  for (size_t n : kSizes) {
    auto a = RandomF64(rng, n);
    auto b = RandomF64(rng, n);
    const double c = 1.0 / 3.0;
    for (ArithOp op : kArithOps) {
      std::vector<double> ref_vv(n), ref_vc(n), ref_cv(n);
      for (size_t k = 0; k < n; ++k) {
        ref_vv[k] = scalar::ArithApply(op, a[k], b[k]);
        ref_vc[k] = scalar::ArithApply(op, a[k], c);
        ref_cv[k] = scalar::ArithApply(op, c, b[k]);
      }
      for (SimdLevel level : LevelsToTest()) {
        ScopedSimdLevel scoped(level);
        std::vector<double> got(n);
        Ops().arith_f64_vv(op, a.data(), b.data(), n, got.data());
        ASSERT_EQ(CmpBytes(got.data(), ref_vv.data(), n * sizeof(double)),
                  0)
            << "vv " << SimdLevelName(level) << " n=" << n;
        Ops().arith_f64_vc(op, a.data(), c, n, got.data());
        ASSERT_EQ(CmpBytes(got.data(), ref_vc.data(), n * sizeof(double)),
                  0)
            << "vc " << SimdLevelName(level) << " n=" << n;
        Ops().arith_f64_cv(op, c, b.data(), n, got.data());
        ASSERT_EQ(CmpBytes(got.data(), ref_cv.data(), n * sizeof(double)),
                  0)
            << "cv " << SimdLevelName(level) << " n=" << n;
      }
    }
  }
}

TEST(KernelsTest, BytesNonzeroBitsMatchesScalar) {
  Rng rng(19);
  for (size_t n : kSizes) {
    std::vector<uint8_t> bytes(n);
    for (size_t k = 0; k < n; ++k) {
      bytes[k] = static_cast<uint8_t>(rng.NextBounded(3) == 0 ? 0
                                                              : rng.Next());
    }
    Bitmap ref;
    ref.ResetForOverwrite(n);
    scalar::BytesNonzeroBits(bytes.data(), n, ref.words());
    for (SimdLevel level : LevelsToTest()) {
      ScopedSimdLevel scoped(level);
      Bitmap got;
      got.ResetForOverwrite(n);
      Ops().bytes_nonzero_bits(bytes.data(), n, got.words());
      for (size_t w = 0; w < got.num_words(); ++w) {
        ASSERT_EQ(got.word(w), ref.word(w))
            << "n=" << n << " w=" << w << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(KernelsTest, RandF64SeqBitIdenticalToCounterRandomDouble) {
  for (size_t n : kSizes) {
    const uint64_t seed = 0xDEADBEEFCAFEF00Dull;
    const uint64_t row0 = 12345;
    const uint64_t site = 3;
    std::vector<double> ref(n);
    for (size_t k = 0; k < n; ++k) {
      ref[k] = CounterRandomDouble(seed, row0 + k, site);
    }
    for (SimdLevel level : LevelsToTest()) {
      ScopedSimdLevel scoped(level);
      std::vector<double> got(n);
      Ops().rand_f64_seq(seed, row0, site, n, got.data());
      ASSERT_EQ(CmpBytes(got.data(), ref.data(), n * sizeof(double)), 0)
          << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(KernelsTest, HashMixI64MatchesScalarWithAndWithoutNulls) {
  Rng rng(23);
  const uint64_t kNullHash = 0x9AE16A3B2F90404Full;
  for (size_t n : kSizes) {
    auto data = RandomI64(rng, n);
    std::vector<uint8_t> nulls(n);
    for (size_t k = 0; k < n; ++k) {
      nulls[k] = rng.NextBounded(4) == 0 ? 1 : 0;
    }
    std::vector<uint64_t> seed_h(n);
    for (size_t k = 0; k < n; ++k) seed_h[k] = rng.Next();

    const uint8_t* null_variants[] = {nullptr, nulls.data()};
    for (const uint8_t* null_ptr : null_variants) {
      std::vector<uint64_t> ref = seed_h;
      scalar::HashMixI64(ref.data(), data.data(), null_ptr, kNullHash, n);
      for (SimdLevel level : LevelsToTest()) {
        ScopedSimdLevel scoped(level);
        std::vector<uint64_t> got = seed_h;
        Ops().hash_mix_i64(got.data(), data.data(), null_ptr, kNullHash, n);
        ASSERT_EQ(got, ref) << SimdLevelName(level) << " n=" << n
                            << " nulls=" << (null_ptr != nullptr);
      }
    }
  }
}

TEST(KernelsTest, BloomPrefilterMatchesScalarAndHasNoFalseNegatives) {
  Rng rng(29);
  const size_t kWords = 1 << 6;  // 64 words -> shift 58
  const int shift = 64 - 6;
  std::vector<uint64_t> bloom(kWords, 0);
  std::vector<uint64_t> members(300);
  for (auto& h : members) {
    h = rng.Next();
    bloom[h >> shift] |= (uint64_t{1} << ((h >> 38) & 63)) |
                         (uint64_t{1} << ((h >> 44) & 63));
  }
  for (size_t n : kSizes) {
    std::vector<uint64_t> probes(n);
    for (size_t k = 0; k < n; ++k) {
      probes[k] = rng.NextBounded(2) == 0 && !members.empty()
                      ? members[rng.NextBounded(members.size())]
                      : rng.Next();
    }
    Bitmap ref;
    ref.ResetForOverwrite(n);
    scalar::BloomPrefilter(bloom.data(), shift, probes.data(), n, ref.words());
    // No false negatives: every member probe must pass the reference.
    for (size_t k = 0; k < n; ++k) {
      bool is_member = false;
      for (uint64_t m : members) is_member |= (m == probes[k]);
      if (is_member) {
        ASSERT_TRUE(ref.Test(k));
      }
    }
    for (SimdLevel level : LevelsToTest()) {
      ScopedSimdLevel scoped(level);
      Bitmap got;
      got.ResetForOverwrite(n);
      Ops().bloom_prefilter(bloom.data(), shift, probes.data(), n,
                            got.words());
      for (size_t w = 0; w < got.num_words(); ++w) {
        ASSERT_EQ(got.word(w), ref.word(w))
            << "n=" << n << " w=" << w << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(BitmapTest, TailInvariantAndCounts) {
  Bitmap m;
  m.ResetZero(70);
  EXPECT_EQ(m.num_words(), 2u);
  EXPECT_EQ(m.CountSet(), 0u);
  m.Set(0);
  m.Set(63);
  m.Set(69);
  EXPECT_EQ(m.CountSet(), 3u);
  EXPECT_TRUE(m.Test(63));
  EXPECT_FALSE(m.Test(64));
  m.Clear(63);
  EXPECT_EQ(m.CountSet(), 2u);

  m.ResetOnes(70);
  EXPECT_EQ(m.CountSet(), 70u);
  // Zeroed-tail invariant: bits past 70 in the last word must be clear.
  EXPECT_EQ(m.word(1) >> (70 - 64), 0u);

  m.ResetOnes(64);
  EXPECT_EQ(m.num_words(), 1u);
  EXPECT_EQ(m.CountSet(), 64u);

  m.ResetZero(0);
  EXPECT_EQ(m.CountSet(), 0u);
}

}  // namespace
}  // namespace vdb::engine::kernels
