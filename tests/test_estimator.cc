// Error-estimation tests (§4, §6.5, Appendix B): correctness and coverage of
// bootstrap / consolidated bootstrap / traditional subsampling / variational
// subsampling / CLT, including the parameterized coverage sweeps the paper's
// Figure 8 studies.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "common/random.h"
#include "common/stats_math.h"
#include "estimator/estimators.h"
#include "workload/synthetic.h"

namespace vdb::est {
namespace {

std::vector<double> Sample(int64_t n, uint64_t seed) {
  return workload::SyntheticValues(n, seed);
}

TEST(CltTest, MatchesClosedForm) {
  auto xs = Sample(10000, 1);
  auto e = CltEstimate(xs, 1.0, 0.95);
  double expect_hw =
      vdb::NormalCriticalValue(0.95) * vdb::StdDev(xs) / std::sqrt(10000.0);
  EXPECT_NEAR(e.half_width, expect_hw, 1e-12);
  EXPECT_DOUBLE_EQ(e.point, vdb::Mean(xs));
}

TEST(VariationalTest, PointEstimateIsSampleMean) {
  auto xs = Sample(20000, 2);
  Rng rng(3);
  auto e = VariationalSubsampling(xs, 1.0, /*ns=*/0, 0.95, &rng);
  EXPECT_NEAR(e.point, vdb::Mean(xs), 1e-12);
  EXPECT_GT(e.half_width, 0.0);
}

TEST(VariationalTest, HalfWidthTracksClt) {
  // Theorem 2: the variational interval converges to the true sampling
  // distribution, which for the mean is the CLT interval.
  auto xs = Sample(100000, 4);
  Rng rng(5);
  auto v = VariationalSubsampling(xs, 1.0, 0, 0.95, &rng);
  auto c = CltEstimate(xs, 1.0, 0.95);
  EXPECT_NEAR(v.half_width, c.half_width, c.half_width * 0.35);
}

TEST(BootstrapTest, HalfWidthTracksClt) {
  auto xs = Sample(20000, 6);
  Rng rng(7);
  auto b = Bootstrap(xs, 1.0, 200, 0.95, &rng);
  auto c = CltEstimate(xs, 1.0, 0.95);
  EXPECT_NEAR(b.half_width, c.half_width, c.half_width * 0.25);
}

TEST(ConsolidatedBootstrapTest, MatchesPlainBootstrap) {
  auto xs = Sample(5000, 8);
  Rng r1(9), r2(10);
  auto plain = Bootstrap(xs, 1.0, 150, 0.95, &r1);
  auto cons = ConsolidatedBootstrap(xs, 1.0, 150, 0.95, &r2);
  EXPECT_NEAR(cons.half_width, plain.half_width, plain.half_width * 0.35);
}

TEST(ConsolidatedBootstrapTest, EmptyResamplesCarryZeroDeviation) {
  // One tuple, many resamples: ~e^-1 of the Poisson(1) resamples are empty.
  // An empty resample carries no spread information — its deviation must be
  // 0, so with a single-value sample EVERY deviation is 0 and the interval
  // collapses onto the point. The old fallback (mean_j = 0, deviation g0)
  // injected the full point estimate as an outlier and inflated the
  // interval to ~|g0|.
  std::vector<double> xs = {250.0};
  Rng rng(21);
  auto e = ConsolidatedBootstrap(xs, 1.0, 2000, 0.95, &rng);
  EXPECT_DOUBLE_EQ(e.point, 250.0);
  EXPECT_DOUBLE_EQ(e.half_width, 0.0);
  EXPECT_DOUBLE_EQ(e.lo, 250.0);
  EXPECT_DOUBLE_EQ(e.hi, 250.0);
}

TEST(ConsolidatedBootstrapTest, PoissonTailNotTruncated) {
  // The shared Poisson kernel must produce multiplicities >= 8 at realistic
  // rates (P[X >= 8] ~ 1e-5; 2M draws give ~20 expected) — the old
  // hand-rolled loop clipped at k < 8.
  Rng rng(22);
  int high = 0;
  for (int i = 0; i < 2000000; ++i) {
    if (PoissonOneFromUniform(rng.NextDouble()) >= 8) ++high;
  }
  EXPECT_GT(high, 0);
}

TEST(TraditionalSubsamplingTest, HalfWidthTracksClt) {
  auto xs = Sample(50000, 11);
  Rng rng(12);
  auto t = TraditionalSubsampling(xs, 1.0, 300, /*ns=*/1000, 0.95, &rng);
  auto c = CltEstimate(xs, 1.0, 0.95);
  EXPECT_NEAR(t.half_width, c.half_width, c.half_width * 0.35);
}

TEST(ScalingTest, CountAndSumScale) {
  // Count of a 30%-selective predicate over a population of 1M, estimated
  // from a sample of 50K indicator values.
  Rng data_rng(13);
  std::vector<double> indicators(50000);
  for (auto& x : indicators) x = data_rng.NextBernoulli(0.3) ? 1.0 : 0.0;
  Rng rng(14);
  auto v = VariationalSubsampling(indicators, 1e6, 0, 0.95, &rng);
  EXPECT_NEAR(v.point, 0.3e6, 0.3e6 * 0.03);
  EXPECT_GT(v.half_width, 0.0);
  EXPECT_LT(v.half_width, 0.3e6 * 0.05);
}

// ---------------------------------------------------------------------------
// Coverage property: the 95% interval covers the true mean ~95% of the time.
// Parameterized over estimation methods (property-style sweep).
// ---------------------------------------------------------------------------

enum class Method { kClt, kBootstrap, kTraditional, kVariational };

class CoverageTest : public ::testing::TestWithParam<Method> {};

TEST_P(CoverageTest, CoversTrueMean) {
  const double true_mean = 10.0;
  const int trials = 120;
  const int64_t n = 4000;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    auto xs = Sample(n, static_cast<uint64_t>(1000 + t));
    Rng rng(static_cast<uint64_t>(2000 + t));
    ErrorEstimate e;
    switch (GetParam()) {
      case Method::kClt:
        e = CltEstimate(xs, 1.0, 0.95);
        break;
      case Method::kBootstrap:
        e = Bootstrap(xs, 1.0, 120, 0.95, &rng);
        break;
      case Method::kTraditional:
        e = TraditionalSubsampling(xs, 1.0, 120, 400, 0.95, &rng);
        break;
      case Method::kVariational:
        e = VariationalSubsampling(xs, 1.0, 0, 0.95, &rng);
        break;
    }
    if (true_mean >= e.lo && true_mean <= e.hi) ++covered;
  }
  double rate = static_cast<double>(covered) / trials;
  // Finite-b resampling intervals are a bit loose/tight; accept [0.85, 1.0].
  EXPECT_GE(rate, 0.85) << "method " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CoverageTest,
                         ::testing::Values(Method::kClt, Method::kBootstrap,
                                           Method::kTraditional,
                                           Method::kVariational));

// ---------------------------------------------------------------------------
// Figure 14 property: ns = n^(1/2) is (near-)optimal among exponents.
// ---------------------------------------------------------------------------

TEST(SubsampleSizeTest, SqrtNIsNearOptimal) {
  // Uses a skewed, heavy-tailed value distribution (chi-square(1)) so the
  // finite-ns non-normality penalty of tiny subsamples is visible — for a
  // Gaussian column the sample mean is exactly normal at any ns and the
  // small-ns penalty term of Appendix B.3 vanishes.
  const int64_t n = 100000;
  auto error_at = [&](double exponent) {
    double err = 0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      Rng data(static_cast<uint64_t>(5000 + t));
      std::vector<double> xs(n);
      for (auto& x : xs) {
        double z = data.NextGaussian();
        x = z * z;  // chi-square(1): mean 1, sd sqrt(2), skew 2.83
      }
      double true_hw = vdb::NormalCriticalValue(0.95) * std::sqrt(2.0) /
                       std::sqrt(static_cast<double>(n));
      Rng rng(static_cast<uint64_t>(6000 + t));
      auto e = VariationalSubsampling(
          xs, 1.0, static_cast<int64_t>(std::pow(n, exponent)), 0.95, &rng);
      err += std::abs(e.half_width - true_hw) / true_hw;
    }
    return err / trials;
  };
  double at_half = error_at(0.5);
  double at_three_quarters = error_at(0.75);
  // ns beyond sqrt(n) leaves too few subsamples: the quantile estimate of
  // the deviation distribution degrades (the b^(-1/2) term).
  EXPECT_LT(at_half, at_three_quarters);
  // And the default is accurate in absolute terms.
  EXPECT_LT(at_half, 0.15);
}

// ---------------------------------------------------------------------------
// Relative cost sanity (§6.4): variational does O(n) work, bootstrap O(n*b).
// ---------------------------------------------------------------------------

TEST(CostTest, VariationalIsMuchFasterThanBootstrap) {
  auto xs = Sample(200000, 21);
  Rng r1(22), r2(23);
  auto t0 = std::chrono::steady_clock::now();
  VariationalSubsampling(xs, 1.0, 0, 0.95, &r1);
  auto t1 = std::chrono::steady_clock::now();
  Bootstrap(xs, 1.0, 100, 0.95, &r2);
  auto t2 = std::chrono::steady_clock::now();
  double var_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  double boot_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count();
  EXPECT_LT(var_us * 5.0, boot_us);  // conservatively 5x; typically ~100x
}

}  // namespace
}  // namespace vdb::est
