// Self-test for the vdb-lint contract checker (tools/vdb_lint/).
//
// Two layers: in-memory LintSource cases that pin tokenizer behavior (path
// scoping, comment/string skipping, allow() parsing), and checked-in fixture
// files under tools/vdb_lint/fixtures/ that pin each rule's pass and fail
// behavior through the same LintPaths entry point CI uses.
//
// Rule-triggering code lives in string literals or in the fixture tree, both
// of which the production scan ignores (strings are skipped by the
// tokenizer; CI lints src/ tests/ bench/ only), so this file itself stays
// lint-clean.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace vdb::lint {
namespace {

#ifndef VDB_LINT_FIXTURE_DIR
#error "test_vdb_lint requires VDB_LINT_FIXTURE_DIR (set by CMakeLists.txt)"
#endif

std::string Fixture(const std::string& rel) {
  return std::string(VDB_LINT_FIXTURE_DIR) + "/" + rel;
}

size_t CountRule(const Report& r, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(r.violations.begin(), r.violations.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

Report LintOne(const std::string& path, const std::string& content) {
  Report r;
  LintSource(path, content, &r);
  return r;
}

// ---- unit layer: LintSource over in-memory sources -------------------------

TEST(VdbLintUnit, RuleRegistryListsAllSixContracts) {
  const std::vector<std::string>& names = RuleNames();
  ASSERT_EQ(names.size(), 6u);
  for (const char* expected :
       {"rng-outside-random", "simd-outside-kernel-tu", "string-keyed-map",
        "raw-double-accumulate", "naked-size-narrowing", "naked-reserve"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing rule " << expected;
  }
}

TEST(VdbLintUnit, RngBannedOutsideRandomTuButAllowedInside) {
  const std::string src = "int f() { return rand(); }\n";
  EXPECT_EQ(LintOne("src/engine/foo.cc", src).violations.size(), 1u);
  EXPECT_EQ(LintOne("src/common/random.cc", src).violations.size(), 0u);
  EXPECT_EQ(LintOne("src/common/random.h", src).violations.size(), 0u);
}

TEST(VdbLintUnit, BannedNamesInCommentsAndStringsAreIgnored) {
  const std::string src =
      "// rand() mt19937 _mm256_add_epi64\n"
      "/* srand(1); std::random_device rd; */\n"
      "const char* s = \"rand() and _mm_loadu_si128\";\n"
      "const char* r = R\"x(mt19937 inside raw string)x\";\n";
  EXPECT_TRUE(LintOne("src/engine/foo.cc", src).ok());
}

TEST(VdbLintUnit, IdentifiersMerelyContainingBannedNamesAreIgnored) {
  // rand_addr, operand, brand: none of these is the token `rand`.
  const std::string src =
      "void f(const RandAddr& rand_addr, int operand, int brand);\n";
  EXPECT_TRUE(LintOne("src/engine/foo.cc", src).ok());
}

TEST(VdbLintUnit, SimdIncludeAndIntrinsicFlaggedOutsideKernelTu) {
  const std::string src =
      "#include <immintrin.h>\n"
      "void f() { __m256i z = _mm256_setzero_si256(); (void)z; }\n";
  const Report r = LintOne("src/engine/vector_eval.cc", src);
  EXPECT_EQ(CountRule(r, "simd-outside-kernel-tu"), 3u);  // include + 2 idents
  EXPECT_TRUE(LintOne("src/engine/kernels/kernels_avx2.cc", src).ok());
}

TEST(VdbLintUnit, StringKeyedMapScopedToEngineDir) {
  const std::string src = "std::map<std::string, int> m;\n";
  EXPECT_EQ(CountRule(LintOne("src/engine/planner.cc", src),
                      "string-keyed-map"),
            1u);
  // Same container outside src/engine/ is not this rule's business.
  EXPECT_TRUE(LintOne("src/sql/parser.cc", src).ok());
  // Nested string on the VALUE side only must not fire.
  const std::string value_side = "std::map<int, std::string> m;\n";
  EXPECT_TRUE(LintOne("src/engine/planner.cc", value_side).ok());
}

TEST(VdbLintUnit, RawAccumulateMatchesMembersAndIndexedForms) {
  const std::string src =
      "void f(double x) { sum_ += x; comps_[2] += x; local += x; }\n";
  const Report r = LintOne("src/engine/agg_table.cc", src);
  EXPECT_EQ(CountRule(r, "raw-double-accumulate"), 2u);
  // Outside the two aggregate TUs the rule stays quiet.
  EXPECT_TRUE(LintOne("src/engine/vector_eval.cc", src).ok());
}

TEST(VdbLintUnit, SizeNarrowingMatchesDotAndArrowForms) {
  const std::string src =
      "uint32_t a = static_cast<uint32_t>(v.size());\n"
      "uint32_t b = static_cast<uint32_t>(p->size());\n"
      "uint64_t c = static_cast<uint64_t>(v.size());\n"
      "uint32_t d = static_cast<uint32_t>(n);\n";
  const Report r = LintOne("src/engine/foo.cc", src);
  EXPECT_EQ(CountRule(r, "naked-size-narrowing"), 2u);
}

TEST(VdbLintUnit, NakedReserveScopedToGovernedTusAndMemberCallsOnly) {
  const std::string src =
      "void f(std::vector<int>* p, std::vector<int>& v, size_t n) {\n"
      "  v.reserve(n);\n"
      "  p->resize(n);\n"
      "  reserve(n);\n"
      "}\n";
  // Both member forms fire in a governed TU; the free call does not.
  EXPECT_EQ(CountRule(LintOne("src/engine/operators.cc", src),
                      "naked-reserve"),
            2u);
  EXPECT_EQ(CountRule(LintOne("src/engine/agg_table.h", src),
                      "naked-reserve"),
            2u);
  // Outside the governed TUs the rule stays quiet.
  EXPECT_EQ(CountRule(LintOne("src/engine/planner.cc", src), "naked-reserve"),
            0u);
}

TEST(VdbLintUnit, AllowCommentSuppressesOnlyTheNamedRuleOnThatLine) {
  const std::string suppressed =
      "int f() { return rand(); }  // vdb-lint: allow(rng-outside-random)\n";
  Report r = LintOne("src/engine/foo.cc", suppressed);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.suppressions_used, 1u);

  // Wrong rule name in the allow(): the violation must survive.
  const std::string wrong =
      "int f() { return rand(); }  // vdb-lint: allow(string-keyed-map)\n";
  r = LintOne("src/engine/foo.cc", wrong);
  EXPECT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.suppressions_used, 0u);

  // Next line is not covered by the previous line's allow().
  const std::string next_line =
      "// vdb-lint: allow(rng-outside-random)\n"
      "int f() { return rand(); }\n";
  r = LintOne("src/engine/foo.cc", next_line);
  EXPECT_EQ(r.violations.size(), 1u);
}

TEST(VdbLintUnit, AllowCommentMaySuppressMultipleRules) {
  const std::string src =
      "std::map<std::string, int> m = f(rand());"
      "  // vdb-lint: allow(rng-outside-random, string-keyed-map)\n";
  const Report r = LintOne("src/engine/foo.cc", src);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.suppressions_used, 2u);
}

TEST(VdbLintUnit, DiagnosticFormatIsCompilerStyle) {
  const Diagnostic d{"src/engine/foo.cc", 12, "rng-outside-random", "boom"};
  EXPECT_EQ(FormatDiagnostic(d),
            "src/engine/foo.cc:12: [rng-outside-random] boom");
}

// ---- fixture layer: LintPaths over checked-in files ------------------------

TEST(VdbLintFixtures, PassTreeIsCleanAndCountsSuppressions) {
  const Report r = LintPaths({Fixture("pass")});
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : FormatDiagnostic(r.violations.front()));
  EXPECT_EQ(r.files_scanned, 4u);
  // suppressed.cc acknowledges three findings; engine/agg_table.cc two.
  EXPECT_EQ(r.suppressions_used, 5u);
}

TEST(VdbLintFixtures, FailTreeTriggersEveryRule) {
  const Report r = LintPaths({Fixture("fail")});
  EXPECT_EQ(r.files_scanned, 6u);
  EXPECT_EQ(CountRule(r, "rng-outside-random"), 5u);
  EXPECT_EQ(CountRule(r, "simd-outside-kernel-tu"), 3u);
  EXPECT_EQ(CountRule(r, "string-keyed-map"), 2u);
  EXPECT_EQ(CountRule(r, "raw-double-accumulate"), 3u);
  EXPECT_EQ(CountRule(r, "naked-size-narrowing"), 2u);
  EXPECT_EQ(CountRule(r, "naked-reserve"), 3u);
  EXPECT_EQ(r.violations.size(), 18u);
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(VdbLintFixtures, MultiFileScanSortsDiagnosticsByFileThenLine) {
  const Report r = LintPaths({Fixture("fail")});
  ASSERT_GT(r.violations.size(), 1u);
  for (size_t i = 1; i < r.violations.size(); ++i) {
    const Diagnostic& a = r.violations[i - 1];
    const Diagnostic& b = r.violations[i];
    EXPECT_TRUE(a.file < b.file || (a.file == b.file && a.line <= b.line))
        << FormatDiagnostic(a) << " vs " << FormatDiagnostic(b);
  }
}

TEST(VdbLintFixtures, MixedRootsAggregateAcrossDirectories) {
  const Report r = LintPaths({Fixture("pass"), Fixture("fail")});
  EXPECT_EQ(r.files_scanned, 10u);
  EXPECT_EQ(r.violations.size(), 18u);
  EXPECT_EQ(r.suppressions_used, 5u);
}

TEST(VdbLintFixtures, SingleFileRootAndMissingRoot) {
  const Report one = LintPaths({Fixture("fail/simd_leak.cc")});
  EXPECT_EQ(one.files_scanned, 1u);
  EXPECT_EQ(CountRule(one, "simd-outside-kernel-tu"), 3u);

  const Report missing = LintPaths({Fixture("no_such_dir")});
  EXPECT_EQ(missing.files_scanned, 0u);
  ASSERT_EQ(missing.violations.size(), 1u);
  EXPECT_EQ(missing.violations[0].rule, "io");
}

}  // namespace
}  // namespace vdb::lint
