// Self-test for the vdb-lint contract checker (tools/vdb_lint/).
//
// Three layers: scope-tree unit cases over Analyze() that pin the structural
// analyzer's behavior on hard C++ shapes (nested namespaces, lambdas, macros
// spanning braces, template angle brackets); in-memory LintSource cases that
// pin rule and suppression semantics; and checked-in fixture files under
// tools/vdb_lint/fixtures/ that pin each rule's pass and fail behavior
// through the same LintPaths entry point CI uses — including a SARIF golden
// file compared byte-for-byte.
//
// Rule-triggering code lives in string literals or in the fixture tree, both
// of which the production scan ignores (strings are skipped by the
// tokenizer; CI lints src/ tests/ bench/ only), so this file itself stays
// lint-clean.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.h"
#include "lint.h"

namespace vdb::lint {
namespace {

#ifndef VDB_LINT_FIXTURE_DIR
#error "test_vdb_lint requires VDB_LINT_FIXTURE_DIR (set by CMakeLists.txt)"
#endif

std::string Fixture(const std::string& rel) {
  return std::string(VDB_LINT_FIXTURE_DIR) + "/" + rel;
}

size_t CountRule(const Report& r, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(r.violations.begin(), r.violations.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

Report LintOne(const std::string& path, const std::string& content) {
  Report r;
  LintSource(path, content, &r);
  return r;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "unable to read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- scope-tree layer: Analyze() over hard C++ shapes ----------------------

bool HasFunctionNamed(const Analysis& an, const std::string& name) {
  return an.functions_by_name.count(name) > 0;
}

TEST(VdbLintScopeTree, NestedNamespaceSpecifierClassifiesFunctions) {
  // `namespace a::b {` must open a kNamespace scope (not a generic block),
  // or every function inside it loses its kFunction classification — the
  // exact failure mode that once hid src/integrated/ from the flow rules.
  const Analysis an = Analyze(
      "namespace vdb::integrated {\n"
      "void Emit() { int x = 0; (void)x; }\n"
      "}\n");
  ASSERT_EQ(an.scopes.size(), 3u);  // file, namespace, function body
  EXPECT_EQ(an.scopes[1].kind, ScopeKind::kNamespace);
  EXPECT_EQ(an.scopes[2].kind, ScopeKind::kFunction);
  EXPECT_TRUE(HasFunctionNamed(an, "Emit"));
}

TEST(VdbLintScopeTree, NestedLambdasAttributeFactsToEnclosingFunction) {
  // A callback's body is still the enclosing function's work: its calls and
  // member touches land in the outer FunctionInfo, and the lambda opens its
  // own kLambda scope.
  const Analysis an = Analyze(
      "void Outer(std::vector<int>& sink) {\n"
      "  auto cb = [&](int r) { sink.push_back(r); };\n"
      "  cb(7);\n"
      "}\n");
  ASSERT_TRUE(HasFunctionNamed(an, "Outer"));
  const FunctionInfo& fn =
      an.functions[static_cast<size_t>(an.functions_by_name.at("Outer")[0])];
  EXPECT_TRUE(fn.calls.count("push_back"));
  EXPECT_TRUE(fn.members_touched.count("push_back"));
  bool saw_lambda = false;
  for (const Scope& s : an.scopes) {
    saw_lambda = saw_lambda || s.kind == ScopeKind::kLambda;
  }
  EXPECT_TRUE(saw_lambda);
}

TEST(VdbLintScopeTree, MacroSpanningBracesDoesNotSkewScopeTree) {
  // Preprocessor lines (continuations included) contribute no tokens, so a
  // macro body that opens or closes braces cannot unbalance the tree.
  const Analysis an = Analyze(
      "#define OPEN {\n"
      "#define WEIRD(x) \\\n"
      "  case x: {      \\\n"
      "  }\n"
      "void f() { int y = 0; (void)y; }\n");
  ASSERT_EQ(an.scopes.size(), 2u);  // file + f's body, nothing from macros
  EXPECT_EQ(an.scopes[1].kind, ScopeKind::kFunction);
  EXPECT_TRUE(HasFunctionNamed(an, "f"));
  // Every token is inside a scope and the file scope spans them all.
  EXPECT_EQ(an.scopes[0].last_token, an.tokens.size());
}

TEST(VdbLintScopeTree, TemplateAngleBracketsDoNotBreakFunctionDetection) {
  // Nested template argument lists (and ordinary less-than expressions)
  // must not derail return-type skipping or brace classification.
  const Analysis an = Analyze(
      "std::vector<std::pair<int, int>> MakePairs() {\n"
      "  std::vector<std::pair<int, int>> v;\n"
      "  return v;\n"
      "}\n"
      "bool Less(int a, int b) { return a < b; }\n");
  EXPECT_TRUE(HasFunctionNamed(an, "MakePairs"));
  EXPECT_TRUE(HasFunctionNamed(an, "Less"));
}

TEST(VdbLintScopeTree, UnorderedVariableNamesAreCollected) {
  const Analysis an = Analyze(
      "std::unordered_map<int, int> counts;\n"
      "void f(const std::unordered_set<int>& seen) { (void)seen; }\n"
      "std::map<int, int> ordered;\n");
  EXPECT_TRUE(an.unordered_vars.count("counts"));
  EXPECT_TRUE(an.unordered_vars.count("seen"));
  EXPECT_FALSE(an.unordered_vars.count("ordered"));
}

TEST(VdbLintScopeTree, SyncSafeClassRequiresEveryMemberSynchronized) {
  const Analysis an = Analyze(
      "struct AllAtomic {\n"
      "  std::atomic<int> hits{0};\n"
      "  std::atomic<int> misses{0};\n"
      "};\n"
      "struct HalfAtomic {\n"
      "  std::atomic<int> hits{0};\n"
      "  int misses = 0;\n"
      "};\n");
  EXPECT_TRUE(an.sync_safe_classes.count("AllAtomic"));
  EXPECT_FALSE(an.sync_safe_classes.count("HalfAtomic"));
}

// ---- unit layer: LintSource over in-memory sources -------------------------

TEST(VdbLintUnit, RuleRegistryListsAllTenContracts) {
  const std::vector<std::string>& names = RuleNames();
  ASSERT_EQ(names.size(), 10u);
  for (const char* expected :
       {"rng-outside-random", "simd-outside-kernel-tu", "string-keyed-map",
        "raw-double-accumulate", "naked-size-narrowing", "naked-reserve",
        "unordered-iteration-in-result-path", "ungoverned-loop", "raw-mutex",
        "mutable-shared-static"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing rule " << expected;
  }
}

TEST(VdbLintUnit, RngBannedOutsideRandomTuButAllowedInside) {
  const std::string src = "int f() { return rand(); }\n";
  EXPECT_EQ(LintOne("src/engine/foo.cc", src).violations.size(), 1u);
  EXPECT_EQ(LintOne("src/common/random.cc", src).violations.size(), 0u);
  EXPECT_EQ(LintOne("src/common/random.h", src).violations.size(), 0u);
}

TEST(VdbLintUnit, BannedNamesInCommentsAndStringsAreIgnored) {
  const std::string src =
      "// rand() mt19937 _mm256_add_epi64\n"
      "/* srand(1); std::random_device rd; */\n"
      "const char* s = \"rand() and _mm_loadu_si128\";\n"
      "const char* r = R\"x(mt19937 inside raw string)x\";\n";
  EXPECT_TRUE(LintOne("src/engine/foo.cc", src).ok());
}

TEST(VdbLintUnit, IdentifiersMerelyContainingBannedNamesAreIgnored) {
  // rand_addr, operand, brand: none of these is the token `rand`.
  const std::string src =
      "void f(const RandAddr& rand_addr, int operand, int brand);\n";
  EXPECT_TRUE(LintOne("src/engine/foo.cc", src).ok());
}

TEST(VdbLintUnit, SimdIncludeAndIntrinsicFlaggedOutsideKernelTu) {
  const std::string src =
      "#include <immintrin.h>\n"
      "void f() { __m256i z = _mm256_setzero_si256(); (void)z; }\n";
  const Report r = LintOne("src/engine/vector_eval.cc", src);
  EXPECT_EQ(CountRule(r, "simd-outside-kernel-tu"), 3u);  // include + 2 idents
  EXPECT_TRUE(LintOne("src/engine/kernels/kernels_avx2.cc", src).ok());
}

TEST(VdbLintUnit, StringKeyedMapScopedToEngineDir) {
  // Locals so that mutable-shared-static (which also patrols src/engine/
  // file scope) stays out of the picture.
  const std::string src = "void f() { std::map<std::string, int> m; }\n";
  EXPECT_EQ(CountRule(LintOne("src/engine/planner.cc", src),
                      "string-keyed-map"),
            1u);
  // Same container outside src/engine/ is not this rule's business.
  EXPECT_TRUE(LintOne("src/sql/parser.cc", src).ok());
  // Nested string on the VALUE side only must not fire.
  const std::string value_side =
      "void f() { std::map<int, std::string> m; }\n";
  EXPECT_TRUE(LintOne("src/engine/planner.cc", value_side).ok());
}

TEST(VdbLintUnit, RawAccumulateMatchesMembersAndIndexedForms) {
  const std::string src =
      "void f(double x) { sum_ += x; comps_[2] += x; local += x; }\n";
  const Report r = LintOne("src/engine/agg_table.cc", src);
  EXPECT_EQ(CountRule(r, "raw-double-accumulate"), 2u);
  // Outside the two aggregate TUs the rule stays quiet.
  EXPECT_TRUE(LintOne("src/engine/vector_eval.cc", src).ok());
}

TEST(VdbLintUnit, SizeNarrowingMatchesDotAndArrowForms) {
  const std::string src =
      "uint32_t a = static_cast<uint32_t>(v.size());\n"
      "uint32_t b = static_cast<uint32_t>(p->size());\n"
      "uint64_t c = static_cast<uint64_t>(v.size());\n"
      "uint32_t d = static_cast<uint32_t>(n);\n";
  const Report r = LintOne("src/engine/foo.cc", src);
  EXPECT_EQ(CountRule(r, "naked-size-narrowing"), 2u);
}

TEST(VdbLintUnit, NakedReserveScopedToGovernedTusAndMemberCallsOnly) {
  const std::string src =
      "void f(std::vector<int>* p, std::vector<int>& v, size_t n) {\n"
      "  v.reserve(n);\n"
      "  p->resize(n);\n"
      "  reserve(n);\n"
      "}\n";
  // Both member forms fire in a governed TU; the free call does not.
  EXPECT_EQ(CountRule(LintOne("src/engine/operators.cc", src),
                      "naked-reserve"),
            2u);
  EXPECT_EQ(CountRule(LintOne("src/engine/agg_table.h", src),
                      "naked-reserve"),
            2u);
  // Outside the governed TUs the rule stays quiet.
  EXPECT_EQ(CountRule(LintOne("src/engine/planner.cc", src), "naked-reserve"),
            0u);
}

TEST(VdbLintUnit, AllowCommentSuppressesOnlyTheNamedRuleOnThatLine) {
  const std::string suppressed =
      "int f() { return rand(); }  // vdb-lint: allow(rng-outside-random)\n";
  Report r = LintOne("src/engine/foo.cc", suppressed);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.suppressions_used, 1u);

  // Wrong rule name in the allow(): the violation survives AND the allow()
  // itself — a registered rule that silenced nothing — is reported stale.
  const std::string wrong =
      "int f() { return rand(); }  // vdb-lint: allow(string-keyed-map)\n";
  r = LintOne("src/engine/foo.cc", wrong);
  EXPECT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(CountRule(r, "rng-outside-random"), 1u);
  EXPECT_EQ(CountRule(r, "stale-suppression"), 1u);
  EXPECT_EQ(r.suppressions_used, 0u);

  // Next line is not covered by the previous line's allow(): the violation
  // survives and the allow() on its own line is stale.
  const std::string next_line =
      "// vdb-lint: allow(rng-outside-random)\n"
      "int f() { return rand(); }\n";
  r = LintOne("src/engine/foo.cc", next_line);
  EXPECT_EQ(CountRule(r, "rng-outside-random"), 1u);
  EXPECT_EQ(CountRule(r, "stale-suppression"), 1u);
}

TEST(VdbLintUnit, UnknownRuleNameInAllowIsItselfAnError) {
  const Report r =
      LintOne("src/engine/foo.cc",
              "int x = 1;  // vdb-lint: allow(no-such-rule) oops\n");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(CountRule(r, "unknown-rule"), 1u);
}

TEST(VdbLintUnit, StaleSuppressionIsItselfAnError) {
  const Report r = LintOne(
      "src/sql/parser.cc",
      "int f() { return 1; }  // vdb-lint: allow(rng-outside-random)\n");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "stale-suppression");
}

TEST(VdbLintUnit, AllowCommentMaySuppressMultipleRules) {
  const std::string src =
      "std::map<std::string, int> m = f(rand());"
      "  // vdb-lint: allow(rng-outside-random, string-keyed-map)\n";
  const Report r = LintOne("src/engine/foo.cc", src);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.suppressions_used, 2u);
}

TEST(VdbLintUnit, UnorderedIterationNeedsAResultPathToFire) {
  // The same loop, with and without a result sink reachable from the
  // enclosing function: only the result-producing one is a violation.
  const std::string emitting =
      "void Emit(const std::unordered_map<int, int>& groups,\n"
      "          std::vector<int>* out) {\n"
      "  for (const auto& kv : groups) out->push_back(kv.second);\n"
      "}\n";
  const std::string counting =
      "int CountAll(const std::unordered_map<int, int>& groups) {\n"
      "  int n = 0;\n"
      "  for (const auto& kv : groups) n += kv.second;\n"
      "  return n;\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("src/estimator/foo.cc", emitting),
                      "unordered-iteration-in-result-path"),
            1u);
  EXPECT_EQ(CountRule(LintOne("src/estimator/foo.cc", counting),
                      "unordered-iteration-in-result-path"),
            0u);
  // Outside the result-producing layers the rule stays quiet entirely.
  EXPECT_EQ(CountRule(LintOne("src/sql/printer.cc", emitting),
                      "unordered-iteration-in-result-path"),
            0u);
}

TEST(VdbLintUnit, UngovernedLoopSatisfiedByPollInEnclosingFunction) {
  const std::string ungoverned =
      "void Fill(std::vector<int>* out, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    out->push_back(i);\n"
      "  }\n"
      "}\n";
  const std::string governed =
      "void Fill(std::vector<int>* out, int n) {\n"
      "  if (!GuardCheck().ok()) return;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    out->push_back(i);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("src/engine/operators.cc", ungoverned),
                      "ungoverned-loop"),
            1u);
  EXPECT_EQ(CountRule(LintOne("src/engine/operators.cc", governed),
                      "ungoverned-loop"),
            0u);
  // Outside the governed TUs the rule does not apply.
  EXPECT_EQ(CountRule(LintOne("src/engine/planner.cc", ungoverned),
                      "ungoverned-loop"),
            0u);
}

TEST(VdbLintUnit, RawMutexBannedEverywhereButTheWrapperHeader) {
  const std::string src =
      "#include <mutex>\n"
      "void f() { static std::mutex mu; mu.lock(); }\n";
  // include + the `mutex` identifier in the declaration.
  EXPECT_EQ(CountRule(LintOne("src/common/thread_pool.cc", src), "raw-mutex"),
            2u);
  EXPECT_EQ(CountRule(LintOne("src/common/thread_annotations.h", src),
                      "raw-mutex"),
            0u);
}

TEST(VdbLintUnit, MutableSharedStaticAcceptsSynchronizedShapes) {
  EXPECT_EQ(CountRule(LintOne("src/engine/foo.cc",
                              "int Next() { static int n = 0; return ++n; }\n"),
                      "mutable-shared-static"),
            1u);
  EXPECT_EQ(
      CountRule(LintOne(
                    "src/engine/foo.cc",
                    "int Next() { static std::atomic<int> n{0}; return ++n; }\n"),
                "mutable-shared-static"),
      0u);
  // A static instance of a same-file all-atomic struct is accepted without
  // an allow() — the sync-safe class analysis vouches for it.
  const std::string sync_safe =
      "struct Counters { std::atomic<int> a{0}; std::atomic<int> b{0}; };\n"
      "Counters& Get() { static Counters c; return c; }\n";
  EXPECT_EQ(CountRule(LintOne("src/engine/foo.cc", sync_safe),
                      "mutable-shared-static"),
            0u);
  // Outside src/engine/ the rule does not apply.
  EXPECT_EQ(CountRule(LintOne("src/sql/parser.cc",
                              "int Next() { static int n = 0; return ++n; }\n"),
                      "mutable-shared-static"),
            0u);
}

TEST(VdbLintUnit, StatsTableCoversEveryRule) {
  const Report r = LintOne("src/engine/foo.cc", "int f() { return rand(); }\n");
  ASSERT_EQ(r.rule_stats.size(), RuleNames().size());
  const std::string table = FormatStats(r);
  for (const std::string& rule : RuleNames()) {
    EXPECT_NE(table.find("| " + rule + " |"), std::string::npos)
        << "stats table missing row for " << rule;
  }
  EXPECT_NE(table.find("**total (rules)**"), std::string::npos);
  EXPECT_NE(table.find("1 file(s) scanned"), std::string::npos);
}

TEST(VdbLintUnit, DiagnosticFormatIsCompilerStyle) {
  const Diagnostic d{"src/engine/foo.cc", 12, "rng-outside-random", "boom"};
  EXPECT_EQ(FormatDiagnostic(d),
            "src/engine/foo.cc:12: [rng-outside-random] boom");
}

// ---- fixture layer: LintPaths over checked-in files ------------------------

TEST(VdbLintFixtures, PassTreeIsCleanAndCountsSuppressions) {
  const Report r = LintPaths({Fixture("pass")});
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : FormatDiagnostic(r.violations.front()));
  EXPECT_EQ(r.files_scanned, 8u);
  // suppressed.cc acknowledges three findings; engine/agg_table.cc two;
  // src/engine/ordered_result.cc and engine/operators.cc one each.
  EXPECT_EQ(r.suppressions_used, 7u);
}

TEST(VdbLintFixtures, FailTreeTriggersEveryRule) {
  const Report r = LintPaths({Fixture("fail")});
  EXPECT_EQ(r.files_scanned, 10u);
  EXPECT_EQ(CountRule(r, "rng-outside-random"), 5u);
  EXPECT_EQ(CountRule(r, "simd-outside-kernel-tu"), 3u);
  EXPECT_EQ(CountRule(r, "string-keyed-map"), 2u);
  EXPECT_EQ(CountRule(r, "raw-double-accumulate"), 3u);
  EXPECT_EQ(CountRule(r, "naked-size-narrowing"), 2u);
  EXPECT_EQ(CountRule(r, "naked-reserve"), 3u);
  EXPECT_EQ(CountRule(r, "unordered-iteration-in-result-path"), 1u);
  EXPECT_EQ(CountRule(r, "ungoverned-loop"), 1u);
  EXPECT_EQ(CountRule(r, "raw-mutex"), 4u);
  EXPECT_EQ(CountRule(r, "mutable-shared-static"), 2u);
  EXPECT_EQ(r.violations.size(), 26u);
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(VdbLintFixtures, MultiFileScanSortsDiagnosticsByFileThenLine) {
  const Report r = LintPaths({Fixture("fail")});
  ASSERT_GT(r.violations.size(), 1u);
  for (size_t i = 1; i < r.violations.size(); ++i) {
    const Diagnostic& a = r.violations[i - 1];
    const Diagnostic& b = r.violations[i];
    EXPECT_TRUE(a.file < b.file || (a.file == b.file && a.line <= b.line))
        << FormatDiagnostic(a) << " vs " << FormatDiagnostic(b);
  }
}

TEST(VdbLintFixtures, MixedRootsAggregateAcrossDirectories) {
  const Report r = LintPaths({Fixture("pass"), Fixture("fail")});
  EXPECT_EQ(r.files_scanned, 18u);
  EXPECT_EQ(r.violations.size(), 26u);
  EXPECT_EQ(r.suppressions_used, 7u);
}

TEST(VdbLintFixtures, SingleFileRootAndMissingRoot) {
  const Report one = LintPaths({Fixture("fail/simd_leak.cc")});
  EXPECT_EQ(one.files_scanned, 1u);
  EXPECT_EQ(CountRule(one, "simd-outside-kernel-tu"), 3u);

  const Report missing = LintPaths({Fixture("no_such_dir")});
  EXPECT_EQ(missing.files_scanned, 0u);
  ASSERT_EQ(missing.violations.size(), 1u);
  EXPECT_EQ(missing.violations[0].rule, "io");
}

TEST(VdbLintFixtures, SarifOutputMatchesGoldenFile) {
  // The input fixture is linted under a fixed pseudo-path so the SARIF body
  // (artifact URIs included) is byte-stable regardless of checkout location.
  Report r;
  LintSource("src/engine/sarif_input.cc", ReadFile(Fixture("sarif/input.cc")),
             &r);
  ASSERT_EQ(r.violations.size(), 3u);
  EXPECT_EQ(ToSarif(r), ReadFile(Fixture("sarif/golden.sarif")));
}

}  // namespace
}  // namespace vdb::lint
