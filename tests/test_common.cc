// Tests for common utilities: Value, Rng, hashing, statistical math.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/stats_math.h"
#include "common/status.h"
#include "common/value.h"

namespace vdb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Int(42).AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Double(2.9).AsInt(), 2);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST(ValueTest, NumericComparisonCrossType) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(10.0).Compare(Value::Int(9)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("s").ToString(), "s");
  EXPECT_EQ(Value::Double(0.25).ToString(), "0.25");
}

TEST(StatusTest, CodesAndMessages) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status err = Status::NotFound("missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_NE(err.ToString().find("missing"), std::string::npos);
  Result<int> r = 5;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  Result<int> bad = Status::Internal("boom");
  EXPECT_FALSE(bad.ok());
}

TEST(RngTest, Deterministic) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformMeanAndRange) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.NextGaussian();
  EXPECT_NEAR(Mean(xs), 0.0, 0.02);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.02);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BoundedIsUnbiasedAtLargeBounds) {
  // Lemire rejection sampling: even for a bound where plain modulo would be
  // visibly biased toward low values (bound ~ 2/3 * 2^64), the mean must sit
  // at bound/2.
  Rng rng(6);
  const uint64_t bound = 0xAAAAAAAAAAAAAAAAull;  // ~2^64 * 2/3
  long double sum = 0.0L;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.NextBounded(bound);
    ASSERT_LT(v, bound);
    sum += static_cast<long double>(v);
  }
  const long double mean = sum / n;
  const long double expected = static_cast<long double>(bound) / 2.0L;
  // Plain modulo would pull the mean to ~0.4375 * bound (-12.5%); allow 1%.
  EXPECT_NEAR(static_cast<double>(mean / expected), 1.0, 0.01);
}

TEST(RngTest, BiasedBoundedTestHookRestoresModuloPath) {
  Rng a(7), b(7);
  Rng::SetBiasedNextBoundedForTest(true);
  uint64_t biased = a.NextBounded(1000);
  Rng::SetBiasedNextBoundedForTest(false);
  EXPECT_EQ(biased, b.Next() % 1000);  // exactly the old path
}

TEST(CounterRandomTest, PureFunctionOfAddress) {
  EXPECT_EQ(CounterRandom(1, 2, 3), CounterRandom(1, 2, 3));
  EXPECT_NE(CounterRandom(1, 2, 3), CounterRandom(1, 3, 3));
  EXPECT_NE(CounterRandom(1, 2, 3), CounterRandom(1, 2, 4));
  EXPECT_NE(CounterRandom(2, 2, 3), CounterRandom(1, 2, 3));
  std::set<uint64_t> seen;
  for (uint64_t row = 0; row < 1000; ++row) {
    seen.insert(CounterRandom(42, row, 1));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(CounterRandomTest, DoubleUniformMeanOverRows) {
  // Sequential rows (the engine's access pattern) must look uniform.
  double sum = 0.0;
  const int n = 100000;
  for (int row = 0; row < n; ++row) {
    double u = CounterRandomDouble(99, static_cast<uint64_t>(row), 1);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(PoissonKernelTest, InverseCdfShape) {
  // Monotone in u, k = 0 below e^-1, and no k < 8 truncation: a u extremely
  // close to 1 must walk past 8.
  EXPECT_EQ(PoissonOneFromUniform(0.0), 0);
  EXPECT_EQ(PoissonOneFromUniform(0.36), 0);  // e^-1 ~ 0.3679
  EXPECT_EQ(PoissonOneFromUniform(0.5), 1);
  EXPECT_GE(PoissonOneFromUniform(1.0 - 1e-13), 8);
  double sum = 0.0;
  const int n = 200000;
  Rng rng(8);
  for (int i = 0; i < n; ++i) sum += PoissonOneFromUniform(rng.NextDouble());
  EXPECT_NEAR(sum / n, 1.0, 0.02);  // E[Poisson(1)] = 1
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashMix64(123), HashMix64(123));
  EXPECT_NE(HashMix64(123), HashMix64(124));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(HashMix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, IntDoubleValueAgreement) {
  // Universe samples built on int keys must agree with double-typed reads.
  EXPECT_EQ(HashValue(Value::Int(77)), HashValue(Value::Double(77.0)));
}

TEST(HashTest, UnitHashIsUniform) {
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double u = HashUnit(Value::Int(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(HashTest, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(StatsMathTest, NormalQuantileRoundTrip) {
  for (double p : {0.001, 0.025, 0.3, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9) << p;
  }
}

TEST(StatsMathTest, CriticalValues) {
  EXPECT_NEAR(NormalCriticalValue(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(NormalCriticalValue(0.99), 2.575829, 1e-4);
}

TEST(StatsMathTest, ErfcInvMatchesErfc) {
  for (double y : {0.001, 0.05, 0.5, 1.0, 1.5, 1.998}) {
    EXPECT_NEAR(std::erfc(ErfcInv(y)), y, 1e-9) << y;
  }
}

TEST(StatsMathTest, BinomialTail) {
  // P(X >= 5 | n=10, p=0.5) = 0.623046875
  EXPECT_NEAR(BinomialTailAtLeast(10, 0.5, 5), 0.623046875, 1e-9);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0.5, 11), 0.0);
}

TEST(StatsMathTest, QuantileInterpolation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 0.125), 1.5);
}

TEST(StatsMathTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

}  // namespace
}  // namespace vdb
