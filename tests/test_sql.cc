// SQL front-end tests: lexer, parser, printer round-trips, AST cloning.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace vdb::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("select a, 1.5e2 from `t` where x <> 'it''s'");
  ASSERT_TRUE(toks.ok());
  const auto& v = toks.value();
  EXPECT_EQ(v[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(v[0].text, "select");
  EXPECT_EQ(v[3].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(v[3].double_value, 150.0);
  // Backquoted identifier keeps its body; string keeps the escaped quote.
  bool found_string = false;
  for (const auto& t : v) {
    if (t.kind == TokenKind::kStringLiteral) {
      EXPECT_EQ(t.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(LexerTest, Comments) {
  auto toks = Tokenize("select 1 -- trailing comment\n, 2");
  ASSERT_TRUE(toks.ok());
  // select, 1, comma, 2, end
  EXPECT_EQ(toks.value().size(), 5u);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("select 'unterminated").ok());
  EXPECT_FALSE(Tokenize("select `unterminated").ok());
  EXPECT_FALSE(Tokenize("select a ! b").ok());
}

std::string RoundTrip(const std::string& sql) {
  auto stmt = ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status().ToString();
  if (!stmt.ok()) return "";
  std::string printed = PrintStatement(*stmt.value());
  auto again = ParseStatement(printed);
  EXPECT_TRUE(again.ok()) << printed;
  if (!again.ok()) return "";
  // Printing must be a fixed point after one normalization pass.
  EXPECT_EQ(PrintStatement(*again.value()), printed);
  return printed;
}

TEST(ParserTest, RoundTrips) {
  RoundTrip("select 1");
  RoundTrip("select a, b as c from t");
  RoundTrip("select * from t where x > 3 and y < 4 or not z = 1");
  RoundTrip("select count(*), sum(x) from t group by g having count(*) > 5");
  RoundTrip("select a from t order by a desc, b limit 10");
  RoundTrip(
      "select t1.a from t1 inner join t2 on t1.k = t2.k "
      "left join t3 on t2.j = t3.j");
  RoundTrip("select x from (select y as x from t) as d");
  RoundTrip("select case when a > 1 then 'hi' else 'lo' end from t");
  RoundTrip("select x from t where c in (1, 2, 3) and d not in (4)");
  RoundTrip("select x from t where b between 1 and 10");
  RoundTrip("select x from t where s like 'abc%' and u is not null");
  RoundTrip("select x from t where p > (select avg(p) from t)");
  RoundTrip("select count(distinct x) from t");
  RoundTrip("select sum(x) over (partition by g, h) from t");
  RoundTrip("select 1 union all select 2");
  RoundTrip("create table s as select * from t where rand() < 0.01");
  RoundTrip("drop table if exists s");
  RoundTrip("insert into t select * from s");
  RoundTrip("select -x + 3 * (y - 2) / z % 4 from t");
  RoundTrip("select x from t where exists (select 1 from s)");
  RoundTrip("select t.* from t, u");
}

TEST(ParserTest, PrecedenceOfAndOr) {
  auto e = ParseExpression("a or b and c");
  ASSERT_TRUE(e.ok());
  // Must parse as a or (b and c).
  EXPECT_EQ(e.value()->binary_op, BinaryOp::kOr);
  EXPECT_EQ(e.value()->args[1]->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e.value()->args[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, BetweenBindsItsOwnAnd) {
  auto e = ParseExpression("x between 1 and 2 and y = 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(e.value()->args[0]->kind, ExprKind::kBetween);
}

TEST(ParserTest, ImplicitAlias) {
  auto sel = ParseSelect("select price p from orders o");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value()->items[0].alias, "p");
  EXPECT_EQ(sel.value()->from->alias, "o");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto sel = ParseSelect("SELECT X FROM T WHERE Y > 1 GROUP BY X");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value()->group_by.size(), 1u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("select from t").ok());
  EXPECT_FALSE(ParseStatement("select a from").ok());
  EXPECT_FALSE(ParseStatement("select a from t where").ok());
  EXPECT_FALSE(ParseStatement("select a from (select b from t)").ok())
      << "derived table requires alias";
  EXPECT_FALSE(ParseStatement("select a from t; select b from t").ok());
  EXPECT_FALSE(ParseStatement("select case end from t").ok());
}

TEST(AstTest, CloneIsDeep) {
  auto sel = ParseSelect(
      "select g, sum(x) as s from t where y > 1 group by g "
      "having sum(x) > 2 order by s limit 5");
  ASSERT_TRUE(sel.ok());
  auto clone = sel.value()->Clone();
  // Mutating the clone must not affect the original's printed form.
  std::string before = PrintSelect(*sel.value());
  clone->items[0].alias = "renamed";
  clone->limit = 99;
  clone->where->binary_op = BinaryOp::kLt;
  EXPECT_EQ(PrintSelect(*sel.value()), before);
  EXPECT_NE(PrintSelect(*clone), before);
}

TEST(PrinterTest, QuotesWeirdIdentifiers) {
  auto ref = MakeColumnRef("", "weird name");
  EXPECT_EQ(PrintExpr(*ref), "`weird name`");
  PrintOptions redshift;
  redshift.identifier_quote = '"';
  EXPECT_EQ(PrintExpr(*ref, redshift), "\"weird name\"");
}

TEST(PrinterTest, EscapesStringLiterals) {
  auto lit = MakeStringLit("o'neil");
  EXPECT_EQ(PrintExpr(*lit), "'o''neil'");
}

TEST(PrinterTest, WindowSpec) {
  auto sel = ParseSelect(
      "select sum(count(*)) over (partition by g) from t group by g");
  ASSERT_TRUE(sel.ok());
  EXPECT_NE(PrintSelect(*sel.value()).find("over (partition by g)"),
            std::string::npos);
}

}  // namespace
}  // namespace vdb::sql
