// Sample preparation tests: Lemma 1 / staircase guarantees, sample builders
// (uniform, hashed, stratified), metadata catalog, incremental appends, and
// the Appendix F default policy.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats_math.h"
#include "driver/dialect.h"
#include "sampling/sample_builder.h"
#include "sampling/sample_catalog.h"
#include "sampling/staircase.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/synthetic.h"

namespace vdb::sampling {
namespace {

// ---------------------------------------------------------------------------
// Lemma 1 and the staircase function
// ---------------------------------------------------------------------------

TEST(Lemma1Test, GuaranteeHoldsUnderExactBinomial) {
  // f_m(n) must give P(X >= m) >= 1 - delta under the exact binomial too
  // (the normal approximation is good in this regime).
  const double delta = 0.001;
  for (int64_t n : {200, 1000, 10000}) {
    for (int64_t m : {10L, 50L, 100L}) {
      if (m >= n) continue;
      double p = RequiredSamplingProb(n, m, delta);
      double tail = BinomialTailAtLeast(n, p, m);
      EXPECT_GE(tail, 1 - delta - 0.002) << "n=" << n << " m=" << m;
    }
  }
}

TEST(Lemma1Test, TightNotWasteful) {
  // The probability should not be absurdly above the naive m/n rate.
  double p = RequiredSamplingProb(100000, 100, 0.001);
  EXPECT_GT(p, 100.0 / 100000.0);
  EXPECT_LT(p, 3.0 * 100.0 / 100000.0);
}

TEST(Lemma1Test, Boundaries) {
  EXPECT_DOUBLE_EQ(RequiredSamplingProb(100, 0, 0.001), 0.0);
  EXPECT_DOUBLE_EQ(RequiredSamplingProb(100, 100, 0.001), 1.0);
  EXPECT_DOUBLE_EQ(RequiredSamplingProb(100, 200, 0.001), 1.0);
}

TEST(Lemma1Test, MonotoneInN) {
  double p1 = RequiredSamplingProb(1000, 50, 0.001);
  double p2 = RequiredSamplingProb(10000, 50, 0.001);
  EXPECT_GT(p1, p2);
}

TEST(StaircaseTest, UpperBoundsExactProbability) {
  auto steps = BuildStaircase(/*max_stratum=*/100000, /*m=*/50, 0.001);
  ASSERT_FALSE(steps.empty());
  EXPECT_DOUBLE_EQ(steps[0].prob, 1.0);  // strata <= m keep everything
  // Each step's probability must be >= the exact f_m at the step's upper
  // bound (conservative).
  for (const auto& s : steps) {
    EXPECT_GE(s.prob + 1e-12, RequiredSamplingProb(s.max_size, 50, 0.001));
  }
  // Probabilities are non-increasing in stratum size.
  for (size_t i = 1; i < steps.size(); ++i) {
    EXPECT_LE(steps[i].prob, steps[i - 1].prob + 1e-12);
  }
}

TEST(StaircaseTest, CaseExprShape) {
  auto steps = BuildStaircase(5000, 20, 0.001);
  auto e = StaircaseCaseExpr(steps, "strata_size");
  std::string text = sql::PrintExpr(*e);
  EXPECT_NE(text.find("case when"), std::string::npos);
  EXPECT_NE(text.find("strata_size"), std::string::npos);
  EXPECT_NE(text.find("else"), std::string::npos);
}

TEST(StaircaseTest, MonteCarloMinimumGuarantee) {
  // Simulate Bernoulli sampling of strata at the staircase probability and
  // verify the >= m guarantee empirically.
  const int64_t m = 30;
  auto steps = BuildStaircase(20000, m, 0.001);
  Rng rng(42);
  int violations = 0, trials = 0;
  for (int64_t stratum : {40L, 150L, 1000L, 9000L}) {
    double p = 1.0;
    for (const auto& s : steps) {
      if (stratum <= s.max_size) {
        p = s.prob;
        break;
      }
      p = s.prob;
    }
    for (int t = 0; t < 300; ++t) {
      int64_t kept = 0;
      for (int64_t i = 0; i < stratum; ++i) {
        if (rng.NextBernoulli(p)) ++kept;
      }
      ++trials;
      if (kept < std::min(m, stratum)) ++violations;
    }
  }
  // delta = 0.001 per stratum; 1200 trials -> expect ~1 violation max.
  EXPECT_LE(violations, 3) << "of " << trials;
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::GenerateSynthetic(&db_, "t", 50000, 11).ok());
    conn_ = std::make_unique<driver::Connection>(
        &db_, driver::EngineKind::kGeneric);
    catalog_ = std::make_unique<SampleCatalog>(conn_.get());
    builder_ = std::make_unique<SampleBuilder>(conn_.get(), catalog_.get());
  }

  int64_t Count(const std::string& t) {
    auto rs = conn_->Execute("select count(*) as c from " + t);
    EXPECT_TRUE(rs.ok());
    return rs.value().Get(0, 0).AsInt();
  }

  engine::Database db_{909};
  std::unique_ptr<driver::Connection> conn_;
  std::unique_ptr<SampleCatalog> catalog_;
  std::unique_ptr<SampleBuilder> builder_;
};

TEST_F(BuilderTest, UniformSample) {
  auto s = builder_->CreateUniformSample("t", 0.05);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().type, SampleType::kUniform);
  EXPECT_NEAR(static_cast<double>(s.value().sample_rows), 2500.0, 300.0);
  // Probability column present and equal to tau.
  auto rs = conn_->Execute("select avg(verdict_prob) as p from " +
                           s.value().sample_table);
  ASSERT_TRUE(rs.ok());
  EXPECT_NEAR(rs.value().GetDouble(0, 0), 0.05, 1e-9);
}

TEST_F(BuilderTest, HashedSampleIsDeterministicSubset) {
  auto s = builder_->CreateHashedSample("t", "g100", 0.10);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  // Universe property: the g100 values in the sample are a strict subset of
  // the domain, and every row with a selected value is present.
  auto in_sample =
      conn_->Execute("select count(distinct g100) as d from " +
                     s.value().sample_table);
  ASSERT_TRUE(in_sample.ok());
  int64_t selected_values = in_sample.value().Get(0, 0).AsInt();
  EXPECT_GT(selected_values, 0);
  EXPECT_LT(selected_values, 100);
  // All rows of selected values kept: per-value counts match the base.
  auto diff = conn_->Execute(
      "select count(*) as c from (select g100, count(*) as cnt from " +
      s.value().sample_table +
      " group by g100) as sam inner join (select g100, count(*) as cnt"
      " from t group by g100) as base on sam.g100 = base.g100"
      " where sam.cnt <> base.cnt");
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().Get(0, 0).AsInt(), 0);
}

TEST_F(BuilderTest, StratifiedSampleMinimumPerStratum) {
  auto s = builder_->CreateStratifiedSample("t", {"g100"}, 0.2);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  // m = |T| * tau / d = 50000 * 0.2 / 100 = 100 tuples per stratum.
  auto rs = conn_->Execute("select g100, count(*) as c from " +
                           s.value().sample_table + " group by g100");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().NumRows(), 100u);  // every stratum represented
  int starved = 0;
  for (size_t r = 0; r < rs.value().NumRows(); ++r) {
    if (rs.value().Get(r, 1).AsInt() < 100) ++starved;
  }
  // delta = 0.001 per stratum; 100 strata -> ~0 starved expected.
  EXPECT_LE(starved, 2);
}

TEST_F(BuilderTest, StratifiedProbColumnMatchesStaircase) {
  auto s = builder_->CreateStratifiedSample("t", {"g10"}, 0.1);
  ASSERT_TRUE(s.ok());
  // Inclusion probabilities are recorded and within (0, 1].
  auto rs = conn_->Execute("select min(verdict_prob) as lo,"
                           " max(verdict_prob) as hi from " +
                           s.value().sample_table);
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs.value().GetDouble(0, 0), 0.0);
  EXPECT_LE(rs.value().GetDouble(0, 1), 1.0);
}

TEST_F(BuilderTest, CatalogRoundTrip) {
  ASSERT_TRUE(builder_->CreateUniformSample("t", 0.02).ok());
  ASSERT_TRUE(builder_->CreateHashedSample("t", "id", 0.02).ok());
  auto all = catalog_->SamplesFor("t");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 2u);
  // Unregister drops both the record and the table.
  std::string victim = all.value()[0].sample_table;
  ASSERT_TRUE(catalog_->Unregister(victim).ok());
  auto after = catalog_->SamplesFor("t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 1u);
  EXPECT_FALSE(db_.catalog().HasTable(victim));
}

TEST_F(BuilderTest, DefaultPolicyCreatesAllThreeKinds) {
  auto made = builder_->CreateDefaultSamples("t", 0.05);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  int uniform = 0, hashed = 0, stratified = 0;
  for (const auto& s : made.value()) {
    switch (s.type) {
      case SampleType::kUniform: ++uniform; break;
      case SampleType::kHashed: ++hashed; break;
      case SampleType::kStratified: ++stratified; break;
      default: break;
    }
  }
  EXPECT_EQ(uniform, 1);
  EXPECT_GE(hashed, 1);      // id (and maybe u/value) are high-cardinality
  EXPECT_GE(stratified, 1);  // g10/g100 are low-cardinality
}

TEST_F(BuilderTest, AppendMaintainsSamples) {
  auto uni = builder_->CreateUniformSample("t", 0.05);
  ASSERT_TRUE(uni.ok());
  auto strat = builder_->CreateStratifiedSample("t", {"g10"}, 0.1);
  ASSERT_TRUE(strat.ok());
  int64_t uni_before = Count(uni.value().sample_table);

  // Stage a batch shaped like the base table (Appendix D).
  ASSERT_TRUE(workload::GenerateSynthetic(&db_, "staging", 20000, 77).ok());
  ASSERT_TRUE(builder_->AppendData("t", "staging").ok());

  EXPECT_EQ(Count("t"), 70000);
  int64_t uni_after = Count(uni.value().sample_table);
  // Uniform sample should grow by ~ tau * 20000 = 1000.
  EXPECT_NEAR(static_cast<double>(uni_after - uni_before), 1000.0, 200.0);
  // Metadata counts updated.
  auto infos = catalog_->SamplesFor("t");
  ASSERT_TRUE(infos.ok());
  for (const auto& s : infos.value()) {
    EXPECT_EQ(s.base_rows, 70000u);
  }
}

// ---------------------------------------------------------------------------
// Dialect workaround (Impala: no rand() in WHERE)
// ---------------------------------------------------------------------------

TEST(DialectTest, ImpalaHoistsRandOutOfWhere) {
  auto sel = sql::ParseSelect("select * from t where rand() < 0.01");
  ASSERT_TRUE(sel.ok());
  auto st = driver::ApplySyntaxRules(
      driver::GetDialect(driver::EngineKind::kImpala), sel.value().get());
  ASSERT_TRUE(st.ok());
  std::string text = sql::PrintSelect(*sel.value());
  EXPECT_NE(text.find("__vdb_rand0"), std::string::npos);
  // No rand() left in the WHERE clause.
  size_t where_pos = text.rfind("where");
  EXPECT_EQ(text.find("rand()", where_pos), std::string::npos) << text;
}

TEST(DialectTest, GenericLeavesRandAlone) {
  auto sel = sql::ParseSelect("select * from t where rand() < 0.01");
  ASSERT_TRUE(sel.ok());
  std::string before = sql::PrintSelect(*sel.value());
  ASSERT_TRUE(driver::ApplySyntaxRules(
                  driver::GetDialect(driver::EngineKind::kGeneric),
                  sel.value().get())
                  .ok());
  EXPECT_EQ(sql::PrintSelect(*sel.value()), before);
}

TEST(DialectTest, OverheadOrdering) {
  // §6.2: speedups track engine fixed overheads (Spark > Impala > Redshift).
  EXPECT_GT(driver::GetDialect(driver::EngineKind::kSparkSql).fixed_overhead_ms,
            driver::GetDialect(driver::EngineKind::kImpala).fixed_overhead_ms);
  EXPECT_GT(driver::GetDialect(driver::EngineKind::kImpala).fixed_overhead_ms,
            driver::GetDialect(driver::EngineKind::kRedshift).fixed_overhead_ms);
}

}  // namespace
}  // namespace vdb::sampling
