// Differential tests for the flat SoA aggregation sink: every grouped query
// executed through the flat path (open-addressing group table + typed
// scatter-accumulate lanes, engine/agg_table.h + FlatAggregator) must be
// BIT-identical — doubles compared by bit pattern — to the per-group
// accumulator-object reference path, across:
//
//   - 1, 2 and 8 threads (morsel partials merged in fixed morsel order),
//   - scalar vs. native SIMD dispatch (VDB_SIMD's mechanism),
//   - bitmap vs. selection-vector WHERE masks for grouped queries,
//   - forced hash collisions (SetGroupHashMaskForTest truncates every group
//     hash to a handful of buckets, so correctness rides on the group
//     table's representative-row verification, not on hash quality),
//   - adversarial values: NaN and ±0.0 group keys, full-mantissa doubles,
//     NULL-heavy columns, all-NULL aggregate inputs, and morsel sizes that
//     leave ragged tails.
//
// The object path is the semantic reference (aggregates.h); these tests are
// what pins the flat path to it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "engine/agg_table.h"
#include "engine/database.h"
#include "engine/kernels/kernels.h"
#include "engine/planner.h"
#include "engine/table.h"

namespace vdb::engine {
namespace {

constexpr uint64_t kSeed = 20260808;

// ---------------------------------------------------------------------------
// Adversarial input table
// ---------------------------------------------------------------------------

TablePtr BuildAggTable(size_t rows) {
  Rng rng(kSeed);
  auto t = std::make_shared<Table>();
  t->AddColumn("gi", TypeId::kInt64);    // int group key, small domain
  t->AddColumn("gd", TypeId::kDouble);   // double key: NaN, -0.0, NULLs
  t->AddColumn("gs", TypeId::kString);   // string key with NULLs
  t->AddColumn("v", TypeId::kDouble);    // full-mantissa doubles, NULLs
  t->AddColumn("w", TypeId::kInt64);     // int measure with NULLs
  t->AddColumn("z", TypeId::kDouble);    // all NULL
  static const char* kStrs[] = {"a", "b", "ab", "", "long-group-name"};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.push_back(Value::Int(rng.NextInRange(-3, 12)));
    switch (rng.NextBounded(8)) {
      case 0: row.push_back(Value::Double(nan)); break;
      case 1: row.push_back(Value::Double(-0.0)); break;
      case 2: row.push_back(Value::Double(0.0)); break;
      case 3: row.push_back(Value::Null()); break;
      default:
        row.push_back(
            Value::Double(static_cast<double>(rng.NextInRange(-4, 4)) * 0.5));
        break;
    }
    row.push_back(rng.NextBernoulli(0.15)
                      ? Value::Null()
                      : Value::String(kStrs[rng.NextBounded(5)]));
    // Full-mantissa doubles: merge-order sensitivity would show up here.
    row.push_back(rng.NextBernoulli(0.1)
                      ? Value::Null()
                      : Value::Double(rng.NextDouble() * 1e9 - 5e8));
    row.push_back(rng.NextBernoulli(0.2)
                      ? Value::Null()
                      : Value::Int(rng.NextInRange(-1000, 1000)));
    row.push_back(Value::Null());
    t->AppendRow(row);
  }
  return t;
}

std::unique_ptr<Database> MakeDb(size_t rows, int threads) {
  auto db = std::make_unique<Database>(kSeed);
  db->set_num_threads(threads);
  EXPECT_TRUE(db->RegisterTable("t", BuildAggTable(rows)).ok());
  return db;
}

// Bit-pattern comparison: flat vs. reference must not differ even in the
// sign of a zero or the payload of a NaN.
void ExpectBitIdentical(const ResultSet& ref, const ResultSet& got,
                        const std::string& what) {
  ASSERT_EQ(ref.NumCols(), got.NumCols()) << what;
  ASSERT_EQ(ref.NumRows(), got.NumRows()) << what;
  for (size_t r = 0; r < ref.NumRows(); ++r) {
    for (size_t c = 0; c < ref.NumCols(); ++c) {
      const Value a = ref.Get(r, c);
      const Value b = got.Get(r, c);
      ASSERT_EQ(a.is_null(), b.is_null())
          << what << " cell (" << r << "," << c << ")";
      if (a.is_null()) continue;
      ASSERT_EQ(a.type(), b.type()) << what << " cell (" << r << "," << c
                                    << "): " << a.ToString() << " vs "
                                    << b.ToString();
      if (a.type() == TypeId::kDouble) {
        uint64_t ab, bb;
        const double ad = a.AsDouble(), bd = b.AsDouble();
        std::memcpy(&ab, &ad, 8);
        std::memcpy(&bb, &bd, 8);
        ASSERT_EQ(ab, bb) << what << " cell (" << r << "," << c
                          << "): " << ad << " vs " << bd;
      } else {
        ASSERT_TRUE(a.Equals(b)) << what << " cell (" << r << "," << c
                                 << "): " << a.ToString() << " vs "
                                 << b.ToString();
      }
    }
  }
}

// Restores every knob the tests twist, so suites sharing the binary see
// defaults.
class FlatAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    detected_ = kernels::DetectedSimdLevel();
    SetMorselRowsForTest(257);  // ragged tails on every morsel boundary
  }
  void TearDown() override {
    SetMorselRowsForTest(0);
    SetFlatAggSinkForTest(true);
    SetGroupedWhereBitmapForTest(true);
    SetGroupHashMaskForTest(~0ull);
    kernels::SetSimdLevelForTest(detected_);
  }
  kernels::SimdLevel detected_ = kernels::SimdLevel::kScalar;
};

const char* const kGroupQueries[] = {
    "select gi, count(*) as c, sum(v) as s from t group by gi",
    "select gd, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx "
    "from t group by gd",
    "select gi, gd, avg(v) as a, sum(w) as sw from t group by gi, gd",
    "select gs, count(w) as cw, var_samp(v) as vv, stddev(v) as sd "
    "from t group by gs",
    "select gi, gs, min(w) as mn, max(w) as mx, avg(w) as aw "
    "from t group by gi, gs",
    "select gi, sum(z) as sz, count(z) as cz, min(z) as mz, avg(z) as az "
    "from t group by gi",
    "select gi, count(*) as c, sum(v) as s from t "
    "where w > 0 and v < 2.5e8 group by gi",
    "select gd, gs, sum(v) as s, count(*) as c from t "
    "where gi >= 0 group by gd, gs",
    "select count(*) as c, sum(v) as s, min(v) as mn, max(w) as mx, "
    "avg(v) as av from t",
    "select gi, count(*) as c from t where v > 1e18 group by gi",  // empty
    // Derived-table shape (the AQP rewriter's): projection pruning keeps
    // only gi/v/sid of the six-column `select *` expansion.
    "select gi, sid, sum(v) as s, count(*) as c from "
    "(select *, 1 + floor(rand() * 7) as sid from t) as d group by gi, sid",
};

// The reference for every differential test: object-accumulator sink,
// serial, native SIMD, full group hashes.
ResultSet RunReference(size_t rows, const std::string& sql) {
  SetFlatAggSinkForTest(false);
  auto db = MakeDb(rows, 1);
  auto ref = db->Execute(sql);
  SetFlatAggSinkForTest(true);
  EXPECT_TRUE(ref.ok()) << sql << " -> " << ref.status().ToString();
  return std::move(ref).ValueOrDie();
}

TEST_F(FlatAggTest, FlatMatchesReferenceAcrossThreadsAndSimd) {
  const size_t kRows = 5003;  // prime: ragged final morsel
  std::vector<kernels::SimdLevel> levels{kernels::SimdLevel::kScalar};
  if (detected_ != kernels::SimdLevel::kScalar) levels.push_back(detected_);
  for (const char* sql : kGroupQueries) {
    const ResultSet ref = RunReference(kRows, sql);
    for (kernels::SimdLevel level : levels) {
      kernels::SetSimdLevelForTest(level);
      for (int threads : {1, 2, 8}) {
        auto db = MakeDb(kRows, threads);
        auto got = db->Execute(sql);
        ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
        ExpectBitIdentical(ref, got.value(),
                           std::string(sql) + " @" + std::to_string(threads) +
                               " threads, " + kernels::SimdLevelName(level));
        if (::testing::Test::HasFatalFailure()) return;
      }
      kernels::SetSimdLevelForTest(detected_);
    }
  }
}

TEST_F(FlatAggTest, BitmapAndSelectionVectorMasksAgree) {
  const size_t kRows = 4096;  // exact morsel multiples with morsel 256
  SetMorselRowsForTest(256);
  const char* const kSelective[] = {
      // High selectivity: nearly all rows survive.
      "select gi, sum(v) as s, count(*) as c from t where w > -999 group by gi",
      // Low selectivity: sparse survivors exercise rank-select decomposition.
      "select gi, gd, sum(v) as s, count(*) as c from t "
      "where w > 900 group by gi, gd",
      // Predicate on the group key itself.
      "select gs, avg(v) as a, max(w) as mx from t "
      "where gd = 0.0 group by gs",
  };
  for (const char* sql : kSelective) {
    const ResultSet ref = RunReference(kRows, sql);
    for (bool bitmap : {true, false}) {
      SetGroupedWhereBitmapForTest(bitmap);
      for (int threads : {1, 2, 8}) {
        auto db = MakeDb(kRows, threads);
        auto got = db->Execute(sql);
        ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
        ExpectBitIdentical(ref, got.value(),
                           std::string(sql) + " @" + std::to_string(threads) +
                               " threads, bitmap=" + (bitmap ? "on" : "off"));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    SetGroupedWhereBitmapForTest(true);
  }
}

TEST_F(FlatAggTest, ForcedHashCollisionsStillGroupCorrectly) {
  const size_t kRows = 3001;
  // Reference runs with honest 64-bit hashes; the flat runs squeeze every
  // group hash into 8, then 1, bucket(s). Results must not move: collided
  // groups are separated by the representative-row key verification.
  for (const char* sql : kGroupQueries) {
    const ResultSet ref = RunReference(kRows, sql);
    for (uint64_t mask : {uint64_t{0x7}, uint64_t{0}}) {
      SetGroupHashMaskForTest(mask);
      for (int threads : {1, 8}) {
        auto db = MakeDb(kRows, threads);
        auto got = db->Execute(sql);
        ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
        ExpectBitIdentical(ref, got.value(),
                           std::string(sql) + " mask=" + std::to_string(mask) +
                               " @" + std::to_string(threads) + " threads");
        if (::testing::Test::HasFatalFailure()) return;
      }
      SetGroupHashMaskForTest(~0ull);
    }
  }
}

TEST_F(FlatAggTest, NanNegativeZeroAndNullKeysGroupTogether) {
  // ValueGroupKey equivalence, pinned on the flat path: -0.0 groups with
  // +0.0, NaN with NaN, NULL with NULL — and 5 (int) with 5.0 (double)
  // is exercised via the mixed-type gi+gd key in the fuzz above.
  auto t = std::make_shared<Table>();
  t->AddColumn("d", TypeId::kDouble);
  t->AddColumn("v", TypeId::kInt64);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  t->AppendRow({Value::Double(0.0), Value::Int(1)});
  t->AppendRow({Value::Double(-0.0), Value::Int(2)});
  t->AppendRow({Value::Double(nan), Value::Int(4)});
  t->AppendRow({Value::Null(), Value::Int(8)});
  t->AppendRow({Value::Double(nan), Value::Int(16)});
  t->AppendRow({Value::Double(1.0), Value::Int(32)});
  t->AppendRow({Value::Null(), Value::Int(64)});
  for (bool flat : {true, false}) {
    SetFlatAggSinkForTest(flat);
    Database db(kSeed);
    ASSERT_TRUE(db.RegisterTable("k", t).ok());
    auto rs = db.Execute("select d, count(*) as c, sum(v) as s from k "
                         "group by d");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    const ResultSet& r = rs.value();
    ASSERT_EQ(r.NumRows(), 4u) << "flat=" << flat;
    // First-occurrence group order: 0.0, NaN, NULL, 1.0.
    EXPECT_EQ(r.Get(0, 2).AsInt(), 3) << "±0.0 group, flat=" << flat;
    EXPECT_EQ(r.Get(1, 2).AsInt(), 20) << "NaN group, flat=" << flat;
    EXPECT_EQ(r.Get(2, 2).AsInt(), 72) << "NULL group, flat=" << flat;
    EXPECT_EQ(r.Get(3, 2).AsInt(), 32) << "flat=" << flat;
  }
}

TEST_F(FlatAggTest, AllNullAggregateInputs) {
  // sum/avg/min/max of an all-NULL column are NULL; count is 0 — on both
  // sinks, serial and parallel.
  const size_t kRows = 1500;
  const char* sql =
      "select gi, sum(z) as s, avg(z) as a, min(z) as mn, max(z) as mx, "
      "count(z) as c from t group by gi";
  const ResultSet ref = RunReference(kRows, sql);
  for (size_t r = 0; r < ref.NumRows(); ++r) {
    EXPECT_TRUE(ref.Get(r, 1).is_null());
    EXPECT_TRUE(ref.Get(r, 2).is_null());
    EXPECT_TRUE(ref.Get(r, 3).is_null());
    EXPECT_TRUE(ref.Get(r, 4).is_null());
    EXPECT_EQ(ref.Get(r, 5).AsInt(), 0);
  }
  for (int threads : {1, 8}) {
    auto db = MakeDb(kRows, threads);
    auto got = db->Execute(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(ref, got.value(),
                       std::string("all-null @") + std::to_string(threads));
  }
}

TEST_F(FlatAggTest, DerivedTableProjectionPruning) {
  // The planner prunes derived-table outputs the outer statement never
  // references (ExecuteFrom). Pruning must be invisible: same values as
  // the explicit-select-list spelling, row counts preserved when nothing
  // is referenced, and `select *` outers disable it entirely.
  const size_t kRows = 2048;

  // Pruned spelling vs. explicit spelling — bit-identical, rand() included
  // (draws are (row, site)-addressed; both queries have one rand site).
  // Each query runs first on a fresh identically-seeded database so both
  // draw the same per-query seed.
  auto a = MakeDb(kRows, 2)->Execute(
      "select gi, sid, sum(v) as s, count(*) as c from "
      "(select *, 1 + floor(rand() * 5) as sid from t) as d group by gi, sid");
  auto b = MakeDb(kRows, 2)->Execute(
      "select gi, sid, sum(v) as s, count(*) as c from "
      "(select gi, v, 1 + floor(rand() * 5) as sid from t) as d "
      "group by gi, sid");
  auto db = MakeDb(kRows, 2);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectBitIdentical(a.value(), b.value(), "pruned vs explicit select list");

  // Outer references no derived column: the row count must survive.
  auto c = db->Execute("select count(*) as c from (select * from t) as d");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c.value().Get(0, 0).AsInt(), static_cast<int64_t>(kRows));

  // `select *` outer wants every column: pruning is disabled.
  auto e = db->Execute("select * from (select * from t) as d limit 3");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e.value().NumCols(), 6u);

  // DISTINCT derived tables are never pruned (dropping a column would
  // change the distinct row set).
  auto f = db->Execute(
      "select count(*) as c from (select distinct gi, gs from t) as d");
  auto g = db->Execute(
      "select count(*) as c, min(gi) as m from "
      "(select distinct gi, gs from t) as d");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(f.value().Get(0, 0).AsInt(), g.value().Get(0, 0).AsInt());
}

TEST_F(FlatAggTest, TinyMorselsAndTinyTables) {
  // Morsel sizes far below a batch plus row counts around the boundaries:
  // 0 rows, 1 row, exactly one morsel, one morsel ± 1.
  const char* sql =
      "select gi, gd, count(*) as c, sum(v) as s, min(w) as mn "
      "from t group by gi, gd";
  for (size_t morsel : {size_t{1}, size_t{7}, size_t{64}}) {
    for (size_t rows : {size_t{0}, size_t{1}, morsel, morsel + 1, 4 * morsel + 3}) {
      SetMorselRowsForTest(morsel);
      const ResultSet ref = RunReference(rows, sql);
      for (int threads : {1, 2, 8}) {
        auto db = MakeDb(rows, threads);
        auto got = db->Execute(sql);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectBitIdentical(ref, got.value(),
                           "morsel=" + std::to_string(morsel) + " rows=" +
                               std::to_string(rows) + " @" +
                               std::to_string(threads));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace vdb::engine
