// Engine execution tests: scans, filters, expressions, joins, aggregation,
// windows, subqueries, DDL.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "engine/database.h"
#include "engine/hll.h"

namespace vdb::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = std::make_shared<Table>();
    t->AddColumn("id", TypeId::kInt64);
    t->AddColumn("city", TypeId::kString);
    t->AddColumn("price", TypeId::kDouble);
    t->AddColumn("qty", TypeId::kInt64);
    struct Row {
      int64_t id;
      const char* city;
      double price;
      int64_t qty;
    };
    const Row rows[] = {
        {1, "ann arbor", 10.0, 1}, {2, "ann arbor", 20.0, 2},
        {3, "detroit", 30.0, 3},   {4, "detroit", 40.0, 4},
        {5, "chicago", 50.0, 5},   {6, "chicago", 60.0, 6},
        {7, "chicago", 70.0, 7},
    };
    for (const auto& r : rows) {
      t->AppendRow({Value::Int(r.id), Value::String(r.city),
                    Value::Double(r.price), Value::Int(r.qty)});
    }
    ASSERT_TRUE(db_.RegisterTable("orders", t).ok());

    auto c = std::make_shared<Table>();
    c->AddColumn("city", TypeId::kString);
    c->AddColumn("state", TypeId::kString);
    c->AppendRow({Value::String("ann arbor"), Value::String("MI")});
    c->AppendRow({Value::String("detroit"), Value::String("MI")});
    c->AppendRow({Value::String("chicago"), Value::String("IL")});
    ASSERT_TRUE(db_.RegisterTable("cities", c).ok());
  }

  ResultSet Run(const std::string& sql) {
    auto rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status().ToString();
    return rs.ok() ? rs.value() : ResultSet{};
  }

  Database db_;
};

TEST_F(EngineTest, SelectStar) {
  auto rs = Run("select * from orders");
  EXPECT_EQ(rs.NumRows(), 7u);
  EXPECT_EQ(rs.NumCols(), 4u);
  EXPECT_EQ(rs.names[1], "city");
}

TEST_F(EngineTest, Projection) {
  auto rs = Run("select id, price * 2 as double_price from orders");
  EXPECT_EQ(rs.NumCols(), 2u);
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 1), 20.0);
}

TEST_F(EngineTest, Filter) {
  auto rs = Run("select id from orders where price > 35 and qty < 7");
  EXPECT_EQ(rs.NumRows(), 3u);
}

TEST_F(EngineTest, FilterWithInList) {
  auto rs = Run("select id from orders where city in ('detroit', 'chicago')");
  EXPECT_EQ(rs.NumRows(), 5u);
}

TEST_F(EngineTest, FilterWithLike) {
  auto rs = Run("select id from orders where city like 'ann%'");
  EXPECT_EQ(rs.NumRows(), 2u);
}

TEST_F(EngineTest, FilterBetween) {
  auto rs = Run("select id from orders where price between 20 and 50");
  EXPECT_EQ(rs.NumRows(), 4u);
}

TEST_F(EngineTest, CaseExpression) {
  auto rs = Run(
      "select sum(case when city = 'chicago' then price else 0.0 end) as s "
      "from orders");
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 0), 180.0);
}

TEST_F(EngineTest, Aggregates) {
  auto rs = Run(
      "select count(*) as c, sum(price) as s, avg(price) as a, "
      "min(price) as mn, max(price) as mx from orders");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 7);
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 1), 280.0);
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 2), 40.0);
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 3), 10.0);
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 4), 70.0);
}

TEST_F(EngineTest, GroupBy) {
  auto rs = Run(
      "select city, count(*) as c, sum(price) as s from orders "
      "group by city order by city");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.Get(0, 0).AsString(), "ann arbor");
  EXPECT_EQ(rs.Get(0, 1).AsInt(), 2);
  EXPECT_DOUBLE_EQ(rs.GetDouble(1, 2), 180.0);  // chicago
}

TEST_F(EngineTest, GroupByExpression) {
  auto rs = Run(
      "select qty % 2 as parity, count(*) as c from orders "
      "group by qty % 2 order by parity");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Get(0, 1).AsInt(), 3);  // even qty: 2,4,6
  EXPECT_EQ(rs.Get(1, 1).AsInt(), 4);
}

TEST_F(EngineTest, Having) {
  auto rs = Run(
      "select city, count(*) as c from orders group by city "
      "having count(*) > 2");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Get(0, 0).AsString(), "chicago");
}

TEST_F(EngineTest, HavingOnUnselectedAggregate) {
  auto rs = Run(
      "select city from orders group by city having sum(price) >= 100");
  EXPECT_EQ(rs.NumRows(), 1u);
}

TEST_F(EngineTest, CountDistinctAndVariance) {
  auto rs = Run(
      "select count(distinct city) as dc, var(price) as v, "
      "stddev(qty) as sd from orders");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 3);
  EXPECT_NEAR(rs.GetDouble(0, 1), 466.666, 0.01);
  EXPECT_NEAR(rs.GetDouble(0, 2), 2.160, 0.01);
}

TEST_F(EngineTest, QuantileAndMedian) {
  auto rs = Run(
      "select median(price) as m, quantile(price, 0.25) as q from orders");
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 0), 40.0);
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 1), 25.0);
}

TEST_F(EngineTest, InnerJoin) {
  auto rs = Run(
      "select state, sum(price) as s from orders "
      "inner join cities on orders.city = cities.city "
      "group by state order by state");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Get(0, 0).AsString(), "IL");
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 1), 180.0);
  EXPECT_DOUBLE_EQ(rs.GetDouble(1, 1), 100.0);
}

TEST_F(EngineTest, JoinWithResidualPredicate) {
  auto rs = Run(
      "select count(*) as c from orders o inner join cities c2 "
      "on o.city = c2.city and o.price > 30");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 4);
}

TEST_F(EngineTest, LeftJoin) {
  auto rs = Run(
      "select count(*) as c, count(s2.state) as matched from orders o "
      "left join (select * from cities where state = 'MI') as s2 "
      "on o.city = s2.city");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 7);
  EXPECT_EQ(rs.Get(0, 1).AsInt(), 4);
}

TEST_F(EngineTest, DerivedTable) {
  auto rs = Run(
      "select avg(s) as a from (select city, sum(price) as s from orders "
      "group by city) as t");
  EXPECT_NEAR(rs.GetDouble(0, 0), 280.0 / 3.0, 1e-9);
}

TEST_F(EngineTest, ScalarSubquery) {
  auto rs = Run(
      "select count(*) as c from orders "
      "where price > (select avg(price) from orders)");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 3);
}

TEST_F(EngineTest, ExistsSubquery) {
  auto rs = Run(
      "select count(*) as c from orders where exists "
      "(select 1 from cities where state = 'IL')");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 7);
}

TEST_F(EngineTest, WindowPartition) {
  auto rs = Run(
      "select city, count(*) as c, "
      "(sum(count(*)) over ()) as total from orders group by city");
  ASSERT_EQ(rs.NumRows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rs.Get(r, 2).AsInt(), 7);
  }
}

TEST_F(EngineTest, WindowPartitionByGroupColumn) {
  // The shape VerdictDB's rewriter emits (Appendix G, Query 9).
  auto rs = Run(
      "select city, qty % 2 as parity, count(*) as c, "
      "sum(count(*)) over (partition by city) as city_total "
      "from orders group by city, qty % 2 order by city, parity");
  ASSERT_EQ(rs.NumRows(), 6u);
  // chicago has 3 rows total.
  for (size_t r = 0; r < rs.NumRows(); ++r) {
    if (rs.Get(r, 0).AsString() == "chicago") {
      EXPECT_EQ(rs.Get(r, 3).AsInt(), 3);
    }
  }
}

TEST_F(EngineTest, OrderByAndLimit) {
  auto rs = Run("select id, price from orders order by price desc limit 3");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 7);
  EXPECT_EQ(rs.Get(2, 0).AsInt(), 5);
}

TEST_F(EngineTest, OrderByOrdinal) {
  auto rs = Run("select city, sum(price) as s from orders group by city "
                "order by 2 desc");
  EXPECT_EQ(rs.Get(0, 0).AsString(), "chicago");
}

TEST_F(EngineTest, Distinct) {
  auto rs = Run("select distinct city from orders");
  EXPECT_EQ(rs.NumRows(), 3u);
}

TEST_F(EngineTest, UnionAll) {
  auto rs = Run(
      "select id from orders where id <= 2 union all "
      "select id from orders where id >= 6");
  EXPECT_EQ(rs.NumRows(), 4u);
}

TEST_F(EngineTest, CreateTableAsAndInsert) {
  ASSERT_TRUE(db_.Execute("create table big as select * from orders "
                          "where price >= 40").ok());
  auto rs = Run("select count(*) as c from big");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 4);
  ASSERT_TRUE(db_.Execute("insert into big select * from orders "
                          "where price < 40").ok());
  rs = Run("select count(*) as c from big");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 7);
  ASSERT_TRUE(db_.Execute("drop table big").ok());
  EXPECT_FALSE(db_.Execute("select * from big").ok());
  EXPECT_TRUE(db_.Execute("drop table if exists big").ok());
}

TEST_F(EngineTest, SelectConstants) {
  auto rs = Run("select 1 + 2 as three, 'x' as s");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 3);
  EXPECT_EQ(rs.Get(0, 1).AsString(), "x");
}

TEST_F(EngineTest, NullHandling) {
  ASSERT_TRUE(db_.Execute("create table n as select id, "
                          "case when id > 5 then null else price end as p "
                          "from orders").ok());
  auto rs = Run("select count(*) as c, count(p) as cp, sum(p) as s from n");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 7);
  EXPECT_EQ(rs.Get(0, 1).AsInt(), 5);
  EXPECT_DOUBLE_EQ(rs.GetDouble(0, 2), 150.0);
  // Three-valued logic: NULL comparisons don't satisfy WHERE.
  rs = Run("select count(*) as c from n where p > 0");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 5);
  rs = Run("select count(*) as c from n where p is null");
  EXPECT_EQ(rs.Get(0, 0).AsInt(), 2);
}

TEST_F(EngineTest, RandIsDeterministicPerSeed) {
  Database db1(123), db2(123);
  auto t = std::make_shared<Table>();
  t->AddColumn("x", TypeId::kInt64);
  for (int i = 0; i < 100; ++i) t->AppendRow({Value::Int(i)});
  ASSERT_TRUE(db1.RegisterTable("t", t).ok());
  ASSERT_TRUE(db2.RegisterTable("t", t).ok());
  auto r1 = db1.Execute("select count(*) as c from t where rand() < 0.5");
  auto r2 = db2.Execute("select count(*) as c from t where rand() < 0.5");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().Get(0, 0).AsInt(), r2.value().Get(0, 0).AsInt());
}

TEST_F(EngineTest, ErrorOnUnknownColumn) {
  auto rs = db_.Execute("select nope from orders");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ErrorOnUngroupedColumn) {
  auto rs = db_.Execute("select city, count(*) from orders");
  EXPECT_FALSE(rs.ok());
}

TEST(HyperLogLogTest, EstimatesCardinality) {
  HyperLogLog hll(14);
  for (uint64_t i = 0; i < 100000; ++i) {
    hll.AddHash(vdb::HashMix64(i % 5000));
  }
  EXPECT_NEAR(hll.Estimate(), 5000, 5000 * 0.05);
}

TEST(HyperLogLogTest, MergeIsUnion) {
  HyperLogLog a(12), b(12);
  for (uint64_t i = 0; i < 2000; ++i) a.AddHash(vdb::HashMix64(i));
  for (uint64_t i = 1000; i < 3000; ++i) b.AddHash(vdb::HashMix64(i));
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 3000, 3000 * 0.1);
}

TEST(EngineNdvTest, ApproxDistinct) {
  Database db;
  auto t = std::make_shared<Table>();
  t->AddColumn("x", TypeId::kInt64);
  for (int i = 0; i < 50000; ++i) t->AppendRow({Value::Int(i % 1234)});
  ASSERT_TRUE(db.RegisterTable("t", t).ok());
  auto rs = db.Execute("select ndv(x) as d from t");
  ASSERT_TRUE(rs.ok());
  EXPECT_NEAR(static_cast<double>(rs.value().Get(0, 0).AsInt()), 1234.0,
              1234 * 0.05);
}

}  // namespace
}  // namespace vdb::engine
