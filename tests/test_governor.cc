// Query governor end-to-end: cooperative cancellation, deadlines, memory
// budgets, and the fault-injection sweep.
//
// The contract under test (docs/INVARIANTS.md, "Cancellation / budget
// contract"):
//   - a tripped guard unwinds every execution stage with a clean Status
//     (kCancelled / kDeadlineExceeded / kResourceExhausted) at 1, 2 and 8
//     threads — no crash, no partial result, no corrupted engine state;
//   - an armed-but-untripped guard is invisible: results are bit-identical
//     to an unguarded run, including row order and rand()-derived values;
//   - budget trips are leak-free (the CI fault-injection leg runs this
//     binary under ASan+UBSan) and a statement that tripped leaves the
//     Database fully usable;
//   - every governed site doubles as a fault point, and injecting a failure
//     at each reachable site produces a clean error, never an abort.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/governor.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/verdict_context.h"
#include "engine/database.h"

namespace vdb::engine {
namespace {

constexpr uint64_t kSeed = 20260808;
constexpr size_t kTestMorselRows = 500;

TablePtr BuildOrders(size_t n) {
  Rng rng(kSeed);
  auto t = std::make_shared<Table>();
  t->AddColumn("id", TypeId::kInt64);
  t->AddColumn("city", TypeId::kString);
  t->AddColumn("price", TypeId::kDouble);
  t->AddColumn("k", TypeId::kInt64);
  const char* cities[] = {"ann arbor", "detroit", "chicago", "nyc", "sf"};
  for (size_t r = 0; r < n; ++r) {
    double price = static_cast<double>(rng.NextInRange(0, 4000)) * 0.25;
    t->AppendRow({Value::Int(static_cast<int64_t>(r)),
                  Value::String(cities[rng.NextBounded(5)]),
                  Value::Double(price),
                  Value::Int(rng.NextInRange(0, 60))});
  }
  return t;
}

TablePtr BuildDim() {
  auto t = std::make_shared<Table>();
  t->AddColumn("k", TypeId::kInt64);
  t->AddColumn("label", TypeId::kString);
  for (int64_t k = 0; k < 50; ++k) {
    t->AppendRow({Value::Int(k), Value::String("label_" + std::to_string(k))});
  }
  return t;
}

std::unique_ptr<Database> MakeDb(size_t rows, int num_threads) {
  auto db = std::make_unique<Database>(kSeed);
  db->set_num_threads(num_threads);
  EXPECT_TRUE(db->RegisterTable("orders", BuildOrders(rows)).ok());
  EXPECT_TRUE(db->RegisterTable("dim", BuildDim()).ok());
  return db;
}

// One query per execution stage the governor polls: scan/filter, grouped
// aggregation (all paths), hash join build+probe, non-equi (cross) join,
// derived table, and the row-addressed rand() rewrite shape.
const std::vector<std::string>& WorkloadQueries() {
  static const std::vector<std::string> kQueries = {
      "select id, price from orders where price > 500",
      "select city, count(*) as c, sum(price) as sp from orders "
      "group by city order by city",
      "select d.label, count(*) as c, avg(o.price) as ap from orders o "
      "inner join dim d on o.k = d.k group by d.label order by d.label",
      "select count(*) as c from orders o inner join dim d on o.k < d.k "
      "where d.k > 47",
      "select count(*) as c from orders o cross join dim d",
      "select city, c from (select city, count(*) as c from orders "
      "group by city) t order by city",
      "select city, sid, count(*) as c from (select *, 1 + floor(rand() * 8) "
      "as sid from orders) t group by city, sid order by city, sid",
  };
  return kQueries;
}

bool IsGovernorCode(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

void ExpectBitIdentical(const ResultSet& ref, const ResultSet& got,
                        const std::string& what) {
  ASSERT_EQ(ref.NumCols(), got.NumCols()) << what;
  ASSERT_EQ(ref.NumRows(), got.NumRows()) << what;
  for (size_t r = 0; r < ref.NumRows(); ++r) {
    for (size_t c = 0; c < ref.NumCols(); ++c) {
      ASSERT_TRUE(ref.Get(r, c).Equals(got.Get(r, c)))
          << what << " cell (" << r << "," << c << "): "
          << ref.Get(r, c).ToString() << " vs " << got.Get(r, c).ToString();
    }
  }
}

class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmAllFaultPoints();
    SetMorselRowsForTest(kTestMorselRows);
  }
  void TearDown() override {
    SetMorselRowsForTest(0);
    DisarmAllFaultPoints();
  }
};

// ---- ExecGuard unit behavior ------------------------------------------------

TEST_F(GovernorTest, GuardStartsDisarmedAndPollsOk) {
  ExecGuard g;
  EXPECT_TRUE(g.Check("unit").ok());
  EXPECT_TRUE(g.TryReserve(1 << 20, "unit").ok());
  EXPECT_EQ(g.reserved_bytes(), static_cast<uint64_t>(1 << 20));
  g.Release(1 << 20);
  EXPECT_EQ(g.reserved_bytes(), 0u);
}

TEST_F(GovernorTest, CancelTripsEveryPollAndNamesTheSite) {
  ExecGuard g;
  g.RequestCancel();
  const Status s = g.Check("join_probe");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("join_probe"), std::string::npos) << s.message();
  // TryReserve polls first: a cancelled guard charges nothing.
  EXPECT_EQ(g.TryReserve(64, "join_probe").code(), StatusCode::kCancelled);
  EXPECT_EQ(g.reserved_bytes(), 0u);
  g.ResetForStatement();
  EXPECT_TRUE(g.Check("join_probe").ok());
}

TEST_F(GovernorTest, DeadlineTripsAfterItPasses) {
  ExecGuard g;
  g.set_deadline_after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  const Status s = g.Check("agg_partial");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("agg_partial"), std::string::npos);
  g.set_deadline_after_ms(0);  // disarm
  EXPECT_TRUE(g.Check("agg_partial").ok());
}

TEST_F(GovernorTest, BudgetChargesExactlyAndTripsWithoutCharging) {
  ExecGuard g;
  g.set_memory_budget_bytes(1000);
  EXPECT_TRUE(g.TryReserve(600, "a").ok());
  const Status s = g.TryReserve(600, "b");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("b"), std::string::npos);
  EXPECT_EQ(g.reserved_bytes(), 600u);  // the failed reserve charged nothing
  EXPECT_TRUE(g.TryReserve(400, "c").ok());
  EXPECT_EQ(g.peak_reserved_bytes(), 1000u);
  g.Release(1000);
  g.Release(1 << 30);  // saturating: over-release never underflows
  EXPECT_EQ(g.reserved_bytes(), 0u);
  EXPECT_EQ(g.peak_reserved_bytes(), 1000u);  // peak survives releases
  g.ResetForStatement();
  EXPECT_EQ(g.peak_reserved_bytes(), 0u);
  EXPECT_EQ(g.memory_budget_bytes(), 1000u);  // budget survives re-arming
}

TEST_F(GovernorTest, ScopedReservationReleasesAndReportsFailure) {
  ExecGuard g;
  g.set_memory_budget_bytes(100);
  {
    ScopedReservation ok(&g, 80, "scratch");
    EXPECT_TRUE(ok.status().ok());
    EXPECT_EQ(g.reserved_bytes(), 80u);
    ScopedReservation fail(&g, 80, "scratch");
    EXPECT_EQ(fail.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(g.reserved_bytes(), 80u);  // failed charge stays zero
  }
  EXPECT_EQ(g.reserved_bytes(), 0u);  // both released on scope exit
  // Null guard: free, always ok.
  ScopedReservation null_guard(nullptr, 1 << 30, "scratch");
  EXPECT_TRUE(null_guard.status().ok());
}

// ---- whole-statement unwinding at 1 / 2 / 8 threads -------------------------

TEST_F(GovernorTest, CancelUnwindsEveryStageAtEveryThreadCount) {
  for (int threads : {1, 2, 8}) {
    auto db = MakeDb(4001, threads);
    ExecGuard guard;
    for (const std::string& sql : WorkloadQueries()) {
      guard.ResetForStatement();
      guard.RequestCancel();
      auto got = db->Execute(sql, &guard);
      ASSERT_FALSE(got.ok()) << sql << " @" << threads;
      EXPECT_EQ(got.status().code(), StatusCode::kCancelled)
          << sql << " @" << threads << " -> " << got.status().ToString();
      // The aborted statement must leave the Database fully usable.
      guard.ResetForStatement();
      auto again = db->Execute(sql, &guard);
      ASSERT_TRUE(again.ok())
          << sql << " @" << threads << " -> " << again.status().ToString();
    }
  }
}

TEST_F(GovernorTest, DeadlineUnwindsEveryStageAtEveryThreadCount) {
  for (int threads : {1, 2, 8}) {
    auto db = MakeDb(4001, threads);
    ExecGuard guard;
    for (const std::string& sql : WorkloadQueries()) {
      guard.ResetForStatement();
      guard.set_deadline_after_ms(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      auto got = db->Execute(sql, &guard);
      ASSERT_FALSE(got.ok()) << sql << " @" << threads;
      EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
          << sql << " @" << threads << " -> " << got.status().ToString();
    }
    guard.set_deadline_after_ms(0);
  }
}

TEST_F(GovernorTest, TinyBudgetTripsRowProportionalStagesCleanly) {
  // 4001 orders rows: the join's key-hash scratch alone wants ~36 KB, the
  // probe's pair lists more; a 1 KB budget must trip them all with
  // kResourceExhausted and charge nothing durable (ASan leg proves
  // leak-free).
  for (int threads : {1, 2, 8}) {
    auto db = MakeDb(4001, threads);
    ExecGuard guard;
    guard.set_memory_budget_bytes(1024);
    int tripped = 0;
    for (const std::string& sql : WorkloadQueries()) {
      guard.ResetForStatement();
      auto got = db->Execute(sql, &guard);
      if (got.ok()) continue;  // stages with no row-proportional reserve
      EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
          << sql << " @" << threads << " -> " << got.status().ToString();
      ++tripped;
    }
    EXPECT_GT(tripped, 0) << "@" << threads;
    // A generous budget on the same guard runs the whole workload again.
    guard.set_memory_budget_bytes(1ull << 32);
    for (const std::string& sql : WorkloadQueries()) {
      guard.ResetForStatement();
      auto got = db->Execute(sql, &guard);
      ASSERT_TRUE(got.ok())
          << sql << " @" << threads << " -> " << got.status().ToString();
    }
    EXPECT_GT(guard.peak_reserved_bytes(), 0u);
  }
}

// ---- armed-but-untripped guard: bit-identity --------------------------------

TEST_F(GovernorTest, UntrippedGuardIsBitIdenticalToUnguardedRun) {
  for (int threads : {1, 2, 8}) {
    for (const std::string& sql : WorkloadQueries()) {
      // Identical databases so NewQuerySeed draws match run for run.
      auto ref_db = MakeDb(4001, threads);
      auto ref = ref_db->Execute(sql);
      ASSERT_TRUE(ref.ok()) << sql << " -> " << ref.status().ToString();

      auto db = MakeDb(4001, threads);
      ExecGuard guard;
      guard.set_memory_budget_bytes(1ull << 40);
      guard.set_deadline_after_ms(10l * 60 * 1000);
      auto got = db->Execute(sql, &guard);
      ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
      ExpectBitIdentical(ref.value(), got.value(),
                         sql + " @" + std::to_string(threads));
    }
  }
}

// ---- concurrent-statement isolation -----------------------------------------

TEST_F(GovernorTest, DoomedStatementDoesNotPerturbConcurrentOnes) {
  // Two guards, one shared Database: thread A's pre-cancelled statements
  // must never leak into thread B's ungoverned exact results. (The CI TSan
  // job runs this suite; see also ParallelTest.SharedDatabaseConcurrentSelects.)
  auto db = MakeDb(4001, 4);
  const std::string sql =
      "select city, count(*) as c, sum(price) as sp from orders "
      "group by city order by city";
  auto ref = db->Execute(sql);
  ASSERT_TRUE(ref.ok());

  constexpr int kIters = 15;
  int cancelled_bad = 0, clean_bad = 0;
  std::thread doomed([&]() {
    ExecGuard guard;
    for (int i = 0; i < kIters; ++i) {
      guard.ResetForStatement();
      guard.RequestCancel();
      auto got = db->Execute(sql, &guard);
      if (got.ok() || got.status().code() != StatusCode::kCancelled) {
        ++cancelled_bad;
      }
    }
  });
  std::thread clean([&]() {
    for (int i = 0; i < kIters; ++i) {
      auto got = db->Execute(sql);
      if (!got.ok() || got.value().NumRows() != ref.value().NumRows()) {
        ++clean_bad;
        continue;
      }
      for (size_t r = 0; r < ref.value().NumRows(); ++r) {
        for (size_t c = 0; c < ref.value().NumCols(); ++c) {
          if (!ref.value().Get(r, c).Equals(got.value().Get(r, c))) {
            ++clean_bad;
          }
        }
      }
    }
  });
  doomed.join();
  clean.join();
  EXPECT_EQ(cancelled_bad, 0);
  EXPECT_EQ(clean_bad, 0);
}

// ---- fault-injection sweep --------------------------------------------------

TEST_F(GovernorTest, FaultSweepEveryReachableSiteFailsClean) {
  auto db = MakeDb(4001, 4);

  // Pass 1: observation mode discovers which governed sites this workload
  // actually reaches (fault points fire even for ungoverned statements).
  SetFaultObservationForTest(true);
  for (const std::string& sql : WorkloadQueries()) {
    auto got = db->Execute(sql);
    ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
  }
  SetFaultObservationForTest(false);
  const std::vector<std::string> sites = ObservedFaultSites();
  ASSERT_FALSE(sites.empty());
  // The stages the tentpole governs must all be represented.
  for (const char* must : {"agg_partial", "join_build", "join_probe",
                           "gather", "cross_join"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), must), sites.end())
        << "workload never reached governed site " << must;
  }

  // Pass 2: arm each site to fail on its first hit; every query either
  // avoids the site or unwinds with the injected status — never a crash.
  for (const std::string& site : sites) {
    DisarmAllFaultPoints();
    ArmFaultPointNth(site, 1, StatusCode::kResourceExhausted);
    int failed = 0;
    for (const std::string& sql : WorkloadQueries()) {
      auto got = db->Execute(sql);
      if (got.ok()) continue;
      EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
          << site << " / " << sql << " -> " << got.status().ToString();
      EXPECT_NE(got.status().message().find(site), std::string::npos)
          << got.status().ToString();
      ++failed;
    }
    EXPECT_GT(failed, 0) << "armed site " << site << " never fired";
  }

  // Pass 3: disarmed again, the workload runs clean.
  DisarmAllFaultPoints();
  for (const std::string& sql : WorkloadQueries()) {
    auto got = db->Execute(sql);
    ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
  }
}

TEST_F(GovernorTest, EnvSpecArmsAndRejectsMalformedInput) {
  EXPECT_TRUE(ArmFromEnvSpec("agg_partial=3,join_build=1"));
  auto db = MakeDb(2001, 2);
  auto got = db->Execute(
      "select d.label, count(*) as c from orders o "
      "inner join dim d on o.k = d.k group by d.label");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
  DisarmAllFaultPoints();

  EXPECT_FALSE(ArmFromEnvSpec("=3"));
  EXPECT_FALSE(ArmFromEnvSpec("no_equals_sign"));
  DisarmAllFaultPoints();
}

// ---- the middleware facade: options-driven limits ---------------------------

class GovernorFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmAllFaultPoints();
    SetMorselRowsForTest(kTestMorselRows);
  }
  void TearDown() override {
    SetMorselRowsForTest(0);
    DisarmAllFaultPoints();
  }
};

TEST_F(GovernorFacadeTest, GenerousLimitsReportPeakMemoryAndSucceed) {
  // A universe join of two hashed samples: the rewritten query exercises the
  // join build/probe charges, so the reported peak must be nonzero while the
  // generous limits never trip.
  Database db(777);
  Rng rng(kSeed);
  auto fact = std::make_shared<Table>();
  fact->AddColumn("k", TypeId::kInt64);
  fact->AddColumn("v", TypeId::kDouble);
  for (int i = 0; i < 8000; ++i) {
    fact->AppendRow({Value::Int(rng.NextInRange(0, 299)),
                     Value::Double(rng.NextDouble() * 100.0)});
  }
  auto dim = std::make_shared<Table>();
  dim->AddColumn("k", TypeId::kInt64);
  dim->AddColumn("w", TypeId::kDouble);
  for (int64_t k = 0; k < 300; ++k) {
    dim->AppendRow(
        {Value::Int(k), Value::Double(1.0 + static_cast<double>(k % 5))});
  }
  ASSERT_TRUE(db.RegisterTable("fact", fact).ok());
  ASSERT_TRUE(db.RegisterTable("dim", dim).ok());
  db.set_num_threads(4);
  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 100;
  opts.io_budget = 0.30;
  opts.timeout_ms = 10 * 60 * 1000;
  opts.memory_budget_bytes = 1ull << 40;
  core::VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  ASSERT_TRUE(ctx.sample_builder().CreateHashedSample("fact", "k", 0.2).ok());
  ASSERT_TRUE(ctx.sample_builder().CreateHashedSample("dim", "k", 0.2).ok());

  core::VerdictContext::ExecInfo info;
  auto rs = ctx.Execute(
      "select sum(f.v * d.w) as s from fact f inner join dim d on f.k = d.k",
      &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(info.approximated) << info.skip_reason;
  EXPECT_FALSE(info.degraded);
  EXPECT_GT(info.peak_memory_bytes, 0u);
}

TEST_F(GovernorFacadeTest, InjectedFailureSurfacesAsCleanStatus) {
  Database db(778);
  ASSERT_TRUE(db.RegisterTable("orders", BuildOrders(8000)).ok());
  db.set_num_threads(4);
  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 1000;
  core::VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  ASSERT_TRUE(ctx.sample_builder().CreateUniformSample("orders", 0.10).ok());

  ArmFaultPointNth("agg_partial", 1, StatusCode::kResourceExhausted);
  auto rs = ctx.Execute(
      "select city, sum(price) as sp from orders group by city");
  ASSERT_FALSE(rs.ok());
  EXPECT_TRUE(IsGovernorCode(rs.status().code())) << rs.status().ToString();
  DisarmAllFaultPoints();

  // Disarmed, the same context serves the query.
  auto again = ctx.Execute(
      "select city, sum(price) as sp from orders group by city");
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(GovernorFacadeTest, SampleBuildsAreGovernedByTheStandingBudget) {
  // The budget is armed from construction, so the offline stage is governed
  // too: a sample gather that would exceed it unwinds with
  // kResourceExhausted instead of materializing.
  Database db(779);
  ASSERT_TRUE(db.RegisterTable("orders", BuildOrders(8000)).ok());
  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 1000;
  opts.memory_budget_bytes = 2048;
  core::VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  auto st = ctx.sample_builder().CreateUniformSample("orders", 0.5);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kResourceExhausted)
      << st.status().ToString();
  // Lifting the budget makes the same build succeed on the same context.
  ctx.exec_guard().ResetForStatement();
  ctx.exec_guard().set_memory_budget_bytes(0);
  EXPECT_TRUE(ctx.sample_builder().CreateUniformSample("orders", 0.5).ok());
}

TEST_F(GovernorFacadeTest, TrippedExactFallbackDegradesToApproximateAnswer) {
  // The HAC setup from test_core: a singleton group's stderr is unmeasurable,
  // so min_accuracy > 0 forces the exact fallback deterministically. We then
  // inject a budget failure into that fallback (and only it) by arming
  // agg_partial to fail on the hit AFTER the approximate phase's last one —
  // hit counts depend only on row counts, so the threshold is stable.
  Database db(4321);
  auto t = std::make_shared<Table>();
  t->AddColumn("g", TypeId::kInt64);
  t->AddColumn("v", TypeId::kDouble);
  for (int i = 0; i < 5000; ++i) {
    t->AppendRow({Value::Int(1), Value::Double(10.0 + (i % 7))});
  }
  t->AppendRow({Value::Int(2), Value::Double(42.0)});
  ASSERT_TRUE(db.RegisterTable("skew", t).ok());
  db.set_num_threads(4);
  core::VerdictOptions opts;
  opts.min_rows_for_sampling = 1000;
  opts.io_budget = 1.0;
  core::VerdictContext ctx(&db, driver::EngineKind::kGeneric, opts);
  ASSERT_TRUE(ctx.sample_builder().CreateUniformSample("skew", 1.0).ok());

  const std::string sql =
      "select g, sum(v) as s from skew group by g order by g";

  // Count the approximate phase's agg_partial consultations (no fallback).
  SetFaultObservationForTest(true);
  {
    auto warm = ctx.ExecuteApprox(sql);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }
  const uint64_t approx_hits = FaultPointHits("agg_partial");
  SetFaultObservationForTest(false);
  DisarmAllFaultPoints();
  ASSERT_GT(approx_hits, 0u);

  // Now force the fallback and make its first aggregation poll fail.
  ctx.options().min_accuracy = 0.5;
  ArmFaultPointNth("agg_partial", approx_hits + 1,
                   StatusCode::kResourceExhausted);
  core::VerdictContext::ExecInfo info;
  auto ans = ctx.ExecuteApprox(sql, &info);
  DisarmAllFaultPoints();
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_TRUE(info.approximated);
  EXPECT_TRUE(info.exact_rerun);
  EXPECT_TRUE(info.degraded);
  EXPECT_NE(info.degradation_note.find("exact fallback"), std::string::npos)
      << info.degradation_note;
}

}  // namespace
}  // namespace vdb::engine
