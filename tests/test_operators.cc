// Join operator tests targeting the vectorized materialization paths:
// chunked residual evaluation across chunk boundaries (hot keys), left-join
// null-extension ordering, and the sentinel-segment gather.

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/operators.h"
#include "sql/ast.h"

namespace vdb::engine {
namespace {

using sql::BinaryOp;
using sql::Expr;

TablePtr MakeKeyed(size_t rows, int64_t key_mod, const char* payload_name) {
  auto t = std::make_shared<Table>();
  Column key(TypeId::kInt64), payload(TypeId::kInt64);
  for (size_t r = 0; r < rows; ++r) {
    key.AppendInt(static_cast<int64_t>(r) % key_mod);
    payload.AppendInt(static_cast<int64_t>(r));
  }
  t->AddColumn("k", std::move(key));
  t->AddColumn(payload_name, std::move(payload));
  return t;
}

/// Bound column ref into the combined (left ++ right) schema.
Expr::Ptr CombinedRef(int ordinal) {
  auto e = sql::MakeColumnRef("", "c" + std::to_string(ordinal));
  e->bound_column = ordinal;
  return e;
}

TEST(HashJoinTest, ResidualAcrossChunkBoundaries) {
  // One hot key: 150,000 candidate pairs — crosses the 65,536-pair chunk at
  // least twice. Residual keeps the pairs where the right payload is even.
  auto left = MakeKeyed(3, 1, "lv");        // 3 rows, all key 0
  auto right = MakeKeyed(50'000, 1, "rv");  // 50k rows, all key 0
  // Combined schema: k, lv, k, rv -> rv is ordinal 3.
  auto residual = sql::MakeBinary(
      BinaryOp::kEq,
      sql::MakeBinary(BinaryOp::kMod, CombinedRef(3), sql::MakeIntLit(2)),
      sql::MakeIntLit(0));
  Rng rng(1);
  auto joined = HashJoin(*left, *right, std::vector<int>{0}, std::vector<int>{0}, sql::JoinType::kInner,
                         residual.get(), &rng);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // 3 left rows x 25,000 even right payloads.
  EXPECT_EQ(joined.value()->num_rows(), 75'000u);
  // Output is left-row-major with right rows in build order: first block is
  // left row 0 against rv = 0, 2, 4, ...
  const Table& out = *joined.value();
  EXPECT_EQ(out.Get(0, 1).AsInt(), 0);   // lv of first pair
  EXPECT_EQ(out.Get(0, 3).AsInt(), 0);   // rv
  EXPECT_EQ(out.Get(1, 3).AsInt(), 2);
  EXPECT_EQ(out.Get(25'000, 1).AsInt(), 1);  // second left row's block
  EXPECT_EQ(out.Get(25'000, 3).AsInt(), 0);
}

TEST(HashJoinTest, LeftJoinResidualNullExtensionOrder) {
  // Left keys 0..9; right has keys 0..4 with two rows each. The residual
  // keeps only right payloads >= 5, which null-extends keys 0..4's failed
  // matches and keys 5..9's missing matches alike, in left order.
  auto left = MakeKeyed(10, 10, "lv");
  auto right = MakeKeyed(10, 5, "rv");  // rv r has key r % 5
  auto residual = sql::MakeBinary(BinaryOp::kGe, CombinedRef(3),
                                  sql::MakeIntLit(5));
  Rng rng(1);
  auto joined = HashJoin(*left, *right, std::vector<int>{0}, std::vector<int>{0}, sql::JoinType::kLeft,
                         residual.get(), &rng);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  const Table& out = *joined.value();
  // Every left key 0..4 matches exactly one right row (payload 5..9); keys
  // 5..9 are null-extended. One output row per left row, in order.
  ASSERT_EQ(out.num_rows(), 10u);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(out.Get(r, 1).AsInt(), static_cast<int64_t>(r)) << "row " << r;
    if (r < 5) {
      EXPECT_EQ(out.Get(r, 3).AsInt(), static_cast<int64_t>(r + 5));
    } else {
      EXPECT_TRUE(out.Get(r, 3).is_null()) << "row " << r;
      EXPECT_TRUE(out.Get(r, 2).is_null());  // right key null-extended too
    }
  }
}

TEST(HashJoinTest, LeftJoinAllUnmatchedStreams) {
  // No key overlap at all, with a residual: the whole left side goes through
  // the no-candidate marker path.
  auto left = MakeKeyed(100, 100, "lv");
  auto right = std::make_shared<Table>();
  Column k(TypeId::kInt64), rv(TypeId::kInt64);
  k.AppendInt(1'000'000);
  rv.AppendInt(7);
  right->AddColumn("k", std::move(k));
  right->AddColumn("rv", std::move(rv));
  auto residual = sql::MakeBinary(BinaryOp::kGt, CombinedRef(3),
                                  sql::MakeIntLit(0));
  Rng rng(1);
  auto joined = HashJoin(*left, *right, std::vector<int>{0}, std::vector<int>{0}, sql::JoinType::kLeft,
                         residual.get(), &rng);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined.value()->num_rows(), 100u);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(joined.value()->Get(r, 1).AsInt(), static_cast<int64_t>(r));
    EXPECT_TRUE(joined.value()->Get(r, 3).is_null());
  }
}

TEST(CrossJoinTest, ResidualAcrossChunkBoundaries) {
  // 300 x 300 = 90,000 pairs crosses the 65,536-pair chunk once.
  auto left = MakeKeyed(300, 300, "lv");
  auto right = MakeKeyed(300, 300, "rv");
  auto residual = sql::MakeBinary(BinaryOp::kLt, CombinedRef(1),
                                  CombinedRef(3));  // lv < rv
  Rng rng(1);
  auto joined = CrossJoin(*left, *right, residual.get(), &rng);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Pairs with lv < rv: 300*299/2.
  EXPECT_EQ(joined.value()->num_rows(), 300u * 299u / 2u);
  // Pair order is left-major: first surviving pair is (0, 1).
  EXPECT_EQ(joined.value()->Get(0, 1).AsInt(), 0);
  EXPECT_EQ(joined.value()->Get(0, 3).AsInt(), 1);
}

}  // namespace
}  // namespace vdb::engine
