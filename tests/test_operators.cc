// Join operator tests targeting the vectorized materialization paths:
// chunked residual evaluation across chunk boundaries (hot keys), left-join
// null-extension ordering, the sentinel-segment gather — and the flat
// radix-partitioned join table: forced 64-bit hash collisions, NaN / signed
// zero key canonicalization, empty/all-NULL build sides, mixed-type keys,
// morsel-boundary null extension, and a differential fuzz loop against the
// old string-map join kept here as the reference, all bit-identical at
// 1/2/8 threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "engine/aggregates.h"
#include "engine/group_ids.h"
#include "engine/join_table.h"
#include "engine/operators.h"
#include "sql/ast.h"

namespace vdb::engine {
namespace {

using sql::BinaryOp;
using sql::Expr;

TablePtr MakeKeyed(size_t rows, int64_t key_mod, const char* payload_name) {
  auto t = std::make_shared<Table>();
  Column key(TypeId::kInt64), payload(TypeId::kInt64);
  for (size_t r = 0; r < rows; ++r) {
    key.AppendInt(static_cast<int64_t>(r) % key_mod);
    payload.AppendInt(static_cast<int64_t>(r));
  }
  t->AddColumn("k", std::move(key));
  t->AddColumn(payload_name, std::move(payload));
  return t;
}

/// Bound column ref into the combined (left ++ right) schema.
Expr::Ptr CombinedRef(int ordinal) {
  auto e = sql::MakeColumnRef("", "c" + std::to_string(ordinal));
  e->bound_column = ordinal;
  return e;
}

TEST(HashJoinTest, ResidualAcrossChunkBoundaries) {
  // One hot key: 150,000 candidate pairs — crosses the 65,536-pair chunk at
  // least twice. Residual keeps the pairs where the right payload is even.
  auto left = MakeKeyed(3, 1, "lv");        // 3 rows, all key 0
  auto right = MakeKeyed(50'000, 1, "rv");  // 50k rows, all key 0
  // Combined schema: k, lv, k, rv -> rv is ordinal 3.
  auto residual = sql::MakeBinary(
      BinaryOp::kEq,
      sql::MakeBinary(BinaryOp::kMod, CombinedRef(3), sql::MakeIntLit(2)),
      sql::MakeIntLit(0));
  auto joined = HashJoin(*left, *right, std::vector<int>{0}, std::vector<int>{0}, sql::JoinType::kInner,
                         residual.get(), /*rand_seed=*/1);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // 3 left rows x 25,000 even right payloads.
  EXPECT_EQ(joined.value()->num_rows(), 75'000u);
  // Output is left-row-major with right rows in build order: first block is
  // left row 0 against rv = 0, 2, 4, ...
  const Table& out = *joined.value();
  EXPECT_EQ(out.Get(0, 1).AsInt(), 0);   // lv of first pair
  EXPECT_EQ(out.Get(0, 3).AsInt(), 0);   // rv
  EXPECT_EQ(out.Get(1, 3).AsInt(), 2);
  EXPECT_EQ(out.Get(25'000, 1).AsInt(), 1);  // second left row's block
  EXPECT_EQ(out.Get(25'000, 3).AsInt(), 0);
}

TEST(HashJoinTest, LeftJoinResidualNullExtensionOrder) {
  // Left keys 0..9; right has keys 0..4 with two rows each. The residual
  // keeps only right payloads >= 5, which null-extends keys 0..4's failed
  // matches and keys 5..9's missing matches alike, in left order.
  auto left = MakeKeyed(10, 10, "lv");
  auto right = MakeKeyed(10, 5, "rv");  // rv r has key r % 5
  auto residual = sql::MakeBinary(BinaryOp::kGe, CombinedRef(3),
                                  sql::MakeIntLit(5));
  auto joined = HashJoin(*left, *right, std::vector<int>{0}, std::vector<int>{0}, sql::JoinType::kLeft,
                         residual.get(), /*rand_seed=*/1);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  const Table& out = *joined.value();
  // Every left key 0..4 matches exactly one right row (payload 5..9); keys
  // 5..9 are null-extended. One output row per left row, in order.
  ASSERT_EQ(out.num_rows(), 10u);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(out.Get(r, 1).AsInt(), static_cast<int64_t>(r)) << "row " << r;
    if (r < 5) {
      EXPECT_EQ(out.Get(r, 3).AsInt(), static_cast<int64_t>(r + 5));
    } else {
      EXPECT_TRUE(out.Get(r, 3).is_null()) << "row " << r;
      EXPECT_TRUE(out.Get(r, 2).is_null());  // right key null-extended too
    }
  }
}

TEST(HashJoinTest, LeftJoinAllUnmatchedStreams) {
  // No key overlap at all, with a residual: the whole left side goes through
  // the no-candidate marker path.
  auto left = MakeKeyed(100, 100, "lv");
  auto right = std::make_shared<Table>();
  Column k(TypeId::kInt64), rv(TypeId::kInt64);
  k.AppendInt(1'000'000);
  rv.AppendInt(7);
  right->AddColumn("k", std::move(k));
  right->AddColumn("rv", std::move(rv));
  auto residual = sql::MakeBinary(BinaryOp::kGt, CombinedRef(3),
                                  sql::MakeIntLit(0));
  auto joined = HashJoin(*left, *right, std::vector<int>{0}, std::vector<int>{0}, sql::JoinType::kLeft,
                         residual.get(), /*rand_seed=*/1);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined.value()->num_rows(), 100u);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(joined.value()->Get(r, 1).AsInt(), static_cast<int64_t>(r));
    EXPECT_TRUE(joined.value()->Get(r, 3).is_null());
  }
}

TEST(CrossJoinTest, ResidualAcrossChunkBoundaries) {
  // 300 x 300 = 90,000 pairs crosses the 65,536-pair chunk once.
  auto left = MakeKeyed(300, 300, "lv");
  auto right = MakeKeyed(300, 300, "rv");
  auto residual = sql::MakeBinary(BinaryOp::kLt, CombinedRef(1),
                                  CombinedRef(3));  // lv < rv
  auto joined = CrossJoin(*left, *right, residual.get(), /*rand_seed=*/1);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Pairs with lv < rv: 300*299/2.
  EXPECT_EQ(joined.value()->num_rows(), 300u * 299u / 2u);
  // Pair order is left-major: first surviving pair is (0, 1).
  EXPECT_EQ(joined.value()->Get(0, 1).AsInt(), 0);
  EXPECT_EQ(joined.value()->Get(0, 3).AsInt(), 1);
}

// ---------------------------------------------------------------------------
// Flat radix-partitioned join table vs. the old string-map reference.
// ---------------------------------------------------------------------------

/// The pre-rewrite per-row string-key hash join, kept as the semantic
/// reference for the differential tests: ValueGroupKey concatenation on both
/// sides, serial std::unordered_map build, left-row-major probe, duplicate
/// right rows in build (ascending) order, per-row Value materialization.
/// `residual` (may be null) mirrors the ON-residual contract: candidates are
/// filtered before left-join null extension.
TablePtr StringMapJoinReference(
    const Table& left, const Table& right, const std::vector<int>& lkeys,
    const std::vector<int>& rkeys, bool left_join,
    const std::function<bool(size_t, size_t)>& residual = nullptr) {
  auto key_of = [](const Table& t, size_t row, const std::vector<int>& keys,
                   bool* has_null) {
    std::string key;
    *has_null = false;
    for (int k : keys) {
      Value v = t.column(static_cast<size_t>(k)).Get(row);
      if (v.is_null()) *has_null = true;
      key += ValueGroupKey(v);
      key.push_back('\x1f');
    }
    return key;
  };
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    bool has_null = false;
    std::string key = key_of(right, r, rkeys, &has_null);
    if (!has_null) build[key].push_back(static_cast<uint32_t>(r));
  }
  auto out = std::make_shared<Table>();
  for (size_t c = 0; c < left.num_columns(); ++c) {
    out->AddColumn(left.column_name(c), left.column(c).type());
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    out->AddColumn(right.column_name(c), right.column(c).type());
  }
  auto emit = [&](size_t lr, int64_t rr) {
    std::vector<Value> row;
    for (size_t c = 0; c < left.num_columns(); ++c) row.push_back(left.Get(lr, c));
    for (size_t c = 0; c < right.num_columns(); ++c) {
      row.push_back(rr < 0 ? Value::Null()
                           : right.Get(static_cast<size_t>(rr), c));
    }
    out->AppendRow(row);
  };
  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    bool has_null = false;
    std::string key = key_of(left, lr, lkeys, &has_null);
    bool matched = false;
    if (!has_null) {
      auto it = build.find(key);
      if (it != build.end()) {
        for (uint32_t rr : it->second) {
          if (residual != nullptr && !residual(lr, rr)) continue;
          emit(lr, rr);
          matched = true;
        }
      }
    }
    if (!matched && left_join) emit(lr, -1);
  }
  return out;
}

/// Bit-identical table equality: schema (names, column types), row count,
/// null masks, and values — doubles by bit pattern, so NaN payload cells
/// compare equal and a signed-zero flip would be caught.
void ExpectTablesBitIdentical(const Table& ref, const Table& got,
                              const std::string& what) {
  ASSERT_EQ(ref.num_columns(), got.num_columns()) << what;
  ASSERT_EQ(ref.num_rows(), got.num_rows()) << what;
  for (size_t c = 0; c < ref.num_columns(); ++c) {
    EXPECT_EQ(ref.column_name(c), got.column_name(c)) << what;
    ASSERT_EQ(ref.column(c).type(), got.column(c).type())
        << what << " column " << c;
  }
  for (size_t c = 0; c < ref.num_columns(); ++c) {
    const Column& a = ref.column(c);
    const Column& b = got.column(c);
    for (size_t r = 0; r < ref.num_rows(); ++r) {
      ASSERT_EQ(a.IsNull(r), b.IsNull(r))
          << what << " cell (" << r << "," << c << ")";
      if (a.IsNull(r)) continue;
      switch (a.type()) {
        case TypeId::kNull:
          break;
        case TypeId::kBool:
        case TypeId::kInt64:
          ASSERT_EQ(a.GetInt(r), b.GetInt(r))
              << what << " cell (" << r << "," << c << ")";
          break;
        case TypeId::kDouble: {
          const double x = a.GetDouble(r), y = b.GetDouble(r);
          ASSERT_EQ(std::memcmp(&x, &y, sizeof(x)), 0)
              << what << " cell (" << r << "," << c << "): " << x << " vs "
              << y;
          break;
        }
        case TypeId::kString:
          ASSERT_EQ(a.GetString(r), b.GetString(r))
              << what << " cell (" << r << "," << c << ")";
          break;
      }
    }
  }
}

/// Runs the new join at 1, 2 and 8 threads and asserts every run is
/// bit-identical (values AND row order) to the string-map reference.
void CheckJoinMatchesReference(const Table& left, const Table& right,
                               const std::vector<int>& lkeys,
                               const std::vector<int>& rkeys,
                               sql::JoinType type, const std::string& what,
                               const sql::Expr* residual = nullptr,
                               const std::function<bool(size_t, size_t)>&
                                   residual_ref = nullptr) {
  TablePtr ref = StringMapJoinReference(left, right, lkeys, rkeys,
                                        type == sql::JoinType::kLeft,
                                        residual_ref);
  for (int threads : {1, 2, 8}) {
    auto got = HashJoin(left, right, lkeys, rkeys, type, residual,
                        /*rand_seed=*/1, threads);
    ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
    ExpectTablesBitIdentical(*ref, *got.value(),
                             what + " @" + std::to_string(threads));
  }
}

/// Shrinks morsels so small tables still exercise the radix-partitioned
/// parallel build and multi-morsel probes; restores the hash mask in case a
/// collision test failed mid-way.
class JoinRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMorselRowsForTest(64); }
  void TearDown() override {
    SetMorselRowsForTest(0);
    SetJoinKeyHashMaskForTest(~0ull);
  }
};

TablePtr MakeDoubleKeyed(const std::vector<Value>& keys, const char* payload) {
  auto t = std::make_shared<Table>();
  Column k(TypeId::kDouble), p(TypeId::kInt64);
  for (size_t r = 0; r < keys.size(); ++r) {
    k.Append(keys[r]);
    p.AppendInt(static_cast<int64_t>(r));
  }
  t->AddColumn("k", std::move(k));
  t->AddColumn(payload, std::move(p));
  return t;
}

TEST_F(JoinRewriteTest, NanAndSignedZeroKeys) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto left = MakeDoubleKeyed({Value::Double(nan), Value::Double(0.0),
                               Value::Double(-0.0), Value::Double(1.5),
                               Value::Null(), Value::Double(2.0)},
                              "lv");
  auto right = MakeDoubleKeyed({Value::Double(-nan), Value::Double(-0.0),
                                Value::Double(1.5), Value::Null(),
                                Value::Double(3.0)},
                               "rv");
  // NaN joins NaN (either sign), 0.0 and -0.0 join each other, NULL never
  // joins — one equivalence contract across the serial build, the radix
  // build, and the string-map reference.
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kInner,
                            "nan/zero inner");
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kLeft,
                            "nan/zero left");
  auto got = HashJoin(*left, *right, std::vector<int>{0}, std::vector<int>{0},
                      sql::JoinType::kInner, nullptr, /*rand_seed=*/1, 8);
  ASSERT_TRUE(got.ok());
  // Pairs: NaN->-nan, 0.0->-0.0, -0.0->-0.0, 1.5->1.5.
  EXPECT_EQ(got.value()->num_rows(), 4u);
}

TEST_F(JoinRewriteTest, ForcedHashCollisions) {
  // Squeeze every join-key hash to 3 bits: ~12 distinct keys per hash. The
  // flat table must resolve the collisions through representative-row key
  // verification, on both the build (insert) and probe (find) sides.
  SetJoinKeyHashMaskForTest(0x7);
  auto left = MakeKeyed(200, 100, "lv");
  auto right = MakeKeyed(100, 50, "rv");
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kInner,
                            "collision inner");
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kLeft,
                            "collision left");
}

TEST_F(JoinRewriteTest, ForcedCollisionsOnMultiColumnStringKeys) {
  SetJoinKeyHashMaskForTest(0x3);
  auto make = [](size_t rows, int mod, const char* payload) {
    auto t = std::make_shared<Table>();
    Column k1(TypeId::kInt64), k2(TypeId::kString), p(TypeId::kInt64);
    for (size_t r = 0; r < rows; ++r) {
      k1.AppendInt(static_cast<int64_t>(r) % mod);
      k2.AppendString("s" + std::to_string(r % 7));
      p.AppendInt(static_cast<int64_t>(r));
    }
    t->AddColumn("k1", std::move(k1));
    t->AddColumn("k2", std::move(k2));
    t->AddColumn(payload, std::move(p));
    return t;
  };
  auto left = make(150, 20, "lv");
  auto right = make(90, 15, "rv");
  CheckJoinMatchesReference(*left, *right, {0, 1}, {0, 1},
                            sql::JoinType::kInner, "multi-key collisions");
}

// ---------------------------------------------------------------------------
// Join Bloom pre-probe. The blocked Bloom filter may only ever REJECT probe
// rows that cannot match — no false negatives — so pair lists with the
// filter forced on and forced off must be identical, element for element, at
// any thread count, any hit rate, and under forced hash collisions.
// ---------------------------------------------------------------------------

TablePtr MakeKeyedRange(size_t rows, int64_t base, const char* payload_name,
                        int null_every = 0) {
  auto t = std::make_shared<Table>();
  Column key(TypeId::kInt64), payload(TypeId::kInt64);
  for (size_t r = 0; r < rows; ++r) {
    if (null_every > 0 && r % static_cast<size_t>(null_every) == 0) {
      key.Append(Value::Null());
    } else {
      key.AppendInt(base + static_cast<int64_t>(r));
    }
    payload.AppendInt(static_cast<int64_t>(r));
  }
  t->AddColumn("k", std::move(key));
  t->AddColumn(payload_name, std::move(payload));
  return t;
}

class JoinBloomTest : public ::testing::Test {
 protected:
  static constexpr size_t kAnyCount = static_cast<size_t>(-1);

  void SetUp() override { SetMorselRowsForTest(64); }
  void TearDown() override {
    SetMorselRowsForTest(0);
    SetJoinKeyHashMaskForTest(~0ull);
    SetJoinBloomForTest(-1);
  }

  static Result<JoinPairView> RunPairs(const TablePtr& left,
                                       const TablePtr& right, int bloom_mode,
                                       int threads) {
    SetJoinBloomForTest(bloom_mode);
    auto view = HashJoinPairs(left, right, {&left->column(0)},
                              {&right->column(0)}, sql::JoinType::kInner,
                              /*residual=*/nullptr, /*rand_seed=*/1, threads);
    SetJoinBloomForTest(-1);
    return view;
  }

  /// Runs the join with the filter forced off (reference) and forced on at
  /// 1/2/8 threads; the pair lists must match exactly. `expect_pairs`
  /// additionally pins the join cardinality (kAnyCount skips that check).
  static void CheckBloomDifferential(const TablePtr& left,
                                     const TablePtr& right,
                                     size_t expect_pairs, const char* what) {
    for (int threads : {1, 2, 8}) {
      auto ref = RunPairs(left, right, /*bloom_mode=*/0, threads);
      auto fil = RunPairs(left, right, /*bloom_mode=*/1, threads);
      ASSERT_TRUE(ref.ok()) << what << ": " << ref.status().ToString();
      ASSERT_TRUE(fil.ok()) << what << ": " << fil.status().ToString();
      if (expect_pairs != kAnyCount) {
        EXPECT_EQ(ref.value().num_pairs(), expect_pairs)
            << what << " @" << threads;
      }
      ASSERT_EQ(fil.value().lrows(), ref.value().lrows())
          << what << " @" << threads << ": filter dropped/reordered pairs";
      ASSERT_EQ(fil.value().rrows(), ref.value().rrows())
          << what << " @" << threads << ": filter dropped/reordered pairs";
    }
  }
};

TEST_F(JoinBloomTest, ZeroHitProbe) {
  // Disjoint key domains: every probe row is Bloom-rejectable (modulo false
  // positives) and the join is empty with or without the filter.
  auto left = MakeKeyedRange(500, 100000, "lv");
  auto right = MakeKeyedRange(400, 0, "rv");
  CheckBloomDifferential(left, right, /*expect_pairs=*/0, "zero-hit");
}

TEST_F(JoinBloomTest, FullHitProbe) {
  // Every probe key is present: the filter rejects nothing and must not
  // drop or reorder a single pair. (The production auto policy bails out of
  // this case adaptively; forcing the filter on via SetJoinBloomForTest(1)
  // disables the bail-out and exercises the worst case end to end.)
  auto left = MakeKeyedRange(300, 0, "lv");
  auto right = MakeKeyedRange(300, 0, "rv");
  CheckBloomDifferential(left, right, /*expect_pairs=*/300, "full-hit");
}

TEST_F(JoinBloomTest, MixedHitWithDuplicatesAndNullKeys) {
  // Duplicate build keys (chains), NULL probe and build keys (never join,
  // checked before the Bloom test), and a partial-overlap key range.
  auto left = MakeKeyedRange(240, 0, "lv", /*null_every=*/7);
  auto right = MakeKeyed(160, 40, "rv");  // keys 0..39, four dups each
  CheckBloomDifferential(left, right, kAnyCount, "mixed-hit");
}

TEST_F(JoinBloomTest, ForcedCollisionMaskDegeneratesFilterSafely) {
  // 3-bit hashes collapse the Bloom addressing: every key owns word 0 and
  // test bit 0, so the filter passes everything — maximum false-positive
  // rate, but still zero false negatives. Pair lists must stay identical
  // while the collision chains resolve through key verification.
  SetJoinKeyHashMaskForTest(0x7);
  auto left = MakeKeyed(200, 37, "lv");
  auto right = MakeKeyed(150, 25, "rv");
  CheckBloomDifferential(left, right, kAnyCount, "collision");
}

TEST_F(JoinRewriteTest, EmptyBuildSide) {
  auto left = MakeKeyed(100, 10, "lv");
  auto right = std::make_shared<Table>();
  right->AddColumn("k", TypeId::kInt64);
  right->AddColumn("rv", TypeId::kInt64);
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kInner,
                            "empty build inner");
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kLeft,
                            "empty build left");
}

TEST_F(JoinRewriteTest, EmptyProbeSide) {
  auto left = std::make_shared<Table>();
  left->AddColumn("k", TypeId::kInt64);
  left->AddColumn("lv", TypeId::kInt64);
  auto right = MakeKeyed(100, 10, "rv");
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kInner,
                            "empty probe inner");
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kLeft,
                            "empty probe left");
}

TEST_F(JoinRewriteTest, AllNullKeyColumns) {
  auto make = [](size_t rows, const char* payload) {
    auto t = std::make_shared<Table>();
    Column k(TypeId::kInt64), p(TypeId::kInt64);
    for (size_t r = 0; r < rows; ++r) {
      k.AppendNull();
      p.AppendInt(static_cast<int64_t>(r));
    }
    t->AddColumn("k", std::move(k));
    t->AddColumn(payload, std::move(p));
    return t;
  };
  auto left = make(130, "lv");
  auto right = make(70, "rv");
  // NULL keys never match: inner joins are empty, left joins null-extend
  // every probe row.
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kInner,
                            "all-null inner");
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kLeft,
                            "all-null left");
}

TEST_F(JoinRewriteTest, MixedTypeKeys) {
  // Left keys: (Int64, String); right keys: (Double, String). 5 must join
  // 5.0 (ValueGroupKey folds integral doubles into the integer class) while
  // 2.5 joins nothing on the int side.
  auto left = std::make_shared<Table>();
  {
    Column k1(TypeId::kInt64), k2(TypeId::kString), p(TypeId::kInt64);
    for (size_t r = 0; r < 120; ++r) {
      if (r % 11 == 0) {
        k1.AppendNull();
      } else {
        k1.AppendInt(static_cast<int64_t>(r % 9));
      }
      k2.AppendString(r % 3 == 0 ? "a" : "b");
      p.AppendInt(static_cast<int64_t>(r));
    }
    left->AddColumn("k1", std::move(k1));
    left->AddColumn("k2", std::move(k2));
    left->AddColumn("lv", std::move(p));
  }
  auto right = std::make_shared<Table>();
  {
    Column k1(TypeId::kDouble), k2(TypeId::kString), p(TypeId::kInt64);
    const double vals[] = {5.0, 2.5, 7.0, 0.0, -0.0, 3.0};
    for (size_t r = 0; r < 90; ++r) {
      if (r % 13 == 0) {
        k1.AppendNull();
      } else {
        k1.AppendDouble(vals[r % 6]);
      }
      k2.AppendString(r % 2 == 0 ? "a" : "b");
      p.AppendInt(static_cast<int64_t>(r));
    }
    right->AddColumn("k1", std::move(k1));
    right->AddColumn("k2", std::move(k2));
    right->AddColumn("rv", std::move(p));
  }
  CheckJoinMatchesReference(*left, *right, {0, 1}, {0, 1},
                            sql::JoinType::kInner, "mixed-type inner");
  CheckJoinMatchesReference(*left, *right, {0, 1}, {0, 1},
                            sql::JoinType::kLeft, "mixed-type left");
}

TEST_F(JoinRewriteTest, LeftJoinNullExtensionAtMorselBoundaries) {
  // Morsel size is 64 (fixture): 300 left rows span 5 morsels with a short
  // last one. Odd keys never match, so null extensions land on both sides
  // of every morsel boundary (63/64, 127/128, ...), including the first and
  // last row of the probe.
  auto left = MakeKeyed(300, 300, "lv");
  auto right = std::make_shared<Table>();
  Column k(TypeId::kInt64), rv(TypeId::kInt64);
  for (int64_t r = 0; r < 300; r += 2) {
    k.AppendInt(r);
    rv.AppendInt(r * 10);
  }
  right->AddColumn("k", std::move(k));
  right->AddColumn("rv", std::move(rv));
  CheckJoinMatchesReference(*left, *right, {0}, {0}, sql::JoinType::kLeft,
                            "morsel-boundary left join");
}

TEST_F(JoinRewriteTest, DifferentialFuzzVsStringMapReference) {
  Rng rng(20260729);
  for (int iter = 0; iter < 30; ++iter) {
    // Shared key domains per key column; each side independently picks an
    // Int64 or Double representation for numeric domains, so cross-type
    // joins are generated too.
    const size_t num_keys = 1 + rng.NextBounded(2);
    std::vector<bool> domain_is_string(num_keys);
    for (size_t k = 0; k < num_keys; ++k) {
      domain_is_string[k] = rng.NextBounded(4) == 0;
    }
    auto make_side = [&](size_t rows, const char* payload) {
      auto t = std::make_shared<Table>();
      for (size_t k = 0; k < num_keys; ++k) {
        const std::string name = "k" + std::to_string(k);
        if (domain_is_string[k]) {
          Column c(TypeId::kString);
          for (size_t r = 0; r < rows; ++r) {
            if (rng.NextBounded(7) == 0) {
              c.AppendNull();
            } else {
              c.AppendString("s" + std::to_string(rng.NextBounded(5)));
            }
          }
          t->AddColumn(name, std::move(c));
        } else if (rng.NextBounded(2) == 0) {
          Column c(TypeId::kInt64);
          for (size_t r = 0; r < rows; ++r) {
            if (rng.NextBounded(7) == 0) {
              c.AppendNull();
            } else {
              c.AppendInt(rng.NextInRange(-4, 4));
            }
          }
          t->AddColumn(name, std::move(c));
        } else {
          Column c(TypeId::kDouble);
          for (size_t r = 0; r < rows; ++r) {
            const uint64_t pick = rng.NextBounded(16);
            if (pick == 0) {
              c.AppendNull();
            } else if (pick == 1) {
              c.AppendDouble(std::numeric_limits<double>::quiet_NaN());
            } else if (pick == 2) {
              c.AppendDouble(-0.0);
            } else if (pick == 3) {
              c.AppendDouble(0.5);
            } else {
              c.AppendDouble(static_cast<double>(rng.NextInRange(-4, 4)));
            }
          }
          t->AddColumn(name, std::move(c));
        }
      }
      Column p(TypeId::kInt64);
      for (size_t r = 0; r < rows; ++r) p.AppendInt(static_cast<int64_t>(r));
      t->AddColumn(payload, std::move(p));
      return t;
    };
    auto left = make_side(rng.NextBounded(300), "lv");
    auto right = make_side(rng.NextBounded(200), "rv");
    std::vector<int> keys(num_keys);
    for (size_t k = 0; k < num_keys; ++k) keys[k] = static_cast<int>(k);
    const auto type = rng.NextBounded(2) == 0 ? sql::JoinType::kInner
                                              : sql::JoinType::kLeft;
    CheckJoinMatchesReference(*left, *right, keys, keys, type,
                              "fuzz iter " + std::to_string(iter));
  }
}

TEST_F(JoinRewriteTest, DifferentialFuzzWithResidual) {
  // Residual over the payload columns: (lv + rv) % 2 == 0, mirrored exactly
  // in the reference. Exercises the streaming chunked-residual path (with
  // its reused scratch) against the reference's pair-at-a-time filtering,
  // including left-join "all candidates failed" null extension.
  Rng rng(42);
  for (int iter = 0; iter < 10; ++iter) {
    auto left =
        MakeKeyed(static_cast<size_t>(50 + rng.NextBounded(200)),
                  static_cast<int64_t>(1 + rng.NextBounded(20)), "lv");
    auto right =
        MakeKeyed(static_cast<size_t>(30 + rng.NextBounded(150)),
                  static_cast<int64_t>(1 + rng.NextBounded(12)), "rv");
    // Combined schema: k, lv, k, rv -> lv is ordinal 1, rv is ordinal 3.
    auto residual = sql::MakeBinary(
        BinaryOp::kEq,
        sql::MakeBinary(BinaryOp::kMod,
                        sql::MakeBinary(BinaryOp::kAdd, CombinedRef(1),
                                        CombinedRef(3)),
                        sql::MakeIntLit(2)),
        sql::MakeIntLit(0));
    auto residual_ref = [&](size_t lr, size_t rr) {
      const int64_t lv = left->Get(lr, 1).AsInt();
      const int64_t rv = right->Get(rr, 1).AsInt();
      return (lv + rv) % 2 == 0;
    };
    const auto type = rng.NextBounded(2) == 0 ? sql::JoinType::kInner
                                              : sql::JoinType::kLeft;
    CheckJoinMatchesReference(*left, *right, {0}, {0}, type,
                              "residual fuzz iter " + std::to_string(iter),
                              residual.get(), residual_ref);
  }
}

}  // namespace
}  // namespace vdb::engine
