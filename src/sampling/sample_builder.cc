#include "sampling/sample_builder.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "engine/vector_eval.h"
#include "sampling/staircase.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace vdb::sampling {

namespace {

std::string JoinList(const std::vector<std::string>& items,
                     const std::string& sep, const std::string& prefix = "") {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += prefix + items[i];
  }
  return out;
}

/// Appends the constant verdict_prob column to a materialized sample. The
/// membership scan itself is engine::FilterGatherParallel — one fused
/// morsel-parallel filter+gather pass over the base table (each worker
/// gathers its own morsel's survivors while they are cache-hot; no
/// full-table selection vector, no second scan of the base columns). The
/// probability attaches afterwards because hashed samples derive it from the
/// realized survivor count.
void AttachProbColumn(engine::Table* sample, double prob) {
  engine::Column prob_col = engine::Column::FromData(
      TypeId::kDouble, {}, std::vector<double>(sample->num_rows(), prob), {},
      {});
  sample->AddColumn("verdict_prob", std::move(prob_col));
}

}  // namespace

Result<int64_t> SampleBuilder::CountRows(const std::string& table) {
  auto rs = conn_->Execute("select count(*) as c from " + table);
  if (!rs.ok()) return rs.status();
  return rs.value().Get(0, 0).AsInt();
}

Result<std::vector<std::string>> SampleBuilder::BaseColumns(
    const std::string& table) {
  // The driver-level analogue of JDBC DatabaseMetaData: schema introspection
  // through the engine's catalog interface.
  auto t = conn_->database()->catalog().GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  std::vector<std::string> cols;
  for (size_t i = 0; i < t->num_columns(); ++i) {
    cols.push_back(t->column_name(i));
  }
  return cols;
}

std::string SampleBuilder::SampleName(
    const std::string& base, SampleType type,
    const std::vector<std::string>& cols) const {
  std::string name = base + "_vdb_" + SampleTypeName(type);
  for (const auto& c : cols) name += "_" + c;
  return name;
}

Result<SampleInfo> SampleBuilder::CreateUniformSample(const std::string& base,
                                                      double tau) {
  auto n = CountRows(base);
  if (!n.ok()) return n.status();
  auto cols = BaseColumns(base);
  if (!cols.ok()) return cols.status();

  SampleInfo info;
  info.base_table = base;
  info.type = SampleType::kUniform;
  info.ratio = tau;
  info.base_rows = static_cast<uint64_t>(n.value());
  info.sample_table = SampleName(base, SampleType::kUniform, {});

  // In-process engines take a vectorized direct scan: a Bernoulli selection
  // vector over the base table, bulk-gathered into the sample. Other
  // dialects go through SQL so their syntax rules still apply. The Bernoulli
  // draws are row-addressed (one query seed, CounterRandom per physical
  // row), so the membership scan runs morsel-parallel and still yields the
  // identical sample at every thread count; the gather is column-parallel.
  if (conn_->dialect().kind == driver::EngineKind::kGeneric) {
    auto* db = conn_->database();
    auto t = db->catalog().GetTable(base);
    if (!t) return Status::NotFound("no such table: " + base);
    auto pred = sql::MakeBinary(sql::BinaryOp::kLt,
                                sql::MakeFunction("rand", {}),
                                sql::MakeDoubleLit(tau));
    pred->args[0]->rand_site = 1;
    auto sample = engine::FilterGatherParallel(*pred, *t, db->NewQuerySeed(),
                                               db->num_threads(),
                                               conn_->exec_guard());
    if (!sample.ok()) return sample.status();
    db->AddRowsScanned(t->num_rows());
    info.sample_rows = sample.value()->num_rows();
    AttachProbColumn(sample.value().get(), tau);
    VDB_RETURN_IF_ERROR(db->catalog().CreateTable(
        info.sample_table, std::move(sample).ValueOrDie()));
    VDB_RETURN_IF_ERROR(catalog_->Register(info));
    return info;
  }

  // Dialect-safe Bernoulli selection: rand() is computed in a derived table
  // so engines that forbid rand() in WHERE (e.g. Impala) accept the query.
  std::ostringstream sql;
  sql << "create table " << info.sample_table << " as select "
      << JoinList(cols.value(), ", ") << ", " << tau
      << " as verdict_prob from (select *, rand() as __vdb_rand from " << base
      << ") as __vdb_b where __vdb_rand < " << tau;
  auto created = conn_->Execute(sql.str());
  if (!created.ok()) return created.status();

  auto ns = CountRows(info.sample_table);
  if (!ns.ok()) return ns.status();
  info.sample_rows = static_cast<uint64_t>(ns.value());
  VDB_RETURN_IF_ERROR(catalog_->Register(info));
  return info;
}

Result<SampleInfo> SampleBuilder::CreateHashedSample(const std::string& base,
                                                     const std::string& column,
                                                     double tau) {
  auto n = CountRows(base);
  if (!n.ok()) return n.status();
  auto cols = BaseColumns(base);
  if (!cols.ok()) return cols.status();

  SampleInfo info;
  info.base_table = base;
  info.type = SampleType::kHashed;
  info.columns = {column};
  info.base_rows = static_cast<uint64_t>(n.value());
  info.sample_table = SampleName(base, SampleType::kHashed, {column});

  // In-process engines run the membership predicate verdict_hash(C) < tau
  // through the batch evaluator directly over the base table — one pass, no
  // temporary table. The hash predicate is deterministic (no RNG), so both
  // the scan and the gather run morsel-parallel.
  if (conn_->dialect().kind == driver::EngineKind::kGeneric) {
    auto* db = conn_->database();
    auto t = db->catalog().GetTable(base);
    if (!t) return Status::NotFound("no such table: " + base);
    int col_idx = t->ColumnIndex(column);
    if (col_idx < 0) {
      return Status::NotFound("no such column: " + base + "." + column);
    }
    auto colref = sql::MakeColumnRef("", column);
    colref->bound_column = col_idx;
    std::vector<sql::Expr::Ptr> args;
    args.push_back(std::move(colref));
    auto pred =
        sql::MakeBinary(sql::BinaryOp::kLt,
                        sql::MakeFunction("verdict_hash", std::move(args)),
                        sql::MakeDoubleLit(tau));
    // The hash predicate is fully deterministic (no rand-family node), so
    // no query seed is drawn — drawing one would needlessly shift the
    // seeded per-statement seed sequence of everything that follows.
    auto sample = engine::FilterGatherParallel(*pred, *t, /*rand_seed=*/0,
                                               db->num_threads(),
                                               conn_->exec_guard());
    if (!sample.ok()) return sample.status();
    db->AddRowsScanned(t->num_rows());
    info.sample_rows = sample.value()->num_rows();
    // Hashed samples record the realized ratio |Ts|/|T| (paper §3.1).
    info.ratio = n.value() == 0 ? 0.0
                                : static_cast<double>(info.sample_rows) /
                                      static_cast<double>(n.value());
    AttachProbColumn(sample.value().get(), info.ratio);
    VDB_RETURN_IF_ERROR(db->catalog().CreateTable(
        info.sample_table, std::move(sample).ValueOrDie()));
    VDB_RETURN_IF_ERROR(catalog_->Register(info));
    return info;
  }

  // Pass 1: select the universe (no randomness; pure hash predicate).
  std::string tmp = info.sample_table + "_tmp";
  VDB_RETURN_IF_ERROR(conn_->Execute("drop table if exists " + tmp).status());
  {
    std::ostringstream sql;
    sql << "create table " << tmp << " as select * from " << base
        << " where verdict_hash(" << column << ") < " << tau;
    auto r = conn_->Execute(sql.str());
    if (!r.ok()) return r.status();
  }
  auto ns = CountRows(tmp);
  if (!ns.ok()) return ns.status();
  info.sample_rows = static_cast<uint64_t>(ns.value());
  // Hashed samples record the realized ratio |Ts|/|T| (paper §3.1).
  info.ratio = n.value() == 0
                   ? 0.0
                   : static_cast<double>(ns.value()) /
                         static_cast<double>(n.value());

  // Pass 2: attach the probability column.
  {
    std::ostringstream sql;
    sql << "create table " << info.sample_table << " as select *, "
        << info.ratio << " as verdict_prob from " << tmp;
    auto r = conn_->Execute(sql.str());
    if (!r.ok()) return r.status();
  }
  VDB_RETURN_IF_ERROR(conn_->Execute("drop table " + tmp).status());
  VDB_RETURN_IF_ERROR(catalog_->Register(info));
  return info;
}

Result<SampleInfo> SampleBuilder::CreateStratifiedSample(
    const std::string& base, const std::vector<std::string>& columns,
    double tau) {
  if (columns.empty()) {
    return Status::InvalidArgument("stratified sample needs a column set");
  }
  auto n = CountRows(base);
  if (!n.ok()) return n.status();
  auto cols = BaseColumns(base);
  if (!cols.ok()) return cols.status();

  SampleInfo info;
  info.base_table = base;
  info.type = SampleType::kStratified;
  info.columns = columns;
  info.base_rows = static_cast<uint64_t>(n.value());
  info.sample_table = SampleName(base, SampleType::kStratified, columns);

  // Pass 1: per-stratum sizes.
  std::string sizes = info.sample_table + "_sizes";
  VDB_RETURN_IF_ERROR(
      conn_->Execute("drop table if exists " + sizes).status());
  {
    std::ostringstream sql;
    sql << "create table " << sizes << " as select "
        << JoinList(columns, ", ")
        << ", count(*) as strata_size from " << base << " group by "
        << JoinList(columns, ", ");
    auto r = conn_->Execute(sql.str());
    if (!r.ok()) return r.status();
  }
  auto d = CountRows(sizes);
  if (!d.ok()) return d.status();
  auto maxrs =
      conn_->Execute("select max(strata_size) as m from " + sizes);
  if (!maxrs.ok()) return maxrs.status();
  int64_t max_stratum = maxrs.value().Get(0, 0).AsInt();

  // Equation 1: per-stratum minimum m = |T| * tau / d.
  int64_t m = std::max<int64_t>(
      1, static_cast<int64_t>(
             static_cast<double>(n.value()) * tau /
             static_cast<double>(std::max<int64_t>(1, d.value()))));
  auto steps = BuildStaircase(max_stratum, m, options_.delta,
                              options_.staircase_growth);
  auto case_expr = StaircaseCaseExpr(steps, "strata_size");
  std::string case_sql = sql::PrintExpr(*case_expr);

  // Pass 2: Bernoulli-sample each stratum with the staircase probability.
  // The join key and rand() live in a derived table for dialect safety.
  std::string on_clause;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) on_clause += " and ";
    on_clause += "__vdb_b." + columns[i] + " = __vdb_t." + columns[i];
  }
  {
    std::ostringstream sql;
    sql << "create table " << info.sample_table << " as select "
        << JoinList(cols.value(), ", ") << ", verdict_prob from (select "
        << JoinList(cols.value(), ", ", "__vdb_b.") << ", " << case_sql
        << " as verdict_prob, rand() as __vdb_rand from " << base
        << " as __vdb_b inner join " << sizes << " as __vdb_t on " << on_clause
        << ") as __vdb_j where __vdb_rand < verdict_prob";
    auto r = conn_->Execute(sql.str());
    if (!r.ok()) return r.status();
  }
  VDB_RETURN_IF_ERROR(conn_->Execute("drop table " + sizes).status());

  auto ns = CountRows(info.sample_table);
  if (!ns.ok()) return ns.status();
  info.sample_rows = static_cast<uint64_t>(ns.value());
  info.ratio = n.value() == 0
                   ? 0.0
                   : static_cast<double>(ns.value()) /
                         static_cast<double>(n.value());
  VDB_RETURN_IF_ERROR(catalog_->Register(info));
  return info;
}

Result<std::vector<SampleInfo>> SampleBuilder::CreateDefaultSamples(
    const std::string& base, double tau_override) {
  auto n = CountRows(base);
  if (!n.ok()) return n.status();
  if (n.value() == 0) {
    return Status::InvalidArgument("cannot sample an empty table");
  }
  double tau = tau_override > 0
                   ? tau_override
                   : std::min(1.0, static_cast<double>(
                                       options_.default_target_rows) /
                                       static_cast<double>(n.value()));
  auto cols = BaseColumns(base);
  if (!cols.ok()) return cols.status();

  std::vector<SampleInfo> created;
  auto uni = CreateUniformSample(base, tau);
  if (!uni.ok()) return uni.status();
  created.push_back(uni.value());

  // Column cardinalities (Appendix F), via SQL.
  struct ColCard {
    std::string name;
    int64_t card;
  };
  std::vector<ColCard> cards;
  for (const auto& c : cols.value()) {
    auto rs = conn_->Execute("select count(distinct " + c + ") as c from " +
                             base);
    if (!rs.ok()) return rs.status();
    cards.push_back(ColCard{c, rs.value().Get(0, 0).AsInt()});
  }
  const double threshold =
      options_.cardinality_threshold * static_cast<double>(n.value());

  // Hashed samples on the highest-cardinality columns above the threshold.
  std::sort(cards.begin(), cards.end(),
            [](const ColCard& a, const ColCard& b) { return a.card > b.card; });
  int made = 0;
  for (const auto& cc : cards) {
    if (made >= options_.max_column_samples) break;
    if (static_cast<double>(cc.card) <= threshold) break;
    auto s = CreateHashedSample(base, cc.name, tau);
    if (!s.ok()) return s.status();
    created.push_back(s.value());
    ++made;
  }
  // Stratified samples on the lowest-cardinality columns below the threshold.
  std::sort(cards.begin(), cards.end(),
            [](const ColCard& a, const ColCard& b) { return a.card < b.card; });
  made = 0;
  for (const auto& cc : cards) {
    if (made >= options_.max_column_samples) break;
    if (static_cast<double>(cc.card) >= threshold) break;
    auto s = CreateStratifiedSample(base, {cc.name}, tau);
    if (!s.ok()) return s.status();
    created.push_back(s.value());
    ++made;
  }
  return created;
}

Status SampleBuilder::AppendData(const std::string& base,
                                 const std::string& staging_table) {
  auto samples = catalog_->SamplesFor(base);
  if (!samples.ok()) return samples.status();
  auto cols = BaseColumns(base);
  if (!cols.ok()) return cols.status();

  // Append to the base table first.
  VDB_RETURN_IF_ERROR(
      conn_->Execute("insert into " + base + " select * from " +
                     staging_table)
          .status());
  auto n = CountRows(base);
  if (!n.ok()) return n.status();

  for (const auto& s : samples.value()) {
    std::ostringstream sql;
    switch (s.type) {
      case SampleType::kUniform:
        sql << "insert into " << s.sample_table << " select "
            << JoinList(cols.value(), ", ") << ", " << s.ratio
            << " as verdict_prob from (select *, rand() as __vdb_rand from "
            << staging_table << ") as __vdb_b where __vdb_rand < " << s.ratio;
        break;
      case SampleType::kHashed:
        // Universe membership is deterministic: same hash cut-off.
        sql << "insert into " << s.sample_table << " select "
            << JoinList(cols.value(), ", ") << ", " << s.ratio
            << " as verdict_prob from " << staging_table
            << " where verdict_hash(" << s.columns[0] << ") < " << s.ratio;
        break;
      case SampleType::kStratified: {
        // Reuse the stored per-stratum probabilities (Appendix D); strata
        // unseen so far keep every tuple (probability 1).
        std::string on_clause;
        for (size_t i = 0; i < s.columns.size(); ++i) {
          if (i) on_clause += " and ";
          on_clause +=
              "__vdb_b." + s.columns[i] + " = __vdb_p." + s.columns[i];
        }
        sql << "insert into " << s.sample_table << " select "
            << JoinList(cols.value(), ", ")
            << ", verdict_prob from (select "
            << JoinList(cols.value(), ", ", "__vdb_b.")
            << ", coalesce(__vdb_p.verdict_prob, 1.0) as verdict_prob,"
            << " rand() as __vdb_rand from " << staging_table
            << " as __vdb_b left join (select " << JoinList(s.columns, ", ")
            << ", max(verdict_prob) as verdict_prob from " << s.sample_table
            << " group by " << JoinList(s.columns, ", ") << ") as __vdb_p on "
            << on_clause
            << ") as __vdb_j where __vdb_rand < verdict_prob";
        break;
      }
      case SampleType::kIrregular:
        continue;  // never materialized
    }
    auto r = conn_->Execute(sql.str());
    if (!r.ok()) return r.status();
    auto ns = CountRows(s.sample_table);
    if (!ns.ok()) return ns.status();
    VDB_RETURN_IF_ERROR(catalog_->UpdateCounts(
        s.sample_table, static_cast<uint64_t>(ns.value()),
        static_cast<uint64_t>(n.value())));
  }
  return Status::Ok();
}

}  // namespace vdb::sampling
