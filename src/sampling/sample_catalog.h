// Sample metadata catalog, persisted inside the underlying database.
//
// The paper stores sample metadata "in a specific schema inside the database
// catalog" (§2.3); here it lives in a regular table named
// `verdictdb_metadata`, and all reads/writes go through SQL on the
// connection — the middleware keeps no authoritative state of its own.

#ifndef VDB_SAMPLING_SAMPLE_CATALOG_H_
#define VDB_SAMPLING_SAMPLE_CATALOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "driver/dialect.h"
#include "sampling/sample_types.h"

namespace vdb::sampling {

inline constexpr const char* kMetadataTable = "verdictdb_metadata";

class SampleCatalog {
 public:
  explicit SampleCatalog(driver::Connection* conn) : conn_(conn) {}

  /// Creates the metadata table if missing.
  Status EnsureMetadataTable();

  /// Records a sample (insert into verdictdb_metadata ...).
  Status Register(const SampleInfo& info);

  /// Removes the record and drops the sample table.
  Status Unregister(const std::string& sample_table);

  /// All samples of `base_table` (case-insensitive); empty base returns all.
  Result<std::vector<SampleInfo>> SamplesFor(const std::string& base_table);

  /// Updates sample_rows/base_rows after an append.
  Status UpdateCounts(const std::string& sample_table, uint64_t sample_rows,
                      uint64_t base_rows);

 private:
  driver::Connection* conn_;
};

}  // namespace vdb::sampling

#endif  // VDB_SAMPLING_SAMPLE_CATALOG_H_
