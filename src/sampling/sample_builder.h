// Sample preparation (paper §3): builds uniform, hashed and stratified
// sample tables by issuing only standard SQL statements to the underlying
// database, and maintains them under data appends (Appendix D). The default
// per-table policy of Appendix F is implemented by CreateDefaultSamples.

#ifndef VDB_SAMPLING_SAMPLE_BUILDER_H_
#define VDB_SAMPLING_SAMPLE_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "driver/dialect.h"
#include "sampling/sample_catalog.h"
#include "sampling/sample_types.h"

namespace vdb::sampling {

struct BuilderOptions {
  /// Failure probability delta for the per-stratum minimum-count guarantee
  /// (Lemma 1). Paper default: 0.001.
  double delta = 0.001;
  /// Geometric growth factor between staircase steps.
  double staircase_growth = 1.2;
  /// Appendix F: target sample size in rows; tau = target_rows / |T|.
  int64_t default_target_rows = 10'000'000;
  /// Appendix F: max hashed/stratified samples per table.
  int max_column_samples = 10;
  /// Appendix F: cardinality threshold as a fraction of |T|.
  double cardinality_threshold = 0.01;
};

class SampleBuilder {
 public:
  SampleBuilder(driver::Connection* conn, SampleCatalog* catalog,
                BuilderOptions options = {})
      : conn_(conn), catalog_(catalog), options_(options) {}

  /// Bernoulli sample with probability tau; inclusion probability stored per
  /// tuple is exactly tau.
  Result<SampleInfo> CreateUniformSample(const std::string& base, double tau);

  /// Universe sample: keeps tuples whose hashed column value falls below
  /// tau; inclusion probability stored is the realized ratio |Ts|/|T|.
  Result<SampleInfo> CreateHashedSample(const std::string& base,
                                        const std::string& column, double tau);

  /// Probabilistic stratified sample on `columns` (§3.2): two passes, both
  /// plain SELECTs; per-stratum minimum m = |T| * tau / d with the staircase
  /// guarantee of Lemma 1.
  Result<SampleInfo> CreateStratifiedSample(
      const std::string& base, const std::vector<std::string>& columns,
      double tau);

  /// Appendix F default policy: a uniform sample plus hashed samples on
  /// high-cardinality columns and stratified samples on low-cardinality
  /// columns. `tau_override` > 0 replaces the 10M-row rule (useful at
  /// laptop scale).
  Result<std::vector<SampleInfo>> CreateDefaultSamples(
      const std::string& base, double tau_override = -1.0);

  /// Appendix D: appends `staging_table`'s rows to the base table and
  /// incrementally maintains every registered sample of it, reusing stored
  /// per-stratum probabilities (new strata keep all tuples).
  Status AppendData(const std::string& base, const std::string& staging_table);

  SampleCatalog* catalog() { return catalog_; }

 private:
  Result<int64_t> CountRows(const std::string& table);
  Result<std::vector<std::string>> BaseColumns(const std::string& table);
  std::string SampleName(const std::string& base, SampleType type,
                         const std::vector<std::string>& cols) const;

  driver::Connection* conn_;
  SampleCatalog* catalog_;
  BuilderOptions options_;
};

}  // namespace vdb::sampling

#endif  // VDB_SAMPLING_SAMPLE_BUILDER_H_
