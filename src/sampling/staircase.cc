#include "sampling/staircase.h"

#include <algorithm>
#include <cmath>

#include "common/stats_math.h"

namespace vdb::sampling {

namespace {

/// g(p; n) from Lemma 1: the (1-delta)-quantile lower bound on the number of
/// sampled tuples under the normal approximation of Binomial(n, p):
///   g(p; n) = sqrt(2 n p (1-p)) * erfcinv(2 (1-delta)) + n p.
/// Note erfcinv(2(1-delta)) is negative for delta < 0.5, so g(p) < n p.
double LowerBoundCount(double p, int64_t n, double delta) {
  const double z = vdb::ErfcInv(2.0 * (1.0 - delta));
  const double nn = static_cast<double>(n);
  return std::sqrt(2.0 * nn * p * (1.0 - p)) * z + nn * p;
}

}  // namespace

double RequiredSamplingProb(int64_t n, int64_t m, double delta) {
  if (m <= 0) return 0.0;
  if (m >= n) return 1.0;
  // g(p; n) is monotone increasing in p over (0, 1) for the regimes we use
  // (n p >> 1); binary-search the smallest p with g(p) >= m.
  double lo = static_cast<double>(m) / static_cast<double>(n);  // g(lo) < m
  double hi = 1.0;
  if (LowerBoundCount(hi, n, delta) < static_cast<double>(m)) return 1.0;
  for (int iter = 0; iter < 80; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (LowerBoundCount(mid, n, delta) >= static_cast<double>(m)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return std::min(1.0, hi);
}

std::vector<StaircaseStep> BuildStaircase(int64_t max_stratum, int64_t m,
                                          double delta, double growth) {
  std::vector<StaircaseStep> steps;
  // Strata with at most m tuples keep everything.
  steps.push_back(StaircaseStep{m, 1.0});
  double bound = static_cast<double>(m);
  while (static_cast<int64_t>(bound) < max_stratum) {
    double next = std::max(bound * growth, bound + 1.0);
    int64_t lower = static_cast<int64_t>(bound) + 1;  // bucket (bound, next]
    int64_t upper = std::min(static_cast<int64_t>(next), max_stratum);
    // f_m decreases in n: evaluating at the bucket's lower end upper-bounds
    // the exact per-stratum probability, so the >= m guarantee holds for the
    // whole bucket.
    steps.push_back(StaircaseStep{upper, RequiredSamplingProb(lower, m, delta)});
    bound = next;
  }
  return steps;
}

sql::Expr::Ptr StaircaseCaseExpr(const std::vector<StaircaseStep>& steps,
                                 const std::string& size_column) {
  auto e = std::make_unique<sql::Expr>(sql::ExprKind::kCase);
  for (size_t i = 0; i + 1 < steps.size(); ++i) {
    e->case_whens.push_back(sql::MakeBinary(
        sql::BinaryOp::kLe, sql::MakeColumnRef("", size_column),
        sql::MakeIntLit(steps[i].max_size)));
    e->case_thens.push_back(sql::MakeDoubleLit(steps[i].prob));
  }
  // Last step becomes the ELSE branch (covers everything larger).
  e->case_else = sql::MakeDoubleLit(steps.empty() ? 1.0 : steps.back().prob);
  return e;
}

}  // namespace vdb::sampling
