// Probabilistic stratified sampling support (paper §3.2, Lemma 1).
//
// VerdictDB guarantees at least m tuples per stratum with probability 1-δ
// by Bernoulli-sampling each stratum with probability f_m(n) — computable
// from the normal approximation of the binomial — and approximates the
// per-stratum probability with a *staircase* CASE expression so the whole
// sampling step is a single standard SELECT.

#ifndef VDB_SAMPLING_STAIRCASE_H_
#define VDB_SAMPLING_STAIRCASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace vdb::sampling {

/// Lemma 1: the smallest Bernoulli probability p such that sampling n tuples
/// independently with probability p yields at least m tuples with
/// probability >= 1 - delta. Returns 1.0 when no p < 1 suffices.
double RequiredSamplingProb(int64_t n, int64_t m, double delta);

/// One step of the staircase: strata with size <= `max_size` use `prob`.
struct StaircaseStep {
  int64_t max_size;
  double prob;
};

/// Builds a staircase upper-bounding f_m(n) over stratum sizes in
/// [1, max_stratum]: bucket boundaries grow geometrically by `growth`, and
/// each bucket uses f_m evaluated at its *lower* end (f_m decreases in n, so
/// this upper-bounds the exact probability, preserving the guarantee).
std::vector<StaircaseStep> BuildStaircase(int64_t max_stratum, int64_t m,
                                          double delta, double growth = 1.2);

/// Renders the staircase as a searched-CASE AST over `size_column`, e.g.
/// `case when strata_size <= 100 then 1.0 when ... else 0.01 end`.
sql::Expr::Ptr StaircaseCaseExpr(const std::vector<StaircaseStep>& steps,
                                 const std::string& size_column);

}  // namespace vdb::sampling

#endif  // VDB_SAMPLING_STAIRCASE_H_
