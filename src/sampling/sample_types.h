// Sample-table taxonomy (paper §3.1) and metadata records.

#ifndef VDB_SAMPLING_SAMPLE_TYPES_H_
#define VDB_SAMPLING_SAMPLE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vdb::sampling {

/// The column added to every sample table holding each tuple's inclusion
/// probability (the paper records sampling probabilities as an extra column).
inline constexpr const char* kProbColumn = "verdict_prob";

/// Sample types, §3.1. Irregular samples arise only at query time from
/// joining other samples and are never materialized.
enum class SampleType { kUniform, kHashed, kStratified, kIrregular };

const char* SampleTypeName(SampleType t);
SampleType SampleTypeFromName(const std::string& name);

/// Metadata for one materialized sample table, persisted in the underlying
/// database's `verdictdb_metadata` table (§2.3).
struct SampleInfo {
  std::string sample_table;
  std::string base_table;
  SampleType type = SampleType::kUniform;
  /// Sampling parameter tau for uniform/hashed; I/O ratio estimate for
  /// stratified (sample_rows / base_rows).
  double ratio = 0.0;
  /// Column set C for hashed/stratified samples (empty for uniform).
  std::vector<std::string> columns;
  uint64_t base_rows = 0;
  uint64_t sample_rows = 0;
};

}  // namespace vdb::sampling

#endif  // VDB_SAMPLING_SAMPLE_TYPES_H_
