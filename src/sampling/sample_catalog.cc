#include "sampling/sample_catalog.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace vdb::sampling {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string JoinColumns(const std::vector<std::string>& cols) {
  std::string out;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i) out += ",";
    out += cols[i];
  }
  return out;
}

std::vector<std::string> SplitColumns(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

const char* SampleTypeName(SampleType t) {
  switch (t) {
    case SampleType::kUniform: return "uniform";
    case SampleType::kHashed: return "hashed";
    case SampleType::kStratified: return "stratified";
    case SampleType::kIrregular: return "irregular";
  }
  return "?";
}

SampleType SampleTypeFromName(const std::string& name) {
  if (name == "hashed") return SampleType::kHashed;
  if (name == "stratified") return SampleType::kStratified;
  if (name == "irregular") return SampleType::kIrregular;
  return SampleType::kUniform;
}

Status SampleCatalog::EnsureMetadataTable() {
  if (conn_->database()->catalog().HasTable(kMetadataTable)) {
    return Status::Ok();
  }
  std::string ddl = std::string("create table ") + kMetadataTable +
                    " as select '' as sample_table, '' as base_table,"
                    " '' as sample_type, 0.0 as ratio, '' as column_set,"
                    " 0 as base_rows, 0 as sample_rows where false";
  auto r = conn_->Execute(ddl);
  if (!r.ok()) return r.status();
  return Status::Ok();
}

Status SampleCatalog::Register(const SampleInfo& info) {
  VDB_RETURN_IF_ERROR(EnsureMetadataTable());
  std::ostringstream sql;
  sql << "insert into " << kMetadataTable << " select '"
      << ToLower(info.sample_table) << "' as sample_table, '"
      << ToLower(info.base_table) << "' as base_table, '"
      << SampleTypeName(info.type) << "' as sample_type, " << info.ratio
      << " as ratio, '" << ToLower(JoinColumns(info.columns))
      << "' as column_set, " << info.base_rows << " as base_rows, "
      << info.sample_rows << " as sample_rows";
  auto r = conn_->Execute(sql.str());
  if (!r.ok()) return r.status();
  return Status::Ok();
}

Status SampleCatalog::Unregister(const std::string& sample_table) {
  VDB_RETURN_IF_ERROR(EnsureMetadataTable());
  // SQL-only deletion: rebuild the metadata table without the row.
  std::string tmp = std::string(kMetadataTable) + "_tmp";
  std::string key = ToLower(sample_table);
  VDB_RETURN_IF_ERROR(
      conn_->Execute("drop table if exists " + tmp).status());
  auto r = conn_->Execute("create table " + tmp + " as select * from " +
                          kMetadataTable + " where sample_table <> '" + key +
                          "'");
  if (!r.ok()) return r.status();
  VDB_RETURN_IF_ERROR(
      conn_->Execute(std::string("drop table ") + kMetadataTable).status());
  VDB_RETURN_IF_ERROR(conn_->Execute("create table " + std::string(kMetadataTable) +
                                     " as select * from " + tmp)
                          .status());
  VDB_RETURN_IF_ERROR(conn_->Execute("drop table " + tmp).status());
  VDB_RETURN_IF_ERROR(
      conn_->Execute("drop table if exists " + key).status());
  return Status::Ok();
}

Result<std::vector<SampleInfo>> SampleCatalog::SamplesFor(
    const std::string& base_table) {
  VDB_RETURN_IF_ERROR(EnsureMetadataTable());
  std::string sql = std::string("select * from ") + kMetadataTable;
  if (!base_table.empty()) {
    sql += " where base_table = '" + ToLower(base_table) + "'";
  }
  auto rs = conn_->Execute(sql);
  if (!rs.ok()) return rs.status();
  const auto& r = rs.value();
  int c_sample = r.ColumnIndex("sample_table");
  int c_base = r.ColumnIndex("base_table");
  int c_type = r.ColumnIndex("sample_type");
  int c_ratio = r.ColumnIndex("ratio");
  int c_cols = r.ColumnIndex("column_set");
  int c_brows = r.ColumnIndex("base_rows");
  int c_srows = r.ColumnIndex("sample_rows");
  auto cell = [&r](size_t row, int col) {
    return r.Get(row, static_cast<size_t>(col));
  };
  std::vector<SampleInfo> out;
  for (size_t row = 0; row < r.NumRows(); ++row) {
    SampleInfo info;
    info.sample_table = cell(row, c_sample).AsString();
    info.base_table = cell(row, c_base).AsString();
    info.type = SampleTypeFromName(cell(row, c_type).AsString());
    info.ratio = cell(row, c_ratio).AsDouble();
    info.columns = SplitColumns(cell(row, c_cols).AsString());
    info.base_rows = static_cast<uint64_t>(cell(row, c_brows).AsInt());
    info.sample_rows = static_cast<uint64_t>(cell(row, c_srows).AsInt());
    out.push_back(std::move(info));
  }
  return out;
}

Status SampleCatalog::UpdateCounts(const std::string& sample_table,
                                   uint64_t sample_rows, uint64_t base_rows) {
  VDB_RETURN_IF_ERROR(EnsureMetadataTable());
  std::string tmp = std::string(kMetadataTable) + "_tmp";
  std::string key = ToLower(sample_table);
  VDB_RETURN_IF_ERROR(conn_->Execute("drop table if exists " + tmp).status());
  std::ostringstream sql;
  sql << "create table " << tmp
      << " as select sample_table, base_table, sample_type, ratio, column_set,"
      << " case when sample_table = '" << key << "' then " << base_rows
      << " else base_rows end as base_rows,"
      << " case when sample_table = '" << key << "' then " << sample_rows
      << " else sample_rows end as sample_rows from " << kMetadataTable;
  auto r = conn_->Execute(sql.str());
  if (!r.ok()) return r.status();
  VDB_RETURN_IF_ERROR(
      conn_->Execute(std::string("drop table ") + kMetadataTable).status());
  VDB_RETURN_IF_ERROR(conn_->Execute("create table " + std::string(kMetadataTable) +
                                     " as select * from " + tmp)
                          .status());
  VDB_RETURN_IF_ERROR(conn_->Execute("drop table " + tmp).status());
  return Status::Ok();
}

}  // namespace vdb::sampling
