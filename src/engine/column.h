// Typed column storage for in-memory tables.

#ifndef VDB_ENGINE_COLUMN_H_
#define VDB_ENGINE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace vdb::engine {

/// A single column: a typed vector plus an optional null mask. A column whose
/// type is kNull has seen no non-null values yet; its type is promoted on the
/// first non-null append (and Int64 promotes to Double if a Double arrives).
class Column {
 public:
  Column() : type_(TypeId::kNull) {}
  explicit Column(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const { return size_; }

  /// Appends a value, coercing numerics and promoting the column type as
  /// needed. String<->numeric mismatches store NULL.
  void Append(const Value& v);

  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  bool IsNull(size_t row) const {
    return type_ == TypeId::kNull || (!nulls_.empty() && nulls_[row] != 0);
  }

  /// Materializes the cell as a Value.
  Value Get(size_t row) const;

  /// Raw accessors (valid only for the matching type and non-null cells).
  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  const std::string& GetString(size_t row) const { return strings_[row]; }

  /// Raw storage pointers for the vectorized kernels (valid for the matching
  /// type; NULL slots hold zero/empty placeholders).
  const int64_t* IntData() const { return ints_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  /// nullptr when the column has no NULL mask (no nulls appended).
  const uint8_t* NullData() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  /// Numeric view: int/bool/double as double; NULL yields 0.
  double GetNumeric(size_t row) const;

  void Reserve(size_t n);

  /// Removes all rows, keeping the column type.
  void Clear();

  /// Appends rows [start, start + count) of `src`. Matching types take a
  /// bulk-copy path; mismatches fall back to the per-value Append semantics.
  void AppendRange(const Column& src, size_t start, size_t count);

  /// Appends src rows `rows[0..count)` (a selection vector) in order.
  void AppendSelected(const Column& src, const uint32_t* rows, size_t count);

  /// Adopts prebuilt typed storage (the batch evaluator's output path). The
  /// vector matching `type` carries the data; `nulls` is either empty (no
  /// nulls) or one flag per row. Unused vectors must be empty.
  static Column FromData(TypeId type, std::vector<int64_t> ints,
                         std::vector<double> doubles,
                         std::vector<std::string> strings,
                         std::vector<uint8_t> nulls);

  /// Concatenates per-morsel column chunks type-stably: chunks of one type
  /// (kNull chunks absorb into any type) bulk-append; mixed chunk types fall
  /// back to per-value Append, reproducing exactly the coercions the
  /// whole-batch evaluator applies at its output boundary — so a chunked
  /// (morsel-parallel) evaluation concatenates to the same column, bit for
  /// bit, as one whole-batch evaluation.
  static Column ConcatChunks(std::vector<Column> chunks);

 private:
  void PromoteToDouble();
  void EnsureNullMask();

  TypeId type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;          // kInt64 / kBool
  std::vector<double> doubles_;        // kDouble
  std::vector<std::string> strings_;   // kString
  std::vector<uint8_t> nulls_;         // lazily allocated; empty = no nulls
};

}  // namespace vdb::engine

#endif  // VDB_ENGINE_COLUMN_H_
