// Table catalog for one in-process database.

#ifndef VDB_ENGINE_CATALOG_H_
#define VDB_ENGINE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"

namespace vdb::engine {

/// Name -> table map with case-insensitive names.
class Catalog {
 public:
  Status CreateTable(const std::string& name, TablePtr table);
  Status DropTable(const std::string& name, bool if_exists);
  /// nullptr if absent.
  TablePtr GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

 private:
  std::map<std::string, TablePtr> tables_;  // vdb-lint: allow(string-keyed-map) DDL-time table catalog, never touched per row
};

}  // namespace vdb::engine

#endif  // VDB_ENGINE_CATALOG_H_
