// Flat open-addressing group tables for hash aggregation, DISTINCT, and
// window partitioning — the aggregation-side sibling of engine/join_table.
// One power-of-two slot array (64-bit mixed key hash + group id per slot),
// linear probing, hash-first match with representative-row verification, no
// per-row or per-group string keys anywhere. The same table backs three
// clients:
//
//   - AssignGroupIds / AssignGroupIdsSelected: dense group-id assignment
//     over column key tuples (kernel-backed hashing via HashGroupColumn);
//   - GroupMergeTable: the morsel-partial merge, keyed on group-key Value
//     tuples whose hashes the producing morsels already computed;
//   - the flat DISTINCT value set in aggregates.cc.

#ifndef VDB_ENGINE_AGG_TABLE_H_
#define VDB_ENGINE_AGG_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/governor.h"
#include "common/status.h"
#include "common/value.h"
#include "engine/column.h"
#include "engine/group_ids.h"

namespace vdb::engine {

/// Test hook: ANDs every group hash (AssignGroupIds, the merge table, the
/// flat DISTINCT set) with `mask` after mixing, forcing distinct keys into
/// shared 64-bit hashes so collision handling is exercised
/// deterministically. ~0ull (the default) disables. The group-side sibling
/// of SetJoinKeyHashMaskForTest; plain global, set outside parallel regions.
void SetGroupHashMaskForTest(uint64_t mask);
uint64_t GroupHashMaskForTest();

/// Hashes multi-column group keys for rows [0, num_rows) column-at-a-time
/// (kernel-dispatched typed lanes via HashGroupColumn) into *hashes,
/// applying the test mask. With no columns every row hashes to the bare
/// seed (the implicit aggregate group).
void HashGroupKeys(const std::vector<const Column*>& cols, size_t num_rows,
                   std::vector<uint64_t>* hashes);

/// A group-key column with a row base: batch position k reads col row
/// base + k. The flat sink's zero-copy direct-column path points straight at
/// a table column with the morsel's start row as base instead of slicing it
/// into a fresh Column; evaluated expression columns use base 0.
struct KeyCol {
  const Column* col = nullptr;
  size_t base = 0;
};

/// Power-of-two open-addressing group table, reusable as scratch. Callers
/// must Reset before first use. FindOrInsert assigns dense group ids in
/// first-occurrence order and records each group's hash, which doubles as
/// the rehash source on growth.
class GroupTable {
 public:
  static constexpr uint32_t kNoGroup = 0xFFFFFFFFu;

  ~GroupTable() { GuardRelease(guard_, charged_bytes_); }

  /// Attaches a per-statement guard: slot-array growth is budget-charged
  /// through TryReserve (site "agg_group_grow") and a trip latches into
  /// guard_status() instead of growing — inserts then stop assigning fresh
  /// groups (returning gid 0) so the table never fills to the point of an
  /// unterminated probe. Callers MUST check guard_status() after an insert
  /// batch and discard results on failure. Set before Reset.
  void set_guard(const ExecGuard* guard) { guard_ = guard; }

  /// First guard/budget failure observed by Reset or growth; kOk otherwise.
  const Status& guard_status() const { return guard_status_; }

  /// Clears to zero groups, sized so `expected` groups fit without growth.
  void Reset(size_t expected);

  size_t num_groups() const { return group_hashes_.size(); }
  uint64_t group_hash(uint32_t gid) const { return group_hashes_[gid]; }

  /// Moves the per-group hash array out (insertion order); Reset before
  /// reusing the table afterwards.
  std::vector<uint64_t> TakeGroupHashes() { return std::move(group_hashes_); }

  /// Finds the group with hash `h` for which eq(gid) holds, or inserts a
  /// new one (returning the next dense id). eq runs only on same-hash
  /// candidates — the representative-row verification — so it stays off the
  /// hot path unless hashes collide.
  template <typename Eq>
  uint32_t FindOrInsert(uint64_t h, Eq&& eq, bool* inserted) {
    if ((group_hashes_.size() + 1) * 4 > slots_.size() * 3) {
      Grow();
      if (!guard_status_.ok()) {
        // Budget trip: stop assigning fresh groups (the caller checks
        // guard_status() and discards). gid 0 keeps downstream indexing
        // in-bounds until the unwind.
        *inserted = false;
        return 0;
      }
    }
    const uint64_t mask = slots_.size() - 1;
    size_t i = h & mask;
    while (slots_[i].gid != kNoGroup) {
      if (slots_[i].hash == h && eq(slots_[i].gid)) {
        *inserted = false;
        return slots_[i].gid;
      }
      i = (i + 1) & mask;
    }
    const uint32_t gid = static_cast<uint32_t>(group_hashes_.size());  // vdb-lint: allow(naked-size-narrowing) group count <= row count, guarded by CheckGroupIdCapacity
    slots_[i] = Slot{h, gid};
    group_hashes_.push_back(h);
    *inserted = true;
    return gid;
  }

  /// Batched FindOrInsert over n keys: gids[k] = group id of hashes[k], with
  /// eq(k, gid) the same-hash verification and on_insert(k, gid) called once
  /// per fresh group BEFORE eq can see it (callers append the representative
  /// there). Functionally identical to n FindOrInsert calls; the batch form
  /// hoists the slot pointer, probe mask, and growth threshold out of the
  /// per-row path — the dense group-id assignment loop is the hottest loop
  /// in hash aggregation.
  template <typename Eq, typename OnInsert>
  void FindOrInsertBatch(const uint64_t* hashes, size_t n, Eq&& eq,
                         OnInsert&& on_insert, uint32_t* gids) {
    Slot* slots = slots_.data();
    uint64_t mask = slots_.size() - 1;
    size_t grow_at = slots_.size() / 4 * 3;
    for (size_t k = 0; k < n; ++k) {
      const uint64_t h = hashes[k];
      size_t i = h & mask;
      uint32_t gid;
      for (;;) {
        const Slot s = slots[i];
        if (s.gid == kNoGroup) {
          gid = static_cast<uint32_t>(group_hashes_.size());  // vdb-lint: allow(naked-size-narrowing) group count <= row count, guarded by CheckGroupIdCapacity
          slots[i] = Slot{h, gid};
          group_hashes_.push_back(h);
          on_insert(k, gid);
          if (group_hashes_.size() >= grow_at) {
            Grow();
            if (!guard_status_.ok()) {
              // Budget trip mid-batch: zero-fill the remaining gids (kept
              // in-bounds for the caller's unwind path) and stop probing a
              // table that can no longer grow.
              for (size_t j = k; j < n; ++j) gids[j] = 0;
              return;
            }
            slots = slots_.data();
            mask = slots_.size() - 1;
            grow_at = slots_.size() / 4 * 3;
          }
          break;
        }
        if (s.hash == h && eq(k, s.gid)) {
          gid = s.gid;
          break;
        }
        i = (i + 1) & mask;
      }
      gids[k] = gid;
    }
  }

 private:
  /// One probe touches one cache line: hash and gid live in the same
  /// 16-byte slot rather than split across two arrays.
  struct Slot {
    uint64_t hash;
    uint32_t gid;
  };

  void Grow();

  std::vector<Slot> slots_;
  std::vector<uint64_t> group_hashes_;  // per-gid, insertion order
  const ExecGuard* guard_ = nullptr;    // polled/charged on growth
  uint64_t charged_bytes_ = 0;          // released on destruction / Reset
  Status guard_status_ = Status::Ok();  // first growth failure, latched
};

/// Hashed merge table over group-key Value tuples: replaces the string-keyed
/// merge map in the morsel-partial aggregation merge. Keys arrive with their
/// hash already computed by the producing morsel's AssignGroupIds
/// (GroupAssignment::group_hash — a pure function of the key values, so
/// every morsel agrees); equality is GroupValuesEqual per component.
class GroupMergeTable {
 public:
  void Reset(size_t arity, size_t expected);

  /// Guard plumbing: forwards to the underlying GroupTable (growth charged
  /// at site "agg_group_grow", failures latched). Set before Reset; check
  /// guard_status() after each merge batch.
  void set_guard(const ExecGuard* guard) { table_.set_guard(guard); }
  const Status& guard_status() const { return table_.guard_status(); }

  size_t num_groups() const { return table_.num_groups(); }

  /// Key tuple of group `gid` (`arity` values, insertion order).
  const Value* group_keys(uint32_t gid) const {
    return keys_.data() + static_cast<size_t>(gid) * arity_;
  }

  /// Finds or inserts the group whose key tuple is keys[0..arity); `h` must
  /// be that tuple's group hash.
  uint32_t FindOrInsert(uint64_t h, const Value* keys, bool* inserted);

 private:
  GroupTable table_;
  std::vector<Value> keys_;
  size_t arity_ = 0;
};

/// Assigns dense group ids over the selected rows rows[0..n) (ascending) of
/// `cols`, each of dense size num_dense — the bitmap GROUP BY path, which
/// dense-evaluates key expressions over a survivor span and groups only the
/// set-bit rows without expanding the mask. out->gid_of_row[i] is the gid of
/// rows[i]; rep_row holds dense row indices. Hashing runs over the full
/// dense span (the typed kernels want contiguous lanes); only selected rows
/// are probed, so gids, first-occurrence order, and group hashes match what
/// AssignGroupIds would produce on the compacted rows.
void AssignGroupIdsSelected(const std::vector<const Column*>& cols,
                            size_t num_dense, const uint32_t* rows, size_t n,
                            GroupAssignment* out);

/// Based-column forms of AssignGroupIds / AssignGroupIdsSelected: batch
/// position k of key column c reads c.col row c.base + k. Row indices in
/// the result (gid_of_row positions, rep_row, `rows`) stay batch-relative.
/// Output is identical to first slicing each column to [base, base + n) and
/// calling the unbased form.
GroupAssignment AssignGroupIdsBased(const std::vector<KeyCol>& cols,
                                    size_t num_rows);
void AssignGroupIdsSelectedBased(const std::vector<KeyCol>& cols,
                                 size_t num_dense, const uint32_t* rows,
                                 size_t n, GroupAssignment* out);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_AGG_TABLE_H_
