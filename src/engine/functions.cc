#include "engine/functions.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "engine/aggregates.h"

namespace vdb::engine {

bool IsAggregateFunction(const std::string& name) {
  if (AggregateRegistry::Global().Has(name)) return true;
  static const char* kAggs[] = {
      "count", "sum",    "avg",       "min",          "max",
      "var",   "var_samp", "variance", "stddev",      "stddev_samp",
      "quantile", "median", "approx_median", "percentile", "ndv",
      "approx_distinct", "approx_count_distinct",
  };
  for (const char* a : kAggs) {
    if (name == a) return true;
  }
  return false;
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer wildcard matcher (% = any run, _ = any char).
  size_t t = 0, p = 0, star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Status Arity(const std::string& name, const std::vector<Value>& args,
             size_t lo, size_t hi) {
  if (args.size() < lo || args.size() > hi) {
    return Status::InvalidArgument("wrong argument count for " + name);
  }
  return Status::Ok();
}

bool AnyNull(const std::vector<Value>& args) {
  for (const auto& a : args) {
    if (a.is_null()) return true;
  }
  return false;
}

}  // namespace

Result<Value> CallScalarFunction(const std::string& name,
                                 const std::vector<Value>& args,
                                 const RandAddr& rand_addr) {
  // rand-family first: no args, no null handling. Row-addressed: the value
  // depends only on (query seed, row id, call site), so the row interpreter
  // and the batch kernels in vector_eval.cc agree bit for bit.
  if (name == "rand" || name == "random") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 0, 0));
    return Value::Double(RandAt(rand_addr));
  }
  if (name == "rand_poisson") {
    // Poisson(1) draw; used by SQL formulations of consolidated bootstrap
    // (each tuple's multiplicity within one resample).
    VDB_RETURN_IF_ERROR(Arity(name, args, 0, 0));
    return Value::Int(PoissonOneFromUniform(RandAt(rand_addr)));
  }
  if (name == "coalesce") {
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Value::Null();
  }
  if (name == "if") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 3, 3));
    return (!args[0].is_null() && args[0].AsBool()) ? args[1] : args[2];
  }
  if (name == "nullif") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    if (!args[0].is_null() && !args[1].is_null() && args[0].Equals(args[1])) {
      return Value::Null();
    }
    return args[0];
  }
  // Remaining builtins: NULL in -> NULL out.
  if (AnyNull(args)) return Value::Null();

  if (name == "floor") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int(static_cast<int64_t>(std::floor(args[0].AsDouble())));
  }
  if (name == "ceil" || name == "ceiling") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int(static_cast<int64_t>(std::ceil(args[0].AsDouble())));
  }
  if (name == "abs") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    if (args[0].type() == TypeId::kInt64) {
      // Unsigned negation: defined wrap on INT64_MIN (abs(INT64_MIN) ==
      // INT64_MIN), matching NegateValue and the arithmetic kernels.
      const int64_t x = args[0].AsInt();
      return Value::Int(
          x < 0 ? static_cast<int64_t>(0ull - static_cast<uint64_t>(x)) : x);
    }
    return Value::Double(std::abs(args[0].AsDouble()));
  }
  if (name == "sqrt") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Double(std::sqrt(args[0].AsDouble()));
  }
  if (name == "exp") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Double(std::exp(args[0].AsDouble()));
  }
  if (name == "ln" || name == "log") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Double(std::log(args[0].AsDouble()));
  }
  if (name == "power" || name == "pow") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (name == "mod") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    int64_t d = args[1].AsInt();
    if (d == 0) return Value::Null();
    return Value::Int(args[0].AsInt() % d);
  }
  if (name == "round") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 2));
    double x = args[0].AsDouble();
    if (args.size() == 2) {
      double scale = std::pow(10.0, args[1].AsDouble());
      return Value::Double(std::round(x * scale) / scale);
    }
    return Value::Int(static_cast<int64_t>(std::llround(x)));
  }
  if (name == "sign") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    double x = args[0].AsDouble();
    return Value::Int(x > 0 ? 1 : (x < 0 ? -1 : 0));
  }
  if (name == "greatest") {
    Value best = args[0];
    for (const auto& a : args) {
      if (a.Compare(best) > 0) best = a;
    }
    return best;
  }
  if (name == "least") {
    Value best = args[0];
    for (const auto& a : args) {
      if (a.Compare(best) < 0) best = a;
    }
    return best;
  }
  // Uniform hash to [0, 1): the paper's "hash function (e.g., md5, crc32)"
  // requirement for universe samples.
  if (name == "verdict_hash" || name == "unit_hash") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Double(HashUnit(args[0]));
  }
  if (name == "crc32") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int(Crc32(args[0].ToString()));
  }
  if (name == "hash64") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int(static_cast<int64_t>(HashValue(args[0]) >> 1));
  }
  if (name == "length") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (name == "upper") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    std::string s = args[0].ToString();
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return Value::String(std::move(s));
  }
  if (name == "lower") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    std::string s = args[0].ToString();
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return Value::String(std::move(s));
  }
  if (name == "substr" || name == "substring") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 2, 3));
    std::string s = args[0].ToString();
    int64_t start = args[1].AsInt();  // 1-based
    if (start < 1) start = 1;
    if (static_cast<size_t>(start) > s.size()) return Value::String("");
    size_t from = static_cast<size_t>(start - 1);
    size_t len = args.size() == 3
                     ? static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()))
                     : std::string::npos;
    return Value::String(s.substr(from, len));
  }
  if (name == "concat") {
    std::string out;
    for (const auto& a : args) out += a.ToString();
    return Value::String(std::move(out));
  }
  if (name == "year") {
    // Dates are stored as yyyymmdd integers throughout the workloads.
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int(args[0].AsInt() / 10000);
  }
  if (name == "month") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int((args[0].AsInt() / 100) % 100);
  }
  if (name == "cast_double" || name == "to_double") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Double(args[0].AsDouble());
  }
  if (name == "cast_int" || name == "to_int") {
    VDB_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Value::Int(args[0].AsInt());
  }
  return Status::Unsupported("unknown function: " + name);
}

}  // namespace vdb::engine
