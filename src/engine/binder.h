// Name resolution: binds column references in expressions to column ordinals
// of an input table described by a Scope.

#ifndef VDB_ENGINE_BINDER_H_
#define VDB_ENGINE_BINDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace vdb::engine {

/// The columns visible to an expression: each has the qualifier of the
/// relation it came from (table alias / name) and its own name. Positions
/// correspond to the physical columns of the intermediate table.
class Scope {
 public:
  void Add(const std::string& qualifier, const std::string& name);

  size_t size() const { return cols_.size(); }
  const std::string& qualifier(size_t i) const { return cols_[i].qualifier; }
  const std::string& name(size_t i) const { return cols_[i].name; }

  /// Resolves a (possibly qualified) column name; kNotFound / ambiguity
  /// errors carry the offending name.
  Result<int> Resolve(const std::string& qualifier,
                      const std::string& name) const;

  /// All column ordinals matching a star expansion (`*` or `t.*`).
  std::vector<int> Expand(const std::string& qualifier) const;

 private:
  struct Col {
    std::string qualifier;
    std::string name;
  };
  std::vector<Col> cols_;
};

/// Binds every column reference under `e`. Aggregate arguments are bound
/// like ordinary expressions; subqueries must have been resolved already
/// (kSubquery nodes yield kUnsupported).
Status BindExpr(sql::Expr* e, const Scope& scope);

/// True if the tree contains a non-window aggregate function call.
bool ContainsAggregate(const sql::Expr& e);

/// True if the tree contains a window function call.
bool ContainsWindow(const sql::Expr& e);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_BINDER_H_
