#include "engine/table.h"

#include <algorithm>
#include <cctype>

#include "common/thread_pool.h"

namespace vdb::engine {

namespace {
std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

void Table::AddColumn(const std::string& name, TypeId type) {
  names_.push_back(ToLower(name));
  Column c(type);
  // Keep row counts consistent if columns are added to a non-empty table.
  for (size_t i = 0; i < num_rows_; ++i) c.AppendNull();
  columns_.push_back(std::move(c));
}

void Table::AddColumn(const std::string& name, Column col) {
  if (columns_.empty()) num_rows_ = col.size();
  names_.push_back(ToLower(name));
  columns_.push_back(std::move(col));
}

int Table::ColumnIndex(const std::string& name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == lower) return static_cast<int>(i);
  }
  return -1;
}

void Table::AppendRow(const std::vector<Value>& row) {
  for (size_t i = 0; i < columns_.size(); ++i) columns_[i].Append(row[i]);
  ++num_rows_;
}

void Table::AppendRowFrom(const Table& src, size_t src_row) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].Append(src.columns_[i].Get(src_row));
  }
  ++num_rows_;
}

void Table::AppendSelected(const Table& src, const SelVector& sel,
                           int num_threads) {
  // Column-parallel gather: each column writes only its own storage. Cheap
  // shapes (few rows or a single column) stay serial.
  if (num_threads > 1 && columns_.size() > 1 && sel.size() >= 4096) {
    ThreadPool::Global().ParallelFor(
        columns_.size(), 1, num_threads, [&](size_t, size_t begin, size_t) {
          columns_[begin].AppendSelected(src.columns_[begin], sel.data(),
                                         sel.size());
        });
  } else {
    for (size_t i = 0; i < columns_.size(); ++i) {
      columns_[i].AppendSelected(src.columns_[i], sel.data(), sel.size());
    }
  }
  num_rows_ += sel.size();
}

void Table::AppendRange(const Table& src, size_t start, size_t count) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendRange(src.columns_[i], start, count);
  }
  num_rows_ += count;
}

size_t Table::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns_) {
    switch (c.type()) {
      case TypeId::kNull: break;
      case TypeId::kBool:
      case TypeId::kInt64:
      case TypeId::kDouble: bytes += c.size() * 8; break;
      case TypeId::kString: bytes += c.size() * 24; break;
    }
  }
  return bytes;
}

void Table::ClearRows() {
  for (auto& c : columns_) c.Clear();
  num_rows_ = 0;
}

TablePtr Table::CloneSchema() const {
  auto t = std::make_shared<Table>();
  for (size_t i = 0; i < columns_.size(); ++i) {
    t->AddColumn(names_[i], columns_[i].type());
  }
  return t;
}

// ---- RowView ----------------------------------------------------------------

Result<RowView> RowView::All(TablePtr table) {
  if (!table) return Status::Internal("row view over a null table");
  if (table->num_rows() > kMaxRows) {
    return Status::Unsupported(
        "selection vectors address at most 2^32 - 2 rows; table has " +
        std::to_string(table->num_rows()));
  }
  RowView v;
  v.end_ = table->num_rows();
  v.table_ = std::move(table);
  return v;
}

Result<RowView> RowView::Select(TablePtr table, SelVector sel) {
  if (!table) return Status::Internal("row view over a null table");
  if (table->num_rows() > kMaxRows) {
    return Status::Unsupported(
        "selection vectors address at most 2^32 - 2 rows; table has " +
        std::to_string(table->num_rows()));
  }
  const size_t n = table->num_rows();
  for (uint32_t r : sel) {
    if (r >= n) {
      return Status::Internal("row view selection index " + std::to_string(r) +
                              " out of range (" + std::to_string(n) + " rows)");
    }
  }
  RowView v;
  v.has_sel_ = true;
  v.sel_ = std::move(sel);
  v.table_ = std::move(table);
  return v;
}

Result<RowView> RowView::Compose(const SelVector& positions) const {
  const size_t n = num_rows();
  RowView out;
  out.table_ = table_;
  out.has_sel_ = true;
  out.sel_.reserve(positions.size());
  for (uint32_t p : positions) {
    if (p >= n) {
      return Status::Internal("view composition position " + std::to_string(p) +
                              " out of range (" + std::to_string(n) +
                              " view rows)");
    }
    out.sel_.push_back(RowAt(p));
  }
  return out;
}

RowView RowView::Prefix(size_t n) const {
  RowView out;
  out.table_ = table_;
  if (has_sel_) {
    // Copy only the surviving prefix: LIMIT k costs O(k), not O(survivors).
    out.has_sel_ = true;
    out.sel_.assign(sel_.begin(),
                    sel_.begin() + static_cast<ptrdiff_t>(
                                       std::min(n, sel_.size())));
  } else {
    out.begin_ = begin_;
    out.end_ = std::min(end_, begin_ + n);
  }
  return out;
}

TablePtr RowView::Gather(int num_threads) const {
  if (is_identity()) return table_;
  auto out = table_->CloneSchema();
  if (!has_sel_) {
    out->AppendRange(*table_, begin_, end_ - begin_);
    return out;
  }
  out->AppendSelected(*table_, sel_, num_threads);
  return out;
}

Result<TablePtr> RowView::GatherGuarded(int num_threads,
                                        const ExecGuard* guard) const {
  VDB_RETURN_IF_ERROR(GuardCheck(guard, "gather"));
  if (!is_identity() && table_->num_rows() > 0) {
    // Pre-charge the output footprint from the source's per-row estimate;
    // the gathered table lives to the end of the statement, so the charge
    // is reclaimed by ResetForStatement, not here.
    const uint64_t per_row =
        static_cast<uint64_t>(table_->ApproxBytes()) / table_->num_rows();
    VDB_RETURN_IF_ERROR(GuardTryReserve(
        guard, per_row * static_cast<uint64_t>(num_rows()), "gather_alloc"));
  }
  return Gather(num_threads);
}

Column RowView::GatherColumn(const Column& src, int num_threads) const {
  const size_t n = num_rows();
  if (!has_sel_) {
    Column out(src.type());
    out.AppendRange(src, begin_, n);
    return out;
  }
  const size_t morsel = MorselRows();
  if (num_threads <= 1 || n <= morsel) {
    Column out(src.type());
    out.AppendSelected(src, sel_.data(), n);
    return out;
  }
  // Morsel-parallel chunked gather concatenated in morsel order; same-type
  // chunks bulk-append, so the result matches the serial gather exactly.
  auto chunks = ParallelMorselMap<Column>(
      n, num_threads, [&](Column& chunk, size_t begin, size_t end) {
        chunk = Column(src.type());
        chunk.AppendSelected(src, sel_.data() + begin, end - begin);
      });
  return Column::ConcatChunks(std::move(chunks));
}

// ---- JoinPairView -----------------------------------------------------------

TablePtr JoinPairView::Gather(int num_threads) const {
  auto out = std::make_shared<Table>();
  GatherJoinPairsInto(*left_, lrows_.data(), *right_, rrows_.data(),
                      lrows_.size(), num_threads, out.get());
  return out;
}

Result<TablePtr> JoinPairView::GatherGuarded(int num_threads,
                                             const ExecGuard* guard) const {
  VDB_RETURN_IF_ERROR(GuardCheck(guard, "gather"));
  uint64_t per_pair = 0;
  if (left_->num_rows() > 0) {
    per_pair += static_cast<uint64_t>(left_->ApproxBytes()) / left_->num_rows();
  }
  if (right_->num_rows() > 0) {
    per_pair +=
        static_cast<uint64_t>(right_->ApproxBytes()) / right_->num_rows();
  }
  // Charge persists with the combined table (see RowView::GatherGuarded).
  VDB_RETURN_IF_ERROR(GuardTryReserve(
      guard, per_pair * static_cast<uint64_t>(lrows_.size()), "gather_alloc"));
  return Gather(num_threads);
}

void GatherJoinPairsInto(const Table& left, const uint32_t* lrows,
                         const Table& right, const uint32_t* rrows,
                         size_t count, int num_threads, Table* out,
                         const std::vector<uint8_t>* column_mask) {
  const size_t lcols = left.num_columns();
  const size_t rcols = right.num_columns();
  if (out->num_columns() == 0) {
    for (size_t c = 0; c < lcols; ++c) {
      out->AddColumn(left.column_name(c), left.column(c).type());
    }
    for (size_t c = 0; c < rcols; ++c) {
      out->AddColumn(right.column_name(c), right.column(c).type());
    }
  }
  out->ClearRows();
  auto build_one = [&](size_t c) {
    if (column_mask != nullptr && (*column_mask)[c] == 0) return;
    Column& col = out->column(c);
    if (c < lcols) {
      col.AppendSelected(left.column(c), lrows, count);
      return;
    }
    const Column& src = right.column(c - lcols);
    // Bulk-gather maximal sentinel-free segments; per-element work only for
    // the null extensions themselves.
    size_t i = 0;
    while (i < count) {
      if (rrows[i] == JoinPairView::kNullRightRow) {
        col.AppendNull();
        ++i;
        continue;
      }
      size_t j = i;
      while (j < count && rrows[j] != JoinPairView::kNullRightRow) ++j;
      col.AppendSelected(src, rrows + i, j - i);
      i = j;
    }
  };
  // Column-parallel materialization: every column writes only its own slot.
  if (num_threads > 1 && lcols + rcols > 1 && count >= 4096) {
    ParallelForEach(lcols + rcols, num_threads, build_one);
  } else {
    for (size_t c = 0; c < lcols + rcols; ++c) build_one(c);
  }
  out->SetRowCount(count);
}

}  // namespace vdb::engine
