#include "engine/hll.h"

#include <algorithm>
#include <cmath>

namespace vdb::engine {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  if (precision_ < 4) precision_ = 4;
  if (precision_ > 18) precision_ = 18;
  registers_.assign(size_t{1} << precision_, 0);
}

void HyperLogLog::AddHash(uint64_t hash) {
  const uint64_t index = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank = position of leftmost 1-bit in the remaining bits (1-based).
  uint8_t rank =
      rest == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
                : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) alpha = 0.673;
  else if (registers_.size() == 32) alpha = 0.697;
  else if (registers_.size() == 64) alpha = 0.709;
  else alpha = 0.7213 / (1.0 + 1.079 / m);

  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear counting for the small range.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace vdb::engine
