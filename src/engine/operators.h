// Physical operators that don't fit in the planner: hash join and
// cross join.

#ifndef VDB_ENGINE_OPERATORS_H_
#define VDB_ENGINE_OPERATORS_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Equi hash join. `left_keys` / `right_keys` are column ordinals of the two
/// inputs (same length, >= 1). The output schema is all left columns followed
/// by all right columns. `residual` (may be null) is a predicate already
/// bound against the combined schema, applied to each matching pair.
/// JoinType::kLeft emits unmatched left rows null-extended.
Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<int>& left_keys,
                          const std::vector<int>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          Rng* rng);

/// Cross join with an optional bound residual predicate. Guarded: errors if
/// the candidate pair count exceeds `max_pairs`.
Result<TablePtr> CrossJoin(const Table& left, const Table& right,
                           const sql::Expr* residual, Rng* rng,
                           size_t max_pairs = 200'000'000);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_OPERATORS_H_
