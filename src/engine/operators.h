// Physical operators that don't fit in the planner: hash join and
// cross join.

#ifndef VDB_ENGINE_OPERATORS_H_
#define VDB_ENGINE_OPERATORS_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Equi hash join. `left_keys` / `right_keys` are borrowed key columns (same
/// length, >= 1; each sized to its input's row count) — plain column refs
/// borrow the input's own columns, expression keys pass columns the caller
/// evaluated, so the join never pads or copies its inputs. The output schema
/// is all left columns followed by all right columns. `residual` (may be
/// null) is a predicate already bound against the combined schema, applied
/// to each matching pair. JoinType::kLeft emits unmatched left rows
/// null-extended.
///
/// The probe output is pair lists (views into both inputs); the one
/// materialization is the combined gather at the end — with num_threads > 1
/// and no residual the probe runs morsel-parallel over left-row ranges with
/// per-morsel pair lists concatenated in morsel order, and the gather runs
/// column-parallel, so pairs and order are identical to the serial probe.
Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<const Column*>& left_keys,
                          const std::vector<const Column*>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          Rng* rng, int num_threads = 1);

/// Ordinal convenience overload: joins on physical columns of the inputs.
Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<int>& left_keys,
                          const std::vector<int>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          Rng* rng, int num_threads = 1);

/// Cross join with an optional bound residual predicate. Guarded: errors if
/// the candidate pair count exceeds `max_pairs`.
Result<TablePtr> CrossJoin(const Table& left, const Table& right,
                           const sql::Expr* residual, Rng* rng,
                           size_t max_pairs = 200'000'000,
                           int num_threads = 1);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_OPERATORS_H_
