// Physical operators that don't fit in the planner: hash join and
// cross join.

#ifndef VDB_ENGINE_OPERATORS_H_
#define VDB_ENGINE_OPERATORS_H_

#include <vector>

#include "common/governor.h"
#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Equi hash join producing a pair-list view. `left_keys` / `right_keys` are
/// borrowed key columns (same length, >= 1; each sized to its input's row
/// count) — plain column refs borrow the input's own columns, expression
/// keys pass columns the caller evaluated, so the join never pads or copies
/// its inputs. `residual` (may be null) is a predicate already bound against
/// the combined (left ++ right) schema, applied to candidate pairs before
/// null extension. JoinType::kLeft emits unmatched left rows with
/// JoinPairView::kNullRightRow sentinels.
///
/// No per-row string keys anywhere: build and probe keys are hashed
/// column-at-a-time (engine/group_ids.h, ValueGroupKey-equivalent: NaN joins
/// NaN, -0.0 joins 0.0, 5 joins 5.0 across Int64/Double columns) into a flat
/// open-addressing JoinBuildTable. With num_threads > 1 the build side is
/// radix-partitioned and built in parallel, and the probe runs
/// morsel-parallel over left-row ranges; pairs and their order are identical
/// to the serial (num_threads == 1) reference, bit for bit. The caller
/// filters the returned view further (pushed-down WHERE) and/or performs the
/// one combined materialization with JoinPairView::Gather.
/// `guard` (optional, nullptr = ungoverned) is polled at build and probe
/// morsel boundaries and charged for row-proportional buffers (build table,
/// probe pair lists) — a tripped guard unwinds with its Status.
Result<JoinPairView> HashJoinPairs(TablePtr left, TablePtr right,
                                   const std::vector<const Column*>& left_keys,
                                   const std::vector<const Column*>& right_keys,
                                   sql::JoinType join_type,
                                   const sql::Expr* residual,
                                   uint64_t rand_seed, int num_threads = 1,
                                   const ExecGuard* guard = nullptr);

/// HashJoinPairs + the combined gather, for callers that want the table.
Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<const Column*>& left_keys,
                          const std::vector<const Column*>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          uint64_t rand_seed, int num_threads = 1,
                          const ExecGuard* guard = nullptr);

/// Ordinal convenience overload: joins on physical columns of the inputs.
Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<int>& left_keys,
                          const std::vector<int>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          uint64_t rand_seed, int num_threads = 1);

/// Cross join as a pair-list view, with an optional bound residual predicate
/// evaluated in streaming chunks. Guarded: errors if the candidate pair
/// count exceeds `max_pairs`.
Result<JoinPairView> CrossJoinPairs(TablePtr left, TablePtr right,
                                    const sql::Expr* residual,
                                    uint64_t rand_seed,
                                    size_t max_pairs = 200'000'000,
                                    int num_threads = 1,
                                    const ExecGuard* guard = nullptr);

/// CrossJoinPairs + the combined gather.
Result<TablePtr> CrossJoin(const Table& left, const Table& right,
                           const sql::Expr* residual, uint64_t rand_seed,
                           size_t max_pairs = 200'000'000,
                           int num_threads = 1,
                           const ExecGuard* guard = nullptr);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_OPERATORS_H_
