#include "engine/agg_table.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace vdb::engine {

namespace {
// Test hook read by pool workers during parallel group-id assignment while
// tests write it from the main thread between queries: atomic (relaxed) so
// that handoff is a defined data point, not a formal race. Loaded once per
// hashing call, never per row.
std::atomic<uint64_t> g_group_hash_mask{~0ull};

/// Raw-lane view of one group-key column for the inlined representative-row
/// verification — the same relation as group_ids.cc's CellsEqual (NULLs
/// equal, NaNs equal, typed compares elsewhere) without a per-row
/// out-of-line call. Raw pointers are pre-offset by the column's row base so
/// batch-relative row indices address them directly; only the string path
/// keeps the base (Column::GetString wants absolute rows).
struct KeyLane {
  TypeId type;
  const int64_t* ints = nullptr;
  const double* dbls = nullptr;
  const uint8_t* nulls = nullptr;
  const Column* col = nullptr;  // string compares
  size_t base = 0;              // string compares only
};

std::vector<KeyLane> MakeKeyLanes(const std::vector<KeyCol>& cols) {
  std::vector<KeyLane> lanes;
  lanes.reserve(cols.size());  // vdb-lint: allow(naked-reserve) column-count bounded
  for (const KeyCol& kc : cols) {  // vdb-lint: allow(ungoverned-loop) column-count bounded, not row-proportional
    const Column* c = kc.col;
    KeyLane l;
    l.type = c->type();
    l.nulls = c->NullData();
    if (l.nulls != nullptr) l.nulls += kc.base;
    l.col = c;
    l.base = kc.base;
    if (l.type == TypeId::kBool || l.type == TypeId::kInt64) {
      l.ints = c->IntData() + kc.base;
    } else if (l.type == TypeId::kDouble) {
      l.dbls = c->DoubleData() + kc.base;
    }
    lanes.push_back(l);
  }
  return lanes;
}

inline bool LaneRowsEqual(const KeyLane* lanes, size_t nlanes, uint32_t a,
                          uint32_t b) {
  for (size_t i = 0; i < nlanes; ++i) {
    const KeyLane& l = lanes[i];
    if (l.type == TypeId::kNull) continue;  // every cell NULL: equal
    const bool an = l.nulls != nullptr && l.nulls[a] != 0;
    const bool bn = l.nulls != nullptr && l.nulls[b] != 0;
    if (an != bn) return false;
    if (an) continue;
    switch (l.type) {
      case TypeId::kNull:
        break;
      case TypeId::kBool:
      case TypeId::kInt64:
        if (l.ints[a] != l.ints[b]) return false;
        break;
      case TypeId::kDouble: {
        const double x = l.dbls[a], y = l.dbls[b];
        if (!(x == y || (std::isnan(x) && std::isnan(y)))) return false;
        break;
      }
      case TypeId::kString:
        if (l.col->GetString(l.base + a) != l.col->GetString(l.base + b)) {
          return false;
        }
        break;
    }
  }
  return true;
}

/// True when every key lane is integer-typed with no NULL bytes — the
/// dominant GROUP BY shape (int key columns). Equality then reduces to raw
/// int compares, so the probe loop skips LaneRowsEqual's per-lane null
/// checks and type dispatch, which run on every row (a hash match IS the
/// common case: same-group rows share the hash).
bool AllIntNoNull(const std::vector<KeyLane>& lanes) {
  for (const KeyLane& l : lanes) {
    if ((l.type != TypeId::kInt64 && l.type != TypeId::kBool) ||
        l.nulls != nullptr) {
      return false;
    }
  }
  return true;
}

inline bool IntRowsEqual(const KeyLane* lanes, size_t nlanes, uint32_t a,
                         uint32_t b) {
  for (size_t i = 0; i < nlanes; ++i) {
    if (lanes[i].ints[a] != lanes[i].ints[b]) return false;
  }
  return true;
}

/// Mixed int/double key lanes, still no NULLs (e.g. GROUP BY g, sid where
/// sid came out of a floor() expression as Double). Per-lane branch on the
/// stored int pointer replaces the type switch; double equality keeps the
/// NaNs-equal rule so grouping matches CellsEqual exactly.
bool AllNumericNoNull(const std::vector<KeyLane>& lanes) {
  for (const KeyLane& l : lanes) {
    if (l.nulls != nullptr) return false;
    if (l.type != TypeId::kInt64 && l.type != TypeId::kBool &&
        l.type != TypeId::kDouble) {
      return false;
    }
  }
  return true;
}

inline bool NumRowsEqual(const KeyLane* lanes, size_t nlanes, uint32_t a,
                         uint32_t b) {
  for (size_t i = 0; i < nlanes; ++i) {
    const KeyLane& l = lanes[i];
    if (l.ints != nullptr) {
      if (l.ints[a] != l.ints[b]) return false;
    } else {
      const double x = l.dbls[a], y = l.dbls[b];
      if (!(x == y || (std::isnan(x) && std::isnan(y)))) return false;
    }
  }
  return true;
}

}  // namespace

void SetGroupHashMaskForTest(uint64_t mask) {
  g_group_hash_mask.store(mask, std::memory_order_relaxed);
}

uint64_t GroupHashMaskForTest() {
  return g_group_hash_mask.load(std::memory_order_relaxed);
}

void HashGroupKeys(const std::vector<const Column*>& cols, size_t num_rows,
                   std::vector<uint64_t>* hashes) {
  hashes->assign(num_rows, kGroupHashSeed);
  for (const Column* c : cols) HashGroupColumn(*c, num_rows, hashes);
  const uint64_t mask = GroupHashMaskForTest();
  if (mask != ~0ull) {
    for (uint64_t& h : *hashes) h &= mask;
  }
}

namespace {

/// Based form of HashGroupKeys: hashes rows [base, base + num_rows) of each
/// key column into hashes[0..num_rows).
void HashGroupKeysBased(const std::vector<KeyCol>& cols, size_t num_rows,
                        std::vector<uint64_t>* hashes) {
  hashes->assign(num_rows, kGroupHashSeed);
  for (const KeyCol& kc : cols) {
    HashGroupColumnRange(*kc.col, kc.base, kc.base + num_rows,
                         hashes->data());
  }
  const uint64_t mask = GroupHashMaskForTest();
  if (mask != ~0ull) {
    for (uint64_t& h : *hashes) h &= mask;
  }
}

std::vector<KeyCol> ZeroBased(const std::vector<const Column*>& cols) {
  std::vector<KeyCol> kcs;
  kcs.reserve(cols.size());  // vdb-lint: allow(naked-reserve) column-count bounded
  for (const Column* c : cols) kcs.push_back(KeyCol{c, 0});
  return kcs;
}

}  // namespace

void GroupTable::Reset(size_t expected) {
  size_t cap = 16;
  // Size so `expected` groups stay under the 3/4 load factor.
  while (cap * 3 < (expected + 1) * 4) cap <<= 1;
  GuardRelease(guard_, charged_bytes_);
  charged_bytes_ = 0;
  guard_status_ = Status::Ok();
  Status st = GuardTryReserve(
      guard_, static_cast<uint64_t>(cap) * sizeof(Slot), "agg_group_grow");
  if (!st.ok()) {
    // Latch and fall back to the minimum capacity (uncharged) so callers
    // that probe before checking guard_status() stay in-bounds; the first
    // growth attempt re-fails and stops inserts.
    guard_status_ = std::move(st);
    cap = 16;
  } else if (guard_ != nullptr) {
    charged_bytes_ = static_cast<uint64_t>(cap) * sizeof(Slot);
  }
  slots_.assign(cap, Slot{0, kNoGroup});
  group_hashes_.clear();
}

void GroupTable::Grow() {
  const size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  // Charge the doubled array before releasing the old charge: both buffers
  // are briefly alive during the reallocation, and a failed charge must
  // leave the existing (still valid) table untouched.
  Status st = GuardTryReserve(
      guard_, static_cast<uint64_t>(cap) * sizeof(Slot), "agg_group_grow");
  if (!st.ok()) {
    if (guard_status_.ok()) guard_status_ = std::move(st);
    return;
  }
  GuardRelease(guard_, charged_bytes_);
  charged_bytes_ =
      guard_ != nullptr ? static_cast<uint64_t>(cap) * sizeof(Slot) : 0;
  slots_.assign(cap, Slot{0, kNoGroup});
  const uint64_t mask = cap - 1;
  // Rehash from the stored per-group hashes; no equality checks needed —
  // every gid is already distinct, same-hash groups just extend the chain.
  for (uint32_t g = 0; g < group_hashes_.size(); ++g) {
    size_t i = group_hashes_[g] & mask;
    while (slots_[i].gid != kNoGroup) i = (i + 1) & mask;
    slots_[i] = Slot{group_hashes_[g], g};
  }
}

void GroupMergeTable::Reset(size_t arity, size_t expected) {
  arity_ = arity;
  table_.Reset(expected);
  keys_.clear();
}

uint32_t GroupMergeTable::FindOrInsert(uint64_t h, const Value* keys,
                                       bool* inserted) {
  const uint32_t gid = table_.FindOrInsert(
      h,
      [&](uint32_t g) {
        const Value* gk = keys_.data() + static_cast<size_t>(g) * arity_;
        for (size_t i = 0; i < arity_; ++i) {
          if (!GroupValuesEqual(gk[i], keys[i])) return false;
        }
        return true;
      },
      inserted);
  if (*inserted) {
    for (size_t i = 0; i < arity_; ++i) keys_.push_back(keys[i]);
  }
  return gid;
}

GroupAssignment AssignGroupIds(const std::vector<const Column*>& cols,
                               size_t num_rows) {
  return AssignGroupIdsBased(ZeroBased(cols), num_rows);
}

void AssignGroupIdsSelected(const std::vector<const Column*>& cols,
                            size_t num_dense, const uint32_t* rows, size_t n,
                            GroupAssignment* out) {
  AssignGroupIdsSelectedBased(ZeroBased(cols), num_dense, rows, n, out);
}

GroupAssignment AssignGroupIdsBased(const std::vector<KeyCol>& cols,
                                    size_t num_rows) {
  GroupAssignment out;
  out.gid_of_row.resize(num_rows);  // vdb-lint: allow(naked-reserve) 4B/row gid scratch, morsel- or input-bounded
  if (cols.empty()) {
    std::fill(out.gid_of_row.begin(), out.gid_of_row.end(), 0u);
    if (num_rows > 0) {
      out.rep_row.push_back(0);
      out.group_hash.push_back(kGroupHashSeed & GroupHashMaskForTest());
    }
    return out;
  }

  std::vector<uint64_t> hashes;
  HashGroupKeysBased(cols, num_rows, &hashes);
  const std::vector<KeyLane> lanes = MakeKeyLanes(cols);

  GroupTable table;
  table.Reset(std::min<size_t>(num_rows, 64));
  auto probe = [&](auto rows_eq) {
    table.FindOrInsertBatch(
        hashes.data(), num_rows,
        [&](size_t r, uint32_t g) {
          return rows_eq(lanes.data(), lanes.size(), static_cast<uint32_t>(r),
                         out.rep_row[g]);
        },
        [&](size_t r, uint32_t) {
          out.rep_row.push_back(static_cast<uint32_t>(r));
        },
        out.gid_of_row.data());
  };
  // Each arm passes a distinct lambda type so the probe loop instantiates
  // with the equality inlined (a shared function pointer would indirect-call
  // per row).
  if (AllIntNoNull(lanes)) {
    probe([](const KeyLane* l, size_t nl, uint32_t a, uint32_t b) {
      return IntRowsEqual(l, nl, a, b);
    });
  } else if (AllNumericNoNull(lanes)) {
    probe([](const KeyLane* l, size_t nl, uint32_t a, uint32_t b) {
      return NumRowsEqual(l, nl, a, b);
    });
  } else {
    probe([](const KeyLane* l, size_t nl, uint32_t a, uint32_t b) {
      return LaneRowsEqual(l, nl, a, b);
    });
  }
  out.group_hash = table.TakeGroupHashes();
  return out;
}

void AssignGroupIdsSelectedBased(const std::vector<KeyCol>& cols,
                                 size_t num_dense, const uint32_t* rows,
                                 size_t n, GroupAssignment* out) {
  out->gid_of_row.clear();
  out->rep_row.clear();
  out->group_hash.clear();
  out->gid_of_row.resize(n);  // vdb-lint: allow(naked-reserve) 4B/row gid scratch, morsel- or input-bounded
  if (n == 0) return;
  if (cols.empty()) {
    std::fill(out->gid_of_row.begin(), out->gid_of_row.end(), 0u);
    out->rep_row.push_back(rows[0]);
    out->group_hash.push_back(kGroupHashSeed & GroupHashMaskForTest());
    return;
  }

  std::vector<uint64_t> hashes;
  HashGroupKeysBased(cols, num_dense, &hashes);
  const std::vector<KeyLane> lanes = MakeKeyLanes(cols);

  // Compact the selected rows' hashes so the probe loop streams them.
  std::vector<uint64_t> sel_hashes(n);
  for (size_t k = 0; k < n; ++k) sel_hashes[k] = hashes[rows[k]];

  GroupTable table;
  table.Reset(std::min<size_t>(n, 64));
  auto probe = [&](auto rows_eq) {
    table.FindOrInsertBatch(
        sel_hashes.data(), n,
        [&](size_t k, uint32_t g) {
          return rows_eq(lanes.data(), lanes.size(), rows[k],
                         out->rep_row[g]);
        },
        [&](size_t k, uint32_t) { out->rep_row.push_back(rows[k]); },
        out->gid_of_row.data());
  };
  if (AllIntNoNull(lanes)) {
    probe([](const KeyLane* l, size_t nl, uint32_t a, uint32_t b) {
      return IntRowsEqual(l, nl, a, b);
    });
  } else if (AllNumericNoNull(lanes)) {
    probe([](const KeyLane* l, size_t nl, uint32_t a, uint32_t b) {
      return NumRowsEqual(l, nl, a, b);
    });
  } else {
    probe([](const KeyLane* l, size_t nl, uint32_t a, uint32_t b) {
      return LaneRowsEqual(l, nl, a, b);
    });
  }
  out->group_hash = table.TakeGroupHashes();
}

}  // namespace vdb::engine
