// Window-function evaluation: `agg(expr) OVER (PARTITION BY cols)`.
//
// Only partitioned aggregates (no ordering / frames) are supported — exactly
// the form VerdictDB's rewritten queries need, e.g.
// `sum(count(*)) over (partition by group_col)` (paper Appendix G, Query 9).

#ifndef VDB_ENGINE_WINDOW_H_
#define VDB_ENGINE_WINDOW_H_

#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Evaluates a bound window expression over every row of `table`, returning
/// one result column aligned with the input rows. `e.args[0]` and each
/// partition expression must already be bound against `table`'s scope.
/// `rand_seed` is the per-statement query seed (row-addressed rand draws).
/// Supported window aggregates: sum, count, avg, min, max.
Result<Column> EvalWindowExpr(const sql::Expr& e, const Table& table,
                              uint64_t rand_seed);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_WINDOW_H_
