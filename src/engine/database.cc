#include "engine/database.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <thread>

#include "engine/planner.h"
#include "sql/parser.h"

namespace vdb::engine {

namespace {
std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

int ResultSet::ColumnIndex(const std::string& name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < names.size(); ++i) {
    if (ToLower(names[i]) == lower) return static_cast<int>(i);
  }
  return -1;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < names.size(); ++c) {
    if (c) os << " | ";
    os << names[c];
  }
  os << "\n";
  for (size_t c = 0; c < names.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(names[c].size(), '-');
  }
  os << "\n";
  size_t shown = std::min(NumRows(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < NumCols(); ++c) {
      if (c) os << " | ";
      os << Get(r, c).ToString();
    }
    os << "\n";
  }
  if (NumRows() > shown) {
    os << "... (" << NumRows() - shown << " more rows)\n";
  }
  return os.str();
}

Database::Database(uint64_t seed) : rng_(seed) {}

int Database::num_threads() const {
  if (num_threads_ > 0) return num_threads_;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Status Database::RegisterTable(const std::string& name, TablePtr table) {
  return catalog_.CreateTable(name, std::move(table));
}

Result<ResultSet> Database::ExecuteSelect(const sql::SelectStmt& stmt,
                                          const ExecGuard* guard) {
  auto clone = stmt.Clone();
  return RunSelect(this, clone.get(), guard);
}

Result<ResultSet> Database::Execute(const std::string& sql,
                                    const ExecGuard* guard) {
  auto parsed = sql::ParseStatement(sql);
  if (!parsed.ok()) return parsed.status();
  auto stmt = std::move(parsed).ValueOrDie();

  switch (stmt->kind) {
    case sql::StatementKind::kSelect:
      return RunSelect(this, stmt->select.get(), guard);

    case sql::StatementKind::kCreateTableAs: {
      auto rs = RunSelect(this, stmt->select.get(), guard);
      if (!rs.ok()) return rs.status();
      ResultSet r = std::move(rs).ValueOrDie();
      // Rebuild with unique lowercase column names.
      auto table = std::make_shared<Table>();
      std::set<std::string> used;
      for (size_t i = 0; i < r.NumCols(); ++i) {
        std::string name = ToLower(r.names[i]);
        std::string unique = name;
        int suffix = 2;
        while (!used.insert(unique).second) {
          unique = name + "_" + std::to_string(suffix++);
        }
        table->AddColumn(unique, std::move(r.table->column(i)));
      }
      VDB_RETURN_IF_ERROR(catalog_.CreateTable(stmt->table_name, table));
      ResultSet empty;
      empty.table = std::make_shared<Table>();
      return empty;
    }

    case sql::StatementKind::kDropTable: {
      VDB_RETURN_IF_ERROR(
          catalog_.DropTable(stmt->table_name, stmt->if_exists));
      ResultSet empty;
      empty.table = std::make_shared<Table>();
      return empty;
    }

    case sql::StatementKind::kInsertSelect: {
      TablePtr target = catalog_.GetTable(stmt->table_name);
      if (!target) {
        return Status::NotFound("no such table: " + stmt->table_name);
      }
      auto rs = RunSelect(this, stmt->select.get(), guard);
      if (!rs.ok()) return rs.status();
      const ResultSet& r = rs.value();
      if (r.NumCols() != target->num_columns()) {
        return Status::InvalidArgument(
            "INSERT column count mismatch: target has " +
            std::to_string(target->num_columns()) + ", select produced " +
            std::to_string(r.NumCols()));
      }
      for (size_t row = 0; row < r.NumRows(); ++row) {
        target->AppendRowFrom(*r.table, row);
      }
      ResultSet empty;
      empty.table = std::make_shared<Table>();
      return empty;
    }
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace vdb::engine
