#include "engine/group_ids.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "engine/kernels/kernels.h"

namespace vdb::engine {

Status CheckGroupableRows(size_t num_rows) {
  constexpr size_t kMaxRows = 0xFFFFFFFEu;
  if (num_rows > kMaxRows) {
    return Status::Unsupported(
        "group-id assignment addresses at most 2^32 - 2 rows; input has " +
        std::to_string(num_rows));
  }
  return Status::Ok();
}

namespace {

// Distinct tags keep NULL apart from any data hash.
constexpr uint64_t kNullHash = 0x9AE16A3B2F90404Full;
constexpr uint64_t kNanHash = 0xC3A5C85C97CB3127ull;

uint64_t MixInto(uint64_t h, uint64_t v) {
  // Boost-style combine, then a full mix so consecutive columns decorrelate.
  return HashMix64(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
}

uint64_t DoubleHash(double d) {
  // Match ValueGroupKey's folding: integral doubles hash like the integer
  // (so 5.0 groups with 5 across differently-typed key columns), NaNs
  // collapse to one class, and -0.0 folds to 0. Equal non-integral doubles
  // share a bit pattern, so hashing the bits is exact.
  if (std::isnan(d)) return kNanHash;
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    return HashMix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return HashMix64(bits);
}

/// Raw-storage equality of two rows of the same column, under ValueGroupKey
/// equivalence. Only called for same-hash candidates, so it stays off the
/// hot path.
bool CellsEqual(const Column& c, size_t a, size_t b) {
  const bool an = c.IsNull(a);
  if (an != c.IsNull(b)) return false;
  if (an) return true;
  switch (c.type()) {
    case TypeId::kNull:
      return true;
    case TypeId::kBool:
    case TypeId::kInt64:
      return c.GetInt(a) == c.GetInt(b);
    case TypeId::kDouble: {
      const double x = c.GetDouble(a), y = c.GetDouble(b);
      return x == y || (std::isnan(x) && std::isnan(y));
    }
    case TypeId::kString:
      return c.GetString(a) == c.GetString(b);
  }
  return false;
}

/// Mixes column `col`'s per-row hash for rows [begin, end) into
/// out[0 .. end - begin) — RELATIVE output indexing; callers holding a
/// shared absolute array pass h + begin.
void HashColumnRange(const Column& col, size_t begin, size_t end,
                     uint64_t* out) {
  const size_t n = end - begin;
  const uint8_t* nulls = col.NullData();
  if (nulls != nullptr) nulls += begin;
  switch (col.type()) {
    case TypeId::kNull:
      for (size_t k = 0; k < n; ++k) out[k] = MixInto(out[k], kNullHash);
      return;
    case TypeId::kBool:
    case TypeId::kInt64: {
      // The dispatch kernel vectorizes exactly this lane: per-row HashMix64
      // of the raw value (kNullHash at null rows), combined via MixInto.
      kernels::Ops().hash_mix_i64(out, col.IntData() + begin, nulls, kNullHash,
                                  n);
      return;
    }
    case TypeId::kDouble: {
      const double* data = col.DoubleData() + begin;
      for (size_t k = 0; k < n; ++k) {
        const uint64_t v = (nulls != nullptr && nulls[k] != 0)
                               ? kNullHash
                               : DoubleHash(data[k]);
        out[k] = MixInto(out[k], v);
      }
      return;
    }
    case TypeId::kString: {
      for (size_t k = 0; k < n; ++k) {
        uint64_t v;
        if (nulls != nullptr && nulls[k] != 0) {
          v = kNullHash;
        } else {
          const std::string& s = col.GetString(begin + k);
          v = HashBytes(s.data(), s.size());
        }
        out[k] = MixInto(out[k], v);
      }
      return;
    }
  }
}

// Like agg_table.cc's group-hash mask: written by tests between queries,
// read by workers inside the morsel-parallel join prehash — atomic so the
// handoff is defined. Loaded once per range, never per row.
std::atomic<uint64_t> g_join_key_hash_mask{~0ull};

/// Same-type equality across two columns (both cells non-null).
bool CellsEqual2(const Column& a, size_t ra, const Column& b, size_t rb) {
  switch (a.type()) {
    case TypeId::kNull:
      return true;
    case TypeId::kBool:
    case TypeId::kInt64:
      return a.GetInt(ra) == b.GetInt(rb);
    case TypeId::kDouble: {
      const double x = a.GetDouble(ra), y = b.GetDouble(rb);
      return x == y || (std::isnan(x) && std::isnan(y));
    }
    case TypeId::kString:
      return a.GetString(ra) == b.GetString(rb);
  }
  return false;
}

/// Cross-column cell equality under ValueGroupKey equivalence; unlike
/// CellsEqual the two cells may come from differently-typed columns (an
/// Int64 key joining a Double key), so numerics compare by value.
bool CellsEqualCross(const Column& a, size_t ra, const Column& b, size_t rb) {
  const bool an = a.IsNull(ra);
  if (an != b.IsNull(rb)) return false;
  if (an) return true;
  const TypeId at = a.type(), bt = b.type();
  if (at == bt) return CellsEqual2(a, ra, b, rb);
  // Mixed types: only numeric cross-type pairs can be equal (ValueGroupKey
  // gives strings their own tag). Bool cells live in Int64 storage.
  const bool a_int = at == TypeId::kBool || at == TypeId::kInt64;
  const bool b_int = bt == TypeId::kBool || bt == TypeId::kInt64;
  if (a_int && b_int) return a.GetInt(ra) == b.GetInt(rb);
  if (a_int && bt == TypeId::kDouble) {
    const double d = b.GetDouble(rb);
    return d == std::floor(d) && std::abs(d) < 9.2e18 &&
           static_cast<int64_t>(d) == a.GetInt(ra);
  }
  if (b_int && at == TypeId::kDouble) {
    const double d = a.GetDouble(ra);
    return d == std::floor(d) && std::abs(d) < 9.2e18 &&
           static_cast<int64_t>(d) == b.GetInt(rb);
  }
  return false;
}

}  // namespace

void HashGroupColumn(const Column& col, size_t num_rows,
                     std::vector<uint64_t>* hashes) {
  HashColumnRange(col, 0, num_rows, hashes->data());
}

void HashGroupColumnRange(const Column& col, size_t begin, size_t end,
                          uint64_t* out) {
  HashColumnRange(col, begin, end, out);
}

bool GroupRowsEqual(const std::vector<const Column*>& cols, size_t a,
                    size_t b) {
  for (const Column* c : cols) {
    if (!CellsEqual(*c, a, b)) return false;
  }
  return true;
}

uint64_t GroupValueHash(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return kNullHash;
    case TypeId::kBool:
    case TypeId::kInt64:
      return HashMix64(static_cast<uint64_t>(v.AsInt()));
    case TypeId::kDouble:
      return DoubleHash(v.AsDouble());
    case TypeId::kString: {
      const std::string& s = v.AsString();
      return HashBytes(s.data(), s.size());
    }
  }
  return 0;
}

bool GroupValuesEqual(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  const TypeId at = a.type(), bt = b.type();
  const bool a_int = at == TypeId::kBool || at == TypeId::kInt64;
  const bool b_int = bt == TypeId::kBool || bt == TypeId::kInt64;
  if (a_int && b_int) return a.AsInt() == b.AsInt();
  if (at == TypeId::kString || bt == TypeId::kString) {
    return at == bt && a.AsString() == b.AsString();
  }
  if (at == TypeId::kDouble && bt == TypeId::kDouble) {
    const double x = a.AsDouble(), y = b.AsDouble();
    return x == y || (std::isnan(x) && std::isnan(y));
  }
  // Numeric cross-type pair: equal iff the double side is integral and
  // matches the integer side (ValueGroupKey's folding).
  const double d = a_int ? b.AsDouble() : a.AsDouble();
  const int64_t i = a_int ? a.AsInt() : b.AsInt();
  return d == std::floor(d) && std::abs(d) < 9.2e18 &&
         static_cast<int64_t>(d) == i;
}

void HashJoinKeyColumns(const std::vector<const Column*>& keys, size_t begin,
                        size_t end, uint64_t* hashes, uint8_t* any_null) {
  for (size_t r = begin; r < end; ++r) hashes[r] = kGroupHashSeed;
  for (const Column* k : keys) {
    HashColumnRange(*k, begin, end, hashes + begin);
    if (k->type() == TypeId::kNull) {
      for (size_t r = begin; r < end; ++r) any_null[r] = 1;
    } else if (const uint8_t* nulls = k->NullData()) {
      for (size_t r = begin; r < end; ++r) any_null[r] |= nulls[r];
    }
  }
  const uint64_t mask = g_join_key_hash_mask.load(std::memory_order_relaxed);
  if (mask != ~0ull) {
    for (size_t r = begin; r < end; ++r) hashes[r] &= mask;
  }
}

bool JoinKeysEqual(const std::vector<const Column*>& a, size_t arow,
                   const std::vector<const Column*>& b, size_t brow) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!CellsEqualCross(*a[i], arow, *b[i], brow)) return false;
  }
  return true;
}

void SetJoinKeyHashMaskForTest(uint64_t mask) {
  g_join_key_hash_mask.store(mask, std::memory_order_relaxed);
}

// AssignGroupIds lives in engine/agg_table.cc: it is the flat GroupTable's
// first client, and keeping it beside the table keeps the probe loop and the
// growth policy in one place.

}  // namespace vdb::engine
