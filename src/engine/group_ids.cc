#include "engine/group_ids.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/hash.h"

namespace vdb::engine {

Status CheckGroupableRows(size_t num_rows) {
  constexpr size_t kMaxRows = 0xFFFFFFFEu;
  if (num_rows > kMaxRows) {
    return Status::Unsupported(
        "group-id assignment addresses at most 2^32 - 2 rows; input has " +
        std::to_string(num_rows));
  }
  return Status::Ok();
}

namespace {

// Distinct tags keep NULL apart from any data hash.
constexpr uint64_t kNullHash = 0x9AE16A3B2F90404Full;
constexpr uint64_t kNanHash = 0xC3A5C85C97CB3127ull;

uint64_t MixInto(uint64_t h, uint64_t v) {
  // Boost-style combine, then a full mix so consecutive columns decorrelate.
  return HashMix64(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
}

uint64_t DoubleHash(double d) {
  // Match ValueGroupKey's folding: integral doubles hash like the integer
  // (so 5.0 groups with 5 across differently-typed key columns), NaNs
  // collapse to one class, and -0.0 folds to 0. Equal non-integral doubles
  // share a bit pattern, so hashing the bits is exact.
  if (std::isnan(d)) return kNanHash;
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    return HashMix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return HashMix64(bits);
}

/// Raw-storage equality of two rows of the same column, under ValueGroupKey
/// equivalence. Only called for same-hash candidates, so it stays off the
/// hot path.
bool CellsEqual(const Column& c, size_t a, size_t b) {
  const bool an = c.IsNull(a);
  if (an != c.IsNull(b)) return false;
  if (an) return true;
  switch (c.type()) {
    case TypeId::kNull:
      return true;
    case TypeId::kBool:
    case TypeId::kInt64:
      return c.GetInt(a) == c.GetInt(b);
    case TypeId::kDouble: {
      const double x = c.GetDouble(a), y = c.GetDouble(b);
      return x == y || (std::isnan(x) && std::isnan(y));
    }
    case TypeId::kString:
      return c.GetString(a) == c.GetString(b);
  }
  return false;
}

bool RowsEqual(const std::vector<const Column*>& cols, size_t a, size_t b) {
  for (const Column* c : cols) {
    if (!CellsEqual(*c, a, b)) return false;
  }
  return true;
}

}  // namespace

void HashGroupColumn(const Column& col, size_t num_rows,
                     std::vector<uint64_t>* hashes) {
  std::vector<uint64_t>& h = *hashes;
  const uint8_t* nulls = col.NullData();
  switch (col.type()) {
    case TypeId::kNull:
      for (size_t r = 0; r < num_rows; ++r) h[r] = MixInto(h[r], kNullHash);
      return;
    case TypeId::kBool:
    case TypeId::kInt64: {
      const int64_t* data = col.IntData();
      for (size_t r = 0; r < num_rows; ++r) {
        const uint64_t v = (nulls != nullptr && nulls[r] != 0)
                               ? kNullHash
                               : HashMix64(static_cast<uint64_t>(data[r]));
        h[r] = MixInto(h[r], v);
      }
      return;
    }
    case TypeId::kDouble: {
      const double* data = col.DoubleData();
      for (size_t r = 0; r < num_rows; ++r) {
        const uint64_t v = (nulls != nullptr && nulls[r] != 0)
                               ? kNullHash
                               : DoubleHash(data[r]);
        h[r] = MixInto(h[r], v);
      }
      return;
    }
    case TypeId::kString: {
      for (size_t r = 0; r < num_rows; ++r) {
        uint64_t v;
        if (nulls != nullptr && nulls[r] != 0) {
          v = kNullHash;
        } else {
          const std::string& s = col.GetString(r);
          v = HashBytes(s.data(), s.size());
        }
        h[r] = MixInto(h[r], v);
      }
      return;
    }
  }
}

GroupAssignment AssignGroupIds(const std::vector<const Column*>& cols,
                               size_t num_rows) {
  GroupAssignment out;
  out.gid_of_row.resize(num_rows);
  if (cols.empty()) {
    std::fill(out.gid_of_row.begin(), out.gid_of_row.end(), 0u);
    if (num_rows > 0) out.rep_row.push_back(0);
    return out;
  }

  std::vector<uint64_t> hashes(num_rows, 0x2545F4914F6CDD1Dull);
  for (const Column* c : cols) HashGroupColumn(*c, num_rows, &hashes);

  // hash -> group ids sharing it (singular in the non-adversarial case).
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(num_rows / 4 + 8);
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<uint32_t>& bucket = buckets[hashes[r]];
    uint32_t gid = static_cast<uint32_t>(-1);
    for (uint32_t g : bucket) {
      if (RowsEqual(cols, r, out.rep_row[g])) {
        gid = g;
        break;
      }
    }
    if (gid == static_cast<uint32_t>(-1)) {
      gid = static_cast<uint32_t>(out.rep_row.size());
      out.rep_row.push_back(static_cast<uint32_t>(r));
      bucket.push_back(gid);
    }
    out.gid_of_row[r] = gid;
  }
  return out;
}

}  // namespace vdb::engine
