#include "engine/vector_eval.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "engine/expr_eval.h"
#include "engine/functions.h"

namespace vdb::engine {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

namespace {

/// Test/bench baseline switch (SetSerialRandBaselineForTest): reproduces the
/// pre-row-addressed executor, where rand-family expressions had no batch
/// kernel and pinned their queries serial.
bool g_serial_rand_baseline = false;

/// True when the baseline hook demands the old serial pinning for `e`.
bool PinnedSerialForBaseline(const Expr& e) {
  return g_serial_rand_baseline && sql::ContainsRandFunction(e);
}

// Tri-state predicate vector: -1 unknown (NULL), 0 false, 1 true.
using TriVec = std::vector<int8_t>;

/// Intermediate vector: borrows a whole input column (zero-copy column
/// reference), owns a materialized column, broadcasts a one-row constant, or
/// — for row-fallback results whose per-row types differ (coalesce/CASE over
/// heterogeneous branches) — boxes the raw Values so that Value-level
/// semantics (boolean-ness, string vs numeric comparison) survive until the
/// output boundary.
struct Vec {
  Column owned;
  const Column* borrowed = nullptr;
  size_t offset = 0;  // first borrowed row (row-range morsel batches)
  std::vector<Value> boxed;  // used only when mixed
  bool mixed = false;
  bool is_const = false;

  const Column& col() const { return borrowed != nullptr ? *borrowed : owned; }
  /// Storage type; only meaningful when !mixed (callers branch on mixed
  /// before dispatching typed lanes).
  TypeId type() const { return col().type(); }
  size_t pos(size_t k) const { return is_const ? 0 : offset + k; }
  bool IsNull(size_t k) const {
    return mixed ? boxed[pos(k)].is_null() : col().IsNull(pos(k));
  }
  Value At(size_t k) const {
    return mixed ? boxed[pos(k)] : col().Get(pos(k));
  }
  double Num(size_t k) const {
    return mixed ? boxed[pos(k)].AsDouble() : col().GetNumeric(pos(k));
  }
  int64_t IntRaw(size_t k) const { return col().GetInt(pos(k)); }
  /// Value::AsInt semantics over the raw storage (doubles truncate).
  int64_t AsIntAt(size_t k) const {
    if (mixed) return boxed[pos(k)].AsInt();
    const Column& c = col();
    switch (c.type()) {
      case TypeId::kBool:
      case TypeId::kInt64: return c.GetInt(pos(k));
      case TypeId::kDouble: return static_cast<int64_t>(c.GetDouble(pos(k)));
      default: return 0;
    }
  }
};

/// Builds a one-row column holding `v` with its exact type (Column::Append
/// would fold Bool into Int64, losing Value-level semantics).
Column TypedSingleton(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return Column::FromData(TypeId::kNull, {}, {}, {}, {1});
    case TypeId::kBool:
    case TypeId::kInt64:
      return Column::FromData(v.type(), {v.AsInt()}, {}, {}, {});
    case TypeId::kDouble:
      return Column::FromData(TypeId::kDouble, {}, {v.AsDouble()}, {}, {});
    case TypeId::kString:
      return Column::FromData(TypeId::kString, {}, {}, {v.AsString()}, {});
  }
  return Column();
}

Vec ConstVec(const Value& v) {
  Vec x;
  x.owned = TypedSingleton(v);
  x.is_const = true;
  return x;
}

/// Wraps per-row evaluation results: a typed column when the non-null value
/// types are uniform, a boxed mixed vector otherwise.
Vec VecFromValues(std::vector<Value> vals) {
  TypeId t = TypeId::kNull;
  bool uniform = true;
  for (const Value& v : vals) {
    if (v.is_null()) continue;
    if (t == TypeId::kNull) {
      t = v.type();
    } else if (v.type() != t) {
      uniform = false;
      break;
    }
  }
  Vec out;
  if (!uniform) {
    out.mixed = true;
    out.boxed = std::move(vals);
    return out;
  }
  const size_t n = vals.size();
  std::vector<uint8_t> nulls;
  auto mark_null = [&](size_t k) {
    if (nulls.empty()) nulls.assign(n, 0);
    nulls[k] = 1;
  };
  switch (t) {
    case TypeId::kNull: {  // every value NULL
      out.owned =
          Column::FromData(TypeId::kNull, {}, {}, {},
                           std::vector<uint8_t>(n, 1));
      return out;
    }
    case TypeId::kBool:
    case TypeId::kInt64: {
      std::vector<int64_t> data(n, 0);
      for (size_t k = 0; k < n; ++k) {
        if (vals[k].is_null()) mark_null(k);
        else data[k] = vals[k].AsInt();
      }
      out.owned = Column::FromData(t, std::move(data), {}, {},
                                   std::move(nulls));
      return out;
    }
    case TypeId::kDouble: {
      std::vector<double> data(n, 0.0);
      for (size_t k = 0; k < n; ++k) {
        if (vals[k].is_null()) mark_null(k);
        else data[k] = vals[k].AsDouble();
      }
      out.owned = Column::FromData(TypeId::kDouble, {}, std::move(data), {},
                                   std::move(nulls));
      return out;
    }
    case TypeId::kString: {
      std::vector<std::string> data(n);
      for (size_t k = 0; k < n; ++k) {
        if (vals[k].is_null()) mark_null(k);
        else data[k] = vals[k].AsString();
      }
      out.owned = Column::FromData(TypeId::kString, {}, {}, std::move(data),
                                   std::move(nulls));
      return out;
    }
  }
  out.mixed = true;
  out.boxed = std::move(vals);
  return out;
}

bool IsNumericType(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt64 || t == TypeId::kDouble;
}

int ThreeWayI(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
int ThreeWayD(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

bool OpHolds(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq: return cmp == 0;
    case BinaryOp::kNe: return cmp != 0;
    case BinaryOp::kLt: return cmp < 0;
    case BinaryOp::kLe: return cmp <= 0;
    case BinaryOp::kGt: return cmp > 0;
    case BinaryOp::kGe: return cmp >= 0;
    default: return false;
  }
}

// ---- Raw numeric operand views --------------------------------------------
// Resolving a Vec to a contiguous array (converting Int64/Bool storage to
// doubles once when a double lane needs it) hoists every per-element branch
// out of the kernels below, which then auto-vectorize.

struct NumView {
  const double* data = nullptr;
  std::vector<double> storage;  // owns converted data when needed
  double cval = 0.0;
  const uint8_t* nulls = nullptr;
  bool is_const = false;
  bool const_null = false;
};

NumView ResolveNum(const Vec& v, size_t n) {
  NumView o;
  if (v.is_const) {
    o.is_const = true;
    o.const_null = v.IsNull(0);
    if (!o.const_null) o.cval = v.Num(0);
    return o;
  }
  const Column& c = v.col();
  const uint8_t* nulls = c.NullData();
  o.nulls = nulls == nullptr ? nullptr : nulls + v.offset;
  if (c.type() == TypeId::kDouble) {
    o.data = c.DoubleData() + v.offset;
  } else {  // kInt64 / kBool
    const int64_t* p = c.IntData() + v.offset;
    o.storage.resize(n);
    for (size_t k = 0; k < n; ++k) o.storage[k] = static_cast<double>(p[k]);
    o.data = o.storage.data();
  }
  return o;
}

struct IntView {
  const int64_t* data = nullptr;
  int64_t cval = 0;
  const uint8_t* nulls = nullptr;
  bool is_const = false;
  bool const_null = false;
};

IntView ResolveInt(const Vec& v) {
  IntView o;
  if (v.is_const) {
    o.is_const = true;
    o.const_null = v.IsNull(0);
    if (!o.const_null) o.cval = v.IntRaw(0);
    return o;
  }
  o.data = v.col().IntData() + v.offset;
  const uint8_t* nulls = v.col().NullData();
  o.nulls = nulls == nullptr ? nullptr : nulls + v.offset;
  return o;
}

/// Comparison inner loop, specialized on operand shapes (vector/constant)
/// and the presence of null masks.
template <typename T, typename View, typename Cmp>
void CmpKernel(int8_t* t, size_t n, const View& a, const View& b, Cmp cmp) {
  const uint8_t* an = a.nulls;
  const uint8_t* bn = b.nulls;
  auto run = [&](auto ga, auto gb) {
    if (an == nullptr && bn == nullptr) {
      for (size_t k = 0; k < n; ++k) t[k] = cmp(ga(k), gb(k)) ? 1 : 0;
    } else {
      for (size_t k = 0; k < n; ++k) {
        t[k] = ((an != nullptr && an[k] != 0) || (bn != nullptr && bn[k] != 0))
                   ? -1
                   : (cmp(ga(k), gb(k)) ? 1 : 0);
      }
    }
  };
  const T ac = static_cast<T>(a.cval), bc = static_cast<T>(b.cval);
  if (a.is_const && b.is_const) {
    run([&](size_t) { return ac; }, [&](size_t) { return bc; });
  } else if (a.is_const) {
    run([&](size_t) { return ac; }, [&](size_t k) { return b.data[k]; });
  } else if (b.is_const) {
    run([&](size_t k) { return a.data[k]; }, [&](size_t) { return bc; });
  } else {
    run([&](size_t k) { return a.data[k]; }, [&](size_t k) { return b.data[k]; });
  }
}

template <typename T, typename View>
void CmpOpDispatch(BinaryOp op, int8_t* t, size_t n, const View& a,
                   const View& b) {
  // Each predicate is phrased as OpHolds(op, three-way(x, y)) with the
  // three-way built from < and > only, exactly like Value::Compare /
  // ThreeWayD — so NaN operands (which compare neither < nor >) land in the
  // cmp == 0 bucket here too, and the lanes cannot drift from the row
  // interpreter. NaN-compares-equal deviates from IEEE/standard SQL, but it
  // is this engine's deliberate repo-wide convention (Value::Compare
  // ordering, ValueGroupKey grouping, JoinKeysEqual — "NaN joins NaN"), and
  // the row interpreter is the semantic reference the differential fuzz
  // enforces. For Int64 the forms are identical to the raw operators.
  switch (op) {
    case BinaryOp::kEq:
      CmpKernel<T>(t, n, a, b, [](T x, T y) { return !(x < y) && !(x > y); });
      break;
    case BinaryOp::kNe:
      CmpKernel<T>(t, n, a, b, [](T x, T y) { return x < y || x > y; });
      break;
    case BinaryOp::kLt:
      CmpKernel<T>(t, n, a, b, [](T x, T y) { return x < y; });
      break;
    case BinaryOp::kLe:
      CmpKernel<T>(t, n, a, b, [](T x, T y) { return !(x > y); });
      break;
    case BinaryOp::kGt:
      CmpKernel<T>(t, n, a, b, [](T x, T y) { return x > y; });
      break;
    case BinaryOp::kGe:
      CmpKernel<T>(t, n, a, b, [](T x, T y) { return !(x < y); });
      break;
    default:
      break;
  }
}

/// Arithmetic inner loop (add/sub/mul); null propagation via mask merge.
template <typename T, typename View, typename F>
void ArithKernel(T* out, uint8_t* nulls, size_t n, const View& a,
                 const View& b, F f) {
  const uint8_t* an = a.nulls;
  const uint8_t* bn = b.nulls;
  auto run = [&](auto ga, auto gb) {
    if (nulls == nullptr) {
      for (size_t k = 0; k < n; ++k) out[k] = f(ga(k), gb(k));
    } else {
      for (size_t k = 0; k < n; ++k) {
        if ((an != nullptr && an[k] != 0) || (bn != nullptr && bn[k] != 0)) {
          nulls[k] = 1;
        } else {
          out[k] = f(ga(k), gb(k));
        }
      }
    }
  };
  const T ac = static_cast<T>(a.cval), bc = static_cast<T>(b.cval);
  if (a.is_const && b.is_const) {
    run([&](size_t) { return ac; }, [&](size_t) { return bc; });
  } else if (a.is_const) {
    run([&](size_t) { return ac; }, [&](size_t k) { return b.data[k]; });
  } else if (b.is_const) {
    run([&](size_t k) { return a.data[k]; }, [&](size_t) { return bc; });
  } else {
    run([&](size_t k) { return a.data[k]; }, [&](size_t k) { return b.data[k]; });
  }
}

/// Value::Compare over raw storage; both sides must be non-null at k.
int CmpAt(const Vec& l, const Vec& r, size_t k) {
  if (l.mixed || r.mixed) return l.At(k).Compare(r.At(k));
  const TypeId lt = l.type(), rt = r.type();
  if (lt == TypeId::kInt64 && rt == TypeId::kInt64) {
    return ThreeWayI(l.IntRaw(k), r.IntRaw(k));
  }
  if (IsNumericType(lt) && IsNumericType(rt)) {
    return ThreeWayD(l.Num(k), r.Num(k));
  }
  if (lt == TypeId::kString && rt == TypeId::kString) {
    const std::string& a = l.col().GetString(l.pos(k));
    const std::string& b = r.col().GetString(r.pos(k));
    return a.compare(b);
  }
  return l.At(k).Compare(r.At(k));
}

Result<Vec> EvalVec(const Expr& e, const Batch& b);
Result<TriVec> EvalTri(const Expr& e, const Batch& b);

/// Converts a materialized vector into tri-state booleans with Value::AsBool
/// semantics (only Bool/Int64 storage can be true; doubles/strings are
/// false because Value keeps them out of the integer slot).
TriVec VecToTri(const Vec& v, size_t n) {
  TriVec t(n);
  if (v.mixed) {
    for (size_t k = 0; k < n; ++k) {
      const Value val = v.At(k);
      t[k] = val.is_null() ? -1 : (val.AsBool() ? 1 : 0);
    }
    return t;
  }
  switch (v.type()) {
    case TypeId::kNull:
      std::fill(t.begin(), t.end(), static_cast<int8_t>(-1));
      break;
    case TypeId::kBool:
    case TypeId::kInt64:
      for (size_t k = 0; k < n; ++k) {
        t[k] = v.IsNull(k) ? -1 : (v.IntRaw(k) != 0 ? 1 : 0);
      }
      break;
    case TypeId::kDouble:
    case TypeId::kString:
      for (size_t k = 0; k < n; ++k) t[k] = v.IsNull(k) ? -1 : 0;
      break;
  }
  return t;
}

/// Materializes tri-state booleans as a nullable Bool column vector.
Vec TriToVec(const TriVec& t) {
  const size_t n = t.size();
  std::vector<int64_t> ints(n);
  std::vector<uint8_t> nulls;
  for (size_t k = 0; k < n; ++k) {
    if (t[k] < 0) {
      if (nulls.empty()) nulls.assign(n, 0);
      nulls[k] = 1;
      ints[k] = 0;
    } else {
      ints[k] = t[k];
    }
  }
  Vec v;
  v.owned = Column::FromData(TypeId::kBool, std::move(ints), {}, {},
                             std::move(nulls));
  return v;
}

/// Comparison kernels (kEq..kGe): type-specialized lanes, NULL -> unknown.
TriVec CompareVecs(BinaryOp op, const Vec& l, const Vec& r, size_t n) {
  TriVec t(n);
  if (l.mixed || r.mixed) {
    for (size_t k = 0; k < n; ++k) {
      t[k] = (l.IsNull(k) || r.IsNull(k))
                 ? -1
                 : (OpHolds(op, l.At(k).Compare(r.At(k))) ? 1 : 0);
    }
    return t;
  }
  const TypeId lt = l.type(), rt = r.type();
  if (lt == TypeId::kNull || rt == TypeId::kNull) {
    std::fill(t.begin(), t.end(), static_cast<int8_t>(-1));
    return t;
  }
  if (lt == TypeId::kInt64 && rt == TypeId::kInt64) {
    IntView a = ResolveInt(l), bview = ResolveInt(r);
    if (a.const_null || bview.const_null) {
      std::fill(t.begin(), t.end(), static_cast<int8_t>(-1));
      return t;
    }
    CmpOpDispatch<int64_t>(op, t.data(), n, a, bview);
    return t;
  }
  if (IsNumericType(lt) && IsNumericType(rt)) {
    NumView a = ResolveNum(l, n), bview = ResolveNum(r, n);
    if (a.const_null || bview.const_null) {
      std::fill(t.begin(), t.end(), static_cast<int8_t>(-1));
      return t;
    }
    CmpOpDispatch<double>(op, t.data(), n, a, bview);
    return t;
  }
  if (lt == TypeId::kString && rt == TypeId::kString) {
    for (size_t k = 0; k < n; ++k) {
      t[k] = (l.IsNull(k) || r.IsNull(k))
                 ? -1
                 : (OpHolds(op, l.col().GetString(l.pos(k)).compare(
                                    r.col().GetString(r.pos(k))))
                        ? 1
                        : 0);
    }
    return t;
  }
  // Mixed string/numeric: rare; box per element (type-ordered compare).
  for (size_t k = 0; k < n; ++k) {
    t[k] = (l.IsNull(k) || r.IsNull(k))
               ? -1
               : (OpHolds(op, l.At(k).Compare(r.At(k))) ? 1 : 0);
  }
  return t;
}

TriVec LikeVecs(const Vec& l, const Vec& r, size_t n) {
  TriVec t(n);
  // The pattern is almost always a literal: render it once.
  std::string const_pattern;
  const bool pattern_const = r.is_const && !r.IsNull(0);
  if (pattern_const) const_pattern = r.At(0).ToString();
  for (size_t k = 0; k < n; ++k) {
    if (l.IsNull(k) || r.IsNull(k)) {
      t[k] = -1;
      continue;
    }
    const std::string text = l.type() == TypeId::kString
                                 ? l.col().GetString(l.pos(k))
                                 : l.At(k).ToString();
    t[k] = LikeMatch(text, pattern_const ? const_pattern : r.At(k).ToString())
               ? 1
               : 0;
  }
  return t;
}

/// Row-interpreter fallback for node types without a batch kernel (most
/// scalar functions, mixed-type CASE): evaluates the subtree per selected
/// row. rand-family draws inside the subtree are row-addressed, so the
/// fallback and the batch kernels produce identical values regardless of
/// which path a node takes.
Result<Vec> RowFallback(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  std::vector<Value> vals;
  vals.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    RowCtx ctx{b.table, b.RowAt(k), b.rand_seed, b.row_id_offset};
    auto r = EvalExpr(e, ctx);
    if (!r.ok()) return r.status();
    vals.push_back(std::move(r).ValueOrDie());
  }
  return VecFromValues(std::move(vals));
}

Result<Vec> ColumnRefVec(const Expr& e, const Batch& b) {
  if (e.bound_column < 0) {
    return Status::Internal("unbound column reference: " + e.name);
  }
  const Column& src = b.table->column(static_cast<size_t>(e.bound_column));
  Vec v;
  if (b.sel == nullptr) {
    // Whole-table batch or row-range morsel: zero-copy reference, with the
    // range start carried as a lane offset.
    v.borrowed = &src;
    v.offset = b.range_begin;
  } else {
    // Selection (possibly a morsel slice of it): gather the referenced rows.
    v.owned.AppendSelected(src, b.sel->data() + b.range_begin, b.size());
  }
  return v;
}

Result<Vec> EvalArith(const Expr& e, const Batch& b) {
  auto lv = EvalVec(*e.args[0], b);
  if (!lv.ok()) return lv.status();
  auto rv = EvalVec(*e.args[1], b);
  if (!rv.ok()) return rv.status();
  const Vec& l = lv.value();
  const Vec& r = rv.value();
  const size_t n = b.size();
  if (l.mixed || r.mixed) {
    // Per-row types differ: combine through the shared Value-level kernel.
    std::vector<Value> vals;
    vals.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      auto v = ApplyBinaryOp(e.binary_op, l.At(k), r.At(k));
      if (!v.ok()) return v.status();
      vals.push_back(std::move(v).ValueOrDie());
    }
    return VecFromValues(std::move(vals));
  }
  if (l.type() == TypeId::kNull || r.type() == TypeId::kNull) {
    return ConstVec(Value::Null());
  }

  std::vector<uint8_t> nulls;
  auto set_null = [&](size_t k) {
    if (nulls.empty()) nulls.assign(n, 0);
    nulls[k] = 1;
  };

  const bool numeric =
      IsNumericType(l.type()) && IsNumericType(r.type());
  switch (e.binary_op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      const BinaryOp op = e.binary_op;
      if (l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64) {
        IntView a = ResolveInt(l), c = ResolveInt(r);
        std::vector<int64_t> out(n, 0);
        if (a.nulls != nullptr || c.nulls != nullptr) nulls.assign(n, 0);
        uint8_t* np = nulls.empty() ? nullptr : nulls.data();
        if (op == BinaryOp::kAdd) {
          ArithKernel<int64_t>(out.data(), np, n, a, c,
                               [](int64_t x, int64_t y) { return x + y; });
        } else if (op == BinaryOp::kSub) {
          ArithKernel<int64_t>(out.data(), np, n, a, c,
                               [](int64_t x, int64_t y) { return x - y; });
        } else {
          ArithKernel<int64_t>(out.data(), np, n, a, c,
                               [](int64_t x, int64_t y) { return x * y; });
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                   std::move(nulls));
        return v;
      }
      if (numeric) {
        NumView a = ResolveNum(l, n), c = ResolveNum(r, n);
        std::vector<double> out(n, 0.0);
        if (a.nulls != nullptr || c.nulls != nullptr) nulls.assign(n, 0);
        uint8_t* np = nulls.empty() ? nullptr : nulls.data();
        if (op == BinaryOp::kAdd) {
          ArithKernel<double>(out.data(), np, n, a, c,
                              [](double x, double y) { return x + y; });
        } else if (op == BinaryOp::kSub) {
          ArithKernel<double>(out.data(), np, n, a, c,
                              [](double x, double y) { return x - y; });
        } else {
          ArithKernel<double>(out.data(), np, n, a, c,
                              [](double x, double y) { return x * y; });
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                   std::move(nulls));
        return v;
      }
      // String operands read 0 through Num, like Value::AsDouble.
      std::vector<double> out(n);
      for (size_t k = 0; k < n; ++k) {
        if (l.IsNull(k) || r.IsNull(k)) {
          set_null(k);
          continue;
        }
        const double a = l.Num(k), c = r.Num(k);
        out[k] = e.binary_op == BinaryOp::kAdd
                     ? a + c
                     : (e.binary_op == BinaryOp::kSub ? a - c : a * c);
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                 std::move(nulls));
      return v;
    }
    case BinaryOp::kDiv: {
      std::vector<double> out(n, 0.0);
      if (numeric) {
        NumView a = ResolveNum(l, n), c = ResolveNum(r, n);
        const uint8_t* an = a.nulls;
        const uint8_t* cn = c.nulls;
        auto run = [&](auto ga, auto gb) {
          for (size_t k = 0; k < n; ++k) {
            const double y = gb(k);
            if ((an != nullptr && an[k] != 0) ||
                (cn != nullptr && cn[k] != 0) || y == 0.0) {
              set_null(k);
            } else {
              out[k] = ga(k) / y;
            }
          }
        };
        if (a.is_const && c.is_const) {
          run([&](size_t) { return a.cval; }, [&](size_t) { return c.cval; });
        } else if (a.is_const) {
          run([&](size_t) { return a.cval; },
              [&](size_t k) { return c.data[k]; });
        } else if (c.is_const) {
          run([&](size_t k) { return a.data[k]; },
              [&](size_t) { return c.cval; });
        } else {
          run([&](size_t k) { return a.data[k]; },
              [&](size_t k) { return c.data[k]; });
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                   std::move(nulls));
        return v;
      }
      for (size_t k = 0; k < n; ++k) {
        const double c = r.Num(k);
        if (l.IsNull(k) || r.IsNull(k) || c == 0.0) {
          set_null(k);
          continue;
        }
        out[k] = l.Num(k) / c;
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                 std::move(nulls));
      return v;
    }
    case BinaryOp::kMod: {
      std::vector<int64_t> out(n);
      for (size_t k = 0; k < n; ++k) {
        const int64_t c = r.AsIntAt(k);
        if (l.IsNull(k) || r.IsNull(k) || c == 0) {
          set_null(k);
          continue;
        }
        out[k] = l.AsIntAt(k) % c;
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                 std::move(nulls));
      return v;
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Vec> EvalCase(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  std::vector<TriVec> whens;
  whens.reserve(e.case_whens.size());
  for (const auto& w : e.case_whens) {
    auto t = EvalTri(*w, b);
    if (!t.ok()) return t.status();
    whens.push_back(std::move(t).ValueOrDie());
  }
  std::vector<Vec> thens;
  thens.reserve(e.case_thens.size());
  for (const auto& th : e.case_thens) {
    auto v = EvalVec(*th, b);
    if (!v.ok()) return v.status();
    thens.push_back(std::move(v).ValueOrDie());
  }
  Vec else_vec = ConstVec(Value::Null());
  if (e.case_else) {
    auto v = EvalVec(*e.case_else, b);
    if (!v.ok()) return v.status();
    else_vec = std::move(v).ValueOrDie();
  }
  // Pick each row's source branch; VecFromValues keeps a typed column when
  // the branches agree and boxes the raw Values when they don't.
  std::vector<Value> vals;
  vals.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    const Vec* src = &else_vec;
    for (size_t i = 0; i < whens.size(); ++i) {
      if (whens[i][k] == 1) {
        src = &thens[i];
        break;
      }
    }
    vals.push_back(src->At(k));
  }
  return VecFromValues(std::move(vals));
}

Result<TriVec> EvalTri(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  switch (e.kind) {
    case ExprKind::kBinary: {
      if (e.binary_op == BinaryOp::kAnd) {
        // Selection-aware conjunction: a false left operand decides the row,
        // so the right operand only needs the rows where the left came out
        // true or unknown — like the row interpreter's short-circuit, but
        // batch-at-a-time over a sub-selection. Evaluating the sub-batch
        // costs a gather per column reference, so it pays off only when the
        // left side is selective; above the cutover the contiguous
        // whole-batch lanes win and the extra rows are simply masked out.
        auto lt = EvalTri(*e.args[0], b);
        if (!lt.ok()) return lt.status();
        TriVec& l = lt.value();
        size_t surviving = 0;
        for (size_t k = 0; k < n; ++k) surviving += (l[k] != 0) ? 1 : 0;
        if (surviving == 0) return std::move(l);  // all false
        auto combine = [](int8_t lv, int8_t rv) -> int8_t {
          return (lv == 0 || rv == 0) ? 0 : (lv == 1 && rv == 1) ? 1 : -1;
        };
        if (surviving * 4 > n) {
          auto rt = EvalTri(*e.args[1], b);
          if (!rt.ok()) return rt.status();
          const TriVec& r = rt.value();
          for (size_t k = 0; k < n; ++k) l[k] = combine(l[k], r[k]);
          return std::move(l);
        }
        SelVector survivors;
        survivors.reserve(surviving);
        for (size_t k = 0; k < n; ++k) {
          if (l[k] != 0) survivors.push_back(b.RowAt(k));
        }
        Batch sub{b.table,          &survivors, b.rand_seed, 0,
                  Batch::kWholeTable, b.row_id_offset};
        auto rt = EvalTri(*e.args[1], sub);
        if (!rt.ok()) return rt.status();
        const TriVec& r = rt.value();
        size_t i = 0;
        for (size_t k = 0; k < n; ++k) {
          if (l[k] != 0) l[k] = combine(l[k], r[i++]);
        }
        return std::move(l);
      }
      if (e.binary_op == BinaryOp::kOr) {
        // Kleene logic over full child masks; data-dependent NULLs
        // (div-by-zero etc.) are values, not errors, so results agree with
        // the short-circuiting row interpreter.
        auto lt = EvalTri(*e.args[0], b);
        if (!lt.ok()) return lt.status();
        auto rt = EvalTri(*e.args[1], b);
        if (!rt.ok()) return rt.status();
        TriVec& l = lt.value();
        const TriVec& r = rt.value();
        for (size_t k = 0; k < n; ++k) {
          l[k] = (l[k] == 1 || r[k] == 1) ? 1
                 : (l[k] == 0 && r[k] == 0) ? 0
                                            : -1;
        }
        return std::move(l);
      }
      if (e.binary_op == BinaryOp::kLike) {
        auto lv = EvalVec(*e.args[0], b);
        if (!lv.ok()) return lv.status();
        auto rv = EvalVec(*e.args[1], b);
        if (!rv.ok()) return rv.status();
        return LikeVecs(lv.value(), rv.value(), n);
      }
      if (e.binary_op == BinaryOp::kEq || e.binary_op == BinaryOp::kNe ||
          e.binary_op == BinaryOp::kLt || e.binary_op == BinaryOp::kLe ||
          e.binary_op == BinaryOp::kGt || e.binary_op == BinaryOp::kGe) {
        auto lv = EvalVec(*e.args[0], b);
        if (!lv.ok()) return lv.status();
        auto rv = EvalVec(*e.args[1], b);
        if (!rv.ok()) return rv.status();
        return CompareVecs(e.binary_op, lv.value(), rv.value(), n);
      }
      break;  // arithmetic: generic path below
    }
    case ExprKind::kUnary: {
      if (e.unary_op == UnaryOp::kNot) {
        auto t = EvalTri(*e.args[0], b);
        if (!t.ok()) return t.status();
        TriVec& v = t.value();
        for (size_t k = 0; k < n; ++k) {
          if (v[k] >= 0) v[k] = static_cast<int8_t>(1 - v[k]);
        }
        return std::move(v);
      }
      break;
    }
    case ExprKind::kIsNull: {
      auto v = EvalVec(*e.args[0], b);
      if (!v.ok()) return v.status();
      TriVec t(n);
      for (size_t k = 0; k < n; ++k) {
        const bool isnull = v.value().IsNull(k);
        t[k] = (e.negated ? !isnull : isnull) ? 1 : 0;
      }
      return t;
    }
    case ExprKind::kBetween: {
      auto xv = EvalVec(*e.args[0], b);
      if (!xv.ok()) return xv.status();
      auto lov = EvalVec(*e.args[1], b);
      if (!lov.ok()) return lov.status();
      auto hiv = EvalVec(*e.args[2], b);
      if (!hiv.ok()) return hiv.status();
      const Vec& x = xv.value();
      const Vec& lo = lov.value();
      const Vec& hi = hiv.value();
      TriVec t(n);
      for (size_t k = 0; k < n; ++k) {
        if (x.IsNull(k) || lo.IsNull(k) || hi.IsNull(k)) {
          t[k] = -1;
          continue;
        }
        const bool in = CmpAt(x, lo, k) >= 0 && CmpAt(x, hi, k) <= 0;
        t[k] = (e.negated ? !in : in) ? 1 : 0;
      }
      return t;
    }
    case ExprKind::kInList: {
      auto xv = EvalVec(*e.args[0], b);
      if (!xv.ok()) return xv.status();
      std::vector<Vec> items;
      items.reserve(e.args.size() - 1);
      for (size_t i = 1; i < e.args.size(); ++i) {
        auto iv = EvalVec(*e.args[i], b);
        if (!iv.ok()) return iv.status();
        items.push_back(std::move(iv).ValueOrDie());
      }
      const Vec& x = xv.value();
      TriVec t(n);
      for (size_t k = 0; k < n; ++k) {
        if (x.IsNull(k)) {
          t[k] = -1;
          continue;
        }
        bool hit = false, any_null = false;
        for (const Vec& item : items) {
          if (item.IsNull(k)) {
            any_null = true;
            continue;
          }
          if (CmpAt(x, item, k) == 0) {
            hit = true;
            break;
          }
        }
        t[k] = hit ? (e.negated ? 0 : 1) : (any_null ? -1 : (e.negated ? 1 : 0));
      }
      return t;
    }
    default:
      break;
  }
  auto v = EvalVec(e, b);
  if (!v.ok()) return v.status();
  return VecToTri(v.value(), n);
}

Result<Vec> EvalVec(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  switch (e.kind) {
    case ExprKind::kLiteral:
      return ConstVec(e.literal);
    case ExprKind::kColumnRef:
      return ColumnRefVec(e, b);
    case ExprKind::kStar:
      return Status::Internal("'*' outside count(*) / select list");
    case ExprKind::kUnary: {
      if (e.unary_op == UnaryOp::kNot) {
        auto t = EvalTri(e, b);
        if (!t.ok()) return t.status();
        return TriToVec(t.value());
      }
      auto av = EvalVec(*e.args[0], b);
      if (!av.ok()) return av.status();
      const Vec& a = av.value();
      if (a.mixed) {
        std::vector<Value> vals;
        vals.reserve(n);
        for (size_t k = 0; k < n; ++k) vals.push_back(NegateValue(a.At(k)));
        return VecFromValues(std::move(vals));
      }
      if (a.type() == TypeId::kNull) return ConstVec(Value::Null());
      std::vector<uint8_t> nulls;
      auto set_null = [&](size_t k) {
        if (nulls.empty()) nulls.assign(n, 0);
        nulls[k] = 1;
      };
      if (a.type() == TypeId::kInt64) {
        std::vector<int64_t> out(n);
        for (size_t k = 0; k < n; ++k) {
          if (a.IsNull(k)) {
            set_null(k);
            continue;
          }
          out[k] = -a.IntRaw(k);
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                   std::move(nulls));
        return v;
      }
      std::vector<double> out(n);
      for (size_t k = 0; k < n; ++k) {
        if (a.IsNull(k)) {
          set_null(k);
          continue;
        }
        out[k] = -a.Num(k);
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                 std::move(nulls));
      return v;
    }
    case ExprKind::kBinary: {
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArith(e, b);
        default: {
          auto t = EvalTri(e, b);
          if (!t.ok()) return t.status();
          return TriToVec(t.value());
        }
      }
    }
    case ExprKind::kFunction: {
      if (e.is_window || IsAggregateFunction(e.name)) {
        return Status::Internal("aggregate/window '" + e.name +
                                "' in row context");
      }
      // rand-family batch kernels (the variational-subsampling hot path:
      // __vdb_sid assignment and Bernoulli predicates). Each lane value is
      // the row-addressed draw CounterRandom(seed, row id, call site) — a
      // pure function of row identity, so the kernel, the row fallback, and
      // every morsel decomposition agree bit for bit.
      if (sql::IsRandFunctionExpr(e) && e.args.empty() &&
          !g_serial_rand_baseline) {
        const uint64_t site = static_cast<uint64_t>(e.rand_site);
        if (e.name == "rand_poisson") {
          std::vector<int64_t> out(n);
          for (size_t k = 0; k < n; ++k) {
            out[k] = PoissonOneFromUniform(
                CounterRandomDouble(b.rand_seed, b.RowIdAt(k), site));
          }
          Vec v;
          v.owned =
              Column::FromData(TypeId::kInt64, std::move(out), {}, {}, {});
          return v;
        }
        std::vector<double> out(n);
        for (size_t k = 0; k < n; ++k) {
          out[k] = CounterRandomDouble(b.rand_seed, b.RowIdAt(k), site);
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {}, {});
        return v;
      }
      // Unary numeric math (floor/ceil/abs/sqrt): typed lanes instead of a
      // per-row tree walk — floor() wraps every rand() in the rewritten sid
      // expression `1 + floor(rand() * b)`, so without this kernel the rand
      // kernel above would never be reached on the AQP hot path.
      if (e.args.size() == 1 &&
          (e.name == "floor" || e.name == "ceil" || e.name == "ceiling" ||
           e.name == "abs" || e.name == "sqrt") &&
          !PinnedSerialForBaseline(e)) {
        // The baseline hook row-interprets rand-bearing subtrees whole, as
        // the pre-row-addressed executor did with floor(rand() * b).
        auto av = EvalVec(*e.args[0], b);
        if (!av.ok()) return av.status();
        const Vec& a = av.value();
        if (!a.mixed && a.type() != TypeId::kString) {
          if (a.type() == TypeId::kNull) return ConstVec(Value::Null());
          std::vector<uint8_t> nulls;
          auto set_null = [&](size_t k) {
            if (nulls.empty()) nulls.assign(n, 0);
            nulls[k] = 1;
          };
          // abs over Int64 storage keeps the integer lane (matching
          // CallScalarFunction's Value::Int(std::abs(..)) semantics; Bool
          // values take the double lane there, so they do here too).
          if (e.name == "abs" && a.type() == TypeId::kInt64) {
            std::vector<int64_t> out(n, 0);
            for (size_t k = 0; k < n; ++k) {
              if (a.IsNull(k)) {
                set_null(k);
              } else {
                out[k] = std::abs(a.IntRaw(k));
              }
            }
            Vec v;
            v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                       std::move(nulls));
            return v;
          }
          if (e.name == "abs" || e.name == "sqrt") {
            std::vector<double> out(n, 0.0);
            const bool is_abs = e.name == "abs";
            for (size_t k = 0; k < n; ++k) {
              if (a.IsNull(k)) {
                set_null(k);
              } else {
                const double x = a.Num(k);
                out[k] = is_abs ? std::abs(x) : std::sqrt(x);
              }
            }
            Vec v;
            v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                       std::move(nulls));
            return v;
          }
          // floor/ceil return Int64, like the row interpreter.
          std::vector<int64_t> out(n, 0);
          const bool is_floor = e.name == "floor";
          for (size_t k = 0; k < n; ++k) {
            if (a.IsNull(k)) {
              set_null(k);
            } else {
              const double x = a.Num(k);
              out[k] = static_cast<int64_t>(is_floor ? std::floor(x)
                                                     : std::ceil(x));
            }
          }
          Vec v;
          v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                     std::move(nulls));
          return v;
        }
        // String/mixed operands: defer to the row interpreter's Value
        // semantics below.
      }
      // Universe-sample membership hash (the Fig. 11 hot path): batch kernel
      // over the evaluated argument instead of a per-row tree walk.
      if ((e.name == "verdict_hash" || e.name == "unit_hash") &&
          e.args.size() == 1) {
        auto av = EvalVec(*e.args[0], b);
        if (!av.ok()) return av.status();
        const Vec& a = av.value();
        std::vector<double> out(n);
        std::vector<uint8_t> nulls;
        for (size_t k = 0; k < n; ++k) {
          if (a.IsNull(k)) {
            if (nulls.empty()) nulls.assign(n, 0);
            nulls[k] = 1;
            continue;
          }
          out[k] = HashUnit(a.At(k));
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                   std::move(nulls));
        return v;
      }
      return RowFallback(e, b);
    }
    case ExprKind::kCase:
      return EvalCase(e, b);
    case ExprKind::kIsNull:
    case ExprKind::kInList:
    case ExprKind::kBetween: {
      auto t = EvalTri(e, b);
      if (!t.ok()) return t.status();
      return TriToVec(t.value());
    }
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      return Status::Internal("unresolved subquery reached the evaluator");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

Batch ViewBatch(const RowView& view, uint64_t rand_seed, size_t begin,
                size_t end) {
  if (!view.has_selection()) {
    return Batch{view.table().get(), nullptr, rand_seed,
                 view.range_begin() + begin, view.range_begin() + end};
  }
  return Batch{view.table().get(), &view.selection(), rand_seed, begin, end};
}

Batch ViewBatch(const RowView& view, uint64_t rand_seed) {
  return ViewBatch(view, rand_seed, 0, view.num_rows());
}

Result<Column> EvalExprBatch(const Expr& e, const Batch& batch) {
  auto rv = EvalVec(e, batch);
  if (!rv.ok()) return rv.status();
  Vec v = std::move(rv).ValueOrDie();
  const size_t n = batch.size();
  if (v.mixed) {
    // Heterogeneous per-row types coerce through Column::Append only here,
    // at the output boundary — the same place the row executor coerced.
    Column col;
    for (size_t k = 0; k < n; ++k) col.Append(v.boxed[k]);
    return col;
  }
  if (v.is_const) {
    // Broadcast the constant to the batch length.
    const Value c = v.At(0);
    switch (c.type()) {
      case TypeId::kNull:
        return Column::FromData(TypeId::kNull, {}, {}, {},
                                std::vector<uint8_t>(n, 1));
      case TypeId::kBool:
      case TypeId::kInt64:
        return Column::FromData(c.type(), std::vector<int64_t>(n, c.AsInt()),
                                {}, {}, {});
      case TypeId::kDouble:
        return Column::FromData(TypeId::kDouble, {},
                                std::vector<double>(n, c.AsDouble()), {}, {});
      case TypeId::kString:
        return Column::FromData(TypeId::kString, {}, {},
                                std::vector<std::string>(n, c.AsString()), {});
    }
    return Status::Internal("unhandled constant type");
  }
  if (v.borrowed != nullptr) {
    if (v.offset == 0 && v.borrowed->size() == n) {
      return *v.borrowed;  // whole-column reference
    }
    // Borrowed row-range slice: materialize only at the output boundary.
    Column out(v.borrowed->type());
    out.AppendRange(*v.borrowed, v.offset, n);
    return out;
  }
  return std::move(v.owned);
}

Status EvalPredicateBatch(const Expr& e, const Batch& batch, SelVector* out) {
  auto t = EvalTri(e, batch);
  if (!t.ok()) return t.status();
  const TriVec& tri = t.value();
  const size_t n = tri.size();
  for (size_t k = 0; k < n; ++k) {
    if (tri[k] == 1) out->push_back(batch.RowAt(k));
  }
  return Status::Ok();
}

void SetSerialRandBaselineForTest(bool enabled) {
  g_serial_rand_baseline = enabled;
}

Status EvalPredicateParallel(const Expr& e, const Table& table,
                             uint64_t rand_seed, int num_threads,
                             SelVector* out) {
  const size_t n = table.num_rows();
  if (n > RowView::kMaxRows) {
    // Explicit guard: selection entries are uint32_t, and 0xFFFFFFFF is the
    // join null-extension sentinel; silently truncated indices would alias
    // low rows.
    return Status::Unsupported(
        "selection vectors address at most 2^32 - 2 rows; input has " +
        std::to_string(n));
  }
  const size_t morsel = MorselRows();
  if (num_threads <= 1 || n <= morsel || PinnedSerialForBaseline(e)) {
    Batch batch{&table, nullptr, rand_seed};
    return EvalPredicateBatch(e, batch, out);
  }
  struct PredSlot {
    SelVector sel;
    Status status = Status::Ok();
  };
  auto slots = ParallelMorselMap<PredSlot>(
      n, num_threads, [&](PredSlot& slot, size_t begin, size_t end) {
        // rand-family draws are row-addressed, so every morsel addresses the
        // same (seed, row, site) triples the serial batch would.
        Batch batch{&table, nullptr, rand_seed, begin, end};
        slot.status = EvalPredicateBatch(e, batch, &slot.sel);
      });
  size_t total = 0;
  for (const PredSlot& slot : slots) {
    if (!slot.status.ok()) return slot.status;
    total += slot.sel.size();
  }
  out->reserve(out->size() + total);
  for (const PredSlot& slot : slots) {
    out->insert(out->end(), slot.sel.begin(), slot.sel.end());
  }
  return Status::Ok();
}

Status EvalPredicateView(const Expr& e, const RowView& view,
                         uint64_t rand_seed, int num_threads, SelVector* out) {
  const size_t n = view.num_rows();
  if (num_threads <= 1 || n <= MorselRows() || PinnedSerialForBaseline(e)) {
    Batch batch = ViewBatch(view, rand_seed);
    return EvalPredicateBatch(e, batch, out);
  }
  struct PredSlot {
    SelVector sel;
    Status status = Status::Ok();
  };
  auto slots = ParallelMorselMap<PredSlot>(
      n, num_threads, [&](PredSlot& slot, size_t begin, size_t end) {
        Batch batch = ViewBatch(view, rand_seed, begin, end);
        slot.status = EvalPredicateBatch(e, batch, &slot.sel);
      });
  size_t total = 0;
  for (const PredSlot& slot : slots) {
    if (!slot.status.ok()) return slot.status;
    total += slot.sel.size();
  }
  out->reserve(out->size() + total);
  for (const PredSlot& slot : slots) {
    out->insert(out->end(), slot.sel.begin(), slot.sel.end());
  }
  return Status::Ok();
}

Result<Column> EvalExprView(const Expr& e, const RowView& view,
                            uint64_t rand_seed, int num_threads) {
  const size_t n = view.num_rows();
  if (num_threads <= 1 || n <= MorselRows() || PinnedSerialForBaseline(e)) {
    // One whole-view batch. This also serves the empty view: the evaluator
    // still walks the tree, so the output column keeps its natural type and
    // empty results stay schema-complete.
    Batch batch = ViewBatch(view, rand_seed);
    return EvalExprBatch(e, batch);
  }
  struct ChunkSlot {
    Column col;
    Status status = Status::Ok();
  };
  auto slots = ParallelMorselMap<ChunkSlot>(
      n, num_threads, [&](ChunkSlot& slot, size_t begin, size_t end) {
        Batch batch = ViewBatch(view, rand_seed, begin, end);
        auto c = EvalExprBatch(e, batch);
        if (c.ok()) {
          slot.col = std::move(c).ValueOrDie();
        } else {
          slot.status = c.status();
        }
      });
  std::vector<Column> chunks;
  chunks.reserve(slots.size());
  for (ChunkSlot& slot : slots) {
    if (!slot.status.ok()) return slot.status;
    chunks.push_back(std::move(slot.col));
  }
  return Column::ConcatChunks(std::move(chunks));
}

// ---- pair-list predicate evaluation -----------------------------------------

Result<const std::vector<uint8_t>*> PairPredicateEvaluator::Eval(
    const sql::Expr& pred, const uint32_t* lrows, const uint32_t* rrows,
    size_t count, uint64_t row_id_base) {
  if (mask_pred_ != &pred) {
    // Gather only the combined-schema ordinals the predicate references;
    // streaming callers reuse one predicate, so this walk runs once.
    mask_pred_ = &pred;
    col_mask_.assign(left_.num_columns() + right_.num_columns(), 0);
    sql::AnyExprNode(pred, [&](const sql::Expr& n) {
      if (n.kind == sql::ExprKind::kColumnRef && n.bound_column >= 0 &&
          static_cast<size_t>(n.bound_column) < col_mask_.size()) {
        col_mask_[static_cast<size_t>(n.bound_column)] = 1;
      }
      return false;
    });
  }
  GatherJoinPairsInto(left_, lrows, right_, rrows, count, num_threads_,
                      &scratch_, &col_mask_);
  surviving_.clear();
  // Scratch rows are chunk-local; row_id_base lifts them onto the global
  // pair ordinal so rand-family draws are invariant to the chunking.
  Batch batch{&scratch_,          nullptr, rand_seed_, 0,
              Batch::kWholeTable, row_id_base};
  VDB_RETURN_IF_ERROR(EvalPredicateBatch(pred, batch, &surviving_));
  pass_.assign(count, 0);
  for (uint32_t s : surviving_) pass_[s] = 1;
  return const_cast<const std::vector<uint8_t>*>(&pass_);
}

Status FilterJoinPairs(const sql::Expr& pred, JoinPairView* pairs,
                       uint64_t rand_seed, int num_threads) {
  constexpr size_t kChunk = 1 << 16;
  const size_t n = pairs->num_pairs();
  PairPredicateEvaluator eval(*pairs->left(), *pairs->right(), rand_seed,
                              num_threads);
  // Survivors stream straight into fresh pair lists (never positions into
  // the old list, which could exceed the uint32 index range). `begin` is the
  // global pair ordinal — the row this pair would occupy in the materialized
  // join — so pushed-down rand() draws match the post-gather WHERE path.
  SelVector out_l, out_r;
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t end = std::min(n, begin + kChunk);
    auto mask = eval.Eval(pred, pairs->lrows().data() + begin,
                          pairs->rrows().data() + begin, end - begin, begin);
    if (!mask.ok()) return mask.status();
    const std::vector<uint8_t>& pass = *mask.value();
    for (size_t i = 0; i < end - begin; ++i) {
      if (pass[i] != 0) {
        out_l.push_back(pairs->lrows()[begin + i]);
        out_r.push_back(pairs->rrows()[begin + i]);
      }
    }
  }
  *pairs = JoinPairView(pairs->left(), pairs->right(), std::move(out_l),
                        std::move(out_r));
  return Status::Ok();
}

}  // namespace vdb::engine
