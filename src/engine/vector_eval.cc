#include "engine/vector_eval.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "engine/expr_eval.h"
#include "engine/functions.h"
#include "engine/kernels/kernels.h"

namespace vdb::engine {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

namespace {

/// Test/bench baseline switch (SetSerialRandBaselineForTest): reproduces the
/// pre-row-addressed executor, where rand-family expressions had no batch
/// kernel and pinned their queries serial.
// Test hook: atomic (relaxed) — tests write between queries while pool
// workers may still read; see docs/INVARIANTS.md (test-hook contract).
std::atomic<bool> g_serial_rand_baseline{false};

/// True when the baseline hook demands the old serial pinning for `e`.
bool PinnedSerialForBaseline(const Expr& e) {
  return g_serial_rand_baseline.load(std::memory_order_relaxed) &&
         sql::ContainsRandFunction(e);
}

using kernels::Bitmap;

/// Tri-state predicate mask over a batch, one BIT per row in two
/// word-addressed bitmaps (replacing the old byte-per-row int8 vector):
///   known bit set  -> the predicate value is not NULL
///   truth bit set  -> the predicate value is TRUE (truth is a subset of
///                     known; a set truth bit implies a set known bit)
/// so NULL = known clear, FALSE = known set / truth clear, TRUE = both set.
/// Both bitmaps keep the zeroed-tail invariant (Bitmap), which makes
/// whole-word Kleene combines and popcount-based survivor counting safe
/// without masking anywhere but the final word.
struct TriMask {
  Bitmap truth;
  Bitmap known;

  size_t size() const { return truth.bits(); }

  /// Every row NULL; the state scalar fill loops start from (SetTrue /
  /// SetFalse flip individual rows known-ward).
  void ResetNull(size_t n) {
    truth.ResetZero(n);
    known.ResetZero(n);
  }
  void SetTrue(size_t k) {
    truth.Set(k);
    known.Set(k);
  }
  void SetFalse(size_t k) { known.Set(k); }
  /// From an int8 tri-state value (-1 NULL / 0 false / 1 true), starting
  /// from the ResetNull state.
  void SetTri(size_t k, int8_t v) {
    if (v >= 0) {
      known.Set(k);
      if (v != 0) truth.Set(k);
    }
  }
  bool IsTrue(size_t k) const { return truth.Test(k); }
  bool IsKnown(size_t k) const { return known.Test(k); }

  /// Rows that are NOT known-false (true or NULL) — the rows an AND's right
  /// operand still has to decide. Counted via known&~truth, whose tail is
  /// zero, so no masking is needed.
  size_t CountNotFalse() const {
    size_t false_rows = 0;
    for (size_t w = 0; w < truth.num_words(); ++w) {
      false_rows += static_cast<size_t>(
          __builtin_popcountll(known.word(w) & ~truth.word(w)));
    }
    return size() - false_rows;
  }
  /// One word of the not-false row set, tail-masked (the ~known complement
  /// raises the tail bits, unlike every other combine here).
  uint64_t NotFalseWord(size_t w) const {
    uint64_t nf = truth.word(w) | ~known.word(w);
    const size_t tail = truth.bits() & 63;
    if (tail != 0 && w + 1 == truth.num_words()) {
      nf &= ~uint64_t{0} >> (64 - tail);
    }
    return nf;
  }
};

/// known-mask construction from up to two byte null masks: known = no input
/// null. Routed through the bytes->bits kernel; `scratch` holds the second
/// mask's bits when both sides carry nulls.
void KnownFromNulls(const uint8_t* an, const uint8_t* bn, size_t n,
                    Bitmap* known, Bitmap* scratch) {
  if (an == nullptr && bn == nullptr) {
    known->ResetOnes(n);
    return;
  }
  known->ResetForOverwrite(n);
  kernels::Ops().bytes_nonzero_bits(an != nullptr ? an : bn, n,
                                    known->words());
  if (an != nullptr && bn != nullptr) {
    scratch->ResetForOverwrite(n);
    kernels::Ops().bytes_nonzero_bits(bn, n, scratch->words());
    for (size_t w = 0; w < known->num_words(); ++w) {
      known->words()[w] |= scratch->word(w);
    }
  }
  // So far the bits mark "some input null"; complement into "known".
  for (size_t w = 0; w < known->num_words(); ++w) {
    known->words()[w] = ~known->word(w);
  }
  known->ClearTail();
}

kernels::CmpOp ToCmpOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return kernels::CmpOp::kEq;
    case BinaryOp::kNe: return kernels::CmpOp::kNe;
    case BinaryOp::kLt: return kernels::CmpOp::kLt;
    case BinaryOp::kLe: return kernels::CmpOp::kLe;
    case BinaryOp::kGt: return kernels::CmpOp::kGt;
    default: return kernels::CmpOp::kGe;
  }
}

/// Intermediate vector: borrows a whole input column (zero-copy column
/// reference), owns a materialized column, broadcasts a one-row constant, or
/// — for row-fallback results whose per-row types differ (coalesce/CASE over
/// heterogeneous branches) — boxes the raw Values so that Value-level
/// semantics (boolean-ness, string vs numeric comparison) survive until the
/// output boundary.
struct Vec {
  Column owned;
  const Column* borrowed = nullptr;
  size_t offset = 0;  // first borrowed row (row-range morsel batches)
  std::vector<Value> boxed;  // used only when mixed
  bool mixed = false;
  bool is_const = false;

  const Column& col() const { return borrowed != nullptr ? *borrowed : owned; }
  /// Storage type; only meaningful when !mixed (callers branch on mixed
  /// before dispatching typed lanes).
  TypeId type() const { return col().type(); }
  size_t pos(size_t k) const { return is_const ? 0 : offset + k; }
  bool IsNull(size_t k) const {
    return mixed ? boxed[pos(k)].is_null() : col().IsNull(pos(k));
  }
  Value At(size_t k) const {
    return mixed ? boxed[pos(k)] : col().Get(pos(k));
  }
  double Num(size_t k) const {
    return mixed ? boxed[pos(k)].AsDouble() : col().GetNumeric(pos(k));
  }
  int64_t IntRaw(size_t k) const { return col().GetInt(pos(k)); }
  /// Value::AsInt semantics over the raw storage (doubles truncate).
  int64_t AsIntAt(size_t k) const {
    if (mixed) return boxed[pos(k)].AsInt();
    const Column& c = col();
    switch (c.type()) {
      case TypeId::kBool:
      case TypeId::kInt64: return c.GetInt(pos(k));
      case TypeId::kDouble: return static_cast<int64_t>(c.GetDouble(pos(k)));
      default: return 0;
    }
  }
};

/// Builds a one-row column holding `v` with its exact type (Column::Append
/// would fold Bool into Int64, losing Value-level semantics).
Column TypedSingleton(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return Column::FromData(TypeId::kNull, {}, {}, {}, {1});
    case TypeId::kBool:
    case TypeId::kInt64:
      return Column::FromData(v.type(), {v.AsInt()}, {}, {}, {});
    case TypeId::kDouble:
      return Column::FromData(TypeId::kDouble, {}, {v.AsDouble()}, {}, {});
    case TypeId::kString:
      return Column::FromData(TypeId::kString, {}, {}, {v.AsString()}, {});
  }
  return Column();
}

Vec ConstVec(const Value& v) {
  Vec x;
  x.owned = TypedSingleton(v);
  x.is_const = true;
  return x;
}

/// Wraps per-row evaluation results: a typed column when the non-null value
/// types are uniform, a boxed mixed vector otherwise.
Vec VecFromValues(std::vector<Value> vals) {
  TypeId t = TypeId::kNull;
  bool uniform = true;
  for (const Value& v : vals) {
    if (v.is_null()) continue;
    if (t == TypeId::kNull) {
      t = v.type();
    } else if (v.type() != t) {
      uniform = false;
      break;
    }
  }
  Vec out;
  if (!uniform) {
    out.mixed = true;
    out.boxed = std::move(vals);
    return out;
  }
  const size_t n = vals.size();
  std::vector<uint8_t> nulls;
  auto mark_null = [&](size_t k) {
    if (nulls.empty()) nulls.assign(n, 0);
    nulls[k] = 1;
  };
  switch (t) {
    case TypeId::kNull: {  // every value NULL
      out.owned =
          Column::FromData(TypeId::kNull, {}, {}, {},
                           std::vector<uint8_t>(n, 1));
      return out;
    }
    case TypeId::kBool:
    case TypeId::kInt64: {
      std::vector<int64_t> data(n, 0);
      for (size_t k = 0; k < n; ++k) {
        if (vals[k].is_null()) mark_null(k);
        else data[k] = vals[k].AsInt();
      }
      out.owned = Column::FromData(t, std::move(data), {}, {},
                                   std::move(nulls));
      return out;
    }
    case TypeId::kDouble: {
      std::vector<double> data(n, 0.0);
      for (size_t k = 0; k < n; ++k) {
        if (vals[k].is_null()) mark_null(k);
        else data[k] = vals[k].AsDouble();
      }
      out.owned = Column::FromData(TypeId::kDouble, {}, std::move(data), {},
                                   std::move(nulls));
      return out;
    }
    case TypeId::kString: {
      std::vector<std::string> data(n);
      for (size_t k = 0; k < n; ++k) {
        if (vals[k].is_null()) mark_null(k);
        else data[k] = vals[k].AsString();
      }
      out.owned = Column::FromData(TypeId::kString, {}, {}, std::move(data),
                                   std::move(nulls));
      return out;
    }
  }
  out.mixed = true;
  out.boxed = std::move(vals);
  return out;
}

bool IsNumericType(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt64 || t == TypeId::kDouble;
}

int ThreeWayI(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
int ThreeWayD(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

bool OpHolds(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq: return cmp == 0;
    case BinaryOp::kNe: return cmp != 0;
    case BinaryOp::kLt: return cmp < 0;
    case BinaryOp::kLe: return cmp <= 0;
    case BinaryOp::kGt: return cmp > 0;
    case BinaryOp::kGe: return cmp >= 0;
    default: return false;
  }
}

// ---- Raw numeric operand views --------------------------------------------
// Resolving a Vec to a contiguous array (converting Int64/Bool storage to
// doubles once when a double lane needs it) hoists every per-element branch
// out of the kernels below, which then auto-vectorize.

struct NumView {
  const double* data = nullptr;
  std::vector<double> storage;  // owns converted data when needed
  double cval = 0.0;
  const uint8_t* nulls = nullptr;
  bool is_const = false;
  bool const_null = false;
};

NumView ResolveNum(const Vec& v, size_t n) {
  NumView o;
  if (v.is_const) {
    o.is_const = true;
    o.const_null = v.IsNull(0);
    if (!o.const_null) o.cval = v.Num(0);
    return o;
  }
  const Column& c = v.col();
  const uint8_t* nulls = c.NullData();
  o.nulls = nulls == nullptr ? nullptr : nulls + v.offset;
  if (c.type() == TypeId::kDouble) {
    o.data = c.DoubleData() + v.offset;
  } else {  // kInt64 / kBool
    const int64_t* p = c.IntData() + v.offset;
    o.storage.resize(n);
    for (size_t k = 0; k < n; ++k) o.storage[k] = static_cast<double>(p[k]);
    o.data = o.storage.data();
  }
  return o;
}

struct IntView {
  const int64_t* data = nullptr;
  int64_t cval = 0;
  const uint8_t* nulls = nullptr;
  bool is_const = false;
  bool const_null = false;
};

IntView ResolveInt(const Vec& v) {
  IntView o;
  if (v.is_const) {
    o.is_const = true;
    o.const_null = v.IsNull(0);
    if (!o.const_null) o.cval = v.IntRaw(0);
    return o;
  }
  o.data = v.col().IntData() + v.offset;
  const uint8_t* nulls = v.col().NullData();
  o.nulls = nulls == nullptr ? nullptr : nulls + v.offset;
  return o;
}

// Each compare is phrased under the engine's three-way convention — built
// from < and > only, exactly like Value::Compare / ThreeWayD — so NaN
// operands (which compare neither < nor >) land in the cmp == 0 bucket, and
// the lanes cannot drift from the row interpreter. NaN-compares-equal
// deviates from IEEE/standard SQL, but it is this engine's deliberate
// repo-wide convention (Value::Compare ordering, ValueGroupKey grouping,
// JoinKeysEqual — "NaN joins NaN"), and the row interpreter is the semantic
// reference the differential fuzz enforces. The kernel layer (engine/kernels)
// carries the same convention: its CmpOp table is specified against the
// scalar reference built from </> only, at every dispatch level.
//
// Constant-vs-vector shapes route through the VC kernel with the operator
// mirrored (MirrorCmp: c < x[k] == x[k] > c), so only VV and VC kernels
// exist. Null handling is separated from value compares: the kernels compare
// every lane (null slots hold zero placeholders, so the payloads are
// well-defined), and the null masks fold into `known` afterwards, clearing
// truth bits at null rows.

void CmpMask(BinaryOp bop, const IntView& a, const IntView& b, size_t n,
             TriMask* t, Bitmap* scratch) {
  const kernels::KernelOps& ops = kernels::Ops();
  const kernels::CmpOp op = ToCmpOp(bop);
  if (a.is_const && b.is_const) {
    if (OpHolds(bop, ThreeWayI(a.cval, b.cval))) {
      t->truth.ResetOnes(n);
    } else {
      t->truth.ResetZero(n);
    }
  } else {
    t->truth.ResetForOverwrite(n);
    if (!a.is_const && !b.is_const) {
      ops.cmp_i64_vv(op, a.data, b.data, n, t->truth.words());
    } else if (b.is_const) {
      ops.cmp_i64_vc(op, a.data, b.cval, n, t->truth.words());
    } else {
      ops.cmp_i64_vc(kernels::MirrorCmp(op), b.data, a.cval, n,
                     t->truth.words());
    }
  }
  KnownFromNulls(a.nulls, b.nulls, n, &t->known, scratch);
  for (size_t w = 0; w < t->truth.num_words(); ++w) {
    t->truth.words()[w] &= t->known.word(w);
  }
}

void CmpMask(BinaryOp bop, const NumView& a, const NumView& b, size_t n,
             TriMask* t, Bitmap* scratch) {
  const kernels::KernelOps& ops = kernels::Ops();
  const kernels::CmpOp op = ToCmpOp(bop);
  if (a.is_const && b.is_const) {
    if (OpHolds(bop, ThreeWayD(a.cval, b.cval))) {
      t->truth.ResetOnes(n);
    } else {
      t->truth.ResetZero(n);
    }
  } else {
    t->truth.ResetForOverwrite(n);
    if (!a.is_const && !b.is_const) {
      ops.cmp_f64_vv(op, a.data, b.data, n, t->truth.words());
    } else if (b.is_const) {
      ops.cmp_f64_vc(op, a.data, b.cval, n, t->truth.words());
    } else {
      ops.cmp_f64_vc(kernels::MirrorCmp(op), b.data, a.cval, n,
                     t->truth.words());
    }
  }
  KnownFromNulls(a.nulls, b.nulls, n, &t->known, scratch);
  for (size_t w = 0; w < t->truth.num_words(); ++w) {
    t->truth.words()[w] &= t->known.word(w);
  }
}

/// Value::Compare over raw storage; both sides must be non-null at k.
int CmpAt(const Vec& l, const Vec& r, size_t k) {
  if (l.mixed || r.mixed) return l.At(k).Compare(r.At(k));
  const TypeId lt = l.type(), rt = r.type();
  if (lt == TypeId::kInt64 && rt == TypeId::kInt64) {
    return ThreeWayI(l.IntRaw(k), r.IntRaw(k));
  }
  if (IsNumericType(lt) && IsNumericType(rt)) {
    return ThreeWayD(l.Num(k), r.Num(k));
  }
  if (lt == TypeId::kString && rt == TypeId::kString) {
    const std::string& a = l.col().GetString(l.pos(k));
    const std::string& b = r.col().GetString(r.pos(k));
    return a.compare(b);
  }
  return l.At(k).Compare(r.At(k));
}

Result<Vec> EvalVec(const Expr& e, const Batch& b);
Result<TriMask> EvalTri(const Expr& e, const Batch& b);

/// Converts a materialized vector into tri-state booleans with Value::AsBool
/// semantics (only Bool/Int64 storage can be true; doubles/strings are
/// false because Value keeps them out of the integer slot).
TriMask VecToTri(const Vec& v, size_t n) {
  TriMask t;
  if (v.mixed) {
    t.ResetNull(n);
    for (size_t k = 0; k < n; ++k) {
      const Value val = v.At(k);
      if (!val.is_null()) {
        if (val.AsBool()) {
          t.SetTrue(k);
        } else {
          t.SetFalse(k);
        }
      }
    }
    return t;
  }
  if (v.is_const) {
    // One decision broadcast to the batch. Only Bool/Int64 storage can be
    // true, mirroring the typed switch below.
    if (v.IsNull(0)) {
      t.ResetNull(n);
    } else {
      t.known.ResetOnes(n);
      const bool truth =
          (v.type() == TypeId::kBool || v.type() == TypeId::kInt64) &&
          v.IntRaw(0) != 0;
      if (truth) {
        t.truth.ResetOnes(n);
      } else {
        t.truth.ResetZero(n);
      }
    }
    return t;
  }
  switch (v.type()) {
    case TypeId::kNull:
      t.ResetNull(n);
      break;
    case TypeId::kBool:
    case TypeId::kInt64: {
      // truth = (value != 0) via the compare kernel, masked by the nulls.
      t.truth.ResetForOverwrite(n);
      kernels::Ops().cmp_i64_vc(kernels::CmpOp::kNe,
                                v.col().IntData() + v.offset, 0, n,
                                t.truth.words());
      const uint8_t* nulls = v.col().NullData();
      Bitmap scratch;
      KnownFromNulls(nulls == nullptr ? nullptr : nulls + v.offset, nullptr,
                     n, &t.known, &scratch);
      for (size_t w = 0; w < t.truth.num_words(); ++w) {
        t.truth.words()[w] &= t.known.word(w);
      }
      break;
    }
    case TypeId::kDouble:
    case TypeId::kString: {
      // Never true; NULL where the storage is null.
      t.truth.ResetZero(n);
      const uint8_t* nulls = v.col().NullData();
      Bitmap scratch;
      KnownFromNulls(nulls == nullptr ? nullptr : nulls + v.offset, nullptr,
                     n, &t.known, &scratch);
      break;
    }
  }
  return t;
}

/// Materializes tri-state booleans as a nullable Bool column vector.
Vec TriToVec(const TriMask& t) {
  const size_t n = t.size();
  std::vector<int64_t> ints(n);
  std::vector<uint8_t> nulls;
  const bool any_null = t.known.CountSet() != n;
  if (any_null) nulls.assign(n, 0);
  for (size_t k = 0; k < n; ++k) {
    if (!t.IsKnown(k)) {
      nulls[k] = 1;
    } else {
      ints[k] = t.IsTrue(k) ? 1 : 0;
    }
  }
  Vec v;
  v.owned = Column::FromData(TypeId::kBool, std::move(ints), {}, {},
                             std::move(nulls));
  return v;
}

/// Comparison kernels (kEq..kGe): type-specialized lanes, NULL -> unknown.
TriMask CompareVecs(BinaryOp op, const Vec& l, const Vec& r, size_t n) {
  TriMask t;
  if (l.mixed || r.mixed) {
    t.ResetNull(n);
    for (size_t k = 0; k < n; ++k) {
      if (l.IsNull(k) || r.IsNull(k)) continue;
      if (OpHolds(op, l.At(k).Compare(r.At(k)))) {
        t.SetTrue(k);
      } else {
        t.SetFalse(k);
      }
    }
    return t;
  }
  const TypeId lt = l.type(), rt = r.type();
  if (lt == TypeId::kNull || rt == TypeId::kNull) {
    t.ResetNull(n);
    return t;
  }
  if (lt == TypeId::kInt64 && rt == TypeId::kInt64) {
    IntView a = ResolveInt(l), bview = ResolveInt(r);
    if (a.const_null || bview.const_null) {
      t.ResetNull(n);
      return t;
    }
    Bitmap scratch;
    CmpMask(op, a, bview, n, &t, &scratch);
    return t;
  }
  if (IsNumericType(lt) && IsNumericType(rt)) {
    NumView a = ResolveNum(l, n), bview = ResolveNum(r, n);
    if (a.const_null || bview.const_null) {
      t.ResetNull(n);
      return t;
    }
    Bitmap scratch;
    CmpMask(op, a, bview, n, &t, &scratch);
    return t;
  }
  if (lt == TypeId::kString && rt == TypeId::kString) {
    t.ResetNull(n);
    for (size_t k = 0; k < n; ++k) {
      if (l.IsNull(k) || r.IsNull(k)) continue;
      if (OpHolds(op, l.col().GetString(l.pos(k)).compare(
                          r.col().GetString(r.pos(k))))) {
        t.SetTrue(k);
      } else {
        t.SetFalse(k);
      }
    }
    return t;
  }
  // Mixed string/numeric: rare; box per element (type-ordered compare).
  t.ResetNull(n);
  for (size_t k = 0; k < n; ++k) {
    if (l.IsNull(k) || r.IsNull(k)) continue;
    if (OpHolds(op, l.At(k).Compare(r.At(k)))) {
      t.SetTrue(k);
    } else {
      t.SetFalse(k);
    }
  }
  return t;
}

TriMask LikeVecs(const Vec& l, const Vec& r, size_t n) {
  TriMask t;
  t.ResetNull(n);
  // The pattern is almost always a literal: render it once.
  std::string const_pattern;
  const bool pattern_const = r.is_const && !r.IsNull(0);
  if (pattern_const) const_pattern = r.At(0).ToString();
  for (size_t k = 0; k < n; ++k) {
    if (l.IsNull(k) || r.IsNull(k)) continue;
    const std::string text = l.type() == TypeId::kString
                                 ? l.col().GetString(l.pos(k))
                                 : l.At(k).ToString();
    if (LikeMatch(text,
                  pattern_const ? const_pattern : r.At(k).ToString())) {
      t.SetTrue(k);
    } else {
      t.SetFalse(k);
    }
  }
  return t;
}

/// Row-interpreter fallback for node types without a batch kernel (most
/// scalar functions, mixed-type CASE): evaluates the subtree per selected
/// row. rand-family draws inside the subtree are row-addressed, so the
/// fallback and the batch kernels produce identical values regardless of
/// which path a node takes.
Result<Vec> RowFallback(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  std::vector<Value> vals;
  vals.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    RowCtx ctx{b.table, b.RowAt(k), b.rand_seed, b.row_id_offset};
    auto r = EvalExpr(e, ctx);
    if (!r.ok()) return r.status();
    vals.push_back(std::move(r).ValueOrDie());
  }
  return VecFromValues(std::move(vals));
}

Result<Vec> ColumnRefVec(const Expr& e, const Batch& b) {
  if (e.bound_column < 0) {
    return Status::Internal("unbound column reference: " + e.name);
  }
  const Column& src = b.table->column(static_cast<size_t>(e.bound_column));
  Vec v;
  if (b.sel == nullptr) {
    // Whole-table batch or row-range morsel: zero-copy reference, with the
    // range start carried as a lane offset.
    v.borrowed = &src;
    v.offset = b.range_begin;
  } else {
    // Selection (possibly a morsel slice of it): gather the referenced rows.
    v.owned.AppendSelected(src, b.sel->data() + b.range_begin, b.size());
  }
  return v;
}

Result<Vec> EvalArith(const Expr& e, const Batch& b) {
  auto lv = EvalVec(*e.args[0], b);
  if (!lv.ok()) return lv.status();
  auto rv = EvalVec(*e.args[1], b);
  if (!rv.ok()) return rv.status();
  const Vec& l = lv.value();
  const Vec& r = rv.value();
  const size_t n = b.size();
  if (l.mixed || r.mixed) {
    // Per-row types differ: combine through the shared Value-level kernel.
    std::vector<Value> vals;
    vals.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      auto v = ApplyBinaryOp(e.binary_op, l.At(k), r.At(k));
      if (!v.ok()) return v.status();
      vals.push_back(std::move(v).ValueOrDie());
    }
    return VecFromValues(std::move(vals));
  }
  if (l.type() == TypeId::kNull || r.type() == TypeId::kNull) {
    return ConstVec(Value::Null());
  }

  std::vector<uint8_t> nulls;
  auto set_null = [&](size_t k) {
    if (nulls.empty()) nulls.assign(n, 0);
    nulls[k] = 1;
  };

  const bool numeric =
      IsNumericType(l.type()) && IsNumericType(r.type());
  // Null propagation is separated from the value lanes: the dispatch kernels
  // compute every row unconditionally (null slots hold zero placeholders, so
  // the payloads are well-defined and identical at every dispatch level; a
  // null row's payload is never observable through Column), and the byte
  // null masks merge here.
  auto merge_nulls = [&](const uint8_t* an, const uint8_t* bn) {
    if (an == nullptr && bn == nullptr) return;
    nulls.assign(n, 0);
    if (an != nullptr && bn != nullptr) {
      for (size_t k = 0; k < n; ++k) {
        nulls[k] = (an[k] != 0 || bn[k] != 0) ? 1 : 0;
      }
    } else {
      const uint8_t* p = an != nullptr ? an : bn;
      for (size_t k = 0; k < n; ++k) nulls[k] = p[k] != 0 ? 1 : 0;
    }
  };
  switch (e.binary_op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      const kernels::ArithOp kop =
          e.binary_op == BinaryOp::kAdd
              ? kernels::ArithOp::kAdd
              : (e.binary_op == BinaryOp::kSub ? kernels::ArithOp::kSub
                                               : kernels::ArithOp::kMul);
      const kernels::KernelOps& ops = kernels::Ops();
      if (l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64) {
        IntView a = ResolveInt(l), c = ResolveInt(r);
        std::vector<int64_t> out(n, 0);
        if (!a.is_const && !c.is_const) {
          ops.arith_i64_vv(kop, a.data, c.data, n, out.data());
        } else if (!a.is_const) {
          ops.arith_i64_vc(kop, a.data, c.cval, n, out.data());
        } else if (!c.is_const) {
          ops.arith_i64_cv(kop, a.cval, c.data, n, out.data());
        } else if (n > 0) {
          int64_t cc = 0;
          ops.arith_i64_vc(kop, &a.cval, c.cval, 1, &cc);
          std::fill(out.begin(), out.end(), cc);
        }
        merge_nulls(a.nulls, c.nulls);
        Vec v;
        v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                   std::move(nulls));
        return v;
      }
      if (numeric) {
        NumView a = ResolveNum(l, n), c = ResolveNum(r, n);
        std::vector<double> out(n, 0.0);
        if (!a.is_const && !c.is_const) {
          ops.arith_f64_vv(kop, a.data, c.data, n, out.data());
        } else if (!a.is_const) {
          ops.arith_f64_vc(kop, a.data, c.cval, n, out.data());
        } else if (!c.is_const) {
          ops.arith_f64_cv(kop, a.cval, c.data, n, out.data());
        } else if (n > 0) {
          double cc = 0.0;
          ops.arith_f64_vc(kop, &a.cval, c.cval, 1, &cc);
          std::fill(out.begin(), out.end(), cc);
        }
        merge_nulls(a.nulls, c.nulls);
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                   std::move(nulls));
        return v;
      }
      // String operands read 0 through Num, like Value::AsDouble.
      std::vector<double> out(n);
      for (size_t k = 0; k < n; ++k) {
        if (l.IsNull(k) || r.IsNull(k)) {
          set_null(k);
          continue;
        }
        const double a = l.Num(k), c = r.Num(k);
        out[k] = e.binary_op == BinaryOp::kAdd
                     ? a + c
                     : (e.binary_op == BinaryOp::kSub ? a - c : a * c);
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                 std::move(nulls));
      return v;
    }
    case BinaryOp::kDiv: {
      std::vector<double> out(n, 0.0);
      if (numeric) {
        NumView a = ResolveNum(l, n), c = ResolveNum(r, n);
        const uint8_t* an = a.nulls;
        const uint8_t* cn = c.nulls;
        auto run = [&](auto ga, auto gb) {
          for (size_t k = 0; k < n; ++k) {
            const double y = gb(k);
            if ((an != nullptr && an[k] != 0) ||
                (cn != nullptr && cn[k] != 0) || y == 0.0) {
              set_null(k);
            } else {
              out[k] = ga(k) / y;
            }
          }
        };
        if (a.is_const && c.is_const) {
          run([&](size_t) { return a.cval; }, [&](size_t) { return c.cval; });
        } else if (a.is_const) {
          run([&](size_t) { return a.cval; },
              [&](size_t k) { return c.data[k]; });
        } else if (c.is_const) {
          run([&](size_t k) { return a.data[k]; },
              [&](size_t) { return c.cval; });
        } else {
          run([&](size_t k) { return a.data[k]; },
              [&](size_t k) { return c.data[k]; });
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                   std::move(nulls));
        return v;
      }
      for (size_t k = 0; k < n; ++k) {
        const double c = r.Num(k);
        if (l.IsNull(k) || r.IsNull(k) || c == 0.0) {
          set_null(k);
          continue;
        }
        out[k] = l.Num(k) / c;
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                 std::move(nulls));
      return v;
    }
    case BinaryOp::kMod: {
      std::vector<int64_t> out(n);
      for (size_t k = 0; k < n; ++k) {
        const int64_t c = r.AsIntAt(k);
        if (l.IsNull(k) || r.IsNull(k) || c == 0) {
          set_null(k);
          continue;
        }
        out[k] = l.AsIntAt(k) % c;
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                 std::move(nulls));
      return v;
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Vec> EvalCase(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  std::vector<TriMask> whens;
  whens.reserve(e.case_whens.size());
  for (const auto& w : e.case_whens) {
    auto t = EvalTri(*w, b);
    if (!t.ok()) return t.status();
    whens.push_back(std::move(t).ValueOrDie());
  }
  std::vector<Vec> thens;
  thens.reserve(e.case_thens.size());
  for (const auto& th : e.case_thens) {
    auto v = EvalVec(*th, b);
    if (!v.ok()) return v.status();
    thens.push_back(std::move(v).ValueOrDie());
  }
  Vec else_vec = ConstVec(Value::Null());
  if (e.case_else) {
    auto v = EvalVec(*e.case_else, b);
    if (!v.ok()) return v.status();
    else_vec = std::move(v).ValueOrDie();
  }
  // Pick each row's source branch; VecFromValues keeps a typed column when
  // the branches agree and boxes the raw Values when they don't.
  std::vector<Value> vals;
  vals.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    const Vec* src = &else_vec;
    for (size_t i = 0; i < whens.size(); ++i) {
      if (whens[i].IsTrue(k)) {
        src = &thens[i];
        break;
      }
    }
    vals.push_back(src->At(k));
  }
  return VecFromValues(std::move(vals));
}

Result<TriMask> EvalTri(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  switch (e.kind) {
    case ExprKind::kBinary: {
      if (e.binary_op == BinaryOp::kAnd) {
        // Selection-aware conjunction: a false left operand decides the row,
        // so the right operand only needs the rows where the left came out
        // true or unknown — like the row interpreter's short-circuit, but
        // batch-at-a-time over a sub-selection. Evaluating the sub-batch
        // costs a gather per column reference, so it pays off only when the
        // left side is selective; above the cutover the contiguous
        // whole-batch lanes win and the extra rows are simply masked out.
        auto lt = EvalTri(*e.args[0], b);
        if (!lt.ok()) return lt.status();
        TriMask& l = lt.value();
        const size_t surviving = l.CountNotFalse();
        if (surviving == 0) return std::move(l);  // all false
        if (surviving * 4 > n) {
          auto rt = EvalTri(*e.args[1], b);
          if (!rt.ok()) return rt.status();
          const TriMask& r = rt.value();
          // Word-wise Kleene AND: t = lt & rt; false when either side is
          // known-false; known = t | false.
          for (size_t w = 0; w < l.truth.num_words(); ++w) {
            const uint64_t false_l = l.known.word(w) & ~l.truth.word(w);
            const uint64_t false_r = r.known.word(w) & ~r.truth.word(w);
            const uint64_t t = l.truth.word(w) & r.truth.word(w);
            l.truth.words()[w] = t;
            l.known.words()[w] = t | false_l | false_r;
          }
          return std::move(l);
        }
        SelVector survivors;
        survivors.reserve(surviving);
        for (size_t w = 0; w < l.truth.num_words(); ++w) {
          uint64_t nf = l.NotFalseWord(w);
          while (nf != 0) {
            const size_t k = w * 64 +
                             static_cast<size_t>(__builtin_ctzll(nf));
            survivors.push_back(b.RowAt(k));
            nf &= nf - 1;
          }
        }
        Batch sub{b.table,          &survivors, b.rand_seed, 0,
                  Batch::kWholeTable, b.row_id_offset};
        auto rt = EvalTri(*e.args[1], sub);
        if (!rt.ok()) return rt.status();
        const TriMask& r = rt.value();
        // Merge the sub-batch verdicts back onto the surviving positions:
        // r false decides the row false (NULL AND FALSE = FALSE); r NULL
        // erases the row's knowledge; r true keeps the left verdict.
        size_t i = 0;
        for (size_t w = 0; w < l.truth.num_words(); ++w) {
          uint64_t nf = l.NotFalseWord(w);
          while (nf != 0) {
            const size_t k = w * 64 +
                             static_cast<size_t>(__builtin_ctzll(nf));
            if (!r.IsTrue(i)) {
              l.truth.Clear(k);
              if (r.IsKnown(i)) {
                l.known.Set(k);  // known false
              } else {
                l.known.Clear(k);  // NULL (unless left was false — excluded)
              }
            }
            ++i;
            nf &= nf - 1;
          }
        }
        return std::move(l);
      }
      if (e.binary_op == BinaryOp::kOr) {
        // Kleene logic over full child masks; data-dependent NULLs
        // (div-by-zero etc.) are values, not errors, so results agree with
        // the short-circuiting row interpreter.
        auto lt = EvalTri(*e.args[0], b);
        if (!lt.ok()) return lt.status();
        auto rt = EvalTri(*e.args[1], b);
        if (!rt.ok()) return rt.status();
        TriMask& l = lt.value();
        const TriMask& r = rt.value();
        // t = lt | rt; false only when both sides are known-false.
        for (size_t w = 0; w < l.truth.num_words(); ++w) {
          const uint64_t false_l = l.known.word(w) & ~l.truth.word(w);
          const uint64_t false_r = r.known.word(w) & ~r.truth.word(w);
          const uint64_t t = l.truth.word(w) | r.truth.word(w);
          l.truth.words()[w] = t;
          l.known.words()[w] = t | (false_l & false_r);
        }
        return std::move(l);
      }
      if (e.binary_op == BinaryOp::kLike) {
        auto lv = EvalVec(*e.args[0], b);
        if (!lv.ok()) return lv.status();
        auto rv = EvalVec(*e.args[1], b);
        if (!rv.ok()) return rv.status();
        return LikeVecs(lv.value(), rv.value(), n);
      }
      if (e.binary_op == BinaryOp::kEq || e.binary_op == BinaryOp::kNe ||
          e.binary_op == BinaryOp::kLt || e.binary_op == BinaryOp::kLe ||
          e.binary_op == BinaryOp::kGt || e.binary_op == BinaryOp::kGe) {
        auto lv = EvalVec(*e.args[0], b);
        if (!lv.ok()) return lv.status();
        auto rv = EvalVec(*e.args[1], b);
        if (!rv.ok()) return rv.status();
        return CompareVecs(e.binary_op, lv.value(), rv.value(), n);
      }
      break;  // arithmetic: generic path below
    }
    case ExprKind::kUnary: {
      if (e.unary_op == UnaryOp::kNot) {
        auto t = EvalTri(*e.args[0], b);
        if (!t.ok()) return t.status();
        TriMask& v = t.value();
        // NOT flips truth within the known rows; NULL stays NULL. known's
        // zeroed tail keeps the masked complement's tail zeroed too.
        for (size_t w = 0; w < v.truth.num_words(); ++w) {
          v.truth.words()[w] = v.known.word(w) & ~v.truth.word(w);
        }
        return std::move(v);
      }
      break;
    }
    case ExprKind::kIsNull: {
      auto v = EvalVec(*e.args[0], b);
      if (!v.ok()) return v.status();
      const Vec& a = v.value();
      TriMask t;
      t.known.ResetOnes(n);  // IS [NOT] NULL is never NULL itself
      t.truth.ResetForOverwrite(n);
      if (a.is_const) {
        if (a.IsNull(0)) {
          t.truth.ResetOnes(n);
        } else {
          t.truth.ResetZero(n);
        }
      } else if (!a.mixed) {
        const uint8_t* nulls = a.col().NullData();
        if (nulls == nullptr) {
          t.truth.ResetZero(n);
        } else {
          kernels::Ops().bytes_nonzero_bits(nulls + a.offset, n,
                                            t.truth.words());
        }
      } else {
        t.truth.ResetZero(n);
        for (size_t k = 0; k < n; ++k) {
          if (a.IsNull(k)) t.truth.Set(k);
        }
      }
      if (e.negated) {
        for (size_t w = 0; w < t.truth.num_words(); ++w) {
          t.truth.words()[w] = ~t.truth.word(w);
        }
        t.truth.ClearTail();
      }
      return t;
    }
    case ExprKind::kBetween: {
      auto xv = EvalVec(*e.args[0], b);
      if (!xv.ok()) return xv.status();
      auto lov = EvalVec(*e.args[1], b);
      if (!lov.ok()) return lov.status();
      auto hiv = EvalVec(*e.args[2], b);
      if (!hiv.ok()) return hiv.status();
      const Vec& x = xv.value();
      const Vec& lo = lov.value();
      const Vec& hi = hiv.value();
      TriMask t;
      t.ResetNull(n);
      for (size_t k = 0; k < n; ++k) {
        if (x.IsNull(k) || lo.IsNull(k) || hi.IsNull(k)) continue;
        const bool in = CmpAt(x, lo, k) >= 0 && CmpAt(x, hi, k) <= 0;
        if (e.negated ? !in : in) {
          t.SetTrue(k);
        } else {
          t.SetFalse(k);
        }
      }
      return t;
    }
    case ExprKind::kInList: {
      auto xv = EvalVec(*e.args[0], b);
      if (!xv.ok()) return xv.status();
      std::vector<Vec> items;
      items.reserve(e.args.size() - 1);
      for (size_t i = 1; i < e.args.size(); ++i) {
        auto iv = EvalVec(*e.args[i], b);
        if (!iv.ok()) return iv.status();
        items.push_back(std::move(iv).ValueOrDie());
      }
      const Vec& x = xv.value();
      TriMask t;
      t.ResetNull(n);
      for (size_t k = 0; k < n; ++k) {
        if (x.IsNull(k)) continue;
        bool hit = false, any_null = false;
        for (const Vec& item : items) {
          if (item.IsNull(k)) {
            any_null = true;
            continue;
          }
          if (CmpAt(x, item, k) == 0) {
            hit = true;
            break;
          }
        }
        const int8_t tri =
            hit ? (e.negated ? 0 : 1)
                : (any_null ? int8_t{-1} : (e.negated ? int8_t{1} : int8_t{0}));
        t.SetTri(k, tri);
      }
      return t;
    }
    default:
      break;
  }
  auto v = EvalVec(e, b);
  if (!v.ok()) return v.status();
  return VecToTri(v.value(), n);
}

Result<Vec> EvalVec(const Expr& e, const Batch& b) {
  const size_t n = b.size();
  switch (e.kind) {
    case ExprKind::kLiteral:
      return ConstVec(e.literal);
    case ExprKind::kColumnRef:
      return ColumnRefVec(e, b);
    case ExprKind::kStar:
      return Status::Internal("'*' outside count(*) / select list");
    case ExprKind::kUnary: {
      if (e.unary_op == UnaryOp::kNot) {
        auto t = EvalTri(e, b);
        if (!t.ok()) return t.status();
        return TriToVec(t.value());
      }
      auto av = EvalVec(*e.args[0], b);
      if (!av.ok()) return av.status();
      const Vec& a = av.value();
      if (a.mixed) {
        std::vector<Value> vals;
        vals.reserve(n);
        for (size_t k = 0; k < n; ++k) vals.push_back(NegateValue(a.At(k)));
        return VecFromValues(std::move(vals));
      }
      if (a.type() == TypeId::kNull) return ConstVec(Value::Null());
      std::vector<uint8_t> nulls;
      auto set_null = [&](size_t k) {
        if (nulls.empty()) nulls.assign(n, 0);
        nulls[k] = 1;
      };
      if (a.type() == TypeId::kInt64) {
        std::vector<int64_t> out(n);
        for (size_t k = 0; k < n; ++k) {
          if (a.IsNull(k)) {
            set_null(k);
            continue;
          }
          // Unsigned negation: defined wrap on INT64_MIN (see NegateValue).
          out[k] = static_cast<int64_t>(0ull - static_cast<uint64_t>(a.IntRaw(k)));
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                   std::move(nulls));
        return v;
      }
      std::vector<double> out(n);
      for (size_t k = 0; k < n; ++k) {
        if (a.IsNull(k)) {
          set_null(k);
          continue;
        }
        out[k] = -a.Num(k);
      }
      Vec v;
      v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                 std::move(nulls));
      return v;
    }
    case ExprKind::kBinary: {
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArith(e, b);
        default: {
          auto t = EvalTri(e, b);
          if (!t.ok()) return t.status();
          return TriToVec(t.value());
        }
      }
    }
    case ExprKind::kFunction: {
      if (e.is_window || IsAggregateFunction(e.name)) {
        return Status::Internal("aggregate/window '" + e.name +
                                "' in row context");
      }
      // rand-family batch kernels (the variational-subsampling hot path:
      // __vdb_sid assignment and Bernoulli predicates). Each lane value is
      // the row-addressed draw CounterRandom(seed, row id, call site) — a
      // pure function of row identity, so the kernel, the row fallback, and
      // every morsel decomposition agree bit for bit.
      if (sql::IsRandFunctionExpr(e) && e.args.empty() &&
          !g_serial_rand_baseline.load(std::memory_order_relaxed)) {
        const uint64_t site = static_cast<uint64_t>(e.rand_site);
        // Range batches draw for consecutive row ids, which is exactly the
        // shape the SIMD rand lane covers (4 CounterRandom draws per
        // vector); selection batches address scattered ids row by row. Both
        // produce the identical row-addressed draws.
        const bool contiguous = b.sel == nullptr;
        const uint64_t row0 =
            contiguous ? b.row_id_offset + b.range_begin : 0;
        std::vector<double> uniforms(n);
        if (contiguous) {
          kernels::Ops().rand_f64_seq(b.rand_seed, row0, site, n,
                                      uniforms.data());
        } else {
          for (size_t k = 0; k < n; ++k) {
            uniforms[k] = CounterRandomDouble(b.rand_seed, b.RowIdAt(k), site);
          }
        }
        if (e.name == "rand_poisson") {
          std::vector<int64_t> out(n);
          for (size_t k = 0; k < n; ++k) {
            out[k] = PoissonOneFromUniform(uniforms[k]);
          }
          Vec v;
          v.owned =
              Column::FromData(TypeId::kInt64, std::move(out), {}, {}, {});
          return v;
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(uniforms),
                                   {}, {});
        return v;
      }
      // Unary numeric math (floor/ceil/abs/sqrt): typed lanes instead of a
      // per-row tree walk — floor() wraps every rand() in the rewritten sid
      // expression `1 + floor(rand() * b)`, so without this kernel the rand
      // kernel above would never be reached on the AQP hot path.
      if (e.args.size() == 1 &&
          (e.name == "floor" || e.name == "ceil" || e.name == "ceiling" ||
           e.name == "abs" || e.name == "sqrt") &&
          !PinnedSerialForBaseline(e)) {
        // The baseline hook row-interprets rand-bearing subtrees whole, as
        // the pre-row-addressed executor did with floor(rand() * b).
        auto av = EvalVec(*e.args[0], b);
        if (!av.ok()) return av.status();
        const Vec& a = av.value();
        if (!a.mixed && a.type() != TypeId::kString) {
          if (a.type() == TypeId::kNull) return ConstVec(Value::Null());
          std::vector<uint8_t> nulls;
          auto set_null = [&](size_t k) {
            if (nulls.empty()) nulls.assign(n, 0);
            nulls[k] = 1;
          };
          // abs over Int64 storage keeps the integer lane (matching
          // CallScalarFunction's Value::Int(std::abs(..)) semantics; Bool
          // values take the double lane there, so they do here too).
          if (e.name == "abs" && a.type() == TypeId::kInt64) {
            std::vector<int64_t> out(n, 0);
            for (size_t k = 0; k < n; ++k) {
              if (a.IsNull(k)) {
                set_null(k);
              } else {
                // Wrap-defined abs: abs(INT64_MIN) == INT64_MIN (see
                // CallScalarFunction).
                const int64_t x = a.IntRaw(k);
                out[k] = x < 0
                             ? static_cast<int64_t>(0ull -
                                                    static_cast<uint64_t>(x))
                             : x;
              }
            }
            Vec v;
            v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                       std::move(nulls));
            return v;
          }
          if (e.name == "abs" || e.name == "sqrt") {
            std::vector<double> out(n, 0.0);
            const bool is_abs = e.name == "abs";
            for (size_t k = 0; k < n; ++k) {
              if (a.IsNull(k)) {
                set_null(k);
              } else {
                const double x = a.Num(k);
                out[k] = is_abs ? std::abs(x) : std::sqrt(x);
              }
            }
            Vec v;
            v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                       std::move(nulls));
            return v;
          }
          // floor/ceil return Int64, like the row interpreter.
          std::vector<int64_t> out(n, 0);
          const bool is_floor = e.name == "floor";
          for (size_t k = 0; k < n; ++k) {
            if (a.IsNull(k)) {
              set_null(k);
            } else {
              const double x = a.Num(k);
              out[k] = static_cast<int64_t>(is_floor ? std::floor(x)
                                                     : std::ceil(x));
            }
          }
          Vec v;
          v.owned = Column::FromData(TypeId::kInt64, std::move(out), {}, {},
                                     std::move(nulls));
          return v;
        }
        // String/mixed operands: defer to the row interpreter's Value
        // semantics below.
      }
      // Universe-sample membership hash (the Fig. 11 hot path): batch kernel
      // over the evaluated argument instead of a per-row tree walk.
      if ((e.name == "verdict_hash" || e.name == "unit_hash") &&
          e.args.size() == 1) {
        auto av = EvalVec(*e.args[0], b);
        if (!av.ok()) return av.status();
        const Vec& a = av.value();
        std::vector<double> out(n);
        std::vector<uint8_t> nulls;
        for (size_t k = 0; k < n; ++k) {
          if (a.IsNull(k)) {
            if (nulls.empty()) nulls.assign(n, 0);
            nulls[k] = 1;
            continue;
          }
          out[k] = HashUnit(a.At(k));
        }
        Vec v;
        v.owned = Column::FromData(TypeId::kDouble, {}, std::move(out), {},
                                   std::move(nulls));
        return v;
      }
      return RowFallback(e, b);
    }
    case ExprKind::kCase:
      return EvalCase(e, b);
    case ExprKind::kIsNull:
    case ExprKind::kInList:
    case ExprKind::kBetween: {
      auto t = EvalTri(e, b);
      if (!t.ok()) return t.status();
      return TriToVec(t.value());
    }
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      return Status::Internal("unresolved subquery reached the evaluator");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

Batch ViewBatch(const RowView& view, uint64_t rand_seed, size_t begin,
                size_t end) {
  if (!view.has_selection()) {
    return Batch{view.table().get(), nullptr, rand_seed,
                 view.range_begin() + begin, view.range_begin() + end};
  }
  return Batch{view.table().get(), &view.selection(), rand_seed, begin, end};
}

Batch ViewBatch(const RowView& view, uint64_t rand_seed) {
  return ViewBatch(view, rand_seed, 0, view.num_rows());
}

Result<Column> EvalExprBatch(const Expr& e, const Batch& batch) {
  auto rv = EvalVec(e, batch);
  if (!rv.ok()) return rv.status();
  Vec v = std::move(rv).ValueOrDie();
  const size_t n = batch.size();
  if (v.mixed) {
    // Heterogeneous per-row types coerce through Column::Append only here,
    // at the output boundary — the same place the row executor coerced.
    Column col;
    for (size_t k = 0; k < n; ++k) col.Append(v.boxed[k]);
    return col;
  }
  if (v.is_const) {
    // Broadcast the constant to the batch length.
    const Value c = v.At(0);
    switch (c.type()) {
      case TypeId::kNull:
        return Column::FromData(TypeId::kNull, {}, {}, {},
                                std::vector<uint8_t>(n, 1));
      case TypeId::kBool:
      case TypeId::kInt64:
        return Column::FromData(c.type(), std::vector<int64_t>(n, c.AsInt()),
                                {}, {}, {});
      case TypeId::kDouble:
        return Column::FromData(TypeId::kDouble, {},
                                std::vector<double>(n, c.AsDouble()), {}, {});
      case TypeId::kString:
        return Column::FromData(TypeId::kString, {}, {},
                                std::vector<std::string>(n, c.AsString()), {});
    }
    return Status::Internal("unhandled constant type");
  }
  if (v.borrowed != nullptr) {
    if (v.offset == 0 && v.borrowed->size() == n) {
      return *v.borrowed;  // whole-column reference
    }
    // Borrowed row-range slice: materialize only at the output boundary.
    Column out(v.borrowed->type());
    out.AppendRange(*v.borrowed, v.offset, n);
    return out;
  }
  return std::move(v.owned);
}

Status EvalPredicateBatch(const Expr& e, const Batch& batch, SelVector* out) {
  auto t = EvalTri(e, batch);
  if (!t.ok()) return t.status();
  const TriMask& tri = t.value();
  // Survivors are exactly the truth bits: walk set bits word-at-a-time
  // (count-trailing-zeros) instead of testing every row.
  for (size_t w = 0; w < tri.truth.num_words(); ++w) {
    uint64_t word = tri.truth.word(w);
    while (word != 0) {
      const size_t k = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
      out->push_back(batch.RowAt(k));
      word &= word - 1;
    }
  }
  return Status::Ok();
}

void SetSerialRandBaselineForTest(bool enabled) {
  g_serial_rand_baseline.store(enabled, std::memory_order_relaxed);
}

Status EvalPredicateParallel(const Expr& e, const Table& table,
                             uint64_t rand_seed, int num_threads,
                             SelVector* out, const ExecGuard* guard) {
  const size_t n = table.num_rows();
  if (n > RowView::kMaxRows) {
    // Explicit guard: selection entries are uint32_t, and 0xFFFFFFFF is the
    // join null-extension sentinel; silently truncated indices would alias
    // low rows.
    return Status::Unsupported(
        "selection vectors address at most 2^32 - 2 rows; input has " +
        std::to_string(n));
  }
  const size_t morsel = MorselRows();
  if (num_threads <= 1 || n <= morsel || PinnedSerialForBaseline(e)) {
    VDB_RETURN_IF_ERROR(GuardCheck(guard, "pred_scan"));
    Batch batch{&table, nullptr, rand_seed};
    return EvalPredicateBatch(e, batch, out);
  }
  auto slots = ParallelMorselMapStatus<SelVector>(
      n, num_threads, guard, "pred_scan",
      [&](SelVector& sel, size_t begin, size_t end) {
        // rand-family draws are row-addressed, so every morsel addresses the
        // same (seed, row, site) triples the serial batch would.
        Batch batch{&table, nullptr, rand_seed, begin, end};
        return EvalPredicateBatch(e, batch, &sel);
      });
  if (!slots.ok()) return slots.status();
  size_t total = 0;
  for (const SelVector& sel : slots.value()) total += sel.size();
  out->reserve(out->size() + total);
  for (const SelVector& sel : slots.value()) {
    out->insert(out->end(), sel.begin(), sel.end());
  }
  return Status::Ok();
}

Result<TablePtr> FilterGatherParallel(const Expr& pred, const Table& table,
                                      uint64_t rand_seed, int num_threads,
                                      const ExecGuard* guard) {
  const size_t n = table.num_rows();
  if (n > RowView::kMaxRows) {
    return Status::Unsupported(
        "selection vectors address at most 2^32 - 2 rows; input has " +
        std::to_string(n));
  }
  auto out = table.CloneSchema();
  // The gathered output is row-proportional (survivor count x the parent's
  // per-row footprint); charge it against the budget once the survivor count
  // is known, before materializing. The charge persists with the output
  // table (freed by the statement issuer's accounting reset).
  const uint64_t per_row =
      n > 0 ? static_cast<uint64_t>(table.ApproxBytes()) / n : 0;
  if (num_threads <= 1 || n <= MorselRows() || PinnedSerialForBaseline(pred)) {
    VDB_RETURN_IF_ERROR(GuardCheck(guard, "filter_gather"));
    Batch batch{&table, nullptr, rand_seed};
    SelVector sel;
    VDB_RETURN_IF_ERROR(EvalPredicateBatch(pred, batch, &sel));
    VDB_RETURN_IF_ERROR(GuardTryReserve(guard, per_row * sel.size(),
                                        "filter_gather_alloc"));
    out->AppendSelected(table, sel, num_threads);
    return out;
  }
  auto slots = ParallelMorselMapStatus<TablePtr>(
      n, num_threads, guard, "filter_gather",
      [&](TablePtr& chunk, size_t begin, size_t end) {
        // Filter the morsel, then gather its survivors immediately — the
        // selection stays worker-local and the morsel's columns are still
        // hot. rand-family draws are row-addressed, so each morsel sees the
        // identical (seed, row, site) triples the serial batch would.
        Batch batch{&table, nullptr, rand_seed, begin, end};
        SelVector sel;
        VDB_RETURN_IF_ERROR(EvalPredicateBatch(pred, batch, &sel));
        VDB_RETURN_IF_ERROR(GuardTryReserve(guard, per_row * sel.size(),
                                            "filter_gather_alloc"));
        chunk = table.CloneSchema();
        chunk->AppendSelected(table, sel, /*num_threads=*/1);
        return Status::Ok();
      });
  if (!slots.ok()) return slots.status();
  for (const TablePtr& chunk : slots.value()) {
    out->AppendRange(*chunk, 0, chunk->num_rows());
  }
  return out;
}

Status EvalPredicateView(const Expr& e, const RowView& view,
                         uint64_t rand_seed, int num_threads, SelVector* out,
                         const ExecGuard* guard) {
  const size_t n = view.num_rows();
  if (num_threads <= 1 || n <= MorselRows() || PinnedSerialForBaseline(e)) {
    VDB_RETURN_IF_ERROR(GuardCheck(guard, "pred_view"));
    Batch batch = ViewBatch(view, rand_seed);
    return EvalPredicateBatch(e, batch, out);
  }
  auto slots = ParallelMorselMapStatus<SelVector>(
      n, num_threads, guard, "pred_view",
      [&](SelVector& sel, size_t begin, size_t end) {
        Batch batch = ViewBatch(view, rand_seed, begin, end);
        return EvalPredicateBatch(e, batch, &sel);
      });
  if (!slots.ok()) return slots.status();
  size_t total = 0;
  for (const SelVector& sel : slots.value()) total += sel.size();
  out->reserve(out->size() + total);
  for (const SelVector& sel : slots.value()) {
    out->insert(out->end(), sel.begin(), sel.end());
  }
  return Status::Ok();
}

Status EvalPredicateBitmap(const Expr& e, const RowView& view,
                           uint64_t rand_seed, int num_threads,
                           kernels::Bitmap* out, const ExecGuard* guard) {
  const size_t n = view.num_rows();
  out->ResetZero(n);
  // Morsels rounded up to whole 64-bit words: each worker then owns a
  // disjoint word range of the output bitmap, so per-morsel truth words copy
  // straight in with no cross-morsel bit splicing. The decomposition still
  // depends only on n, and the truth CONTENT is per-row pure, so any morsel
  // size produces the identical bitmap.
  const size_t wmorsel = (MorselRows() + 63) / 64 * 64;
  if (num_threads <= 1 || n <= wmorsel || PinnedSerialForBaseline(e)) {
    VDB_RETURN_IF_ERROR(GuardCheck(guard, "pred_bitmap"));
    Batch batch = ViewBatch(view, rand_seed);
    auto t = EvalTri(e, batch);
    if (!t.ok()) return t.status();
    const kernels::Bitmap& truth = t.value().truth;
    for (size_t w = 0; w < truth.num_words(); ++w) {
      out->words()[w] = truth.word(w);
    }
    return Status::Ok();
  }
  return ThreadPool::Global().ParallelForStatus(
      n, wmorsel, num_threads, guard, "pred_bitmap",
      [&](size_t, size_t begin, size_t end) {
        Batch batch = ViewBatch(view, rand_seed, begin, end);
        auto t = EvalTri(e, batch);
        if (!t.ok()) return t.status();
        const kernels::Bitmap& truth = t.value().truth;
        uint64_t* dst = out->words() + begin / 64;
        for (size_t w = 0; w < truth.num_words(); ++w) dst[w] = truth.word(w);
        return Status::Ok();
      });
}

Result<Column> EvalExprView(const Expr& e, const RowView& view,
                            uint64_t rand_seed, int num_threads,
                            const ExecGuard* guard) {
  const size_t n = view.num_rows();
  if (num_threads <= 1 || n <= MorselRows() || PinnedSerialForBaseline(e)) {
    // One whole-view batch. This also serves the empty view: the evaluator
    // still walks the tree, so the output column keeps its natural type and
    // empty results stay schema-complete.
    VDB_RETURN_IF_ERROR(GuardCheck(guard, "expr_view"));
    Batch batch = ViewBatch(view, rand_seed);
    return EvalExprBatch(e, batch);
  }
  auto slots = ParallelMorselMapStatus<Column>(
      n, num_threads, guard, "expr_view",
      [&](Column& col, size_t begin, size_t end) {
        Batch batch = ViewBatch(view, rand_seed, begin, end);
        auto c = EvalExprBatch(e, batch);
        if (!c.ok()) return c.status();
        col = std::move(c).ValueOrDie();
        return Status::Ok();
      });
  if (!slots.ok()) return slots.status();
  std::vector<Column> chunks = std::move(slots).ValueOrDie();
  return Column::ConcatChunks(std::move(chunks));
}

// ---- pair-list predicate evaluation -----------------------------------------

Result<const kernels::Bitmap*> PairPredicateEvaluator::Eval(
    const sql::Expr& pred, const uint32_t* lrows, const uint32_t* rrows,
    size_t count, uint64_t row_id_base) {
  // One poll per 64K-pair chunk — the streaming residual path's batch
  // boundary (never per pair).
  VDB_RETURN_IF_ERROR(GuardCheck(guard_, "join_pair_eval"));
  if (mask_pred_ != &pred) {
    // Gather only the combined-schema ordinals the predicate references;
    // streaming callers reuse one predicate, so this walk runs once.
    mask_pred_ = &pred;
    col_mask_.assign(left_.num_columns() + right_.num_columns(), 0);
    sql::AnyExprNode(pred, [&](const sql::Expr& n) {
      if (n.kind == sql::ExprKind::kColumnRef && n.bound_column >= 0 &&
          static_cast<size_t>(n.bound_column) < col_mask_.size()) {
        col_mask_[static_cast<size_t>(n.bound_column)] = 1;
      }
      return false;
    });
  }
  GatherJoinPairsInto(left_, lrows, right_, rrows, count, num_threads_,
                      &scratch_, &col_mask_);
  // Scratch rows are chunk-local; row_id_base lifts them onto the global
  // pair ordinal so rand-family draws are invariant to the chunking.
  Batch batch{&scratch_,          nullptr, rand_seed_, 0,
              Batch::kWholeTable, row_id_base};
  // The scratch batch has no selection, so batch position i IS pair i: the
  // evaluator's truth bitmap is the pass mask directly — no survivor list,
  // no per-chunk byte-mask re-zeroing (the evaluator overwrites every word).
  auto t = EvalTri(pred, batch);
  if (!t.ok()) return t.status();
  pass_ = std::move(t.value().truth);
  return const_cast<const kernels::Bitmap*>(&pass_);
}

Status FilterJoinPairs(const sql::Expr& pred, JoinPairView* pairs,
                       uint64_t rand_seed, int num_threads,
                       const ExecGuard* guard) {
  constexpr size_t kChunk = 1 << 16;
  const size_t n = pairs->num_pairs();
  PairPredicateEvaluator eval(*pairs->left(), *pairs->right(), rand_seed,
                              num_threads, guard);
  // Survivors stream straight into fresh pair lists (never positions into
  // the old list, which could exceed the uint32 index range). `begin` is the
  // global pair ordinal — the row this pair would occupy in the materialized
  // join — so pushed-down rand() draws match the post-gather WHERE path.
  SelVector out_l, out_r;
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t end = std::min(n, begin + kChunk);
    auto mask = eval.Eval(pred, pairs->lrows().data() + begin,
                          pairs->rrows().data() + begin, end - begin, begin);
    if (!mask.ok()) return mask.status();
    const kernels::Bitmap& pass = *mask.value();
    for (size_t w = 0; w < pass.num_words(); ++w) {
      uint64_t word = pass.word(w);
      while (word != 0) {
        const size_t i = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        out_l.push_back(pairs->lrows()[begin + i]);
        out_r.push_back(pairs->rrows()[begin + i]);
        word &= word - 1;
      }
    }
  }
  *pairs = JoinPairView(pairs->left(), pairs->right(), std::move(out_l),
                        std::move(out_r));
  return Status::Ok();
}

}  // namespace vdb::engine
