// Batch-at-a-time (vectorized) expression evaluation.
//
// The row interpreter in expr_eval.h materializes a boxed Value per cell and
// re-walks the expression tree per row; on scan-shaped paths (WHERE, HAVING,
// projection, join residuals, sample preparation) that interpretation cost
// dominates. The batch evaluator walks the tree once per batch and runs
// type-specialized inner loops directly over the columnar storage
// (engine/column.h), materializing NULL masks lazily. Node types without a
// specialized kernel (e.g. rand(), mixed-type CASE) fall back to the row
// interpreter per element, so the row evaluator remains the semantic
// reference; tests/test_vector_eval.cc asserts batch == row on randomized
// expressions.

#ifndef VDB_ENGINE_VECTOR_EVAL_H_
#define VDB_ENGINE_VECTOR_EVAL_H_

#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// A batch of input rows: a table plus an optional selection vector of
/// surviving row indices. A null `sel` means all rows of the table.
struct Batch {
  const Table* table = nullptr;
  const SelVector* sel = nullptr;  // null => all rows [0, num_rows)
  Rng* rng = nullptr;              // backs rand() via the row fallback

  size_t size() const {
    return sel != nullptr ? sel->size() : (table != nullptr ? table->num_rows() : 0);
  }
  uint32_t RowAt(size_t i) const {
    return sel != nullptr ? (*sel)[i] : static_cast<uint32_t>(i);
  }
};

/// Evaluates a bound expression for every batch position, column-at-a-time.
/// Returns a column of batch.size() rows, position i holding the value for
/// batch row i. Per-row semantics match EvalExpr, with two deliberate
/// deviations from the pre-vectorization executor:
///  - Boolean-valued expressions produce kBool columns (the old per-row
///    Column::Append materialization folded Bool into Int64); only
///    heterogeneous per-row type mixes still coerce through Column::Append.
///  - AND/OR operands, CASE branches, and IN items are evaluated for the
///    whole batch rather than short-circuited per row, so expression-level
///    errors (e.g. an unknown function on the never-taken side) surface
///    eagerly, and rand() inside them draws for every row. Data-dependent
///    NULLs (division by zero etc.) are values, not errors, so results
///    agree.
Result<Column> EvalExprBatch(const sql::Expr& e, const Batch& batch);

/// Evaluates a predicate over the batch and appends the physical row indices
/// for which it is non-null and true to `*out` (in batch order). Three-valued
/// NULL logic matches EvalPredicate.
Status EvalPredicateBatch(const sql::Expr& e, const Batch& batch,
                          SelVector* out);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_VECTOR_EVAL_H_
