// Batch-at-a-time (vectorized) expression evaluation.
//
// The row interpreter in expr_eval.h materializes a boxed Value per cell and
// re-walks the expression tree per row; on scan-shaped paths (WHERE, HAVING,
// projection, join residuals, sample preparation) that interpretation cost
// dominates. The batch evaluator walks the tree once per batch and runs
// type-specialized inner loops directly over the columnar storage
// (engine/column.h), materializing NULL masks lazily. Node types without a
// specialized kernel (e.g. rand(), mixed-type CASE) fall back to the row
// interpreter per element, so the row evaluator remains the semantic
// reference; tests/test_vector_eval.cc asserts batch == row on randomized
// expressions.

#ifndef VDB_ENGINE_VECTOR_EVAL_H_
#define VDB_ENGINE_VECTOR_EVAL_H_

#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// A batch of input rows: a table plus an optional selection vector of
/// surviving row indices. [range_begin, range_end) slices the batch's
/// position domain — physical rows when `sel` is null, positions INTO `sel`
/// otherwise (a selection composed with a morsel row-range: how the
/// morsel-driven scan hands one worker its slice of a RowView without
/// copying the selection). The defaults cover the whole domain.
struct Batch {
  static constexpr size_t kWholeTable = static_cast<size_t>(-1);

  const Table* table = nullptr;
  const SelVector* sel = nullptr;  // null => physical rows
  Rng* rng = nullptr;              // backs rand() via the row fallback
  size_t range_begin = 0;
  size_t range_end = kWholeTable;  // kWholeTable => whole domain

  size_t Domain() const {
    if (sel != nullptr) return sel->size();
    return table != nullptr ? table->num_rows() : 0;
  }
  size_t RangeEnd() const {
    return range_end == kWholeTable ? Domain() : range_end;
  }
  size_t size() const { return RangeEnd() - range_begin; }
  uint32_t RowAt(size_t i) const {
    return sel != nullptr ? (*sel)[range_begin + i]
                          : static_cast<uint32_t>(range_begin + i);
  }
};

/// Batch over view positions [begin, end): the range form for identity/range
/// views (zero-copy lanes), the sel-slice form otherwise. The view must
/// outlive the batch (the batch borrows its selection vector).
Batch ViewBatch(const RowView& view, Rng* rng, size_t begin, size_t end);
/// Batch over the whole view.
Batch ViewBatch(const RowView& view, Rng* rng);

/// Evaluates a bound expression for every batch position, column-at-a-time.
/// Returns a column of batch.size() rows, position i holding the value for
/// batch row i. Per-row semantics match EvalExpr, with two deliberate
/// deviations from the pre-vectorization executor:
///  - Boolean-valued expressions produce kBool columns (the old per-row
///    Column::Append materialization folded Bool into Int64); only
///    heterogeneous per-row type mixes still coerce through Column::Append.
///  - OR operands, CASE branches, and IN items are evaluated for the whole
///    batch rather than short-circuited per row, so expression-level errors
///    (e.g. an unknown function on the never-taken side) surface eagerly,
///    and rand() inside them draws for every row. Data-dependent NULLs
///    (division by zero etc.) are values, not errors, so results agree.
///    AND is selection-aware: when the left conjunct is selective (it
///    decides at least 3/4 of the rows false), the right conjunct is
///    evaluated only over the surviving rows (matching the row
///    interpreter's short-circuit); otherwise contiguous whole-batch lanes
///    stay cheaper and the decided rows are masked out afterwards.
Result<Column> EvalExprBatch(const sql::Expr& e, const Batch& batch);

/// Evaluates a predicate over the batch and appends the physical row indices
/// for which it is non-null and true to `*out` (in batch order). Three-valued
/// NULL logic matches EvalPredicate.
Status EvalPredicateBatch(const sql::Expr& e, const Batch& batch,
                          SelVector* out);

/// Evaluates a predicate over the whole table on up to num_threads threads:
/// one EvalPredicateBatch per row-range morsel, with the per-morsel selection
/// vectors concatenated in morsel order, so the result is identical to a
/// single-threaded evaluation. Expressions that draw randomness (rand(),
/// rand_poisson()) fall back to one serial whole-table batch, as do inputs
/// smaller than a single morsel.
Status EvalPredicateParallel(const sql::Expr& e, const Table& table, Rng* rng,
                             int num_threads, SelVector* out);

/// Evaluates a predicate over a RowView (selection composed with morsel
/// row-ranges) and appends the surviving PHYSICAL row indices to `*out` in
/// view order — the survivors directly form the composed downstream view, so
/// filters never gather. Morsel-parallel like EvalPredicateParallel, with the
/// same serial fallbacks (rand(), sub-morsel inputs).
Status EvalPredicateView(const sql::Expr& e, const RowView& view, Rng* rng,
                         int num_threads, SelVector* out);

/// Evaluates an expression over every view row, morsel-parallel: one
/// EvalExprBatch per morsel of view positions, per-morsel column chunks
/// concatenated type-stably in morsel order (Column::ConcatChunks), so the
/// result is bit-identical to one whole-view evaluation. rand()-bearing
/// expressions and sub-morsel inputs evaluate as a single serial batch.
Result<Column> EvalExprView(const sql::Expr& e, const RowView& view, Rng* rng,
                            int num_threads);

/// True if the expression tree contains a function that draws from the
/// engine RNG (rand / random / rand_poisson). Such expressions are pinned to
/// serial evaluation: the draw sequence is part of the deterministic,
/// seed-reproducible semantics, and Rng is not thread-safe.
bool ExprContainsRand(const sql::Expr& e);

/// Evaluates predicates over candidate (left_row, right_row) join pairs:
/// each call gathers its pairs into a combined left ++ right scratch table
/// and runs EvalPredicateBatch over it. Only the columns the predicate
/// actually references (bound column ordinals in its tree) are gathered —
/// the scratch keeps the full combined schema so ordinals line up, but
/// unreferenced columns stay empty. The scratch table, survivor vector, and
/// flag vector are all REUSED across calls — the streaming residual path
/// evaluates millions of candidate pairs in 64K-pair chunks, and per-chunk
/// allocation dominated the old flush loop. Right rows equal to
/// JoinPairView::kNullRightRow gather as NULL right columns (pushed-down
/// WHERE over left-join null extensions). The returned flags (one per pair:
/// predicate non-null and true) stay valid until the next Eval call.
class PairPredicateEvaluator {
 public:
  PairPredicateEvaluator(const Table& left, const Table& right, Rng* rng,
                         int num_threads)
      : left_(left), right_(right), rng_(rng), num_threads_(num_threads) {}

  Result<const std::vector<uint8_t>*> Eval(const sql::Expr& pred,
                                           const uint32_t* lrows,
                                           const uint32_t* rrows,
                                           size_t count);

 private:
  const Table& left_;
  const Table& right_;
  Rng* rng_;
  int num_threads_;
  Table scratch_;               // combined schema, rows cleared per call
  const sql::Expr* mask_pred_ = nullptr;  // predicate col_mask_ was built for
  std::vector<uint8_t> col_mask_;
  SelVector surviving_;
  std::vector<uint8_t> pass_;
};

/// Filters a JoinPairView in place by a predicate bound against the combined
/// (left ++ right) schema, streaming in bounded chunks through one reused
/// PairPredicateEvaluator scratch — candidate pairs are decided BEFORE the
/// combined gather, so non-survivors are never materialized. Null-extended
/// pairs evaluate with NULL right columns, matching post-materialization
/// WHERE semantics exactly (the planner's pair-view WHERE pushdown).
Status FilterJoinPairs(const sql::Expr& pred, JoinPairView* pairs, Rng* rng,
                       int num_threads);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_VECTOR_EVAL_H_
