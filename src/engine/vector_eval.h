// Batch-at-a-time (vectorized) expression evaluation.
//
// The row interpreter in expr_eval.h materializes a boxed Value per cell and
// re-walks the expression tree per row; on scan-shaped paths (WHERE, HAVING,
// projection, join residuals, sample preparation) that interpretation cost
// dominates. The batch evaluator walks the tree once per batch and runs
// type-specialized inner loops directly over the columnar storage
// (engine/column.h), materializing NULL masks lazily. Node types without a
// specialized kernel (most scalar functions, mixed-type CASE) fall back to
// the row interpreter per element, so the row evaluator remains the semantic
// reference; tests/test_vector_eval.cc asserts batch == row on randomized
// expressions. rand-family functions have true batch kernels: their values
// are row-addressed (common/random.h), so the kernel and the row fallback
// agree bit for bit and rand()-bearing queries need no serial pinning.

#ifndef VDB_ENGINE_VECTOR_EVAL_H_
#define VDB_ENGINE_VECTOR_EVAL_H_

#include "common/governor.h"
#include "common/random.h"
#include "common/status.h"
#include "engine/kernels/bitmap.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// A batch of input rows: a table plus an optional selection vector of
/// surviving row indices. [range_begin, range_end) slices the batch's
/// position domain — physical rows when `sel` is null, positions INTO `sel`
/// otherwise (a selection composed with a morsel row-range: how the
/// morsel-driven scan hands one worker its slice of a RowView without
/// copying the selection). The defaults cover the whole domain.
///
/// `rand_seed` is the per-statement query seed and `row_id_offset` shifts
/// physical rows onto global row ids (join pair-chunk scratch tables; 0
/// elsewhere): rand-family draws are pure functions of
/// (rand_seed, RowIdAt(i), node.rand_site), so every morsel split, plan
/// shape, and thread count sees identical values.
struct Batch {
  static constexpr size_t kWholeTable = static_cast<size_t>(-1);

  const Table* table = nullptr;
  const SelVector* sel = nullptr;  // null => physical rows
  uint64_t rand_seed = 0;          // per-statement query seed
  size_t range_begin = 0;
  size_t range_end = kWholeTable;  // kWholeTable => whole domain
  uint64_t row_id_offset = 0;      // global row id = physical row + offset

  size_t Domain() const {
    if (sel != nullptr) return sel->size();
    return table != nullptr ? table->num_rows() : 0;
  }
  size_t RangeEnd() const {
    return range_end == kWholeTable ? Domain() : range_end;
  }
  size_t size() const { return RangeEnd() - range_begin; }
  uint32_t RowAt(size_t i) const {
    return sel != nullptr ? (*sel)[range_begin + i]
                          : static_cast<uint32_t>(range_begin + i);
  }
  uint64_t RowIdAt(size_t i) const { return RowAt(i) + row_id_offset; }
};

/// Batch over view positions [begin, end): the range form for identity/range
/// views (zero-copy lanes), the sel-slice form otherwise. The view must
/// outlive the batch (the batch borrows its selection vector).
Batch ViewBatch(const RowView& view, uint64_t rand_seed, size_t begin,
                size_t end);
/// Batch over the whole view.
Batch ViewBatch(const RowView& view, uint64_t rand_seed);

/// Evaluates a bound expression for every batch position, column-at-a-time.
/// Returns a column of batch.size() rows, position i holding the value for
/// batch row i. Per-row semantics match EvalExpr, with two deliberate
/// deviations from the pre-vectorization executor:
///  - Boolean-valued expressions produce kBool columns (the old per-row
///    Column::Append materialization folded Bool into Int64); only
///    heterogeneous per-row type mixes still coerce through Column::Append.
///  - OR operands, CASE branches, and IN items are evaluated for the whole
///    batch rather than short-circuited per row, so expression-level errors
///    (e.g. an unknown function on the never-taken side) surface eagerly,
///    and rand() inside them draws for every row. Data-dependent NULLs
///    (division by zero etc.) are values, not errors, so results agree.
///    AND is selection-aware: when the left conjunct is selective (it
///    decides at least 3/4 of the rows false), the right conjunct is
///    evaluated only over the surviving rows (matching the row
///    interpreter's short-circuit); otherwise contiguous whole-batch lanes
///    stay cheaper and the decided rows are masked out afterwards.
Result<Column> EvalExprBatch(const sql::Expr& e, const Batch& batch);

/// Evaluates a predicate over the batch and appends the physical row indices
/// for which it is non-null and true to `*out` (in batch order). Three-valued
/// NULL logic matches EvalPredicate.
Status EvalPredicateBatch(const sql::Expr& e, const Batch& batch,
                          SelVector* out);

/// Evaluates a predicate over the whole table on up to num_threads threads:
/// one EvalPredicateBatch per row-range morsel, with the per-morsel selection
/// vectors concatenated in morsel order, so the result is identical to a
/// single-threaded evaluation. rand-family draws are row-addressed (pure
/// functions of row identity), so rand()-bearing predicates run on the same
/// morsel-parallel path as everything else; only sub-morsel inputs take the
/// single serial batch.
/// `guard` (optional everywhere in this header, nullptr = ungoverned) is
/// polled at every morsel claim; a trip unwinds with the guard's Status and
/// discards partial output.
Status EvalPredicateParallel(const sql::Expr& e, const Table& table,
                             uint64_t rand_seed, int num_threads,
                             SelVector* out,
                             const ExecGuard* guard = nullptr);

/// Fused membership scan + gather: evaluates `pred` over the whole table and
/// materializes the surviving rows in one morsel-parallel pass. Each worker
/// evaluates its morsel's batch and immediately gathers that morsel's
/// survivors into a per-morsel chunk table — survivor indices never leave
/// the worker, and the filtered morsel's columns are still cache-resident
/// when the gather touches them; chunks concatenate in morsel order. The
/// result is bit-identical to EvalPredicateParallel followed by
/// RowView::Select(...).Gather(...), without the full-table selection vector
/// or the second pass over the input. The sample builder's membership scans
/// (Bernoulli rand() < tau, verdict_hash(C) < tau) are the primary caller.
Result<TablePtr> FilterGatherParallel(const sql::Expr& pred,
                                      const Table& table, uint64_t rand_seed,
                                      int num_threads,
                                      const ExecGuard* guard = nullptr);

/// Evaluates a predicate over a RowView (selection composed with morsel
/// row-ranges) and appends the surviving PHYSICAL row indices to `*out` in
/// view order — the survivors directly form the composed downstream view, so
/// filters never gather. Morsel-parallel like EvalPredicateParallel, with the
/// same sub-morsel serial fallback.
Status EvalPredicateView(const sql::Expr& e, const RowView& view,
                         uint64_t rand_seed, int num_threads, SelVector* out,
                         const ExecGuard* guard = nullptr);

/// Evaluates a predicate over a RowView into a row bitmap (bit i set:
/// predicate non-null and true at view position i) instead of a selection
/// vector — the mask currency of the flat aggregation sink's selective
/// GROUP BY path, which walks set bits without ever expanding them to row
/// indices. Morsel-parallel with morsels rounded up to whole 64-bit words,
/// so each worker owns a disjoint word range of the output bitmap; the
/// predicate is per-row pure (rand draws are row-addressed), so the bitmap
/// CONTENT is identical at every thread count and morsel size.
Status EvalPredicateBitmap(const sql::Expr& e, const RowView& view,
                           uint64_t rand_seed, int num_threads,
                           kernels::Bitmap* out,
                           const ExecGuard* guard = nullptr);

/// Evaluates an expression over every view row, morsel-parallel: one
/// EvalExprBatch per morsel of view positions, per-morsel column chunks
/// concatenated type-stably in morsel order (Column::ConcatChunks), so the
/// result is bit-identical to one whole-view evaluation. Sub-morsel inputs
/// evaluate as a single serial batch; rand()-bearing expressions are NOT
/// special-cased (row-addressed draws).
Result<Column> EvalExprView(const sql::Expr& e, const RowView& view,
                            uint64_t rand_seed, int num_threads,
                            const ExecGuard* guard = nullptr);

/// Test/bench hook: when enabled, rand-bearing expressions lose their batch
/// kernels (the whole subtree row-interprets, including wrappers like
/// floor(rand() * b)) and the EvalPredicateParallel / EvalPredicateView /
/// EvalExprView entry points pin them to one serial whole-input batch —
/// approximating the pre-row-addressed "rand() stays serial" executor as a
/// performance baseline. Approximating, not reproducing: the planner's
/// partial-aggregation and pair-view pushdown decisions are NOT reverted,
/// so measure baselines at num_threads == 1, where those paths are serial
/// anyway. Results are identical either way (draws are row-addressed in
/// both modes); only the execution strategy changes. Off by default.
void SetSerialRandBaselineForTest(bool enabled);

/// Evaluates predicates over candidate (left_row, right_row) join pairs:
/// each call gathers its pairs into a combined left ++ right scratch table
/// and runs EvalPredicateBatch over it. Only the columns the predicate
/// actually references (bound column ordinals in its tree) are gathered —
/// the scratch keeps the full combined schema so ordinals line up, but
/// unreferenced columns stay empty. The scratch table and pass bitmap are
/// REUSED across calls — the streaming residual path evaluates millions of
/// candidate pairs in 64K-pair chunks, and per-chunk allocation dominated
/// the old flush loop; the bitmap is overwritten wholesale by the evaluator
/// (never re-zeroed per chunk). Right rows equal to
/// JoinPairView::kNullRightRow gather as NULL right columns (pushed-down
/// WHERE over left-join null extensions). The returned bitmap (bit i set:
/// predicate non-null and true for pair i) stays valid until the next Eval
/// call.
class PairPredicateEvaluator {
 public:
  PairPredicateEvaluator(const Table& left, const Table& right,
                         uint64_t rand_seed, int num_threads,
                         const ExecGuard* guard = nullptr)
      : left_(left),
        right_(right),
        rand_seed_(rand_seed),
        num_threads_(num_threads),
        guard_(guard) {}

  /// `row_id_base` is the global ordinal of the first pair in this chunk
  /// (pairs are streamed in a deterministic order), so rand-family draws in
  /// the predicate address (rand_seed, row_id_base + i, site) — for
  /// pushed-down WHERE chunks that ordinal equals the row the pair would
  /// occupy in the materialized join output, making pushdown-on and
  /// pushdown-off evaluation bit-identical.
  Result<const kernels::Bitmap*> Eval(const sql::Expr& pred,
                                      const uint32_t* lrows,
                                      const uint32_t* rrows, size_t count,
                                      uint64_t row_id_base);

 private:
  const Table& left_;
  const Table& right_;
  uint64_t rand_seed_;
  int num_threads_;
  const ExecGuard* guard_ = nullptr;  // polled per Eval chunk
  Table scratch_;               // combined schema, rows cleared per call
  const sql::Expr* mask_pred_ = nullptr;  // predicate col_mask_ was built for
  std::vector<uint8_t> col_mask_;
  kernels::Bitmap pass_;
};

/// Filters a JoinPairView in place by a predicate bound against the combined
/// (left ++ right) schema, streaming in bounded chunks through one reused
/// PairPredicateEvaluator scratch — candidate pairs are decided BEFORE the
/// combined gather, so non-survivors are never materialized. Null-extended
/// pairs evaluate with NULL right columns, matching post-materialization
/// WHERE semantics exactly (the planner's pair-view WHERE pushdown).
Status FilterJoinPairs(const sql::Expr& pred, JoinPairView* pairs,
                       uint64_t rand_seed, int num_threads,
                       const ExecGuard* guard = nullptr);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_VECTOR_EVAL_H_
