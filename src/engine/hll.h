// HyperLogLog cardinality sketch (Flajolet et al. 2007).
//
// Backs the engine's native `ndv()` / `approx_distinct()` aggregate, the
// stand-in for Impala's ndv and Redshift's approximate count(distinct) in
// Table 2. Like those implementations, it requires a full scan of the data.

#ifndef VDB_ENGINE_HLL_H_
#define VDB_ENGINE_HLL_H_

#include <cstdint>
#include <vector>

namespace vdb::engine {

class HyperLogLog {
 public:
  /// precision in [4, 18]; 2^precision registers. Default 14 -> ~0.8% error.
  explicit HyperLogLog(int precision = 14);

  void AddHash(uint64_t hash);
  /// Bias-corrected cardinality estimate with small/large range corrections.
  double Estimate() const;
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace vdb::engine

#endif  // VDB_ENGINE_HLL_H_
