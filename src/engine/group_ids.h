// Vectorized (column-at-a-time) group-id assignment for hash aggregation,
// DISTINCT, and any other grouping pass. Replaces the per-row std::string
// key concatenation the planner used: each group column is hashed in one
// typed inner loop, the per-column hashes are mixed into a single 64-bit row
// hash, and rows are bucketed by hash with a raw-storage equality check
// against each group's representative row to resolve collisions.
//
// The induced partition matches ValueGroupKey's equivalence: NULL groups
// with NULL, numerically equal integers and doubles group together (5 and
// 5.0), every NaN groups with every other NaN, and -0.0 groups with 0.0.

#ifndef VDB_ENGINE_GROUP_IDS_H_
#define VDB_ENGINE_GROUP_IDS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/column.h"

namespace vdb::engine {

struct GroupAssignment {
  /// Group id of each input row; ids are dense and assigned in order of
  /// first occurrence (so group g's representative precedes group g+1's).
  std::vector<uint32_t> gid_of_row;
  /// First input row of each group, ascending.
  std::vector<uint32_t> rep_row;

  size_t num_groups() const { return rep_row.size(); }
};

/// Mixes column `col`'s per-row group hash into hashes[0..num_rows). Called
/// once per group column; the loops are type-specialized over raw storage.
void HashGroupColumn(const Column& col, size_t num_rows,
                     std::vector<uint64_t>* hashes);

/// Guard for the uint32_t gid/rep_row storage (and SelVector outputs built
/// from it): callers must reject inputs above 2^32 - 2 rows with this Status
/// instead of silently truncating ids.
Status CheckGroupableRows(size_t num_rows);

/// Assigns dense group ids over `cols` (all of size num_rows). With no
/// columns, every row lands in one group (the implicit aggregate group).
/// Precondition: CheckGroupableRows(num_rows).ok().
GroupAssignment AssignGroupIds(const std::vector<const Column*>& cols,
                               size_t num_rows);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_GROUP_IDS_H_
