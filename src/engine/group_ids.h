// Vectorized (column-at-a-time) group-id assignment for hash aggregation,
// DISTINCT, and any other grouping pass. Replaces the per-row std::string
// key concatenation the planner used: each group column is hashed in one
// typed inner loop, the per-column hashes are mixed into a single 64-bit row
// hash, and rows are bucketed by hash with a raw-storage equality check
// against each group's representative row to resolve collisions.
//
// The induced partition matches ValueGroupKey's equivalence: NULL groups
// with NULL, numerically equal integers and doubles group together (5 and
// 5.0), every NaN groups with every other NaN, and -0.0 groups with 0.0.

#ifndef VDB_ENGINE_GROUP_IDS_H_
#define VDB_ENGINE_GROUP_IDS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "engine/column.h"

namespace vdb::engine {

/// Initial mixing state for every multi-column group/join key hash. Hashes
/// are pure functions of the key values, so any two sites that hash the same
/// values (different morsels, the partial-merge table, a test) agree.
constexpr uint64_t kGroupHashSeed = 0x2545F4914F6CDD1Dull;

struct GroupAssignment {
  /// Group id of each input row; ids are dense and assigned in order of
  /// first occurrence (so group g's representative precedes group g+1's).
  std::vector<uint32_t> gid_of_row;
  /// First input row of each group, ascending.
  std::vector<uint32_t> rep_row;
  /// Mixed key hash of each group (the per-row hash of its representative,
  /// after the test mask). Pure function of the key values, so partial
  /// results from different morsels carry merge-table-ready hashes.
  std::vector<uint64_t> group_hash;

  size_t num_groups() const { return rep_row.size(); }
};

/// Mixes column `col`'s per-row group hash into hashes[0..num_rows). Called
/// once per group column; the loops are type-specialized over raw storage.
void HashGroupColumn(const Column& col, size_t num_rows,
                     std::vector<uint64_t>* hashes);

/// Range form: mixes the group hash of rows [begin, end) into
/// out[0 .. end - begin) (relative output indexing). The flat sink's
/// zero-copy direct-column path hashes a morsel's slice of a table column
/// without materializing it first.
void HashGroupColumnRange(const Column& col, size_t begin, size_t end,
                          uint64_t* out);

/// Raw-storage equality of rows `a` and `b` across the group columns, under
/// ValueGroupKey equivalence (NULL == NULL, NaN == NaN, -0.0 == 0.0). The
/// representative-row verification step of every flat group table.
bool GroupRowsEqual(const std::vector<const Column*>& cols, size_t a,
                    size_t b);

/// Per-value group hash under the same equivalence the column hashers use:
/// 5 (Int64) and 5.0 (Double) hash equally, every NaN hashes to one class,
/// -0.0 hashes like 0, NULL gets its own tag. Feeds the hashed partial-merge
/// table and the flat DISTINCT value set.
uint64_t GroupValueHash(const Value& v);

/// Value equality under ValueGroupKey equivalence — the Value mirror of
/// GroupRowsEqual's per-cell check (Value::Compare cannot serve here: it
/// buckets NaN as equal to everything, while grouping needs NaN == NaN
/// only).
bool GroupValuesEqual(const Value& a, const Value& b);

// ---------------------------------------------------------- join-key hashing

/// Hashes multi-column join keys for rows [begin, end) column-at-a-time into
/// hashes[begin..end) (absolute row indexing; callers morsel-parallelize by
/// handing workers disjoint ranges of preallocated arrays) and ORs a flag
/// into any_null[r] for rows with a NULL in any key column (NULL join keys
/// never match, unlike grouping where NULL groups with NULL).
///
/// The hash respects ValueGroupKey equivalence across differently-typed key
/// columns: 5 (Int64) and 5.0 (Double) hash equally, every NaN hashes to one
/// class, and -0.0 hashes like 0 — so an Int64 key column joins against a
/// Double key column exactly as the string-key reference did, and serial and
/// radix-partitioned parallel builds agree bit-for-bit.
void HashJoinKeyColumns(const std::vector<const Column*>& keys, size_t begin,
                        size_t end, uint64_t* hashes, uint8_t* any_null);

/// Cross-table key equality under ValueGroupKey equivalence: row `arow` of
/// key columns `a` vs row `brow` of key columns `b` (same arity). Numeric
/// values compare by value across Int64/Double columns, NaN equals NaN,
/// -0.0 equals 0.0, strings never equal numerics. Only called for same-hash
/// candidates, so it stays off the probe hot path.
bool JoinKeysEqual(const std::vector<const Column*>& a, size_t arow,
                   const std::vector<const Column*>& b, size_t brow);

/// Test hook: ANDs every join-key hash with `mask` after mixing, forcing
/// distinct keys into shared 64-bit hashes so collision handling in the flat
/// build table is exercised deterministically. ~0ull (the default) disables.
/// Applies to join-key hashing only, never to group-id assignment.
void SetJoinKeyHashMaskForTest(uint64_t mask);

/// Guard for the uint32_t gid/rep_row storage (and SelVector outputs built
/// from it): callers must reject inputs above 2^32 - 2 rows with this Status
/// instead of silently truncating ids.
Status CheckGroupableRows(size_t num_rows);

/// Assigns dense group ids over `cols` (all of size num_rows). With no
/// columns, every row lands in one group (the implicit aggregate group).
/// Precondition: CheckGroupableRows(num_rows).ok().
/// Implemented in engine/agg_table.cc over the flat open-addressing
/// GroupTable (hash-first match, representative-row verification).
GroupAssignment AssignGroupIds(const std::vector<const Column*>& cols,
                               size_t num_rows);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_GROUP_IDS_H_
