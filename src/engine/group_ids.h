// Vectorized (column-at-a-time) group-id assignment for hash aggregation,
// DISTINCT, and any other grouping pass. Replaces the per-row std::string
// key concatenation the planner used: each group column is hashed in one
// typed inner loop, the per-column hashes are mixed into a single 64-bit row
// hash, and rows are bucketed by hash with a raw-storage equality check
// against each group's representative row to resolve collisions.
//
// The induced partition matches ValueGroupKey's equivalence: NULL groups
// with NULL, numerically equal integers and doubles group together (5 and
// 5.0), every NaN groups with every other NaN, and -0.0 groups with 0.0.

#ifndef VDB_ENGINE_GROUP_IDS_H_
#define VDB_ENGINE_GROUP_IDS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/column.h"

namespace vdb::engine {

struct GroupAssignment {
  /// Group id of each input row; ids are dense and assigned in order of
  /// first occurrence (so group g's representative precedes group g+1's).
  std::vector<uint32_t> gid_of_row;
  /// First input row of each group, ascending.
  std::vector<uint32_t> rep_row;

  size_t num_groups() const { return rep_row.size(); }
};

/// Mixes column `col`'s per-row group hash into hashes[0..num_rows). Called
/// once per group column; the loops are type-specialized over raw storage.
void HashGroupColumn(const Column& col, size_t num_rows,
                     std::vector<uint64_t>* hashes);

// ---------------------------------------------------------- join-key hashing

/// Hashes multi-column join keys for rows [begin, end) column-at-a-time into
/// hashes[begin..end) (absolute row indexing; callers morsel-parallelize by
/// handing workers disjoint ranges of preallocated arrays) and ORs a flag
/// into any_null[r] for rows with a NULL in any key column (NULL join keys
/// never match, unlike grouping where NULL groups with NULL).
///
/// The hash respects ValueGroupKey equivalence across differently-typed key
/// columns: 5 (Int64) and 5.0 (Double) hash equally, every NaN hashes to one
/// class, and -0.0 hashes like 0 — so an Int64 key column joins against a
/// Double key column exactly as the string-key reference did, and serial and
/// radix-partitioned parallel builds agree bit-for-bit.
void HashJoinKeyColumns(const std::vector<const Column*>& keys, size_t begin,
                        size_t end, uint64_t* hashes, uint8_t* any_null);

/// Cross-table key equality under ValueGroupKey equivalence: row `arow` of
/// key columns `a` vs row `brow` of key columns `b` (same arity). Numeric
/// values compare by value across Int64/Double columns, NaN equals NaN,
/// -0.0 equals 0.0, strings never equal numerics. Only called for same-hash
/// candidates, so it stays off the probe hot path.
bool JoinKeysEqual(const std::vector<const Column*>& a, size_t arow,
                   const std::vector<const Column*>& b, size_t brow);

/// Test hook: ANDs every join-key hash with `mask` after mixing, forcing
/// distinct keys into shared 64-bit hashes so collision handling in the flat
/// build table is exercised deterministically. ~0ull (the default) disables.
/// Applies to join-key hashing only, never to group-id assignment.
void SetJoinKeyHashMaskForTest(uint64_t mask);

/// Guard for the uint32_t gid/rep_row storage (and SelVector outputs built
/// from it): callers must reject inputs above 2^32 - 2 rows with this Status
/// instead of silently truncating ids.
Status CheckGroupableRows(size_t num_rows);

/// Assigns dense group ids over `cols` (all of size num_rows). With no
/// columns, every row lands in one group (the implicit aggregate group).
/// Precondition: CheckGroupableRows(num_rows).ok().
GroupAssignment AssignGroupIds(const std::vector<const Column*>& cols,
                               size_t num_rows);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_GROUP_IDS_H_
