// Dispatch-level management and the always-built scalar kernel table.
//
// The level is resolved once, lazily, on the first Ops()/CurrentSimdLevel()
// call: best CPU-supported level (DetectedSimdLevel), optionally forced down
// by the VDB_SIMD environment variable — the mechanism behind the CI leg
// that runs the whole suite with SIMD disabled. SetSimdLevelForTest swaps
// the table at runtime (clamped to the detected level), which is how the
// differential fuzz runs every expression under every level in one process.

#include "engine/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "engine/kernels/kernels_scalar.h"

namespace vdb::engine::kernels {

#ifdef VDB_HAVE_AVX2
// Defined in kernels_avx2.cc (the one file compiled with -mavx2).
const KernelOps& Avx2Ops();
#endif

namespace {

void CmpI64VV(CmpOp op, const int64_t* a, const int64_t* b, size_t n,
              uint64_t* bits) {
  scalar::CmpVV(op, a, b, n, bits);
}
void CmpI64VC(CmpOp op, const int64_t* a, int64_t c, size_t n,
              uint64_t* bits) {
  scalar::CmpVC(op, a, c, n, bits);
}
void CmpF64VV(CmpOp op, const double* a, const double* b, size_t n,
              uint64_t* bits) {
  scalar::CmpVV(op, a, b, n, bits);
}
void CmpF64VC(CmpOp op, const double* a, double c, size_t n, uint64_t* bits) {
  scalar::CmpVC(op, a, c, n, bits);
}

void ArithI64VV(ArithOp op, const int64_t* a, const int64_t* b, size_t n,
                int64_t* out) {
  scalar::ArithLoop<int64_t>(
      op, [&](size_t k) { return a[k]; }, [&](size_t k) { return b[k]; }, n,
      out);
}
void ArithI64VC(ArithOp op, const int64_t* a, int64_t c, size_t n,
                int64_t* out) {
  scalar::ArithLoop<int64_t>(
      op, [&](size_t k) { return a[k]; }, [&](size_t) { return c; }, n, out);
}
void ArithI64CV(ArithOp op, int64_t c, const int64_t* b, size_t n,
                int64_t* out) {
  scalar::ArithLoop<int64_t>(
      op, [&](size_t) { return c; }, [&](size_t k) { return b[k]; }, n, out);
}
void ArithF64VV(ArithOp op, const double* a, const double* b, size_t n,
                double* out) {
  scalar::ArithLoop<double>(
      op, [&](size_t k) { return a[k]; }, [&](size_t k) { return b[k]; }, n,
      out);
}
void ArithF64VC(ArithOp op, const double* a, double c, size_t n, double* out) {
  scalar::ArithLoop<double>(
      op, [&](size_t k) { return a[k]; }, [&](size_t) { return c; }, n, out);
}
void ArithF64CV(ArithOp op, double c, const double* b, size_t n, double* out) {
  scalar::ArithLoop<double>(
      op, [&](size_t) { return c; }, [&](size_t k) { return b[k]; }, n, out);
}

const KernelOps kScalarOps = {
    CmpI64VV,
    CmpI64VC,
    CmpF64VV,
    CmpF64VC,
    ArithI64VV,
    ArithI64VC,
    ArithI64CV,
    ArithF64VV,
    ArithF64VC,
    ArithF64CV,
    scalar::BytesNonzeroBits,
    scalar::RandF64Seq,
    scalar::HashMixI64,
    scalar::BloomPrefilter,
    scalar::GatherI64,
    scalar::GatherF64,
    scalar::ScatterSumI64,
    scalar::ScatterSumF64,
};

const KernelOps* OpsFor(SimdLevel level) {
#ifdef VDB_HAVE_AVX2
  if (level == SimdLevel::kAvx2) return &Avx2Ops();
#else
  (void)level;
#endif
  return &kScalarOps;
}

SimdLevel ClampToDetected(SimdLevel level) {
  return static_cast<int>(level) <= static_cast<int>(DetectedSimdLevel())
             ? level
             : DetectedSimdLevel();
}

// The pair is atomic (not GUARDED_BY a mutex) because the readers are the
// per-batch kernel call sites — a lock there would serialize the substrate
// the dispatch exists to speed up. SetSimdLevelForTest stores between
// queries; idle pool workers may still load concurrently, so plain fields
// would be a formal (and TSan-visible) race even though every table is an
// immutable static. level and ops are independently atomic rather than one
// word: a reader that sees the new ops with the old level only misreports
// the level name mid-swap, never calls through a torn pointer.
struct Dispatch {
  std::atomic<SimdLevel> level;
  std::atomic<const KernelOps*> ops;

  Dispatch() {
    SimdLevel l = DetectedSimdLevel();
    if (const char* env = std::getenv("VDB_SIMD")) {
      if (std::strcmp(env, "scalar") == 0) {
        l = SimdLevel::kScalar;
      } else if (std::strcmp(env, "avx2") == 0) {
        l = ClampToDetected(SimdLevel::kAvx2);
      }
    }
    level.store(l, std::memory_order_relaxed);
    ops.store(OpsFor(l), std::memory_order_relaxed);
  }
};

Dispatch& GetDispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

SimdLevel DetectedSimdLevel() {
#if defined(VDB_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  static const SimdLevel detected =
      __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel CurrentSimdLevel() {
  return GetDispatch().level.load(std::memory_order_relaxed);
}

void SetSimdLevelForTest(SimdLevel level) {
  Dispatch& d = GetDispatch();
  const SimdLevel clamped = ClampToDetected(level);
  d.level.store(clamped, std::memory_order_relaxed);
  d.ops.store(OpsFor(clamped), std::memory_order_release);
}

const char* SimdLevelName(SimdLevel level) {
  return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

const KernelOps& Ops() {
  return *GetDispatch().ops.load(std::memory_order_acquire);
}

}  // namespace vdb::engine::kernels
