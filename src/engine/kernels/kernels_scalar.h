// Scalar reference implementations of every kernel in kernels.h — inline so
// both dispatch tables share them: kernels.cc wires them up verbatim as the
// always-built fallback, and kernels_avx2.cc runs them on the sub-64-row tail
// of each input, which makes tail rows LITERALLY the same code at every
// dispatch level (bit-identity by construction, not by parallel maintenance).
//
// These are the semantic reference. An AVX2 kernel that disagrees with the
// function here on any input is wrong, whatever it matches instead.

#ifndef VDB_ENGINE_KERNELS_KERNELS_SCALAR_H_
#define VDB_ENGINE_KERNELS_KERNELS_SCALAR_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/hash.h"
#include "common/random.h"
#include "engine/kernels/kernels.h"

namespace vdb::engine::kernels::scalar {

/// cmp(x, y) under the engine's three-way convention: built from < and >
/// only, so double NaNs land in the "neither" bucket and kEq(NaN, x) holds.
/// For int64 these reduce to the native relations.
template <typename T>
inline bool CmpHolds(CmpOp op, T x, T y) {
  switch (op) {
    case CmpOp::kEq: return !(x < y) && !(x > y);
    case CmpOp::kNe: return x < y || x > y;
    case CmpOp::kLt: return x < y;
    case CmpOp::kLe: return !(x > y);
    case CmpOp::kGt: return x > y;
    case CmpOp::kGe: return !(x < y);
  }
  return false;
}

/// One output word of a compare: rows [base, base + m), m <= 64.
template <typename T, typename GetB>
inline uint64_t CmpWord(CmpOp op, const T* a, GetB get_b, size_t base,
                        size_t m) {
  uint64_t word = 0;
  for (size_t k = 0; k < m; ++k) {
    word |= static_cast<uint64_t>(CmpHolds(op, a[base + k], get_b(base + k)))
            << k;
  }
  return word;
}

template <typename T>
inline void CmpVV(CmpOp op, const T* a, const T* b, size_t n, uint64_t* bits) {
  const size_t words = (n + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t m = n - base < 64 ? n - base : 64;
    bits[w] = CmpWord(op, a, [&](size_t k) { return b[k]; }, base, m);
  }
}

template <typename T>
inline void CmpVC(CmpOp op, const T* a, T c, size_t n, uint64_t* bits) {
  const size_t words = (n + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t m = n - base < 64 ? n - base : 64;
    bits[w] = CmpWord(op, a, [&](size_t) { return c; }, base, m);
  }
}

/// Int64 arithmetic in uint64: wrap mod 2^64 is defined behavior and equals
/// the two's-complement wrap AVX2's paddq/psubq/mul-emulation performs.
inline int64_t ArithApply(ArithOp op, int64_t x, int64_t y) {
  const uint64_t ux = static_cast<uint64_t>(x), uy = static_cast<uint64_t>(y);
  uint64_t r = 0;
  switch (op) {
    case ArithOp::kAdd: r = ux + uy; break;
    case ArithOp::kSub: r = ux - uy; break;
    case ArithOp::kMul: r = ux * uy; break;
  }
  return static_cast<int64_t>(r);
}

inline double ArithApply(ArithOp op, double x, double y) {
  switch (op) {
    case ArithOp::kAdd: return x + y;
    case ArithOp::kSub: return x - y;
    case ArithOp::kMul: return x * y;
  }
  return 0.0;
}

template <typename T, typename GetA, typename GetB>
inline void ArithLoop(ArithOp op, GetA ga, GetB gb, size_t n, T* out) {
  // One loop per op so the inner call constant-folds its switch away.
  switch (op) {
    case ArithOp::kAdd:
      for (size_t k = 0; k < n; ++k) {
        out[k] = ArithApply(ArithOp::kAdd, T(ga(k)), T(gb(k)));
      }
      break;
    case ArithOp::kSub:
      for (size_t k = 0; k < n; ++k) {
        out[k] = ArithApply(ArithOp::kSub, T(ga(k)), T(gb(k)));
      }
      break;
    case ArithOp::kMul:
      for (size_t k = 0; k < n; ++k) {
        out[k] = ArithApply(ArithOp::kMul, T(ga(k)), T(gb(k)));
      }
      break;
  }
}

inline void BytesNonzeroBits(const uint8_t* bytes, size_t n, uint64_t* bits) {
  const size_t words = (n + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t m = n - base < 64 ? n - base : 64;
    uint64_t word = 0;
    for (size_t k = 0; k < m; ++k) {
      word |= static_cast<uint64_t>(bytes[base + k] != 0) << k;
    }
    bits[w] = word;
  }
}

inline void RandF64Seq(uint64_t seed, uint64_t row0, uint64_t site, size_t n,
                       double* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = CounterRandomDouble(seed, row0 + k, site);
  }
}

/// The Int64 lane of group/join key hashing: per-row value hash, then the
/// boost-style combine + full mix engine/group_ids.cc documents (MixInto).
inline uint64_t HashMixInto(uint64_t h, uint64_t v) {
  return HashMix64(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
}

inline void HashMixI64(uint64_t* h, const int64_t* data, const uint8_t* nulls,
                       uint64_t null_hash, size_t n) {
  if (nulls == nullptr) {
    for (size_t k = 0; k < n; ++k) {
      h[k] = HashMixInto(h[k], HashMix64(static_cast<uint64_t>(data[k])));
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      const uint64_t v = nulls[k] != 0
                             ? null_hash
                             : HashMix64(static_cast<uint64_t>(data[k]));
      h[k] = HashMixInto(h[k], v);
    }
  }
}

/// The two test bits key h sets/probes within its blocked-Bloom word:
/// bit positions (h>>38)&63 and (h>>44)&63. JoinBuildTable sets exactly this
/// mask at build time; both prefilter kernels test it.
inline uint64_t BloomBitMask(uint64_t h) {
  return (uint64_t{1} << ((h >> 38) & 63)) |
         (uint64_t{1} << ((h >> 44) & 63));
}

/// Membership test against a blocked Bloom filter (engine/join_table.cc
/// layout): key h owns word h >> shift and tests BloomBitMask(h) within it.
inline bool BloomMaybeContains(const uint64_t* bloom_words, int shift,
                               uint64_t h) {
  const uint64_t mask = BloomBitMask(h);
  return (bloom_words[h >> shift] & mask) == mask;
}

inline void BloomPrefilter(const uint64_t* bloom_words, int shift,
                           const uint64_t* hashes, size_t n, uint64_t* bits) {
  const size_t words = (n + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    const size_t base = w * 64;
    const size_t m = n - base < 64 ? n - base : 64;
    uint64_t word = 0;
    for (size_t k = 0; k < m; ++k) {
      word |= static_cast<uint64_t>(
                  BloomMaybeContains(bloom_words, shift, hashes[base + k]))
              << k;
    }
    bits[w] = word;
  }
}

inline void GatherI64(const int64_t* src, const uint32_t* rows, size_t n,
                      int64_t* out) {
  for (size_t k = 0; k < n; ++k) out[k] = src[rows[k]];
}

inline void GatherF64(const double* src, const uint32_t* rows, size_t n,
                      double* out) {
  for (size_t k = 0; k < n; ++k) out[k] = src[rows[k]];
}

/// Kahan–Babuška–Neumaier step, identical to engine/aggregates.cc's
/// NeumaierAdd: the flat SoA sink and the per-group reference accumulators
/// must round the same way at every addition.
inline void NeumaierStep(double& sum, double& comp, double x) {
  const double t = sum + x;
  if (std::abs(sum) >= std::abs(x)) {
    comp += (sum - t) + x;
  } else {
    comp += (x - t) + sum;
  }
  sum = t;
}

template <typename T>
inline void ScatterSum(const T* x, const uint8_t* nulls, const uint32_t* rows,
                       const uint32_t* gids, size_t n, double* sums,
                       double* comps, uint8_t* any, int64_t* ns) {
  for (size_t k = 0; k < n; ++k) {
    const size_t r = rows == nullptr ? k : rows[k];
    if (nulls != nullptr && nulls[r] != 0) continue;
    const uint32_t g = gids[k];
    NeumaierStep(sums[g], comps[g], static_cast<double>(x[r]));
    if (any != nullptr) any[g] = 1;
    if (ns != nullptr) ++ns[g];
  }
}

inline void ScatterSumI64(const int64_t* x, const uint8_t* nulls,
                          const uint32_t* rows, const uint32_t* gids, size_t n,
                          double* sums, double* comps, uint8_t* any,
                          int64_t* ns) {
  ScatterSum(x, nulls, rows, gids, n, sums, comps, any, ns);
}

inline void ScatterSumF64(const double* x, const uint8_t* nulls,
                          const uint32_t* rows, const uint32_t* gids, size_t n,
                          double* sums, double* comps, uint8_t* any,
                          int64_t* ns) {
  ScatterSum(x, nulls, rows, gids, n, sums, comps, any, ns);
}

}  // namespace vdb::engine::kernels::scalar

#endif  // VDB_ENGINE_KERNELS_KERNELS_SCALAR_H_
