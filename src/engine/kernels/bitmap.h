// Word-addressed row bitmap: 1 bit per row, little-endian within each 64-bit
// word (row k lives at word k/64, bit k%64).
//
// This is the mask currency of the kernel layer (engine/kernels/kernels.h):
// comparison kernels emit one bit per row, NULL byte-masks convert to bitmaps
// once per batch, and predicate combination (AND/OR/NOT, Kleene tri-state)
// becomes bitwise ops over 64 rows at a time with popcount-based survivor
// counting — replacing the byte-per-row std::vector<uint8_t>/int8_t masks the
// evaluator used before.
//
// Invariant: bits at positions >= bits() in the last word are ZERO. Every
// producer must uphold it (kernels zero their tails; ClearTail() re-masks
// after whole-word ops like negation), so CountSet() and word-wise combines
// never see ghost rows.

#ifndef VDB_ENGINE_KERNELS_BITMAP_H_
#define VDB_ENGINE_KERNELS_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vdb::engine::kernels {

class Bitmap {
 public:
  static constexpr size_t kWordBits = 64;

  static size_t WordsFor(size_t bits) { return (bits + 63) / 64; }

  size_t bits() const { return bits_; }
  size_t num_words() const { return words_.size(); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }
  uint64_t word(size_t w) const { return words_[w]; }

  /// Sizes to `bits` rows, all zero.
  void ResetZero(size_t bits) {
    bits_ = bits;
    words_.assign(WordsFor(bits), 0);
  }

  /// Sizes to `bits` rows WITHOUT clearing existing words — for buffers a
  /// kernel is about to overwrite wholesale (the reused-scratch path; avoids
  /// the per-chunk re-zeroing the byte masks paid).
  void ResetForOverwrite(size_t bits) {
    bits_ = bits;
    words_.resize(WordsFor(bits));
  }

  /// Sizes to `bits` rows, all one (tail kept zero).
  void ResetOnes(size_t bits) {
    bits_ = bits;
    words_.assign(WordsFor(bits), ~uint64_t{0});
    ClearTail();
  }

  bool Test(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1u; }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Re-zeros the bits past bits() in the last word (call after whole-word
  /// operations that may have set them, e.g. negation).
  void ClearTail() {
    if ((bits_ & 63) != 0 && !words_.empty()) {
      words_.back() &= ~uint64_t{0} >> (64 - (bits_ & 63));
    }
  }

  /// Number of set bits (popcount over the words; tail bits are zero by
  /// invariant, so this is exact).
  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace vdb::engine::kernels

#endif  // VDB_ENGINE_KERNELS_BITMAP_H_
