// Runtime-dispatched SIMD kernel layer.
//
// One dispatch table (KernelOps) of data-parallel primitives behind the
// engine's hot loops: Int64/Double comparison lanes emitting row bitmaps,
// Int64/Double arithmetic lanes, NULL byte-mask -> bitmap conversion, the
// row-addressed CounterRandom draw over sequential row ids, the multi-column
// join/group key hash mix, and the join Bloom pre-probe. The scalar
// implementations are ALWAYS built and are the semantic reference; an AVX2
// table is compiled only when the toolchain supports -mavx2 (CMake gates the
// one file) and is selected at startup iff the CPU reports AVX2.
//
// Dispatch contract:
//  - The level is detected once (CPUID via __builtin_cpu_supports) and can be
//    forced DOWN by the VDB_SIMD environment variable ("scalar" | "avx2") or
//    by SetSimdLevelForTest(); requests above the detected level clamp to it,
//    so tests can always ask for kAvx2 and silently run scalar on old boxes.
//  - Every kernel is BIT-IDENTICAL across levels: equal inputs produce equal
//    output bytes at every level, for every n (including n % 64 != 0 tails
//    and n == 0). The differential fuzz in tests/test_vector_eval.cc and the
//    kernel units in tests/test_kernels.cc enforce this; the scalar-forced CI
//    leg keeps the fallback from rotting. See README.md in this directory
//    for the rules a new kernel must follow.
//  - SetSimdLevelForTest is a plain global like the engine's other test
//    hooks: set it only while no parallel region is in flight.
//
// Semantics pinned by the scalar reference (kernels must not drift):
//  - Double comparisons are phrased from < and > only (the engine's
//    three-way convention): NaN operands land in the cmp == 0 bucket, so
//    kEq(NaN, x) is TRUE — matching Value::Compare / ThreeWayD.
//  - Int64 add/sub/mul wrap mod 2^64 (computed in uint64_t; two's-complement
//    wrap, the same thing AVX2's paddq/psubq/pmullq-emulation does).
//  - Output bitmaps are written wholesale: every word of the destination is
//    stored, and tail bits beyond n are zero.

#ifndef VDB_ENGINE_KERNELS_KERNELS_H_
#define VDB_ENGINE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace vdb::engine::kernels {

enum class SimdLevel : int { kScalar = 0, kAvx2 = 1 };

/// Best level this binary + CPU supports (computed once).
SimdLevel DetectedSimdLevel();

/// Level the dispatch table currently runs at.
SimdLevel CurrentSimdLevel();

/// Forces the dispatch level; clamps to DetectedSimdLevel(). Test/bench hook
/// (and the VDB_SIMD env override's mechanism): both paths stay CI-covered.
void SetSimdLevelForTest(SimdLevel level);

/// "scalar" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// Comparison operator of a compare kernel. The engine's NaN convention is
/// baked in (see file header); for Int64 these are the native relations.
enum class CmpOp : int { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// Mirrors the operator across swapped operands: cmp(c, x) == Mirror(cmp)(x, c)
/// under the three-way formulation (valid for NaN too), so const-vs-vector
/// shapes reuse the vector-vs-const kernels.
inline CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

enum class ArithOp : int { kAdd = 0, kSub, kMul };

/// The dispatch table. `bits` outputs are row bitmaps (bitmap.h layout:
/// little-endian bit per row, zeroed tail), sized Bitmap::WordsFor(n) words.
/// All pointers may be unaligned; vector/vector operands must not overlap
/// outputs. n == 0 is a no-op.
struct KernelOps {
  // Comparisons: bit k of `bits` = cmp(a[k], b[k]) (vv) or cmp(a[k], c) (vc).
  void (*cmp_i64_vv)(CmpOp op, const int64_t* a, const int64_t* b, size_t n,
                     uint64_t* bits);
  void (*cmp_i64_vc)(CmpOp op, const int64_t* a, int64_t c, size_t n,
                     uint64_t* bits);
  void (*cmp_f64_vv)(CmpOp op, const double* a, const double* b, size_t n,
                     uint64_t* bits);
  void (*cmp_f64_vc)(CmpOp op, const double* a, double c, size_t n,
                     uint64_t* bits);

  // Arithmetic lanes; every element is computed (NULL masking is the
  // caller's job — payloads at NULL rows are never observed but must still
  // be level-identical, which computing unconditionally guarantees).
  void (*arith_i64_vv)(ArithOp op, const int64_t* a, const int64_t* b,
                       size_t n, int64_t* out);
  void (*arith_i64_vc)(ArithOp op, const int64_t* a, int64_t c, size_t n,
                       int64_t* out);
  void (*arith_i64_cv)(ArithOp op, int64_t c, const int64_t* b, size_t n,
                       int64_t* out);
  void (*arith_f64_vv)(ArithOp op, const double* a, const double* b, size_t n,
                       double* out);
  void (*arith_f64_vc)(ArithOp op, const double* a, double c, size_t n,
                       double* out);
  void (*arith_f64_cv)(ArithOp op, double c, const double* b, size_t n,
                       double* out);

  // Bit k of `bits` = (bytes[k] != 0): NULL byte-mask -> bitmap conversion.
  void (*bytes_nonzero_bits)(const uint8_t* bytes, size_t n, uint64_t* bits);

  // out[k] = CounterRandomDouble(seed, row0 + k, site): the rand-family
  // batch kernel over sequential physical row ids (4-lane mix under AVX2).
  void (*rand_f64_seq)(uint64_t seed, uint64_t row0, uint64_t site, size_t n,
                       double* out);

  // h[k] = MixInto(h[k], nulls[k] ? kNullHash : HashMix64(data[k])): the
  // Int64 lane of multi-column group/join key hashing (engine/group_ids.cc
  // owns the constants and passes null_hash in). `nulls` may be null.
  void (*hash_mix_i64)(uint64_t* h, const int64_t* data, const uint8_t* nulls,
                       uint64_t null_hash, size_t n);

  // Join Bloom pre-probe: bit k = MaybeContains(hashes[k]) against a blocked
  // Bloom filter of 2^(64-shift) words where key h sets bits
  // (h>>38)&63 and (h>>44)&63 of word h>>shift (gathered under AVX2).
  void (*bloom_prefilter)(const uint64_t* bloom_words, int shift,
                          const uint64_t* hashes, size_t n, uint64_t* bits);

  // out[k] = src[rows[k]]: the materialization gather lane behind
  // Column::AppendSelected / RowView::GatherColumn. Row indices are uint32
  // physical rows; vector gathers must zero-extend them to 64-bit lanes
  // (i32-indexed gathers sign-extend and would misread rows >= 2^31).
  void (*gather_i64)(const int64_t* src, const uint32_t* rows, size_t n,
                     int64_t* out);
  void (*gather_f64)(const double* src, const uint32_t* rows, size_t n,
                     double* out);

  // Scatter-accumulate for the flat SoA aggregation sink: for each k in row
  // order, skipping NULL rows, Neumaier-add the value at row (rows ? rows[k]
  // : k) into group gids[k]'s (sums, comps) lanes. `rows` indexes x/nulls
  // (the bitmap-selected form); gids is always parallel to k. Optional
  // per-group side outputs: any[g] = 1 on each non-null add (SUM's NULL-
  // if-empty flag), ns[g] incremented per non-null add (AVG's divisor).
  // The (sum, comp) recurrence is a loop-carried dependency per group, so
  // accumulation order IS the semantics: kernels must add strictly in k
  // order for the engine's bit-identity contract to hold.
  void (*scatter_sum_i64)(const int64_t* x, const uint8_t* nulls,
                          const uint32_t* rows, const uint32_t* gids, size_t n,
                          double* sums, double* comps, uint8_t* any,
                          int64_t* ns);
  void (*scatter_sum_f64)(const double* x, const uint8_t* nulls,
                          const uint32_t* rows, const uint32_t* gids, size_t n,
                          double* sums, double* comps, uint8_t* any,
                          int64_t* ns);
};

/// The table for the current dispatch level.
const KernelOps& Ops();

}  // namespace vdb::engine::kernels

#endif  // VDB_ENGINE_KERNELS_KERNELS_H_
