// AVX2 kernel table. This is the ONLY translation unit compiled with -mavx2
// (CMake sets the flag per-file), so nothing here may be called unless the
// CPU reports AVX2 — kernels.cc checks __builtin_cpu_supports("avx2") before
// ever returning this table.
//
// Bit-identity discipline (see kernels.h and README.md):
//  - Each kernel processes whole 64-row blocks with vector code and hands the
//    final partial block to the SAME inline scalar reference the fallback
//    table uses (kernels_scalar.h) — tails cannot drift by construction.
//  - Double compares use ordered non-signaling predicates (_CMP_LT_OQ /
//    _CMP_GT_OQ), the vector form of the scalar `<` / `>`-only three-way
//    convention: Eq = ~(lt|gt) makes NaN compare equal, exactly like the
//    scalar reference.
//  - Int64 add/sub/mul are paddq/psubq/32x32-mul emulation — two's-complement
//    wrap, matching the scalar uint64 arithmetic.
//  - The rand lane dispatches the scalar CounterRandom loop even from this
//    table: six dependent 64x64 multiplies per draw emulate poorly on AVX2
//    and the vector version measured slower (see the "rand lane" section).

#include <cstring>

#include "engine/kernels/kernels.h"
#include "engine/kernels/kernels_scalar.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace vdb::engine::kernels {

namespace {

// ---- 64-bit building blocks -------------------------------------------------

/// Low 64 bits of a 64x64 multiply per lane (AVX2 has no _mm256_mullo_epi64):
/// alo*blo + ((alo*bhi + ahi*blo) << 32), all mod 2^64.
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i alo_bhi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i ahi_blo = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i hi = _mm256_add_epi64(alo_bhi, ahi_blo);
  const __m256i lo = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(_mm256_slli_epi64(hi, 32), lo);
}

inline __m256i Set1(uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// SplitMix64Finalize (common/random.h), 4 lanes.
inline __m256i SplitMixFinalizeV(__m256i z) {
  z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
            Set1(0xBF58476D1CE4E5B9ull));
  z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
            Set1(0x94D049BB133111EBull));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// HashMix64 (common/hash.h), 4 lanes.
inline __m256i HashMix64V(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64(x, Set1(0xFF51AFD7ED558CCDull));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64(x, Set1(0xC4CEB9FE1A85EC53ull));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
}

/// u64 -> f64, exact for values < 2^53 (Mysticial's 2^84/2^52 split: the
/// high and low 32-bit halves are folded into doubles via magic biases and
/// recombined; the final add is exact when the true value is representable).
inline __m256d U64ToF64(__m256i x) {
  const __m256i hi_magic =
      _mm256_castpd_si256(_mm256_set1_pd(19342813113834066795298816.0));  // 2^84
  const __m256i lo_magic =
      _mm256_castpd_si256(_mm256_set1_pd(4503599627370496.0));  // 2^52
  __m256i xh = _mm256_srli_epi64(x, 32);
  xh = _mm256_or_si256(xh, hi_magic);
  const __m256i xl = _mm256_blend_epi16(x, lo_magic, 0xCC);
  const __m256d f = _mm256_sub_pd(
      _mm256_castsi256_pd(xh),
      _mm256_set1_pd(19342813118337666422669312.0));  // 2^84 + 2^52
  return _mm256_add_pd(f, _mm256_castsi256_pd(xl));
}

inline __m256i Load4I64(const int64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline __m256i Load4U64(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

/// Sign bits of 4 int64 lanes as a 4-bit nibble.
inline uint64_t Nibble(__m256i mask) {
  return static_cast<uint64_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(mask)));
}
inline uint64_t Nibble(__m256d mask) {
  return static_cast<uint64_t>(_mm256_movemask_pd(mask));
}

// ---- comparison kernels -----------------------------------------------------

/// Runs `nibble4(i)` (4 compare bits for rows [i, i+4)) over all whole
/// 64-row blocks, optionally complementing each word, then defers the tail
/// to the scalar reference via `tail_word(base, m)`.
template <typename Nibble4, typename TailWord>
inline void CmpDrive(size_t n, uint64_t* bits, bool invert, Nibble4 nibble4,
                     TailWord tail_word) {
  const size_t nfull = n & ~size_t{63};
  for (size_t base = 0; base < nfull; base += 64) {
    uint64_t word = 0;
    for (size_t v = 0; v < 16; ++v) {
      word |= nibble4(base + v * 4) << (v * 4);
    }
    bits[base / 64] = invert ? ~word : word;
  }
  if (n > nfull) bits[nfull / 64] = tail_word(nfull, n - nfull);
}

/// Decomposes an Int64 compare into (cmpeq | cmpgt with operand order) and a
/// complement, the canonical AVX2 forms: Lt(a,b) = Gt(b,a), Le = ~Gt,
/// Ge = ~Lt, Ne = ~Eq.
template <typename LoadA, typename LoadB, typename GetB>
inline void CmpI64Drive(CmpOp op, size_t n, uint64_t* bits, LoadA la, LoadB lb,
                        const int64_t* a, GetB getb) {
  auto tail = [&](size_t base, size_t m) {
    return scalar::CmpWord(op, a, getb, base, m);
  };
  switch (op) {
    case CmpOp::kEq:
      CmpDrive(n, bits, false,
               [&](size_t i) {
                 return Nibble(_mm256_cmpeq_epi64(la(i), lb(i)));
               },
               tail);
      return;
    case CmpOp::kNe:
      CmpDrive(n, bits, true,
               [&](size_t i) {
                 return Nibble(_mm256_cmpeq_epi64(la(i), lb(i)));
               },
               tail);
      return;
    case CmpOp::kLt:
      CmpDrive(n, bits, false,
               [&](size_t i) {
                 return Nibble(_mm256_cmpgt_epi64(lb(i), la(i)));
               },
               tail);
      return;
    case CmpOp::kLe:
      CmpDrive(n, bits, true,
               [&](size_t i) {
                 return Nibble(_mm256_cmpgt_epi64(la(i), lb(i)));
               },
               tail);
      return;
    case CmpOp::kGt:
      CmpDrive(n, bits, false,
               [&](size_t i) {
                 return Nibble(_mm256_cmpgt_epi64(la(i), lb(i)));
               },
               tail);
      return;
    case CmpOp::kGe:
      CmpDrive(n, bits, true,
               [&](size_t i) {
                 return Nibble(_mm256_cmpgt_epi64(lb(i), la(i)));
               },
               tail);
      return;
  }
}

/// Double compares from ordered lt/gt masks only (the NaN-in-the-equal-
/// bucket convention): Eq = ~(lt|gt), Ne = lt|gt, Le = ~gt, Ge = ~lt.
template <typename LoadA, typename LoadB, typename GetB>
inline void CmpF64Drive(CmpOp op, size_t n, uint64_t* bits, LoadA la, LoadB lb,
                        const double* a, GetB getb) {
  auto tail = [&](size_t base, size_t m) {
    return scalar::CmpWord(op, a, getb, base, m);
  };
  auto lt = [&](size_t i) {
    return Nibble(_mm256_cmp_pd(la(i), lb(i), _CMP_LT_OQ));
  };
  auto gt = [&](size_t i) {
    return Nibble(_mm256_cmp_pd(la(i), lb(i), _CMP_GT_OQ));
  };
  auto ltgt = [&](size_t i) {
    return Nibble(_mm256_or_pd(_mm256_cmp_pd(la(i), lb(i), _CMP_LT_OQ),
                               _mm256_cmp_pd(la(i), lb(i), _CMP_GT_OQ)));
  };
  switch (op) {
    case CmpOp::kEq: CmpDrive(n, bits, true, ltgt, tail); return;
    case CmpOp::kNe: CmpDrive(n, bits, false, ltgt, tail); return;
    case CmpOp::kLt: CmpDrive(n, bits, false, lt, tail); return;
    case CmpOp::kLe: CmpDrive(n, bits, true, gt, tail); return;
    case CmpOp::kGt: CmpDrive(n, bits, false, gt, tail); return;
    case CmpOp::kGe: CmpDrive(n, bits, true, lt, tail); return;
  }
}

void CmpI64VV(CmpOp op, const int64_t* a, const int64_t* b, size_t n,
              uint64_t* bits) {
  CmpI64Drive(
      op, n, bits, [&](size_t i) { return Load4I64(a + i); },
      [&](size_t i) { return Load4I64(b + i); }, a,
      [&](size_t k) { return b[k]; });
}

void CmpI64VC(CmpOp op, const int64_t* a, int64_t c, size_t n,
              uint64_t* bits) {
  const __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
  CmpI64Drive(
      op, n, bits, [&](size_t i) { return Load4I64(a + i); },
      [&](size_t) { return cv; }, a, [&](size_t) { return c; });
}

void CmpF64VV(CmpOp op, const double* a, const double* b, size_t n,
              uint64_t* bits) {
  CmpF64Drive(
      op, n, bits, [&](size_t i) { return _mm256_loadu_pd(a + i); },
      [&](size_t i) { return _mm256_loadu_pd(b + i); }, a,
      [&](size_t k) { return b[k]; });
}

void CmpF64VC(CmpOp op, const double* a, double c, size_t n, uint64_t* bits) {
  const __m256d cv = _mm256_set1_pd(c);
  CmpF64Drive(
      op, n, bits, [&](size_t i) { return _mm256_loadu_pd(a + i); },
      [&](size_t) { return cv; }, a, [&](size_t) { return c; });
}

// ---- arithmetic kernels -----------------------------------------------------

template <typename LoadA, typename LoadB, typename GetA, typename GetB>
inline void ArithI64Drive(ArithOp op, size_t n, int64_t* out, LoadA la,
                          LoadB lb, GetA ga, GetB gb) {
  const size_t nfull = n & ~size_t{3};
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < nfull; i += 4) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_add_epi64(la(i), lb(i)));
      }
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < nfull; i += 4) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_sub_epi64(la(i), lb(i)));
      }
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < nfull; i += 4) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            Mul64(la(i), lb(i)));
      }
      break;
  }
  for (size_t k = nfull; k < n; ++k) {
    out[k] = scalar::ArithApply(op, ga(k), gb(k));
  }
}

template <typename LoadA, typename LoadB, typename GetA, typename GetB>
inline void ArithF64Drive(ArithOp op, size_t n, double* out, LoadA la,
                          LoadB lb, GetA ga, GetB gb) {
  const size_t nfull = n & ~size_t{3};
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < nfull; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_add_pd(la(i), lb(i)));
      }
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < nfull; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_sub_pd(la(i), lb(i)));
      }
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < nfull; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_mul_pd(la(i), lb(i)));
      }
      break;
  }
  for (size_t k = nfull; k < n; ++k) {
    out[k] = scalar::ArithApply(op, ga(k), gb(k));
  }
}

void ArithI64VV(ArithOp op, const int64_t* a, const int64_t* b, size_t n,
                int64_t* out) {
  ArithI64Drive(
      op, n, out, [&](size_t i) { return Load4I64(a + i); },
      [&](size_t i) { return Load4I64(b + i); },
      [&](size_t k) { return a[k]; }, [&](size_t k) { return b[k]; });
}
void ArithI64VC(ArithOp op, const int64_t* a, int64_t c, size_t n,
                int64_t* out) {
  const __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
  ArithI64Drive(
      op, n, out, [&](size_t i) { return Load4I64(a + i); },
      [&](size_t) { return cv; }, [&](size_t k) { return a[k]; },
      [&](size_t) { return c; });
}
void ArithI64CV(ArithOp op, int64_t c, const int64_t* b, size_t n,
                int64_t* out) {
  const __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
  ArithI64Drive(
      op, n, out, [&](size_t) { return cv; },
      [&](size_t i) { return Load4I64(b + i); }, [&](size_t) { return c; },
      [&](size_t k) { return b[k]; });
}
void ArithF64VV(ArithOp op, const double* a, const double* b, size_t n,
                double* out) {
  ArithF64Drive(
      op, n, out, [&](size_t i) { return _mm256_loadu_pd(a + i); },
      [&](size_t i) { return _mm256_loadu_pd(b + i); },
      [&](size_t k) { return a[k]; }, [&](size_t k) { return b[k]; });
}
void ArithF64VC(ArithOp op, const double* a, double c, size_t n, double* out) {
  const __m256d cv = _mm256_set1_pd(c);
  ArithF64Drive(
      op, n, out, [&](size_t i) { return _mm256_loadu_pd(a + i); },
      [&](size_t) { return cv; }, [&](size_t k) { return a[k]; },
      [&](size_t) { return c; });
}
void ArithF64CV(ArithOp op, double c, const double* b, size_t n, double* out) {
  const __m256d cv = _mm256_set1_pd(c);
  ArithF64Drive(
      op, n, out, [&](size_t) { return cv; },
      [&](size_t i) { return _mm256_loadu_pd(b + i); },
      [&](size_t) { return c; }, [&](size_t k) { return b[k]; });
}

// ---- mask conversion --------------------------------------------------------

void BytesNonzeroBits(const uint8_t* bytes, size_t n, uint64_t* bits) {
  const size_t nfull = n & ~size_t{63};
  const __m256i zero = _mm256_setzero_si256();
  for (size_t base = 0; base < nfull; base += 64) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bytes + base));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bytes + base + 32));
    // movemask over cmpeq-zero gives "byte IS zero" bits; complement them.
    const uint32_t zlo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, zero)));
    const uint32_t zhi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, zero)));
    bits[base / 64] = static_cast<uint64_t>(~zlo) |
                      (static_cast<uint64_t>(~zhi) << 32);
  }
  if (n > nfull) {
    scalar::BytesNonzeroBits(bytes + nfull, n - nfull, bits + nfull / 64);
  }
}

// ---- rand lane --------------------------------------------------------------

// The AVX2 table dispatches the SCALAR rand lane. CounterRandomDouble is six
// dependent 64x64-bit multiplies per draw; AVX2 has no 64-bit multiply, so
// each one emulates as 3 vpmuludq + shifts/adds (Mul64 above), and the 4-wide
// vectorized chain measured ~0.7x the scalar loop on the reference host
// (bench_micro_filter, "rand_f64_seq"). A lane only earns a slot in a faster
// table by winning; AVX-512DQ's native vpmullq would change the balance. The
// U64ToF64 2^84/2^52 magic-split conversion this lane prototyped lives on in
// git history should that happen.

// ---- group/join key hash lane -----------------------------------------------

void HashMixI64(uint64_t* h, const int64_t* data, const uint8_t* nulls,
                uint64_t null_hash, size_t n) {
  const size_t nfull = n & ~size_t{3};
  const __m256i k = Set1(0x9E3779B97F4A7C15ull);
  const __m256i null_hash_v = Set1(null_hash);
  const __m256i zero = _mm256_setzero_si256();
  for (size_t i = 0; i < nfull; i += 4) {
    __m256i v = HashMix64V(Load4I64(data + i));
    if (nulls != nullptr) {
      uint32_t nb;
      std::memcpy(&nb, nulls + i, sizeof(nb));
      const __m256i nz = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(
          static_cast<int>(nb)));
      const __m256i is_null = _mm256_cmpgt_epi64(nz, zero);
      v = _mm256_blendv_epi8(v, null_hash_v, is_null);
    }
    // MixInto(h, v) = HashMix64(h ^ (v + K + (h << 6) + (h >> 2)))
    const __m256i hv = Load4U64(h + i);
    const __m256i mixed = _mm256_xor_si256(
        hv, _mm256_add_epi64(
                _mm256_add_epi64(v, k),
                _mm256_add_epi64(_mm256_slli_epi64(hv, 6),
                                 _mm256_srli_epi64(hv, 2))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + i), HashMix64V(mixed));
  }
  if (n > nfull) {
    scalar::HashMixI64(h + nfull, data + nfull,
                       nulls == nullptr ? nullptr : nulls + nfull, null_hash,
                       n - nfull);
  }
}

// ---- join Bloom pre-probe ---------------------------------------------------

void BloomPrefilter(const uint64_t* bloom_words, int shift,
                    const uint64_t* hashes, size_t n, uint64_t* bits) {
  const size_t nfull = n & ~size_t{63};
  const __m128i shift_count = _mm_cvtsi32_si128(shift);
  const __m256i one = Set1(1);
  const __m256i six3 = Set1(63);
  for (size_t base = 0; base < nfull; base += 64) {
    uint64_t word = 0;
    for (size_t v = 0; v < 16; ++v) {
      const __m256i hv = Load4U64(hashes + base + v * 4);
      const __m256i idx = _mm256_srl_epi64(hv, shift_count);
      const __m256i blocks = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(bloom_words), idx, 8);
      const __m256i b1 =
          _mm256_and_si256(_mm256_srli_epi64(hv, 38), six3);
      const __m256i b2 =
          _mm256_and_si256(_mm256_srli_epi64(hv, 44), six3);
      const __m256i mask = _mm256_or_si256(_mm256_sllv_epi64(one, b1),
                                           _mm256_sllv_epi64(one, b2));
      const __m256i hit = _mm256_cmpeq_epi64(
          _mm256_and_si256(blocks, mask), mask);
      word |= Nibble(hit) << (v * 4);
    }
    bits[base / 64] = word;
  }
  if (n > nfull) {
    scalar::BloomPrefilter(bloom_words, shift, hashes + nfull, n - nfull,
                           bits + nfull / 64);
  }
}

// ---- materialization gather lanes -------------------------------------------

/// 4 uint32 row indices zero-extended to 64-bit gather lanes. i32-indexed
/// gathers (_mm256_i32gather_*) treat indices as SIGNED, which would read
/// rows >= 2^31 at negative offsets; cvtepu32 + i64gather is exact over the
/// engine's full 2^32 - 2 row-id range.
inline __m256i LoadIdx4(const uint32_t* rows) {
  return _mm256_cvtepu32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows)));
}

void GatherI64(const int64_t* src, const uint32_t* rows, size_t n,
               int64_t* out) {
  const size_t nfull = n & ~size_t{3};
  for (size_t i = 0; i < nfull; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(src),
                               LoadIdx4(rows + i), 8));
  }
  if (n > nfull) scalar::GatherI64(src, rows + nfull, n - nfull, out + nfull);
}

void GatherF64(const double* src, const uint32_t* rows, size_t n,
               double* out) {
  const size_t nfull = n & ~size_t{3};
  for (size_t i = 0; i < nfull; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_i64gather_pd(src, LoadIdx4(rows + i), 8));
  }
  if (n > nfull) scalar::GatherF64(src, rows + nfull, n - nfull, out + nfull);
}

// ---- scatter-accumulate lanes -----------------------------------------------

// The AVX2 table dispatches the SCALAR scatter-sum lanes. The Neumaier
// (sum, comp) recurrence is a loop-carried dependency through whichever
// group the current row hits: lane k+1 may target the same gid as lane k, so
// a 4-wide step needs conflict detection (vpconflictd is AVX-512CD) plus a
// serial in-register fold for colliding lanes, and the compensated add's
// abs-compare branch becomes two extra blends per element. A prototype
// measured below parity on the reference host (bench_agg's group-count
// sweep is the workload: scatter time is the per-group load-add-store
// chain, not lane arithmetic) before the conflict handling was even
// correct for 3+ way collisions — and
// the i64 lane additionally needs per-element exact int64->double conversion
// (vcvtqq2pd is AVX-512DQ; the 2^84/2^52 magic split above is only exact
// below 2^53). A lane only earns a slot by winning; AVX-512 would reopen
// both doors.

const KernelOps kAvx2Ops = {
    CmpI64VV,
    CmpI64VC,
    CmpF64VV,
    CmpF64VC,
    ArithI64VV,
    ArithI64VC,
    ArithI64CV,
    ArithF64VV,
    ArithF64VC,
    ArithF64CV,
    BytesNonzeroBits,
    scalar::RandF64Seq,  // see "rand lane" above: scalar wins on AVX2
    HashMixI64,
    BloomPrefilter,
    GatherI64,
    GatherF64,
    scalar::ScatterSumI64,  // see "scatter-accumulate lanes" above
    scalar::ScatterSumF64,
};

}  // namespace

const KernelOps& Avx2Ops() { return kAvx2Ops; }

}  // namespace vdb::engine::kernels

#endif  // __AVX2__
