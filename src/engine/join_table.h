// Flat open-addressing hash table over a join build side, with a
// radix-partitioned parallel construction path.
//
// Replaces the serial std::unordered_map<std::string, std::vector<uint32_t>>
// the join used: keys are 64-bit hashes computed column-at-a-time
// (engine/group_ids.h) — no per-row string materialization anywhere — and
// the table itself is two flat arrays per partition (slot hash + head build
// row, power-of-two capacity, linear probing) plus one shared `next` array
// chaining duplicate build rows in ascending row order. A probe hit walks
// head -> next -> ... exactly in the order the old per-key vectors listed
// rows, so pair lists are bit-identical to the string-map reference.
//
// Parallel build (num_threads > 1, input larger than one morsel): workers
// histogram build-row hashes per morsel into 2^k radix partitions (top k
// hash bits), a serial prefix sum fixes each partition's row-list boundary,
// workers scatter row indices (disjoint writes; within a partition rows stay
// ascending because the prefix sum runs partition-major, morsel-minor), and
// each partition's sub-table is then built independently — no locks, no
// atomics on the hot path. Slot lookups use the LOW hash bits, so radix
// partitioning on the high bits keeps per-partition occupancy uniform.
// num_threads == 1 builds one unpartitioned table with the identical
// insertion loop: the bit-level reference the parallel path must match.

#ifndef VDB_ENGINE_JOIN_TABLE_H_
#define VDB_ENGINE_JOIN_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/governor.h"
#include "common/thread_pool.h"
#include "engine/kernels/kernels_scalar.h"

namespace vdb::engine {

/// Test hook: forces the join Bloom pre-probe filter on (1), off (0), or
/// restores the automatic size-based policy (-1, the default). Plain global
/// set before parallel regions, like SetJoinKeyHashMaskForTest.
void SetJoinBloomForTest(int mode);

/// True when SetJoinBloomForTest(1) forced the filter on — the probe side's
/// adaptive pass-rate bail-out is disabled so tests and benches measure the
/// filtered path unconditionally.
bool JoinBloomForced();

class JoinBuildTable {
 public:
  /// Absent build row / empty slot sentinel.
  static constexpr uint32_t kInvalidRow = 0xFFFFFFFFu;

  ~JoinBuildTable() { GuardRelease(guard_, charged_bytes_); }

  /// Builds over `num_rows` build rows whose key hashes and NULL-key flags
  /// the caller precomputed (HashJoinKeyColumns). Rows with any_null set are
  /// never inserted (NULL keys never match). `eq(a, b)` decides whether
  /// build rows a and b carry equal keys — called only for same-hash pairs,
  /// i.e. genuine 64-bit collisions and duplicate keys.
  ///
  /// `guard` (optional) is polled per morsel/partition and charged for every
  /// row-proportional allocation (next chain, partition row list, slot
  /// arrays, Bloom words) via TryReserve — an over-budget build returns
  /// kResourceExhausted instead of aborting in the allocator. The charge is
  /// released when the table is destroyed or rebuilt.
  template <typename Eq>
  Status Build(const uint64_t* hashes, const uint8_t* any_null,
               size_t num_rows, int num_threads, Eq&& eq,
               const ExecGuard* guard = nullptr) {
    GuardRelease(guard_, charged_bytes_);
    charged_bytes_ = 0;
    guard_ = guard;
    VDB_RETURN_IF_ERROR(
        Charge(num_rows * sizeof(uint32_t), "join_build_alloc"));
    next_.assign(num_rows, kInvalidRow);
    std::vector<uint32_t> part_rows;
    VDB_RETURN_IF_ERROR(
        PlanPartitions(hashes, any_null, num_rows, num_threads, &part_rows));
    auto build_partition = [&](size_t p) -> Status {
      Partition& part = parts_[p];
      // Blocked Bloom fill rides the per-partition build loop lock-free:
      // key h owns word h >> bloom_shift_, and since the filter has at least
      // as many words as there are radix partitions, a word's top bits
      // contain the partition id — partitions own disjoint word spans. The
      // filter content depends only on the key hashes (not the partition
      // split), so serial and parallel builds produce identical filters.
      if (!bloom_.empty()) {
        for (uint32_t idx = part.row_begin; idx < part.row_end; ++idx) {
          const uint64_t h = hashes[part_rows[idx]];
          bloom_[h >> bloom_shift_] |= kernels::scalar::BloomBitMask(h);
        }
      }
      if (part.slot_hash.empty()) return Status::Ok();
      const uint64_t mask = part.slot_hash.size() - 1;
      // Per-partition scratch, charged for its own lifetime only.
      ScopedReservation tail_charge(
          guard_, part.slot_hash.size() * sizeof(uint32_t),
          "join_build_alloc");
      VDB_RETURN_IF_ERROR(tail_charge.status());
      std::vector<uint32_t> slot_tail(part.slot_hash.size(), kInvalidRow);
      for (uint32_t idx = part.row_begin; idx < part.row_end; ++idx) {
        const uint32_t r = part_rows[idx];
        const uint64_t h = hashes[r];
        uint64_t i = h & mask;
        for (;;) {
          if (part.slot_head[i] == kInvalidRow) {
            part.slot_head[i] = r;
            part.slot_hash[i] = h;
            slot_tail[i] = r;
            break;
          }
          if (part.slot_hash[i] == h && eq(part.slot_head[i], r)) {
            // Duplicate key: append to the chain tail so chains list build
            // rows ascending (rows arrive in ascending order per partition).
            next_[slot_tail[i]] = r;
            slot_tail[i] = r;
            break;
          }
          i = (i + 1) & mask;
        }
      }
      return Status::Ok();
    };
    if (parts_.size() > 1) {
      // One morsel per partition: the guard is polled at every partition
      // claim, and the first failing partition's status is reported.
      return ThreadPool::Global().ParallelForStatus(
          parts_.size(), 1, num_threads, guard_, "join_build",
          [&](size_t, size_t p, size_t) { return build_partition(p); });
    }
    for (size_t p = 0; p < parts_.size(); ++p) {
      VDB_RETURN_IF_ERROR(GuardCheck(guard_, "join_build"));
      VDB_RETURN_IF_ERROR(build_partition(p));
    }
    return Status::Ok();
  }

  /// First build row whose key hash is `hash` and whose key `eq(build_row)`
  /// confirms equal; kInvalidRow on miss. Further duplicates via NextDup.
  template <typename Eq>
  uint32_t Find(uint64_t hash, Eq&& eq) const {
    const Partition& part =
        parts_[radix_bits_ == 0 ? 0 : hash >> (64 - radix_bits_)];
    if (part.slot_hash.empty()) return kInvalidRow;
    const uint64_t mask = part.slot_hash.size() - 1;
    uint64_t i = hash & mask;
    for (;;) {
      const uint32_t head = part.slot_head[i];
      if (head == kInvalidRow) return kInvalidRow;
      if (part.slot_hash[i] == hash && eq(head)) return head;
      i = (i + 1) & mask;
    }
  }

  /// Next build row with the same key as `row` (ascending), or kInvalidRow.
  uint32_t NextDup(uint32_t row) const { return next_[row]; }

  /// 1 for the serial reference build, 2^k for a radix build.
  size_t num_partitions() const { return parts_.size(); }

  /// Blocked Bloom pre-probe filter over the keyed build rows. Probes with
  /// hashes that cannot be in the table are rejected without touching the
  /// slot arrays — a win when the probe side mostly misses (selective or
  /// disjoint key domains). No false negatives: filter-on and filter-off
  /// probes produce identical pair lists. Present only when the build
  /// enabled it (automatic above a size threshold; SetJoinBloomForTest).
  bool has_bloom() const { return !bloom_.empty(); }
  const uint64_t* bloom_words() const { return bloom_.data(); }
  int bloom_shift() const { return bloom_shift_; }
  /// Scalar membership test (the SIMD probe path uses the batch kernel).
  bool BloomMaybeContains(uint64_t hash) const {
    return kernels::scalar::BloomMaybeContains(bloom_.data(), bloom_shift_,
                                               hash);
  }

 private:
  struct Partition {
    std::vector<uint64_t> slot_hash;  // valid where slot_head != kInvalidRow
    std::vector<uint32_t> slot_head;  // first build row keyed here
    uint32_t row_begin = 0, row_end = 0;  // this partition's part_rows span
  };

  /// Decides the radix split, fills `part_rows` with non-NULL build row
  /// indices grouped by partition (ascending within each), and sizes every
  /// partition's slot arrays. Polls the guard per morsel and charges the
  /// row-proportional allocations. Defined in join_table.cc.
  Status PlanPartitions(const uint64_t* hashes, const uint8_t* any_null,
                        size_t num_rows, int num_threads,
                        std::vector<uint32_t>* part_rows);

  /// Budget-charges `bytes` against the current guard and remembers the
  /// total so the destructor (or the next Build) releases it.
  Status Charge(uint64_t bytes, const char* site) {
    VDB_RETURN_IF_ERROR(GuardTryReserve(guard_, bytes, site));
    charged_bytes_ += bytes;
    return Status::Ok();
  }

  int radix_bits_ = 0;  // partition index = hash >> (64 - radix_bits_)
  std::vector<Partition> parts_;
  std::vector<uint32_t> next_;
  std::vector<uint64_t> bloom_;  // empty when the pre-probe is disabled
  int bloom_shift_ = 0;          // word index = hash >> bloom_shift_
  const ExecGuard* guard_ = nullptr;  // set per Build; polled and charged
  uint64_t charged_bytes_ = 0;        // released on destruction / rebuild
};

}  // namespace vdb::engine

#endif  // VDB_ENGINE_JOIN_TABLE_H_
