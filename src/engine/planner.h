// Select-statement execution (binding, aggregation, windows, projection).

#ifndef VDB_ENGINE_PLANNER_H_
#define VDB_ENGINE_PLANNER_H_

#include "common/governor.h"
#include "common/status.h"
#include "engine/database.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Executes `stmt` against `db`. The statement is mutated during binding;
/// callers who need to keep the AST pass a clone (Database::ExecuteSelect
/// does this automatically). `guard` (optional, nullptr = ungoverned) is the
/// per-statement execution guard: it is threaded into every parallel region,
/// join build/probe, group-table growth, and gather the statement performs,
/// and a tripped guard (cancel / deadline / budget) unwinds the whole
/// statement with kCancelled / kDeadlineExceeded / kResourceExhausted.
Result<ResultSet> RunSelect(Database* db, sql::SelectStmt* stmt,
                            const ExecGuard* guard = nullptr);

/// Test hook: disables the pair-view WHERE pushdown (the planner's
/// filter-before-gather path for FROM-root joins), forcing the post-gather
/// WHERE instead. Results must be bit-identical either way — including
/// rand()-bearing predicates, whose draws address the global pair ordinal =
/// materialized row. true restores the default (pushdown on).
void SetJoinWherePushdownForTest(bool enabled);

/// Test hook: disables the flat SoA aggregation sink, forcing every grouped
/// query through the per-group accumulator-object paths (the semantic
/// reference). Results must be bit-identical either way — the FlatAggTest
/// differential fuzz flips this hook. true restores the default (flat on).
void SetFlatAggSinkForTest(bool enabled);

/// Test hook: disables the bitmap WHERE path for grouped queries, forcing
/// the selection-vector filter instead. Results must be bit-identical either
/// way. true restores the default (bitmap on).
void SetGroupedWhereBitmapForTest(bool enabled);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_PLANNER_H_
