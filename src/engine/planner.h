// Select-statement execution (binding, aggregation, windows, projection).

#ifndef VDB_ENGINE_PLANNER_H_
#define VDB_ENGINE_PLANNER_H_

#include "common/status.h"
#include "engine/database.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Executes `stmt` against `db`. The statement is mutated during binding;
/// callers who need to keep the AST pass a clone (Database::ExecuteSelect
/// does this automatically).
Result<ResultSet> RunSelect(Database* db, sql::SelectStmt* stmt);

/// Test hook: disables the pair-view WHERE pushdown (the planner's
/// filter-before-gather path for FROM-root joins), forcing the post-gather
/// WHERE instead. Results must be bit-identical either way — including
/// rand()-bearing predicates, whose draws address the global pair ordinal =
/// materialized row. true restores the default (pushdown on).
void SetJoinWherePushdownForTest(bool enabled);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_PLANNER_H_
