// Select-statement execution (binding, aggregation, windows, projection).

#ifndef VDB_ENGINE_PLANNER_H_
#define VDB_ENGINE_PLANNER_H_

#include "common/status.h"
#include "engine/database.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Executes `stmt` against `db`. The statement is mutated during binding;
/// callers who need to keep the AST pass a clone (Database::ExecuteSelect
/// does this automatically).
Result<ResultSet> RunSelect(Database* db, sql::SelectStmt* stmt);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_PLANNER_H_
