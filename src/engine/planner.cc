#include "engine/planner.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "engine/agg_table.h"
#include "engine/aggregates.h"
#include "engine/binder.h"
#include "engine/expr_eval.h"
#include "engine/functions.h"
#include "engine/group_ids.h"
#include "engine/kernels/bitmap.h"
#include "engine/operators.h"
#include "engine/vector_eval.h"
#include "engine/window.h"
#include "sql/printer.h"

namespace vdb::engine {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;
using sql::TableRef;

/// Test hook (SetJoinWherePushdownForTest): pair-view WHERE pushdown on/off.
// Test hook: atomic (relaxed) — tests write between queries while pool
// workers may still read; see docs/INVARIANTS.md (test-hook contract).
std::atomic<bool> g_join_where_pushdown{true};

/// Test hook (SetFlatAggSinkForTest): flat SoA aggregation sink on/off.
// Test hook: atomic (relaxed) — tests write between queries while pool
// workers may still read; see docs/INVARIANTS.md (test-hook contract).
std::atomic<bool> g_flat_agg_sink{true};

/// Test hook (SetGroupedWhereBitmapForTest): bitmap WHERE for grouped
/// queries on/off.
// Test hook: atomic (relaxed) — tests write between queries while pool
// workers may still read; see docs/INVARIANTS.md (test-hook contract).
std::atomic<bool> g_grouped_where_bitmap{true};

/// Rank-select over a filter bitmap: the view position of the rank-th set
/// bit (0-based). `wprefix[w]` is the number of set bits before word w
/// (wprefix.size() == num_words + 1) — binary-search the owning word, then
/// walk its bits. The flat sink's bitmap path uses this to turn a morsel's
/// survivor-rank range into the dense row span it must evaluate.
size_t BitmapSelect(const kernels::Bitmap& bits,
                    const std::vector<size_t>& wprefix, size_t rank) {
  size_t lo = 0, hi = bits.num_words();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (wprefix[mid] <= rank) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  uint64_t word = bits.word(lo);
  for (size_t r = wprefix[lo]; r < rank; ++r) word &= word - 1;
  return lo * 64 + static_cast<size_t>(__builtin_ctzll(word));
}

// ---- rand call-site numbering ---------------------------------------------
// Every rand/random/rand_poisson node gets a 1-based call-site id, assigned
// once per statement in a fixed traversal order (select items, WHERE,
// GROUP BY, HAVING, ORDER BY, FROM tree, UNION chain; recursing into derived
// tables and subqueries). The id is part of the row-addressed draw
// (RandAddr.site), so distinct call sites draw independently while clones of
// the same site — pushdown copies, rebinds — keep identical draws. Numbering
// is two-pass: a scan pass finds the maximum id already present (statements
// may mix fresh nodes with pre-numbered cloned subtrees, in either traversal
// order), then fresh ids start above it — so a fresh node can never collide
// with a pre-numbered one and silently correlate two call sites. Re-entry on
// a fully numbered statement is a no-op.

void WalkRandSitesStmt(SelectStmt* stmt, int* next, bool assign);

void WalkRandSitesExpr(Expr* e, int* next, bool assign) {
  if (e == nullptr) return;
  if (sql::IsRandFunctionExpr(*e)) {
    if (!assign) {
      if (e->rand_site >= *next) *next = e->rand_site + 1;
    } else if (e->rand_site == 0) {
      e->rand_site = (*next)++;
    }
  }
  for (auto& a : e->args) WalkRandSitesExpr(a.get(), next, assign);
  for (auto& w : e->case_whens) WalkRandSitesExpr(w.get(), next, assign);
  for (auto& t : e->case_thens) WalkRandSitesExpr(t.get(), next, assign);
  WalkRandSitesExpr(e->case_else.get(), next, assign);
  for (auto& p : e->partition_by) WalkRandSitesExpr(p.get(), next, assign);
  if (e->subquery) WalkRandSitesStmt(e->subquery.get(), next, assign);
}

void WalkRandSitesRef(TableRef* ref, int* next, bool assign) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case TableRef::Kind::kBase:
      return;
    case TableRef::Kind::kDerived:
      WalkRandSitesStmt(ref->derived.get(), next, assign);
      return;
    case TableRef::Kind::kJoin:
      WalkRandSitesRef(ref->left.get(), next, assign);
      WalkRandSitesRef(ref->right.get(), next, assign);
      WalkRandSitesExpr(ref->on.get(), next, assign);
      return;
  }
}

void WalkRandSitesStmt(SelectStmt* stmt, int* next, bool assign) {
  if (stmt == nullptr) return;
  for (auto& it : stmt->items) WalkRandSitesExpr(it.expr.get(), next, assign);
  WalkRandSitesExpr(stmt->where.get(), next, assign);
  for (auto& g : stmt->group_by) WalkRandSitesExpr(g.get(), next, assign);
  WalkRandSitesExpr(stmt->having.get(), next, assign);
  for (auto& o : stmt->order_by) WalkRandSitesExpr(o.expr.get(), next, assign);
  WalkRandSitesRef(stmt->from.get(), next, assign);
  WalkRandSitesStmt(stmt->union_next.get(), next, assign);
}

void AssignRandSites(SelectStmt* stmt) {
  int next = 1;
  WalkRandSitesStmt(stmt, &next, /*assign=*/false);
  WalkRandSitesStmt(stmt, &next, /*assign=*/true);
}

struct RelResult {
  TablePtr table;
  Scope scope;
};

/// Splits an AND tree into conjuncts (non-owning).
void CollectConjuncts(Expr* e, std::vector<Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == sql::BinaryOp::kAnd) {
    CollectConjuncts(e->args[0].get(), out);
    CollectConjuncts(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// True if the statement draws rand anywhere outside its WHERE clause
/// (select items, GROUP BY, HAVING, ORDER BY). Such statements are barred
/// from the pair-view WHERE pushdown: see the eligibility comment in
/// RunSingle.
bool RandOutsideWhere(const SelectStmt& stmt) {
  for (const auto& it : stmt.items) {
    if (it.expr->kind != ExprKind::kStar &&
        sql::ContainsRandFunction(*it.expr)) {
      return true;
    }
  }
  for (const auto& g : stmt.group_by) {
    if (sql::ContainsRandFunction(*g)) return true;
  }
  if (stmt.having && sql::ContainsRandFunction(*stmt.having)) return true;
  for (const auto& o : stmt.order_by) {
    if (sql::ContainsRandFunction(*o.expr)) return true;
  }
  return false;
}

// ---- Derived-table projection pruning --------------------------------------
// Column names a statement can reference from a derived table in its FROM:
// every kColumnRef name in the statement's own expressions (select list,
// WHERE, GROUP BY, HAVING, ORDER BY, join ON conditions). Nested derived
// subqueries and scalar subqueries resolve against their own scopes (the
// engine has no correlated subqueries), so the walk does not descend into
// them — descending would also pick up their internal `*` items and defeat
// the prune. A `*` select item references everything; the star that is
// count(*)'s argument references nothing and is skipped.
void CollectColumnRefNames(const Expr& e, std::set<std::string>* names,
                           bool* star) {
  switch (e.kind) {
    case ExprKind::kColumnRef: names->insert(e.name); return;
    case ExprKind::kStar: *star = true; return;
    default: break;
  }
  for (const auto& a : e.args) {
    if (!a) continue;
    if (e.kind == ExprKind::kFunction && a->kind == ExprKind::kStar) continue;
    CollectColumnRefNames(*a, names, star);
  }
  for (const auto& w : e.case_whens) CollectColumnRefNames(*w, names, star);
  for (const auto& t : e.case_thens) CollectColumnRefNames(*t, names, star);
  if (e.case_else) CollectColumnRefNames(*e.case_else, names, star);
  for (const auto& p : e.partition_by) CollectColumnRefNames(*p, names, star);
}

void CollectColumnRefNamesFrom(const TableRef& ref,
                               std::set<std::string>* names, bool* star) {
  if (ref.on) CollectColumnRefNames(*ref.on, names, star);
  if (ref.left) CollectColumnRefNamesFrom(*ref.left, names, star);
  if (ref.right) CollectColumnRefNamesFrom(*ref.right, names, star);
}

void CollectColumnRefNamesStmt(const SelectStmt& stmt,
                               std::set<std::string>* names, bool* star) {
  for (const auto& it : stmt.items) {
    CollectColumnRefNames(*it.expr, names, star);
  }
  if (stmt.where) CollectColumnRefNames(*stmt.where, names, star);
  for (const auto& g : stmt.group_by) CollectColumnRefNames(*g, names, star);
  if (stmt.having) CollectColumnRefNames(*stmt.having, names, star);
  for (const auto& o : stmt.order_by) {
    CollectColumnRefNames(*o.expr, names, star);
  }
  if (stmt.from) CollectColumnRefNamesFrom(*stmt.from, names, star);
}

/// True if the tree contains a window-function node. Window frames need
/// contiguous physical rows, so their presence forces the one early gather.
bool ContainsWindow(const Expr& e) {
  return sql::AnyExprNode(e, [](const Expr& n) {
    return n.kind == ExprKind::kFunction && n.is_window;
  });
}

class SelectExecutor {
 public:
  SelectExecutor(Database* db, uint64_t rand_seed,
                 const ExecGuard* guard = nullptr)
      : db_(db), rand_seed_(rand_seed), guard_(guard) {}

  Result<ResultSet> Run(SelectStmt* stmt) {
    auto head = RunSingle(stmt);
    if (!head.ok()) return head.status();
    ResultSet rs = std::move(head).ValueOrDie();
    SelectStmt* next = stmt->union_next.get();
    while (next != nullptr) {
      auto part = RunSingle(next);
      if (!part.ok()) return part.status();
      const ResultSet& p = part.value();
      if (p.NumCols() != rs.NumCols()) {
        return Status::InvalidArgument("UNION ALL arity mismatch");
      }
      rs.table->AppendRange(*p.table, 0, p.NumRows());
      next = next->union_next.get();
    }
    return rs;
  }

 private:
  // ---------------------------------------------------------------- FROM --
  Result<RelResult> ExecuteFrom(TableRef* ref) {
    switch (ref->kind) {
      case TableRef::Kind::kBase: {
        TablePtr t = db_->catalog().GetTable(ref->table_name);
        if (!t) return Status::NotFound("no such table: " + ref->table_name);
        db_->AddRowsScanned(t->num_rows());
        RelResult r;
        r.table = t;
        for (size_t i = 0; i < t->num_columns(); ++i) {
          r.scope.Add(ref->EffectiveName(), t->column_name(i));
        }
        return r;
      }
      case TableRef::Kind::kDerived: {
        SelectExecutor sub(db_, rand_seed_, guard_);
        SelectStmt* d = ref->derived.get();
        // Prune derived outputs this statement never references: a
        // `select *, ...` subquery otherwise materializes every input
        // column (the VerdictDB rewriter's sid-assigning derived table
        // copies the whole scan width). Pruning only skips evaluation —
        // rand draws are (row, site)-addressed, so the surviving items see
        // identical values — and is disabled whenever dropping a column
        // could change the derived result itself (DISTINCT row set, ORDER
        // BY positions, UNION arity) or a `*` in the outer wants it all.
        if (current_stmt_ != nullptr && d->union_next == nullptr &&
            !d->distinct && d->order_by.empty()) {
          bool star = false;
          std::set<std::string> needed;
          CollectColumnRefNamesStmt(*current_stmt_, &needed, &star);
          if (!star) {
            sub.output_keep_ = std::move(needed);
            sub.output_keep_active_ = true;
          }
        }
        auto rs = sub.Run(d);
        if (!rs.ok()) return rs.status();
        RelResult r;
        r.table = rs.value().table;
        for (const auto& n : rs.value().names) r.scope.Add(ref->alias, n);
        return r;
      }
      case TableRef::Kind::kJoin:
        return ExecuteJoin(ref);
    }
    return Status::Internal("unknown table ref kind");
  }

  Result<RelResult> ExecuteJoin(TableRef* ref) {
    // The FROM-root join consumes the pushed-down WHERE (if any); nested
    // join children, executed below, must not see it.
    const Expr* pushdown = pushdown_where_;
    pushdown_where_ = nullptr;
    auto left = ExecuteFrom(ref->left.get());
    if (!left.ok()) return left.status();
    auto right = ExecuteFrom(ref->right.get());
    if (!right.ok()) return right.status();
    RelResult& lr = left.value();
    RelResult& rr = right.value();

    Scope combined;
    for (size_t i = 0; i < lr.scope.size(); ++i) {
      combined.Add(lr.scope.qualifier(i), lr.scope.name(i));
    }
    for (size_t i = 0; i < rr.scope.size(); ++i) {
      combined.Add(rr.scope.qualifier(i), rr.scope.name(i));
    }

    // Partition the ON condition into equi-key pairs and a residual.
    std::vector<Expr::Ptr> left_keys, right_keys;
    std::vector<Expr::Ptr> residual_parts;
    if (ref->on) {
      std::vector<Expr*> conjuncts;
      CollectConjuncts(ref->on.get(), &conjuncts);
      for (Expr* c : conjuncts) {
        bool is_key = false;
        if (c->kind == ExprKind::kBinary &&
            c->binary_op == sql::BinaryOp::kEq) {
          auto l0 = c->args[0]->Clone();
          auto r0 = c->args[1]->Clone();
          if (BindExpr(l0.get(), lr.scope).ok() &&
              BindExpr(r0.get(), rr.scope).ok()) {
            left_keys.push_back(std::move(l0));
            right_keys.push_back(std::move(r0));
            is_key = true;
          } else {
            auto l1 = c->args[1]->Clone();
            auto r1 = c->args[0]->Clone();
            if (BindExpr(l1.get(), lr.scope).ok() &&
                BindExpr(r1.get(), rr.scope).ok()) {
              left_keys.push_back(std::move(l1));
              right_keys.push_back(std::move(r1));
              is_key = true;
            }
          }
        }
        if (!is_key) residual_parts.push_back(c->Clone());
      }
    }
    Expr::Ptr residual = sql::AndAll(std::move(residual_parts));
    if (residual) {
      VDB_RETURN_IF_ERROR(BindExpr(residual.get(), combined));
    }

    Result<JoinPairView> joined = Status::Internal("join not executed");
    if (!left_keys.empty()) {
      joined = HashJoinPairsExprs(lr.table, rr.table, left_keys, right_keys,
                                  ref->join_type, residual.get());
    } else {
      if (ref->join_type == sql::JoinType::kLeft) {
        return Status::Unsupported("left join requires an equi condition");
      }
      joined = CrossJoinPairs(lr.table, rr.table, residual.get(), rand_seed_,
                              200'000'000, db_->num_threads(), guard_);
    }
    if (!joined.ok()) return joined.status();
    JoinPairView pairs = std::move(joined).ValueOrDie();

    // Pair-view WHERE pushdown: the query's WHERE filters candidate pairs
    // while they are still a view, so non-surviving pairs never reach the
    // combined gather below. Valid for inner joins (identical to a residual)
    // AND left joins (null-extended pairs evaluate with NULL right columns,
    // exactly as the materialized rows would) — including rand()-bearing
    // predicates: their draws address the global pair ordinal, which equals
    // the materialized row position the post-gather WHERE would see. If the
    // clone fails to bind against the combined scope, fall back to the
    // post-gather WHERE path.
    if (pushdown != nullptr) {
      auto w = pushdown->Clone();
      if (BindExpr(w.get(), combined).ok()) {
        VDB_RETURN_IF_ERROR(FilterJoinPairs(*w, &pairs, rand_seed_,
                                            db_->num_threads(), guard_));
        pushdown_where_applied_ = true;
      }
    }

    RelResult out;
    auto gathered = pairs.GatherGuarded(db_->num_threads(), guard_);
    if (!gathered.ok()) return gathered.status();
    out.table = std::move(gathered).ValueOrDie();
    out.scope = std::move(combined);
    return out;
  }

  /// Hash join on arbitrary bound key expressions. Plain column-ref keys
  /// borrow the input's own columns; expression keys are evaluated into
  /// standalone columns passed by pointer — the join inputs are never padded
  /// or copied, the output schema never contains helper columns, and
  /// residual predicates (bound against the combined schema) compose with
  /// expression keys without any ordinal shifting.
  Result<JoinPairView> HashJoinPairsExprs(const TablePtr& left,
                                          const TablePtr& right,
                                          const std::vector<Expr::Ptr>& lkeys,
                                          const std::vector<Expr::Ptr>& rkeys,
                                          sql::JoinType type,
                                          const Expr* residual) {
    // One pass per side decides borrow-vs-evaluate exactly once; the deque
    // gives evaluated columns stable addresses as it grows. The key columns
    // only need to live through HashJoinPairs — the returned pair view holds
    // row indices, not key references.
    std::deque<Column> owned;
    auto collect = [&](const Table& t, const std::vector<Expr::Ptr>& keys,
                       std::vector<const Column*>* cols) -> Status {
      Batch batch{&t, nullptr, rand_seed_};
      for (const auto& k : keys) {
        if (k->kind == ExprKind::kColumnRef && k->bound_column >= 0) {
          cols->push_back(&t.column(static_cast<size_t>(k->bound_column)));
          continue;
        }
        auto kc = EvalExprBatch(*k, batch);
        if (!kc.ok()) return kc.status();
        owned.push_back(std::move(kc).ValueOrDie());
        cols->push_back(&owned.back());
      }
      return Status::Ok();
    };
    std::vector<const Column*> lcols, rcols;
    VDB_RETURN_IF_ERROR(collect(*left, lkeys, &lcols));
    VDB_RETURN_IF_ERROR(collect(*right, rkeys, &rcols));
    return HashJoinPairs(left, right, lcols, rcols, type, residual,
                         rand_seed_, db_->num_threads(), guard_);
  }

  // ------------------------------------------------------ scalar subquery --
  Status ResolveSubqueries(Expr* e) {
    if (e->kind == ExprKind::kSubquery) {
      SelectExecutor sub(db_, rand_seed_, guard_);
      auto rs = sub.Run(e->subquery.get());
      if (!rs.ok()) return rs.status();
      const ResultSet& r = rs.value();
      if (r.NumCols() != 1) {
        return Status::InvalidArgument("scalar subquery must return 1 column");
      }
      if (r.NumRows() > 1) {
        return Status::InvalidArgument("scalar subquery returned >1 row");
      }
      e->kind = ExprKind::kLiteral;
      e->literal = r.NumRows() == 0 ? Value::Null() : r.Get(0, 0);
      e->subquery.reset();
      return Status::Ok();
    }
    if (e->kind == ExprKind::kExists) {
      SelectExecutor sub(db_, rand_seed_, guard_);
      auto rs = sub.Run(e->subquery.get());
      if (!rs.ok()) return rs.status();
      e->kind = ExprKind::kLiteral;
      e->literal = Value::Bool(rs.value().NumRows() > 0);
      e->subquery.reset();
      return Status::Ok();
    }
    for (auto& a : e->args) {
      if (a) VDB_RETURN_IF_ERROR(ResolveSubqueries(a.get()));
    }
    for (auto& w : e->case_whens) VDB_RETURN_IF_ERROR(ResolveSubqueries(w.get()));
    for (auto& t : e->case_thens) VDB_RETURN_IF_ERROR(ResolveSubqueries(t.get()));
    if (e->case_else) VDB_RETURN_IF_ERROR(ResolveSubqueries(e->case_else.get()));
    for (auto& p : e->partition_by) {
      VDB_RETURN_IF_ERROR(ResolveSubqueries(p.get()));
    }
    return Status::Ok();
  }

  // ------------------------------------------------------------ main body --
  Result<ResultSet> RunSingle(SelectStmt* stmt) {
    current_stmt_ = stmt;
    // WHERE pushdown eligibility: when the FROM root is a join, the WHERE
    // can filter candidate pairs before the join's one combined gather
    // (ExecuteJoin consumes pushdown_where_). rand()-bearing predicates are
    // eligible — row-addressed draws make pushdown and post-gather
    // evaluation of the WHERE bit-identical (global pair ordinal =
    // materialized row). Excluded: subquery-bearing predicates, whose
    // subqueries resolve only after FROM execution (the pushdown clone
    // would carry unresolved subquery nodes into the pair evaluator), and
    // statements drawing rand ANYWHERE OUTSIDE the WHERE — pushdown
    // compacts the gathered join to the WHERE survivors, so downstream
    // rand draws would address compacted positions instead of the pair
    // ordinals the post-gather plan sees, breaking plan-shape invariance.
    pushdown_where_ = nullptr;
    pushdown_where_applied_ = false;
    if (g_join_where_pushdown.load(std::memory_order_relaxed) && stmt->where &&
        !RandOutsideWhere(*stmt) &&
        !sql::AnyExprNode(*stmt->where, [](const Expr& n) {
          return n.subquery != nullptr;
        })) {
      pushdown_where_ = stmt->where.get();
    }

    // FROM
    RelResult input;
    if (stmt->from) {
      auto r = ExecuteFrom(stmt->from.get());
      if (!r.ok()) return r.status();
      input = std::move(r).ValueOrDie();
      pushdown_where_ = nullptr;  // only the FROM-root join may consume it
    } else {
      auto dummy = std::make_shared<Table>();
      Column c(TypeId::kInt64);
      c.AppendInt(0);
      dummy->AddColumn("__dummy", std::move(c));
      input.table = dummy;
      input.scope.Add("", "__dummy");
    }

    // Pre-execute scalar subqueries everywhere they may appear.
    for (auto& it : stmt->items) {
      VDB_RETURN_IF_ERROR(ResolveSubqueries(it.expr.get()));
    }
    if (stmt->where) VDB_RETURN_IF_ERROR(ResolveSubqueries(stmt->where.get()));
    if (stmt->having) VDB_RETURN_IF_ERROR(ResolveSubqueries(stmt->having.get()));
    for (auto& g : stmt->group_by) VDB_RETURN_IF_ERROR(ResolveSubqueries(g.get()));
    for (auto& o : stmt->order_by) {
      VDB_RETURN_IF_ERROR(ResolveSubqueries(o.expr.get()));
    }

    auto inview = RowView::All(input.table);
    if (!inview.ok()) return inview.status();
    RowView view = std::move(inview).ValueOrDie();

    bool grouped = !stmt->group_by.empty();
    if (!grouped) {
      for (const auto& it : stmt->items) {
        if (ContainsAggregate(*it.expr)) {
          grouped = true;
          break;
        }
      }
      if (stmt->having && ContainsAggregate(*stmt->having)) grouped = true;
    }

    // WHERE: morsel-parallel batch predicate over the input view. Grouped
    // queries keep the survivors as a row BITMAP — the flat aggregation sink
    // consumes the mask directly (selected-row group assignment and scatter),
    // so selective GROUP BYs never expand the mask into a selection vector or
    // gather survivors; grouped paths that can't consume a bitmap expand it
    // inside RunGrouped, bit-identically. Everything else keeps the
    // (table, SelVector) view — no gather; downstream operators evaluate
    // through the view and the projection (or the result boundary) performs
    // the query's one full-width gather.
    kernels::Bitmap where_bits;
    const kernels::Bitmap* group_filter = nullptr;
    if (stmt->where && !pushdown_where_applied_) {
      VDB_RETURN_IF_ERROR(BindExpr(stmt->where.get(), input.scope));
      if (grouped && g_grouped_where_bitmap.load(std::memory_order_relaxed)) {
        VDB_RETURN_IF_ERROR(EvalPredicateBitmap(*stmt->where, view, rand_seed_,
                                                db_->num_threads(),
                                                &where_bits, guard_));
        if (where_bits.CountSet() < view.num_rows()) {
          group_filter = &where_bits;
        }
      } else {
        SelVector sel;
        VDB_RETURN_IF_ERROR(EvalPredicateView(*stmt->where, view, rand_seed_,
                                              db_->num_threads(), &sel,
                                              guard_));
        if (sel.size() < view.num_rows()) {
          auto filtered = RowView::Select(input.table, std::move(sel));
          if (!filtered.ok()) return filtered.status();
          view = std::move(filtered).ValueOrDie();
        }
      }
    }

    ResultSet out;
    if (grouped) {
      auto rs = RunGrouped(stmt, view, input.scope, group_filter);
      if (!rs.ok()) return rs.status();
      out = std::move(rs).ValueOrDie();
    } else {
      auto rs = RunProjection(stmt, view, input.scope);
      if (!rs.ok()) return rs.status();
      out = std::move(rs).ValueOrDie();
    }

    // DISTINCT / ORDER BY / LIMIT compose views over the projected output
    // instead of gathering after each step; the chain materializes at most
    // once, at the result boundary below.
    auto outview = RowView::All(out.table);
    if (!outview.ok()) return outview.status();
    RowView oview = std::move(outview).ValueOrDie();
    if (stmt->distinct) VDB_RETURN_IF_ERROR(Dedupe(&oview));
    VDB_RETURN_IF_ERROR(ApplyOrderBy(stmt, out, &oview));
    if (stmt->limit >= 0) {
      oview = oview.Prefix(static_cast<size_t>(stmt->limit));
    }
    auto final_table = oview.GatherGuarded(db_->num_threads(), guard_);
    if (!final_table.ok()) return final_table.status();
    out.table = std::move(final_table).ValueOrDie();
    return out;
  }

  // --------------------------------------------------- non-grouped select --
  Result<ResultSet> RunProjection(SelectStmt* stmt, const RowView& input_view,
                                  const Scope& scope) {
    // Expand stars and build the output item list.
    struct OutItem {
      const Expr* expr = nullptr;  // non-owning (points into stmt or extras)
      std::string name;
      int direct_column = -1;  // fast path: copy the input column wholesale
    };
    std::vector<OutItem> outs;

    for (auto& item : stmt->items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (int idx : scope.Expand(item.expr->qualifier)) {
          OutItem oi;
          oi.name = scope.name(static_cast<size_t>(idx));
          if (oi.name == "__dummy") continue;
          oi.direct_column = idx;
          outs.push_back(std::move(oi));
        }
        continue;
      }
      VDB_RETURN_IF_ERROR(BindExpr(item.expr.get(), scope));
      OutItem oi;
      oi.expr = item.expr.get();
      oi.name = !item.alias.empty()
                    ? item.alias
                    : (item.expr->kind == ExprKind::kColumnRef
                           ? item.expr->name
                           : sql::PrintExpr(*item.expr));
      if (item.expr->kind == ExprKind::kColumnRef) {
        oi.direct_column = item.expr->bound_column;
      }
      outs.push_back(std::move(oi));
    }

    // Derived-table projection pruning (see ExecuteFrom): drop outputs the
    // outer statement never references, before any of them are evaluated
    // or copied. At least one column always survives so the result keeps
    // its row count (a bare outer count(*) references none).
    if (output_keep_active_ && !outs.empty()) {
      std::vector<OutItem> kept;
      for (auto& oi : outs) {
        if (output_keep_.count(oi.name) != 0) kept.push_back(std::move(oi));
      }
      if (kept.empty()) kept.push_back(std::move(outs[0]));
      outs = std::move(kept);
    }

    // Window functions need contiguous physical frames: their presence
    // forces the one full-width gather up front, after which the view is
    // the identity again.
    RowView view = input_view;
    TablePtr work = view.table();
    bool has_window = false;
    for (const auto& item : stmt->items) {
      if (item.expr->kind != ExprKind::kStar && ContainsWindow(*item.expr)) {
        has_window = true;
        break;
      }
    }
    if (has_window) {
      auto gathered = view.GatherGuarded(db_->num_threads(), guard_);
      if (!gathered.ok()) return gathered.status();
      work = std::move(gathered).ValueOrDie();
      std::map<std::string, int> window_cols;  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
      for (auto& item : stmt->items) {
        if (item.expr->kind == ExprKind::kStar) continue;
        VDB_RETURN_IF_ERROR(
            MaterializeWindows(item.expr.get(), &work, &window_cols));
      }
      auto wv = RowView::All(work);
      if (!wv.ok()) return wv.status();
      view = std::move(wv).ValueOrDie();
    }

    ResultSet rs;
    auto table = std::make_shared<Table>();
    for (const auto& oi : outs) {
      rs.names.push_back(oi.name);
    }
    // Materialize the output columns from the view: direct columns copy
    // (identity) or gather once; expressions evaluate morsel-parallel with
    // per-morsel chunks concatenated type-stably. This is the projection's
    // single full-width materialization.
    //
    // Expressions are evaluated BEFORE the wholesale direct-column copies
    // (results staged, appended in select order): expression pipelines
    // allocate and release large intermediate vectors, and running them
    // first lets the allocator hand that memory straight to the retained
    // copies instead of growing the heap past both at once. Expression
    // results are order-independent — rand() draws are addressed by row
    // ordinal, not evaluation sequence — so staging cannot change output.
    const int num_threads = db_->num_threads();
    std::vector<Column> computed(outs.size());
    for (size_t i = 0; i < outs.size(); ++i) {
      if (outs[i].direct_column >= 0) continue;
      auto col = EvalExprView(*outs[i].expr, view, rand_seed_, num_threads,
                              guard_);
      if (!col.ok()) return col.status();
      computed[i] = std::move(col).ValueOrDie();
    }
    for (size_t i = 0; i < outs.size(); ++i) {
      const auto& oi = outs[i];
      if (oi.direct_column >= 0) {
        const Column& src = work->column(static_cast<size_t>(oi.direct_column));
        if (view.is_identity()) {
          table->AddColumn(oi.name, src);
        } else {
          table->AddColumn(oi.name, view.GatherColumn(src, num_threads));
        }
      } else {
        table->AddColumn(oi.name, std::move(computed[i]));
      }
    }
    if (table->num_columns() == 0) {
      return Status::InvalidArgument("empty select list");
    }
    rs.table = table;
    return rs;
  }

  // ------------------------------------------------------- grouped select --
  // `filter` (optional) is a WHERE-survivor bitmap over view positions. Only
  // the flat sink consumes it directly; the reference paths expand it into
  // the equivalent selection view below (set bits in position order — the
  // exact selection vector a SelVector WHERE would have produced).
  Result<ResultSet> RunGrouped(SelectStmt* stmt, const RowView& view_in,
                               const Scope& scope,
                               const kernels::Bitmap* filter = nullptr) {
    RowView view = view_in;
    // Resolve group-by items that name select aliases.
    for (auto& g : stmt->group_by) {
      if (g->kind == ExprKind::kColumnRef && g->qualifier.empty() &&
          !scope.Resolve("", g->name).ok()) {
        for (auto& item : stmt->items) {
          if (!item.alias.empty() && item.alias == g->name) {
            g = item.expr->Clone();
            break;
          }
        }
      }
      VDB_RETURN_IF_ERROR(BindExpr(g.get(), scope));
    }

    // Collect aggregate calls (deduplicated by printed text).
    std::vector<Expr*> agg_exprs;
    std::map<std::string, int> agg_index;  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
    for (auto& item : stmt->items) {
      CollectAggs(item.expr.get(), &agg_exprs, &agg_index);
    }
    if (stmt->having) CollectAggs(stmt->having.get(), &agg_exprs, &agg_index);

    std::vector<AggSpec> specs;
    for (Expr* a : agg_exprs) {
      for (auto& arg : a->args) {
        if (arg->kind != ExprKind::kStar) {
          VDB_RETURN_IF_ERROR(BindExpr(arg.get(), scope));
        }
      }
      AggSpec s;
      s.name = a->name;
      s.distinct = a->distinct;
      bool star = !a->args.empty() && a->args[0]->kind == ExprKind::kStar;
      s.arg = (a->args.empty() || star) ? nullptr : a->args[0].get();
      if (a->args.size() >= 2 && a->args[1]->kind == ExprKind::kLiteral) {
        s.param = a->args[1]->literal.AsDouble();
      }
      specs.push_back(s);
    }

    // Hash aggregation.
    struct Group {
      std::vector<Value> keys;
      std::vector<std::unique_ptr<AggAccumulator>> accs;
    };
    std::vector<Group> groups;

    auto make_accs =
        [&]() -> Result<std::vector<std::unique_ptr<AggAccumulator>>> {
      std::vector<std::unique_ptr<AggAccumulator>> accs;
      accs.reserve(specs.size());
      for (const auto& s : specs) {
        auto acc = CreateAccumulator(s);
        if (!acc.ok()) return acc.status();
        accs.push_back(std::move(acc).ValueOrDie());
      }
      return accs;
    };

    // Morsel-partial aggregation needs mergeable accumulator states. When
    // it applies, it applies at EVERY thread count: the morsel decomposition
    // depends only on the row count, and partials merge strictly in morsel
    // order, so 1-thread and N-thread runs execute the identical computation
    // and produce bit-identical results (floating-point aggregates
    // included). rand()-bearing grouping/argument expressions are fine here:
    // row-addressed draws make every morsel see the values the whole-input
    // batch would. Queries it can't cover run the whole-input serial path —
    // also at every thread count, so those stay consistent too.
    const int num_threads = db_->num_threads();
    VDB_RETURN_IF_ERROR(CheckGroupableRows(view.num_rows()));
    bool partials = true;
    {
      auto probe = make_accs();
      if (!probe.ok()) return probe.status();
      for (const auto& acc : probe.value()) {
        if (!acc->Mergeable()) partials = false;
      }
    }

    // Flat sink eligibility: every aggregate must be scatterable
    // (scatterable implies mergeable — the flat sink is the SoA form of the
    // partial path). `flats` becomes the global merged state; per-morsel
    // partials are created inside the morsels.
    std::vector<std::unique_ptr<FlatAggregator>> flats;
    bool flat = g_flat_agg_sink.load(std::memory_order_relaxed) && partials;
    if (flat) {
      for (const auto& s : specs) {
        auto f = CreateFlatAggregator(s);
        if (f == nullptr) {
          flat = false;
          flats.clear();
          break;
        }
        flats.push_back(std::move(f));
      }
    }
    GroupMergeTable flat_merge;  // global key -> dense gid (flat sink)
    size_t flat_ngroups = 0;

    if (filter != nullptr && !flat) {
      SelVector sel;
      sel.reserve(filter->CountSet());
      for (size_t w = 0; w < filter->num_words(); ++w) {
        uint64_t word = filter->word(w);
        while (word != 0) {
          const size_t k = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
          sel.push_back(view.RowAt(k));
          word &= word - 1;
        }
      }
      auto filtered = RowView::Select(view.table(), std::move(sel));
      if (!filtered.ok()) return filtered.status();
      view = std::move(filtered).ValueOrDie();
      filter = nullptr;
    }

    if (!partials) {
      // Serial path (non-mergeable UDAs):
      // batch-evaluate group keys and aggregate arguments once over the
      // whole view, column-at-a-time, assign hashed group ids over the
      // materialized key columns (vectorized — no per-row string keys), and
      // accumulate each group through the selection-vector batch interface.
      VDB_RETURN_IF_ERROR(GuardCheck(guard_, "agg_partial"));
      Batch batch = ViewBatch(view, rand_seed_);
      std::vector<Column> gcols;
      gcols.reserve(stmt->group_by.size());
      for (const auto& g : stmt->group_by) {
        auto c = EvalExprBatch(*g, batch);
        if (!c.ok()) return c.status();
        gcols.push_back(std::move(c).ValueOrDie());
      }
      std::vector<Column> acols(specs.size());
      for (size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].arg == nullptr) continue;
        auto c = EvalExprBatch(*specs[i].arg, batch);
        if (!c.ok()) return c.status();
        acols[i] = std::move(c).ValueOrDie();
      }

      const size_t n = view.num_rows();
      std::vector<const Column*> gptrs;
      gptrs.reserve(gcols.size());
      for (const auto& gc : gcols) gptrs.push_back(&gc);
      GroupAssignment ga = AssignGroupIds(gptrs, n);
      std::vector<SelVector> group_rows(ga.num_groups());
      for (size_t r = 0; r < n; ++r) {
        group_rows[ga.gid_of_row[r]].push_back(static_cast<uint32_t>(r));
      }
      for (size_t g = 0; g < ga.num_groups(); ++g) {
        Group grp;
        grp.keys.reserve(gcols.size());
        for (const auto& gc : gcols) grp.keys.push_back(gc.Get(ga.rep_row[g]));
        auto accs = make_accs();
        if (!accs.ok()) return accs.status();
        grp.accs = std::move(accs).ValueOrDie();
        groups.push_back(std::move(grp));
      }
      // An aggregate without GROUP BY keys emits one row even over an empty
      // input (count(*) = 0, sum = NULL, ...).
      if (stmt->group_by.empty() && groups.empty()) {
        Group grp;
        auto accs = make_accs();
        if (!accs.ok()) return accs.status();
        grp.accs = std::move(accs).ValueOrDie();
        groups.push_back(std::move(grp));
        group_rows.emplace_back();
      }

      for (size_t g = 0; g < groups.size(); ++g) {
        for (size_t i = 0; i < specs.size(); ++i) {
          if (specs[i].arg != nullptr) {
            groups[g].accs[i]->AddBatch(acols[i], group_rows[g].data(),
                                        group_rows[g].size());
          } else {
            groups[g].accs[i]->AddRepeated(Value::Int(1),
                                           group_rows[g].size());
          }
        }
      }
    } else if (!flat) {
      // Reference partial path (mergeable but not scatterable — DISTINCT,
      // quantile, HLL, mergeable UDAs, or the flat sink disabled): each
      // morsel evaluates the grouping and argument expressions over its own
      // slice of the view, aggregates into morsel-local partial states, and
      // the partials are merged strictly in morsel order. The decomposition
      // depends only on the view's row count, so the output — values, group
      // order, and floating-point rounding — is identical for every thread
      // count and OS schedule.
      struct LocalGroup {
        uint64_t hash = 0;  // mixed group-key hash (AssignGroupIds)
        std::vector<Value> keys;
        std::vector<std::unique_ptr<AggAccumulator>> accs;
      };
      struct MorselAgg {
        std::vector<LocalGroup> groups;
      };
      const size_t n = view.num_rows();
      auto parts_or = ParallelMorselMapStatus<MorselAgg>(
          n, num_threads, guard_, "agg_partial",
          [&](MorselAgg& res, size_t begin, size_t end) -> Status {
            Batch batch = ViewBatch(view, rand_seed_, begin, end);
            const size_t ln = end - begin;
            std::vector<Column> gcols;
            gcols.reserve(stmt->group_by.size());
            for (const auto& g : stmt->group_by) {
              auto c = EvalExprBatch(*g, batch);
              if (!c.ok()) return c.status();
              gcols.push_back(std::move(c).ValueOrDie());
            }
            std::vector<Column> acols(specs.size());
            for (size_t i = 0; i < specs.size(); ++i) {
              if (specs[i].arg == nullptr) continue;
              auto c = EvalExprBatch(*specs[i].arg, batch);
              if (!c.ok()) return c.status();
              acols[i] = std::move(c).ValueOrDie();
            }
            std::vector<const Column*> gptrs;
            gptrs.reserve(gcols.size());
            for (const auto& gc : gcols) gptrs.push_back(&gc);
            GroupAssignment ga = AssignGroupIds(gptrs, ln);
            std::vector<SelVector> rows(ga.num_groups());
            for (size_t r = 0; r < ln; ++r) {
              rows[ga.gid_of_row[r]].push_back(static_cast<uint32_t>(r));
            }
            res.groups.reserve(ga.num_groups());
            for (size_t g = 0; g < ga.num_groups(); ++g) {
              LocalGroup lg;
              lg.keys.reserve(gcols.size());
              for (const auto& gc : gcols) {
                lg.keys.push_back(gc.Get(ga.rep_row[g]));
              }
              lg.hash = ga.group_hash[g];
              auto accs = make_accs();
              if (!accs.ok()) return accs.status();
              lg.accs = std::move(accs).ValueOrDie();
              for (size_t i = 0; i < specs.size(); ++i) {
                if (specs[i].arg != nullptr) {
                  lg.accs[i]->AddBatch(acols[i], rows[g].data(),
                                       rows[g].size());
                } else {
                  lg.accs[i]->AddRepeated(Value::Int(1), rows[g].size());
                }
              }
              res.groups.push_back(std::move(lg));
            }
            return Status::Ok();
          });
      if (!parts_or.ok()) return parts_or.status();
      std::vector<MorselAgg>& parts = parts_or.value();

      // Hashed merge: every morsel's AssignGroupIds already computed each
      // group's key hash (a pure function of the key values, so all morsels
      // agree); FindOrInsert probes it directly — no per-group string keys.
      GroupMergeTable merge;
      merge.set_guard(guard_);
      merge.Reset(stmt->group_by.size(), 64);
      for (MorselAgg& part : parts) {
        for (LocalGroup& lg : part.groups) {
          bool inserted;
          const uint32_t gid =
              merge.FindOrInsert(lg.hash, lg.keys.data(), &inserted);
          if (inserted) {
            Group grp;
            grp.keys = std::move(lg.keys);
            grp.accs = std::move(lg.accs);
            groups.push_back(std::move(grp));
          } else {
            Group& dst = groups[gid];
            for (size_t i = 0; i < specs.size(); ++i) {
              dst.accs[i]->Merge(*lg.accs[i]);
            }
          }
        }
      }
      // A budget trip during merge-table growth latches instead of throwing
      // mid-probe; discard the partially merged state here.
      VDB_RETURN_IF_ERROR(merge.guard_status());
      // An aggregate without GROUP BY keys emits one row even over an empty
      // input (count(*) = 0, sum = NULL, ...).
      if (stmt->group_by.empty() && groups.empty()) {
        Group grp;
        auto accs = make_accs();
        if (!accs.ok()) return accs.status();
        grp.accs = std::move(accs).ValueOrDie();
        groups.push_back(std::move(grp));
      }
    } else {
      // Flat sink: per-morsel SoA partials (dense group ids + typed lane
      // arrays, column-at-a-time scatter), merged strictly in morsel order
      // through the hashed merge table into the global `flats` state. With a
      // WHERE bitmap, morsels decompose over SURVIVOR RANKS: each morsel
      // dense-evaluates its survivors' physical span (arithmetic is per-row
      // pure and rand is row-addressed, so dense evaluation produces the
      // identical values at surviving rows that compacted evaluation would)
      // and groups/scatters only the set-bit rows — the mask is never
      // expanded to row indices, and the gid sequence, first-occurrence
      // order, and group hashes all match the compacted path's.
      struct MorselFlat {
        GroupAssignment ga;
        std::vector<std::vector<Value>> keys;  // per local group
        std::vector<std::unique_ptr<FlatAggregator>> parts;
      };

      // Word prefix popcounts for rank-select over the filter bitmap.
      std::vector<size_t> wprefix;
      size_t total = view.num_rows();
      if (filter != nullptr) {
        wprefix.resize(filter->num_words() + 1, 0);
        for (size_t w = 0; w < filter->num_words(); ++w) {
          wprefix[w + 1] =
              wprefix[w] +
              static_cast<size_t>(__builtin_popcountll(filter->word(w)));
        }
        total = wprefix.back();
      }

      auto body = [&](MorselFlat& res, size_t begin, size_t end) -> Status {
        // Resolve this morsel's dense row span and (with a filter) its
        // span-relative selected rows.
        size_t row_lo = begin, row_hi = end;
        SelVector sel_local;
        if (filter != nullptr) {
          row_lo = BitmapSelect(*filter, wprefix, begin);
          row_hi = BitmapSelect(*filter, wprefix, end - 1) + 1;
          sel_local.reserve(end - begin);
          for (size_t w = row_lo / 64; w <= (row_hi - 1) / 64; ++w) {
            uint64_t word = filter->word(w);
            while (word != 0) {
              const size_t p =
                  w * 64 + static_cast<size_t>(__builtin_ctzll(word));
              word &= word - 1;
              if (p < row_lo) continue;
              if (p >= row_hi) break;
              sel_local.push_back(static_cast<uint32_t>(p - row_lo));
            }
          }
        }
        Batch batch = ViewBatch(view, rand_seed_, row_lo, row_hi);
        const size_t span = row_hi - row_lo;
        const size_t ln = end - begin;
        // Batch columns: a bound column ref over a dense (no-selection)
        // batch reads the table column IN PLACE at the morsel's base row —
        // the zero-copy direct-column path, no per-morsel slice
        // materialization (ColumnRefVec's borrowed-lane form, carried
        // through grouping and scatter). Everything else evaluates into an
        // owned column with base 0.
        struct BatchCol {
          Column owned;
          const Column* col = nullptr;
          size_t base = 0;
        };
        auto eval_col = [&](const sql::Expr& e, BatchCol* out) -> Status {
          if (e.kind == ExprKind::kColumnRef && e.bound_column >= 0 &&
              batch.sel == nullptr) {
            out->col =
                &batch.table->column(static_cast<size_t>(e.bound_column));
            out->base = batch.range_begin;
            return Status::Ok();
          }
          auto c = EvalExprBatch(e, batch);
          if (!c.ok()) return c.status();
          out->owned = std::move(c).ValueOrDie();
          out->col = &out->owned;
          return Status::Ok();
        };
        std::vector<BatchCol> gcols(stmt->group_by.size());
        for (size_t i = 0; i < stmt->group_by.size(); ++i) {
          VDB_RETURN_IF_ERROR(eval_col(*stmt->group_by[i], &gcols[i]));
        }
        std::vector<BatchCol> acols(specs.size());
        for (size_t i = 0; i < specs.size(); ++i) {
          if (specs[i].arg == nullptr) continue;
          VDB_RETURN_IF_ERROR(eval_col(*specs[i].arg, &acols[i]));
        }
        std::vector<KeyCol> kcs;
        kcs.reserve(gcols.size());
        for (const auto& gc : gcols) kcs.push_back(KeyCol{gc.col, gc.base});
        if (filter != nullptr) {
          AssignGroupIdsSelectedBased(kcs, span, sel_local.data(), ln,
                                      &res.ga);
        } else {
          res.ga = AssignGroupIdsBased(kcs, ln);
        }
        const size_t ngroups = res.ga.num_groups();
        res.keys.resize(ngroups);
        for (size_t g = 0; g < ngroups; ++g) {
          res.keys[g].reserve(gcols.size());
          for (const auto& gc : gcols) {
            res.keys[g].push_back(gc.col->Get(gc.base + res.ga.rep_row[g]));
          }
        }
        res.parts.reserve(specs.size());
        for (size_t i = 0; i < specs.size(); ++i) {
          auto f = CreateFlatAggregator(specs[i]);
          f->ResizeGroups(ngroups);
          const Column* col = specs[i].arg != nullptr ? acols[i].col : nullptr;
          const size_t base = specs[i].arg != nullptr ? acols[i].base : 0;
          if (filter != nullptr) {
            f->AddScatterSelected(col, base, sel_local.data(),
                                  res.ga.gid_of_row.data(), ln);
          } else {
            f->AddScatter(col, base, res.ga.gid_of_row.data(), ln);
          }
          res.parts.push_back(std::move(f));
        }
        return Status::Ok();
      };
      auto parts_or = ParallelMorselMapStatus<MorselFlat>(
          total, num_threads, guard_, "agg_partial", body);
      if (!parts_or.ok()) return parts_or.status();
      std::vector<MorselFlat>& parts = parts_or.value();

      flat_merge.set_guard(guard_);
      flat_merge.Reset(stmt->group_by.size(), 64);
      for (MorselFlat& part : parts) {
        for (uint32_t g = 0; g < part.keys.size(); ++g) {
          bool inserted;
          const uint32_t gid = flat_merge.FindOrInsert(
              part.ga.group_hash[g], part.keys[g].data(), &inserted);
          if (inserted) {
            // First occurrence: verbatim state copy, mirroring the reference
            // merge loop MOVING the first partial into the global slot
            // (merging into an empty group would re-round compensated sums).
            for (auto& f : flats) f->ResizeGroups(flat_merge.num_groups());
            for (size_t i = 0; i < specs.size(); ++i) {
              flats[i]->CopyGroup(*part.parts[i], gid, g);
            }
          } else {
            for (size_t i = 0; i < specs.size(); ++i) {
              flats[i]->MergeGroup(*part.parts[i], gid, g);
            }
          }
        }
      }
      // A budget trip during merge-table growth latches instead of throwing
      // mid-probe; discard the partially merged state here.
      VDB_RETURN_IF_ERROR(flat_merge.guard_status());
      flat_ngroups = flat_merge.num_groups();
      // An aggregate without GROUP BY keys emits one row even over an empty
      // input (count(*) = 0, sum = NULL, ...).
      if (stmt->group_by.empty() && flat_ngroups == 0) {
        flat_ngroups = 1;
        for (auto& f : flats) f->ResizeGroups(1);
      }
    }

    // Materialize the aggregate table: group cols then agg cols.
    auto agg_table = std::make_shared<Table>();
    const size_t gk = stmt->group_by.size();
    {
      std::vector<Column> cols(gk + specs.size());
      if (flat) {
        for (size_t g = 0; g < flat_ngroups; ++g) {
          const Value* keys =
              flat_merge.group_keys(static_cast<uint32_t>(g));
          for (size_t i = 0; i < gk; ++i) cols[i].Append(keys[i]);
          for (size_t i = 0; i < specs.size(); ++i) {
            cols[gk + i].Append(
                flats[i]->FinalizeGroup(static_cast<uint32_t>(g)));
          }
        }
      }
      for (auto& g : groups) {
        for (size_t i = 0; i < gk; ++i) cols[i].Append(g.keys[i]);
        for (size_t i = 0; i < specs.size(); ++i) {
          cols[gk + i].Append(g.accs[i]->Finalize());
        }
      }
      // Empty result columns still need registration.
      for (size_t i = 0; i < gk; ++i) {
        agg_table->AddColumn("__g" + std::to_string(i), std::move(cols[i]));
      }
      for (size_t i = 0; i < specs.size(); ++i) {
        agg_table->AddColumn("__a" + std::to_string(i),
                             std::move(cols[gk + i]));
      }
    }

    // Maps from printed expression text to aggregate-table ordinal.
    std::map<std::string, int> text_to_col;  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
    for (size_t i = 0; i < gk; ++i) {
      const Expr& g = *stmt->group_by[i];
      text_to_col[sql::PrintExpr(g)] = static_cast<int>(i);
      if (g.kind == ExprKind::kColumnRef) {
        text_to_col[g.name] = static_cast<int>(i);
        if (!g.qualifier.empty()) {
          text_to_col[g.qualifier + "." + g.name] = static_cast<int>(i);
        }
      }
    }
    std::map<std::string, int> agg_to_col;  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
    for (const auto& [text, idx] : agg_index) {
      agg_to_col[text] = static_cast<int>(gk) + idx;
    }

    // HAVING: batch predicate over the aggregate table. The surviving
    // groups stay a view — the output projection below evaluates through it
    // rather than gathering the aggregate table again.
    auto aggview = RowView::All(agg_table);
    if (!aggview.ok()) return aggview.status();
    RowView aview = std::move(aggview).ValueOrDie();
    if (stmt->having) {
      auto bound = RebindPostAgg(*stmt->having, text_to_col, agg_to_col);
      if (!bound.ok()) return bound.status();
      SelVector hsel;
      VDB_RETURN_IF_ERROR(EvalPredicateView(*bound.value(), aview, rand_seed_,
                                            db_->num_threads(), &hsel,
                                            guard_));
      if (hsel.size() < aview.num_rows()) {
        auto filtered = RowView::Select(agg_table, std::move(hsel));
        if (!filtered.ok()) return filtered.status();
        aview = std::move(filtered).ValueOrDie();
      }
    }

    // Rebind select items; then materialize window columns over agg_table.
    std::vector<Expr::Ptr> bound_items;
    ResultSet rs;
    for (auto& item : stmt->items) {
      if (item.expr->kind == ExprKind::kStar) {
        return Status::InvalidArgument("'*' not allowed with GROUP BY");
      }
      auto bound = RebindPostAgg(*item.expr, text_to_col, agg_to_col);
      if (!bound.ok()) return bound.status();
      bound_items.push_back(std::move(bound).ValueOrDie());
      rs.names.push_back(!item.alias.empty()
                             ? item.alias
                             : (item.expr->kind == ExprKind::kColumnRef
                                    ? item.expr->name
                                    : sql::PrintExpr(*item.expr)));
    }
    bool has_window = false;
    for (const auto& be : bound_items) {
      if (ContainsWindow(*be)) has_window = true;
    }
    if (has_window) {
      // Window frames over the (HAVING-filtered) groups need contiguous
      // rows: gather the view, extend with window columns, reset identity.
      auto gathered = aview.GatherGuarded(db_->num_threads(), guard_);
      if (!gathered.ok()) return gathered.status();
      agg_table = std::move(gathered).ValueOrDie();
      std::map<std::string, int> window_cols;  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
      for (auto& be : bound_items) {
        VDB_RETURN_IF_ERROR(MaterializeWindows(be.get(), &agg_table,
                                               &window_cols));
      }
      auto wv = RowView::All(agg_table);
      if (!wv.ok()) return wv.status();
      aview = std::move(wv).ValueOrDie();
    }

    auto table = std::make_shared<Table>();
    for (size_t i = 0; i < bound_items.size(); ++i) {
      auto col = EvalExprView(*bound_items[i], aview, rand_seed_,
                              db_->num_threads(), guard_);
      if (!col.ok()) return col.status();
      table->AddColumn(rs.names[i], std::move(col).ValueOrDie());
    }
    rs.table = table;
    return rs;
  }

  /// Collects non-window aggregate calls, assigning bound_agg ordinals and
  /// deduplicating by printed text. Recurses into window arguments so that
  /// e.g. sum(count(*)) over (...) registers the inner count(*).
  void CollectAggs(Expr* e, std::vector<Expr*>* aggs,
                   std::map<std::string, int>* index) {  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
    if (e->kind == ExprKind::kFunction && !e->is_window &&
        IsAggregateFunction(e->name)) {
      std::string text = sql::PrintExpr(*e);
      auto it = index->find(text);
      if (it == index->end()) {
        e->bound_agg = static_cast<int>(aggs->size());
        (*index)[text] = e->bound_agg;
        aggs->push_back(e);
      } else {
        e->bound_agg = it->second;
      }
      return;  // no nested aggregates
    }
    for (auto& a : e->args) {
      if (a) CollectAggs(a.get(), aggs, index);
    }
    for (auto& w : e->case_whens) CollectAggs(w.get(), aggs, index);
    for (auto& t : e->case_thens) CollectAggs(t.get(), aggs, index);
    if (e->case_else) CollectAggs(e->case_else.get(), aggs, index);
    for (auto& p : e->partition_by) CollectAggs(p.get(), aggs, index);
  }

  /// Rewrites an expression for evaluation against the aggregate table:
  /// group-by expressions and aggregate calls become bound column refs.
  Result<Expr::Ptr> RebindPostAgg(const Expr& e,
                                  const std::map<std::string, int>& group_map,  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
                                  const std::map<std::string, int>& agg_map) {  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
    std::string text = sql::PrintExpr(e);
    auto git = group_map.find(text);
    if (git == group_map.end() && e.kind == ExprKind::kColumnRef) {
      git = group_map.find(e.name);
    }
    if (git != group_map.end()) {
      auto ref = sql::MakeColumnRef("", "__g" + std::to_string(git->second));
      ref->bound_column = git->second;
      return ref;
    }
    if (e.kind == ExprKind::kFunction && !e.is_window &&
        IsAggregateFunction(e.name)) {
      auto ait = agg_map.find(text);
      if (ait == agg_map.end()) {
        return Status::Internal("aggregate was not collected: " + text);
      }
      auto ref = sql::MakeColumnRef("", "__a" + std::to_string(ait->second));
      ref->bound_column = ait->second;
      return ref;
    }
    if (e.kind == ExprKind::kColumnRef) {
      return Status::InvalidArgument(
          "column must appear in GROUP BY or inside an aggregate: " + e.name);
    }
    // Recurse.
    auto out = e.Clone();
    for (auto& a : out->args) {
      if (!a || a->kind == ExprKind::kStar) continue;
      auto r = RebindPostAgg(*a, group_map, agg_map);
      if (!r.ok()) return r.status();
      a = std::move(r).ValueOrDie();
    }
    for (auto& w : out->case_whens) {
      auto r = RebindPostAgg(*w, group_map, agg_map);
      if (!r.ok()) return r.status();
      w = std::move(r).ValueOrDie();
    }
    for (auto& t : out->case_thens) {
      auto r = RebindPostAgg(*t, group_map, agg_map);
      if (!r.ok()) return r.status();
      t = std::move(r).ValueOrDie();
    }
    if (out->case_else) {
      auto r = RebindPostAgg(*out->case_else, group_map, agg_map);
      if (!r.ok()) return r.status();
      out->case_else = std::move(r).ValueOrDie();
    }
    for (auto& p : out->partition_by) {
      auto r = RebindPostAgg(*p, group_map, agg_map);
      if (!r.ok()) return r.status();
      p = std::move(r).ValueOrDie();
    }
    return out;
  }

  /// Replaces window-function nodes under `e` with references to freshly
  /// computed columns appended to `*work`. Deduplicates by printed text.
  Status MaterializeWindows(Expr* e, TablePtr* work,
                            std::map<std::string, int>* window_cols) {  // vdb-lint: allow(string-keyed-map) plan-time metadata, bounded by SELECT-list length
    if (e->kind == ExprKind::kFunction && e->is_window) {
      std::string text = sql::PrintExpr(*e);
      auto it = window_cols->find(text);
      int col;
      if (it == window_cols->end()) {
        auto wcol = EvalWindowExpr(*e, **work, rand_seed_);
        if (!wcol.ok()) return wcol.status();
        // Copy-on-write: the work table may be shared (base table).
        auto extended = std::make_shared<Table>();
        for (size_t i = 0; i < (*work)->num_columns(); ++i) {
          extended->AddColumn((*work)->column_name(i), (*work)->column(i));
        }
        col = static_cast<int>(extended->num_columns());
        extended->AddColumn("__w" + std::to_string(window_cols->size()),
                            std::move(wcol).ValueOrDie());
        *work = extended;
        (*window_cols)[text] = col;
      } else {
        col = it->second;
      }
      e->kind = ExprKind::kColumnRef;
      e->qualifier.clear();
      e->name = "__w";
      e->bound_column = col;
      e->args.clear();
      e->partition_by.clear();
      e->is_window = false;
      return Status::Ok();
    }
    for (auto& a : e->args) {
      if (a) VDB_RETURN_IF_ERROR(MaterializeWindows(a.get(), work, window_cols));
    }
    for (auto& w : e->case_whens) {
      VDB_RETURN_IF_ERROR(MaterializeWindows(w.get(), work, window_cols));
    }
    for (auto& t : e->case_thens) {
      VDB_RETURN_IF_ERROR(MaterializeWindows(t.get(), work, window_cols));
    }
    if (e->case_else) {
      VDB_RETURN_IF_ERROR(
          MaterializeWindows(e->case_else.get(), work, window_cols));
    }
    return Status::Ok();
  }

  // ------------------------------------------------------- distinct/order --
  /// Vectorized DISTINCT over the viewed output rows: hashed group ids over
  /// the output columns; the representative positions (first occurrences,
  /// ascending) compose into the view — no full-width gather. Identity views
  /// (the common case: DISTINCT runs right after the projection) address the
  /// columns directly; other views gather the key columns only.
  Status Dedupe(RowView* view) {
    VDB_RETURN_IF_ERROR(CheckGroupableRows(view->num_rows()));
    const Table& table = *view->table();
    std::vector<Column> gathered;
    std::vector<const Column*> cols;
    cols.reserve(table.num_columns());
    if (view->is_identity()) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        cols.push_back(&table.column(c));
      }
    } else {
      gathered.reserve(table.num_columns());
      for (size_t c = 0; c < table.num_columns(); ++c) {
        gathered.push_back(
            view->GatherColumn(table.column(c), db_->num_threads()));
      }
      for (const Column& g : gathered) cols.push_back(&g);
    }
    // Either way the columns are in view order, so rep_row holds view
    // positions and composes directly.
    GroupAssignment ga = AssignGroupIds(cols, view->num_rows());
    if (ga.num_groups() == view->num_rows()) return Status::Ok();
    SelVector keep(ga.rep_row.begin(), ga.rep_row.end());
    auto composed = view->Compose(keep);
    if (!composed.ok()) return composed.status();
    *view = std::move(composed).ValueOrDie();
    return Status::Ok();
  }

  /// Sorts the view positions by the resolved output columns and composes
  /// the permutation into the view; the gather happens once, downstream.
  Status ApplyOrderBy(SelectStmt* stmt, const ResultSet& rs, RowView* view) {
    if (stmt->order_by.empty() || view->num_rows() == 0) return Status::Ok();
    // Resolve each order expression to an output column.
    std::vector<std::pair<int, bool>> keys;  // (column, ascending)
    for (auto& o : stmt->order_by) {
      int col = -1;
      if (o.expr->kind == ExprKind::kLiteral &&
          o.expr->literal.type() == TypeId::kInt64) {
        int64_t ord = o.expr->literal.AsInt();
        if (ord < 1 || ord > static_cast<int64_t>(rs.NumCols())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        col = static_cast<int>(ord - 1);
      } else if (o.expr->kind == ExprKind::kColumnRef) {
        col = rs.ColumnIndex(o.expr->name);
      }
      if (col < 0) {
        // Match by printed text against item expressions.
        std::string text = sql::PrintExpr(*o.expr);
        for (size_t i = 0; i < stmt->items.size(); ++i) {
          if (sql::PrintExpr(*stmt->items[i].expr) == text) {
            col = static_cast<int>(i);
            break;
          }
        }
      }
      if (col < 0) {
        return Status::Unsupported(
            "ORDER BY expression must reference an output column: " +
            sql::PrintExpr(*o.expr));
      }
      keys.emplace_back(col, o.ascending);
    }

    SelVector perm(view->num_rows());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
    const Table& t = *rs.table;
    const RowView& v = *view;
    std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      for (const auto& [col, asc] : keys) {
        Value va = t.Get(v.RowAt(a), static_cast<size_t>(col));
        Value vb = t.Get(v.RowAt(b), static_cast<size_t>(col));
        // NULLs sort first ascending, last descending.
        if (va.is_null() != vb.is_null()) {
          return asc ? va.is_null() : vb.is_null();
        }
        int c = va.Compare(vb);
        if (c != 0) return asc ? c < 0 : c > 0;
      }
      return false;
    });

    auto composed = view->Compose(perm);
    if (!composed.ok()) return composed.status();
    *view = std::move(composed).ValueOrDie();
    return Status::Ok();
  }

  Database* db_;
  /// Per-statement query seed: every rand-family draw this statement (and
  /// its derived tables / subqueries) performs is addressed by it.
  uint64_t rand_seed_ = 0;
  /// Per-statement execution guard (nullptr = ungoverned), shared with
  /// derived-table / subquery sub-executors: one statement, one guard.
  const ExecGuard* guard_ = nullptr;
  /// The current statement's WHERE while eligible for pair-view pushdown;
  /// consumed (nulled) by the FROM-root ExecuteJoin, which sets the applied
  /// flag after filtering candidate pairs so RunSingle skips the normal
  /// post-materialization WHERE.
  const Expr* pushdown_where_ = nullptr;
  bool pushdown_where_applied_ = false;

  /// Statement currently executing in RunSingle — the reference scope
  /// ExecuteFrom consults when deciding which derived-table outputs the
  /// outer level can actually touch.
  const SelectStmt* current_stmt_ = nullptr;
  /// Derived-table projection pruning (set by the PARENT executor before
  /// Run): when active, RunProjection drops select outputs whose names are
  /// not in the keep set. Never applied to DISTINCT / ORDER BY / UNION /
  /// grouped statements — those shapes are gated off at the call site or
  /// take the grouped path, which ignores the filter.
  std::set<std::string> output_keep_;
  bool output_keep_active_ = false;
};

}  // namespace

void SetJoinWherePushdownForTest(bool enabled) {
  g_join_where_pushdown.store(enabled, std::memory_order_relaxed);
}

void SetFlatAggSinkForTest(bool enabled) {
  g_flat_agg_sink.store(enabled, std::memory_order_relaxed);
}

void SetGroupedWhereBitmapForTest(bool enabled) {
  g_grouped_where_bitmap.store(enabled, std::memory_order_relaxed);
}

Result<ResultSet> RunSelect(Database* db, sql::SelectStmt* stmt,
                            const ExecGuard* guard) {
  // Number the statement's rand call sites, then draw its query seed — the
  // two inputs (with the row id) of every row-addressed rand draw below.
  AssignRandSites(stmt);
  SelectExecutor exec(db, db->NewQuerySeed(), guard);
  return exec.Run(stmt);
}

}  // namespace vdb::engine
