#include "engine/planner.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "engine/aggregates.h"
#include "engine/binder.h"
#include "engine/expr_eval.h"
#include "engine/functions.h"
#include "engine/group_ids.h"
#include "engine/operators.h"
#include "engine/vector_eval.h"
#include "engine/window.h"
#include "sql/printer.h"

namespace vdb::engine {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;
using sql::TableRef;

/// Test hook (SetJoinWherePushdownForTest): pair-view WHERE pushdown on/off.
bool g_join_where_pushdown = true;

// ---- rand call-site numbering ---------------------------------------------
// Every rand/random/rand_poisson node gets a 1-based call-site id, assigned
// once per statement in a fixed traversal order (select items, WHERE,
// GROUP BY, HAVING, ORDER BY, FROM tree, UNION chain; recursing into derived
// tables and subqueries). The id is part of the row-addressed draw
// (RandAddr.site), so distinct call sites draw independently while clones of
// the same site — pushdown copies, rebinds — keep identical draws. Numbering
// is two-pass: a scan pass finds the maximum id already present (statements
// may mix fresh nodes with pre-numbered cloned subtrees, in either traversal
// order), then fresh ids start above it — so a fresh node can never collide
// with a pre-numbered one and silently correlate two call sites. Re-entry on
// a fully numbered statement is a no-op.

void WalkRandSitesStmt(SelectStmt* stmt, int* next, bool assign);

void WalkRandSitesExpr(Expr* e, int* next, bool assign) {
  if (e == nullptr) return;
  if (sql::IsRandFunctionExpr(*e)) {
    if (!assign) {
      if (e->rand_site >= *next) *next = e->rand_site + 1;
    } else if (e->rand_site == 0) {
      e->rand_site = (*next)++;
    }
  }
  for (auto& a : e->args) WalkRandSitesExpr(a.get(), next, assign);
  for (auto& w : e->case_whens) WalkRandSitesExpr(w.get(), next, assign);
  for (auto& t : e->case_thens) WalkRandSitesExpr(t.get(), next, assign);
  WalkRandSitesExpr(e->case_else.get(), next, assign);
  for (auto& p : e->partition_by) WalkRandSitesExpr(p.get(), next, assign);
  if (e->subquery) WalkRandSitesStmt(e->subquery.get(), next, assign);
}

void WalkRandSitesRef(TableRef* ref, int* next, bool assign) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case TableRef::Kind::kBase:
      return;
    case TableRef::Kind::kDerived:
      WalkRandSitesStmt(ref->derived.get(), next, assign);
      return;
    case TableRef::Kind::kJoin:
      WalkRandSitesRef(ref->left.get(), next, assign);
      WalkRandSitesRef(ref->right.get(), next, assign);
      WalkRandSitesExpr(ref->on.get(), next, assign);
      return;
  }
}

void WalkRandSitesStmt(SelectStmt* stmt, int* next, bool assign) {
  if (stmt == nullptr) return;
  for (auto& it : stmt->items) WalkRandSitesExpr(it.expr.get(), next, assign);
  WalkRandSitesExpr(stmt->where.get(), next, assign);
  for (auto& g : stmt->group_by) WalkRandSitesExpr(g.get(), next, assign);
  WalkRandSitesExpr(stmt->having.get(), next, assign);
  for (auto& o : stmt->order_by) WalkRandSitesExpr(o.expr.get(), next, assign);
  WalkRandSitesRef(stmt->from.get(), next, assign);
  WalkRandSitesStmt(stmt->union_next.get(), next, assign);
}

void AssignRandSites(SelectStmt* stmt) {
  int next = 1;
  WalkRandSitesStmt(stmt, &next, /*assign=*/false);
  WalkRandSitesStmt(stmt, &next, /*assign=*/true);
}

struct RelResult {
  TablePtr table;
  Scope scope;
};

/// Splits an AND tree into conjuncts (non-owning).
void CollectConjuncts(Expr* e, std::vector<Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == sql::BinaryOp::kAnd) {
    CollectConjuncts(e->args[0].get(), out);
    CollectConjuncts(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// True if the statement draws rand anywhere outside its WHERE clause
/// (select items, GROUP BY, HAVING, ORDER BY). Such statements are barred
/// from the pair-view WHERE pushdown: see the eligibility comment in
/// RunSingle.
bool RandOutsideWhere(const SelectStmt& stmt) {
  for (const auto& it : stmt.items) {
    if (it.expr->kind != ExprKind::kStar &&
        sql::ContainsRandFunction(*it.expr)) {
      return true;
    }
  }
  for (const auto& g : stmt.group_by) {
    if (sql::ContainsRandFunction(*g)) return true;
  }
  if (stmt.having && sql::ContainsRandFunction(*stmt.having)) return true;
  for (const auto& o : stmt.order_by) {
    if (sql::ContainsRandFunction(*o.expr)) return true;
  }
  return false;
}

/// True if the tree contains a window-function node. Window frames need
/// contiguous physical rows, so their presence forces the one early gather.
bool ContainsWindow(const Expr& e) {
  return sql::AnyExprNode(e, [](const Expr& n) {
    return n.kind == ExprKind::kFunction && n.is_window;
  });
}

class SelectExecutor {
 public:
  SelectExecutor(Database* db, uint64_t rand_seed)
      : db_(db), rand_seed_(rand_seed) {}

  Result<ResultSet> Run(SelectStmt* stmt) {
    auto head = RunSingle(stmt);
    if (!head.ok()) return head.status();
    ResultSet rs = std::move(head).ValueOrDie();
    SelectStmt* next = stmt->union_next.get();
    while (next != nullptr) {
      auto part = RunSingle(next);
      if (!part.ok()) return part.status();
      const ResultSet& p = part.value();
      if (p.NumCols() != rs.NumCols()) {
        return Status::InvalidArgument("UNION ALL arity mismatch");
      }
      rs.table->AppendRange(*p.table, 0, p.NumRows());
      next = next->union_next.get();
    }
    return rs;
  }

 private:
  // ---------------------------------------------------------------- FROM --
  Result<RelResult> ExecuteFrom(TableRef* ref) {
    switch (ref->kind) {
      case TableRef::Kind::kBase: {
        TablePtr t = db_->catalog().GetTable(ref->table_name);
        if (!t) return Status::NotFound("no such table: " + ref->table_name);
        db_->AddRowsScanned(t->num_rows());
        RelResult r;
        r.table = t;
        for (size_t i = 0; i < t->num_columns(); ++i) {
          r.scope.Add(ref->EffectiveName(), t->column_name(i));
        }
        return r;
      }
      case TableRef::Kind::kDerived: {
        SelectExecutor sub(db_, rand_seed_);
        auto rs = sub.Run(ref->derived.get());
        if (!rs.ok()) return rs.status();
        RelResult r;
        r.table = rs.value().table;
        for (const auto& n : rs.value().names) r.scope.Add(ref->alias, n);
        return r;
      }
      case TableRef::Kind::kJoin:
        return ExecuteJoin(ref);
    }
    return Status::Internal("unknown table ref kind");
  }

  Result<RelResult> ExecuteJoin(TableRef* ref) {
    // The FROM-root join consumes the pushed-down WHERE (if any); nested
    // join children, executed below, must not see it.
    const Expr* pushdown = pushdown_where_;
    pushdown_where_ = nullptr;
    auto left = ExecuteFrom(ref->left.get());
    if (!left.ok()) return left.status();
    auto right = ExecuteFrom(ref->right.get());
    if (!right.ok()) return right.status();
    RelResult& lr = left.value();
    RelResult& rr = right.value();

    Scope combined;
    for (size_t i = 0; i < lr.scope.size(); ++i) {
      combined.Add(lr.scope.qualifier(i), lr.scope.name(i));
    }
    for (size_t i = 0; i < rr.scope.size(); ++i) {
      combined.Add(rr.scope.qualifier(i), rr.scope.name(i));
    }

    // Partition the ON condition into equi-key pairs and a residual.
    std::vector<Expr::Ptr> left_keys, right_keys;
    std::vector<Expr::Ptr> residual_parts;
    if (ref->on) {
      std::vector<Expr*> conjuncts;
      CollectConjuncts(ref->on.get(), &conjuncts);
      for (Expr* c : conjuncts) {
        bool is_key = false;
        if (c->kind == ExprKind::kBinary &&
            c->binary_op == sql::BinaryOp::kEq) {
          auto l0 = c->args[0]->Clone();
          auto r0 = c->args[1]->Clone();
          if (BindExpr(l0.get(), lr.scope).ok() &&
              BindExpr(r0.get(), rr.scope).ok()) {
            left_keys.push_back(std::move(l0));
            right_keys.push_back(std::move(r0));
            is_key = true;
          } else {
            auto l1 = c->args[1]->Clone();
            auto r1 = c->args[0]->Clone();
            if (BindExpr(l1.get(), lr.scope).ok() &&
                BindExpr(r1.get(), rr.scope).ok()) {
              left_keys.push_back(std::move(l1));
              right_keys.push_back(std::move(r1));
              is_key = true;
            }
          }
        }
        if (!is_key) residual_parts.push_back(c->Clone());
      }
    }
    Expr::Ptr residual = sql::AndAll(std::move(residual_parts));
    if (residual) {
      VDB_RETURN_IF_ERROR(BindExpr(residual.get(), combined));
    }

    Result<JoinPairView> joined = Status::Internal("join not executed");
    if (!left_keys.empty()) {
      joined = HashJoinPairsExprs(lr.table, rr.table, left_keys, right_keys,
                                  ref->join_type, residual.get());
    } else {
      if (ref->join_type == sql::JoinType::kLeft) {
        return Status::Unsupported("left join requires an equi condition");
      }
      joined = CrossJoinPairs(lr.table, rr.table, residual.get(), rand_seed_,
                              200'000'000, db_->num_threads());
    }
    if (!joined.ok()) return joined.status();
    JoinPairView pairs = std::move(joined).ValueOrDie();

    // Pair-view WHERE pushdown: the query's WHERE filters candidate pairs
    // while they are still a view, so non-surviving pairs never reach the
    // combined gather below. Valid for inner joins (identical to a residual)
    // AND left joins (null-extended pairs evaluate with NULL right columns,
    // exactly as the materialized rows would) — including rand()-bearing
    // predicates: their draws address the global pair ordinal, which equals
    // the materialized row position the post-gather WHERE would see. If the
    // clone fails to bind against the combined scope, fall back to the
    // post-gather WHERE path.
    if (pushdown != nullptr) {
      auto w = pushdown->Clone();
      if (BindExpr(w.get(), combined).ok()) {
        VDB_RETURN_IF_ERROR(FilterJoinPairs(*w, &pairs, rand_seed_,
                                            db_->num_threads()));
        pushdown_where_applied_ = true;
      }
    }

    RelResult out;
    out.table = pairs.Gather(db_->num_threads());
    out.scope = std::move(combined);
    return out;
  }

  /// Hash join on arbitrary bound key expressions. Plain column-ref keys
  /// borrow the input's own columns; expression keys are evaluated into
  /// standalone columns passed by pointer — the join inputs are never padded
  /// or copied, the output schema never contains helper columns, and
  /// residual predicates (bound against the combined schema) compose with
  /// expression keys without any ordinal shifting.
  Result<JoinPairView> HashJoinPairsExprs(const TablePtr& left,
                                          const TablePtr& right,
                                          const std::vector<Expr::Ptr>& lkeys,
                                          const std::vector<Expr::Ptr>& rkeys,
                                          sql::JoinType type,
                                          const Expr* residual) {
    // One pass per side decides borrow-vs-evaluate exactly once; the deque
    // gives evaluated columns stable addresses as it grows. The key columns
    // only need to live through HashJoinPairs — the returned pair view holds
    // row indices, not key references.
    std::deque<Column> owned;
    auto collect = [&](const Table& t, const std::vector<Expr::Ptr>& keys,
                       std::vector<const Column*>* cols) -> Status {
      Batch batch{&t, nullptr, rand_seed_};
      for (const auto& k : keys) {
        if (k->kind == ExprKind::kColumnRef && k->bound_column >= 0) {
          cols->push_back(&t.column(static_cast<size_t>(k->bound_column)));
          continue;
        }
        auto kc = EvalExprBatch(*k, batch);
        if (!kc.ok()) return kc.status();
        owned.push_back(std::move(kc).ValueOrDie());
        cols->push_back(&owned.back());
      }
      return Status::Ok();
    };
    std::vector<const Column*> lcols, rcols;
    VDB_RETURN_IF_ERROR(collect(*left, lkeys, &lcols));
    VDB_RETURN_IF_ERROR(collect(*right, rkeys, &rcols));
    return HashJoinPairs(left, right, lcols, rcols, type, residual,
                         rand_seed_, db_->num_threads());
  }

  // ------------------------------------------------------ scalar subquery --
  Status ResolveSubqueries(Expr* e) {
    if (e->kind == ExprKind::kSubquery) {
      SelectExecutor sub(db_, rand_seed_);
      auto rs = sub.Run(e->subquery.get());
      if (!rs.ok()) return rs.status();
      const ResultSet& r = rs.value();
      if (r.NumCols() != 1) {
        return Status::InvalidArgument("scalar subquery must return 1 column");
      }
      if (r.NumRows() > 1) {
        return Status::InvalidArgument("scalar subquery returned >1 row");
      }
      e->kind = ExprKind::kLiteral;
      e->literal = r.NumRows() == 0 ? Value::Null() : r.Get(0, 0);
      e->subquery.reset();
      return Status::Ok();
    }
    if (e->kind == ExprKind::kExists) {
      SelectExecutor sub(db_, rand_seed_);
      auto rs = sub.Run(e->subquery.get());
      if (!rs.ok()) return rs.status();
      e->kind = ExprKind::kLiteral;
      e->literal = Value::Bool(rs.value().NumRows() > 0);
      e->subquery.reset();
      return Status::Ok();
    }
    for (auto& a : e->args) {
      if (a) VDB_RETURN_IF_ERROR(ResolveSubqueries(a.get()));
    }
    for (auto& w : e->case_whens) VDB_RETURN_IF_ERROR(ResolveSubqueries(w.get()));
    for (auto& t : e->case_thens) VDB_RETURN_IF_ERROR(ResolveSubqueries(t.get()));
    if (e->case_else) VDB_RETURN_IF_ERROR(ResolveSubqueries(e->case_else.get()));
    for (auto& p : e->partition_by) {
      VDB_RETURN_IF_ERROR(ResolveSubqueries(p.get()));
    }
    return Status::Ok();
  }

  // ------------------------------------------------------------ main body --
  Result<ResultSet> RunSingle(SelectStmt* stmt) {
    // WHERE pushdown eligibility: when the FROM root is a join, the WHERE
    // can filter candidate pairs before the join's one combined gather
    // (ExecuteJoin consumes pushdown_where_). rand()-bearing predicates are
    // eligible — row-addressed draws make pushdown and post-gather
    // evaluation of the WHERE bit-identical (global pair ordinal =
    // materialized row). Excluded: subquery-bearing predicates, whose
    // subqueries resolve only after FROM execution (the pushdown clone
    // would carry unresolved subquery nodes into the pair evaluator), and
    // statements drawing rand ANYWHERE OUTSIDE the WHERE — pushdown
    // compacts the gathered join to the WHERE survivors, so downstream
    // rand draws would address compacted positions instead of the pair
    // ordinals the post-gather plan sees, breaking plan-shape invariance.
    pushdown_where_ = nullptr;
    pushdown_where_applied_ = false;
    if (g_join_where_pushdown && stmt->where &&
        !RandOutsideWhere(*stmt) &&
        !sql::AnyExprNode(*stmt->where, [](const Expr& n) {
          return n.subquery != nullptr;
        })) {
      pushdown_where_ = stmt->where.get();
    }

    // FROM
    RelResult input;
    if (stmt->from) {
      auto r = ExecuteFrom(stmt->from.get());
      if (!r.ok()) return r.status();
      input = std::move(r).ValueOrDie();
      pushdown_where_ = nullptr;  // only the FROM-root join may consume it
    } else {
      auto dummy = std::make_shared<Table>();
      Column c(TypeId::kInt64);
      c.AppendInt(0);
      dummy->AddColumn("__dummy", std::move(c));
      input.table = dummy;
      input.scope.Add("", "__dummy");
    }

    // Pre-execute scalar subqueries everywhere they may appear.
    for (auto& it : stmt->items) {
      VDB_RETURN_IF_ERROR(ResolveSubqueries(it.expr.get()));
    }
    if (stmt->where) VDB_RETURN_IF_ERROR(ResolveSubqueries(stmt->where.get()));
    if (stmt->having) VDB_RETURN_IF_ERROR(ResolveSubqueries(stmt->having.get()));
    for (auto& g : stmt->group_by) VDB_RETURN_IF_ERROR(ResolveSubqueries(g.get()));
    for (auto& o : stmt->order_by) {
      VDB_RETURN_IF_ERROR(ResolveSubqueries(o.expr.get()));
    }

    // WHERE: morsel-parallel batch predicate over the input view. The
    // survivors stay a (table, SelVector) view — no gather; downstream
    // operators evaluate through the view and the projection (or the result
    // boundary) performs the query's one full-width gather.
    auto inview = RowView::All(input.table);
    if (!inview.ok()) return inview.status();
    RowView view = std::move(inview).ValueOrDie();
    if (stmt->where && !pushdown_where_applied_) {
      VDB_RETURN_IF_ERROR(BindExpr(stmt->where.get(), input.scope));
      SelVector sel;
      VDB_RETURN_IF_ERROR(EvalPredicateView(*stmt->where, view, rand_seed_,
                                            db_->num_threads(), &sel));
      if (sel.size() < view.num_rows()) {
        auto filtered = RowView::Select(input.table, std::move(sel));
        if (!filtered.ok()) return filtered.status();
        view = std::move(filtered).ValueOrDie();
      }
    }

    bool grouped = !stmt->group_by.empty();
    if (!grouped) {
      for (const auto& it : stmt->items) {
        if (ContainsAggregate(*it.expr)) {
          grouped = true;
          break;
        }
      }
      if (stmt->having && ContainsAggregate(*stmt->having)) grouped = true;
    }

    ResultSet out;
    if (grouped) {
      auto rs = RunGrouped(stmt, view, input.scope);
      if (!rs.ok()) return rs.status();
      out = std::move(rs).ValueOrDie();
    } else {
      auto rs = RunProjection(stmt, view, input.scope);
      if (!rs.ok()) return rs.status();
      out = std::move(rs).ValueOrDie();
    }

    // DISTINCT / ORDER BY / LIMIT compose views over the projected output
    // instead of gathering after each step; the chain materializes at most
    // once, at the result boundary below.
    auto outview = RowView::All(out.table);
    if (!outview.ok()) return outview.status();
    RowView oview = std::move(outview).ValueOrDie();
    if (stmt->distinct) VDB_RETURN_IF_ERROR(Dedupe(&oview));
    VDB_RETURN_IF_ERROR(ApplyOrderBy(stmt, out, &oview));
    if (stmt->limit >= 0) {
      oview = oview.Prefix(static_cast<size_t>(stmt->limit));
    }
    out.table = oview.Gather(db_->num_threads());
    return out;
  }

  // --------------------------------------------------- non-grouped select --
  Result<ResultSet> RunProjection(SelectStmt* stmt, const RowView& input_view,
                                  const Scope& scope) {
    // Expand stars and build the output item list.
    struct OutItem {
      const Expr* expr = nullptr;  // non-owning (points into stmt or extras)
      std::string name;
      int direct_column = -1;  // fast path: copy the input column wholesale
    };
    std::vector<OutItem> outs;

    for (auto& item : stmt->items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (int idx : scope.Expand(item.expr->qualifier)) {
          OutItem oi;
          oi.name = scope.name(static_cast<size_t>(idx));
          if (oi.name == "__dummy") continue;
          oi.direct_column = idx;
          outs.push_back(std::move(oi));
        }
        continue;
      }
      VDB_RETURN_IF_ERROR(BindExpr(item.expr.get(), scope));
      OutItem oi;
      oi.expr = item.expr.get();
      oi.name = !item.alias.empty()
                    ? item.alias
                    : (item.expr->kind == ExprKind::kColumnRef
                           ? item.expr->name
                           : sql::PrintExpr(*item.expr));
      if (item.expr->kind == ExprKind::kColumnRef) {
        oi.direct_column = item.expr->bound_column;
      }
      outs.push_back(std::move(oi));
    }

    // Window functions need contiguous physical frames: their presence
    // forces the one full-width gather up front, after which the view is
    // the identity again.
    RowView view = input_view;
    TablePtr work = view.table();
    bool has_window = false;
    for (const auto& item : stmt->items) {
      if (item.expr->kind != ExprKind::kStar && ContainsWindow(*item.expr)) {
        has_window = true;
        break;
      }
    }
    if (has_window) {
      work = view.Gather(db_->num_threads());
      std::map<std::string, int> window_cols;
      for (auto& item : stmt->items) {
        if (item.expr->kind == ExprKind::kStar) continue;
        VDB_RETURN_IF_ERROR(
            MaterializeWindows(item.expr.get(), &work, &window_cols));
      }
      auto wv = RowView::All(work);
      if (!wv.ok()) return wv.status();
      view = std::move(wv).ValueOrDie();
    }

    ResultSet rs;
    auto table = std::make_shared<Table>();
    for (const auto& oi : outs) {
      rs.names.push_back(oi.name);
    }
    // Materialize the output columns from the view: direct columns copy
    // (identity) or gather once; expressions evaluate morsel-parallel with
    // per-morsel chunks concatenated type-stably. This is the projection's
    // single full-width materialization.
    const int num_threads = db_->num_threads();
    for (const auto& oi : outs) {
      if (oi.direct_column >= 0) {
        const Column& src = work->column(static_cast<size_t>(oi.direct_column));
        if (view.is_identity()) {
          table->AddColumn(oi.name, src);
        } else {
          table->AddColumn(oi.name, view.GatherColumn(src, num_threads));
        }
      } else {
        auto col = EvalExprView(*oi.expr, view, rand_seed_, num_threads);
        if (!col.ok()) return col.status();
        table->AddColumn(oi.name, std::move(col).ValueOrDie());
      }
    }
    if (table->num_columns() == 0) {
      return Status::InvalidArgument("empty select list");
    }
    rs.table = table;
    return rs;
  }

  // ------------------------------------------------------- grouped select --
  Result<ResultSet> RunGrouped(SelectStmt* stmt, const RowView& view,
                               const Scope& scope) {
    // Resolve group-by items that name select aliases.
    for (auto& g : stmt->group_by) {
      if (g->kind == ExprKind::kColumnRef && g->qualifier.empty() &&
          !scope.Resolve("", g->name).ok()) {
        for (auto& item : stmt->items) {
          if (!item.alias.empty() && item.alias == g->name) {
            g = item.expr->Clone();
            break;
          }
        }
      }
      VDB_RETURN_IF_ERROR(BindExpr(g.get(), scope));
    }

    // Collect aggregate calls (deduplicated by printed text).
    std::vector<Expr*> agg_exprs;
    std::map<std::string, int> agg_index;
    for (auto& item : stmt->items) {
      CollectAggs(item.expr.get(), &agg_exprs, &agg_index);
    }
    if (stmt->having) CollectAggs(stmt->having.get(), &agg_exprs, &agg_index);

    std::vector<AggSpec> specs;
    for (Expr* a : agg_exprs) {
      for (auto& arg : a->args) {
        if (arg->kind != ExprKind::kStar) {
          VDB_RETURN_IF_ERROR(BindExpr(arg.get(), scope));
        }
      }
      AggSpec s;
      s.name = a->name;
      s.distinct = a->distinct;
      bool star = !a->args.empty() && a->args[0]->kind == ExprKind::kStar;
      s.arg = (a->args.empty() || star) ? nullptr : a->args[0].get();
      if (a->args.size() >= 2 && a->args[1]->kind == ExprKind::kLiteral) {
        s.param = a->args[1]->literal.AsDouble();
      }
      specs.push_back(s);
    }

    // Hash aggregation.
    struct Group {
      std::vector<Value> keys;
      std::vector<std::unique_ptr<AggAccumulator>> accs;
    };
    std::vector<Group> groups;

    auto make_accs =
        [&]() -> Result<std::vector<std::unique_ptr<AggAccumulator>>> {
      std::vector<std::unique_ptr<AggAccumulator>> accs;
      accs.reserve(specs.size());
      for (const auto& s : specs) {
        auto acc = CreateAccumulator(s);
        if (!acc.ok()) return acc.status();
        accs.push_back(std::move(acc).ValueOrDie());
      }
      return accs;
    };

    // Morsel-partial aggregation needs mergeable accumulator states. When
    // it applies, it applies at EVERY thread count: the morsel decomposition
    // depends only on the row count, and partials merge strictly in morsel
    // order, so 1-thread and N-thread runs execute the identical computation
    // and produce bit-identical results (floating-point aggregates
    // included). rand()-bearing grouping/argument expressions are fine here:
    // row-addressed draws make every morsel see the values the whole-input
    // batch would. Queries it can't cover run the whole-input serial path —
    // also at every thread count, so those stay consistent too.
    const int num_threads = db_->num_threads();
    VDB_RETURN_IF_ERROR(CheckGroupableRows(view.num_rows()));
    bool partials = true;
    {
      auto probe = make_accs();
      if (!probe.ok()) return probe.status();
      for (const auto& acc : probe.value()) {
        if (!acc->Mergeable()) partials = false;
      }
    }

    if (!partials) {
      // Serial path (non-mergeable UDAs):
      // batch-evaluate group keys and aggregate arguments once over the
      // whole view, column-at-a-time, assign hashed group ids over the
      // materialized key columns (vectorized — no per-row string keys), and
      // accumulate each group through the selection-vector batch interface.
      Batch batch = ViewBatch(view, rand_seed_);
      std::vector<Column> gcols;
      gcols.reserve(stmt->group_by.size());
      for (const auto& g : stmt->group_by) {
        auto c = EvalExprBatch(*g, batch);
        if (!c.ok()) return c.status();
        gcols.push_back(std::move(c).ValueOrDie());
      }
      std::vector<Column> acols(specs.size());
      for (size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].arg == nullptr) continue;
        auto c = EvalExprBatch(*specs[i].arg, batch);
        if (!c.ok()) return c.status();
        acols[i] = std::move(c).ValueOrDie();
      }

      const size_t n = view.num_rows();
      std::vector<const Column*> gptrs;
      gptrs.reserve(gcols.size());
      for (const auto& gc : gcols) gptrs.push_back(&gc);
      GroupAssignment ga = AssignGroupIds(gptrs, n);
      std::vector<SelVector> group_rows(ga.num_groups());
      for (size_t r = 0; r < n; ++r) {
        group_rows[ga.gid_of_row[r]].push_back(static_cast<uint32_t>(r));
      }
      for (size_t g = 0; g < ga.num_groups(); ++g) {
        Group grp;
        grp.keys.reserve(gcols.size());
        for (const auto& gc : gcols) grp.keys.push_back(gc.Get(ga.rep_row[g]));
        auto accs = make_accs();
        if (!accs.ok()) return accs.status();
        grp.accs = std::move(accs).ValueOrDie();
        groups.push_back(std::move(grp));
      }
      // An aggregate without GROUP BY keys emits one row even over an empty
      // input (count(*) = 0, sum = NULL, ...).
      if (stmt->group_by.empty() && groups.empty()) {
        Group grp;
        auto accs = make_accs();
        if (!accs.ok()) return accs.status();
        grp.accs = std::move(accs).ValueOrDie();
        groups.push_back(std::move(grp));
        group_rows.emplace_back();
      }

      for (size_t g = 0; g < groups.size(); ++g) {
        for (size_t i = 0; i < specs.size(); ++i) {
          if (specs[i].arg != nullptr) {
            groups[g].accs[i]->AddBatch(acols[i], group_rows[g].data(),
                                        group_rows[g].size());
          } else {
            groups[g].accs[i]->AddRepeated(Value::Int(1),
                                           group_rows[g].size());
          }
        }
      }
    } else {
      // Partial path: each morsel evaluates the grouping and argument
      // expressions over its own slice of the view, aggregates into
      // morsel-local partial states, and the partials are merged strictly in
      // morsel order. The decomposition depends only on the view's row
      // count, so the output — values, group order, and floating-point
      // rounding — is identical for every thread count and OS schedule.
      struct LocalGroup {
        std::string key_text;  // ValueGroupKey concatenation, merge key
        std::vector<Value> keys;
        std::vector<std::unique_ptr<AggAccumulator>> accs;
      };
      struct MorselAgg {
        std::vector<LocalGroup> groups;
        Status status = Status::Ok();
      };
      const size_t n = view.num_rows();
      auto parts = ParallelMorselMap<MorselAgg>(
          n, num_threads, [&](MorselAgg& res, size_t begin, size_t end) {
            Batch batch = ViewBatch(view, rand_seed_, begin, end);
            const size_t ln = end - begin;
            std::vector<Column> gcols;
            gcols.reserve(stmt->group_by.size());
            for (const auto& g : stmt->group_by) {
              auto c = EvalExprBatch(*g, batch);
              if (!c.ok()) {
                res.status = c.status();
                return;
              }
              gcols.push_back(std::move(c).ValueOrDie());
            }
            std::vector<Column> acols(specs.size());
            for (size_t i = 0; i < specs.size(); ++i) {
              if (specs[i].arg == nullptr) continue;
              auto c = EvalExprBatch(*specs[i].arg, batch);
              if (!c.ok()) {
                res.status = c.status();
                return;
              }
              acols[i] = std::move(c).ValueOrDie();
            }
            std::vector<const Column*> gptrs;
            gptrs.reserve(gcols.size());
            for (const auto& gc : gcols) gptrs.push_back(&gc);
            GroupAssignment ga = AssignGroupIds(gptrs, ln);
            std::vector<SelVector> rows(ga.num_groups());
            for (size_t r = 0; r < ln; ++r) {
              rows[ga.gid_of_row[r]].push_back(static_cast<uint32_t>(r));
            }
            res.groups.reserve(ga.num_groups());
            for (size_t g = 0; g < ga.num_groups(); ++g) {
              LocalGroup lg;
              lg.keys.reserve(gcols.size());
              for (const auto& gc : gcols) {
                lg.keys.push_back(gc.Get(ga.rep_row[g]));
              }
              for (const Value& v : lg.keys) {
                lg.key_text += ValueGroupKey(v);
                lg.key_text.push_back('\x1f');
              }
              auto accs = make_accs();
              if (!accs.ok()) {
                res.status = accs.status();
                return;
              }
              lg.accs = std::move(accs).ValueOrDie();
              for (size_t i = 0; i < specs.size(); ++i) {
                if (specs[i].arg != nullptr) {
                  lg.accs[i]->AddBatch(acols[i], rows[g].data(),
                                       rows[g].size());
                } else {
                  lg.accs[i]->AddRepeated(Value::Int(1), rows[g].size());
                }
              }
              res.groups.push_back(std::move(lg));
            }
          });

      std::unordered_map<std::string, size_t> merge_ids;
      for (MorselAgg& part : parts) {
        if (!part.status.ok()) return part.status;
        for (LocalGroup& lg : part.groups) {
          auto [it, inserted] = merge_ids.emplace(lg.key_text, groups.size());
          if (inserted) {
            Group grp;
            grp.keys = std::move(lg.keys);
            grp.accs = std::move(lg.accs);
            groups.push_back(std::move(grp));
          } else {
            Group& dst = groups[it->second];
            for (size_t i = 0; i < specs.size(); ++i) {
              dst.accs[i]->Merge(*lg.accs[i]);
            }
          }
        }
      }
      // An aggregate without GROUP BY keys emits one row even over an empty
      // input (count(*) = 0, sum = NULL, ...).
      if (stmt->group_by.empty() && groups.empty()) {
        Group grp;
        auto accs = make_accs();
        if (!accs.ok()) return accs.status();
        grp.accs = std::move(accs).ValueOrDie();
        groups.push_back(std::move(grp));
      }
    }

    // Materialize the aggregate table: group cols then agg cols.
    auto agg_table = std::make_shared<Table>();
    const size_t gk = stmt->group_by.size();
    {
      std::vector<Column> cols(gk + specs.size());
      for (auto& g : groups) {
        for (size_t i = 0; i < gk; ++i) cols[i].Append(g.keys[i]);
        for (size_t i = 0; i < specs.size(); ++i) {
          cols[gk + i].Append(g.accs[i]->Finalize());
        }
      }
      // Empty result columns still need registration.
      for (size_t i = 0; i < gk; ++i) {
        agg_table->AddColumn("__g" + std::to_string(i), std::move(cols[i]));
      }
      for (size_t i = 0; i < specs.size(); ++i) {
        agg_table->AddColumn("__a" + std::to_string(i),
                             std::move(cols[gk + i]));
      }
    }

    // Maps from printed expression text to aggregate-table ordinal.
    std::map<std::string, int> text_to_col;
    for (size_t i = 0; i < gk; ++i) {
      const Expr& g = *stmt->group_by[i];
      text_to_col[sql::PrintExpr(g)] = static_cast<int>(i);
      if (g.kind == ExprKind::kColumnRef) {
        text_to_col[g.name] = static_cast<int>(i);
        if (!g.qualifier.empty()) {
          text_to_col[g.qualifier + "." + g.name] = static_cast<int>(i);
        }
      }
    }
    std::map<std::string, int> agg_to_col;
    for (const auto& [text, idx] : agg_index) {
      agg_to_col[text] = static_cast<int>(gk) + idx;
    }

    // HAVING: batch predicate over the aggregate table. The surviving
    // groups stay a view — the output projection below evaluates through it
    // rather than gathering the aggregate table again.
    auto aggview = RowView::All(agg_table);
    if (!aggview.ok()) return aggview.status();
    RowView aview = std::move(aggview).ValueOrDie();
    if (stmt->having) {
      auto bound = RebindPostAgg(*stmt->having, text_to_col, agg_to_col);
      if (!bound.ok()) return bound.status();
      SelVector hsel;
      VDB_RETURN_IF_ERROR(EvalPredicateView(*bound.value(), aview, rand_seed_,
                                            db_->num_threads(), &hsel));
      if (hsel.size() < aview.num_rows()) {
        auto filtered = RowView::Select(agg_table, std::move(hsel));
        if (!filtered.ok()) return filtered.status();
        aview = std::move(filtered).ValueOrDie();
      }
    }

    // Rebind select items; then materialize window columns over agg_table.
    std::vector<Expr::Ptr> bound_items;
    ResultSet rs;
    for (auto& item : stmt->items) {
      if (item.expr->kind == ExprKind::kStar) {
        return Status::InvalidArgument("'*' not allowed with GROUP BY");
      }
      auto bound = RebindPostAgg(*item.expr, text_to_col, agg_to_col);
      if (!bound.ok()) return bound.status();
      bound_items.push_back(std::move(bound).ValueOrDie());
      rs.names.push_back(!item.alias.empty()
                             ? item.alias
                             : (item.expr->kind == ExprKind::kColumnRef
                                    ? item.expr->name
                                    : sql::PrintExpr(*item.expr)));
    }
    bool has_window = false;
    for (const auto& be : bound_items) {
      if (ContainsWindow(*be)) has_window = true;
    }
    if (has_window) {
      // Window frames over the (HAVING-filtered) groups need contiguous
      // rows: gather the view, extend with window columns, reset identity.
      agg_table = aview.Gather(db_->num_threads());
      std::map<std::string, int> window_cols;
      for (auto& be : bound_items) {
        VDB_RETURN_IF_ERROR(MaterializeWindows(be.get(), &agg_table,
                                               &window_cols));
      }
      auto wv = RowView::All(agg_table);
      if (!wv.ok()) return wv.status();
      aview = std::move(wv).ValueOrDie();
    }

    auto table = std::make_shared<Table>();
    for (size_t i = 0; i < bound_items.size(); ++i) {
      auto col = EvalExprView(*bound_items[i], aview, rand_seed_,
                              db_->num_threads());
      if (!col.ok()) return col.status();
      table->AddColumn(rs.names[i], std::move(col).ValueOrDie());
    }
    rs.table = table;
    return rs;
  }

  /// Collects non-window aggregate calls, assigning bound_agg ordinals and
  /// deduplicating by printed text. Recurses into window arguments so that
  /// e.g. sum(count(*)) over (...) registers the inner count(*).
  void CollectAggs(Expr* e, std::vector<Expr*>* aggs,
                   std::map<std::string, int>* index) {
    if (e->kind == ExprKind::kFunction && !e->is_window &&
        IsAggregateFunction(e->name)) {
      std::string text = sql::PrintExpr(*e);
      auto it = index->find(text);
      if (it == index->end()) {
        e->bound_agg = static_cast<int>(aggs->size());
        (*index)[text] = e->bound_agg;
        aggs->push_back(e);
      } else {
        e->bound_agg = it->second;
      }
      return;  // no nested aggregates
    }
    for (auto& a : e->args) {
      if (a) CollectAggs(a.get(), aggs, index);
    }
    for (auto& w : e->case_whens) CollectAggs(w.get(), aggs, index);
    for (auto& t : e->case_thens) CollectAggs(t.get(), aggs, index);
    if (e->case_else) CollectAggs(e->case_else.get(), aggs, index);
    for (auto& p : e->partition_by) CollectAggs(p.get(), aggs, index);
  }

  /// Rewrites an expression for evaluation against the aggregate table:
  /// group-by expressions and aggregate calls become bound column refs.
  Result<Expr::Ptr> RebindPostAgg(const Expr& e,
                                  const std::map<std::string, int>& group_map,
                                  const std::map<std::string, int>& agg_map) {
    std::string text = sql::PrintExpr(e);
    auto git = group_map.find(text);
    if (git == group_map.end() && e.kind == ExprKind::kColumnRef) {
      git = group_map.find(e.name);
    }
    if (git != group_map.end()) {
      auto ref = sql::MakeColumnRef("", "__g" + std::to_string(git->second));
      ref->bound_column = git->second;
      return ref;
    }
    if (e.kind == ExprKind::kFunction && !e.is_window &&
        IsAggregateFunction(e.name)) {
      auto ait = agg_map.find(text);
      if (ait == agg_map.end()) {
        return Status::Internal("aggregate was not collected: " + text);
      }
      auto ref = sql::MakeColumnRef("", "__a" + std::to_string(ait->second));
      ref->bound_column = ait->second;
      return ref;
    }
    if (e.kind == ExprKind::kColumnRef) {
      return Status::InvalidArgument(
          "column must appear in GROUP BY or inside an aggregate: " + e.name);
    }
    // Recurse.
    auto out = e.Clone();
    for (auto& a : out->args) {
      if (!a || a->kind == ExprKind::kStar) continue;
      auto r = RebindPostAgg(*a, group_map, agg_map);
      if (!r.ok()) return r.status();
      a = std::move(r).ValueOrDie();
    }
    for (auto& w : out->case_whens) {
      auto r = RebindPostAgg(*w, group_map, agg_map);
      if (!r.ok()) return r.status();
      w = std::move(r).ValueOrDie();
    }
    for (auto& t : out->case_thens) {
      auto r = RebindPostAgg(*t, group_map, agg_map);
      if (!r.ok()) return r.status();
      t = std::move(r).ValueOrDie();
    }
    if (out->case_else) {
      auto r = RebindPostAgg(*out->case_else, group_map, agg_map);
      if (!r.ok()) return r.status();
      out->case_else = std::move(r).ValueOrDie();
    }
    for (auto& p : out->partition_by) {
      auto r = RebindPostAgg(*p, group_map, agg_map);
      if (!r.ok()) return r.status();
      p = std::move(r).ValueOrDie();
    }
    return out;
  }

  /// Replaces window-function nodes under `e` with references to freshly
  /// computed columns appended to `*work`. Deduplicates by printed text.
  Status MaterializeWindows(Expr* e, TablePtr* work,
                            std::map<std::string, int>* window_cols) {
    if (e->kind == ExprKind::kFunction && e->is_window) {
      std::string text = sql::PrintExpr(*e);
      auto it = window_cols->find(text);
      int col;
      if (it == window_cols->end()) {
        auto wcol = EvalWindowExpr(*e, **work, rand_seed_);
        if (!wcol.ok()) return wcol.status();
        // Copy-on-write: the work table may be shared (base table).
        auto extended = std::make_shared<Table>();
        for (size_t i = 0; i < (*work)->num_columns(); ++i) {
          extended->AddColumn((*work)->column_name(i), (*work)->column(i));
        }
        col = static_cast<int>(extended->num_columns());
        extended->AddColumn("__w" + std::to_string(window_cols->size()),
                            std::move(wcol).ValueOrDie());
        *work = extended;
        (*window_cols)[text] = col;
      } else {
        col = it->second;
      }
      e->kind = ExprKind::kColumnRef;
      e->qualifier.clear();
      e->name = "__w";
      e->bound_column = col;
      e->args.clear();
      e->partition_by.clear();
      e->is_window = false;
      return Status::Ok();
    }
    for (auto& a : e->args) {
      if (a) VDB_RETURN_IF_ERROR(MaterializeWindows(a.get(), work, window_cols));
    }
    for (auto& w : e->case_whens) {
      VDB_RETURN_IF_ERROR(MaterializeWindows(w.get(), work, window_cols));
    }
    for (auto& t : e->case_thens) {
      VDB_RETURN_IF_ERROR(MaterializeWindows(t.get(), work, window_cols));
    }
    if (e->case_else) {
      VDB_RETURN_IF_ERROR(
          MaterializeWindows(e->case_else.get(), work, window_cols));
    }
    return Status::Ok();
  }

  // ------------------------------------------------------- distinct/order --
  /// Vectorized DISTINCT over the viewed output rows: hashed group ids over
  /// the output columns; the representative positions (first occurrences,
  /// ascending) compose into the view — no full-width gather. Identity views
  /// (the common case: DISTINCT runs right after the projection) address the
  /// columns directly; other views gather the key columns only.
  Status Dedupe(RowView* view) {
    VDB_RETURN_IF_ERROR(CheckGroupableRows(view->num_rows()));
    const Table& table = *view->table();
    std::vector<Column> gathered;
    std::vector<const Column*> cols;
    cols.reserve(table.num_columns());
    if (view->is_identity()) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        cols.push_back(&table.column(c));
      }
    } else {
      gathered.reserve(table.num_columns());
      for (size_t c = 0; c < table.num_columns(); ++c) {
        gathered.push_back(
            view->GatherColumn(table.column(c), db_->num_threads()));
      }
      for (const Column& g : gathered) cols.push_back(&g);
    }
    // Either way the columns are in view order, so rep_row holds view
    // positions and composes directly.
    GroupAssignment ga = AssignGroupIds(cols, view->num_rows());
    if (ga.num_groups() == view->num_rows()) return Status::Ok();
    SelVector keep(ga.rep_row.begin(), ga.rep_row.end());
    auto composed = view->Compose(keep);
    if (!composed.ok()) return composed.status();
    *view = std::move(composed).ValueOrDie();
    return Status::Ok();
  }

  /// Sorts the view positions by the resolved output columns and composes
  /// the permutation into the view; the gather happens once, downstream.
  Status ApplyOrderBy(SelectStmt* stmt, const ResultSet& rs, RowView* view) {
    if (stmt->order_by.empty() || view->num_rows() == 0) return Status::Ok();
    // Resolve each order expression to an output column.
    std::vector<std::pair<int, bool>> keys;  // (column, ascending)
    for (auto& o : stmt->order_by) {
      int col = -1;
      if (o.expr->kind == ExprKind::kLiteral &&
          o.expr->literal.type() == TypeId::kInt64) {
        int64_t ord = o.expr->literal.AsInt();
        if (ord < 1 || ord > static_cast<int64_t>(rs.NumCols())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        col = static_cast<int>(ord - 1);
      } else if (o.expr->kind == ExprKind::kColumnRef) {
        col = rs.ColumnIndex(o.expr->name);
      }
      if (col < 0) {
        // Match by printed text against item expressions.
        std::string text = sql::PrintExpr(*o.expr);
        for (size_t i = 0; i < stmt->items.size(); ++i) {
          if (sql::PrintExpr(*stmt->items[i].expr) == text) {
            col = static_cast<int>(i);
            break;
          }
        }
      }
      if (col < 0) {
        return Status::Unsupported(
            "ORDER BY expression must reference an output column: " +
            sql::PrintExpr(*o.expr));
      }
      keys.emplace_back(col, o.ascending);
    }

    SelVector perm(view->num_rows());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
    const Table& t = *rs.table;
    const RowView& v = *view;
    std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      for (const auto& [col, asc] : keys) {
        Value va = t.Get(v.RowAt(a), static_cast<size_t>(col));
        Value vb = t.Get(v.RowAt(b), static_cast<size_t>(col));
        // NULLs sort first ascending, last descending.
        if (va.is_null() != vb.is_null()) {
          return asc ? va.is_null() : vb.is_null();
        }
        int c = va.Compare(vb);
        if (c != 0) return asc ? c < 0 : c > 0;
      }
      return false;
    });

    auto composed = view->Compose(perm);
    if (!composed.ok()) return composed.status();
    *view = std::move(composed).ValueOrDie();
    return Status::Ok();
  }

  Database* db_;
  /// Per-statement query seed: every rand-family draw this statement (and
  /// its derived tables / subqueries) performs is addressed by it.
  uint64_t rand_seed_ = 0;
  /// The current statement's WHERE while eligible for pair-view pushdown;
  /// consumed (nulled) by the FROM-root ExecuteJoin, which sets the applied
  /// flag after filtering candidate pairs so RunSingle skips the normal
  /// post-materialization WHERE.
  const Expr* pushdown_where_ = nullptr;
  bool pushdown_where_applied_ = false;
};

}  // namespace

void SetJoinWherePushdownForTest(bool enabled) {
  g_join_where_pushdown = enabled;
}

Result<ResultSet> RunSelect(Database* db, sql::SelectStmt* stmt) {
  // Number the statement's rand call sites, then draw its query seed — the
  // two inputs (with the row id) of every row-addressed rand draw below.
  AssignRandSites(stmt);
  SelectExecutor exec(db, db->NewQuerySeed());
  return exec.Run(stmt);
}

}  // namespace vdb::engine
