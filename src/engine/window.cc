#include "engine/window.h"

#include <memory>
#include <vector>

#include "engine/agg_table.h"
#include "engine/aggregates.h"
#include "engine/expr_eval.h"
#include "engine/vector_eval.h"

namespace vdb::engine {

Result<Column> EvalWindowExpr(const sql::Expr& e, const Table& table,
                              uint64_t rand_seed) {
  if (e.kind != sql::ExprKind::kFunction || !e.is_window) {
    return Status::Internal("EvalWindowExpr on a non-window expression");
  }
  AggSpec spec;
  spec.name = e.name;
  spec.distinct = e.distinct;
  bool star = !e.args.empty() && e.args[0]->kind == sql::ExprKind::kStar;
  spec.arg = (e.args.empty() || star) ? nullptr : e.args[0].get();

  const size_t n = table.num_rows();
  // Partition ids: evaluate each PARTITION BY expression column-at-a-time
  // and assign dense ids through the flat group table — hashed typed lanes
  // instead of the per-row string-key concatenation this loop used to build.
  // AssignGroupIds' partition matches ValueGroupKey's equivalence (NULL with
  // NULL, NaN with NaN, -0.0 with 0.0, 5 with 5.0) and numbers partitions in
  // first-occurrence order, exactly like the string map did.
  std::vector<Column> pcols;
  pcols.reserve(e.partition_by.size());
  Batch batch{&table, nullptr, rand_seed, 0, Batch::kWholeTable, 0};
  for (const auto& p : e.partition_by) {
    auto c = EvalExprBatch(*p, batch);
    if (!c.ok()) return c.status();
    pcols.push_back(std::move(c).ValueOrDie());
  }
  std::vector<const Column*> pptrs;
  pptrs.reserve(pcols.size());
  for (const auto& pc : pcols) pptrs.push_back(&pc);
  VDB_RETURN_IF_ERROR(CheckGroupableRows(n));
  const GroupAssignment ga = AssignGroupIds(pptrs, n);

  std::vector<std::unique_ptr<AggAccumulator>> accs;
  accs.reserve(ga.num_groups());
  for (size_t g = 0; g < ga.num_groups(); ++g) {
    auto acc = CreateAccumulator(spec);
    if (!acc.ok()) return acc.status();
    accs.push_back(std::move(acc).ValueOrDie());
  }

  // Accumulate in row order (the reference order the per-row path used).
  for (size_t r = 0; r < n; ++r) {
    Value arg = Value::Int(1);
    if (spec.arg != nullptr) {
      RowCtx ctx{&table, r, rand_seed};
      auto v = EvalExpr(*spec.arg, ctx);
      if (!v.ok()) return v.status();
      arg = std::move(v).ValueOrDie();
    }
    accs[ga.gid_of_row[r]]->Add(arg);
  }

  std::vector<Value> results(accs.size());
  for (size_t i = 0; i < accs.size(); ++i) results[i] = accs[i]->Finalize();

  Column out;
  out.Reserve(n);
  for (size_t r = 0; r < n; ++r) out.Append(results[ga.gid_of_row[r]]);
  return out;
}

}  // namespace vdb::engine
