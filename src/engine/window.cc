#include "engine/window.h"

#include <unordered_map>
#include <vector>

#include "engine/aggregates.h"
#include "engine/expr_eval.h"

namespace vdb::engine {

Result<Column> EvalWindowExpr(const sql::Expr& e, const Table& table,
                              uint64_t rand_seed) {
  if (e.kind != sql::ExprKind::kFunction || !e.is_window) {
    return Status::Internal("EvalWindowExpr on a non-window expression");
  }
  AggSpec spec;
  spec.name = e.name;
  spec.distinct = e.distinct;
  bool star = !e.args.empty() && e.args[0]->kind == sql::ExprKind::kStar;
  spec.arg = (e.args.empty() || star) ? nullptr : e.args[0].get();

  const size_t n = table.num_rows();
  // Partition id per row.
  std::vector<uint32_t> part_of(n, 0);
  std::unordered_map<std::string, uint32_t> part_ids;
  std::vector<std::unique_ptr<AggAccumulator>> accs;

  for (size_t r = 0; r < n; ++r) {
    RowCtx ctx{&table, r, rand_seed};
    std::string key;
    for (const auto& p : e.partition_by) {
      auto v = EvalExpr(*p, ctx);
      if (!v.ok()) return v.status();
      key += ValueGroupKey(v.value());
      key.push_back('\x1f');
    }
    auto [it, inserted] = part_ids.emplace(key, static_cast<uint32_t>(accs.size()));
    if (inserted) {
      auto acc = CreateAccumulator(spec);
      if (!acc.ok()) return acc.status();
      accs.push_back(std::move(acc).ValueOrDie());
    }
    part_of[r] = it->second;

    Value arg = Value::Int(1);
    if (spec.arg != nullptr) {
      auto v = EvalExpr(*spec.arg, ctx);
      if (!v.ok()) return v.status();
      arg = std::move(v).ValueOrDie();
    }
    accs[it->second]->Add(arg);
  }

  std::vector<Value> results(accs.size());
  for (size_t i = 0; i < accs.size(); ++i) results[i] = accs[i]->Finalize();

  Column out;
  out.Reserve(n);
  for (size_t r = 0; r < n; ++r) out.Append(results[part_of[r]]);
  return out;
}

}  // namespace vdb::engine
