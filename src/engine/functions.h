// Scalar function evaluation and aggregate-function identification.
//
// The set mirrors what the paper requires of the underlying database (§2.1):
// rand(), a uniform hash function, floor(), case expressions, and the usual
// math/string builtins.

#ifndef VDB_ENGINE_FUNCTIONS_H_
#define VDB_ENGINE_FUNCTIONS_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/value.h"

namespace vdb::engine {

/// True if `name` (lowercase) is an aggregate function understood by the
/// engine (count, sum, avg, min, max, var/variance, stddev, quantile, median,
/// approx_median, ndv, approx_distinct, or a registered UDA).
bool IsAggregateFunction(const std::string& name);

/// Evaluates a scalar builtin. `rand` addresses rand-family draws — each is
/// a pure function of (query seed, row id, call site), never a stream draw
/// (common/random.h). Unknown names produce kUnsupported.
Result<Value> CallScalarFunction(const std::string& name,
                                 const std::vector<Value>& args,
                                 const RandAddr& rand_addr);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_FUNCTIONS_H_
