#include "engine/expr_eval.h"

#include <cmath>

#include "engine/functions.h"

namespace vdb::engine {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

namespace {

// Three-valued logic encoding: -1 unknown, 0 false, 1 true.
int Tri(const Value& v) { return v.is_null() ? -1 : (v.AsBool() ? 1 : 0); }
Value FromTri(int t) {
  if (t < 0) return Value::Null();
  return Value::Bool(t == 1);
}

Result<Value> EvalBinary(const Expr& e, const RowCtx& ctx) {
  // AND / OR need lazy / three-valued handling.
  if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
    auto lv = EvalExpr(*e.args[0], ctx);
    if (!lv.ok()) return lv.status();
    int l = Tri(lv.value());
    if (e.binary_op == BinaryOp::kAnd && l == 0) return Value::Bool(false);
    if (e.binary_op == BinaryOp::kOr && l == 1) return Value::Bool(true);
    auto rv = EvalExpr(*e.args[1], ctx);
    if (!rv.ok()) return rv.status();
    int r = Tri(rv.value());
    if (e.binary_op == BinaryOp::kAnd) {
      if (l == 0 || r == 0) return Value::Bool(false);
      if (l == 1 && r == 1) return Value::Bool(true);
      return Value::Null();
    }
    if (l == 1 || r == 1) return Value::Bool(true);
    if (l == 0 && r == 0) return Value::Bool(false);
    return Value::Null();
  }

  auto lv = EvalExpr(*e.args[0], ctx);
  if (!lv.ok()) return lv.status();
  auto rv = EvalExpr(*e.args[1], ctx);
  if (!rv.ok()) return rv.status();
  return ApplyBinaryOp(e.binary_op, lv.value(), rv.value());
}

}  // namespace

Result<Value> ApplyBinaryOp(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();

  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      bool ints = l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64;
      if (ints) {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (op) {
          case BinaryOp::kAdd: return Value::Int(a + b);
          case BinaryOp::kSub: return Value::Int(a - b);
          default: return Value::Int(a * b);
        }
      }
      double a = l.AsDouble(), b = r.AsDouble();
      switch (op) {
        case BinaryOp::kAdd: return Value::Double(a + b);
        case BinaryOp::kSub: return Value::Double(a - b);
        default: return Value::Double(a * b);
      }
    }
    case BinaryOp::kDiv: {
      double b = r.AsDouble();
      if (b == 0.0) return Value::Null();
      return Value::Double(l.AsDouble() / b);
    }
    case BinaryOp::kMod: {
      int64_t b = r.AsInt();
      if (b == 0) return Value::Null();
      return Value::Int(l.AsInt() % b);
    }
    case BinaryOp::kEq: return Value::Bool(l.Compare(r) == 0);
    case BinaryOp::kNe: return Value::Bool(l.Compare(r) != 0);
    case BinaryOp::kLt: return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe: return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt: return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe: return Value::Bool(l.Compare(r) >= 0);
    case BinaryOp::kLike:
      return Value::Bool(LikeMatch(l.ToString(), r.ToString()));
    default:
      return Status::Internal("unhandled binary op");
  }
}

Value NegateValue(const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.type() == TypeId::kInt64) {
    // Unsigned negation: defined two's-complement wrap (-INT64_MIN ==
    // INT64_MIN), matching the engine's uint64-wrap arithmetic kernels.
    return Value::Int(static_cast<int64_t>(0ull - static_cast<uint64_t>(v.AsInt())));
  }
  return Value::Double(-v.AsDouble());
}

Result<Value> EvalExpr(const Expr& e, const RowCtx& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      if (e.bound_column < 0) {
        return Status::Internal("unbound column reference: " + e.name);
      }
      return ctx.table->Get(ctx.row, static_cast<size_t>(e.bound_column));
    case ExprKind::kStar:
      return Status::Internal("'*' outside count(*) / select list");
    case ExprKind::kUnary: {
      auto v = EvalExpr(*e.args[0], ctx);
      if (!v.ok()) return v.status();
      if (e.unary_op == UnaryOp::kNot) {
        int t = Tri(v.value());
        return FromTri(t < 0 ? -1 : 1 - t);
      }
      return NegateValue(v.value());
    }
    case ExprKind::kBinary:
      return EvalBinary(e, ctx);
    case ExprKind::kFunction: {
      if (e.is_window || IsAggregateFunction(e.name)) {
        return Status::Internal("aggregate/window '" + e.name +
                                "' in row context");
      }
      std::vector<Value> argv;
      argv.reserve(e.args.size());
      for (const auto& a : e.args) {
        auto v = EvalExpr(*a, ctx);
        if (!v.ok()) return v.status();
        argv.push_back(std::move(v).ValueOrDie());
      }
      return CallScalarFunction(
          e.name, argv,
          RandAddr{ctx.rand_seed, ctx.row + ctx.row_id_offset,
                   static_cast<uint64_t>(e.rand_site)});
    }
    case ExprKind::kCase: {
      for (size_t i = 0; i < e.case_whens.size(); ++i) {
        auto c = EvalExpr(*e.case_whens[i], ctx);
        if (!c.ok()) return c.status();
        if (!c.value().is_null() && c.value().AsBool()) {
          return EvalExpr(*e.case_thens[i], ctx);
        }
      }
      if (e.case_else) return EvalExpr(*e.case_else, ctx);
      return Value::Null();
    }
    case ExprKind::kIsNull: {
      auto v = EvalExpr(*e.args[0], ctx);
      if (!v.ok()) return v.status();
      bool isnull = v.value().is_null();
      return Value::Bool(e.negated ? !isnull : isnull);
    }
    case ExprKind::kInList: {
      auto v = EvalExpr(*e.args[0], ctx);
      if (!v.ok()) return v.status();
      if (v.value().is_null()) return Value::Null();
      bool any_null = false;
      for (size_t i = 1; i < e.args.size(); ++i) {
        auto item = EvalExpr(*e.args[i], ctx);
        if (!item.ok()) return item.status();
        if (item.value().is_null()) {
          any_null = true;
          continue;
        }
        if (v.value().Equals(item.value())) {
          return Value::Bool(!e.negated);
        }
      }
      if (any_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case ExprKind::kBetween: {
      auto v = EvalExpr(*e.args[0], ctx);
      if (!v.ok()) return v.status();
      auto lo = EvalExpr(*e.args[1], ctx);
      if (!lo.ok()) return lo.status();
      auto hi = EvalExpr(*e.args[2], ctx);
      if (!hi.ok()) return hi.status();
      if (v.value().is_null() || lo.value().is_null() || hi.value().is_null()) {
        return Value::Null();
      }
      bool in = v.value().Compare(lo.value()) >= 0 &&
                v.value().Compare(hi.value()) <= 0;
      return Value::Bool(e.negated ? !in : in);
    }
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      return Status::Internal("unresolved subquery reached the evaluator");
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& e, const RowCtx& ctx) {
  auto v = EvalExpr(e, ctx);
  if (!v.ok()) return v.status();
  return !v.value().is_null() && v.value().AsBool();
}

}  // namespace vdb::engine
