// Row-at-a-time expression interpreter over bound expressions.

#ifndef VDB_ENGINE_EXPR_EVAL_H_
#define VDB_ENGINE_EXPR_EVAL_H_

#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// Evaluation context: the current input row plus the row-addressed rand
/// state. `rand_seed` is the per-statement query seed; `row_id_offset` maps
/// local rows of a scratch table onto global row ids (join pair-chunk
/// evaluation) and is 0 everywhere else. rand-family draws are
/// CounterRandom(rand_seed, row + row_id_offset, node.rand_site).
struct RowCtx {
  const Table* table = nullptr;
  size_t row = 0;
  uint64_t rand_seed = 0;
  uint64_t row_id_offset = 0;
};

/// Evaluates a bound expression for one row. Aggregates and windows must
/// have been rewritten into column references by the planner; encountering
/// one is an error. NULL semantics follow SQL (three-valued logic for
/// AND/OR/NOT, null-propagation elsewhere).
Result<Value> EvalExpr(const sql::Expr& e, const RowCtx& ctx);

/// Evaluates a predicate: true only if the value is non-null and true.
Result<bool> EvalPredicate(const sql::Expr& e, const RowCtx& ctx);

/// Combines two already-evaluated operands of a non-logical binary operator
/// (arithmetic, comparison, LIKE) with NULL propagation. Shared between the
/// row interpreter and the batch evaluator's mixed-type lanes so the two
/// cannot drift.
Result<Value> ApplyBinaryOp(sql::BinaryOp op, const Value& l, const Value& r);

/// Unary minus with NULL propagation (Int64 stays integral).
Value NegateValue(const Value& v);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_EXPR_EVAL_H_
