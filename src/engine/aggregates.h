// Aggregate function accumulators and the UDA (user-defined aggregate)
// registry. VerdictDB supports any UDA that converges to a non-degenerate
// distribution (paper §2.2); UDAs registered here are usable both in plain
// engine queries and in VerdictDB-rewritten queries.

#ifndef VDB_ENGINE_AGGREGATES_H_
#define VDB_ENGINE_AGGREGATES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "engine/column.h"
#include "sql/ast.h"

namespace vdb::engine {

/// One aggregate call extracted from a query.
struct AggSpec {
  std::string name;                 // lowercase function name
  bool distinct = false;            // count(distinct x)
  const sql::Expr* arg = nullptr;   // null for count(*)
  double param = 0.5;               // quantile fraction (2nd argument)
};

/// Streaming accumulator for one aggregate within one group.
class AggAccumulator {
 public:
  virtual ~AggAccumulator() = default;
  /// Adds one input value. count(*) receives Value::Int(1) per row.
  virtual void Add(const Value& v) = 0;
  /// Adds rows `rows[0..n)` of a materialized argument column (the
  /// vectorized executor's selection-vector interface). The default loops
  /// over Add; builtin numeric accumulators override with typed kernels.
  virtual void AddBatch(const Column& col, const uint32_t* rows, size_t n);
  /// Adds the same value n times (count(*) over a group of n rows).
  virtual void AddRepeated(const Value& v, size_t n);
  /// True if this accumulator supports Merge. The morsel-driven parallel
  /// aggregation path requires every accumulator of a query to be mergeable;
  /// otherwise the planner keeps the serial path. UDAs default to false.
  virtual bool Mergeable() const { return false; }
  /// Folds a partial state into this one. `other` must be the same concrete
  /// accumulator type, and both Mergeable(). The planner aggregates every
  /// mergeable query through per-morsel partials merged strictly in morsel
  /// order — the same decomposition at every thread count — so results are
  /// bit-identical between serial and N-thread runs. Floating-point partials
  /// (sum/avg) carry Neumaier compensation so the morsel split costs no
  /// accuracy either.
  virtual void Merge(const AggAccumulator& other);
  virtual Value Finalize() const = 0;
};

/// SoA (structure-of-arrays) aggregate state: typed lane arrays indexed by
/// group id instead of one heap accumulator object per group, fed
/// column-at-a-time by the flat aggregation sink. Each implementation
/// mirrors its AggAccumulator counterpart's arithmetic exactly — same
/// per-value recurrence, same per-call batch semantics, same merge algebra —
/// so flat and per-group results are bit-identical (the object path stays
/// the semantic reference, pinned by the FlatAggTest differential fuzz).
class FlatAggregator {
 public:
  virtual ~FlatAggregator() = default;
  /// Grows state to `n` groups (never shrinks). New groups start empty.
  virtual void ResizeGroups(size_t n) = 0;
  /// Accumulates col[base + k] into group gids[k] for k in [0, n), in k
  /// order. `col` is nullptr for count(*). `base` is the row offset of batch
  /// position 0 — nonzero when the flat sink feeds a table column directly
  /// at the morsel's start row instead of slicing it (the zero-copy
  /// direct-column path). One call is one batch: aggregates with per-batch
  /// semantics (min/max's batch-local extremum fold) treat the whole call as
  /// the reference's AddBatch.
  virtual void AddScatter(const Column* col, size_t base, const uint32_t* gids,
                          size_t n) = 0;
  /// Bitmap-selected form: accumulates col[base + rows[k]] into gids[k].
  /// `rows` ascends, so selective GROUP BYs skip mask expansion without
  /// changing accumulation order.
  virtual void AddScatterSelected(const Column* col, size_t base,
                                  const uint32_t* rows, const uint32_t* gids,
                                  size_t n) = 0;
  /// Folds group `src` of `other` into group `dst` of this — the SoA mirror
  /// of AggAccumulator::Merge. `other` is the same concrete type. Merging
  /// morsel partials strictly in morsel order keeps results bit-identical
  /// across thread counts, exactly like the object path.
  virtual void MergeGroup(const FlatAggregator& other, uint32_t dst,
                          uint32_t src) = 0;
  /// Copies group `src` of `other` over group `dst` verbatim — the mirror of
  /// the reference merge loop MOVING a first-occurrence partial into the
  /// global slot. Merging into an empty group instead would re-round
  /// compensated sums (NeumaierAdd(0, 0, sum) then comp collapses the error
  /// term), so first occurrences must copy, not merge.
  virtual void CopyGroup(const FlatAggregator& other, uint32_t dst,
                         uint32_t src) = 0;
  virtual Value FinalizeGroup(uint32_t gid) const = 0;
};

/// Creates the SoA accumulator for `spec`, or null when the aggregate is not
/// scatterable — DISTINCT, quantile/median, ndv/HLL, and UDAs keep the
/// per-group object path (the planner falls back per query).
std::unique_ptr<FlatAggregator> CreateFlatAggregator(const AggSpec& spec);

using UdaFactory = std::function<std::unique_ptr<AggAccumulator>()>;

/// Process-wide registry of user-defined aggregates.
class AggregateRegistry {
 public:
  static AggregateRegistry& Global();

  void Register(const std::string& name, UdaFactory factory);
  bool Has(const std::string& name) const;
  std::unique_ptr<AggAccumulator> Create(const std::string& name) const;

 private:
  // The registry is process-global and reachable from pool workers at plan
  // time while tests may still be registering UDAs; every map touch holds
  // mu_ so the global is synchronized shared state, not an unguarded static.
  mutable Mutex mu_;
  std::map<std::string, UdaFactory> factories_ GUARDED_BY(mu_);  // vdb-lint: allow(string-keyed-map) UDA registry: looked up once per aggregate at plan time
};

/// Creates the accumulator for a builtin or registered aggregate.
Result<std::unique_ptr<AggAccumulator>> CreateAccumulator(const AggSpec& spec);

/// Serializes a value into a byte key usable for grouping / distinct sets;
/// numerically equal ints and doubles produce the same key.
std::string ValueGroupKey(const Value& v);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_AGGREGATES_H_
