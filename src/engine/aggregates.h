// Aggregate function accumulators and the UDA (user-defined aggregate)
// registry. VerdictDB supports any UDA that converges to a non-degenerate
// distribution (paper §2.2); UDAs registered here are usable both in plain
// engine queries and in VerdictDB-rewritten queries.

#ifndef VDB_ENGINE_AGGREGATES_H_
#define VDB_ENGINE_AGGREGATES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/value.h"
#include "engine/column.h"
#include "sql/ast.h"

namespace vdb::engine {

/// One aggregate call extracted from a query.
struct AggSpec {
  std::string name;                 // lowercase function name
  bool distinct = false;            // count(distinct x)
  const sql::Expr* arg = nullptr;   // null for count(*)
  double param = 0.5;               // quantile fraction (2nd argument)
};

/// Streaming accumulator for one aggregate within one group.
class AggAccumulator {
 public:
  virtual ~AggAccumulator() = default;
  /// Adds one input value. count(*) receives Value::Int(1) per row.
  virtual void Add(const Value& v) = 0;
  /// Adds rows `rows[0..n)` of a materialized argument column (the
  /// vectorized executor's selection-vector interface). The default loops
  /// over Add; builtin numeric accumulators override with typed kernels.
  virtual void AddBatch(const Column& col, const uint32_t* rows, size_t n);
  /// Adds the same value n times (count(*) over a group of n rows).
  virtual void AddRepeated(const Value& v, size_t n);
  /// True if this accumulator supports Merge. The morsel-driven parallel
  /// aggregation path requires every accumulator of a query to be mergeable;
  /// otherwise the planner keeps the serial path. UDAs default to false.
  virtual bool Mergeable() const { return false; }
  /// Folds a partial state into this one. `other` must be the same concrete
  /// accumulator type, and both Mergeable(). The planner aggregates every
  /// mergeable query through per-morsel partials merged strictly in morsel
  /// order — the same decomposition at every thread count — so results are
  /// bit-identical between serial and N-thread runs. Floating-point partials
  /// (sum/avg) carry Neumaier compensation so the morsel split costs no
  /// accuracy either.
  virtual void Merge(const AggAccumulator& other);
  virtual Value Finalize() const = 0;
};

using UdaFactory = std::function<std::unique_ptr<AggAccumulator>()>;

/// Process-wide registry of user-defined aggregates.
class AggregateRegistry {
 public:
  static AggregateRegistry& Global();

  void Register(const std::string& name, UdaFactory factory);
  bool Has(const std::string& name) const;
  std::unique_ptr<AggAccumulator> Create(const std::string& name) const;

 private:
  std::map<std::string, UdaFactory> factories_;
};

/// Creates the accumulator for a builtin or registered aggregate.
Result<std::unique_ptr<AggAccumulator>> CreateAccumulator(const AggSpec& spec);

/// Serializes a value into a byte key usable for grouping / distinct sets;
/// numerically equal ints and doubles produce the same key.
std::string ValueGroupKey(const Value& v);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_AGGREGATES_H_
