#include "engine/operators.h"

#include <unordered_map>

#include "common/thread_pool.h"
#include "engine/aggregates.h"
#include "engine/vector_eval.h"

namespace vdb::engine {

namespace {

/// Sentinel in a right-side gather list: emit NULLs (left join extension).
constexpr uint32_t kNullRow = 0xFFFFFFFFu;

std::string JoinKeyOf(size_t row, const std::vector<const Column*>& keys,
                      bool* has_null) {
  std::string key;
  *has_null = false;
  for (const Column* k : keys) {
    Value v = k->Get(row);
    if (v.is_null()) *has_null = true;
    key += ValueGroupKey(v);
    key.push_back('\x1f');
  }
  return key;
}

/// Materializes the combined (left ++ right) schema for the pairs named by
/// two parallel gather lists. Right-side entries equal to kNullRow emit
/// NULLs (left-join null extension); with no sentinels each right column is
/// a single bulk gather. Also the batch input for residual predicates.
TablePtr GatherCombined(const Table& left, const SelVector& lrows,
                        const Table& right, const SelVector& rrows,
                        int num_threads) {
  const size_t lcols = left.num_columns();
  const size_t rcols = right.num_columns();
  std::vector<Column> cols(lcols + rcols);
  auto build_one = [&](size_t c) {
    if (c < lcols) {
      Column col(left.column(c).type());
      col.AppendSelected(left.column(c), lrows.data(), lrows.size());
      cols[c] = std::move(col);
      return;
    }
    const Column& src = right.column(c - lcols);
    Column col(src.type());
    // Bulk-gather maximal sentinel-free segments; per-element work only for
    // the null extensions themselves.
    size_t i = 0;
    const size_t n = rrows.size();
    while (i < n) {
      if (rrows[i] == kNullRow) {
        col.AppendNull();
        ++i;
        continue;
      }
      size_t j = i;
      while (j < n && rrows[j] != kNullRow) ++j;
      col.AppendSelected(src, rrows.data() + i, j - i);
      i = j;
    }
    cols[c] = std::move(col);
  };
  // Column-parallel materialization: every column writes only its own slot.
  if (num_threads > 1 && lcols + rcols > 1 && lrows.size() >= 4096) {
    ThreadPool::Global().ParallelFor(
        lcols + rcols, 1, num_threads,
        [&](size_t, size_t begin, size_t) { build_one(begin); });
  } else {
    for (size_t c = 0; c < lcols + rcols; ++c) build_one(c);
  }
  auto out = std::make_shared<Table>();
  for (size_t c = 0; c < lcols; ++c) {
    out->AddColumn(left.column_name(c), std::move(cols[c]));
  }
  for (size_t c = 0; c < rcols; ++c) {
    out->AddColumn(right.column_name(c), std::move(cols[lcols + c]));
  }
  return out;
}

/// The selection-vector machinery (uint32_t indices, kNullRow sentinel)
/// addresses strictly fewer than 2^32 - 1 rows per input.
Status CheckJoinInputSizes(const Table& left, const Table& right) {
  constexpr size_t kMaxRows = 0xFFFFFFFEu;
  if (left.num_rows() > kMaxRows || right.num_rows() > kMaxRows) {
    return Status::Unsupported("join inputs above 2^32 - 2 rows");
  }
  return Status::Ok();
}

/// Evaluates a bound residual predicate over candidate pairs, returning a
/// pass/fail flag per candidate.
Result<std::vector<uint8_t>> ResidualMask(const Table& left,
                                          const SelVector& lrows,
                                          const Table& right,
                                          const SelVector& rrows,
                                          const sql::Expr& residual,
                                          Rng* rng, int num_threads) {
  TablePtr scratch = GatherCombined(left, lrows, right, rrows, num_threads);
  SelVector surviving;
  Batch batch{scratch.get(), nullptr, rng};
  VDB_RETURN_IF_ERROR(EvalPredicateBatch(residual, batch, &surviving));
  std::vector<uint8_t> pass(lrows.size(), 0);
  for (uint32_t s : surviving) pass[s] = 1;
  return pass;
}

}  // namespace

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<const Column*>& left_keys,
                          const std::vector<const Column*>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          Rng* rng, int num_threads) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::Internal("hash join requires matching key lists");
  }
  VDB_RETURN_IF_ERROR(CheckJoinInputSizes(left, right));
  // Build on the right input.
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    bool has_null = false;
    std::string key = JoinKeyOf(r, right_keys, &has_null);
    if (has_null) continue;  // NULL keys never match.
    build[key].push_back(static_cast<uint32_t>(r));
  }

  const bool left_join = join_type == sql::JoinType::kLeft;
  SelVector out_l, out_r;
  auto emit_null_ext = [&](uint32_t lr) {
    out_l.push_back(lr);
    out_r.push_back(kNullRow);
  };

  if (residual == nullptr) {
    // Probe and emit in left-row-major order. The build table is read-only
    // from here on, so the probe splits into left-row morsels: each morsel
    // emits into its own pair lists, and concatenating the lists in morsel
    // order reproduces the serial left-row-major output exactly.
    auto probe_range = [&](size_t range_begin, size_t range_end,
                           SelVector* ol, SelVector* orr) {
      for (size_t lr = range_begin; lr < range_end; ++lr) {
        bool has_null = false;
        std::string key = JoinKeyOf(lr, left_keys, &has_null);
        bool matched = false;
        if (!has_null) {
          auto it = build.find(key);
          if (it != build.end()) {
            for (uint32_t rr : it->second) {
              ol->push_back(static_cast<uint32_t>(lr));
              orr->push_back(rr);
            }
            matched = !it->second.empty();
          }
        }
        if (!matched && left_join) {
          ol->push_back(static_cast<uint32_t>(lr));
          orr->push_back(kNullRow);
        }
      }
    };
    if (num_threads > 1 && left.num_rows() > MorselRows()) {
      struct ProbeSlot {
        SelVector l, r;
      };
      auto slots = ParallelMorselMap<ProbeSlot>(
          left.num_rows(), num_threads,
          [&](ProbeSlot& slot, size_t range_begin, size_t range_end) {
            probe_range(range_begin, range_end, &slot.l, &slot.r);
          });
      size_t total = 0;
      for (const ProbeSlot& slot : slots) total += slot.l.size();
      out_l.reserve(total);
      out_r.reserve(total);
      for (const ProbeSlot& slot : slots) {
        out_l.insert(out_l.end(), slot.l.begin(), slot.l.end());
        out_r.insert(out_r.end(), slot.r.begin(), slot.r.end());
      }
    } else {
      probe_range(0, left.num_rows(), &out_l, &out_r);
    }
  } else {
    // Streaming probe: the residual runs batch-at-a-time over bounded chunks
    // of candidate pairs, so a hot key with a selective residual never
    // materializes the full candidate cross product. Chunk entries with
    // rr == kNullRow mark left rows with no candidates at all (left join).
    // `open_lr` tracks a left row whose candidates may span chunk
    // boundaries; it null-extends once all its candidates have failed.
    constexpr size_t kChunk = 1 << 16;
    SelVector chunk_l, chunk_r;
    chunk_l.reserve(kChunk);
    chunk_r.reserve(kChunk);
    int64_t open_lr = -1;
    bool open_matched = false;
    auto flush = [&]() -> Status {
      if (chunk_l.empty()) return Status::Ok();
      SelVector real_l, real_r;
      real_l.reserve(chunk_l.size());
      real_r.reserve(chunk_l.size());
      for (size_t i = 0; i < chunk_l.size(); ++i) {
        if (chunk_r[i] != kNullRow) {
          real_l.push_back(chunk_l[i]);
          real_r.push_back(chunk_r[i]);
        }
      }
      std::vector<uint8_t> pass;
      if (!real_l.empty()) {
        auto mask = ResidualMask(left, real_l, right, real_r, *residual, rng,
                                 num_threads);
        if (!mask.ok()) return mask.status();
        pass = std::move(mask).ValueOrDie();
      }
      size_t ri = 0;
      for (size_t i = 0; i < chunk_l.size(); ++i) {
        const uint32_t lr = chunk_l[i];
        if (open_lr >= 0 && lr != static_cast<uint32_t>(open_lr)) {
          if (!open_matched && left_join) {
            emit_null_ext(static_cast<uint32_t>(open_lr));
          }
          open_lr = -1;
        }
        if (chunk_r[i] == kNullRow) {
          if (left_join) emit_null_ext(lr);
        } else {
          if (open_lr < 0) {
            open_lr = lr;
            open_matched = false;
          }
          if (pass[ri] != 0) {
            out_l.push_back(lr);
            out_r.push_back(chunk_r[i]);
            open_matched = true;
          }
          ++ri;
        }
      }
      chunk_l.clear();
      chunk_r.clear();
      return Status::Ok();
    };

    for (size_t lr = 0; lr < left.num_rows(); ++lr) {
      bool has_null = false;
      std::string key = JoinKeyOf(lr, left_keys, &has_null);
      const std::vector<uint32_t>* bucket = nullptr;
      if (!has_null) {
        auto it = build.find(key);
        if (it != build.end() && !it->second.empty()) bucket = &it->second;
      }
      if (bucket == nullptr) {
        if (left_join) {
          chunk_l.push_back(static_cast<uint32_t>(lr));
          chunk_r.push_back(kNullRow);
          if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
        }
        continue;
      }
      for (uint32_t rr : *bucket) {
        chunk_l.push_back(static_cast<uint32_t>(lr));
        chunk_r.push_back(rr);
        if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
      }
    }
    VDB_RETURN_IF_ERROR(flush());
    if (open_lr >= 0 && !open_matched && left_join) {
      emit_null_ext(static_cast<uint32_t>(open_lr));
    }
  }

  return GatherCombined(left, out_l, right, out_r, num_threads);
}

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<int>& left_keys,
                          const std::vector<int>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          Rng* rng, int num_threads) {
  std::vector<const Column*> lcols, rcols;
  lcols.reserve(left_keys.size());
  rcols.reserve(right_keys.size());
  for (int k : left_keys) lcols.push_back(&left.column(static_cast<size_t>(k)));
  for (int k : right_keys) {
    rcols.push_back(&right.column(static_cast<size_t>(k)));
  }
  return HashJoin(left, right, lcols, rcols, join_type, residual, rng,
                  num_threads);
}

Result<TablePtr> CrossJoin(const Table& left, const Table& right,
                           const sql::Expr* residual, Rng* rng,
                           size_t max_pairs, int num_threads) {
  VDB_RETURN_IF_ERROR(CheckJoinInputSizes(left, right));
  const size_t pairs = left.num_rows() * right.num_rows();
  if (pairs > max_pairs) {
    return Status::Unsupported(
        "cross join would produce too many candidate pairs: " +
        std::to_string(pairs));
  }

  SelVector out_l, out_r;
  if (residual == nullptr) {
    out_l.reserve(pairs);
    out_r.reserve(pairs);
    for (size_t lr = 0; lr < left.num_rows(); ++lr) {
      for (size_t rr = 0; rr < right.num_rows(); ++rr) {
        out_l.push_back(static_cast<uint32_t>(lr));
        out_r.push_back(static_cast<uint32_t>(rr));
      }
    }
    return GatherCombined(left, out_l, right, out_r, num_threads);
  }

  // With a residual: evaluate the predicate batch-at-a-time over bounded
  // chunks of the pair space, keeping peak memory proportional to the chunk
  // plus the surviving pairs.
  constexpr size_t kChunk = 1 << 16;
  SelVector chunk_l, chunk_r;
  chunk_l.reserve(kChunk);
  chunk_r.reserve(kChunk);
  auto flush = [&]() -> Status {
    if (chunk_l.empty()) return Status::Ok();
    auto mask = ResidualMask(left, chunk_l, right, chunk_r, *residual, rng,
                             num_threads);
    if (!mask.ok()) return mask.status();
    const std::vector<uint8_t>& pass = mask.value();
    for (size_t i = 0; i < chunk_l.size(); ++i) {
      if (pass[i] != 0) {
        out_l.push_back(chunk_l[i]);
        out_r.push_back(chunk_r[i]);
      }
    }
    chunk_l.clear();
    chunk_r.clear();
    return Status::Ok();
  };
  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    for (size_t rr = 0; rr < right.num_rows(); ++rr) {
      chunk_l.push_back(static_cast<uint32_t>(lr));
      chunk_r.push_back(static_cast<uint32_t>(rr));
      if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
    }
  }
  VDB_RETURN_IF_ERROR(flush());
  return GatherCombined(left, out_l, right, out_r, num_threads);
}

}  // namespace vdb::engine
