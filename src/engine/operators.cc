#include "engine/operators.h"

#include <unordered_map>

#include "engine/aggregates.h"
#include "engine/vector_eval.h"

namespace vdb::engine {

namespace {

/// Sentinel in a right-side gather list: emit NULLs (left join extension).
constexpr uint32_t kNullRow = 0xFFFFFFFFu;

std::string JoinKeyOf(const Table& t, size_t row,
                      const std::vector<int>& keys, bool* has_null) {
  std::string key;
  *has_null = false;
  for (int k : keys) {
    Value v = t.Get(row, static_cast<size_t>(k));
    if (v.is_null()) *has_null = true;
    key += ValueGroupKey(v);
    key.push_back('\x1f');
  }
  return key;
}

/// Materializes the combined (left ++ right) schema for the pairs named by
/// two parallel gather lists. Right-side entries equal to kNullRow emit
/// NULLs (left-join null extension); with no sentinels each right column is
/// a single bulk gather. Also the batch input for residual predicates.
TablePtr GatherCombined(const Table& left, const SelVector& lrows,
                        const Table& right, const SelVector& rrows) {
  auto out = std::make_shared<Table>();
  for (size_t c = 0; c < left.num_columns(); ++c) {
    Column col(left.column(c).type());
    col.AppendSelected(left.column(c), lrows.data(), lrows.size());
    out->AddColumn(left.column_name(c), std::move(col));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    const Column& src = right.column(c);
    Column col(src.type());
    // Bulk-gather maximal sentinel-free segments; per-element work only for
    // the null extensions themselves.
    size_t i = 0;
    const size_t n = rrows.size();
    while (i < n) {
      if (rrows[i] == kNullRow) {
        col.AppendNull();
        ++i;
        continue;
      }
      size_t j = i;
      while (j < n && rrows[j] != kNullRow) ++j;
      col.AppendSelected(src, rrows.data() + i, j - i);
      i = j;
    }
    out->AddColumn(right.column_name(c), std::move(col));
  }
  return out;
}

/// The selection-vector machinery (uint32_t indices, kNullRow sentinel)
/// addresses strictly fewer than 2^32 - 1 rows per input.
Status CheckJoinInputSizes(const Table& left, const Table& right) {
  constexpr size_t kMaxRows = 0xFFFFFFFEu;
  if (left.num_rows() > kMaxRows || right.num_rows() > kMaxRows) {
    return Status::Unsupported("join inputs above 2^32 - 2 rows");
  }
  return Status::Ok();
}

/// Evaluates a bound residual predicate over candidate pairs, returning a
/// pass/fail flag per candidate.
Result<std::vector<uint8_t>> ResidualMask(const Table& left,
                                          const SelVector& lrows,
                                          const Table& right,
                                          const SelVector& rrows,
                                          const sql::Expr& residual,
                                          Rng* rng) {
  TablePtr scratch = GatherCombined(left, lrows, right, rrows);
  SelVector surviving;
  Batch batch{scratch.get(), nullptr, rng};
  VDB_RETURN_IF_ERROR(EvalPredicateBatch(residual, batch, &surviving));
  std::vector<uint8_t> pass(lrows.size(), 0);
  for (uint32_t s : surviving) pass[s] = 1;
  return pass;
}

}  // namespace

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<int>& left_keys,
                          const std::vector<int>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          Rng* rng) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::Internal("hash join requires matching key lists");
  }
  VDB_RETURN_IF_ERROR(CheckJoinInputSizes(left, right));
  // Build on the right input.
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    bool has_null = false;
    std::string key = JoinKeyOf(right, r, right_keys, &has_null);
    if (has_null) continue;  // NULL keys never match.
    build[key].push_back(static_cast<uint32_t>(r));
  }

  const bool left_join = join_type == sql::JoinType::kLeft;
  SelVector out_l, out_r;
  auto emit_null_ext = [&](uint32_t lr) {
    out_l.push_back(lr);
    out_r.push_back(kNullRow);
  };

  if (residual == nullptr) {
    // Probe and emit directly, in left-row-major order.
    for (size_t lr = 0; lr < left.num_rows(); ++lr) {
      bool has_null = false;
      std::string key = JoinKeyOf(left, lr, left_keys, &has_null);
      bool matched = false;
      if (!has_null) {
        auto it = build.find(key);
        if (it != build.end()) {
          for (uint32_t rr : it->second) {
            out_l.push_back(static_cast<uint32_t>(lr));
            out_r.push_back(rr);
          }
          matched = !it->second.empty();
        }
      }
      if (!matched && left_join) emit_null_ext(static_cast<uint32_t>(lr));
    }
  } else {
    // Streaming probe: the residual runs batch-at-a-time over bounded chunks
    // of candidate pairs, so a hot key with a selective residual never
    // materializes the full candidate cross product. Chunk entries with
    // rr == kNullRow mark left rows with no candidates at all (left join).
    // `open_lr` tracks a left row whose candidates may span chunk
    // boundaries; it null-extends once all its candidates have failed.
    constexpr size_t kChunk = 1 << 16;
    SelVector chunk_l, chunk_r;
    chunk_l.reserve(kChunk);
    chunk_r.reserve(kChunk);
    int64_t open_lr = -1;
    bool open_matched = false;
    auto flush = [&]() -> Status {
      if (chunk_l.empty()) return Status::Ok();
      SelVector real_l, real_r;
      real_l.reserve(chunk_l.size());
      real_r.reserve(chunk_l.size());
      for (size_t i = 0; i < chunk_l.size(); ++i) {
        if (chunk_r[i] != kNullRow) {
          real_l.push_back(chunk_l[i]);
          real_r.push_back(chunk_r[i]);
        }
      }
      std::vector<uint8_t> pass;
      if (!real_l.empty()) {
        auto mask = ResidualMask(left, real_l, right, real_r, *residual, rng);
        if (!mask.ok()) return mask.status();
        pass = std::move(mask).ValueOrDie();
      }
      size_t ri = 0;
      for (size_t i = 0; i < chunk_l.size(); ++i) {
        const uint32_t lr = chunk_l[i];
        if (open_lr >= 0 && lr != static_cast<uint32_t>(open_lr)) {
          if (!open_matched && left_join) {
            emit_null_ext(static_cast<uint32_t>(open_lr));
          }
          open_lr = -1;
        }
        if (chunk_r[i] == kNullRow) {
          if (left_join) emit_null_ext(lr);
        } else {
          if (open_lr < 0) {
            open_lr = lr;
            open_matched = false;
          }
          if (pass[ri] != 0) {
            out_l.push_back(lr);
            out_r.push_back(chunk_r[i]);
            open_matched = true;
          }
          ++ri;
        }
      }
      chunk_l.clear();
      chunk_r.clear();
      return Status::Ok();
    };

    for (size_t lr = 0; lr < left.num_rows(); ++lr) {
      bool has_null = false;
      std::string key = JoinKeyOf(left, lr, left_keys, &has_null);
      const std::vector<uint32_t>* bucket = nullptr;
      if (!has_null) {
        auto it = build.find(key);
        if (it != build.end() && !it->second.empty()) bucket = &it->second;
      }
      if (bucket == nullptr) {
        if (left_join) {
          chunk_l.push_back(static_cast<uint32_t>(lr));
          chunk_r.push_back(kNullRow);
          if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
        }
        continue;
      }
      for (uint32_t rr : *bucket) {
        chunk_l.push_back(static_cast<uint32_t>(lr));
        chunk_r.push_back(rr);
        if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
      }
    }
    VDB_RETURN_IF_ERROR(flush());
    if (open_lr >= 0 && !open_matched && left_join) {
      emit_null_ext(static_cast<uint32_t>(open_lr));
    }
  }

  return GatherCombined(left, out_l, right, out_r);
}

Result<TablePtr> CrossJoin(const Table& left, const Table& right,
                           const sql::Expr* residual, Rng* rng,
                           size_t max_pairs) {
  VDB_RETURN_IF_ERROR(CheckJoinInputSizes(left, right));
  const size_t pairs = left.num_rows() * right.num_rows();
  if (pairs > max_pairs) {
    return Status::Unsupported(
        "cross join would produce too many candidate pairs: " +
        std::to_string(pairs));
  }

  SelVector out_l, out_r;
  if (residual == nullptr) {
    out_l.reserve(pairs);
    out_r.reserve(pairs);
    for (size_t lr = 0; lr < left.num_rows(); ++lr) {
      for (size_t rr = 0; rr < right.num_rows(); ++rr) {
        out_l.push_back(static_cast<uint32_t>(lr));
        out_r.push_back(static_cast<uint32_t>(rr));
      }
    }
    return GatherCombined(left, out_l, right, out_r);
  }

  // With a residual: evaluate the predicate batch-at-a-time over bounded
  // chunks of the pair space, keeping peak memory proportional to the chunk
  // plus the surviving pairs.
  constexpr size_t kChunk = 1 << 16;
  SelVector chunk_l, chunk_r;
  chunk_l.reserve(kChunk);
  chunk_r.reserve(kChunk);
  auto flush = [&]() -> Status {
    if (chunk_l.empty()) return Status::Ok();
    auto mask = ResidualMask(left, chunk_l, right, chunk_r, *residual, rng);
    if (!mask.ok()) return mask.status();
    const std::vector<uint8_t>& pass = mask.value();
    for (size_t i = 0; i < chunk_l.size(); ++i) {
      if (pass[i] != 0) {
        out_l.push_back(chunk_l[i]);
        out_r.push_back(chunk_r[i]);
      }
    }
    chunk_l.clear();
    chunk_r.clear();
    return Status::Ok();
  };
  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    for (size_t rr = 0; rr < right.num_rows(); ++rr) {
      chunk_l.push_back(static_cast<uint32_t>(lr));
      chunk_r.push_back(static_cast<uint32_t>(rr));
      if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
    }
  }
  VDB_RETURN_IF_ERROR(flush());
  return GatherCombined(left, out_l, right, out_r);
}

}  // namespace vdb::engine
