#include "engine/operators.h"

#include "common/thread_pool.h"
#include "engine/group_ids.h"
#include "engine/join_table.h"
#include "engine/kernels/kernels.h"
#include "engine/vector_eval.h"

namespace vdb::engine {

namespace {

/// Sentinel in a right-side pair list: emit NULLs (left join extension).
constexpr uint32_t kNullRow = JoinPairView::kNullRightRow;

constexpr uint32_t kInvalidRow = JoinBuildTable::kInvalidRow;

/// Non-owning alias for the table-reference overloads, whose callers gather
/// before the borrowed table can go away.
TablePtr BorrowTable(const Table& t) {
  return TablePtr(TablePtr{}, const_cast<Table*>(&t));
}

/// The selection-vector machinery (uint32_t indices, kNullRow sentinel)
/// addresses strictly fewer than 2^32 - 1 rows per input.
Status CheckJoinInputSizes(const Table& left, const Table& right) {
  constexpr size_t kMaxRows = 0xFFFFFFFEu;
  if (left.num_rows() > kMaxRows || right.num_rows() > kMaxRows) {
    return Status::Unsupported("join inputs above 2^32 - 2 rows");
  }
  return Status::Ok();
}

/// Hashes one side's join keys, morsel-parallel: workers fill disjoint
/// ranges of the preallocated hash/null arrays, so the result is identical
/// to the serial column-at-a-time pass.
void HashJoinKeysParallel(const std::vector<const Column*>& keys, size_t n,
                          int num_threads, std::vector<uint64_t>* hashes,
                          std::vector<uint8_t>* any_null) {
  hashes->resize(n);  // vdb-lint: allow(naked-reserve) charged by HashJoinPairs (hash_charge)
  any_null->assign(n, 0);
  if (num_threads > 1 && n > MorselRows()) {
    ThreadPool::Global().ParallelFor(
        n, MorselRows(), num_threads, [&](size_t, size_t begin, size_t end) {
          HashJoinKeyColumns(keys, begin, end, hashes->data(),
                             any_null->data());
        });
  } else {
    HashJoinKeyColumns(keys, 0, n, hashes->data(), any_null->data());
  }
}

}  // namespace

Result<JoinPairView> HashJoinPairs(TablePtr left, TablePtr right,
                                   const std::vector<const Column*>& left_keys,
                                   const std::vector<const Column*>& right_keys,
                                   sql::JoinType join_type,
                                   const sql::Expr* residual,
                                   uint64_t rand_seed, int num_threads,
                                   const ExecGuard* guard) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::Internal("hash join requires matching key lists");
  }
  VDB_RETURN_IF_ERROR(CheckJoinInputSizes(*left, *right));
  const size_t rn = right->num_rows();
  const size_t ln = left->num_rows();

  // Key-hash scratch for both sides (8B hash + 1B null flag per row),
  // released when the join returns.
  ScopedReservation hash_charge(
      guard, static_cast<uint64_t>(rn + ln) * (sizeof(uint64_t) + 1),
      "join_build_alloc");
  VDB_RETURN_IF_ERROR(hash_charge.status());

  // Build on the right input: vectorized key hashing into the flat
  // open-addressing table (radix-partitioned parallel for num_threads > 1).
  std::vector<uint64_t> rhash;
  std::vector<uint8_t> rnull;
  HashJoinKeysParallel(right_keys, rn, num_threads, &rhash, &rnull);
  JoinBuildTable build;
  VDB_RETURN_IF_ERROR(
      build.Build(rhash.data(), rnull.data(), rn, num_threads,
                  [&](uint32_t a, uint32_t b) {
                    return JoinKeysEqual(right_keys, a, right_keys, b);
                  },
                  guard));

  std::vector<uint64_t> lhash;
  std::vector<uint8_t> lnull;
  HashJoinKeysParallel(left_keys, ln, num_threads, &lhash, &lnull);

  // When the build enabled its Bloom pre-probe, run the probe side through
  // the batch prefilter kernel up front: bloom_pass bit lr clear means
  // lhash[lr] is provably absent from the build table, so the probe skips
  // Find() entirely. No false negatives, so pair lists are identical with
  // the filter on or off; the win comes on low-hit-rate probes, where most
  // rows never touch the slot arrays. The decision is adaptive: prefilter a
  // prefix first, and when its pass rate shows probes mostly hit (the
  // filter would be pure overhead on top of unavoidable Find() calls), drop
  // the filter for the rest. The bail-out depends only on the key hashes,
  // so it is deterministic across thread counts.
  kernels::Bitmap bloom_pass;
  bool use_bloom = build.has_bloom() && ln > 0;
  if (use_bloom) {
    constexpr size_t kProbeSample = 16384;  // multiple of 64: whole words
    const size_t sample = std::min(ln, kProbeSample);
    bloom_pass.ResetForOverwrite(ln);
    kernels::Ops().bloom_prefilter(build.bloom_words(), build.bloom_shift(),
                                   lhash.data(), sample, bloom_pass.words());
    size_t passed = 0;
    for (size_t w = 0; w < (sample + 63) / 64; ++w) {
      passed += static_cast<size_t>(__builtin_popcountll(bloom_pass.word(w)));
    }
    if (!JoinBloomForced() && passed * 4 > sample * 3) {
      use_bloom = false;  // > 75% of probes hit anyway
    } else if (ln > sample) {
      kernels::Ops().bloom_prefilter(
          build.bloom_words(), build.bloom_shift(), lhash.data() + sample,
          ln - sample, bloom_pass.words() + sample / 64);
    }
  }

  // First build row matching left row `lr`'s key, else kInvalidRow; further
  // duplicates (ascending build rows) via NextDup.
  auto find_head = [&](size_t lr) -> uint32_t {
    if (lnull[lr] != 0) return kInvalidRow;  // NULL keys never match.
    if (use_bloom && !bloom_pass.Test(lr)) return kInvalidRow;
    return build.Find(lhash[lr], [&](uint32_t br) {
      return JoinKeysEqual(left_keys, lr, right_keys, br);
    });
  };

  const bool left_join = join_type == sql::JoinType::kLeft;
  SelVector out_l, out_r;

  if (residual == nullptr) {
    // Probe and emit in left-row-major order. The build table is read-only
    // from here on, so the probe splits into left-row morsels: each morsel
    // emits into its own pair lists, and concatenating the lists in morsel
    // order reproduces the serial left-row-major output exactly.
    auto probe_range = [&](size_t range_begin, size_t range_end,
                           SelVector* ol, SelVector* orr) {
      for (size_t lr = range_begin; lr < range_end; ++lr) {
        uint32_t rr = find_head(lr);
        if (rr == kInvalidRow) {
          if (left_join) {
            ol->push_back(static_cast<uint32_t>(lr));
            orr->push_back(kNullRow);
          }
          continue;
        }
        for (; rr != kInvalidRow; rr = build.NextDup(rr)) {
          ol->push_back(static_cast<uint32_t>(lr));
          orr->push_back(rr);
        }
      }
    };
    if (num_threads > 1 && ln > MorselRows()) {
      struct ProbeSlot {
        SelVector l, r;
      };
      auto slots = ParallelMorselMapStatus<ProbeSlot>(
          ln, num_threads, guard, "join_probe",
          [&](ProbeSlot& slot, size_t range_begin, size_t range_end) {
            probe_range(range_begin, range_end, &slot.l, &slot.r);
            return Status::Ok();
          });
      if (!slots.ok()) return slots.status();
      size_t total = 0;
      for (const ProbeSlot& slot : slots.value()) total += slot.l.size();
      VDB_RETURN_IF_ERROR(GuardTryReserve(
          guard, static_cast<uint64_t>(total) * 2 * sizeof(uint32_t),
          "join_probe_alloc"));
      out_l.reserve(total);  // vdb-lint: allow(naked-reserve) charged via GuardTryReserve above
      out_r.reserve(total);  // vdb-lint: allow(naked-reserve) charged via GuardTryReserve above
      for (const ProbeSlot& slot : slots.value()) {
        out_l.insert(out_l.end(), slot.l.begin(), slot.l.end());
        out_r.insert(out_r.end(), slot.r.begin(), slot.r.end());
      }
      // The pair lists live to the end of the statement (they become the
      // JoinPairView); the charge stays until ResetForStatement.
    } else {
      // Serial probe, chunked so the guard still sees batch-boundary polls.
      const size_t step = MorselRows();
      for (size_t begin = 0; begin < ln; begin += step) {
        VDB_RETURN_IF_ERROR(GuardCheck(guard, "join_probe"));
        probe_range(begin, std::min(ln, begin + step), &out_l, &out_r);
      }
    }
  } else {
    // Streaming probe: the residual runs batch-at-a-time over bounded chunks
    // of candidate pairs, so a hot key with a selective residual never
    // materializes the full candidate cross product. Chunk entries with
    // rr == kNullRow mark left rows with no candidates at all (left join).
    // `open_lr` tracks a left row whose candidates may span chunk
    // boundaries; it null-extends once all its candidates have failed. The
    // chunk lists, compaction lists, and the evaluator's combined-schema
    // scratch are all hoisted out of the loop and reused across flushes.
    constexpr size_t kChunk = 1 << 16;
    SelVector chunk_l, chunk_r, real_l, real_r;
    chunk_l.reserve(kChunk);  // vdb-lint: allow(naked-reserve) fixed 64K chunk scratch
    chunk_r.reserve(kChunk);  // vdb-lint: allow(naked-reserve) fixed 64K chunk scratch
    PairPredicateEvaluator eval(*left, *right, rand_seed, num_threads, guard);
    // Global ordinal of the next candidate pair handed to the evaluator:
    // candidates are enumerated in a deterministic left-row-major order, so
    // the ordinal addresses rand-family draws in the residual.
    uint64_t cand_base = 0;
    int64_t open_lr = -1;
    bool open_matched = false;
    auto emit_null_ext = [&](uint32_t lr) {
      out_l.push_back(lr);
      out_r.push_back(kNullRow);
    };
    auto flush = [&]() -> Status {
      if (chunk_l.empty()) return Status::Ok();
      real_l.clear();
      real_r.clear();
      for (size_t i = 0; i < chunk_l.size(); ++i) {
        if (chunk_r[i] != kNullRow) {
          real_l.push_back(chunk_l[i]);
          real_r.push_back(chunk_r[i]);
        }
      }
      const kernels::Bitmap* pass = nullptr;
      if (!real_l.empty()) {
        auto mask = eval.Eval(*residual, real_l.data(), real_r.data(),
                              real_l.size(), cand_base);
        if (!mask.ok()) return mask.status();
        pass = mask.value();
        cand_base += real_l.size();
      }
      size_t ri = 0;
      for (size_t i = 0; i < chunk_l.size(); ++i) {
        const uint32_t lr = chunk_l[i];
        if (open_lr >= 0 && lr != static_cast<uint32_t>(open_lr)) {
          if (!open_matched && left_join) {
            emit_null_ext(static_cast<uint32_t>(open_lr));
          }
          open_lr = -1;
        }
        if (chunk_r[i] == kNullRow) {
          if (left_join) emit_null_ext(lr);
        } else {
          if (open_lr < 0) {
            open_lr = lr;
            open_matched = false;
          }
          if (pass->Test(ri)) {
            out_l.push_back(lr);
            out_r.push_back(chunk_r[i]);
            open_matched = true;
          }
          ++ri;
        }
      }
      chunk_l.clear();
      chunk_r.clear();
      return Status::Ok();
    };

    for (size_t lr = 0; lr < ln; ++lr) {
      // Chunk-boundary poll: flushes only happen when candidates accumulate,
      // so a mostly-missing probe still polls every kChunk left rows.
      if ((lr & (kChunk - 1)) == 0) {
        VDB_RETURN_IF_ERROR(GuardCheck(guard, "join_probe"));
      }
      uint32_t rr = find_head(lr);
      if (rr == kInvalidRow) {
        if (left_join) {
          chunk_l.push_back(static_cast<uint32_t>(lr));
          chunk_r.push_back(kNullRow);
          if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
        }
        continue;
      }
      for (; rr != kInvalidRow; rr = build.NextDup(rr)) {
        chunk_l.push_back(static_cast<uint32_t>(lr));
        chunk_r.push_back(rr);
        if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
      }
    }
    VDB_RETURN_IF_ERROR(flush());
    if (open_lr >= 0 && !open_matched && left_join) {
      emit_null_ext(static_cast<uint32_t>(open_lr));
    }
  }

  return JoinPairView(std::move(left), std::move(right), std::move(out_l),
                      std::move(out_r));
}

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<const Column*>& left_keys,
                          const std::vector<const Column*>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          uint64_t rand_seed, int num_threads,
                          const ExecGuard* guard) {
  auto pairs = HashJoinPairs(BorrowTable(left), BorrowTable(right), left_keys,
                             right_keys, join_type, residual, rand_seed,
                             num_threads, guard);
  if (!pairs.ok()) return pairs.status();
  return pairs.value().Gather(num_threads);
}

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<int>& left_keys,
                          const std::vector<int>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          uint64_t rand_seed, int num_threads) {
  std::vector<const Column*> lcols, rcols;
  lcols.reserve(left_keys.size());  // vdb-lint: allow(naked-reserve) key-count bounded
  rcols.reserve(right_keys.size());  // vdb-lint: allow(naked-reserve) key-count bounded
  for (int k : left_keys) lcols.push_back(&left.column(static_cast<size_t>(k)));
  for (int k : right_keys) {
    rcols.push_back(&right.column(static_cast<size_t>(k)));
  }
  return HashJoin(left, right, lcols, rcols, join_type, residual, rand_seed,
                  num_threads);
}

Result<JoinPairView> CrossJoinPairs(TablePtr left, TablePtr right,
                                    const sql::Expr* residual,
                                    uint64_t rand_seed, size_t max_pairs,
                                    int num_threads, const ExecGuard* guard) {
  VDB_RETURN_IF_ERROR(CheckJoinInputSizes(*left, *right));
  const size_t ln = left->num_rows();
  const size_t rn = right->num_rows();
  const size_t pairs = ln * rn;
  if (pairs > max_pairs) {
    return Status::Unsupported(
        "cross join would produce too many candidate pairs: " +
        std::to_string(pairs));
  }

  SelVector out_l, out_r;
  if (residual == nullptr) {
    VDB_RETURN_IF_ERROR(GuardTryReserve(
        guard, static_cast<uint64_t>(pairs) * 2 * sizeof(uint32_t),
        "cross_join_alloc"));
    out_l.reserve(pairs);  // vdb-lint: allow(naked-reserve) charged via GuardTryReserve above
    out_r.reserve(pairs);  // vdb-lint: allow(naked-reserve) charged via GuardTryReserve above
    size_t since_poll = 0;
    for (size_t lr = 0; lr < ln; ++lr) {
      // Batch-boundary poll: once per ~64K emitted pairs, never per row.
      if (since_poll >= (size_t{1} << 16) || lr == 0) {
        VDB_RETURN_IF_ERROR(GuardCheck(guard, "cross_join"));
        since_poll = 0;
      }
      since_poll += rn;
      for (size_t rr = 0; rr < rn; ++rr) {
        out_l.push_back(static_cast<uint32_t>(lr));
        out_r.push_back(static_cast<uint32_t>(rr));
      }
    }
    return JoinPairView(std::move(left), std::move(right), std::move(out_l),
                        std::move(out_r));
  }

  // With a residual: evaluate the predicate batch-at-a-time over bounded
  // chunks of the pair space, keeping peak memory proportional to the chunk
  // plus the surviving pairs; the evaluator's scratch is reused per chunk.
  constexpr size_t kChunk = 1 << 16;
  SelVector chunk_l, chunk_r;
  chunk_l.reserve(kChunk);  // vdb-lint: allow(naked-reserve) fixed 64K chunk scratch
  chunk_r.reserve(kChunk);  // vdb-lint: allow(naked-reserve) fixed 64K chunk scratch
  PairPredicateEvaluator eval(*left, *right, rand_seed, num_threads, guard);
  // Pairs are enumerated row-major, so the running count IS the global pair
  // ordinal lr * rn + rr of the chunk's first pair.
  uint64_t pair_base = 0;
  auto flush = [&]() -> Status {
    if (chunk_l.empty()) return Status::Ok();
    auto mask = eval.Eval(*residual, chunk_l.data(), chunk_r.data(),
                          chunk_l.size(), pair_base);
    if (!mask.ok()) return mask.status();
    const kernels::Bitmap& pass = *mask.value();
    for (size_t w = 0; w < pass.num_words(); ++w) {
      uint64_t word = pass.word(w);
      while (word != 0) {
        const size_t i = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        out_l.push_back(chunk_l[i]);
        out_r.push_back(chunk_r[i]);
        word &= word - 1;
      }
    }
    pair_base += chunk_l.size();
    chunk_l.clear();
    chunk_r.clear();
    return Status::Ok();
  };
  for (size_t lr = 0; lr < ln; ++lr) {
    for (size_t rr = 0; rr < rn; ++rr) {
      chunk_l.push_back(static_cast<uint32_t>(lr));
      chunk_r.push_back(static_cast<uint32_t>(rr));
      if (chunk_l.size() >= kChunk) VDB_RETURN_IF_ERROR(flush());
    }
  }
  VDB_RETURN_IF_ERROR(flush());
  return JoinPairView(std::move(left), std::move(right), std::move(out_l),
                      std::move(out_r));
}

Result<TablePtr> CrossJoin(const Table& left, const Table& right,
                           const sql::Expr* residual, uint64_t rand_seed,
                           size_t max_pairs, int num_threads,
                           const ExecGuard* guard) {
  auto pairs = CrossJoinPairs(BorrowTable(left), BorrowTable(right), residual,
                              rand_seed, max_pairs, num_threads, guard);
  if (!pairs.ok()) return pairs.status();
  return pairs.value().Gather(num_threads);
}

}  // namespace vdb::engine
