#include "engine/operators.h"

#include <unordered_map>

#include "engine/aggregates.h"
#include "engine/expr_eval.h"

namespace vdb::engine {

namespace {

TablePtr CombinedSchema(const Table& left, const Table& right) {
  auto out = std::make_shared<Table>();
  for (size_t i = 0; i < left.num_columns(); ++i) {
    out->AddColumn(left.column_name(i), left.column(i).type());
  }
  for (size_t i = 0; i < right.num_columns(); ++i) {
    out->AddColumn(right.column_name(i), right.column(i).type());
  }
  return out;
}

void AppendCombined(Table* out, const Table& left, size_t lr,
                    const Table& right, size_t rr) {
  const size_t ln = left.num_columns();
  for (size_t c = 0; c < ln; ++c) out->column(c).Append(left.column(c).Get(lr));
  for (size_t c = 0; c < right.num_columns(); ++c) {
    out->column(ln + c).Append(right.column(c).Get(rr));
  }
}

void AppendLeftNullExtended(Table* out, const Table& left, size_t lr,
                            size_t right_cols) {
  const size_t ln = left.num_columns();
  for (size_t c = 0; c < ln; ++c) out->column(c).Append(left.column(c).Get(lr));
  for (size_t c = 0; c < right_cols; ++c) out->column(ln + c).AppendNull();
}

std::string JoinKeyOf(const Table& t, size_t row,
                      const std::vector<int>& keys, bool* has_null) {
  std::string key;
  *has_null = false;
  for (int k : keys) {
    Value v = t.Get(row, static_cast<size_t>(k));
    if (v.is_null()) *has_null = true;
    key += ValueGroupKey(v);
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const std::vector<int>& left_keys,
                          const std::vector<int>& right_keys,
                          sql::JoinType join_type, const sql::Expr* residual,
                          Rng* rng) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::Internal("hash join requires matching key lists");
  }
  // Build on the right input.
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    bool has_null = false;
    std::string key = JoinKeyOf(right, r, right_keys, &has_null);
    if (has_null) continue;  // NULL keys never match.
    build[key].push_back(static_cast<uint32_t>(r));
  }

  auto out = CombinedSchema(left, right);
  // Scratch one-row table for residual evaluation.
  TablePtr scratch = residual ? CombinedSchema(left, right) : nullptr;

  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    bool has_null = false;
    std::string key = JoinKeyOf(left, lr, left_keys, &has_null);
    bool matched = false;
    if (!has_null) {
      auto it = build.find(key);
      if (it != build.end()) {
        for (uint32_t rr : it->second) {
          if (residual) {
            scratch->ClearRows();
            AppendCombined(scratch.get(), left, lr, right, rr);
            // AppendCombined updated columns only; use a direct row context.
            RowCtx ctx{scratch.get(), 0, rng};
            auto pass = EvalPredicate(*residual, ctx);
            if (!pass.ok()) return pass.status();
            if (!pass.value()) continue;
          }
          AppendCombined(out.get(), left, lr, right, rr);
          matched = true;
        }
      }
    }
    if (!matched && join_type == sql::JoinType::kLeft) {
      AppendLeftNullExtended(out.get(), left, lr, right.num_columns());
    }
  }
  // Fix the row count: columns were appended directly.
  // (Re-create the table via AddColumn path to keep num_rows consistent.)
  auto fixed = std::make_shared<Table>();
  for (size_t i = 0; i < out->num_columns(); ++i) {
    fixed->AddColumn(out->column_name(i), std::move(out->column(i)));
  }
  return fixed;
}

Result<TablePtr> CrossJoin(const Table& left, const Table& right,
                           const sql::Expr* residual, Rng* rng,
                           size_t max_pairs) {
  const size_t pairs = left.num_rows() * right.num_rows();
  if (pairs > max_pairs) {
    return Status::Unsupported(
        "cross join would produce too many candidate pairs: " +
        std::to_string(pairs));
  }
  auto out = CombinedSchema(left, right);
  TablePtr scratch = residual ? CombinedSchema(left, right) : nullptr;
  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    for (size_t rr = 0; rr < right.num_rows(); ++rr) {
      if (residual) {
        scratch->ClearRows();
        AppendCombined(scratch.get(), left, lr, right, rr);
        RowCtx ctx{scratch.get(), 0, rng};
        auto pass = EvalPredicate(*residual, ctx);
        if (!pass.ok()) return pass.status();
        if (!pass.value()) continue;
      }
      AppendCombined(out.get(), left, lr, right, rr);
    }
  }
  auto fixed = std::make_shared<Table>();
  for (size_t i = 0; i < out->num_columns(); ++i) {
    fixed->AddColumn(out->column_name(i), std::move(out->column(i)));
  }
  return fixed;
}

}  // namespace vdb::engine
