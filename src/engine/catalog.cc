#include "engine/catalog.h"

#include <algorithm>
#include <cctype>

namespace vdb::engine {

namespace {
std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

Status Catalog::CreateTable(const std::string& name, TablePtr table) {
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_[key] = std::move(table);
  return Status::Ok();
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::Ok();
    return Status::NotFound("no such table: " + name);
  }
  tables_.erase(it);
  return Status::Ok();
}

TablePtr Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

}  // namespace vdb::engine
