// The in-process relational database used as VerdictDB's "underlying
// database". The middleware communicates with it exclusively through SQL
// strings, mirroring the paper's driver-level deployment (Fig. 1a).

#ifndef VDB_ENGINE_DATABASE_H_
#define VDB_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace vdb::engine {

/// A query result: an output table plus output column names (which may
/// repeat; lookup returns the first match).
struct ResultSet {
  std::vector<std::string> names;
  TablePtr table;

  size_t NumRows() const { return table ? table->num_rows() : 0; }
  size_t NumCols() const { return names.size(); }
  Value Get(size_t row, size_t col) const { return table->Get(row, col); }
  /// Case-insensitive; -1 if absent.
  int ColumnIndex(const std::string& name) const;
  double GetDouble(size_t row, size_t col) const {
    return table->Get(row, col).AsDouble();
  }
  /// Pretty-prints up to max_rows rows (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;
};

/// An embedded SQL engine: catalog + executor. Statements supported:
/// SELECT (with joins, group-by, having, order-by, limit, window partitions,
/// scalar subqueries, union all), CREATE TABLE AS, DROP TABLE [IF EXISTS],
/// INSERT INTO ... SELECT.
class Database {
 public:
  explicit Database(uint64_t seed = 0xC0FFEE);

  /// Parses and executes one statement. DDL returns an empty ResultSet.
  /// `guard` (optional, nullptr = ungoverned) is the per-statement execution
  /// guard threaded into every SELECT body the statement runs (including the
  /// SELECT inside CREATE TABLE AS / INSERT ... SELECT); a tripped guard
  /// unwinds with kCancelled / kDeadlineExceeded / kResourceExhausted.
  Result<ResultSet> Execute(const std::string& sql,
                            const ExecGuard* guard = nullptr);

  /// Executes an already-parsed SELECT (the statement is cloned; the input
  /// is not mutated).
  Result<ResultSet> ExecuteSelect(const sql::SelectStmt& stmt,
                                  const ExecGuard* guard = nullptr);

  /// Registers a prebuilt table (workload generators use this).
  Status RegisterTable(const std::string& name, TablePtr table);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Direct access to the database RNG, for serial setup code (the
  /// integrated-AQP baseline draws its shuffles here). NOT safe while other
  /// threads execute statements — concurrent draws go through
  /// NewQuerySeed(), which serializes on seed_mu_. The analysis exemption
  /// is deliberate: the returned reference escapes the lock scope, which is
  /// exactly why this accessor is restricted to single-threaded phases.
  Rng& rng() NO_THREAD_SAFETY_ANALYSIS { return rng_; }

  /// Draws the per-statement seed for the row-addressed rand() substrate
  /// (common/random.h): one Rng draw per executed statement, so consecutive
  /// statements get independent draws while a fixed database seed plus a
  /// fixed statement sequence stays fully reproducible. Within a statement
  /// every rand-family value is a pure function of (this seed, row id, call
  /// site) — never of evaluation order, plan shape, or thread count.
  ///
  /// Serialized on seed_mu_, so concurrent callers sharing one Database
  /// (read-only statements; DDL still needs external exclusion) each get a
  /// distinct, valid seed instead of racing the generator state. Which
  /// caller gets which seed depends on arrival order — per-statement
  /// reproducibility under concurrency comes from the row-addressed
  /// substrate, not from the seed sequence.
  uint64_t NewQuerySeed() {
    MutexLock lock(seed_mu_);
    return rng_.Next();
  }

  /// Maximum threads the executor may use for one query (morsel-parallel
  /// scans, partial aggregation, join probe, projection, gathers). <= 0
  /// means "all hardware threads"; 1 is the default. Results — values, row
  /// order, and floating-point rounding — are bit-identical for every
  /// setting: the morsel decomposition and merge order depend only on the
  /// input, never on the thread count or the OS schedule.
  void set_num_threads(int n) { num_threads_ = n; }
  int num_threads() const;

  /// Total base-table rows scanned by queries since construction. Used by
  /// benches to report I/O-proportional costs. Atomic so concurrent
  /// statements sharing one Database tally without lost updates.
  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }
  void AddRowsScanned(uint64_t n) {
    rows_scanned_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  Catalog catalog_;
  Mutex seed_mu_;
  Rng rng_ GUARDED_BY(seed_mu_);
  std::atomic<uint64_t> rows_scanned_{0};
  int num_threads_ = 1;
};

}  // namespace vdb::engine

#endif  // VDB_ENGINE_DATABASE_H_
