#include "engine/aggregates.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "engine/hll.h"

namespace vdb::engine {

std::string ValueGroupKey(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return std::string("\x00N", 2);
    case TypeId::kBool:
    case TypeId::kInt64:
      return "\x01" + std::to_string(v.AsInt());
    case TypeId::kDouble: {
      double d = v.AsDouble();
      // One key for every NaN: %.17g would print "nan" vs "-nan" by sign,
      // while the vectorized group-id path (engine/group_ids.cc) puts all
      // NaNs in one equivalence class — the two must agree or parallel
      // partial-aggregation merges diverge from serial grouping.
      if (std::isnan(d)) return std::string("\x02nan");
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return "\x01" + std::to_string(static_cast<int64_t>(d));
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "\x02%.17g", d);
      return buf;
    }
    case TypeId::kString:
      return "\x03" + v.AsString();
  }
  return "?";
}

void AggAccumulator::AddBatch(const Column& col, const uint32_t* rows,
                              size_t n) {
  for (size_t i = 0; i < n; ++i) Add(col.Get(rows[i]));
}

void AggAccumulator::AddRepeated(const Value& v, size_t n) {
  for (size_t i = 0; i < n; ++i) Add(v);
}

void AggAccumulator::Merge(const AggAccumulator&) {
  // Only reachable through a bug: the parallel path checks Mergeable()
  // before partitioning work, and the default Mergeable() is false.
  // (UDAs that want parallel execution override Mergeable + Merge.)
  assert(false && "Merge called on a non-mergeable accumulator");
}

AggregateRegistry& AggregateRegistry::Global() {
  static AggregateRegistry* r = new AggregateRegistry();
  return *r;
}

void AggregateRegistry::Register(const std::string& name, UdaFactory factory) {
  factories_[name] = std::move(factory);
}

bool AggregateRegistry::Has(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::unique_ptr<AggAccumulator> AggregateRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second();
}

namespace {

class CountAcc : public AggAccumulator {
 public:
  explicit CountAcc(bool star) : star_(star) {}
  void Add(const Value& v) override {
    if (star_ || !v.is_null()) ++count_;
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    if (star_) {
      count_ += static_cast<int64_t>(n);
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      if (!col.IsNull(rows[i])) ++count_;
    }
  }
  void AddRepeated(const Value& v, size_t n) override {
    if (star_ || !v.is_null()) count_ += static_cast<int64_t>(n);
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    count_ += static_cast<const CountAcc&>(other).count_;
  }
  Value Finalize() const override { return Value::Int(count_); }

 private:
  bool star_;
  int64_t count_ = 0;
};

class DistinctCountAcc : public AggAccumulator {
 public:
  void Add(const Value& v) override {
    if (!v.is_null()) seen_.insert(ValueGroupKey(v));
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const DistinctCountAcc&>(other);
    seen_.insert(o.seen_.begin(), o.seen_.end());
  }
  Value Finalize() const override {
    return Value::Int(static_cast<int64_t>(seen_.size()));
  }

 private:
  std::unordered_set<std::string> seen_;
};

/// Kahan–Babuška–Neumaier compensated accumulation: (sum, comp) carries the
/// running value plus the rounding error of every addition so far, so
/// per-morsel partials lose (essentially) nothing and the morsel-order merge
/// recovers the near-correctly-rounded total. The planner runs every
/// mergeable aggregation through the same fixed morsel decomposition at
/// every thread count, so serial and N-thread results are bit-identical by
/// construction; the compensation buys accuracy on top (downstream error
/// estimators divide by these sums).
inline void NeumaierAdd(double& sum, double& comp, double x) {
  const double t = sum + x;
  if (std::abs(sum) >= std::abs(x)) {
    comp += (sum - t) + x;
  } else {
    comp += (x - t) + sum;
  }
  sum = t;
}

class SumAcc : public AggAccumulator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    any_ = true;
    if (v.type() != TypeId::kInt64) all_int_ = false;
    NeumaierAdd(sum_, comp_, v.AsDouble());
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    switch (col.type()) {
      case TypeId::kInt64:
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          any_ = true;
          NeumaierAdd(sum_, comp_, static_cast<double>(col.GetInt(rows[i])));
        }
        break;
      case TypeId::kDouble:
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          any_ = true;
          all_int_ = false;
          NeumaierAdd(sum_, comp_, col.GetDouble(rows[i]));
        }
        break;
      default:
        AggAccumulator::AddBatch(col, rows, n);
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Compensated merge: fold the partial's value and its error term.
    const auto& o = static_cast<const SumAcc&>(other);
    NeumaierAdd(sum_, comp_, o.sum_);
    NeumaierAdd(sum_, comp_, o.comp_);
    any_ = any_ || o.any_;
    all_int_ = all_int_ && o.all_int_;
  }
  Value Finalize() const override {
    if (!any_) return Value::Null();
    const double total = sum_ + comp_;
    if (all_int_) return Value::Int(static_cast<int64_t>(std::llround(total)));
    return Value::Double(total);
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;  // Neumaier error term
  bool any_ = false;
  bool all_int_ = true;
};

class AvgAcc : public AggAccumulator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    NeumaierAdd(sum_, comp_, v.AsDouble());
    ++n_;
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    // GetNumeric matches Value::AsDouble for every type (strings read 0).
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(rows[i])) continue;
      NeumaierAdd(sum_, comp_, col.GetNumeric(rows[i]));
      ++n_;
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const AvgAcc&>(other);
    NeumaierAdd(sum_, comp_, o.sum_);
    NeumaierAdd(sum_, comp_, o.comp_);
    n_ += o.n_;
  }
  Value Finalize() const override {
    if (n_ == 0) return Value::Null();
    return Value::Double((sum_ + comp_) / static_cast<double>(n_));
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;  // Neumaier error term
  int64_t n_ = 0;
};

class MinMaxAcc : public AggAccumulator {
 public:
  explicit MinMaxAcc(bool is_min) : is_min_(is_min) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    if (!any_) {
      best_ = v;
      any_ = true;
      return;
    }
    int c = v.Compare(best_);
    if ((is_min_ && c < 0) || (!is_min_ && c > 0)) best_ = v;
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    // Scan for the batch-local extremum in a typed loop, then merge it via
    // Add so cross-batch state keeps the row-at-a-time semantics. Strict
    // comparisons keep the first-seen value on ties and NaNs, like Compare.
    switch (col.type()) {
      case TypeId::kInt64: {
        bool found = false;
        int64_t best = 0;
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          const int64_t x = col.GetInt(rows[i]);
          if (!found || (is_min_ ? x < best : x > best)) {
            best = x;
            found = true;
          }
        }
        if (found) Add(Value::Int(best));
        break;
      }
      case TypeId::kDouble: {
        bool found = false;
        double best = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          const double x = col.GetDouble(rows[i]);
          if (!found || (is_min_ ? x < best : x > best)) {
            best = x;
            found = true;
          }
        }
        if (found) Add(Value::Double(best));
        break;
      }
      case TypeId::kString: {
        const std::string* best = nullptr;
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          const std::string& x = col.GetString(rows[i]);
          if (best == nullptr ||
              (is_min_ ? x.compare(*best) < 0 : x.compare(*best) > 0)) {
            best = &x;
          }
        }
        if (best != nullptr) Add(Value::String(*best));
        break;
      }
      default:
        AggAccumulator::AddBatch(col, rows, n);
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const MinMaxAcc&>(other);
    // Add keeps the first-seen value on ties; merging in morsel order keeps
    // that "first in row order" tie-break.
    if (o.any_) Add(o.best_);
  }
  Value Finalize() const override { return any_ ? best_ : Value::Null(); }

 private:
  bool is_min_;
  bool any_ = false;
  Value best_;
};

/// Welford online variance; finalizes to sample variance or stddev.
class VarAcc : public AggAccumulator {
 public:
  explicit VarAcc(bool stddev) : stddev_(stddev) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    double x = v.AsDouble();
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(rows[i])) continue;
      const double x = col.GetNumeric(rows[i]);
      ++n_;
      const double d = x - mean_;
      mean_ += d / static_cast<double>(n_);
      m2_ += d * (x - mean_);
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Chan et al.'s pairwise update of Welford state. Algebraically equal to
    // the sequential recurrence (rounding can differ in the last ulps); the
    // planner applies the same morsel decomposition and merge order at every
    // thread count, so var/stddev are bit-identical across 1..N threads.
    const auto& o = static_cast<const VarAcc&>(other);
    if (o.n_ == 0) return;
    if (n_ == 0) {
      n_ = o.n_;
      mean_ = o.mean_;
      m2_ = o.m2_;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    m2_ += o.m2_ + delta * delta * (na * nb / total);
    mean_ += delta * (nb / total);
    n_ += o.n_;
  }
  Value Finalize() const override {
    if (n_ < 2) return Value::Null();
    double var = m2_ / static_cast<double>(n_ - 1);
    return Value::Double(stddev_ ? std::sqrt(var) : var);
  }

 private:
  bool stddev_;
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact quantile over collected values (sorting at finalize). This is the
/// engine's `quantile(x, p)` / `median(x)` / `approx_median(x)`; like
/// Redshift's percentile functions it needs all qualifying values (a full
/// scan when run over a base table).
class QuantileAcc : public AggAccumulator {
 public:
  explicit QuantileAcc(double p) : p_(p) {}
  void Add(const Value& v) override {
    if (!v.is_null()) xs_.push_back(v.AsDouble());
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    xs_.reserve(xs_.size() + n);
    for (size_t i = 0; i < n; ++i) {
      if (!col.IsNull(rows[i])) xs_.push_back(col.GetNumeric(rows[i]));
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Concatenating morsel partials in morsel order reassembles the exact
    // row-order value sequence, so the sorted quantile is bit-identical to
    // the serial computation.
    const auto& o = static_cast<const QuantileAcc&>(other);
    xs_.insert(xs_.end(), o.xs_.begin(), o.xs_.end());
  }
  Value Finalize() const override {
    if (xs_.empty()) return Value::Null();
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    double idx = p_ * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return Value::Double(sorted[lo] * (1 - frac) + sorted[hi] * frac);
  }

 private:
  double p_;
  std::vector<double> xs_;
};

/// HyperLogLog-based approximate distinct count (Impala's ndv analogue).
class NdvAcc : public AggAccumulator {
 public:
  void Add(const Value& v) override {
    if (!v.is_null()) hll_.AddHash(HashValue(v));
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Register-wise max: exact regardless of insertion order.
    hll_.Merge(static_cast<const NdvAcc&>(other).hll_);
  }
  Value Finalize() const override {
    return Value::Int(static_cast<int64_t>(std::llround(hll_.Estimate())));
  }

 private:
  HyperLogLog hll_;
};

}  // namespace

Result<std::unique_ptr<AggAccumulator>> CreateAccumulator(const AggSpec& s) {
  if (s.name == "count") {
    if (s.distinct) return std::unique_ptr<AggAccumulator>(new DistinctCountAcc());
    return std::unique_ptr<AggAccumulator>(new CountAcc(s.arg == nullptr));
  }
  if (s.name == "sum") return std::unique_ptr<AggAccumulator>(new SumAcc());
  if (s.name == "avg") return std::unique_ptr<AggAccumulator>(new AvgAcc());
  if (s.name == "min") return std::unique_ptr<AggAccumulator>(new MinMaxAcc(true));
  if (s.name == "max") return std::unique_ptr<AggAccumulator>(new MinMaxAcc(false));
  if (s.name == "var" || s.name == "var_samp" || s.name == "variance") {
    return std::unique_ptr<AggAccumulator>(new VarAcc(false));
  }
  if (s.name == "stddev" || s.name == "stddev_samp") {
    return std::unique_ptr<AggAccumulator>(new VarAcc(true));
  }
  if (s.name == "quantile" || s.name == "percentile") {
    return std::unique_ptr<AggAccumulator>(new QuantileAcc(s.param));
  }
  if (s.name == "median" || s.name == "approx_median") {
    return std::unique_ptr<AggAccumulator>(new QuantileAcc(0.5));
  }
  if (s.name == "ndv" || s.name == "approx_distinct" ||
      s.name == "approx_count_distinct") {
    return std::unique_ptr<AggAccumulator>(new NdvAcc());
  }
  auto uda = AggregateRegistry::Global().Create(s.name);
  if (uda) return uda;
  return Status::Unsupported("unknown aggregate: " + s.name);
}

}  // namespace vdb::engine
