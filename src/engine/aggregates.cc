#include "engine/aggregates.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/hash.h"
#include "engine/agg_table.h"
#include "engine/hll.h"
#include "engine/kernels/kernels.h"

namespace vdb::engine {

std::string ValueGroupKey(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return std::string("\x00N", 2);
    case TypeId::kBool:
    case TypeId::kInt64:
      return "\x01" + std::to_string(v.AsInt());
    case TypeId::kDouble: {
      double d = v.AsDouble();
      // One key for every NaN: %.17g would print "nan" vs "-nan" by sign,
      // while the vectorized group-id path (engine/group_ids.cc) puts all
      // NaNs in one equivalence class — the two must agree or parallel
      // partial-aggregation merges diverge from serial grouping.
      if (std::isnan(d)) return std::string("\x02nan");
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return "\x01" + std::to_string(static_cast<int64_t>(d));
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "\x02%.17g", d);
      return buf;
    }
    case TypeId::kString:
      return "\x03" + v.AsString();
  }
  return "?";
}

void AggAccumulator::AddBatch(const Column& col, const uint32_t* rows,
                              size_t n) {
  for (size_t i = 0; i < n; ++i) Add(col.Get(rows[i]));
}

void AggAccumulator::AddRepeated(const Value& v, size_t n) {
  for (size_t i = 0; i < n; ++i) Add(v);
}

void AggAccumulator::Merge(const AggAccumulator&) {
  // Only reachable through a bug: the parallel path checks Mergeable()
  // before partitioning work, and the default Mergeable() is false.
  // (UDAs that want parallel execution override Mergeable + Merge.)
  assert(false && "Merge called on a non-mergeable accumulator");
}

AggregateRegistry& AggregateRegistry::Global() {
  // Leaked singleton behind a const pointer: the pointer itself is immutable
  // (no unsynchronized static mutation) and the pointee serializes every map
  // touch on mu_.
  static AggregateRegistry* const r = new AggregateRegistry();
  return *r;
}

void AggregateRegistry::Register(const std::string& name, UdaFactory factory) {
  MutexLock lock(mu_);
  factories_[name] = std::move(factory);
}

bool AggregateRegistry::Has(const std::string& name) const {
  MutexLock lock(mu_);
  return factories_.count(name) > 0;
}

std::unique_ptr<AggAccumulator> AggregateRegistry::Create(
    const std::string& name) const {
  UdaFactory factory;
  {
    MutexLock lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  // Run the factory outside the lock: a UDA factory is user code and may
  // itself consult the registry.
  return factory();
}

namespace {

class CountAcc : public AggAccumulator {
 public:
  explicit CountAcc(bool star) : star_(star) {}
  void Add(const Value& v) override {
    if (star_ || !v.is_null()) ++count_;
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    if (star_) {
      count_ += static_cast<int64_t>(n);
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      if (!col.IsNull(rows[i])) ++count_;
    }
  }
  void AddRepeated(const Value& v, size_t n) override {
    if (star_ || !v.is_null()) count_ += static_cast<int64_t>(n);
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    count_ += static_cast<const CountAcc&>(other).count_;
  }
  Value Finalize() const override { return Value::Int(count_); }

 private:
  bool star_;
  int64_t count_ = 0;
};

/// COUNT(DISTINCT x): a flat open-addressing set of Values under the group
/// equivalence — the same GroupTable, hash, and equality the group-id path
/// uses, with no per-value string keys. The collision test mask applies so
/// the differential fuzz exercises same-hash distinct values here too.
class DistinctCountAcc : public AggAccumulator {
 public:
  DistinctCountAcc() { table_.Reset(8); }
  void Add(const Value& v) override {
    if (v.is_null()) return;
    const uint64_t h = GroupValueHash(v) & GroupHashMaskForTest();
    bool inserted;
    table_.FindOrInsert(
        h, [&](uint32_t g) { return GroupValuesEqual(values_[g], v); },
        &inserted);
    if (inserted) values_.push_back(v);
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const DistinctCountAcc&>(other);
    for (const Value& v : o.values_) Add(v);
  }
  Value Finalize() const override {
    return Value::Int(static_cast<int64_t>(values_.size()));
  }

 private:
  GroupTable table_;
  std::vector<Value> values_;
};

/// Kahan–Babuška–Neumaier compensated accumulation: (sum, comp) carries the
/// running value plus the rounding error of every addition so far, so
/// per-morsel partials lose (essentially) nothing and the morsel-order merge
/// recovers the near-correctly-rounded total. The planner runs every
/// mergeable aggregation through the same fixed morsel decomposition at
/// every thread count, so serial and N-thread results are bit-identical by
/// construction; the compensation buys accuracy on top (downstream error
/// estimators divide by these sums).
inline void NeumaierAdd(double& sum, double& comp, double x) {
  const double t = sum + x;
  if (std::abs(sum) >= std::abs(x)) {
    comp += (sum - t) + x;  // vdb-lint: allow(raw-double-accumulate) this IS the Neumaier compensation
  } else {
    comp += (x - t) + sum;  // vdb-lint: allow(raw-double-accumulate) this IS the Neumaier compensation
  }
  sum = t;
}

class SumAcc : public AggAccumulator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    any_ = true;
    if (v.type() != TypeId::kInt64) all_int_ = false;
    NeumaierAdd(sum_, comp_, v.AsDouble());
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    switch (col.type()) {
      case TypeId::kInt64:
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          any_ = true;
          NeumaierAdd(sum_, comp_, static_cast<double>(col.GetInt(rows[i])));
        }
        break;
      case TypeId::kDouble:
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          any_ = true;
          all_int_ = false;
          NeumaierAdd(sum_, comp_, col.GetDouble(rows[i]));
        }
        break;
      default:
        AggAccumulator::AddBatch(col, rows, n);
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Compensated merge: fold the partial's value and its error term.
    const auto& o = static_cast<const SumAcc&>(other);
    NeumaierAdd(sum_, comp_, o.sum_);
    NeumaierAdd(sum_, comp_, o.comp_);
    any_ = any_ || o.any_;
    all_int_ = all_int_ && o.all_int_;
  }
  Value Finalize() const override {
    if (!any_) return Value::Null();
    const double total = sum_ + comp_;
    if (all_int_) return Value::Int(static_cast<int64_t>(std::llround(total)));
    return Value::Double(total);
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;  // Neumaier error term
  bool any_ = false;
  bool all_int_ = true;
};

class AvgAcc : public AggAccumulator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    NeumaierAdd(sum_, comp_, v.AsDouble());
    ++n_;
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    // GetNumeric matches Value::AsDouble for every type (strings read 0).
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(rows[i])) continue;
      NeumaierAdd(sum_, comp_, col.GetNumeric(rows[i]));
      ++n_;
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const AvgAcc&>(other);
    NeumaierAdd(sum_, comp_, o.sum_);
    NeumaierAdd(sum_, comp_, o.comp_);
    n_ += o.n_;
  }
  Value Finalize() const override {
    if (n_ == 0) return Value::Null();
    return Value::Double((sum_ + comp_) / static_cast<double>(n_));
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;  // Neumaier error term
  int64_t n_ = 0;
};

class MinMaxAcc : public AggAccumulator {
 public:
  explicit MinMaxAcc(bool is_min) : is_min_(is_min) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    if (!any_) {
      best_ = v;
      any_ = true;
      return;
    }
    int c = v.Compare(best_);
    if ((is_min_ && c < 0) || (!is_min_ && c > 0)) best_ = v;
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    // Scan for the batch-local extremum in a typed loop, then merge it via
    // Add so cross-batch state keeps the row-at-a-time semantics. Strict
    // comparisons keep the first-seen value on ties and NaNs, like Compare.
    switch (col.type()) {
      case TypeId::kInt64: {
        bool found = false;
        int64_t best = 0;
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          const int64_t x = col.GetInt(rows[i]);
          if (!found || (is_min_ ? x < best : x > best)) {
            best = x;
            found = true;
          }
        }
        if (found) Add(Value::Int(best));
        break;
      }
      case TypeId::kDouble: {
        bool found = false;
        double best = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          const double x = col.GetDouble(rows[i]);
          if (!found || (is_min_ ? x < best : x > best)) {
            best = x;
            found = true;
          }
        }
        if (found) Add(Value::Double(best));
        break;
      }
      case TypeId::kString: {
        const std::string* best = nullptr;
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(rows[i])) continue;
          const std::string& x = col.GetString(rows[i]);
          if (best == nullptr ||
              (is_min_ ? x.compare(*best) < 0 : x.compare(*best) > 0)) {
            best = &x;
          }
        }
        if (best != nullptr) Add(Value::String(*best));
        break;
      }
      default:
        AggAccumulator::AddBatch(col, rows, n);
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const MinMaxAcc&>(other);
    // Add keeps the first-seen value on ties; merging in morsel order keeps
    // that "first in row order" tie-break.
    if (o.any_) Add(o.best_);
  }
  Value Finalize() const override { return any_ ? best_ : Value::Null(); }

 private:
  bool is_min_;
  bool any_ = false;
  Value best_;
};

/// Welford online variance; finalizes to sample variance or stddev.
class VarAcc : public AggAccumulator {
 public:
  explicit VarAcc(bool stddev) : stddev_(stddev) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    double x = v.AsDouble();
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(rows[i])) continue;
      const double x = col.GetNumeric(rows[i]);
      ++n_;
      const double d = x - mean_;
      mean_ += d / static_cast<double>(n_);
      m2_ += d * (x - mean_);
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Chan et al.'s pairwise update of Welford state. Algebraically equal to
    // the sequential recurrence (rounding can differ in the last ulps); the
    // planner applies the same morsel decomposition and merge order at every
    // thread count, so var/stddev are bit-identical across 1..N threads.
    const auto& o = static_cast<const VarAcc&>(other);
    if (o.n_ == 0) return;
    if (n_ == 0) {
      n_ = o.n_;
      mean_ = o.mean_;
      m2_ = o.m2_;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    m2_ += o.m2_ + delta * delta * (na * nb / total);
    mean_ += delta * (nb / total);
    n_ += o.n_;
  }
  Value Finalize() const override {
    if (n_ < 2) return Value::Null();
    double var = m2_ / static_cast<double>(n_ - 1);
    return Value::Double(stddev_ ? std::sqrt(var) : var);
  }

 private:
  bool stddev_;
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact quantile over collected values (sorting at finalize). This is the
/// engine's `quantile(x, p)` / `median(x)` / `approx_median(x)`; like
/// Redshift's percentile functions it needs all qualifying values (a full
/// scan when run over a base table).
class QuantileAcc : public AggAccumulator {
 public:
  explicit QuantileAcc(double p) : p_(p) {}
  void Add(const Value& v) override {
    if (!v.is_null()) xs_.push_back(v.AsDouble());
  }
  void AddBatch(const Column& col, const uint32_t* rows, size_t n) override {
    xs_.reserve(xs_.size() + n);
    for (size_t i = 0; i < n; ++i) {
      if (!col.IsNull(rows[i])) xs_.push_back(col.GetNumeric(rows[i]));
    }
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Concatenating morsel partials in morsel order reassembles the exact
    // row-order value sequence, so the sorted quantile is bit-identical to
    // the serial computation.
    const auto& o = static_cast<const QuantileAcc&>(other);
    xs_.insert(xs_.end(), o.xs_.begin(), o.xs_.end());
  }
  Value Finalize() const override {
    if (xs_.empty()) return Value::Null();
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    double idx = p_ * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return Value::Double(sorted[lo] * (1 - frac) + sorted[hi] * frac);
  }

 private:
  double p_;
  std::vector<double> xs_;
};

/// HyperLogLog-based approximate distinct count (Impala's ndv analogue).
class NdvAcc : public AggAccumulator {
 public:
  void Add(const Value& v) override {
    if (!v.is_null()) hll_.AddHash(HashValue(v));
  }
  bool Mergeable() const override { return true; }
  void Merge(const AggAccumulator& other) override {
    // Register-wise max: exact regardless of insertion order.
    hll_.Merge(static_cast<const NdvAcc&>(other).hll_);
  }
  Value Finalize() const override {
    return Value::Int(static_cast<int64_t>(std::llround(hll_.Estimate())));
  }

 private:
  HyperLogLog hll_;
};

// ---------------------------------------------------- flat SoA accumulators
//
// One class per scatterable aggregate, each mirroring its object-path
// counterpart above value for value: the same per-row recurrence in the same
// row order, the same per-call batch semantics, the same merge algebra.
// Group state lives in typed lane arrays indexed by gid; AddScatter is one
// pass over a batch column, no per-group heap objects, no per-group
// selection vectors.

class FlatCountAgg : public FlatAggregator {
 public:
  explicit FlatCountAgg(bool star) : star_(star) {}
  void ResizeGroups(size_t n) override { counts_.resize(n, 0); }
  void AddScatter(const Column* col, size_t base, const uint32_t* gids,
                  size_t n) override {
    if (star_ || col == nullptr) {
      for (size_t k = 0; k < n; ++k) ++counts_[gids[k]];
      return;
    }
    for (size_t k = 0; k < n; ++k) {
      if (!col->IsNull(base + k)) ++counts_[gids[k]];
    }
  }
  void AddScatterSelected(const Column* col, size_t base, const uint32_t* rows,
                          const uint32_t* gids, size_t n) override {
    if (star_ || col == nullptr) {
      for (size_t k = 0; k < n; ++k) ++counts_[gids[k]];
      return;
    }
    for (size_t k = 0; k < n; ++k) {
      if (!col->IsNull(base + rows[k])) ++counts_[gids[k]];
    }
  }
  void MergeGroup(const FlatAggregator& other, uint32_t dst,
                  uint32_t src) override {
    counts_[dst] += static_cast<const FlatCountAgg&>(other).counts_[src];
  }
  void CopyGroup(const FlatAggregator& other, uint32_t dst,
                 uint32_t src) override {
    counts_[dst] = static_cast<const FlatCountAgg&>(other).counts_[src];
  }
  Value FinalizeGroup(uint32_t g) const override {
    return Value::Int(counts_[g]);
  }

 private:
  bool star_;
  std::vector<int64_t> counts_;
};

/// SUM via the scatter-sum kernel: per-gid (sum, comp) Neumaier lanes plus
/// the any-value and saw-non-Int64 flags SumAcc tracks.
class FlatSumAgg : public FlatAggregator {
 public:
  void ResizeGroups(size_t n) override {
    sums_.resize(n, 0.0);
    comps_.resize(n, 0.0);
    any_.resize(n, 0);
    nonint_.resize(n, 0);
  }
  void AddScatter(const Column* col, size_t base, const uint32_t* gids,
                  size_t n) override {
    Scatter(col, base, nullptr, gids, n);
  }
  void AddScatterSelected(const Column* col, size_t base, const uint32_t* rows,
                          const uint32_t* gids, size_t n) override {
    Scatter(col, base, rows, gids, n);
  }
  void MergeGroup(const FlatAggregator& other, uint32_t dst,
                  uint32_t src) override {
    const auto& o = static_cast<const FlatSumAgg&>(other);
    NeumaierAdd(sums_[dst], comps_[dst], o.sums_[src]);
    NeumaierAdd(sums_[dst], comps_[dst], o.comps_[src]);
    any_[dst] |= o.any_[src];
    nonint_[dst] |= o.nonint_[src];
  }
  void CopyGroup(const FlatAggregator& other, uint32_t dst,
                 uint32_t src) override {
    const auto& o = static_cast<const FlatSumAgg&>(other);
    sums_[dst] = o.sums_[src];
    comps_[dst] = o.comps_[src];
    any_[dst] = o.any_[src];
    nonint_[dst] = o.nonint_[src];
  }
  Value FinalizeGroup(uint32_t g) const override {
    if (!any_[g]) return Value::Null();
    const double total = sums_[g] + comps_[g];
    if (!nonint_[g]) {
      return Value::Int(static_cast<int64_t>(std::llround(total)));
    }
    return Value::Double(total);
  }

 private:
  void Scatter(const Column* col, size_t base, const uint32_t* rows,
               const uint32_t* gids, size_t n) {
    const uint8_t* nulls = col->NullData();
    if (nulls != nullptr) nulls += base;
    switch (col->type()) {
      case TypeId::kInt64:
        kernels::Ops().scatter_sum_i64(col->IntData() + base, nulls, rows,
                                       gids, n, sums_.data(), comps_.data(),
                                       any_.data(), nullptr);
        return;
      case TypeId::kDouble: {
        kernels::Ops().scatter_sum_f64(col->DoubleData() + base, nulls, rows,
                                       gids, n, sums_.data(), comps_.data(),
                                       any_.data(), nullptr);
        // SumAcc flips all_int_ per non-null double it adds; mark the same
        // groups here (cheap second pass — the kernel carries one flag).
        for (size_t k = 0; k < n; ++k) {
          const size_t r = rows == nullptr ? k : rows[k];
          if (nulls == nullptr || nulls[r] == 0) nonint_[gids[k]] = 1;
        }
        return;
      }
      default:
        for (size_t k = 0; k < n; ++k) {
          const size_t r = base + (rows == nullptr ? k : rows[k]);
          const Value v = col->Get(r);
          if (v.is_null()) continue;
          const uint32_t g = gids[k];
          any_[g] = 1;
          if (v.type() != TypeId::kInt64) nonint_[g] = 1;
          NeumaierAdd(sums_[g], comps_[g], v.AsDouble());
        }
    }
  }

  std::vector<double> sums_;
  std::vector<double> comps_;
  std::vector<uint8_t> any_;
  std::vector<uint8_t> nonint_;  // saw a non-Int64 value (inverse of all_int_)
};

/// AVG: Neumaier (sum, comp) lanes plus the non-null count. AvgAcc adds
/// GetNumeric for every column type; Int64/Bool lanes hit the i64 kernel
/// (static_cast<double> of the raw storage — the same value GetNumeric
/// reads), Double lanes the f64 kernel, everything else the generic loop.
class FlatAvgAgg : public FlatAggregator {
 public:
  void ResizeGroups(size_t n) override {
    sums_.resize(n, 0.0);
    comps_.resize(n, 0.0);
    ns_.resize(n, 0);
  }
  void AddScatter(const Column* col, size_t base, const uint32_t* gids,
                  size_t n) override {
    Scatter(col, base, nullptr, gids, n);
  }
  void AddScatterSelected(const Column* col, size_t base, const uint32_t* rows,
                          const uint32_t* gids, size_t n) override {
    Scatter(col, base, rows, gids, n);
  }
  void MergeGroup(const FlatAggregator& other, uint32_t dst,
                  uint32_t src) override {
    const auto& o = static_cast<const FlatAvgAgg&>(other);
    NeumaierAdd(sums_[dst], comps_[dst], o.sums_[src]);
    NeumaierAdd(sums_[dst], comps_[dst], o.comps_[src]);
    ns_[dst] += o.ns_[src];
  }
  void CopyGroup(const FlatAggregator& other, uint32_t dst,
                 uint32_t src) override {
    const auto& o = static_cast<const FlatAvgAgg&>(other);
    sums_[dst] = o.sums_[src];
    comps_[dst] = o.comps_[src];
    ns_[dst] = o.ns_[src];
  }
  Value FinalizeGroup(uint32_t g) const override {
    if (ns_[g] == 0) return Value::Null();
    return Value::Double((sums_[g] + comps_[g]) / static_cast<double>(ns_[g]));
  }

 private:
  void Scatter(const Column* col, size_t base, const uint32_t* rows,
               const uint32_t* gids, size_t n) {
    const uint8_t* nulls = col->NullData();
    if (nulls != nullptr) nulls += base;
    switch (col->type()) {
      case TypeId::kBool:
      case TypeId::kInt64:
        kernels::Ops().scatter_sum_i64(col->IntData() + base, nulls, rows,
                                       gids, n, sums_.data(), comps_.data(),
                                       nullptr, ns_.data());
        return;
      case TypeId::kDouble:
        kernels::Ops().scatter_sum_f64(col->DoubleData() + base, nulls, rows,
                                       gids, n, sums_.data(), comps_.data(),
                                       nullptr, ns_.data());
        return;
      default:
        for (size_t k = 0; k < n; ++k) {
          const size_t r = base + (rows == nullptr ? k : rows[k]);
          if (col->IsNull(r)) continue;
          const uint32_t g = gids[k];
          NeumaierAdd(sums_[g], comps_[g], col->GetNumeric(r));
          ++ns_[g];
        }
    }
  }

  std::vector<double> sums_;
  std::vector<double> comps_;
  std::vector<int64_t> ns_;
};

/// MIN/MAX. One AddScatter call is one reference AddBatch: each touched
/// group's batch-local extremum is found with the same strict typed
/// comparisons MinMaxAcc::AddBatch uses, then folded ONCE through the Add
/// recurrence — NOT folded row by row, which would diverge on NaNs
/// (Value::Compare buckets NaN as equal, so a NaN-then-smaller batch keeps
/// the pre-batch best under batch semantics but takes the smaller value
/// under row folding). Epoch-stamped scratch lanes avoid re-clearing
/// per-group state on every call.
class FlatMinMaxAgg : public FlatAggregator {
 public:
  explicit FlatMinMaxAgg(bool is_min) : is_min_(is_min) {}
  void ResizeGroups(size_t n) override {
    best_.resize(n);
    any_.resize(n, 0);
    epoch_.resize(n, 0);
  }
  void AddScatter(const Column* col, size_t base, const uint32_t* gids,
                  size_t n) override {
    Scatter(col, base, nullptr, gids, n);
  }
  void AddScatterSelected(const Column* col, size_t base, const uint32_t* rows,
                          const uint32_t* gids, size_t n) override {
    Scatter(col, base, rows, gids, n);
  }
  void MergeGroup(const FlatAggregator& other, uint32_t dst,
                  uint32_t src) override {
    const auto& o = static_cast<const FlatMinMaxAgg&>(other);
    if (o.any_[src]) Fold(dst, o.best_[src]);
  }
  void CopyGroup(const FlatAggregator& other, uint32_t dst,
                 uint32_t src) override {
    const auto& o = static_cast<const FlatMinMaxAgg&>(other);
    best_[dst] = o.best_[src];
    any_[dst] = o.any_[src];
  }
  Value FinalizeGroup(uint32_t g) const override {
    return any_[g] ? best_[g] : Value::Null();
  }

 private:
  /// MinMaxAcc::Add's exact recurrence (first-seen kept on ties and NaNs).
  void Fold(uint32_t g, const Value& v) {
    if (!any_[g]) {
      best_[g] = v;
      any_[g] = 1;
      return;
    }
    const int c = v.Compare(best_[g]);
    if ((is_min_ && c < 0) || (!is_min_ && c > 0)) best_[g] = v;
  }

  /// First touch of group g this call; stamps it and queues the fold.
  bool Touch(uint32_t g) {
    if (epoch_[g] == cur_epoch_) return false;
    epoch_[g] = cur_epoch_;
    touched_.push_back(g);
    return true;
  }

  void Scatter(const Column* col, size_t base, const uint32_t* rows,
               const uint32_t* gids, size_t n) {
    ++cur_epoch_;
    touched_.clear();
    switch (col->type()) {
      case TypeId::kInt64: {
        if (batch_i64_.size() < best_.size()) batch_i64_.resize(best_.size());
        for (size_t k = 0; k < n; ++k) {
          const size_t r = base + (rows == nullptr ? k : rows[k]);
          if (col->IsNull(r)) continue;
          const int64_t x = col->GetInt(r);
          const uint32_t g = gids[k];
          if (Touch(g) || (is_min_ ? x < batch_i64_[g] : x > batch_i64_[g])) {
            batch_i64_[g] = x;
          }
        }
        for (uint32_t g : touched_) Fold(g, Value::Int(batch_i64_[g]));
        return;
      }
      case TypeId::kDouble: {
        if (batch_f64_.size() < best_.size()) batch_f64_.resize(best_.size());
        for (size_t k = 0; k < n; ++k) {
          const size_t r = base + (rows == nullptr ? k : rows[k]);
          if (col->IsNull(r)) continue;
          const double x = col->GetDouble(r);
          const uint32_t g = gids[k];
          if (Touch(g) || (is_min_ ? x < batch_f64_[g] : x > batch_f64_[g])) {
            batch_f64_[g] = x;
          }
        }
        for (uint32_t g : touched_) Fold(g, Value::Double(batch_f64_[g]));
        return;
      }
      case TypeId::kString: {
        if (batch_str_.size() < best_.size()) batch_str_.resize(best_.size());
        for (size_t k = 0; k < n; ++k) {
          const size_t r = base + (rows == nullptr ? k : rows[k]);
          if (col->IsNull(r)) continue;
          const std::string& x = col->GetString(r);
          const uint32_t g = gids[k];
          if (Touch(g) || (is_min_ ? x.compare(*batch_str_[g]) < 0
                                   : x.compare(*batch_str_[g]) > 0)) {
            batch_str_[g] = &x;
          }
        }
        for (uint32_t g : touched_) Fold(g, Value::String(*batch_str_[g]));
        return;
      }
      default:
        // MinMaxAcc::AddBatch falls back to row-at-a-time Add here; so do we.
        for (size_t k = 0; k < n; ++k) {
          const size_t r = base + (rows == nullptr ? k : rows[k]);
          const Value v = col->Get(r);
          if (!v.is_null()) Fold(gids[k], v);
        }
    }
  }

  bool is_min_;
  std::vector<Value> best_;
  std::vector<uint8_t> any_;
  // Per-call scratch: epoch stamp + batch-local extremum lanes.
  std::vector<uint64_t> epoch_;
  uint64_t cur_epoch_ = 0;
  std::vector<uint32_t> touched_;
  std::vector<int64_t> batch_i64_;
  std::vector<double> batch_f64_;
  std::vector<const std::string*> batch_str_;
};

/// VAR/STDDEV: Welford (n, mean, m2) lanes, Chan pairwise merge — the exact
/// recurrences of VarAcc in the same row order.
class FlatVarAgg : public FlatAggregator {
 public:
  explicit FlatVarAgg(bool stddev) : stddev_(stddev) {}
  void ResizeGroups(size_t n) override {
    ns_.resize(n, 0);
    means_.resize(n, 0.0);
    m2s_.resize(n, 0.0);
  }
  void AddScatter(const Column* col, size_t base, const uint32_t* gids,
                  size_t n) override {
    Scatter(col, base, nullptr, gids, n);
  }
  void AddScatterSelected(const Column* col, size_t base, const uint32_t* rows,
                          const uint32_t* gids, size_t n) override {
    Scatter(col, base, rows, gids, n);
  }
  void MergeGroup(const FlatAggregator& other, uint32_t dst,
                  uint32_t src) override {
    const auto& o = static_cast<const FlatVarAgg&>(other);
    if (o.ns_[src] == 0) return;
    if (ns_[dst] == 0) {
      CopyGroup(other, dst, src);
      return;
    }
    const double na = static_cast<double>(ns_[dst]);
    const double nb = static_cast<double>(o.ns_[src]);
    const double delta = o.means_[src] - means_[dst];
    const double total = na + nb;
    m2s_[dst] += o.m2s_[src] + delta * delta * (na * nb / total);
    means_[dst] += delta * (nb / total);
    ns_[dst] += o.ns_[src];
  }
  void CopyGroup(const FlatAggregator& other, uint32_t dst,
                 uint32_t src) override {
    const auto& o = static_cast<const FlatVarAgg&>(other);
    ns_[dst] = o.ns_[src];
    means_[dst] = o.means_[src];
    m2s_[dst] = o.m2s_[src];
  }
  Value FinalizeGroup(uint32_t g) const override {
    if (ns_[g] < 2) return Value::Null();
    const double var = m2s_[g] / static_cast<double>(ns_[g] - 1);
    return Value::Double(stddev_ ? std::sqrt(var) : var);
  }

 private:
  void Welford(uint32_t g, double x) {
    ++ns_[g];
    const double d = x - means_[g];
    means_[g] += d / static_cast<double>(ns_[g]);
    m2s_[g] += d * (x - means_[g]);
  }
  void Scatter(const Column* col, size_t base, const uint32_t* rows,
               const uint32_t* gids, size_t n) {
    // VarAcc::AddBatch reads GetNumeric per row for every type; the typed
    // lanes below read the raw storage, which is the same value.
    const uint8_t* nulls = col->NullData();
    if (nulls != nullptr) nulls += base;
    switch (col->type()) {
      case TypeId::kBool:
      case TypeId::kInt64: {
        const int64_t* data = col->IntData() + base;
        for (size_t k = 0; k < n; ++k) {
          const size_t r = rows == nullptr ? k : rows[k];
          if (nulls != nullptr && nulls[r] != 0) continue;
          Welford(gids[k], static_cast<double>(data[r]));
        }
        return;
      }
      case TypeId::kDouble: {
        const double* data = col->DoubleData() + base;
        for (size_t k = 0; k < n; ++k) {
          const size_t r = rows == nullptr ? k : rows[k];
          if (nulls != nullptr && nulls[r] != 0) continue;
          Welford(gids[k], data[r]);
        }
        return;
      }
      default:
        for (size_t k = 0; k < n; ++k) {
          const size_t r = base + (rows == nullptr ? k : rows[k]);
          if (col->IsNull(r)) continue;
          Welford(gids[k], col->GetNumeric(r));
        }
    }
  }

  bool stddev_;
  std::vector<int64_t> ns_;
  std::vector<double> means_;
  std::vector<double> m2s_;
};

}  // namespace

Result<std::unique_ptr<AggAccumulator>> CreateAccumulator(const AggSpec& s) {
  if (s.name == "count") {
    if (s.distinct) return std::unique_ptr<AggAccumulator>(new DistinctCountAcc());
    return std::unique_ptr<AggAccumulator>(new CountAcc(s.arg == nullptr));
  }
  if (s.name == "sum") return std::unique_ptr<AggAccumulator>(new SumAcc());
  if (s.name == "avg") return std::unique_ptr<AggAccumulator>(new AvgAcc());
  if (s.name == "min") return std::unique_ptr<AggAccumulator>(new MinMaxAcc(true));
  if (s.name == "max") return std::unique_ptr<AggAccumulator>(new MinMaxAcc(false));
  if (s.name == "var" || s.name == "var_samp" || s.name == "variance") {
    return std::unique_ptr<AggAccumulator>(new VarAcc(false));
  }
  if (s.name == "stddev" || s.name == "stddev_samp") {
    return std::unique_ptr<AggAccumulator>(new VarAcc(true));
  }
  if (s.name == "quantile" || s.name == "percentile") {
    return std::unique_ptr<AggAccumulator>(new QuantileAcc(s.param));
  }
  if (s.name == "median" || s.name == "approx_median") {
    return std::unique_ptr<AggAccumulator>(new QuantileAcc(0.5));
  }
  if (s.name == "ndv" || s.name == "approx_distinct" ||
      s.name == "approx_count_distinct") {
    return std::unique_ptr<AggAccumulator>(new NdvAcc());
  }
  auto uda = AggregateRegistry::Global().Create(s.name);
  if (uda) return uda;
  return Status::Unsupported("unknown aggregate: " + s.name);
}

std::unique_ptr<FlatAggregator> CreateFlatAggregator(const AggSpec& s) {
  if (s.distinct) return nullptr;  // DISTINCT keeps the per-group set path.
  if (s.name == "count") {
    return std::make_unique<FlatCountAgg>(s.arg == nullptr);
  }
  if (s.name == "sum") return std::make_unique<FlatSumAgg>();
  if (s.name == "avg") return std::make_unique<FlatAvgAgg>();
  if (s.name == "min") return std::make_unique<FlatMinMaxAgg>(true);
  if (s.name == "max") return std::make_unique<FlatMinMaxAgg>(false);
  if (s.name == "var" || s.name == "var_samp" || s.name == "variance") {
    return std::make_unique<FlatVarAgg>(false);
  }
  if (s.name == "stddev" || s.name == "stddev_samp") {
    return std::make_unique<FlatVarAgg>(true);
  }
  // quantile/median (sorted-vector), ndv/HLL, and UDAs are not scatterable.
  return nullptr;
}

}  // namespace vdb::engine
