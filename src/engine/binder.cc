#include "engine/binder.h"

#include <algorithm>
#include <cctype>

#include "engine/functions.h"

namespace vdb::engine {

namespace {
std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

void Scope::Add(const std::string& qualifier, const std::string& name) {
  cols_.push_back(Col{ToLower(qualifier), ToLower(name)});
}

Result<int> Scope::Resolve(const std::string& qualifier,
                           const std::string& name) const {
  std::string q = ToLower(qualifier), n = ToLower(name);
  int found = -1;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name != n) continue;
    if (!q.empty() && cols_[i].qualifier != q) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference: " + name);
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound("column not found: " +
                            (q.empty() ? n : q + "." + n));
  }
  return found;
}

std::vector<int> Scope::Expand(const std::string& qualifier) const {
  std::string q = ToLower(qualifier);
  std::vector<int> out;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (q.empty() || cols_[i].qualifier == q) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

Status BindExpr(sql::Expr* e, const Scope& scope) {
  using sql::ExprKind;
  switch (e->kind) {
    case ExprKind::kColumnRef: {
      auto idx = scope.Resolve(e->qualifier, e->name);
      if (!idx.ok()) return idx.status();
      e->bound_column = idx.value();
      return Status::Ok();
    }
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      return Status::Unsupported(
          "subquery must be flattened or pre-evaluated before binding");
    default:
      break;
  }
  for (auto& a : e->args) {
    if (a) VDB_RETURN_IF_ERROR(BindExpr(a.get(), scope));
  }
  for (auto& w : e->case_whens) VDB_RETURN_IF_ERROR(BindExpr(w.get(), scope));
  for (auto& t : e->case_thens) VDB_RETURN_IF_ERROR(BindExpr(t.get(), scope));
  if (e->case_else) VDB_RETURN_IF_ERROR(BindExpr(e->case_else.get(), scope));
  for (auto& p : e->partition_by) {
    VDB_RETURN_IF_ERROR(BindExpr(p.get(), scope));
  }
  return Status::Ok();
}

bool ContainsAggregate(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kFunction && !e.is_window &&
      IsAggregateFunction(e.name)) {
    return true;
  }
  for (const auto& a : e.args) {
    if (a && ContainsAggregate(*a)) return true;
  }
  for (const auto& w : e.case_whens) {
    if (ContainsAggregate(*w)) return true;
  }
  for (const auto& t : e.case_thens) {
    if (ContainsAggregate(*t)) return true;
  }
  if (e.case_else && ContainsAggregate(*e.case_else)) return true;
  for (const auto& p : e.partition_by) {
    if (ContainsAggregate(*p)) return true;
  }
  return false;
}

bool ContainsWindow(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kFunction && e.is_window) return true;
  for (const auto& a : e.args) {
    if (a && ContainsWindow(*a)) return true;
  }
  for (const auto& w : e.case_whens) {
    if (ContainsWindow(*w)) return true;
  }
  for (const auto& t : e.case_thens) {
    if (ContainsWindow(*t)) return true;
  }
  if (e.case_else && ContainsWindow(*e.case_else)) return true;
  return false;
}

}  // namespace vdb::engine
