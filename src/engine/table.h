// In-memory column-store table.

#ifndef VDB_ENGINE_TABLE_H_
#define VDB_ENGINE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/column.h"

namespace vdb::engine {

/// A selection vector: physical row indices (ascending for filters, arbitrary
/// for gathers) into a table. The vectorized paths support row counts up to
/// 2^32 - 2 (0xFFFFFFFF is a join null-extension sentinel); joins reject
/// larger inputs.
using SelVector = std::vector<uint32_t>;

/// A table: named columns with equal row counts. Column names are stored
/// lowercase; lookup is case-insensitive.
class Table {
 public:
  Table() = default;

  /// Adds a column (must be called before rows are appended, or with a column
  /// already holding num_rows() entries).
  void AddColumn(const std::string& name, TypeId type);
  void AddColumn(const std::string& name, Column col);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const std::string& column_name(size_t i) const { return names_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Case-insensitive lookup; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Appends one row; `row` must have num_columns() values.
  void AppendRow(const std::vector<Value>& row);

  /// Copies row `src_row` of `src` (same schema arity) into this table.
  void AppendRowFrom(const Table& src, size_t src_row);

  /// Bulk-copies the rows selected by `sel` from `src` (same schema arity),
  /// in selection order. The vectorized executor's materialization path.
  /// With num_threads > 1 the columns are gathered in parallel (each column
  /// is independent, so the result is identical to the serial gather).
  void AppendSelected(const Table& src, const SelVector& sel,
                      int num_threads = 1);

  /// Bulk-copies rows [start, start + count) of `src` (same schema arity).
  void AppendRange(const Table& src, size_t start, size_t count);

  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// Rough heap footprint in bytes (used by the I/O-cost model in benches).
  size_t ApproxBytes() const;

  std::shared_ptr<Table> CloneSchema() const;

  /// Removes all rows, keeping the schema.
  void ClearRows();

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace vdb::engine

#endif  // VDB_ENGINE_TABLE_H_
