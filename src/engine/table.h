// In-memory column-store table.

#ifndef VDB_ENGINE_TABLE_H_
#define VDB_ENGINE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/status.h"
#include "engine/column.h"

namespace vdb::engine {

/// A selection vector: physical row indices (ascending for filters, arbitrary
/// for gathers) into a table. The vectorized paths support row counts up to
/// 2^32 - 2 (0xFFFFFFFF is a join null-extension sentinel); joins reject
/// larger inputs.
using SelVector = std::vector<uint32_t>;

/// A table: named columns with equal row counts. Column names are stored
/// lowercase; lookup is case-insensitive.
class Table {
 public:
  Table() = default;

  /// Adds a column (must be called before rows are appended, or with a column
  /// already holding num_rows() entries).
  void AddColumn(const std::string& name, TypeId type);
  void AddColumn(const std::string& name, Column col);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const std::string& column_name(size_t i) const { return names_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Case-insensitive lookup; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Appends one row; `row` must have num_columns() values.
  void AppendRow(const std::vector<Value>& row);

  /// Copies row `src_row` of `src` (same schema arity) into this table.
  void AppendRowFrom(const Table& src, size_t src_row);

  /// Bulk-copies the rows selected by `sel` from `src` (same schema arity),
  /// in selection order. The vectorized executor's materialization path.
  /// With num_threads > 1 the columns are gathered in parallel (each column
  /// is independent, so the result is identical to the serial gather).
  void AppendSelected(const Table& src, const SelVector& sel,
                      int num_threads = 1);

  /// Bulk-copies rows [start, start + count) of `src` (same schema arity).
  void AppendRange(const Table& src, size_t start, size_t count);

  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// Rough heap footprint in bytes (used by the I/O-cost model in benches).
  size_t ApproxBytes() const;

  std::shared_ptr<Table> CloneSchema() const;

  /// Removes all rows, keeping the schema (and column capacity, so cleared
  /// scratch tables reuse their buffers).
  void ClearRows();

  /// Restores the row-count invariant after a caller has appended directly
  /// into the columns (the combined-gather path writes columns in parallel);
  /// every column must hold exactly `n` rows.
  void SetRowCount(size_t n) { num_rows_ = n; }

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

/// A borrowed, late-materialized set of rows of one table: either the
/// contiguous range [begin, end) (identity/range fast path, no selection
/// vector allocated) or an explicit selection vector of physical row
/// indices. Operators pass RowViews downstream instead of gathering
/// survivors into fresh tables after every step; the single full-width
/// gather happens at the result boundary (or where an operator genuinely
/// needs contiguous storage, e.g. a join build or window frames).
///
/// Views always hold physical row indices — composing a view over a view
/// flattens immediately, so stacking never chains indirections.
class RowView {
 public:
  /// Selection vectors are uint32_t; 0xFFFFFFFF is the join null-extension
  /// sentinel, so views address at most 2^32 - 2 rows.
  static constexpr size_t kMaxRows = 0xFFFFFFFEu;

  RowView() = default;

  /// Identity view over the whole table. Errors (rather than silently
  /// truncating uint32_t indices later) when the table exceeds kMaxRows.
  static Result<RowView> All(TablePtr table);

  /// View of the physical rows named by `sel`, in selection order. Validates
  /// that every index addresses a row of `table`.
  static Result<RowView> Select(TablePtr table, SelVector sel);

  const TablePtr& table() const { return table_; }
  size_t num_rows() const { return has_sel_ ? sel_.size() : end_ - begin_; }

  /// True when the view is exactly the whole table in physical order (the
  /// zero-copy fast path: Gather returns the table itself).
  bool is_identity() const {
    return table_ != nullptr && !has_sel_ && begin_ == 0 &&
           end_ == table_->num_rows();
  }

  bool has_selection() const { return has_sel_; }
  const SelVector& selection() const { return sel_; }
  size_t range_begin() const { return begin_; }

  /// Physical row index of view position i.
  uint32_t RowAt(size_t i) const {
    return has_sel_ ? sel_[i] : static_cast<uint32_t>(begin_ + i);
  }

  /// View-of-view composition: `positions` index THIS view's rows; the
  /// result addresses the underlying table directly. Errors on positions
  /// outside [0, num_rows()).
  Result<RowView> Compose(const SelVector& positions) const;

  /// The first min(n, num_rows()) rows of the view (LIMIT).
  RowView Prefix(size_t n) const;

  /// Materializes the viewed rows. Identity views return the underlying
  /// table unchanged (zero-copy — callers who mutate must copy); range and
  /// selection views bulk-gather (column-parallel for num_threads > 1).
  TablePtr Gather(int num_threads = 1) const;

  /// Guard-aware Gather: polls `guard` (site "gather") and pre-charges the
  /// approximate output footprint against the budget (site "gather_alloc")
  /// before materializing. Identity views are zero-copy and charge nothing.
  /// The charge persists — gathered tables live to the end of the statement
  /// (ExecGuard::ResetForStatement reclaims the accounting). With guard ==
  /// nullptr this is exactly Gather().
  Result<TablePtr> GatherGuarded(int num_threads, const ExecGuard* guard) const;

  /// Materializes one column of the view (the projection path's per-column
  /// gather; morsel-parallel chunked gather for large selections).
  Column GatherColumn(const Column& src, int num_threads = 1) const;

 private:
  TablePtr table_;
  bool has_sel_ = false;
  SelVector sel_;             // meaningful when has_sel_
  size_t begin_ = 0, end_ = 0;  // meaningful when !has_sel_
};

/// The two-source counterpart of RowView: a join result that stays a view.
/// Parallel lists of (left_row, right_row) physical index pairs over two
/// borrowed tables, in output order; a right entry of kNullRightRow is a
/// LEFT JOIN null extension. Pair lists let post-join predicates — the ON
/// residual and a pushed-down WHERE — filter candidate pairs BEFORE the one
/// combined materialization, which Gather() performs (column-parallel) at
/// the result boundary: the join-stage form of the gather-once invariant.
class JoinPairView {
 public:
  /// Right-side null-extension sentinel (matches the SelVector contract:
  /// tables address at most 2^32 - 2 rows).
  static constexpr uint32_t kNullRightRow = 0xFFFFFFFFu;

  JoinPairView() = default;
  JoinPairView(TablePtr left, TablePtr right, SelVector lrows, SelVector rrows)
      : left_(std::move(left)),
        right_(std::move(right)),
        lrows_(std::move(lrows)),
        rrows_(std::move(rrows)) {}

  size_t num_pairs() const { return lrows_.size(); }
  const TablePtr& left() const { return left_; }
  const TablePtr& right() const { return right_; }
  const SelVector& lrows() const { return lrows_; }
  const SelVector& rrows() const { return rrows_; }

  /// The single combined (left ++ right) materialization of the surviving
  /// pairs; null extensions emit NULL right columns.
  TablePtr Gather(int num_threads = 1) const;

  /// Guard-aware Gather: polls `guard` (site "gather") and pre-charges the
  /// approximate combined output footprint (site "gather_alloc") before
  /// materializing; the charge persists with the gathered table. With
  /// guard == nullptr this is exactly Gather().
  Result<TablePtr> GatherGuarded(int num_threads, const ExecGuard* guard) const;

 private:
  TablePtr left_, right_;
  SelVector lrows_, rrows_;
};

/// Gathers the combined (left ++ right) schema for `count` parallel row
/// pairs into `*out`: existing rows are cleared but column storage is kept,
/// so a streaming caller (the chunked residual/WHERE pair filter) reuses one
/// scratch table's buffers across every chunk; on an empty `*out` the schema
/// is created first. Right rows equal to JoinPairView::kNullRightRow emit
/// NULLs; sentinel-free spans bulk-gather. Column-parallel when num_threads
/// > 1 and the gather is large enough to amortize the fan-out.
///
/// `column_mask` (may be null = all columns), one flag per combined column,
/// restricts the gather to the flagged columns: unflagged columns keep the
/// schema slot but stay EMPTY while the table reports `count` rows, so the
/// caller must only read flagged columns (the predicate-scratch path gathers
/// just the columns the predicate references).
void GatherJoinPairsInto(const Table& left, const uint32_t* lrows,
                         const Table& right, const uint32_t* rrows,
                         size_t count, int num_threads, Table* out,
                         const std::vector<uint8_t>* column_mask = nullptr);

}  // namespace vdb::engine

#endif  // VDB_ENGINE_TABLE_H_
