#include "engine/column.h"

#include <cassert>

#include "engine/kernels/kernels.h"

namespace vdb::engine {

void Column::EnsureNullMask() {
  if (nulls_.empty()) nulls_.assign(size_, 0);
}

void Column::PromoteToDouble() {
  doubles_.reserve(ints_.size());
  for (int64_t v : ints_) doubles_.push_back(static_cast<double>(v));
  ints_.clear();
  ints_.shrink_to_fit();
  type_ = TypeId::kDouble;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case TypeId::kNull: break;
    case TypeId::kBool:
    case TypeId::kInt64: ints_.reserve(n); break;
    case TypeId::kDouble: doubles_.reserve(n); break;
    case TypeId::kString: strings_.reserve(n); break;
  }
}

void Column::Clear() {
  size_ = 0;
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  nulls_.clear();
}

void Column::AppendNull() {
  EnsureNullMask();
  nulls_.push_back(1);
  switch (type_) {
    case TypeId::kNull: break;
    case TypeId::kBool:
    case TypeId::kInt64: ints_.push_back(0); break;
    case TypeId::kDouble: doubles_.push_back(0.0); break;
    case TypeId::kString: strings_.emplace_back(); break;
  }
  ++size_;
}

void Column::AppendInt(int64_t v) {
  if (type_ == TypeId::kNull) {
    // Backfill the slots taken by earlier NULL appends.
    type_ = TypeId::kInt64;
    ints_.assign(size_, 0);
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64: ints_.push_back(v); break;
    case TypeId::kDouble: doubles_.push_back(static_cast<double>(v)); break;
    case TypeId::kString:
      strings_.emplace_back();
      if (nulls_.empty()) nulls_.assign(size_, 0), nulls_.push_back(1);
      else nulls_.back() = 1;
      break;
    case TypeId::kNull: break;
  }
  ++size_;
}

void Column::AppendDouble(double v) {
  if (type_ == TypeId::kNull) {
    type_ = TypeId::kDouble;
    doubles_.assign(size_, 0.0);
  } else if (type_ == TypeId::kInt64 || type_ == TypeId::kBool) {
    PromoteToDouble();
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  switch (type_) {
    case TypeId::kDouble: doubles_.push_back(v); break;
    case TypeId::kString:
      strings_.emplace_back();
      if (nulls_.empty()) nulls_.assign(size_, 0), nulls_.push_back(1);
      else nulls_.back() = 1;
      break;
    default: break;
  }
  ++size_;
}

void Column::AppendString(std::string v) {
  if (type_ == TypeId::kNull) {
    type_ = TypeId::kString;
    strings_.assign(size_, std::string());
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  if (type_ == TypeId::kString) {
    strings_.push_back(std::move(v));
  } else {
    // Type clash: store NULL.
    switch (type_) {
      case TypeId::kBool:
      case TypeId::kInt64: ints_.push_back(0); break;
      case TypeId::kDouble: doubles_.push_back(0.0); break;
      default: break;
    }
    if (nulls_.empty()) nulls_.assign(size_, 0), nulls_.push_back(1);
    else nulls_.back() = 1;
  }
  ++size_;
}

void Column::Append(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull: AppendNull(); break;
    case TypeId::kBool:
    case TypeId::kInt64: AppendInt(v.AsInt()); break;
    case TypeId::kDouble: AppendDouble(v.AsDouble()); break;
    case TypeId::kString: AppendString(v.AsString()); break;
  }
}

Value Column::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case TypeId::kNull: return Value::Null();
    case TypeId::kBool: return Value::Bool(ints_[row] != 0);
    case TypeId::kInt64: return Value::Int(ints_[row]);
    case TypeId::kDouble: return Value::Double(doubles_[row]);
    case TypeId::kString: return Value::String(strings_[row]);
  }
  return Value::Null();
}

void Column::AppendRange(const Column& src, size_t start, size_t count) {
  if (count == 0) return;
  // Adopt the source type wholesale when this column is still untyped and
  // empty; otherwise bulk-copy only applies to exactly matching types.
  if (type_ == TypeId::kNull && size_ == 0 && src.type_ != TypeId::kNull) {
    type_ = src.type_;
  }
  const bool bulk = type_ == src.type_;
  if (!bulk) {
    for (size_t i = 0; i < count; ++i) Append(src.Get(start + i));
    return;
  }
  const auto off = static_cast<std::ptrdiff_t>(start);
  const auto cnt = static_cast<std::ptrdiff_t>(count);
  switch (type_) {
    case TypeId::kNull: break;
    case TypeId::kBool:
    case TypeId::kInt64:
      ints_.insert(ints_.end(), src.ints_.begin() + off,
                   src.ints_.begin() + off + cnt);
      break;
    case TypeId::kDouble:
      doubles_.insert(doubles_.end(), src.doubles_.begin() + off,
                      src.doubles_.begin() + off + cnt);
      break;
    case TypeId::kString:
      strings_.insert(strings_.end(), src.strings_.begin() + off,
                      src.strings_.begin() + off + cnt);
      break;
  }
  const bool src_has_nulls =
      src.type_ == TypeId::kNull || !src.nulls_.empty();
  if (src_has_nulls || !nulls_.empty()) {
    EnsureNullMask();  // backfills zeros for the rows already present
    if (src.nulls_.empty()) {
      nulls_.insert(nulls_.end(), count, src.type_ == TypeId::kNull ? 1 : 0);
    } else {
      nulls_.insert(nulls_.end(), src.nulls_.begin() + off,
                    src.nulls_.begin() + off + cnt);
    }
  }
  size_ += count;
}

void Column::AppendSelected(const Column& src, const uint32_t* rows,
                            size_t count) {
  if (count == 0) return;
  if (type_ == TypeId::kNull && size_ == 0 && src.type_ != TypeId::kNull) {
    type_ = src.type_;
  }
  const bool bulk = type_ == src.type_;
  if (!bulk) {
    for (size_t i = 0; i < count; ++i) Append(src.Get(rows[i]));
    return;
  }
  switch (type_) {
    case TypeId::kNull: break;
    case TypeId::kBool:
    case TypeId::kInt64: {
      size_t base = ints_.size();
      ints_.resize(base + count);
      kernels::Ops().gather_i64(src.ints_.data(), rows, count,
                                ints_.data() + base);
      break;
    }
    case TypeId::kDouble: {
      size_t base = doubles_.size();
      doubles_.resize(base + count);
      kernels::Ops().gather_f64(src.doubles_.data(), rows, count,
                                doubles_.data() + base);
      break;
    }
    case TypeId::kString: {
      strings_.reserve(strings_.size() + count);
      for (size_t i = 0; i < count; ++i) strings_.push_back(src.strings_[rows[i]]);
      break;
    }
  }
  const bool src_has_nulls =
      src.type_ == TypeId::kNull || !src.nulls_.empty();
  if (src_has_nulls || !nulls_.empty()) {
    EnsureNullMask();  // backfills zeros for the rows already present
    size_t base = nulls_.size();
    nulls_.resize(base + count);
    for (size_t i = 0; i < count; ++i) {
      nulls_[base + i] =
          src.nulls_.empty() ? (src.type_ == TypeId::kNull ? 1 : 0)
                             : src.nulls_[rows[i]];
    }
  }
  size_ += count;
}

Column Column::FromData(TypeId type, std::vector<int64_t> ints,
                        std::vector<double> doubles,
                        std::vector<std::string> strings,
                        std::vector<uint8_t> nulls) {
  Column c(type);
  switch (type) {
    case TypeId::kNull: c.size_ = nulls.size(); break;
    case TypeId::kBool:
    case TypeId::kInt64: c.size_ = ints.size(); break;
    case TypeId::kDouble: c.size_ = doubles.size(); break;
    case TypeId::kString: c.size_ = strings.size(); break;
  }
  assert(nulls.empty() || nulls.size() == c.size_);
  c.ints_ = std::move(ints);
  c.doubles_ = std::move(doubles);
  c.strings_ = std::move(strings);
  c.nulls_ = std::move(nulls);
  return c;
}

Column Column::ConcatChunks(std::vector<Column> chunks) {
  if (chunks.size() == 1) return std::move(chunks[0]);
  // Unify the chunk types. kNull (a chunk whose every value was NULL) is the
  // identity: it concatenates into any type as NULLs.
  TypeId t = TypeId::kNull;
  bool uniform = true;
  size_t total = 0;
  for (const Column& c : chunks) {
    total += c.size();
    if (c.type() == TypeId::kNull) continue;
    if (t == TypeId::kNull) {
      t = c.type();
    } else if (c.type() != t) {
      uniform = false;
    }
  }
  if (uniform) {
    Column out(t);
    out.Reserve(total);
    for (const Column& c : chunks) out.AppendRange(c, 0, c.size());
    return out;
  }
  // Chunk types differ (data-dependent inference, e.g. a CASE whose branches
  // are uniform within one morsel but not another): per-value Append applies
  // the same promotion/coercion sequence the whole-batch boxed path would.
  Column out;
  for (const Column& c : chunks) {
    for (size_t k = 0; k < c.size(); ++k) out.Append(c.Get(k));
  }
  return out;
}

double Column::GetNumeric(size_t row) const {
  if (IsNull(row)) return 0.0;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64: return static_cast<double>(ints_[row]);
    case TypeId::kDouble: return doubles_[row];
    default: return 0.0;
  }
}

}  // namespace vdb::engine
