#include "engine/column.h"

namespace vdb::engine {

void Column::EnsureNullMask() {
  if (nulls_.empty()) nulls_.assign(size_, 0);
}

void Column::PromoteToDouble() {
  doubles_.reserve(ints_.size());
  for (int64_t v : ints_) doubles_.push_back(static_cast<double>(v));
  ints_.clear();
  ints_.shrink_to_fit();
  type_ = TypeId::kDouble;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case TypeId::kNull: break;
    case TypeId::kBool:
    case TypeId::kInt64: ints_.reserve(n); break;
    case TypeId::kDouble: doubles_.reserve(n); break;
    case TypeId::kString: strings_.reserve(n); break;
  }
}

void Column::Clear() {
  size_ = 0;
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  nulls_.clear();
}

void Column::AppendNull() {
  EnsureNullMask();
  nulls_.push_back(1);
  switch (type_) {
    case TypeId::kNull: break;
    case TypeId::kBool:
    case TypeId::kInt64: ints_.push_back(0); break;
    case TypeId::kDouble: doubles_.push_back(0.0); break;
    case TypeId::kString: strings_.emplace_back(); break;
  }
  ++size_;
}

void Column::AppendInt(int64_t v) {
  if (type_ == TypeId::kNull) {
    // Backfill the slots taken by earlier NULL appends.
    type_ = TypeId::kInt64;
    ints_.assign(size_, 0);
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64: ints_.push_back(v); break;
    case TypeId::kDouble: doubles_.push_back(static_cast<double>(v)); break;
    case TypeId::kString:
      strings_.emplace_back();
      if (nulls_.empty()) nulls_.assign(size_, 0), nulls_.push_back(1);
      else nulls_.back() = 1;
      break;
    case TypeId::kNull: break;
  }
  ++size_;
}

void Column::AppendDouble(double v) {
  if (type_ == TypeId::kNull) {
    type_ = TypeId::kDouble;
    doubles_.assign(size_, 0.0);
  } else if (type_ == TypeId::kInt64 || type_ == TypeId::kBool) {
    PromoteToDouble();
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  switch (type_) {
    case TypeId::kDouble: doubles_.push_back(v); break;
    case TypeId::kString:
      strings_.emplace_back();
      if (nulls_.empty()) nulls_.assign(size_, 0), nulls_.push_back(1);
      else nulls_.back() = 1;
      break;
    default: break;
  }
  ++size_;
}

void Column::AppendString(std::string v) {
  if (type_ == TypeId::kNull) {
    type_ = TypeId::kString;
    strings_.assign(size_, std::string());
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  if (type_ == TypeId::kString) {
    strings_.push_back(std::move(v));
  } else {
    // Type clash: store NULL.
    switch (type_) {
      case TypeId::kBool:
      case TypeId::kInt64: ints_.push_back(0); break;
      case TypeId::kDouble: doubles_.push_back(0.0); break;
      default: break;
    }
    if (nulls_.empty()) nulls_.assign(size_, 0), nulls_.push_back(1);
    else nulls_.back() = 1;
  }
  ++size_;
}

void Column::Append(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull: AppendNull(); break;
    case TypeId::kBool:
    case TypeId::kInt64: AppendInt(v.AsInt()); break;
    case TypeId::kDouble: AppendDouble(v.AsDouble()); break;
    case TypeId::kString: AppendString(v.AsString()); break;
  }
}

Value Column::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case TypeId::kNull: return Value::Null();
    case TypeId::kBool: return Value::Bool(ints_[row] != 0);
    case TypeId::kInt64: return Value::Int(ints_[row]);
    case TypeId::kDouble: return Value::Double(doubles_[row]);
    case TypeId::kString: return Value::String(strings_[row]);
  }
  return Value::Null();
}

double Column::GetNumeric(size_t row) const {
  if (IsNull(row)) return 0.0;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64: return static_cast<double>(ints_[row]);
    case TypeId::kDouble: return doubles_[row];
    default: return 0.0;
  }
}

}  // namespace vdb::engine
