#include "engine/join_table.h"

#include <algorithm>
#include <atomic>

namespace vdb::engine {

namespace {

/// Smallest power of two >= n (n >= 1).
uint64_t NextPow2(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Slot capacity for `count` keyed rows: power of two, load factor <= 2/3.
size_t SlotCapacity(size_t count) {
  return static_cast<size_t>(NextPow2(std::max<uint64_t>(8, count + count / 2)));
}

/// -1 = automatic (size threshold below), 0 = forced off, 1 = forced on.
// Test hook: atomic (relaxed) — tests write between queries while pool
// workers may still read; see docs/INVARIANTS.md (test-hook contract).
std::atomic<int> g_join_bloom_mode{-1};

/// Below this many keyed build rows the Bloom pre-probe is pure overhead:
/// the whole slot array already fits in L1/L2 and probes are cheap.
constexpr size_t kBloomAutoThreshold = 16384;

}  // namespace

void SetJoinBloomForTest(int mode) {
  g_join_bloom_mode.store(mode, std::memory_order_relaxed);
}

bool JoinBloomForced() {
  return g_join_bloom_mode.load(std::memory_order_relaxed) == 1;
}

Status JoinBuildTable::PlanPartitions(const uint64_t* hashes,
                                      const uint8_t* any_null, size_t num_rows,
                                      int num_threads,
                                      std::vector<uint32_t>* part_rows) {
  // Partition only when the parallel build can win: several morsels of input
  // and more than one thread. ~4 partitions per thread smooths skew without
  // shrinking partitions below cache-friendly sizes; the cap bounds the
  // histogram/prefix bookkeeping.
  int bits = 0;
  if (num_threads > 1 && num_rows > MorselRows()) {
    const uint64_t want =
        NextPow2(std::min<uint64_t>(256, static_cast<uint64_t>(num_threads) * 4));
    while ((1ull << bits) < want) ++bits;
  }
  radix_bits_ = bits;
  const size_t P = size_t{1} << bits;
  parts_.assign(P, Partition{});

  // Blocked Bloom sizing: ~8 bits per keyed row (two test bits per key ->
  // ~6% false-positive rate), rounded up to a power of two, and never fewer
  // words than partitions so each radix partition owns a disjoint word span
  // (the build fills the filter lock-free inside build_partition). The word
  // count depends only on the keyed-row COUNT, and the bit content only on
  // the hashes, so serial and parallel builds produce identical filters.
  auto plan_bloom = [&](size_t keyed) -> Status {
    bloom_.clear();
    bloom_shift_ = 0;
    const int mode = g_join_bloom_mode.load(std::memory_order_relaxed);
    const bool enabled =
        mode == 1 || (mode < 0 && keyed >= kBloomAutoThreshold);
    if (!enabled || keyed == 0) return Status::Ok();
    const uint64_t words =
        NextPow2(std::max<uint64_t>(P, std::max<uint64_t>(2, keyed / 8)));
    VDB_RETURN_IF_ERROR(
        Charge(words * sizeof(uint64_t), "join_build_alloc"));
    int lg = 0;
    while ((1ull << lg) < words) ++lg;
    bloom_shift_ = 64 - lg;
    bloom_.assign(words, 0);
    return Status::Ok();
  };

  if (bits == 0) {
    // Serial reference: one partition listing the non-NULL rows ascending.
    VDB_RETURN_IF_ERROR(GuardCheck(guard_, "join_build"));
    VDB_RETURN_IF_ERROR(
        Charge(num_rows * sizeof(uint32_t), "join_build_alloc"));
    part_rows->clear();
    part_rows->reserve(num_rows);  // vdb-lint: allow(naked-reserve) charged via Charge() above
    for (size_t r = 0; r < num_rows; ++r) {
      if (any_null[r] == 0) part_rows->push_back(static_cast<uint32_t>(r));
    }
    parts_[0].row_begin = 0;
    parts_[0].row_end = static_cast<uint32_t>(part_rows->size());  // vdb-lint: allow(naked-size-narrowing) join inputs rejected above 2^32-2 rows (operators.cc)
    VDB_RETURN_IF_ERROR(plan_bloom(part_rows->size()));
    if (!part_rows->empty()) {
      const size_t cap = SlotCapacity(part_rows->size());
      VDB_RETURN_IF_ERROR(
          Charge(cap * (sizeof(uint64_t) + sizeof(uint32_t)),
                 "join_build_alloc"));
      parts_[0].slot_hash.assign(cap, 0);
      parts_[0].slot_head.assign(parts_[0].slot_hash.size(), kInvalidRow);
    }
    return Status::Ok();
  }

  const int shift = 64 - bits;
  const size_t morsel = MorselRows();

  // Pass 1: per-morsel histogram of non-NULL rows per partition, with the
  // guard polled at every morsel claim.
  auto counts_or = ParallelMorselMapStatus<std::vector<uint32_t>>(
      num_rows, num_threads, guard_, "join_build",
      [&](std::vector<uint32_t>& slot, size_t begin, size_t end) {
        slot.assign(P, 0);
        for (size_t r = begin; r < end; ++r) {
          if (any_null[r] == 0) ++slot[hashes[r] >> shift];
        }
        return Status::Ok();
      });
  if (!counts_or.ok()) return counts_or.status();
  const std::vector<std::vector<uint32_t>>& counts = counts_or.value();

  // Prefix sum partition-major, morsel-minor: partition p's rows occupy one
  // contiguous span, and within it morsel 0's rows precede morsel 1's — so
  // every partition's row list is ascending, which the build relies on for
  // duplicate-chain order.
  const size_t M = counts.size();
  std::vector<std::vector<uint32_t>> offsets(M, std::vector<uint32_t>(P));
  uint32_t total = 0;
  for (size_t p = 0; p < P; ++p) {
    parts_[p].row_begin = total;
    for (size_t m = 0; m < M; ++m) {
      offsets[m][p] = total;
      total += counts[m][p];
    }
    parts_[p].row_end = total;
  }
  VDB_RETURN_IF_ERROR(
      Charge(static_cast<uint64_t>(total) * sizeof(uint32_t),
             "join_build_alloc"));
  part_rows->resize(total);  // vdb-lint: allow(naked-reserve) charged via Charge() above
  VDB_RETURN_IF_ERROR(plan_bloom(total));

  // Pass 2: scatter row indices; every (morsel, partition) cell writes its
  // own precomputed span, so workers never contend.
  VDB_RETURN_IF_ERROR(ThreadPool::Global().ParallelForStatus(
      num_rows, morsel, num_threads, guard_, "join_build",
      [&](size_t m, size_t begin, size_t end) {
        std::vector<uint32_t>& off = offsets[m];
        for (size_t r = begin; r < end; ++r) {
          if (any_null[r] == 0) {
            (*part_rows)[off[hashes[r] >> shift]++] = static_cast<uint32_t>(r);
          }
        }
        return Status::Ok();
      }));

  uint64_t slot_bytes = 0;
  for (size_t p = 0; p < P; ++p) {
    const size_t count = parts_[p].row_end - parts_[p].row_begin;
    if (count == 0) continue;
    slot_bytes += static_cast<uint64_t>(SlotCapacity(count)) *
                  (sizeof(uint64_t) + sizeof(uint32_t));
  }
  VDB_RETURN_IF_ERROR(Charge(slot_bytes, "join_build_alloc"));
  for (size_t p = 0; p < P; ++p) {
    const size_t count = parts_[p].row_end - parts_[p].row_begin;
    if (count == 0) continue;
    parts_[p].slot_hash.assign(SlotCapacity(count), 0);
    parts_[p].slot_head.assign(parts_[p].slot_hash.size(), kInvalidRow);
  }
  return Status::Ok();
}

}  // namespace vdb::engine
