// Morsel-driven parallel execution substrate.
//
// A fixed pool of worker threads executes "morsels" — contiguous row ranges
// of a larger scan — claimed dynamically from a shared atomic counter, so
// fast workers steal work from slow ones. Results are never merged inside
// the pool: callers give every morsel its own output slot and concatenate
// slots in morsel order afterwards, which makes query results deterministic
// regardless of how the OS schedules the workers (and independent of the
// pool size, so a 2-thread and an 8-thread run produce identical output).

#ifndef VDB_COMMON_THREAD_POOL_H_
#define VDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace vdb {

/// Default rows per morsel for parallel scans. Small enough that a 1M-row
/// scan yields ~30 work units (good load balance at 8 threads), large enough
/// that per-morsel batch-evaluation setup cost is amortized.
size_t MorselRows();

/// Test hook: overrides the morsel granularity (0 restores the default).
/// Lets tests exercise morsel-boundary cases (morsel smaller than a batch,
/// row counts not divisible by the morsel size) with small tables.
void SetMorselRowsForTest(size_t rows);

/// A lazily-grown fixed worker pool shared by the whole process. Workers
/// sleep on a condition variable between jobs; a ParallelFor call publishes
/// one job at a time and participates in it from the calling thread.
class ThreadPool {
 public:
  static ThreadPool& Global();

  ~ThreadPool();

  /// Splits [0, total) into ceil(total / morsel_rows) contiguous morsels and
  /// runs body(morsel_index, begin, end) for each, using up to max_threads
  /// threads including the caller. Blocks until every morsel has finished.
  ///
  /// The morsel decomposition depends only on (total, morsel_rows), never on
  /// max_threads or scheduling, so callers that write into per-morsel slots
  /// and merge in index order get bit-deterministic results.
  ///
  /// The body must not throw. Calls from inside a worker (nesting) run all
  /// morsels inline on the calling thread.
  ///
  /// Lock contract (REQUIRES(!mu_)): the caller must NOT hold the pool
  /// mutex — the enqueue path locks mu_ to publish the job and again to
  /// wait for completion, so calling with it held self-deadlocks. Morsel
  /// bodies run with no pool lock held; a body that needs mu_-guarded pool
  /// state is a design error (bodies see only caller-owned slots).
  void ParallelFor(size_t total, size_t morsel_rows, int max_threads,
                   const std::function<void(size_t, size_t, size_t)>& body)
      REQUIRES(!mu_);

  /// ParallelFor with first-error/stop propagation — the fix for the
  /// silent-completion gap where a failing morsel body could not abort the
  /// sweep. The body returns Status; the first non-OK return (or a guard
  /// trip, polled at every morsel claim when `guard` is non-null) raises a
  /// shared stop token that makes unclaimed morsels no-ops. Already-running
  /// morsels finish their current body call — cancellation is cooperative,
  /// never preemptive.
  ///
  /// Returns kOk only when every morsel ran and returned kOk. On failure,
  /// per-morsel statuses are merged in MORSEL order and the first non-OK
  /// one is returned, so a deterministic failure reports the same morsel's
  /// message regardless of thread count or schedule. (When several morsels
  /// fail concurrently before the stop token lands, which subset recorded a
  /// status can vary, but the earliest recorded morsel is always the one
  /// reported.) Skipped morsels record nothing.
  ///
  /// The morsel decomposition is identical to ParallelFor's, and on the
  /// all-OK path the bodies observe nothing of the machinery — results
  /// stay bit-identical to an unguarded ParallelFor.
  Status ParallelForStatus(
      size_t total, size_t morsel_rows, int max_threads,
      const ExecGuard* guard, const char* site,
      const std::function<Status(size_t, size_t, size_t)>& body)
      REQUIRES(!mu_);

 private:
  ThreadPool() = default;

  struct Job;

  void WorkerLoop() REQUIRES(!mu_);
  void EnsureWorkersLocked(size_t n) REQUIRES(mu_);

  Mutex mu_;
  CondVar work_cv_;  // workers: a new job is available
  CondVar done_cv_;  // caller: the current job finished
  Job* job_ GUARDED_BY(mu_) = nullptr;
  uint64_t job_seq_ GUARDED_BY(mu_) = 0;  // bumps per published job
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
};

/// Runs body(i) once per i in [0, count) on up to max_threads threads —
/// the per-partition / per-column fan-out shape (morsel size 1), used by the
/// radix-partitioned join build and column-parallel gathers. Iterations must
/// touch disjoint state; completion order is unspecified, so callers that
/// care about order index into preallocated slots.
///
/// Inherits ParallelFor's lock contract: the caller must not hold the pool
/// mutex, and bodies run lock-free — any state a body mutates must be its
/// own slot or independently synchronized (and annotated as such).
template <typename Body>
void ParallelForEach(size_t count, int max_threads, Body&& body) {
  ThreadPool::Global().ParallelFor(
      count, 1, max_threads,
      [&](size_t, size_t begin, size_t) { body(begin); });
}

/// The standard morsel fan-out shape: one default-constructed Slot per
/// morsel of [0, total), filled by body(slot, begin, end), returned in
/// morsel order for the caller to merge. Keeps the decomposition arithmetic
/// (and its agreement with ParallelFor's) in one place.
template <typename Slot, typename Body>
std::vector<Slot> ParallelMorselMap(size_t total, int max_threads,
                                    Body&& body) {
  const size_t morsel_rows = MorselRows();
  std::vector<Slot> slots((total + morsel_rows - 1) / morsel_rows);
  ThreadPool::Global().ParallelFor(
      total, morsel_rows, max_threads,
      [&](size_t m, size_t begin, size_t end) { body(slots[m], begin, end); });
  return slots;
}

/// ParallelMorselMap over a Status-returning body with guard polling at
/// every morsel claim: body(slot, begin, end) -> Status. Returns the filled
/// slots, or the first failure in morsel order (see ParallelForStatus).
/// Slots of skipped/failed morsels stay default-constructed; callers only
/// see them on the error path, which discards the vector.
template <typename Slot, typename Body>
Result<std::vector<Slot>> ParallelMorselMapStatus(size_t total,
                                                  int max_threads,
                                                  const ExecGuard* guard,
                                                  const char* site,
                                                  Body&& body) {
  const size_t morsel_rows = MorselRows();
  std::vector<Slot> slots((total + morsel_rows - 1) / morsel_rows);
  Status st = ThreadPool::Global().ParallelForStatus(
      total, morsel_rows, max_threads, guard, site,
      [&](size_t m, size_t begin, size_t end) {
        return body(slots[m], begin, end);
      });
  if (!st.ok()) return st;
  return slots;
}

}  // namespace vdb

#endif  // VDB_COMMON_THREAD_POOL_H_
