// Dynamically-typed scalar value used by the expression interpreter and the
// row-at-a-time executor boundary. Columns store data natively (see
// engine/column.h); Value is only materialized per-cell during expression
// evaluation and result-set access.

#ifndef VDB_COMMON_VALUE_H_
#define VDB_COMMON_VALUE_H_

#include <cstdint>
#include <string>

namespace vdb {

/// Runtime type of a Value or a Column.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Returns "NULL", "BOOLEAN", "BIGINT", "DOUBLE" or "VARCHAR".
const char* TypeName(TypeId t);

/// A nullable scalar. Numeric types promote Int64 -> Double in arithmetic.
class Value {
 public:
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.i_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.i_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.d_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.s_ = std::move(s);
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool AsBool() const { return i_ != 0; }
  int64_t AsInt() const { return type_ == TypeId::kDouble ? static_cast<int64_t>(d_) : i_; }
  /// Numeric coercion: Int64/Bool widen to double; NULL is 0.0.
  double AsDouble() const {
    if (type_ == TypeId::kDouble) return d_;
    return static_cast<double>(i_);
  }
  const std::string& AsString() const { return s_; }

  bool is_numeric() const {
    return type_ == TypeId::kInt64 || type_ == TypeId::kDouble ||
           type_ == TypeId::kBool;
  }

  /// Three-way comparison following SQL semantics for non-null operands:
  /// numerics compare numerically, strings lexicographically. Returns
  /// negative / zero / positive. Comparing incompatible types orders by type.
  int Compare(const Value& other) const;

  /// SQL equality (both non-null). NULLs never compare equal here; callers
  /// handle NULL propagation.
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Display form: "NULL", integer, shortest-round-trip double, raw string.
  std::string ToString() const;

 private:
  TypeId type_;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
};

}  // namespace vdb

#endif  // VDB_COMMON_VALUE_H_
