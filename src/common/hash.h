// 64-bit hashing utilities.
//
// VerdictDB's hashed ("universe") samples require the underlying database to
// expose a uniform hash function (the paper suggests md5/crc32). Our engine
// exposes `verdict_hash(x)` which maps any value to [0, 1) via the mixers
// below; HashUnit is the library-side equivalent.

#ifndef VDB_COMMON_HASH_H_
#define VDB_COMMON_HASH_H_

#include <cstdint>
#include <string>

#include "common/value.h"

namespace vdb {

/// Fibonacci/murmur-style 64-bit mixer. Deterministic across platforms.
/// Inline (header) definition: the SIMD kernel layer (engine/kernels)
/// vectorizes this exact constant/shift chain, and its scalar reference path
/// must inline the same formula the rest of the engine uses.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over bytes, then mixed.
uint64_t HashBytes(const void* data, size_t len);

/// Hash of a Value; equal values (numeric-equal ints/doubles included) hash
/// equally so hashed samples built on either representation agree.
uint64_t HashValue(const Value& v);

/// Maps a value uniformly into [0, 1). Used for universe sample membership
/// checks: t is in the sample iff HashUnit(t.C) < tau.
double HashUnit(const Value& v);

/// CRC32 (IEEE 802.3, table-driven) over a string; exposed in SQL as crc32().
uint32_t Crc32(const std::string& s);

}  // namespace vdb

#endif  // VDB_COMMON_HASH_H_
