#include "common/stats_math.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace vdb {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double x;
  if (p <= 0.0) return -HUGE_VAL;
  if (p >= 1.0) return HUGE_VAL;
  if (p < plow) {
    double q = std::sqrt(-2 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  } else if (p <= phigh) {
    double q = p - 0.5, r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  } else {
    double q = std::sqrt(-2 * std::log(1 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  // One Newton refinement using the exact CDF.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2 * M_PI) * std::exp(x * x / 2);
  x = x - u / (1 + x * u / 2);
  return x;
}

double ErfcInv(double y) {
  // erfc(x) = y  <=>  x = -NormalQuantile(y/2) / sqrt(2).
  return -NormalQuantile(y / 2.0) / std::sqrt(2.0);
}

double NormalCriticalValue(double confidence) {
  return NormalQuantile(0.5 + confidence / 2.0);
}

double BinomialTailAtLeast(int64_t n, double p, int64_t m) {
  if (m <= 0) return 1.0;
  if (m > n) return 0.0;
  // Sum P(X = k) for k in [m, n] in log space for stability.
  double total = 0.0;
  double log_p = std::log(p), log_q = std::log1p(-p);
  // log C(n, k) built incrementally from k = 0.
  double log_comb = 0.0;
  for (int64_t k = 0; k <= n; ++k) {
    if (k >= m) {
      total += std::exp(log_comb + static_cast<double>(k) * log_p +
                        static_cast<double>(n - k) * log_q);
    }
    // C(n, k+1) = C(n, k) * (n-k) / (k+1)
    log_comb += std::log(static_cast<double>(n - k)) -
                std::log(static_cast<double>(k + 1));
  }
  return std::min(1.0, total);
}

double QuantileSorted(const std::vector<double>& sorted, double p) {
  const size_t n = sorted.size();
  if (n == 1) return sorted[0];
  double idx = p * static_cast<double>(n - 1);
  size_t lo = static_cast<size_t>(std::floor(idx));
  size_t hi = std::min(lo + 1, n - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(n - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

}  // namespace vdb
