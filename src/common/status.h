// Lightweight Status / Result types used across the library.
//
// The public API of verdictdb-cpp does not throw exceptions; fallible
// operations return Status (void results) or Result<T> (value results).

#ifndef VDB_COMMON_STATUS_H_
#define VDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vdb {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad SQL, bad parameter)
  kNotFound,          // missing table / column / sample
  kAlreadyExists,     // duplicate table or sample
  kUnsupported,       // valid SQL the engine or rewriter does not handle
  kInternal,          // invariant violation inside the library
  kCancelled,         // statement cancelled cooperatively (ExecGuard)
  kDeadlineExceeded,  // statement ran past its monotonic deadline
  kResourceExhausted, // memory budget tripped before an allocation
};

/// A success-or-error result with a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case StatusCode::kNotFound: name = "NOT_FOUND"; break;
      case StatusCode::kAlreadyExists: name = "ALREADY_EXISTS"; break;
      case StatusCode::kUnsupported: name = "UNSUPPORTED"; break;
      case StatusCode::kInternal: name = "INTERNAL"; break;
      case StatusCode::kCancelled: name = "CANCELLED"; break;
      case StatusCode::kDeadlineExceeded: name = "DEADLINE_EXCEEDED"; break;
      case StatusCode::kResourceExhausted: name = "RESOURCE_EXHAUSTED"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Accessing the value of an error Result is a
/// programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors absl.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vdb

/// Propagates a non-OK Status from an expression, absl-style.
#define VDB_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::vdb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // VDB_COMMON_STATUS_H_
