#include "common/fault_injection.h"

#include <cstdlib>
#include <map>

#include "common/random.h"
#include "common/thread_annotations.h"

namespace vdb {

namespace fault_internal {
std::atomic<int> g_active{0};
}  // namespace fault_internal

namespace {

struct PointState {
  // Armed trigger; nth == 0 && p == 0 means "observe only" (registered by
  // observation mode on first hit).
  uint64_t nth = 0;          // 1-based failing hit; 0 = no Nth trigger
  double p = 0.0;            // per-hit failure probability; 0 = off
  uint64_t seed = 0;         // counter-addressed draw seed for `p`
  StatusCode code = StatusCode::kResourceExhausted;
  uint64_t hits = 0;         // consultations so far
};

// The registry is mutex-guarded: it is only ever touched while the harness
// is armed (tests / fault-injection CI legs), never on production hot
// paths, which bail on the relaxed g_active load.
struct Registry {
  Mutex mu;
  std::map<std::string, PointState> points GUARDED_BY(mu);
  bool observe GUARDED_BY(mu) = false;
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: workers may poll at exit
  return *r;
}

/// SplitMix-folded hash of the site name; addresses the site axis of the
/// counter-addressed probabilistic draw.
uint64_t SiteHash(const std::string& site) {
  uint64_t h = 0x243F6A8885A308D3ull;
  for (char c : site) {
    h = SplitMix64Finalize(h ^ static_cast<uint64_t>(
                                   static_cast<unsigned char>(c)));
  }
  return h;
}

Status MakeInjected(StatusCode code, const std::string& site, uint64_t hit) {
  const std::string msg =
      "injected fault at " + site + " (hit " + std::to_string(hit) + ")";
  switch (code) {
    case StatusCode::kCancelled: return Status::Cancelled(msg);
    case StatusCode::kDeadlineExceeded: return Status::DeadlineExceeded(msg);
    default: return Status::ResourceExhausted(msg);
  }
}

// Arm VDB_FAULT before main() so the disarmed fast path stays a single
// relaxed load with no lazy-parse branch.
const bool g_env_parsed = [] {
  const char* spec = std::getenv("VDB_FAULT");
  if (spec != nullptr && spec[0] != '\0') (void)ArmFromEnvSpec(spec);
  return true;
}();

}  // namespace

Status FaultPointCheck(const char* site) {
  Registry& reg = Reg();
  MutexLock lock(reg.mu);
  auto it = reg.points.find(site);
  if (it == reg.points.end()) {
    if (!reg.observe) return Status::Ok();
    it = reg.points.emplace(site, PointState{}).first;
  }
  PointState& ps = it->second;
  const uint64_t hit = ++ps.hits;
  if (reg.observe) return Status::Ok();
  if (ps.nth != 0 && hit >= ps.nth) return MakeInjected(ps.code, site, hit);
  if (ps.p > 0.0) {
    const double u = CounterRandomDouble(ps.seed, hit, SiteHash(site));
    if (u < ps.p) return MakeInjected(ps.code, site, hit);
  }
  return Status::Ok();
}

void ArmFaultPointNth(const std::string& site, uint64_t nth, StatusCode code) {
  Registry& reg = Reg();
  MutexLock lock(reg.mu);
  PointState& ps = reg.points[site];
  ps.nth = nth;
  ps.code = code;
  ps.hits = 0;
  fault_internal::g_active.store(1, std::memory_order_relaxed);
}

void ArmFaultPointProbabilistic(const std::string& site, double p,
                                uint64_t seed, StatusCode code) {
  Registry& reg = Reg();
  MutexLock lock(reg.mu);
  PointState& ps = reg.points[site];
  ps.p = p;
  ps.seed = seed;
  ps.code = code;
  ps.hits = 0;
  fault_internal::g_active.store(1, std::memory_order_relaxed);
}

void DisarmAllFaultPoints() {
  Registry& reg = Reg();
  MutexLock lock(reg.mu);
  reg.points.clear();
  reg.observe = false;
  fault_internal::g_active.store(0, std::memory_order_relaxed);
}

void SetFaultObservationForTest(bool on) {
  Registry& reg = Reg();
  MutexLock lock(reg.mu);
  reg.observe = on;
  // Observation keeps the harness active even with no armed points; arming
  // state is recomputed from the registry when observation turns off.
  fault_internal::g_active.store(
      (on || !reg.points.empty()) ? 1 : 0, std::memory_order_relaxed);
}

std::vector<std::string> ObservedFaultSites() {
  Registry& reg = Reg();
  MutexLock lock(reg.mu);
  std::vector<std::string> sites;
  for (const auto& [name, ps] : reg.points) {
    if (ps.hits > 0) sites.push_back(name);
  }
  return sites;  // std::map iteration is already name-sorted
}

uint64_t FaultPointHits(const std::string& site) {
  Registry& reg = Reg();
  MutexLock lock(reg.mu);
  auto it = reg.points.find(site);
  return it == reg.points.end() ? 0 : it->second.hits;
}

bool ArmFromEnvSpec(const std::string& spec) {
  size_t start = 0;
  bool armed_any = false;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string site = entry.substr(0, eq);
    char* end = nullptr;
    const unsigned long long nth =
        std::strtoull(entry.c_str() + eq + 1, &end, 10);
    if (end == nullptr || *end != '\0' || nth == 0) return false;
    ArmFaultPointNth(site, static_cast<uint64_t>(nth));
    armed_any = true;
  }
  return armed_any;
}

}  // namespace vdb
