#include "common/hash.h"

#include <array>
#include <cmath>

namespace vdb {

uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return HashMix64(h);
}

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return 0x9AE16A3B2F90404Full;
    case TypeId::kBool:
    case TypeId::kInt64:
      return HashMix64(static_cast<uint64_t>(v.AsInt()));
    case TypeId::kDouble: {
      double d = v.AsDouble();
      // Integral doubles hash like their int64 counterpart.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return HashMix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return HashMix64(bits);
    }
    case TypeId::kString: {
      const std::string& s = v.AsString();
      return HashBytes(s.data(), s.size());
    }
  }
  return 0;
}

double HashUnit(const Value& v) {
  return static_cast<double>(HashValue(v) >> 11) * 0x1.0p-53;
}

namespace {
std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}
}  // namespace

uint32_t Crc32(const std::string& s) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (const char raw : s) {
    const auto ch = static_cast<unsigned char>(raw);
    c = kTable[(c ^ ch) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace vdb
