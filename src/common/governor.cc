#include "common/governor.h"

#include <string>

namespace vdb::governor_internal {

Status CancelledAt(const char* site) {
  return Status::Cancelled(std::string("statement cancelled at ") + site);
}

Status DeadlineExceededAt(const char* site) {
  return Status::DeadlineExceeded(std::string("deadline exceeded at ") + site);
}

Status BudgetExceededAt(const char* site, uint64_t needed, uint64_t budget) {
  return Status::ResourceExhausted(
      std::string("memory budget exceeded at ") + site + ": " +
      std::to_string(needed) + " bytes reserved would exceed budget of " +
      std::to_string(budget));
}

}  // namespace vdb::governor_internal
