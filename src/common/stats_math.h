// Statistical special functions used by sample planning (Lemma 1) and error
// estimation (confidence intervals, CLT bounds).

#ifndef VDB_COMMON_STATS_MATH_H_
#define VDB_COMMON_STATS_MATH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vdb {

/// Inverse of the complementary error function: erfc(ErfcInv(y)) == y for
/// y in (0, 2). Computed from the inverse normal CDF.
double ErfcInv(double y);

/// Standard normal CDF.
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Newton step; |error| < 1e-12 over (1e-300, 1-1e-16)).
double NormalQuantile(double p);

/// Two-sided normal critical value for the given confidence level, e.g.
/// 0.95 -> 1.959964.
double NormalCriticalValue(double confidence);

/// P(X >= m) where X ~ Binomial(n, p). Exact summation; O(n). Used only in
/// tests to validate Lemma 1's normal approximation.
double BinomialTailAtLeast(int64_t n, double p, int64_t m);

/// p-th quantile (p in [0,1]) of `sorted` using linear interpolation between
/// order statistics. `sorted` must be ascending and non-empty.
double QuantileSorted(const std::vector<double>& sorted, double p);

/// Sample mean.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 when n < 2.
double Variance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

}  // namespace vdb

#endif  // VDB_COMMON_STATS_MATH_H_
