// Per-statement query governor: cooperative cancellation, a monotonic
// deadline, and a memory budget with atomic accounting.
//
// One ExecGuard is carried per statement along the same route num_threads
// took (VerdictOptions -> VerdictContext -> Database -> planner/operators).
// The executor never blocks on it; instead, every morsel claim, chunk
// boundary, hash-table growth, gather, and large reserve polls the guard
// through the null-safe helpers below and unwinds with a clean Status
// (kCancelled / kDeadlineExceeded / kResourceExhausted) when it trips.
//
// Contract (docs/INVARIANTS.md, "Cancellation / budget contract"):
//   - Poll points sit on batch boundaries, never inside per-row loops, so
//     the untripped overhead is one predictable branch per batch.
//   - When the guard never trips, results are bit-identical to an
//     unguarded run: polling reads state, it never influences morsel
//     decomposition, merge order, or any RNG draw.
//   - Deadline checks call steady_clock::now() only at poll points (coarse
//     by design); cancellation and budget checks are single atomic loads.
//   - Every poll site names itself (the `site` argument), which doubles as
//     the fault-injection point name (common/fault_injection.h).

#ifndef VDB_COMMON_GOVERNOR_H_
#define VDB_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/fault_injection.h"
#include "common/status.h"

namespace vdb {

namespace governor_internal {
// Cold paths, out of line (governor.cc) so the inlined poll fast path stays
// a couple of loads and a branch.
Status CancelledAt(const char* site);
Status DeadlineExceededAt(const char* site);
Status BudgetExceededAt(const char* site, uint64_t needed, uint64_t budget);
}  // namespace governor_internal

/// Per-statement execution guard. The owner (the statement issuer)
/// configures limits before execution and may RequestCancel() from any
/// thread while the statement runs; the executor threads a `const
/// ExecGuard*` down the stack and polls. All executor-facing members are
/// const — polling and budget accounting mutate only atomics — so a guard
/// can be shared by every worker of a statement without synchronization
/// beyond the atomics themselves.
class ExecGuard {
 public:
  ExecGuard() = default;
  ExecGuard(const ExecGuard&) = delete;
  ExecGuard& operator=(const ExecGuard&) = delete;

  // ---- owner-side configuration (before / during execution) ----

  /// Arms the monotonic deadline `timeout_ms` from now; <= 0 disarms.
  void set_deadline_after_ms(int64_t timeout_ms) {
    if (timeout_ms <= 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const int64_t now = NowNanos();
    deadline_ns_.store(now + timeout_ms * 1'000'000, std::memory_order_relaxed);
  }

  /// Arms the memory budget; 0 disarms. Configure before execution starts
  /// (plain store; the executor only reads it through TryReserve).
  void set_memory_budget_bytes(uint64_t bytes) {
    budget_bytes_.store(bytes, std::memory_order_relaxed);
  }

  /// Requests cooperative cancellation; safe from any thread, any time.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  // ---- executor-side polling ----

  /// The cooperative poll: kOk, or kCancelled / kDeadlineExceeded carrying
  /// the polling site's name as operator context. Also consults the
  /// site-named fault point when the fault-injection harness is armed.
  Status Check(const char* site) const {
    if (FaultInjectionArmed()) {
      Status injected = FaultPointCheck(site);
      if (!injected.ok()) return injected;
    }
    if (cancel_.load(std::memory_order_relaxed)) {
      return governor_internal::CancelledAt(site);
    }
    const int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl != 0 && NowNanos() > dl) {
      return governor_internal::DeadlineExceededAt(site);
    }
    return Status::Ok();
  }

  /// Budget-checked reservation of `bytes` for a row-proportional buffer.
  /// Charges atomically and returns kOk, or kResourceExhausted (charging
  /// nothing) when the reservation would exceed the budget. Polls
  /// cancel/deadline first so every reserve is also a poll point.
  Status TryReserve(uint64_t bytes, const char* site) const {
    VDB_RETURN_IF_ERROR(Check(site));
    const uint64_t budget = budget_bytes_.load(std::memory_order_relaxed);
    uint64_t cur = reserved_.load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t next = cur + bytes;
      if (budget != 0 && (next > budget || next < cur)) {
        return governor_internal::BudgetExceededAt(site, next, budget);
      }
      if (reserved_.compare_exchange_weak(cur, next,
                                          std::memory_order_relaxed)) {
        break;
      }
    }
    // Peak tracking is monotone; relaxed CAS loop keeps it exact.
    uint64_t after = reserved_.load(std::memory_order_relaxed);
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (after > peak &&
           !peak_.compare_exchange_weak(peak, after,
                                        std::memory_order_relaxed)) {
    }
    return Status::Ok();
  }

  /// Returns a reservation (scratch freed / buffer shrunk). Saturating:
  /// never underflows even if callers release conservative estimates.
  void Release(uint64_t bytes) const {
    uint64_t cur = reserved_.load(std::memory_order_relaxed);
    while (!reserved_.compare_exchange_weak(
        cur, cur >= bytes ? cur - bytes : 0, std::memory_order_relaxed)) {
    }
  }

  uint64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  uint64_t peak_reserved_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  uint64_t memory_budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  /// Re-arms the guard for the next statement: clears the cancel flag and
  /// resets accounting, keeping the configured budget. (Deadlines are
  /// re-armed per statement by the issuer.)
  void ResetForStatement() {
    cancel_.store(false, std::memory_order_relaxed);
    reserved_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // All mutable: polling and accounting run through const pointers shared
  // by every worker of the statement.
  mutable std::atomic<bool> cancel_{false};
  mutable std::atomic<int64_t> deadline_ns_{0};   // steady_clock ns; 0 = off
  mutable std::atomic<uint64_t> budget_bytes_{0}; // 0 = unlimited
  mutable std::atomic<uint64_t> reserved_{0};
  mutable std::atomic<uint64_t> peak_{0};
};

// ---- null-safe call-site helpers -------------------------------------------
//
// The guard is optional everywhere (nullptr = ungoverned statement, the
// default for existing callers). These helpers keep governed sites
// one-liners and give the ungoverned path a single branch — except for the
// fault point, which fires even without a guard so the injection sweep
// covers ungoverned code paths too.

inline Status GuardCheck(const ExecGuard* guard, const char* site) {
  if (guard != nullptr) return guard->Check(site);
  if (FaultInjectionArmed()) return FaultPointCheck(site);
  return Status::Ok();
}

inline Status GuardTryReserve(const ExecGuard* guard, uint64_t bytes,
                              const char* site) {
  if (guard != nullptr) return guard->TryReserve(bytes, site);
  if (FaultInjectionArmed()) return FaultPointCheck(site);
  return Status::Ok();
}

inline void GuardRelease(const ExecGuard* guard, uint64_t bytes) {
  if (guard != nullptr) guard->Release(bytes);
}

/// RAII form for scratch reservations: charges on construction (status()
/// reports the outcome), releases on destruction.
class ScopedReservation {
 public:
  ScopedReservation(const ExecGuard* guard, uint64_t bytes, const char* site)
      : guard_(guard), bytes_(bytes), status_(GuardTryReserve(guard, bytes,
                                                              site)) {
    if (!status_.ok()) bytes_ = 0;
  }
  ~ScopedReservation() { GuardRelease(guard_, bytes_); }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

  const Status& status() const { return status_; }

 private:
  const ExecGuard* guard_;
  uint64_t bytes_;
  Status status_;
};

}  // namespace vdb

#endif  // VDB_COMMON_GOVERNOR_H_
