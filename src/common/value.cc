#include "common/value.h"

#include <cmath>
#include <cstdio>

namespace vdb {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return "BOOLEAN";
    case TypeId::kInt64: return "BIGINT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "VARCHAR";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type_ == TypeId::kInt64 && other.type_ == TypeId::kInt64) {
      if (i_ < other.i_) return -1;
      if (i_ > other.i_) return 1;
      return 0;
    }
    double a = AsDouble(), b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ == TypeId::kString && other.type_ == TypeId::kString) {
    return s_.compare(other.s_);
  }
  // Fallback: order by type id so sorting mixed columns is deterministic.
  if (static_cast<int>(type_) < static_cast<int>(other.type_)) return -1;
  if (static_cast<int>(type_) > static_cast<int>(other.type_)) return 1;
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return i_ ? "true" : "false";
    case TypeId::kInt64: return std::to_string(i_);
    case TypeId::kDouble: {
      if (std::isnan(d_)) return "nan";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", d_);
      return buf;
    }
    case TypeId::kString: return s_;
  }
  return "?";
}

}  // namespace vdb
