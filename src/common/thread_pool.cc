#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace vdb {

namespace {

constexpr size_t kDefaultMorselRows = 32768;
constexpr size_t kMaxWorkers = 64;

std::atomic<size_t> g_morsel_rows{kDefaultMorselRows};

/// True on threads currently executing morsels (workers, or the caller while
/// it participates). A ParallelFor issued from such a thread runs inline:
/// the pool handles one job at a time, so waiting for a second job from
/// inside the first would deadlock.
thread_local bool tls_in_parallel_region = false;

}  // namespace

size_t MorselRows() { return g_morsel_rows.load(std::memory_order_relaxed); }

void SetMorselRowsForTest(size_t rows) {
  g_morsel_rows.store(rows == 0 ? kDefaultMorselRows : rows,
                      std::memory_order_relaxed);
}

struct ThreadPool::Job {
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  size_t total = 0;
  size_t morsel_rows = 0;
  size_t num_morsels = 0;
  std::atomic<size_t> next{0};       // next unclaimed morsel index
  std::atomic<size_t> completed{0};  // morsels whose body has returned
  int max_participants = 0;          // includes the caller
  // Guarded by the pool's mu_ by convention (a nested struct can't name the
  // owner's mutex in a GUARDED_BY, so this one contract stays prose): every
  // read and write of participants below happens inside a MutexLock block.
  int participants = 1;  // caller counts as one

  void RunMorsels() {
    for (;;) {
      const size_t m = next.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) return;
      const size_t begin = m * morsel_rows;
      const size_t end = std::min(total, begin + morsel_rows);
      (*body)(m, begin, end);
      completed.fetch_add(1, std::memory_order_release);
    }
  }
};

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally (like AggregateRegistry::Global) so worker shutdown
  // never races with static destruction order at exit.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stop_ = true;
    workers = std::move(workers_);
  }
  work_cv_.NotifyAll();
  for (auto& w : workers) w.join();
}

void ThreadPool::EnsureWorkersLocked(size_t n) {
  n = std::min(n, kMaxWorkers);
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;
  uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && (job_ == nullptr || job_seq_ == seen_seq ||
                        job_->participants >= job_->max_participants)) {
        work_cv_.Wait(lock);
      }
      if (stop_) return;
      job = job_;
      seen_seq = job_seq_;
      ++job->participants;
    }
    job->RunMorsels();
    {
      MutexLock lock(mu_);
      --job->participants;
    }
    done_cv_.NotifyAll();
  }
}

void ThreadPool::ParallelFor(
    size_t total, size_t morsel_rows, int max_threads,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (total == 0) return;
  if (morsel_rows == 0) morsel_rows = 1;
  const size_t num_morsels = (total + morsel_rows - 1) / morsel_rows;

  // Serial shapes (or a nested call from a worker) run inline, in index
  // order — the same morsel decomposition, just one thread.
  if (max_threads <= 1 || num_morsels <= 1 || tls_in_parallel_region) {
    for (size_t m = 0; m < num_morsels; ++m) {
      body(m, m * morsel_rows, std::min(total, (m + 1) * morsel_rows));
    }
    return;
  }

  Job job;
  job.body = &body;
  job.total = total;
  job.morsel_rows = morsel_rows;
  job.num_morsels = num_morsels;
  job.max_participants =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(max_threads),
                                        num_morsels));
  {
    MutexLock lock(mu_);
    EnsureWorkersLocked(static_cast<size_t>(job.max_participants - 1));
    // One published job at a time: a second concurrent caller waits for the
    // slot rather than clobbering a live job (which would strand it without
    // workers and clear it from under the other caller).
    while (job_ != nullptr) done_cv_.Wait(lock);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.NotifyAll();

  tls_in_parallel_region = true;
  job.RunMorsels();
  tls_in_parallel_region = false;

  {
    MutexLock lock(mu_);
    // The job lives on this stack frame: wait until every morsel has run AND
    // every worker has detached from the job before letting it go out of
    // scope. The mutex hand-off also publishes the workers' writes (slot
    // results) to the caller.
    while (job.completed.load(std::memory_order_acquire) != num_morsels ||
           job.participants != 1) {
      done_cv_.Wait(lock);
    }
    job_ = nullptr;
  }
  done_cv_.NotifyAll();  // wake any caller waiting to publish its job
}

Status ThreadPool::ParallelForStatus(
    size_t total, size_t morsel_rows, int max_threads, const ExecGuard* guard,
    const char* site,
    const std::function<Status(size_t, size_t, size_t)>& body) {
  if (total == 0) return Status::Ok();
  if (morsel_rows == 0) morsel_rows = 1;
  const size_t num_morsels = (total + morsel_rows - 1) / morsel_rows;

  // Layered over ParallelFor rather than a second job protocol: the stop
  // token turns unclaimed morsels into no-ops, each morsel's Status lands in
  // its own slot (no cross-morsel writes), and ParallelFor's completion
  // hand-off publishes the slots to the caller.
  std::atomic<bool> stop{false};
  std::vector<Status> statuses(num_morsels);
  ParallelFor(total, morsel_rows, max_threads,
              [&](size_t m, size_t begin, size_t end) {
                if (stop.load(std::memory_order_relaxed)) return;
                Status st = GuardCheck(guard, site);
                if (st.ok()) st = body(m, begin, end);
                if (!st.ok()) {
                  statuses[m] = std::move(st);
                  stop.store(true, std::memory_order_relaxed);
                }
              });
  for (size_t m = 0; m < num_morsels; ++m) {
    if (!statuses[m].ok()) return statuses[m];
  }
  return Status::Ok();
}

}  // namespace vdb
