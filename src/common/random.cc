#include "common/random.h"

#include <cmath>

namespace vdb {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Modulo bias is negligible for bound << 2^64; acceptable for sampling.
  return Next() % bound;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

}  // namespace vdb
