#include "common/random.h"

#include <cmath>
#include <atomic>

namespace vdb {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  return SplitMix64Finalize(x += 0x9E3779B97F4A7C15ull);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Test hook: atomic (relaxed) — tests write between queries while pool
// workers may still read; see docs/INVARIANTS.md (test-hook contract).
std::atomic<bool> g_biased_bounded_for_test{false};
}  // namespace

int PoissonOneFromUniform(double u) {
  int k = 0;
  double p = std::exp(-1.0), cdf = p;
  // cdf stops changing once p falls below one ulp of 1.0 (k ~ 18); the cap
  // is a safety net, not a distributional truncation.
  while (u > cdf && k < 64) {
    ++k;
    p /= static_cast<double>(k);
    if (p <= 0.0) break;
    cdf += p;
  }
  return k;
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

void Rng::SetBiasedNextBoundedForTest(bool biased) {
  g_biased_bounded_for_test.store(biased, std::memory_order_relaxed);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (g_biased_bounded_for_test.load(std::memory_order_relaxed)) {
    return Next() % bound;
  }
  // Lemire multiply-shift: (x * bound) >> 64 maps uniformly onto [0, bound)
  // except for the 2^64 mod bound lowest fractional values, which are
  // rejected and redrawn.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

}  // namespace vdb
