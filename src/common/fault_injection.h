// Named fault points for the governor's adversarial test harness.
//
// Every governed site (a GuardCheck / GuardTryReserve call naming itself,
// e.g. "join_build_alloc") doubles as a fault point: when the harness is
// armed for that name, the poll returns an injected error Status instead of
// kOk, exercising the exact unwind path a real cancellation, deadline, or
// allocation failure would take — without needing a query large enough to
// trip the limit for real.
//
// Triggers are deterministic by construction:
//   - fail-on-Nth: the Nth consultation of the point fails (N is a
//     per-point hit counter, so single-threaded sweeps are exactly
//     reproducible);
//   - counter-addressed probability: hit k fails iff
//     CounterRandom(seed, k, hash(site)) < p * 2^64 — the same seeded
//     SplitMix-style substrate as the engine's row-addressed rand(), so
//     probabilistic sweeps replay bit-identically from the seed and
//     vdb-lint's rng-outside-random rule stays clean.
//
// Cost when disarmed: one relaxed atomic load (FaultInjectionArmed) at each
// governed site — no registry lookup, no string hashing.
//
// Arming: test hooks below, or the VDB_FAULT environment variable parsed at
// process start ("site=N" fail-on-Nth, comma-separated; see ArmFromEnvSpec).

#ifndef VDB_COMMON_FAULT_INJECTION_H_
#define VDB_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace vdb {

namespace fault_internal {
// > 0 while any fault point is armed OR observation mode is on. The one
// relaxed load every governed site pays when the harness is idle.
extern std::atomic<int> g_active;
}  // namespace fault_internal

/// True when any fault point is armed (or observation is on); governed
/// sites gate the out-of-line FaultPointCheck call on this.
inline bool FaultInjectionArmed() {
  return fault_internal::g_active.load(std::memory_order_relaxed) > 0;
}

/// Consults the fault point named `site`. Returns the injected Status when
/// the point is armed and its trigger fires on this hit; kOk otherwise.
/// Callers must gate on FaultInjectionArmed() (the governor helpers do).
Status FaultPointCheck(const char* site);

// ---- test hooks -------------------------------------------------------------

/// Arms `site` to fail on its Nth consultation (1-based; every subsequent
/// hit also fails, so "the first poll after N-1 successes" is what trips —
/// matching how a real deadline stays tripped once passed). `code` is the
/// Status the injection returns.
void ArmFaultPointNth(const std::string& site, uint64_t nth,
                      StatusCode code = StatusCode::kResourceExhausted);

/// Arms `site` to fail each hit k independently with probability p, drawn
/// counter-addressed from (seed, k, hash(site)) — deterministic replay.
void ArmFaultPointProbabilistic(const std::string& site, double p,
                                uint64_t seed,
                                StatusCode code = StatusCode::kResourceExhausted);

/// Disarms everything and clears hit counters and the observed-site set.
void DisarmAllFaultPoints();

/// Observation mode: fault points record their names and hit counts but
/// never fire. Lets a sweep discover which sites a workload actually
/// reaches before arming them one by one.
void SetFaultObservationForTest(bool on);

/// Sites consulted since the last DisarmAllFaultPoints, sorted by name.
std::vector<std::string> ObservedFaultSites();

/// Consultations of `site` since the last DisarmAllFaultPoints.
uint64_t FaultPointHits(const std::string& site);

/// Parses a VDB_FAULT-style spec ("site=N" or "site=N,site2=M", N the
/// 1-based failing hit) and arms the named points. Returns false on a
/// malformed spec. Called automatically at process start with the VDB_FAULT
/// environment variable; exposed for tests.
bool ArmFromEnvSpec(const std::string& spec);

}  // namespace vdb

#endif  // VDB_COMMON_FAULT_INJECTION_H_
