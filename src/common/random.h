// Deterministic pseudo-random number generation: a stateful stream generator
// (Rng) for offline/estimator code, and a stateless row-addressed counter
// generator for everything the query engine evaluates.
//
// Reproducibility contract — row-addressed, NOT draw-ordered:
//
// Every rand-family draw the engine performs (rand(), rand_poisson(),
// Bernoulli sample membership, variational __vdb_sid assignment) is a pure
// function of a (query seed, physical row id, call-site id) triple mixed by
// CounterRandom(). There is no shared stream and no draw order: the value a
// row receives does not depend on evaluation order, plan shape (WHERE
// pushdown, view pipeline vs eager gather), morsel decomposition, or thread
// count. Seeded runs are reproducible because the Database draws one fresh
// query seed per statement from its seeded Rng, call sites are numbered
// deterministically per statement, and row ids are physical positions in the
// evaluated relation (global pair ordinals for join pair views — which equal
// the materialized row positions, so pushed-down and post-gather evaluation
// of the same predicate see identical draws).
//
// The stateful Rng (xoshiro256**) remains for code with a genuine sequential
// stream: workload generation, estimator resampling, and per-statement query
// seed derivation. Neither generator is cryptographic.

#ifndef VDB_COMMON_RANDOM_H_
#define VDB_COMMON_RANDOM_H_

#include <cstdint>

namespace vdb {

// ---- Row-addressed counter-based randomness --------------------------------

/// Addresses one logical engine draw: the per-statement query seed, the
/// physical row id the draw belongs to, and the call-site id of the
/// rand-family node within the statement (so two rand() calls in one query
/// are independent).
struct RandAddr {
  uint64_t seed = 0;
  uint64_t row = 0;
  uint64_t site = 0;
};

/// The SplitMix64 finalizer: the single mixing round CounterRandom chains.
/// Inline here because the SIMD kernel layer (engine/kernels) carries a
/// 4-lane vectorization of this exact constant/shift chain, and the scalar
/// reference path must inline the identical formula.
inline uint64_t SplitMix64Finalize(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless SplitMix64-style finalizer chain over (seed, row, site).
/// Uniform 64-bit output; equal triples give equal values, nearby triples
/// (row+1, site+1) give statistically independent ones.
///
/// Three chained finalizer rounds: feeding each word through a full
/// SplitMix64Finalize (rather than one mix of a linear combination) breaks
/// the lattice structure that a*row + b*site inputs would otherwise share.
inline uint64_t CounterRandom(uint64_t seed, uint64_t row, uint64_t site) {
  uint64_t h = SplitMix64Finalize(seed ^ (row + 0x9E3779B97F4A7C15ull));
  h = SplitMix64Finalize(h ^ (site + 0xD1B54A32D192ED03ull));
  return SplitMix64Finalize(h);
}

/// Uniform double in [0, 1) for the addressed draw (53 high bits).
inline double CounterRandomDouble(uint64_t seed, uint64_t row, uint64_t site) {
  return static_cast<double>(CounterRandom(seed, row, site) >> 11) * 0x1.0p-53;
}

inline double RandAt(const RandAddr& a) {
  return CounterRandomDouble(a.seed, a.row, a.site);
}

/// Poisson(1) via the inverse CDF from one uniform u in [0, 1). The single
/// shared kernel behind SQL rand_poisson() and the consolidated-bootstrap
/// estimator; the walk runs until the CDF absorbs u (far beyond the old
/// k < 8 truncation, which clipped the upper tail).
int PoissonOneFromUniform(double u);

// ---- Stateful stream generator ---------------------------------------------

/// xoshiro256** generator seeded via SplitMix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit integer.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound), unbiased: Lemire multiply-shift with
  /// rejection of the short biased range, so subsample-size uniformity holds
  /// even at large bounds. bound must be > 0. May consume more than one
  /// Next() draw (rarely, ~bound/2^64 of calls).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Test hook: process-wide switch restoring the pre-Lemire `Next() %
  /// bound` path (one draw per call, modulo-biased) for tests that pinned
  /// draw sequences against it. false restores the unbiased default.
  static void SetBiasedNextBoundedForTest(bool biased);

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace vdb

#endif  // VDB_COMMON_RANDOM_H_
