// Deterministic, fast pseudo-random number generation.
//
// All stochastic behaviour in the library (sample construction, variational
// sid assignment, workload generation) flows through Rng so experiments are
// reproducible given a seed.

#ifndef VDB_COMMON_RANDOM_H_
#define VDB_COMMON_RANDOM_H_

#include <cstdint>

namespace vdb {

/// xoshiro256** generator seeded via SplitMix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit integer.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace vdb

#endif  // VDB_COMMON_RANDOM_H_
