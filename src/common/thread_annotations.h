// Clang thread-safety annotation macros plus the annotated mutex wrappers
// the engine uses wherever shared mutable state crosses a thread boundary.
//
// Under Clang with -Wthread-safety the macros expand to the attributes the
// analysis consumes, so lock/field contracts written here are checked at
// compile time: reading a GUARDED_BY field without its mutex, calling a
// REQUIRES function unlocked, or leaking a SCOPED_CAPABILITY lock is a
// warning (and an error in the hardened CI leg, which builds with
// -Wthread-safety -Werror). Under GCC — which has no such analysis — every
// macro expands to nothing and the wrappers are zero-cost shims over
// std::mutex, so the portable build is unchanged.
//
// The macro set follows the canonical LLVM mutex.h reference
// (clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the spellings the
// project actually uses are defined.

#ifndef VDB_COMMON_THREAD_ANNOTATIONS_H_
#define VDB_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define VDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VDB_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) VDB_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY VDB_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) VDB_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) VDB_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  VDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) VDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) VDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EXCLUDES(...) VDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) VDB_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  VDB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vdb {

/// std::mutex wearing the CAPABILITY attribute, so fields can be declared
/// GUARDED_BY(mu_) and functions REQUIRES(mu_). Lock it through MutexLock;
/// the raw Lock/Unlock pair exists for the wrapper and for code with
/// genuinely non-scoped lifetimes.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop with std condition variables.
  /// Callers must still hold the capability (via MutexLock) when waiting.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, visible to the analysis as a scoped capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lk_(mu.native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for CondVar. The capability stays
  /// conceptually held across a wait: the condition re-checked after wakeup
  /// is evaluated with the lock reacquired, which is exactly the state the
  /// analysis assumes.
  std::unique_lock<std::mutex>& native_lock() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable bound to MutexLock. Wait() is used in explicit
/// `while (!cond) cv.Wait(lock);` loops rather than the predicate-lambda
/// form: the loop condition then lives in the (annotated) enclosing
/// function, where the analysis can see the lock is held — a lambda body
/// would be analyzed as a separate unannotated function and warn.
class CondVar {
 public:
  void Wait(MutexLock& lock) { cv_.wait(lock.native_lock()); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vdb

#endif  // VDB_COMMON_THREAD_ANNOTATIONS_H_
