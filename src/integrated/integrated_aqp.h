// A tightly-integrated AQP engine baseline, standing in for SnappyData in
// the §6.3 comparison. Unlike VerdictDB it lives inside the database
// process: it builds samples with direct table scans (no SQL), keeps its own
// registry, answers queries with single-level Horvitz-Thompson scaling and
// closed-form (CLT-style) semantics, and — like SnappyData — cannot join two
// samples: when several relations of a join have samples, only the largest
// one is substituted and the rest read their base tables in full.

#ifndef VDB_INTEGRATED_INTEGRATED_AQP_H_
#define VDB_INTEGRATED_INTEGRATED_AQP_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace vdb::integrated {

struct IntegratedSample {
  std::string sample_table;
  std::string base_table;
  double ratio = 0.0;
  std::vector<std::string> strata_columns;  // empty = uniform
  uint64_t base_rows = 0;
  uint64_t sample_rows = 0;
};

class IntegratedAqp {
 public:
  explicit IntegratedAqp(engine::Database* db) : db_(db) {}

  /// Builds a uniform sample by directly scanning the base table (no SQL).
  Result<IntegratedSample> CreateUniformSample(const std::string& base,
                                               double tau);

  /// Builds a stratified sample with in-memory per-stratum reservoirs.
  /// `min_rows` tuples are kept per stratum (or the whole stratum if
  /// smaller).
  Result<IntegratedSample> CreateStratifiedSample(
      const std::string& base, const std::vector<std::string>& columns,
      int64_t min_rows);

  /// Executes a query approximately when a sample applies; otherwise runs it
  /// exactly. At most one relation per query is substituted with a sample.
  Result<engine::ResultSet> Execute(const std::string& sql);

  const std::map<std::string, IntegratedSample>& samples() const {
    return samples_;
  }

 private:
  engine::Database* db_;
  std::map<std::string, IntegratedSample> samples_;  // keyed by base table
};

}  // namespace vdb::integrated

#endif  // VDB_INTEGRATED_INTEGRATED_AQP_H_
