#include "integrated/integrated_aqp.h"

#include <algorithm>
#include <unordered_map>

#include "core/query_classifier.h"
#include "engine/aggregates.h"
#include "engine/functions.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace vdb::integrated {

namespace {

using sql::Expr;
using sql::ExprKind;

/// Replaces aggregate calls with Horvitz-Thompson-scaled equivalents over
/// the substituted sample (single-level: no subsampling machinery).
void ScaleAggregates(Expr* e, double ratio) {
  if (e->kind == ExprKind::kFunction && !e->is_window &&
      vdb::engine::IsAggregateFunction(e->name)) {
    bool star = e->args.empty() || e->args[0]->kind == ExprKind::kStar;
    if (e->name == "count" && e->distinct) {
      // count(distinct x) / ratio
      auto inner = e->Clone();
      auto scaled = sql::MakeBinary(sql::BinaryOp::kDiv, std::move(inner),
                                    sql::MakeDoubleLit(ratio));
      e->kind = ExprKind::kFunction;
      e->name = "round";
      e->distinct = false;
      e->args.clear();
      e->args.push_back(std::move(scaled));
      return;
    }
    if (e->name == "count") {
      // round(sum(1 / verdict_prob))
      Expr::Ptr v;
      if (star) {
        v = sql::MakeDoubleLit(1.0);
      } else {
        auto c = std::make_unique<Expr>(ExprKind::kCase);
        auto isnull = std::make_unique<Expr>(ExprKind::kIsNull);
        isnull->args.push_back(e->args[0]->Clone());
        c->case_whens.push_back(std::move(isnull));
        c->case_thens.push_back(sql::MakeDoubleLit(0.0));
        c->case_else = sql::MakeDoubleLit(1.0);
        v = std::move(c);
      }
      auto sum = sql::MakeFunction("sum", {});
      sum->args.push_back(sql::MakeBinary(
          sql::BinaryOp::kDiv, std::move(v),
          sql::MakeColumnRef("", "verdict_prob")));
      e->name = "round";
      e->distinct = false;
      e->args.clear();
      e->args.push_back(std::move(sum));
      return;
    }
    if (e->name == "sum") {
      auto arg = std::move(e->args[0]);
      e->args.clear();
      e->args.push_back(sql::MakeBinary(
          sql::BinaryOp::kDiv, std::move(arg),
          sql::MakeColumnRef("", "verdict_prob")));
      return;
    }
    if (e->name == "avg") {
      // sum(x/p) / sum(1/p)
      auto num = sql::MakeFunction("sum", {});
      num->args.push_back(sql::MakeBinary(
          sql::BinaryOp::kDiv, std::move(e->args[0]),
          sql::MakeColumnRef("", "verdict_prob")));
      auto den = sql::MakeFunction("sum", {});
      den->args.push_back(sql::MakeBinary(
          sql::BinaryOp::kDiv, sql::MakeDoubleLit(1.0),
          sql::MakeColumnRef("", "verdict_prob")));
      auto div = sql::MakeBinary(sql::BinaryOp::kDiv, std::move(num),
                                 std::move(den));
      *e = std::move(*div);
      return;
    }
    // min/max/var/stddev/quantile: evaluate directly on the sample.
    return;
  }
  for (auto& a : e->args) {
    if (a && a->kind != ExprKind::kStar) ScaleAggregates(a.get(), ratio);
  }
  for (auto& w : e->case_whens) ScaleAggregates(w.get(), ratio);
  for (auto& t : e->case_thens) ScaleAggregates(t.get(), ratio);
  if (e->case_else) ScaleAggregates(e->case_else.get(), ratio);
}

/// Substitutes the chosen relation's base table with the sample table.
void SubstituteOne(sql::TableRef* ref, const std::string& base,
                   const std::string& sample) {
  switch (ref->kind) {
    case sql::TableRef::Kind::kBase:
      if (ref->table_name == base) {
        if (ref->alias.empty()) ref->alias = ref->table_name;
        ref->table_name = sample;
      }
      return;
    case sql::TableRef::Kind::kDerived:
      return;
    case sql::TableRef::Kind::kJoin:
      SubstituteOne(ref->left.get(), base, sample);
      SubstituteOne(ref->right.get(), base, sample);
      return;
  }
}

}  // namespace

Result<IntegratedSample> IntegratedAqp::CreateUniformSample(
    const std::string& base, double tau) {
  auto t = db_->catalog().GetTable(base);
  if (!t) return Status::NotFound("no such table: " + base);
  auto sample = std::make_shared<engine::Table>();
  for (size_t c = 0; c < t->num_columns(); ++c) {
    sample->AddColumn(t->column_name(c), t->column(c).type());
  }
  sample->AddColumn("verdict_prob", TypeId::kDouble);
  auto& rng = db_->rng();
  std::vector<Value> row(t->num_columns() + 1);
  for (size_t r = 0; r < t->num_rows(); ++r) {
    if (!rng.NextBernoulli(tau)) continue;
    for (size_t c = 0; c < t->num_columns(); ++c) row[c] = t->Get(r, c);
    row[t->num_columns()] = Value::Double(tau);
    sample->AppendRow(row);
  }
  IntegratedSample info;
  info.base_table = base;
  info.sample_table = base + "_integrated_uniform";
  info.ratio = tau;
  info.base_rows = t->num_rows();
  info.sample_rows = sample->num_rows();
  db_->catalog().DropTable(info.sample_table, /*if_exists=*/true);
  VDB_RETURN_IF_ERROR(db_->catalog().CreateTable(info.sample_table, sample));
  samples_[base] = info;
  return info;
}

Result<IntegratedSample> IntegratedAqp::CreateStratifiedSample(
    const std::string& base, const std::vector<std::string>& columns,
    int64_t min_rows) {
  auto t = db_->catalog().GetTable(base);
  if (!t) return Status::NotFound("no such table: " + base);
  std::vector<int> strata_cols;
  for (const auto& c : columns) {
    int idx = t->ColumnIndex(c);
    if (idx < 0) return Status::NotFound("no such column: " + c);
    strata_cols.push_back(idx);
  }
  // Pass 1: per-stratum reservoir of row indices (in-memory; a luxury a
  // middleware does not have).
  struct Reservoir {
    std::vector<uint32_t> rows;
    int64_t seen = 0;
  };
  std::unordered_map<std::string, Reservoir> strata;
  auto& rng = db_->rng();
  for (size_t r = 0; r < t->num_rows(); ++r) {
    std::string key;
    for (int c : strata_cols) {
      key += engine::ValueGroupKey(t->Get(r, static_cast<size_t>(c)));
      key.push_back('\x1f');
    }
    Reservoir& res = strata[key];
    ++res.seen;
    if (static_cast<int64_t>(res.rows.size()) < min_rows) {
      res.rows.push_back(static_cast<uint32_t>(r));
    } else {
      uint64_t j = rng.NextBounded(static_cast<uint64_t>(res.seen));
      if (j < static_cast<uint64_t>(min_rows)) {
        res.rows[j] = static_cast<uint32_t>(r);
      }
    }
  }
  // Pass 2: materialize with per-stratum inclusion probabilities.
  auto sample = std::make_shared<engine::Table>();
  for (size_t c = 0; c < t->num_columns(); ++c) {
    sample->AddColumn(t->column_name(c), t->column(c).type());
  }
  sample->AddColumn("verdict_prob", TypeId::kDouble);
  std::vector<Value> row(t->num_columns() + 1);
  // Hash-map iteration order is nondeterministic across runs; emit strata in
  // sorted key order so the sample table (and everything derived from it) is
  // reproducible for a fixed seed.
  std::vector<const std::string*> ordered_keys;
  ordered_keys.reserve(strata.size());
  for (const auto& [key, res] : strata) ordered_keys.push_back(&key);  // vdb-lint: allow(unordered-iteration-in-result-path) keys sorted below before any row is emitted
  std::sort(ordered_keys.begin(), ordered_keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* kp : ordered_keys) {
    const Reservoir& res = strata.at(*kp);
    double p = static_cast<double>(res.rows.size()) /
               static_cast<double>(res.seen);
    for (uint32_t r : res.rows) {
      for (size_t c = 0; c < t->num_columns(); ++c) row[c] = t->Get(r, c);
      row[t->num_columns()] = Value::Double(p);
      sample->AppendRow(row);
    }
  }
  IntegratedSample info;
  info.base_table = base;
  info.sample_table = base + "_integrated_stratified";
  info.strata_columns = columns;
  info.base_rows = t->num_rows();
  info.sample_rows = sample->num_rows();
  info.ratio = t->num_rows() == 0
                   ? 0.0
                   : static_cast<double>(sample->num_rows()) /
                         static_cast<double>(t->num_rows());
  db_->catalog().DropTable(info.sample_table, /*if_exists=*/true);
  VDB_RETURN_IF_ERROR(db_->catalog().CreateTable(info.sample_table, sample));
  samples_[base] = info;
  return info;
}

Result<engine::ResultSet> IntegratedAqp::Execute(const std::string& sql) {
  auto parsed = sql::ParseStatement(sql);
  if (!parsed.ok()) return parsed.status();
  auto stmt = std::move(parsed).ValueOrDie();
  if (stmt->kind != sql::StatementKind::kSelect) {
    return db_->Execute(sql);
  }
  core::QueryClass qc = core::ClassifyQuery(*stmt->select);
  if (!qc.supported || qc.nested_aggregate) {
    return db_->Execute(sql);
  }
  // Pick the single largest relation that has a sample (no sample joins).
  const IntegratedSample* chosen = nullptr;
  for (const auto& r : qc.relations) {
    auto it = samples_.find(r.base_table);
    if (it == samples_.end()) continue;
    if (chosen == nullptr || it->second.base_rows > chosen->base_rows) {
      chosen = &it->second;
    }
  }
  if (chosen == nullptr) return db_->Execute(sql);

  auto sel = stmt->select->Clone();
  SubstituteOne(sel->from.get(), chosen->base_table, chosen->sample_table);
  for (auto& item : sel->items) ScaleAggregates(item.expr.get(), chosen->ratio);
  if (sel->having) ScaleAggregates(sel->having.get(), chosen->ratio);
  return db_->ExecuteSelect(*sel);
}

}  // namespace vdb::integrated
