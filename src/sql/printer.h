// AST -> SQL text serialization. The VerdictDB middleware produces rewritten
// ASTs; the Syntax Changer (driver/dialect.h) serializes them with
// engine-specific options before handing the string to the database.

#ifndef VDB_SQL_PRINTER_H_
#define VDB_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace vdb::sql {

/// Serialization options. Defaults print the engine's native dialect.
struct PrintOptions {
  char identifier_quote = '`';
  /// Quote every identifier (some engines require it for mixed case).
  bool always_quote_identifiers = false;
};

std::string PrintExpr(const Expr& e, const PrintOptions& opts = {});
std::string PrintSelect(const SelectStmt& s, const PrintOptions& opts = {});
std::string PrintStatement(const Statement& s, const PrintOptions& opts = {});

}  // namespace vdb::sql

#endif  // VDB_SQL_PRINTER_H_
