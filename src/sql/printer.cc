#include "sql/printer.h"

#include <cctype>

namespace vdb::sql {

namespace {

bool NeedsQuote(const std::string& ident) {
  if (ident.empty()) return true;
  if (!std::isalpha(static_cast<unsigned char>(ident[0])) && ident[0] != '_') {
    return true;
  }
  for (char c : ident) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return true;
  }
  return false;
}

std::string Ident(const std::string& name, const PrintOptions& o) {
  if (o.always_quote_identifiers || NeedsQuote(name)) {
    return std::string(1, o.identifier_quote) + name +
           std::string(1, o.identifier_quote);
  }
  return name;
}

std::string EscapeString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

const char* BinOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
    case BinaryOp::kLike: return "like";
  }
  return "?";
}

std::string ExprText(const Expr& e, const PrintOptions& o);
std::string SelectText(const SelectStmt& s, const PrintOptions& o);

std::string TableRefText(const TableRef& t, const PrintOptions& o) {
  switch (t.kind) {
    case TableRef::Kind::kBase: {
      std::string out = Ident(t.table_name, o);
      if (!t.alias.empty()) out += " as " + Ident(t.alias, o);
      return out;
    }
    case TableRef::Kind::kDerived:
      return "(" + SelectText(*t.derived, o) + ") as " + Ident(t.alias, o);
    case TableRef::Kind::kJoin: {
      std::string out = TableRefText(*t.left, o);
      switch (t.join_type) {
        case JoinType::kInner: out += " inner join "; break;
        case JoinType::kLeft: out += " left join "; break;
        case JoinType::kCross: out += " cross join "; break;
      }
      out += TableRefText(*t.right, o);
      if (t.on) out += " on " + ExprText(*t.on, o);
      return out;
    }
  }
  return "?";
}

std::string ExprText(const Expr& e, const PrintOptions& o) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.type() == TypeId::kString) {
        return EscapeString(e.literal.AsString());
      }
      return e.literal.ToString();
    case ExprKind::kColumnRef:
      if (!e.qualifier.empty()) {
        return Ident(e.qualifier, o) + "." + Ident(e.name, o);
      }
      return Ident(e.name, o);
    case ExprKind::kStar:
      if (!e.qualifier.empty()) return Ident(e.qualifier, o) + ".*";
      return "*";
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNot) {
        return "(not " + ExprText(*e.args[0], o) + ")";
      }
      return "(-" + ExprText(*e.args[0], o) + ")";
    case ExprKind::kBinary:
      return "(" + ExprText(*e.args[0], o) + " " + BinOpText(e.binary_op) +
             " " + ExprText(*e.args[1], o) + ")";
    case ExprKind::kFunction: {
      std::string out = e.name + "(";
      if (e.distinct) out += "distinct ";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ", ";
        out += ExprText(*e.args[i], o);
      }
      out += ")";
      if (e.is_window) {
        out += " over (";
        if (!e.partition_by.empty()) {
          out += "partition by ";
          for (size_t i = 0; i < e.partition_by.size(); ++i) {
            if (i) out += ", ";
            out += ExprText(*e.partition_by[i], o);
          }
        }
        out += ")";
      }
      return out;
    }
    case ExprKind::kCase: {
      std::string out = "case";
      for (size_t i = 0; i < e.case_whens.size(); ++i) {
        out += " when " + ExprText(*e.case_whens[i], o) + " then " +
               ExprText(*e.case_thens[i], o);
      }
      if (e.case_else) out += " else " + ExprText(*e.case_else, o);
      out += " end";
      return out;
    }
    case ExprKind::kIsNull:
      return "(" + ExprText(*e.args[0], o) +
             (e.negated ? " is not null)" : " is null)");
    case ExprKind::kInList: {
      std::string out = "(" + ExprText(*e.args[0], o);
      out += e.negated ? " not in (" : " in (";
      for (size_t i = 1; i < e.args.size(); ++i) {
        if (i > 1) out += ", ";
        out += ExprText(*e.args[i], o);
      }
      out += "))";
      return out;
    }
    case ExprKind::kBetween: {
      std::string out = "(" + ExprText(*e.args[0], o);
      if (e.negated) out += " not";
      out += " between " + ExprText(*e.args[1], o) + " and " +
             ExprText(*e.args[2], o) + ")";
      return out;
    }
    case ExprKind::kSubquery:
      return "(" + SelectText(*e.subquery, o) + ")";
    case ExprKind::kExists:
      return "exists (" + SelectText(*e.subquery, o) + ")";
  }
  return "?";
}

std::string SelectText(const SelectStmt& s, const PrintOptions& o) {
  std::string out = "select ";
  if (s.distinct) out += "distinct ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i) out += ", ";
    out += ExprText(*s.items[i].expr, o);
    if (!s.items[i].alias.empty()) out += " as " + Ident(s.items[i].alias, o);
  }
  if (s.from) out += " from " + TableRefText(*s.from, o);
  if (s.where) out += " where " + ExprText(*s.where, o);
  if (!s.group_by.empty()) {
    out += " group by ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i) out += ", ";
      out += ExprText(*s.group_by[i], o);
    }
  }
  if (s.having) out += " having " + ExprText(*s.having, o);
  if (!s.order_by.empty()) {
    out += " order by ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i) out += ", ";
      out += ExprText(*s.order_by[i].expr, o);
      if (!s.order_by[i].ascending) out += " desc";
    }
  }
  if (s.limit >= 0) out += " limit " + std::to_string(s.limit);
  if (s.union_next) out += " union all " + SelectText(*s.union_next, o);
  return out;
}

}  // namespace

std::string PrintExpr(const Expr& e, const PrintOptions& opts) {
  return ExprText(e, opts);
}

std::string PrintSelect(const SelectStmt& s, const PrintOptions& opts) {
  return SelectText(s, opts);
}

std::string PrintStatement(const Statement& s, const PrintOptions& opts) {
  switch (s.kind) {
    case StatementKind::kSelect:
      return SelectText(*s.select, opts);
    case StatementKind::kCreateTableAs:
      return "create table " + std::string(1, opts.identifier_quote) +
             s.table_name + std::string(1, opts.identifier_quote) + " as " +
             SelectText(*s.select, opts);
    case StatementKind::kDropTable:
      return std::string("drop table ") + (s.if_exists ? "if exists " : "") +
             s.table_name;
    case StatementKind::kInsertSelect:
      return "insert into " + s.table_name + " " + SelectText(*s.select, opts);
  }
  return "?";
}

}  // namespace vdb::sql
