#include "sql/parser.h"

#include <algorithm>
#include <cctype>

#include "sql/lexer.h"

namespace vdb::sql {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Reserved words that terminate an implicit alias position.
bool IsReserved(const std::string& lower) {
  static const char* kWords[] = {
      "select", "from",  "where",  "group",  "having", "order",  "limit",
      "union",  "join",  "inner",  "left",   "right",  "outer",  "cross",
      "on",     "and",   "or",     "not",    "as",     "by",     "asc",
      "desc",   "case",  "when",   "then",   "else",   "end",    "in",
      "is",     "null",  "like",   "between", "exists", "distinct", "all",
      "create", "table", "drop",   "insert", "into",   "if",     "true",
      "false",
  };
  for (const char* w : kWords) {
    if (lower == w) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseStatementTop() {
    auto st = ParseStatementInner();
    if (!st.ok()) return st.status();
    if (Accept(TokenKind::kSemicolon)) {
    }
    if (!At(TokenKind::kEnd)) {
      return Err("unexpected trailing tokens");
    }
    return st;
  }

  Result<Expr::Ptr> ParseExprTop() {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    if (!At(TokenKind::kEnd)) return Err("unexpected trailing tokens");
    return e;
  }

 private:
  // ---- token helpers ----
  const Token& Peek(int ahead = 0) const {
    size_t i = std::min(pos_ + static_cast<size_t>(ahead), toks_.size() - 1);
    return toks_[i];
  }
  bool At(TokenKind k) const { return Peek().kind == k; }
  bool AtKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdentifier && Lower(Peek().text) == kw;
  }
  bool Accept(TokenKind k) {
    if (At(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* kw) {
    if (AtKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenKind k, const char* what) {
    if (Accept(k)) return Status::Ok();
    return Status::InvalidArgument(std::string("expected ") + what +
                                   " at offset " +
                                   std::to_string(Peek().offset));
  }
  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::Ok();
    return Status::InvalidArgument(std::string("expected keyword '") + kw +
                                   "' at offset " +
                                   std::to_string(Peek().offset));
  }
  Status Err(const std::string& m) const {
    return Status::InvalidArgument(m + " at offset " +
                                   std::to_string(Peek().offset));
  }

  // ---- statements ----
  Result<std::unique_ptr<Statement>> ParseStatementInner() {
    auto stmt = std::make_unique<Statement>();
    if (AcceptKeyword("create")) {
      VDB_RETURN_IF_ERROR(ExpectKeyword("table"));
      if (!At(TokenKind::kIdentifier)) return Err("expected table name");
      stmt->kind = StatementKind::kCreateTableAs;
      stmt->table_name = Peek().text;
      ++pos_;
      VDB_RETURN_IF_ERROR(ExpectKeyword("as"));
      auto sel = ParseSelectStmt();
      if (!sel.ok()) return sel.status();
      stmt->select = std::move(sel).ValueOrDie();
      return stmt;
    }
    if (AcceptKeyword("drop")) {
      VDB_RETURN_IF_ERROR(ExpectKeyword("table"));
      stmt->kind = StatementKind::kDropTable;
      if (AcceptKeyword("if")) {
        VDB_RETURN_IF_ERROR(ExpectKeyword("exists"));
        stmt->if_exists = true;
      }
      if (!At(TokenKind::kIdentifier)) return Err("expected table name");
      stmt->table_name = Peek().text;
      ++pos_;
      return stmt;
    }
    if (AcceptKeyword("insert")) {
      VDB_RETURN_IF_ERROR(ExpectKeyword("into"));
      if (!At(TokenKind::kIdentifier)) return Err("expected table name");
      stmt->kind = StatementKind::kInsertSelect;
      stmt->table_name = Peek().text;
      ++pos_;
      auto sel = ParseSelectStmt();
      if (!sel.ok()) return sel.status();
      stmt->select = std::move(sel).ValueOrDie();
      return stmt;
    }
    stmt->kind = StatementKind::kSelect;
    auto sel = ParseSelectStmt();
    if (!sel.ok()) return sel.status();
    stmt->select = std::move(sel).ValueOrDie();
    return stmt;
  }

 public:
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    VDB_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto sel = std::make_unique<SelectStmt>();
    if (AcceptKeyword("distinct")) sel->distinct = true;

    // Select list.
    do {
      SelectItem item;
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(e).ValueOrDie();
      if (AcceptKeyword("as")) {
        if (!At(TokenKind::kIdentifier)) return Err("expected alias");
        item.alias = Peek().text;
        ++pos_;
      } else if (At(TokenKind::kIdentifier) && !IsReserved(Lower(Peek().text))) {
        item.alias = Peek().text;
        ++pos_;
      }
      sel->items.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));

    if (AcceptKeyword("from")) {
      auto from = ParseTableRef();
      if (!from.ok()) return from.status();
      sel->from = std::move(from).ValueOrDie();
    }
    if (AcceptKeyword("where")) {
      auto w = ParseExpr();
      if (!w.ok()) return w.status();
      sel->where = std::move(w).ValueOrDie();
    }
    if (AcceptKeyword("group")) {
      VDB_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        auto g = ParseExpr();
        if (!g.ok()) return g.status();
        sel->group_by.push_back(std::move(g).ValueOrDie());
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("having")) {
      auto h = ParseExpr();
      if (!h.ok()) return h.status();
      sel->having = std::move(h).ValueOrDie();
    }
    if (AcceptKeyword("order")) {
      VDB_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        OrderItem item;
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(e).ValueOrDie();
        if (AcceptKeyword("desc")) {
          item.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        sel->order_by.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("limit")) {
      if (!At(TokenKind::kIntLiteral)) return Err("expected LIMIT count");
      sel->limit = Peek().int_value;
      ++pos_;
    }
    if (AcceptKeyword("union")) {
      VDB_RETURN_IF_ERROR(ExpectKeyword("all"));
      auto next = ParseSelectStmt();
      if (!next.ok()) return next.status();
      sel->union_next = std::move(next).ValueOrDie();
    }
    return sel;
  }

 private:
  // ---- table references ----
  Result<TableRef::Ptr> ParseTableRef() {
    auto left = ParseTablePrimary();
    if (!left.ok()) return left.status();
    TableRef::Ptr acc = std::move(left).ValueOrDie();
    for (;;) {
      JoinType jt;
      bool has_on = true;
      if (Accept(TokenKind::kComma)) {
        jt = JoinType::kCross;
        has_on = false;
      } else if (AcceptKeyword("inner")) {
        VDB_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kInner;
      } else if (AcceptKeyword("join")) {
        jt = JoinType::kInner;
      } else if (AcceptKeyword("left")) {
        AcceptKeyword("outer");
        VDB_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kLeft;
      } else if (AcceptKeyword("cross")) {
        VDB_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kCross;
        has_on = false;
      } else {
        break;
      }
      auto right = ParseTablePrimary();
      if (!right.ok()) return right.status();
      Expr::Ptr on;
      if (has_on) {
        VDB_RETURN_IF_ERROR(ExpectKeyword("on"));
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        on = std::move(e).ValueOrDie();
      }
      acc = MakeJoin(jt, std::move(acc), std::move(right).ValueOrDie(),
                     std::move(on));
    }
    return acc;
  }

  Result<TableRef::Ptr> ParseTablePrimary() {
    if (Accept(TokenKind::kLParen)) {
      if (AtKeyword("select")) {
        auto sel = ParseSelectStmt();
        if (!sel.ok()) return sel.status();
        VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        AcceptKeyword("as");
        if (!At(TokenKind::kIdentifier)) {
          return Err("derived table requires an alias");
        }
        std::string alias = Peek().text;
        ++pos_;
        return MakeDerivedTable(std::move(sel).ValueOrDie(), std::move(alias));
      }
      auto inner = ParseTableRef();
      if (!inner.ok()) return inner.status();
      VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (!At(TokenKind::kIdentifier)) return Err("expected table name");
    std::string name = Peek().text;
    ++pos_;
    std::string alias;
    if (AcceptKeyword("as")) {
      if (!At(TokenKind::kIdentifier)) return Err("expected alias");
      alias = Peek().text;
      ++pos_;
    } else if (At(TokenKind::kIdentifier) && !IsReserved(Lower(Peek().text))) {
      alias = Peek().text;
      ++pos_;
    }
    return MakeBaseTable(std::move(name), std::move(alias));
  }

  // ---- expressions (precedence climbing) ----
  Result<Expr::Ptr> ParseExpr() { return ParseOr(); }

  Result<Expr::Ptr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs.status();
    Expr::Ptr acc = std::move(lhs).ValueOrDie();
    while (AcceptKeyword("or")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs.status();
      acc = MakeBinary(BinaryOp::kOr, std::move(acc),
                       std::move(rhs).ValueOrDie());
    }
    return acc;
  }

  Result<Expr::Ptr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs.status();
    Expr::Ptr acc = std::move(lhs).ValueOrDie();
    while (AtKeyword("and")) {
      // `BETWEEN x AND y` consumes its own AND; only top-level ANDs here.
      ++pos_;
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs.status();
      acc = MakeBinary(BinaryOp::kAnd, std::move(acc),
                       std::move(rhs).ValueOrDie());
    }
    return acc;
  }

  Result<Expr::Ptr> ParseNot() {
    if (AcceptKeyword("not")) {
      auto inner = ParseNot();
      if (!inner.ok()) return inner.status();
      return MakeUnary(UnaryOp::kNot, std::move(inner).ValueOrDie());
    }
    return ParseComparison();
  }

  Result<Expr::Ptr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs.status();
    Expr::Ptr acc = std::move(lhs).ValueOrDie();

    // IS [NOT] NULL
    if (AtKeyword("is")) {
      ++pos_;
      bool neg = AcceptKeyword("not");
      VDB_RETURN_IF_ERROR(ExpectKeyword("null"));
      auto e = std::make_unique<Expr>(ExprKind::kIsNull);
      e->negated = neg;
      e->args.push_back(std::move(acc));
      return e;
    }
    // [NOT] IN (...) / [NOT] BETWEEN / [NOT] LIKE
    bool neg = false;
    if (AtKeyword("not") &&
        (Lower(Peek(1).text) == "in" || Lower(Peek(1).text) == "between" ||
         Lower(Peek(1).text) == "like")) {
      neg = true;
      ++pos_;
    }
    if (AcceptKeyword("in")) {
      VDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      auto e = std::make_unique<Expr>(ExprKind::kInList);
      e->negated = neg;
      e->args.push_back(std::move(acc));
      do {
        auto item = ParseExpr();
        if (!item.ok()) return item.status();
        e->args.push_back(std::move(item).ValueOrDie());
      } while (Accept(TokenKind::kComma));
      VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return e;
    }
    if (AcceptKeyword("between")) {
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo.status();
      VDB_RETURN_IF_ERROR(ExpectKeyword("and"));
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi.status();
      auto e = std::make_unique<Expr>(ExprKind::kBetween);
      e->negated = neg;
      e->args.push_back(std::move(acc));
      e->args.push_back(std::move(lo).ValueOrDie());
      e->args.push_back(std::move(hi).ValueOrDie());
      return e;
    }
    if (AcceptKeyword("like")) {
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs.status();
      Expr::Ptr like = MakeBinary(BinaryOp::kLike, std::move(acc),
                                  std::move(rhs).ValueOrDie());
      if (neg) like = MakeUnary(UnaryOp::kNot, std::move(like));
      return like;
    }
    if (neg) return Err("dangling NOT");

    BinaryOp op;
    if (Accept(TokenKind::kEq)) {
      op = BinaryOp::kEq;
    } else if (Accept(TokenKind::kNe)) {
      op = BinaryOp::kNe;
    } else if (Accept(TokenKind::kLe)) {
      op = BinaryOp::kLe;
    } else if (Accept(TokenKind::kLt)) {
      op = BinaryOp::kLt;
    } else if (Accept(TokenKind::kGe)) {
      op = BinaryOp::kGe;
    } else if (Accept(TokenKind::kGt)) {
      op = BinaryOp::kGt;
    } else {
      return acc;
    }
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs.status();
    return MakeBinary(op, std::move(acc), std::move(rhs).ValueOrDie());
  }

  Result<Expr::Ptr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs.status();
    Expr::Ptr acc = std::move(lhs).ValueOrDie();
    for (;;) {
      BinaryOp op;
      if (Accept(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Accept(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return acc;
      }
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs.status();
      acc = MakeBinary(op, std::move(acc), std::move(rhs).ValueOrDie());
    }
  }

  Result<Expr::Ptr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs.status();
    Expr::Ptr acc = std::move(lhs).ValueOrDie();
    for (;;) {
      BinaryOp op;
      if (Accept(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Accept(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Accept(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return acc;
      }
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs.status();
      acc = MakeBinary(op, std::move(acc), std::move(rhs).ValueOrDie());
    }
  }

  Result<Expr::Ptr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      return MakeUnary(UnaryOp::kNeg, std::move(inner).ValueOrDie());
    }
    if (Accept(TokenKind::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<Expr::Ptr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        ++pos_;
        return MakeIntLit(t.int_value);
      }
      case TokenKind::kDoubleLiteral: {
        ++pos_;
        return MakeDoubleLit(t.double_value);
      }
      case TokenKind::kStringLiteral: {
        std::string s = t.text;
        ++pos_;
        return MakeStringLit(std::move(s));
      }
      case TokenKind::kStar: {
        ++pos_;
        return MakeStar();
      }
      case TokenKind::kLParen: {
        ++pos_;
        if (AtKeyword("select")) {
          auto sel = ParseSelectStmt();
          if (!sel.ok()) return sel.status();
          VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          auto e = std::make_unique<Expr>(ExprKind::kSubquery);
          e->subquery = std::move(sel).ValueOrDie();
          return e;
        }
        auto inner = ParseExpr();
        if (!inner.ok()) return inner.status();
        VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdentifier:
        return ParseIdentifierExpr();
      default:
        return Err("unexpected token in expression");
    }
  }

  Result<Expr::Ptr> ParseIdentifierExpr() {
    std::string first = Peek().text;
    std::string lower = Lower(first);

    if (lower == "null") {
      ++pos_;
      return MakeLiteral(Value::Null());
    }
    if (lower == "true") {
      ++pos_;
      return MakeLiteral(Value::Bool(true));
    }
    if (lower == "false") {
      ++pos_;
      return MakeLiteral(Value::Bool(false));
    }
    if (lower == "case") return ParseCase();
    if (lower != "exists" && IsReserved(lower)) {
      return Err("unexpected keyword '" + lower + "' in expression");
    }
    if (lower == "exists") {
      ++pos_;
      VDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      auto sel = ParseSelectStmt();
      if (!sel.ok()) return sel.status();
      VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      auto e = std::make_unique<Expr>(ExprKind::kExists);
      e->subquery = std::move(sel).ValueOrDie();
      return e;
    }

    ++pos_;
    // Function call?
    if (At(TokenKind::kLParen)) {
      ++pos_;
      auto fn = std::make_unique<Expr>(ExprKind::kFunction);
      fn->name = lower;
      if (AcceptKeyword("distinct")) fn->distinct = true;
      if (!At(TokenKind::kRParen)) {
        do {
          if (At(TokenKind::kStar)) {
            ++pos_;
            fn->args.push_back(MakeStar());
          } else {
            auto a = ParseExpr();
            if (!a.ok()) return a.status();
            fn->args.push_back(std::move(a).ValueOrDie());
          }
        } while (Accept(TokenKind::kComma));
      }
      VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      // OVER ( [PARTITION BY e1, e2] )
      if (AtKeyword("over")) {
        ++pos_;
        VDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        fn->is_window = true;
        if (AcceptKeyword("partition")) {
          VDB_RETURN_IF_ERROR(ExpectKeyword("by"));
          do {
            auto p = ParseExpr();
            if (!p.ok()) return p.status();
            fn->partition_by.push_back(std::move(p).ValueOrDie());
          } while (Accept(TokenKind::kComma));
        }
        VDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      }
      return fn;
    }
    // Qualified reference: t.col or t.*
    if (At(TokenKind::kDot)) {
      ++pos_;
      if (At(TokenKind::kStar)) {
        ++pos_;
        auto e = MakeStar();
        e->qualifier = first;
        return e;
      }
      if (!At(TokenKind::kIdentifier)) return Err("expected column name");
      std::string col = Peek().text;
      ++pos_;
      return MakeColumnRef(std::move(first), std::move(col));
    }
    return MakeColumnRef("", std::move(first));
  }

  Result<Expr::Ptr> ParseCase() {
    ++pos_;  // consume CASE
    auto e = std::make_unique<Expr>(ExprKind::kCase);
    while (AcceptKeyword("when")) {
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      VDB_RETURN_IF_ERROR(ExpectKeyword("then"));
      auto then = ParseExpr();
      if (!then.ok()) return then.status();
      e->case_whens.push_back(std::move(cond).ValueOrDie());
      e->case_thens.push_back(std::move(then).ValueOrDie());
    }
    if (e->case_whens.empty()) return Err("CASE requires at least one WHEN");
    if (AcceptKeyword("else")) {
      auto els = ParseExpr();
      if (!els.ok()) return els.status();
      e->case_else = std::move(els).ValueOrDie();
    }
    VDB_RETURN_IF_ERROR(ExpectKeyword("end"));
    return e;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Statement>> ParseStatement(const std::string& input) {
  auto toks = Tokenize(input);
  if (!toks.ok()) return toks.status();
  Parser p(std::move(toks).ValueOrDie());
  return p.ParseStatementTop();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& input) {
  auto st = ParseStatement(input);
  if (!st.ok()) return st.status();
  auto stmt = std::move(st).ValueOrDie();
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return std::move(stmt->select);
}

Result<Expr::Ptr> ParseExpression(const std::string& input) {
  auto toks = Tokenize(input);
  if (!toks.ok()) return toks.status();
  Parser p(std::move(toks).ValueOrDie());
  return p.ParseExprTop();
}

}  // namespace vdb::sql
