#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace vdb::sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& in) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = in.size();
  auto push = [&](TokenKind k, size_t at) {
    Token t;
    t.kind = k;
    t.offset = at;
    out.push_back(std::move(t));
  };
  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && in[i + 1] == '-') {
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    const size_t at = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(in[j])) ++j;
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = in.substr(i, j - i);
      t.offset = at;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '`' || c == '"') {
      char quote = c;
      size_t j = i + 1;
      while (j < n && in[j] != quote) ++j;
      if (j >= n) {
        return Status::InvalidArgument("unterminated quoted identifier");
      }
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = in.substr(i + 1, j - i - 1);
      t.offset = at;
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      std::string body;
      size_t j = i + 1;
      while (j < n) {
        if (in[j] == '\'') {
          if (j + 1 < n && in[j + 1] == '\'') {  // escaped quote
            body.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        body.push_back(in[j]);
        ++j;
      }
      if (j >= n) return Status::InvalidArgument("unterminated string literal");
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(body);
      t.offset = at;
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
      if (j < n && in[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
      }
      if (j < n && (in[j] == 'e' || in[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (in[k] == '+' || in[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(in[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
        }
      }
      Token t;
      t.offset = at;
      std::string num = in.substr(i, j - i);
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, at); ++i; break;
      case ')': push(TokenKind::kRParen, at); ++i; break;
      case ',': push(TokenKind::kComma, at); ++i; break;
      case '.': push(TokenKind::kDot, at); ++i; break;
      case ';': push(TokenKind::kSemicolon, at); ++i; break;
      case '*': push(TokenKind::kStar, at); ++i; break;
      case '+': push(TokenKind::kPlus, at); ++i; break;
      case '-': push(TokenKind::kMinus, at); ++i; break;
      case '/': push(TokenKind::kSlash, at); ++i; break;
      case '%': push(TokenKind::kPercent, at); ++i; break;
      case '=': push(TokenKind::kEq, at); ++i; break;
      case '<':
        if (i + 1 < n && in[i + 1] == '=') {
          push(TokenKind::kLe, at);
          i += 2;
        } else if (i + 1 < n && in[i + 1] == '>') {
          push(TokenKind::kNe, at);
          i += 2;
        } else {
          push(TokenKind::kLt, at);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && in[i + 1] == '=') {
          push(TokenKind::kGe, at);
          i += 2;
        } else {
          push(TokenKind::kGt, at);
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && in[i + 1] == '=') {
          push(TokenKind::kNe, at);
          i += 2;
        } else {
          return Status::InvalidArgument("unexpected '!' in SQL input");
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(at));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace vdb::sql
