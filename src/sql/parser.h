// Recursive-descent SQL parser covering the analytic subset VerdictDB
// supports (Table 1 of the paper): select / group-by / having / order-by /
// limit, equi-joins and derived tables, scalar subqueries in comparisons,
// searched CASE, window aggregates `agg(..) OVER (PARTITION BY ..)`, plus
// CREATE TABLE AS, DROP TABLE and INSERT INTO ... SELECT for sample
// preparation and data appends.

#ifndef VDB_SQL_PARSER_H_
#define VDB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace vdb::sql {

/// Parses one statement (a trailing ';' is allowed).
Result<std::unique_ptr<Statement>> ParseStatement(const std::string& input);

/// Parses a statement that must be a SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& input);

/// Parses a standalone scalar expression (used by tests).
Result<Expr::Ptr> ParseExpression(const std::string& input);

}  // namespace vdb::sql

#endif  // VDB_SQL_PARSER_H_
