// Abstract syntax tree for the SQL dialect understood by both the engine and
// the VerdictDB middleware. The middleware rewrites ASTs and serializes them
// back to SQL text (sql/printer.h); the engine binds and executes them.

#ifndef VDB_SQL_AST_H_
#define VDB_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace vdb::sql {

struct SelectStmt;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,        // `*` or `t.*` (select list / count(*))
  kUnary,
  kBinary,
  kFunction,    // scalar or aggregate call; may carry a window spec
  kCase,        // searched CASE WHEN ... THEN ... [ELSE ...] END
  kIsNull,      // expr IS [NOT] NULL
  kInList,      // expr [NOT] IN (e1, e2, ...)
  kBetween,     // expr BETWEEN lo AND hi
  kSubquery,    // scalar subquery  (select ...)
  kExists,      // EXISTS (select ...)   -- recognized, not approximated
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike,
};

/// Expression node. A single struct (rather than a class hierarchy) keeps the
/// tree-walking interpreter and the rewriter compact.
struct Expr {
  using Ptr = std::unique_ptr<Expr>;

  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef: qualifier may be empty. kFunction: name is the (lowercased)
  // function name. kStar: qualifier may name a table.
  std::string qualifier;
  std::string name;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // Children. kUnary: [operand]. kBinary: [lhs, rhs]. kFunction: arguments.
  // kIsNull: [operand]. kInList: [operand, item...]. kBetween: [x, lo, hi].
  std::vector<Ptr> args;

  // kCase
  std::vector<Ptr> case_whens;   // conditions
  std::vector<Ptr> case_thens;   // results, same length as case_whens
  Ptr case_else;                 // may be null

  // kFunction
  bool distinct = false;           // count(distinct x)
  std::vector<Ptr> partition_by;   // non-empty => window function OVER(...)
  bool is_window = false;          // true also for OVER () with no partition

  // kSubquery / kExists
  std::unique_ptr<SelectStmt> subquery;

  // kIsNull / kInList negation (IS NOT NULL / NOT IN)
  bool negated = false;

  // ---- Binder outputs (engine-internal; not part of the surface syntax) ----
  int bound_column = -1;   // kColumnRef: input column ordinal
  int bound_agg = -1;      // kFunction aggregate: ordinal in aggregate list
  // kFunction rand/random/rand_poisson: 1-based call-site id, assigned once
  // per statement in deterministic traversal order (engine/planner). Part of
  // the row-addressed draw (common/random.h RandAddr), so distinct rand()
  // calls in one query draw independent values; copied by Clone, so every
  // rewrite of the same logical call site keeps the same draws.
  int rand_site = 0;

  Expr() : kind(ExprKind::kLiteral) {}
  explicit Expr(ExprKind k) : kind(k) {}

  /// Deep copy (binder outputs are copied verbatim).
  Ptr Clone() const;
};

/// True if `pred` holds for `e` or any node beneath it (args, CASE arms,
/// window partition keys). The one traversal every "does this tree contain
/// X" check shares, so a new Expr child field is added in exactly one place.
template <typename Pred>
bool AnyExprNode(const Expr& e, const Pred& pred) {
  if (pred(e)) return true;
  for (const auto& a : e.args) {
    if (a && AnyExprNode(*a, pred)) return true;
  }
  for (const auto& w : e.case_whens) {
    if (AnyExprNode(*w, pred)) return true;
  }
  for (const auto& t : e.case_thens) {
    if (AnyExprNode(*t, pred)) return true;
  }
  if (e.case_else && AnyExprNode(*e.case_else, pred)) return true;
  for (const auto& p : e.partition_by) {
    if (AnyExprNode(*p, pred)) return true;
  }
  return false;
}

/// The one definition of the rand family. Everything keyed to these names —
/// call-site numbering (engine/planner.cc), the batch kernels and the serial
/// baseline hook (engine/vector_eval.cc), function evaluation
/// (engine/functions.cc) — must agree on the set: a name recognized by one
/// consumer but not another would silently leave call sites unnumbered
/// (perfectly correlated draws) or renumber its neighbors.
inline bool IsRandFunctionExpr(const Expr& e) {
  return e.kind == ExprKind::kFunction &&
         (e.name == "rand" || e.name == "random" || e.name == "rand_poisson");
}

/// True if any node under `e` is a rand-family call.
inline bool ContainsRandFunction(const Expr& e) {
  return AnyExprNode(e, IsRandFunctionExpr);
}

// ---- Convenience constructors used heavily by the rewriter ----------------

Expr::Ptr MakeLiteral(Value v);
Expr::Ptr MakeIntLit(int64_t v);
Expr::Ptr MakeDoubleLit(double v);
Expr::Ptr MakeStringLit(std::string s);
Expr::Ptr MakeColumnRef(std::string qualifier, std::string name);
Expr::Ptr MakeStar();
Expr::Ptr MakeUnary(UnaryOp op, Expr::Ptr operand);
Expr::Ptr MakeBinary(BinaryOp op, Expr::Ptr lhs, Expr::Ptr rhs);
Expr::Ptr MakeFunction(std::string name, std::vector<Expr::Ptr> args);
/// Left-folds non-null conjuncts with AND; returns null if all are null.
Expr::Ptr AndAll(std::vector<Expr::Ptr> conjuncts);

// ---- Table references ------------------------------------------------------

enum class JoinType { kInner, kLeft, kCross };

struct TableRef {
  using Ptr = std::unique_ptr<TableRef>;
  enum class Kind { kBase, kDerived, kJoin };

  Kind kind;

  // kBase
  std::string table_name;

  // kBase / kDerived
  std::string alias;  // may be empty for base tables

  // kDerived
  std::unique_ptr<SelectStmt> derived;

  // kJoin
  JoinType join_type = JoinType::kInner;
  Ptr left, right;
  Expr::Ptr on;  // null for cross joins

  explicit TableRef(Kind k) : kind(k) {}
  Ptr Clone() const;

  /// The name this relation is referred to by (alias if set, else base name).
  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

TableRef::Ptr MakeBaseTable(std::string name, std::string alias = "");
TableRef::Ptr MakeDerivedTable(std::unique_ptr<SelectStmt> sel,
                               std::string alias);
TableRef::Ptr MakeJoin(JoinType type, TableRef::Ptr left, TableRef::Ptr right,
                       Expr::Ptr on);

// ---- Select statement ------------------------------------------------------

struct SelectItem {
  Expr::Ptr expr;
  std::string alias;  // may be empty

  SelectItem() = default;
  SelectItem(Expr::Ptr e, std::string a) : expr(std::move(e)), alias(std::move(a)) {}
  SelectItem Clone() const;
};

struct OrderItem {
  Expr::Ptr expr;
  bool ascending = true;
  OrderItem Clone() const;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef::Ptr from;  // null => SELECT of constants
  Expr::Ptr where;
  std::vector<Expr::Ptr> group_by;
  Expr::Ptr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 => no limit

  /// UNION ALL chain: this statement's result concatenated with `union_next`.
  std::unique_ptr<SelectStmt> union_next;

  std::unique_ptr<SelectStmt> Clone() const;
};

// ---- Top-level statements ---------------------------------------------------

enum class StatementKind {
  kSelect,
  kCreateTableAs,  // create table <name> as <select>
  kDropTable,      // drop table [if exists] <name>
  kInsertSelect,   // insert into <name> <select>
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::string table_name;  // CTAS / DROP / INSERT target
  bool if_exists = false;  // DROP TABLE IF EXISTS
  std::unique_ptr<SelectStmt> select;  // null for DROP
};

}  // namespace vdb::sql

#endif  // VDB_SQL_AST_H_
