#include "sql/ast.h"

namespace vdb::sql {

Expr::Ptr Expr::Clone() const {
  auto e = std::make_unique<Expr>(kind);
  e->literal = literal;
  e->qualifier = qualifier;
  e->name = name;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  for (const auto& a : args) e->args.push_back(a ? a->Clone() : nullptr);
  for (const auto& w : case_whens) e->case_whens.push_back(w->Clone());
  for (const auto& t : case_thens) e->case_thens.push_back(t->Clone());
  if (case_else) e->case_else = case_else->Clone();
  e->distinct = distinct;
  for (const auto& p : partition_by) e->partition_by.push_back(p->Clone());
  e->is_window = is_window;
  if (subquery) e->subquery = subquery->Clone();
  e->negated = negated;
  e->bound_column = bound_column;
  e->bound_agg = bound_agg;
  e->rand_site = rand_site;
  return e;
}

Expr::Ptr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

Expr::Ptr MakeIntLit(int64_t v) { return MakeLiteral(Value::Int(v)); }
Expr::Ptr MakeDoubleLit(double v) { return MakeLiteral(Value::Double(v)); }
Expr::Ptr MakeStringLit(std::string s) {
  return MakeLiteral(Value::String(std::move(s)));
}

Expr::Ptr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>(ExprKind::kColumnRef);
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

Expr::Ptr MakeStar() { return std::make_unique<Expr>(ExprKind::kStar); }

Expr::Ptr MakeUnary(UnaryOp op, Expr::Ptr operand) {
  auto e = std::make_unique<Expr>(ExprKind::kUnary);
  e->unary_op = op;
  e->args.push_back(std::move(operand));
  return e;
}

Expr::Ptr MakeBinary(BinaryOp op, Expr::Ptr lhs, Expr::Ptr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kBinary);
  e->binary_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

Expr::Ptr MakeFunction(std::string name, std::vector<Expr::Ptr> args) {
  auto e = std::make_unique<Expr>(ExprKind::kFunction);
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

Expr::Ptr AndAll(std::vector<Expr::Ptr> conjuncts) {
  Expr::Ptr acc;
  for (auto& c : conjuncts) {
    if (!c) continue;
    if (!acc) {
      acc = std::move(c);
    } else {
      acc = MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(c));
    }
  }
  return acc;
}

TableRef::Ptr TableRef::Clone() const {
  auto t = std::make_unique<TableRef>(kind);
  t->table_name = table_name;
  t->alias = alias;
  if (derived) t->derived = derived->Clone();
  t->join_type = join_type;
  if (left) t->left = left->Clone();
  if (right) t->right = right->Clone();
  if (on) t->on = on->Clone();
  return t;
}

TableRef::Ptr MakeBaseTable(std::string name, std::string alias) {
  auto t = std::make_unique<TableRef>(TableRef::Kind::kBase);
  t->table_name = std::move(name);
  t->alias = std::move(alias);
  return t;
}

TableRef::Ptr MakeDerivedTable(std::unique_ptr<SelectStmt> sel,
                               std::string alias) {
  auto t = std::make_unique<TableRef>(TableRef::Kind::kDerived);
  t->derived = std::move(sel);
  t->alias = std::move(alias);
  return t;
}

TableRef::Ptr MakeJoin(JoinType type, TableRef::Ptr left, TableRef::Ptr right,
                       Expr::Ptr on) {
  auto t = std::make_unique<TableRef>(TableRef::Kind::kJoin);
  t->join_type = type;
  t->left = std::move(left);
  t->right = std::move(right);
  t->on = std::move(on);
  return t;
}

SelectItem SelectItem::Clone() const {
  SelectItem it;
  it.expr = expr->Clone();
  it.alias = alias;
  return it;
}

OrderItem OrderItem::Clone() const {
  OrderItem it;
  it.expr = expr->Clone();
  it.ascending = ascending;
  return it;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto s = std::make_unique<SelectStmt>();
  s->distinct = distinct;
  for (const auto& it : items) s->items.push_back(it.Clone());
  if (from) s->from = from->Clone();
  if (where) s->where = where->Clone();
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const auto& o : order_by) s->order_by.push_back(o.Clone());
  s->limit = limit;
  if (union_next) s->union_next = union_next->Clone();
  return s;
}

}  // namespace vdb::sql
