// Token stream produced by the SQL lexer.

#ifndef VDB_SQL_TOKEN_H_
#define VDB_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace vdb::sql {

enum class TokenKind {
  kEnd,
  kIdentifier,   // bare or `quoted`
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // '...'
  // Punctuation / operators.
  kLParen, kRParen, kComma, kDot, kSemicolon, kStar,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier (original case) or string literal body
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;   // byte offset in the input, for error messages
};

}  // namespace vdb::sql

#endif  // VDB_SQL_TOKEN_H_
