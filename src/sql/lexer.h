// SQL lexer: converts a query string into a token vector.

#ifndef VDB_SQL_LEXER_H_
#define VDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace vdb::sql {

/// Tokenizes `input`. Identifiers keep their original case (keyword matching
/// is case-insensitive and happens in the parser). Supports: line comments
/// (`-- ...`), backquoted and double-quoted identifiers, single-quoted string
/// literals with '' escapes, integer and decimal/scientific numeric literals.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace vdb::sql

#endif  // VDB_SQL_LEXER_H_
