#include "driver/dialect.h"

#include <vector>

namespace vdb::driver {

namespace {

Dialect MakeGeneric() {
  Dialect d;
  d.kind = EngineKind::kGeneric;
  d.name = "generic";
  return d;
}

Dialect MakeImpala() {
  Dialect d;
  d.kind = EngineKind::kImpala;
  d.name = "impala";
  d.allows_rand_in_where = false;  // paper §2.1
  d.fixed_overhead_ms = 80.0;
  return d;
}

Dialect MakeSpark() {
  Dialect d;
  d.kind = EngineKind::kSparkSql;
  d.name = "sparksql";
  d.fixed_overhead_ms = 250.0;  // heavy per-query planning/dispatch
  return d;
}

Dialect MakeRedshift() {
  Dialect d;
  d.kind = EngineKind::kRedshift;
  d.name = "redshift";
  d.print_options.identifier_quote = '"';
  d.fixed_overhead_ms = 30.0;
  return d;
}

/// Counts rand() calls under e, excluding subqueries.
int CountRandCalls(const sql::Expr& e) {
  int n = 0;
  if (e.kind == sql::ExprKind::kFunction &&
      (e.name == "rand" || e.name == "random")) {
    n += 1;
  }
  for (const auto& a : e.args) {
    if (a) n += CountRandCalls(*a);
  }
  for (const auto& w : e.case_whens) n += CountRandCalls(*w);
  for (const auto& t : e.case_thens) n += CountRandCalls(*t);
  if (e.case_else) n += CountRandCalls(*e.case_else);
  return n;
}

/// Replaces each rand() call with a reference to a generated column
/// `__vdb_rand<i>`, returning the number of replacements.
int ReplaceRandCalls(sql::Expr* e, int next_id) {
  if (e->kind == sql::ExprKind::kFunction &&
      (e->name == "rand" || e->name == "random")) {
    e->kind = sql::ExprKind::kColumnRef;
    e->qualifier.clear();
    e->name = "__vdb_rand" + std::to_string(next_id);
    e->args.clear();
    return next_id + 1;
  }
  for (auto& a : e->args) {
    if (a) next_id = ReplaceRandCalls(a.get(), next_id);
  }
  for (auto& w : e->case_whens) next_id = ReplaceRandCalls(w.get(), next_id);
  for (auto& t : e->case_thens) next_id = ReplaceRandCalls(t.get(), next_id);
  if (e->case_else) next_id = ReplaceRandCalls(e->case_else.get(), next_id);
  return next_id;
}

}  // namespace

const Dialect& GetDialect(EngineKind kind) {
  static const Dialect kGeneric = MakeGeneric();
  static const Dialect kImpala = MakeImpala();
  static const Dialect kSpark = MakeSpark();
  static const Dialect kRedshift = MakeRedshift();
  switch (kind) {
    case EngineKind::kGeneric: return kGeneric;
    case EngineKind::kImpala: return kImpala;
    case EngineKind::kSparkSql: return kSpark;
    case EngineKind::kRedshift: return kRedshift;
  }
  return kGeneric;
}

Status ApplySyntaxRules(const Dialect& dialect, sql::SelectStmt* stmt) {
  // Recurse into derived tables and unions first.
  if (stmt->from) {
    std::vector<sql::TableRef*> stack = {stmt->from.get()};
    while (!stack.empty()) {
      sql::TableRef* t = stack.back();
      stack.pop_back();
      if (t->kind == sql::TableRef::Kind::kDerived) {
        VDB_RETURN_IF_ERROR(ApplySyntaxRules(dialect, t->derived.get()));
      } else if (t->kind == sql::TableRef::Kind::kJoin) {
        stack.push_back(t->left.get());
        stack.push_back(t->right.get());
      }
    }
  }
  if (stmt->union_next) {
    VDB_RETURN_IF_ERROR(ApplySyntaxRules(dialect, stmt->union_next.get()));
  }

  if (dialect.allows_rand_in_where || !stmt->where) return Status::Ok();
  int rand_count = CountRandCalls(*stmt->where);
  if (rand_count == 0) return Status::Ok();

  // Hoist: from F where P(rand())  =>
  //   from (select *, rand() as __vdb_rand0, ... from F) as __vdb_r
  //   where P(__vdb_rand0, ...)
  auto inner = std::make_unique<sql::SelectStmt>();
  inner->items.emplace_back(sql::MakeStar(), "");
  for (int i = 0; i < rand_count; ++i) {
    inner->items.emplace_back(sql::MakeFunction("rand", {}),
                              "__vdb_rand" + std::to_string(i));
  }
  inner->from = std::move(stmt->from);
  stmt->from = sql::MakeDerivedTable(std::move(inner), "__vdb_r");
  ReplaceRandCalls(stmt->where.get(), 0);
  return Status::Ok();
}

Result<engine::ResultSet> Connection::ExecuteAst(const sql::Statement& stmt) {
  // Apply dialect workarounds on a clone, then serialize and execute the
  // resulting SQL text (the engine only ever sees text, as in the paper).
  sql::Statement local;
  local.kind = stmt.kind;
  local.table_name = stmt.table_name;
  local.if_exists = stmt.if_exists;
  if (stmt.select) local.select = stmt.select->Clone();
  if (local.select) {
    VDB_RETURN_IF_ERROR(ApplySyntaxRules(dialect_, local.select.get()));
  }
  return Execute(sql::PrintStatement(local, dialect_.print_options));
}

Result<engine::ResultSet> Connection::Execute(const std::string& sql) {
  log_.push_back(sql);
  return db_->Execute(sql, guard_);
}

}  // namespace vdb::driver
