// Engine drivers: SQL dialect descriptors plus the thin Connection facade
// the middleware talks through.
//
// In the paper, adding support for a new engine means adding a thin driver
// that knows the engine's JDBC/ODBC interface and SQL dialect (§2.1). Here a
// Dialect captures (a) serialization quirks, (b) feature restrictions the
// Syntax Changer must work around (e.g. Impala forbids rand() in WHERE), and
// (c) a modelled fixed query-preparation overhead used by the benchmark
// harness to reflect the per-engine "default overhead" the paper identifies
// as the main driver of speedup differences (§6.2).

#ifndef VDB_DRIVER_DIALECT_H_
#define VDB_DRIVER_DIALECT_H_

#include <string>

#include "common/governor.h"
#include "common/status.h"
#include "engine/database.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace vdb::driver {

enum class EngineKind { kGeneric, kImpala, kSparkSql, kRedshift };

struct Dialect {
  EngineKind kind = EngineKind::kGeneric;
  std::string name = "generic";
  sql::PrintOptions print_options;
  /// Impala rejects rand() inside selection predicates; the Syntax Changer
  /// pushes such predicates into a derived table.
  bool allows_rand_in_where = true;
  /// Modelled fixed per-query overhead (catalog access + planning), in
  /// milliseconds. Used only by the benchmark harness; Execute() itself does
  /// not sleep.
  double fixed_overhead_ms = 0.0;
};

/// Returns the builtin dialect descriptor for an engine.
const Dialect& GetDialect(EngineKind kind);

/// Applies dialect workarounds to a statement in place. Currently: when the
/// dialect forbids rand() in WHERE, hoists the FROM into a derived table that
/// precomputes rand() columns and rewrites the predicate to reference them.
Status ApplySyntaxRules(const Dialect& dialect, sql::SelectStmt* stmt);

/// A connection to an underlying database through a specific driver. This is
/// the only path by which VerdictDB reads or writes data: everything is SQL.
class Connection {
 public:
  Connection(engine::Database* db, EngineKind kind)
      : db_(db), dialect_(GetDialect(kind)) {}

  /// Serializes with the dialect's print options, then executes.
  Result<engine::ResultSet> ExecuteAst(const sql::Statement& stmt);

  /// Executes raw SQL text.
  Result<engine::ResultSet> Execute(const std::string& sql);

  const Dialect& dialect() const { return dialect_; }
  engine::Database* database() { return db_; }

  /// Attaches a per-statement execution guard (nullptr = ungoverned): every
  /// statement issued over this connection runs under it — the middleware
  /// resets the guard per user query, and all the statements that query
  /// issues (sample probes, the rewritten query, the exact fallback) share
  /// the one deadline / budget. The guard must outlive the connection or be
  /// detached with set_exec_guard(nullptr).
  void set_exec_guard(const ExecGuard* guard) { guard_ = guard; }
  const ExecGuard* exec_guard() const { return guard_; }

  /// SQL statements issued over this connection (for tests / accounting).
  const std::vector<std::string>& statement_log() const { return log_; }
  void ClearLog() { log_.clear(); }

 private:
  engine::Database* db_;
  const Dialect& dialect_;
  const ExecGuard* guard_ = nullptr;
  std::vector<std::string> log_;
};

}  // namespace vdb::driver

#endif  // VDB_DRIVER_DIALECT_H_
