#include "workload/queries.h"

namespace vdb::workload {

std::vector<WorkloadQuery> InstaQueries() {
  std::vector<WorkloadQuery> qs;
  auto add = [&](const char* id, const char* sql, bool pass = false) {
    qs.push_back(WorkloadQuery{id, sql, pass});
  };

  add("iq-1", "select count(*) as cnt from order_products");

  add("iq-2",
      "select count(*) as cnt from order_products"
      " inner join orders_insta on order_products.order_id ="
      " orders_insta.order_id");

  add("iq-3", "select avg(price) as avg_price from order_products");

  add("iq-4",
      "select order_dow, count(*) as cnt from orders_insta"
      " group by order_dow order by order_dow");

  add("iq-5",
      "select order_hour, avg(days_since_prior) as avg_gap from orders_insta"
      " group by order_hour order by order_hour");

  add("iq-6",
      "select d.department, sum(op.price) as sales from order_products op"
      " inner join products p on op.product_id = p.product_id"
      " inner join departments d on p.department_id = d.department_id"
      " group by d.department order by sales desc");

  add("iq-7",
      "select p.department_id, sum(op.price) as sales,"
      " avg(op.quantity) as avg_qty from order_products op"
      " inner join products p on op.product_id = p.product_id"
      " group by p.department_id order by p.department_id");

  add("iq-8",
      "select count(distinct user_id) as active_users from orders_insta");

  add("iq-9",
      "select median(price) as median_price from order_products");

  add("iq-10",
      "select order_dow, stddev(days_since_prior) as sd_gap"
      " from orders_insta group by order_dow order by order_dow");

  add("iq-11",
      "select o.order_dow, sum(op.price) as sales from order_products op"
      " inner join orders_insta o on op.order_id = o.order_id"
      " inner join products p on op.product_id = p.product_id"
      " inner join departments d on p.department_id = d.department_id"
      " group by o.order_dow order by o.order_dow");

  add("iq-12",
      "select sum(case when reordered = 1 then price else 0.0 end) /"
      " sum(price) as reorder_share from order_products");

  add("iq-13",
      "select p.department_id, count(*) as cnt from order_products op"
      " inner join products p on op.product_id = p.product_id"
      " group by p.department_id having sum(op.price) > 1000"
      " order by cnt desc");

  // iq-14/iq-15: joins where *both* relations are sampled (universe join on
  // order_id) — the cases where the paper finds VerdictDB beats SnappyData.
  add("iq-14",
      "select o.order_dow, sum(op.price) as sales, count(*) as cnt"
      " from order_products op"
      " inner join orders_insta o on op.order_id = o.order_id"
      " group by o.order_dow order by o.order_dow");

  add("iq-15",
      "select count(distinct op.order_id) as orders_with_items,"
      " sum(op.price) as sales"
      " from order_products op"
      " inner join orders_insta o on op.order_id = o.order_id"
      " where o.order_hour >= 8 and o.order_hour <= 20");

  return qs;
}

}  // namespace vdb::workload
