// Instacart-style grocery sales dataset generator (the paper's `insta`
// dataset, a 100x-scaled online grocery DB). Schema: orders,
// order_products (fact), products, aisles, departments.

#ifndef VDB_WORKLOAD_INSTA_H_
#define VDB_WORKLOAD_INSTA_H_

#include <cstdint>

#include "common/status.h"
#include "engine/database.h"

namespace vdb::workload {

struct InstaConfig {
  double scale = 0.25;
  uint64_t seed = 34251;

  int64_t orders() const { return static_cast<int64_t>(120000 * scale); }
  int64_t users() const { return static_cast<int64_t>(20000 * scale); }
  int64_t products() const { return static_cast<int64_t>(8000 * scale); }
  int64_t aisles() const { return 134; }
  int64_t departments() const { return 21; }
};

Status GenerateInsta(engine::Database* db, const InstaConfig& config = {});

}  // namespace vdb::workload

#endif  // VDB_WORKLOAD_INSTA_H_
